// End-to-end integration: workload -> SAGE -> functional execution.
//
// For density-preserving scale models of Table III workloads, take SAGE's
// chosen ACF combination, run it through the functional cycle simulator,
// and verify the accelerator computes the exact product the software
// kernels compute — closing the loop from format selection to silicon
// behaviour.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "convert/convert.hpp"
#include "kernels/gemm.hpp"
#include "mint/pipelines.hpp"
#include "sage/sage.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

namespace mt {
namespace {

struct Scaled {
  std::string name;
  index_t m, k;
  std::int64_t nnz;
};

// 1/8-linear-scale versions of representative Table III rows, densities
// preserved.
std::vector<Scaled> scaled_suite() {
  std::vector<Scaled> out;
  for (const char* name : {"journal", "dendrimer", "cavity14", "m3plates"}) {
    const auto& w = matrix_workload(name);
    const index_t m = std::max<index_t>(16, w.m / 8);
    const index_t k = std::max<index_t>(16, w.k / 8);
    const auto nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(w.density() * static_cast<double>(m) *
                                     static_cast<double>(k)));
    out.push_back({name, m, k, nnz});
  }
  return out;
}

TEST(Integration, SageChoiceExecutesCorrectlyOnTheSimulator) {
  const EnergyParams e;
  for (const auto& s : scaled_suite()) {
    const auto a_coo = synth_coo_matrix(s.m, s.k, s.nnz, 5);
    const index_t n = factor_cols(s.m);
    const auto b_nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(s.nnz) /
                                     static_cast<double>(s.m) *
                                     static_cast<double>(n)));
    const auto b_coo = synth_coo_matrix(s.k, n, b_nnz, 6);

    AccelConfig cfg;
    cfg.num_pes = n;                        // single tile
    cfg.pe_buffer_bytes = s.k * 4 * 2;      // room for Dense or CSC columns
    const auto choice = sage_select_matmul(a_coo, b_coo, cfg, e);

    const auto a = a_coo.to_dense();
    const auto b = b_coo.to_dense();
    const auto run = simulate_ws_matmul(a, b, choice.acf_a, choice.acf_b, cfg);
    EXPECT_LE(max_abs_diff(run.output, gemm(a, b)), 1e-3)
        << s.name << " via " << choice.describe();
  }
}

TEST(Integration, ChosenMcfRoundTripsThroughTheConversionPath) {
  // The full storage path: encode A in SAGE's MCF, convert to the chosen
  // ACF's representation through the software converters (MINT's oracle),
  // and verify nothing was lost.
  const EnergyParams e;
  for (const auto& s : scaled_suite()) {
    const auto a_coo = synth_coo_matrix(s.m, s.k, s.nnz, 7);
    const index_t n = factor_cols(s.m);
    const auto b_coo = synth_coo_matrix(s.k, n, std::max<std::int64_t>(1, s.nnz / 2), 8);
    AccelConfig cfg;
    cfg.num_pes = 256;
    const auto choice = sage_select_matmul(a_coo, b_coo, cfg, e);

    const auto a = a_coo.to_dense();
    const AnyMatrix stored = encode(a, choice.mcf_a);
    const AnyMatrix compute_form = convert(stored, choice.acf_a);
    EXPECT_EQ(max_abs_diff(decode(compute_form), a), 0.0) << s.name;

    // And the MINT pipeline for that conversion exists (non-empty block
    // list whenever MCF != ACF).
    if (choice.mcf_a != choice.acf_a) {
      EXPECT_FALSE(conversion_blocks(choice.mcf_a, choice.acf_a).empty())
          << s.name;
    }
  }
}

TEST(Integration, BaselineOrderingIsStableAcrossSeeds) {
  // Fig. 13's qualitative ordering should not depend on the synthetic
  // placement seed: this work <= ExTensor-like <= TPU-like on a sparse
  // workload.
  const EnergyParams e;
  AccelConfig cfg;
  cfg.num_pes = 256;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto a = synth_coo_matrix(1100, 1100, 660, seed);
    const auto b = synth_coo_matrix(1100, 550, 330, seed + 50);
    const auto ours = evaluate_baseline(AccelType::kFlexFlexHw, a, b, cfg, e);
    const auto extensor =
        evaluate_baseline(AccelType::kFlexFlexNone, a, b, cfg, e);
    const auto tpu = evaluate_baseline(AccelType::kFixFixNone, a, b, cfg, e);
    EXPECT_LE(ours.edp, extensor.edp * (1 + 1e-9)) << "seed " << seed;
    EXPECT_LT(extensor.edp, tpu.edp) << "seed " << seed;
  }
}

TEST(Integration, TensorPipelineMatchesKernelOracle) {
  // Tensor path: SAGE's tensor choice, the conversion, and the MTTKRP
  // kernel on the chosen ACF all agree with the dense oracle.
  const EnergyParams e;
  AccelConfig cfg;
  cfg.num_pes = 64;
  const auto x_coo = synth_coo_tensor(55, 14, 21, 660, 11);  // uber-like density
  const auto choice = sage_select_tensor(x_coo, 16, Kernel::kMTTKRP, cfg, e);
  EXPECT_NE(choice.acf_t, Format::kDense);  // far too sparse for Dense

  const auto dense_x = x_coo.to_dense();
  const AnyTensor stored = encode(dense_x, choice.mcf_t);
  const AnyTensor compute_form = convert(stored, choice.acf_t);
  EXPECT_EQ(max_abs_diff(decode(compute_form), dense_x), 0.0);
}

}  // namespace
}  // namespace mt
