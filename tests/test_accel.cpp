// Accelerator simulator tests: bus packing laws, the paper's Fig. 6
// walkthrough (8/3/4 cycles), functional correctness of the PE array
// against the software kernels, and the cycle-for-cycle agreement between
// the functional simulator and the analytic performance model.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/area.hpp"
#include "accel/cycle_sim.hpp"
#include "accel/perf_model.hpp"
#include "accel/stream.hpp"
#include "kernels/gemm.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;

// The Fig. 6 walkthrough operands. Streamed matrix A (4x8, nonzeros
// A,B,C,H) and stationary matrix B (8x4, nonzeros a..h).
DenseMatrix fig6_a() {
  DenseMatrix a(4, 8);
  a.set(0, 0, 1.0f);  // A
  a.set(0, 2, 2.0f);  // B
  a.set(0, 4, 3.0f);  // C
  a.set(3, 5, 4.0f);  // H
  return a;
}

DenseMatrix fig6_b() {
  DenseMatrix b(8, 4);
  b.set(0, 0, 1.0f);  // a
  b.set(0, 1, 4.0f);  // d
  b.set(2, 0, 2.0f);  // b
  b.set(3, 2, 6.0f);  // f
  b.set(4, 0, 3.0f);  // c
  b.set(5, 2, 7.0f);  // g
  b.set(5, 3, 8.0f);  // h
  b.set(7, 1, 5.0f);  // e
  return b;
}

TEST(Fig6Walkthrough, DenseAcfStreamsInEightCycles) {
  const auto r = simulate_ws_matmul(fig6_a(), fig6_b(), Format::kDense,
                                    Format::kDense, AccelConfig::walkthrough());
  EXPECT_EQ(r.phases.stream_cycles, 8);
}

TEST(Fig6Walkthrough, CsrAcfStreamsInThreeCycles) {
  const auto r = simulate_ws_matmul(fig6_a(), fig6_b(), Format::kCSR,
                                    Format::kCSC, AccelConfig::walkthrough());
  EXPECT_EQ(r.phases.stream_cycles, 3);
}

TEST(Fig6Walkthrough, CooAcfStreamsInFourCycles) {
  const auto r = simulate_ws_matmul(fig6_a(), fig6_b(), Format::kCOO,
                                    Format::kDense, AccelConfig::walkthrough());
  EXPECT_EQ(r.phases.stream_cycles, 4);
}

TEST(Fig6Walkthrough, AllThreeAcfsComputeTheSameProduct) {
  const auto want = gemm(fig6_a(), fig6_b());
  const auto cfg = AccelConfig::walkthrough();
  for (auto [fa, fb] :
       {std::pair{Format::kDense, Format::kDense},
        std::pair{Format::kCSR, Format::kCSC},
        std::pair{Format::kCOO, Format::kDense}}) {
    const auto r = simulate_ws_matmul(fig6_a(), fig6_b(), fa, fb, cfg);
    EXPECT_EQ(max_abs_diff(r.output, want), 0.0)
        << name_of(fa) << "/" << name_of(fb);
  }
}

TEST(Fig6Walkthrough, CompressedAcfUsesLessBufferForSparseB) {
  // Dense B occupies the full 8-entry buffer per PE; CSC B stores only
  // (row_id, value) pairs for the nonzeros — col 0 has 3 nnz -> 6 entries.
  const auto cfg = AccelConfig::walkthrough();
  const auto dense = simulate_ws_matmul(fig6_a(), fig6_b(), Format::kDense,
                                        Format::kDense, cfg);
  const auto csc = simulate_ws_matmul(fig6_a(), fig6_b(), Format::kCSR,
                                      Format::kCSC, cfg);
  EXPECT_GT(dense.phases.load_cycles, csc.phases.load_cycles);
}

// --- Bus packing laws ---

class PackingLaws
    : public ::testing::TestWithParam<std::tuple<Format, index_t, double>> {};

TEST_P(PackingLaws, ClosedFormMatchesMaterializedPackets) {
  const auto [acf, slots, density] = GetParam();
  AccelConfig cfg;
  cfg.bus_bits = slots * 32;
  const auto d = random_dense(13, 29, density, 17);
  const auto coo = CooMatrix::from_dense(d);
  for (index_t k_lo : {index_t{0}, index_t{7}}) {
    for (index_t k_hi : {index_t{12}, index_t{29}}) {
      const auto packets = pack_stream(coo, acf, cfg, k_lo, k_hi);
      EXPECT_EQ(static_cast<std::int64_t>(packets.size()),
                stream_cycles(coo, acf, cfg, k_lo, k_hi))
          << name_of(acf) << " slots=" << slots << " range=[" << k_lo << ","
          << k_hi << ")";
    }
  }
}

TEST_P(PackingLaws, PacketsRespectCapacityAndRowRule) {
  const auto [acf, slots, density] = GetParam();
  AccelConfig cfg;
  cfg.bus_bits = slots * 32;
  const auto coo = CooMatrix::from_dense(random_dense(9, 31, density, 23));
  const index_t cap = payload_per_packet(acf, cfg);
  for (const auto& p : pack_stream(coo, acf, cfg, 0, 31)) {
    EXPECT_LE(static_cast<index_t>(p.elems.size()), cap);
    EXPECT_FALSE(p.elems.empty());
    if (acf != Format::kCOO) {
      for (const auto& e : p.elems) EXPECT_EQ(e.row, p.elems.front().row);
    }
  }
}

TEST_P(PackingLaws, EveryNonzeroIsStreamedExactlyOnce) {
  const auto [acf, slots, density] = GetParam();
  AccelConfig cfg;
  cfg.bus_bits = slots * 32;
  const auto d = random_dense(9, 31, density, 29);
  const auto coo = CooMatrix::from_dense(d);
  DenseMatrix rebuilt(9, 31);
  for (const auto& p : pack_stream(coo, acf, cfg, 0, 31)) {
    for (const auto& e : p.elems) {
      if (e.value != 0.0f) {
        EXPECT_EQ(rebuilt.at(e.row, e.col), 0.0f) << "duplicate element";
        rebuilt.set(e.row, e.col, e.value);
      }
    }
  }
  EXPECT_EQ(max_abs_diff(rebuilt, d), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackingLaws,
    ::testing::Combine(::testing::Values(Format::kDense, Format::kCSR,
                                         Format::kCOO),
                       ::testing::Values(index_t{3}, index_t{5}, index_t{16}),
                       ::testing::Values(0.0, 0.05, 0.4, 1.0)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_slots" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// --- Functional correctness across ACF combinations and shapes ---

class SimCorrectness
    : public ::testing::TestWithParam<
          std::tuple<Format, Format, index_t, index_t, index_t, double, double>> {};

TEST_P(SimCorrectness, MatchesSoftwareGemm) {
  const auto [fa, fb, m, k, n, da, db] = GetParam();
  AccelConfig cfg;
  cfg.num_pes = n;  // single tile
  cfg.pe_buffer_bytes = static_cast<index_t>(k) * 8;  // generous buffer
  cfg.bus_bits = 8 * 32;
  const auto a = random_dense(m, k, da, 404);
  const auto b = random_dense(k, n, db, 505);
  const auto r = simulate_ws_matmul(a, b, fa, fb, cfg);
  EXPECT_LE(max_abs_diff(r.output, gemm(a, b)), 1e-3);
  // Useful MACs never exceed performed MACs, and equal the true pairings.
  EXPECT_LE(r.useful_macs, r.performed_macs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimCorrectness,
    ::testing::Combine(
        ::testing::Values(Format::kDense, Format::kCSR, Format::kCOO),
        ::testing::Values(Format::kDense, Format::kCSC),
        ::testing::Values(index_t{7}, index_t{16}),
        ::testing::Values(index_t{12}),
        ::testing::Values(index_t{5}, index_t{11}),
        ::testing::Values(0.1, 0.6),
        ::testing::Values(0.2, 1.0)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             std::string(name_of(std::get<1>(info.param))) + "_m" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<4>(info.param)) + "_da" +
             std::to_string(static_cast<int>(std::get<5>(info.param) * 10)) +
             "_db" +
             std::to_string(static_cast<int>(std::get<6>(info.param) * 10));
    });

TEST(SimValidation, RejectsBadAcfs) {
  const auto a = random_dense(4, 4, 0.5, 1);
  const auto b = random_dense(4, 4, 0.5, 2);
  AccelConfig cfg;
  EXPECT_THROW(simulate_ws_matmul(a, b, Format::kCSC, Format::kDense, cfg),
               std::invalid_argument);
  EXPECT_THROW(simulate_ws_matmul(a, b, Format::kDense, Format::kCSR, cfg),
               std::invalid_argument);
}

TEST(SimValidation, RejectsOversizedTile) {
  AccelConfig cfg;
  cfg.num_pes = 2;
  const auto a = random_dense(4, 4, 0.5, 1);
  const auto b = random_dense(4, 4, 0.5, 2);
  EXPECT_THROW(simulate_ws_matmul(a, b, Format::kDense, Format::kDense, cfg),
               std::invalid_argument);
}

// --- Analytic model vs functional simulator (single tile) ---

class SimVsModel
    : public ::testing::TestWithParam<
          std::tuple<Format, Format, double, double>> {};

TEST_P(SimVsModel, PhasesAgreeCycleForCycle) {
  const auto [fa, fb, da, db] = GetParam();
  AccelConfig cfg;
  cfg.num_pes = 10;
  cfg.pe_buffer_bytes = 512;  // 128 elements: single K pass for k=16
  cfg.bus_bits = 7 * 32;
  const EnergyParams energy;
  const auto a = random_dense(14, 16, da, 606);
  const auto b = random_dense(16, 10, db, 707);
  const auto sim = simulate_ws_matmul(a, b, fa, fb, cfg);
  const auto model = model_matmul(CooMatrix::from_dense(a),
                                  CooMatrix::from_dense(b), fa, fb, cfg, energy);
  ASSERT_EQ(model.n_tiles, 1);
  ASSERT_EQ(model.k_passes, 1);
  EXPECT_EQ(model.phases.load_cycles, sim.phases.load_cycles);
  EXPECT_EQ(model.phases.stream_cycles, sim.phases.stream_cycles);
  EXPECT_EQ(model.phases.compute_cycles, sim.phases.compute_cycles);
  EXPECT_EQ(model.phases.drain_cycles, sim.phases.drain_cycles);
  EXPECT_EQ(model.performed_macs, sim.performed_macs);
  EXPECT_EQ(model.useful_macs, sim.useful_macs);
  EXPECT_EQ(model.streamed_elems, sim.streamed_elems);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsModel,
    ::testing::Combine(
        ::testing::Values(Format::kDense, Format::kCSR, Format::kCOO),
        ::testing::Values(Format::kDense, Format::kCSC),
        ::testing::Values(0.05, 0.5, 1.0), ::testing::Values(0.1, 0.8)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             std::string(name_of(std::get<1>(info.param))) + "_da" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
             "_db" +
             std::to_string(static_cast<int>(std::get<3>(info.param) * 100));
    });

// --- Tiled model behaviour at scale ---

TEST(PerfModel, TileCountsFollowGeometry) {
  AccelConfig cfg;
  cfg.num_pes = 64;
  cfg.pe_buffer_bytes = 256;  // 64 elements
  const EnergyParams e;
  const auto a = CooMatrix::from_dense(random_dense(32, 200, 0.05, 1));
  const auto b = CooMatrix::from_dense(random_dense(200, 150, 0.05, 2));
  const auto r = model_matmul(a, b, Format::kCSR, Format::kDense, cfg, e);
  EXPECT_EQ(r.n_tiles, 3);             // ceil(150/64)
  EXPECT_EQ(r.k_passes, 4);            // ceil(200/64) dense stationary
}

TEST(PerfModel, CscStationaryLengthensPassForSparseB) {
  AccelConfig cfg;
  cfg.num_pes = 64;
  cfg.pe_buffer_bytes = 256;  // 64 elems -> 32 pairs
  const EnergyParams e;
  const auto a = CooMatrix::from_dense(random_dense(32, 200, 0.05, 3));
  const auto b = CooMatrix::from_dense(random_dense(200, 64, 0.05, 4));
  const auto dense_b = model_matmul(a, b, Format::kCSR, Format::kDense, cfg, e);
  const auto csc_b = model_matmul(a, b, Format::kCSR, Format::kCSC, cfg, e);
  // At 5% density a CSC pass covers ~32/0.05 = 640 rows >= K: single pass.
  EXPECT_EQ(csc_b.k_passes, 1);
  EXPECT_GT(dense_b.k_passes, csc_b.k_passes);
}

TEST(PerfModel, SparseAcfWinsAtLowDensityDenseAtHigh) {
  // The Fig. 5 crossover in miniature: total cycles under CSR vs Dense
  // streaming for the same operands.
  AccelConfig cfg;
  cfg.num_pes = 128;
  const EnergyParams e;
  const auto sparse_a = CooMatrix::from_dense(random_dense(64, 64, 0.02, 5));
  const auto dense_a = CooMatrix::from_dense(random_dense(64, 64, 1.0, 6));
  const auto b = CooMatrix::from_dense(random_dense(64, 64, 1.0, 7));
  EXPECT_LT(model_matmul(sparse_a, b, Format::kCSR, Format::kDense, cfg, e)
                .total_cycles(),
            model_matmul(sparse_a, b, Format::kDense, Format::kDense, cfg, e)
                .total_cycles());
  EXPECT_LE(model_matmul(dense_a, b, Format::kDense, Format::kDense, cfg, e)
                .total_cycles(),
            model_matmul(dense_a, b, Format::kCSR, Format::kDense, cfg, e)
                .total_cycles());
}

TEST(PerfModel, UtilizationTracksDensityUnderDenseAcf) {
  AccelConfig cfg;
  cfg.num_pes = 32;
  const EnergyParams e;
  const auto b = CooMatrix::from_dense(random_dense(32, 32, 1.0, 8));
  const auto lo = model_matmul(CooMatrix::from_dense(random_dense(32, 32, 0.05, 9)),
                               b, Format::kDense, Format::kDense, cfg, e);
  const auto hi = model_matmul(CooMatrix::from_dense(random_dense(32, 32, 0.9, 10)),
                               b, Format::kDense, Format::kDense, cfg, e);
  EXPECT_LT(lo.pe_utilization, hi.pe_utilization);
}

TEST(PerfModel, EnergyPositiveAndMonotoneInWork) {
  AccelConfig cfg;
  const EnergyParams e;
  const auto small = CooMatrix::from_dense(random_dense(16, 16, 0.2, 11));
  const auto big = CooMatrix::from_dense(random_dense(64, 64, 0.2, 12));
  const auto bs = CooMatrix::from_dense(random_dense(16, 16, 1.0, 13));
  const auto bb = CooMatrix::from_dense(random_dense(64, 64, 1.0, 14));
  const auto rs = model_matmul(small, bs, Format::kCSR, Format::kDense, cfg, e);
  const auto rb = model_matmul(big, bb, Format::kCSR, Format::kDense, cfg, e);
  EXPECT_GT(rs.compute_energy_j, 0.0);
  EXPECT_GT(rb.compute_energy_j, rs.compute_energy_j);
}

// --- Dense-B fast path ---

class DenseBFastPath
    : public ::testing::TestWithParam<std::tuple<Format, Format, double>> {};

TEST_P(DenseBFastPath, MatchesGeneralModelOnMaterializedDenseB) {
  const auto [fa, fb, da] = GetParam();
  AccelConfig cfg;
  cfg.num_pes = 48;
  cfg.pe_buffer_bytes = 256;
  const EnergyParams e;
  const auto a = CooMatrix::from_dense(random_dense(40, 96, da, 77));
  const auto b = CooMatrix::from_dense(random_dense(96, 70, 1.0, 78));
  const auto fast = model_matmul_dense_b(a, 70, fa, fb, cfg, e);
  const auto full = model_matmul(a, b, fa, fb, cfg, e);
  EXPECT_EQ(fast.phases.load_cycles, full.phases.load_cycles);
  EXPECT_EQ(fast.phases.stream_cycles, full.phases.stream_cycles);
  EXPECT_EQ(fast.phases.compute_cycles, full.phases.compute_cycles);
  EXPECT_EQ(fast.phases.drain_cycles, full.phases.drain_cycles);
  EXPECT_EQ(fast.performed_macs, full.performed_macs);
  EXPECT_EQ(fast.useful_macs, full.useful_macs);
  EXPECT_EQ(fast.n_tiles, full.n_tiles);
  EXPECT_EQ(fast.k_passes, full.k_passes);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DenseBFastPath,
    ::testing::Combine(
        ::testing::Values(Format::kDense, Format::kCSR, Format::kCOO),
        ::testing::Values(Format::kDense, Format::kCSC),
        ::testing::Values(0.03, 0.4, 1.0)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             std::string(name_of(std::get<1>(info.param))) + "_d" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// --- Tensor kernels on the model ---

TEST(TensorModel, CooAcfBeatsDenseForSparseTensor) {
  AccelConfig cfg;
  const EnergyParams e;
  const auto x = testing::random_tensor(40, 40, 40, 0.01, 15);
  const auto coo = CooTensor3::from_dense(x);
  const auto rc = model_spttm(coo, 20, Format::kCOO, cfg, e);
  const auto rd = model_spttm(coo, 20, Format::kDense, cfg, e);
  EXPECT_LT(rc.total_cycles(), rd.total_cycles());
  EXPECT_GT(rc.pe_utilization, rd.pe_utilization);
}

TEST(TensorModel, CsfStreamsFewerElementsThanCooWhenFibersAreDense) {
  AccelConfig cfg;
  const EnergyParams e;
  // Dense fibers: few (x,y) pairs, many z per fiber -> CSF amortizes ids.
  DenseTensor3 t(4, 4, 64);
  for (index_t z = 0; z < 64; ++z) t.set(1, 2, z, 1.0f);
  const auto coo = CooTensor3::from_dense(t);
  EXPECT_LT(tensor_stream_cycles(coo, Format::kCSF, cfg),
            tensor_stream_cycles(coo, Format::kCOO, cfg));
}

TEST(TensorModel, MttkrpPassesScaleWithFactorRows) {
  AccelConfig cfg;
  cfg.pe_buffer_bytes = 512;  // 128 elements
  const EnergyParams e;
  const auto small = CooTensor3::from_dense(testing::random_tensor(8, 16, 16, 0.1, 16));
  const auto big = CooTensor3::from_dense(testing::random_tensor(8, 300, 300, 0.01, 17));
  EXPECT_EQ(model_mttkrp(small, 8, Format::kCOO, cfg, e).k_passes, 1);
  EXPECT_EQ(model_mttkrp(big, 8, Format::kCOO, cfg, e).k_passes, 5);
}

TEST(TensorModel, UsefulMacsMatchKernelArithmetic) {
  AccelConfig cfg;
  cfg.num_pes = 64;
  const EnergyParams e;
  const auto x = CooTensor3::from_dense(testing::random_tensor(10, 10, 10, 0.2, 18));
  const index_t r = 16;
  // SpTTM: one MAC per nonzero per output column; MTTKRP: two.
  EXPECT_EQ(model_spttm(x, r, Format::kCOO, cfg, e).useful_macs, x.nnz() * r);
  EXPECT_EQ(model_mttkrp(x, r, Format::kCOO, cfg, e).useful_macs,
            2 * x.nnz() * r);
}

// --- Area model (Fig. 7b) ---

TEST(AreaModel, ExtensionCostsAboutTenPercent) {
  AccelConfig cfg;
  cfg.pe_buffer_bytes = 128;
  cfg.vector_width = 8;
  const auto a = pe_area(cfg, /*multi_precision=*/false);
  EXPECT_GT(a.extension_overhead(), 0.06);
  EXPECT_LT(a.extension_overhead(), 0.14);
}

TEST(AreaModel, ArrayAreaScalesWithPes) {
  AccelConfig small;
  small.num_pes = 256;
  AccelConfig big;
  big.num_pes = 2048;
  EXPECT_NEAR(array_area_mm2(big) / array_area_mm2(small), 8.0, 1e-9);
}

TEST(AreaModel, EvaluationArrayIsTensOfMm2) {
  // 2048 multi-precision PEs (16384 MACs) should land in the tens of mm^2,
  // consistent with MINT_m (0.41 mm^2) being ~0.5% of the array (§VII-B).
  const double a = array_area_mm2(AccelConfig::paper_default());
  EXPECT_GT(a, 40.0);
  EXPECT_LT(a, 200.0);
}

}  // namespace
}  // namespace mt
