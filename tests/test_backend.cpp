// Pluggable execution backends (exec/backend.hpp), the async device
// submission ring (exec/device_ring.hpp), and their serving integration:
// mint bit-identity with the CPU kernels, CPU-vs-sim dual-run agreement
// on all six kernels, ring ticket/backpressure/drain semantics, the
// server's async device path keeping >1 job in flight per worker, and
// the grouped ServerOptions with deprecated flat aliases.
//
// Tolerance note (the dual-run contract): SimBackend lowers every kernel
// to tiled fp32 A*B matmuls inside the simulator's single-tile envelope,
// accumulating K-tile partial products in tile order. That reassociates
// the K-reduction relative to the CPU kernels — the same few-ULP-per-term
// divergence the SIMD tier's lane trees show in test_simd. With value_t =
// float (eps ~ 1.2e-7) and reductions of tens-to-hundreds of terms, the
// observed relative error is ~1e-6..1e-5; the checks (and the server's
// default BackendOptions::dual_run_tolerance) use 5e-4 — decades above
// any legitimate reassociation, decades below a real defect (~1e-1).
// MintBackend runs the CPU kernels themselves, so its bound is exactly 0.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "convert/convert.hpp"
#include "exec/backend.hpp"
#include "exec/device_ring.hpp"
#include "exec/exec.hpp"
#include "runtime/server.hpp"
#include "testing.hpp"

namespace {

using namespace mt;
using runtime::Request;
using runtime::Response;
using runtime::Server;
using runtime::ServerOptions;
using mt::testing::random_dense;
using mt::testing::random_tensor;

constexpr double kSimTolerance = 5e-4;  // see the tolerance note above

// Seeded operand set covering all six kernels, plus a Job builder wiring
// the right fields per kernel (the borrowed-pointer convention of
// exec::Job). Members outlive every Job built from them.
struct Operands {
  DenseMatrix a_dense = random_dense(40, 32, 0.3, 11);
  DenseMatrix b_dense = random_dense(32, 40, 0.25, 12);
  AnyMatrix a_csr = encode(a_dense, Format::kCSR);
  AnyMatrix b_csr = encode(b_dense, Format::kCSR);
  AnyMatrix a_plain = encode(a_dense, Format::kDense);
  DenseMatrix factor = random_dense(32, 8, 1.0, 13);
  std::vector<value_t> vec = std::vector<value_t>(32, 0.5f);
  DenseTensor3 x_dense = random_tensor(9, 11, 8, 0.2, 14);
  AnyTensor x_csf = encode(x_dense, Format::kCSF);
  DenseMatrix u = random_dense(8, 6, 1.0, 15);      // SpTTM factor (z x r)
  DenseMatrix kb = random_dense(11, 5, 1.0, 16);    // MTTKRP B (y x r)
  DenseMatrix kc = random_dense(8, 5, 1.0, 17);     // MTTKRP C (z x r)

  Operands() {
    for (std::size_t i = 0; i < vec.size(); ++i) {
      vec[i] = 0.125f * static_cast<float>(i % 7) - 0.25f;
    }
  }

  exec::Job job(Kernel k) const {
    exec::Job j;
    j.kernel = k;
    switch (k) {
      case Kernel::kSpMV:
        j.a = &a_csr;
        j.vec = &vec;
        break;
      case Kernel::kGemm:
        j.a = &a_plain;
        j.dense_b = &factor;
        break;
      case Kernel::kSpMM:
        // The unified entry point: a second compressed operand, the shape
        // that used to be a separate SpMM special case.
        j.a = &a_csr;
        j.b = &b_csr;
        break;
      case Kernel::kSpGEMM:
        j.a = &a_csr;
        j.b = &b_csr;
        break;
      case Kernel::kSpTTM:
        j.x = &x_csf;
        j.dense_b = &u;
        break;
      case Kernel::kMTTKRP:
        j.x = &x_csf;
        j.dense_b = &kb;
        j.dense_c = &kc;
        break;
    }
    return j;
  }
};

constexpr Kernel kSixKernels[] = {Kernel::kGemm,   Kernel::kSpMM,
                                  Kernel::kSpGEMM, Kernel::kSpMV,
                                  Kernel::kSpTTM,  Kernel::kMTTKRP};

// --- Backend x tier labeling (the obs series contract) ---

TEST(BackendTier, CpuLabelsKeepPreBackendSeriesNames) {
  using exec::BackendKind;
  using exec::ExecTier;
  // The pre-backend mt_exec_ns{...,tier=...} values were "scalar"/"avx2";
  // the backend dimension must not rename them.
  EXPECT_EQ(exec::tier_label(BackendKind::kCpu, ExecTier::kScalar), "scalar");
  EXPECT_EQ(exec::tier_label(BackendKind::kCpu, ExecTier::kSimd), "avx2");
  EXPECT_EQ(exec::tier_label(BackendKind::kSim, ExecTier::kDevice), "sim");
  EXPECT_EQ(exec::tier_label(BackendKind::kMint, ExecTier::kDevice), "mint");
}

TEST(BackendTier, SlotsAreDenseAndDistinct) {
  using exec::BackendKind;
  using exec::ExecTier;
  const std::size_t slots[] = {
      exec::tier_slot(BackendKind::kCpu, ExecTier::kScalar),
      exec::tier_slot(BackendKind::kCpu, ExecTier::kSimd),
      exec::tier_slot(BackendKind::kSim, ExecTier::kDevice),
      exec::tier_slot(BackendKind::kMint, ExecTier::kDevice)};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(slots[i], exec::kNumTierSlots);
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_NE(slots[i], slots[j]);
  }
}

// --- Direct backend runs: mint bit-identity, sim tolerance ---

TEST(BackendFactory, KindsRoundTrip) {
  for (auto k : {exec::BackendKind::kCpu, exec::BackendKind::kSim,
                 exec::BackendKind::kMint}) {
    EXPECT_EQ(exec::make_backend(k)->kind(), k);
  }
}

TEST(BackendMint, BitIdenticalToCpuOnAllSixKernels) {
  const Operands ops;
  const auto cpu = exec::make_backend(exec::BackendKind::kCpu);
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  for (Kernel k : kSixKernels) {
    auto j = ops.job(k);
    j.modeled_ns = 1234;
    const auto want = cpu->run(j);
    const auto got = mint->run(j);
    EXPECT_EQ(exec::max_rel_error(want.output, got.output), 0.0)
        << name_of(k);
    EXPECT_EQ(got.dispatch.backend, exec::BackendKind::kMint) << name_of(k);
    EXPECT_EQ(got.dispatch.tier, exec::ExecTier::kDevice) << name_of(k);
    // Mint reports the job's modeled offload latency as its device time.
    EXPECT_EQ(got.device_ns, 1234) << name_of(k);
    EXPECT_EQ(want.device_ns, 0) << name_of(k);
  }
}

TEST(BackendSim, DualRunAgreesWithCpuOnAllSixKernels) {
  const Operands ops;
  const auto cpu = exec::make_backend(exec::BackendKind::kCpu);
  const auto sim = exec::make_backend(exec::BackendKind::kSim);
  for (Kernel k : kSixKernels) {
    const auto j = ops.job(k);
    const auto want = cpu->run(j);
    const auto got = sim->run(j);
    const double err = exec::max_rel_error(want.output, got.output);
    EXPECT_LE(err, kSimTolerance) << name_of(k);
    EXPECT_EQ(got.dispatch.backend, exec::BackendKind::kSim) << name_of(k);
    EXPECT_EQ(got.dispatch.tier, exec::ExecTier::kDevice) << name_of(k);
    // The simulator's cycle count at the model clock: always > 0 for a
    // job that did any work.
    EXPECT_GT(got.device_ns, 0) << name_of(k);
  }
}

TEST(BackendCompare, MaxRelErrorDetectsShapeAndTypeMismatch) {
  const auto inf = std::numeric_limits<double>::infinity();
  const exec::JobOutput v3 = std::vector<value_t>{1.0f, 2.0f, 3.0f};
  const exec::JobOutput v2 = std::vector<value_t>{1.0f, 2.0f};
  const exec::JobOutput m = DenseMatrix(2, 2);
  EXPECT_EQ(exec::max_rel_error(v3, v3), 0.0);
  EXPECT_EQ(exec::max_rel_error(v3, v2), inf);
  EXPECT_EQ(exec::max_rel_error(v3, m), inf);
  exec::JobOutput off = std::vector<value_t>{1.0f, 2.0f, 3.5f};
  // |3.0 - 3.5| / 3.5: mixed absolute/relative with max(1,|x|,|y|) scale.
  EXPECT_NEAR(exec::max_rel_error(v3, off), 0.5 / 3.5, 1e-9);
}

TEST(BackendPricing, CostsArePositiveAndScaleWithWork) {
  exec::PricingInput in;
  in.kernel = Kernel::kSpMM;
  in.flops = 1'000'000;
  const auto cpu = exec::make_backend(exec::BackendKind::kCpu);
  const auto sim = exec::make_backend(exec::BackendKind::kSim);
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  const auto c1 = cpu->price(in);
  EXPECT_GT(c1.ns, 0.0);
  EXPECT_GT(c1.energy_j, 0.0);
  EXPECT_GT(sim->price(in).ns, 0.0);
  EXPECT_GT(mint->price(in).ns, 0.0);
  in.flops *= 4;
  EXPECT_GT(cpu->price(in).ns, c1.ns);
}

// --- DeviceRing unit tests ---

// Gate-controlled stub: run() parks until open() so tests can hold jobs
// "on the device" and observe queue backpressure and in-flight depth
// deterministically.
class GateBackend final : public exec::Backend {
 public:
  exec::BackendKind kind() const override { return exec::BackendKind::kMint; }

  exec::JobResult run(const exec::Job& job) const override {
    std::unique_lock<std::mutex> lk(mu_);
    ++started_;
    started_cv_.notify_all();
    open_cv_.wait(lk, [&] { return open_; });
    exec::JobResult r;
    r.output = std::vector<value_t>{static_cast<value_t>(job.modeled_ns)};
    r.dispatch.backend = exec::BackendKind::kMint;
    r.dispatch.tier = exec::ExecTier::kDevice;
    return r;
  }

  exec::BackendCost price(const exec::PricingInput&) const override {
    return {};
  }

  void open() {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

  void wait_started(int n) const {
    std::unique_lock<std::mutex> lk(mu_);
    started_cv_.wait(lk, [&] { return started_ >= n; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable started_cv_, open_cv_;
  mutable bool open_ = false;
  mutable int started_ = 0;
};

class ThrowBackend final : public exec::Backend {
 public:
  exec::BackendKind kind() const override { return exec::BackendKind::kMint; }
  exec::JobResult run(const exec::Job&) const override {
    throw std::runtime_error("device fault");
  }
  exec::BackendCost price(const exec::PricingInput&) const override {
    return {};
  }
};

exec::Job tagged_job(std::int64_t tag) {
  exec::Job j;
  j.modeled_ns = tag;
  return j;
}

value_t tag_of(const exec::JobResult& r) {
  return std::get<std::vector<value_t>>(r.output).at(0);
}

TEST(DeviceRing, TicketsAreMonotonicFromOneAndClaimsMatchJobs) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 8, .workers = 2});
  std::vector<exec::DeviceRing::Ticket> tickets;
  for (int i = 0; i < 5; ++i) tickets.push_back(ring.submit(tagged_job(i)));
  dev.open();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)],
              static_cast<exec::DeviceRing::Ticket>(i + 1));
    const auto r = ring.wait(tickets[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tag_of(r), static_cast<value_t>(i));
    EXPECT_GE(r.run_ns, 0);  // stamped by the ring's device-side clock
  }
  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, 5);
  EXPECT_EQ(s.completed, 5);
  EXPECT_EQ(s.in_flight, 0);
}

TEST(DeviceRing, SubmitAllThenClaimAllOutrunsTheSlotCount) {
  // Backpressure bounds only the descriptor queue: one submitter may post
  // far more jobs than slots before claiming any, because executing and
  // completed-unclaimed jobs do not hold slots.
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 1, .workers = 1});
  const Operands ops;
  std::vector<exec::DeviceRing::Ticket> tickets;
  for (int i = 0; i < 8; ++i) tickets.push_back(ring.submit(ops.job(Kernel::kSpMV)));
  const auto want = mint->run(ops.job(Kernel::kSpMV));
  for (auto t : tickets) {
    const auto r = ring.wait(t);
    EXPECT_EQ(exec::max_rel_error(want.output, r.output), 0.0);
  }
  const auto rs = ring.stats();
  EXPECT_EQ(rs.submitted, 8);
  // The slot bound holds: at most 1 queued + 1 executing ever coexist.
  EXPECT_LE(rs.peak_in_flight, 2);
}

TEST(DeviceRing, BackpressureBlocksSubmitUntilASlotFrees) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 2, .workers = 1});
  // First job occupies the worker (gate closed); two more fill the queue.
  ring.submit(tagged_job(1));
  dev.wait_started(1);
  ring.submit(tagged_job(2));
  ring.submit(tagged_job(3));
  std::atomic<bool> accepted{false};
  std::thread blocked([&] {
    ring.submit(tagged_job(4));  // must block: both slots are held
    accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accepted.load());
  EXPECT_EQ(ring.stats().in_flight, 3);  // 1 executing + 2 queued
  dev.open();
  blocked.join();
  EXPECT_TRUE(accepted.load());
  for (exec::DeviceRing::Ticket t = 1; t <= 4; ++t) (void)ring.wait(t);
  EXPECT_GE(ring.stats().peak_in_flight, 3);
}

TEST(DeviceRing, PeakInFlightSeesConcurrentDeviceWorkers) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 4, .workers = 2});
  ring.submit(tagged_job(1));
  ring.submit(tagged_job(2));
  dev.wait_started(2);  // both device workers hold a job simultaneously
  EXPECT_GE(ring.stats().in_flight, 2);
  dev.open();
  (void)ring.wait(1);
  (void)ring.wait(2);
  EXPECT_GE(ring.stats().peak_in_flight, 2);
}

TEST(DeviceRing, StopDrainsAcceptedTicketsAndClosesIntake) {
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 8, .workers = 1});
  const Operands ops;
  std::vector<exec::DeviceRing::Ticket> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(ring.submit(ops.job(Kernel::kSpMV)));
  ring.stop();
  // Every accepted ticket still claims its result after stop().
  for (auto t : tickets) {
    const auto r = ring.wait(t);
    EXPECT_TRUE(std::holds_alternative<std::vector<value_t>>(r.output));
  }
  // Intake is closed: the job is not accepted.
  EXPECT_EQ(ring.submit(ops.job(Kernel::kSpMV)),
            exec::DeviceRing::kInvalidTicket);
  // Claims are one-shot: a drained ring reports the double claim.
  EXPECT_THROW((void)ring.wait(tickets[0]), std::invalid_argument);
}

TEST(DeviceRing, NeverIssuedTicketsThrow) {
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 2, .workers = 1});
  exec::JobResult out;
  EXPECT_THROW((void)ring.try_poll(exec::DeviceRing::kInvalidTicket, &out),
               std::invalid_argument);
  EXPECT_THROW((void)ring.try_poll(99, &out), std::invalid_argument);
  EXPECT_THROW((void)ring.wait(7), std::invalid_argument);
}

TEST(DeviceRing, TryPollReportsInFlightThenDelivers) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 2, .workers = 1});
  const auto t = ring.submit(tagged_job(42));
  dev.wait_started(1);
  exec::JobResult out;
  EXPECT_FALSE(ring.try_poll(t, &out));  // still on the device
  dev.open();
  while (!ring.try_poll(t, &out)) std::this_thread::yield();
  EXPECT_EQ(tag_of(out), 42.0f);
}

TEST(DeviceRing, SubmitAllIssuesOrderedTicketsAndDeliversEachJob) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 8, .workers = 2});
  std::vector<exec::Job> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(tagged_job(10 + i));
  const auto tickets = ring.submit_all(std::move(jobs));
  ASSERT_EQ(tickets.size(), 5u);
  // Tickets come out in submission order from the same monotonic source
  // submit() draws from: consecutive, ascending, starting at 1 here.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i], static_cast<exec::DeviceRing::Ticket>(i + 1));
  }
  dev.open();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tag_of(ring.wait(tickets[i])),
              static_cast<value_t>(10 + static_cast<int>(i)));
  }
  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, 5);
  EXPECT_EQ(s.completed, 5);
  EXPECT_EQ(s.in_flight, 0);
}

TEST(DeviceRing, SubmitAllBlocksOnFullSlotsThenAdmitsTheRest) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 2, .workers = 1});
  ring.submit(tagged_job(1));
  dev.wait_started(1);             // worker holds job 1; queue is empty
  ring.submit(tagged_job(2));      // fill both descriptor slots
  ring.submit(tagged_job(3));
  std::atomic<bool> returned{false};
  std::vector<exec::DeviceRing::Ticket> batch;
  std::thread submitter([&] {
    batch = ring.submit_all({tagged_job(4), tagged_job(5), tagged_job(6)});
    returned.store(true);
  });
  // The window is larger than the free slot count: submit_all must park
  // on the same space_ backpressure as per-job submit.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  EXPECT_EQ(ring.stats().in_flight, 3);  // 1 executing + 2 queued
  dev.open();
  submitter.join();
  EXPECT_TRUE(returned.load());
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], static_cast<exec::DeviceRing::Ticket>(4 + i));
  }
  for (exec::DeviceRing::Ticket t = 1; t <= 6; ++t) {
    EXPECT_EQ(tag_of(ring.wait(t)), static_cast<value_t>(t));
  }
}

TEST(DeviceRing, SubmitAllWindowLargerThanRingDrainsUnderTheSlotBound) {
  // A whole serving window goes through one submit_all even when the
  // window exceeds the descriptor ring: the call admits in slot-sized
  // runs, letting the device drain between runs, and in-flight depth
  // never exceeds slots + workers.
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 4, .workers = 1});
  const Operands ops;
  std::vector<exec::Job> jobs;
  for (int i = 0; i < 16; ++i) jobs.push_back(ops.job(Kernel::kSpMV));
  const auto tickets = ring.submit_all(std::move(jobs));
  ASSERT_EQ(tickets.size(), 16u);
  const auto want = mint->run(ops.job(Kernel::kSpMV));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_NE(tickets[i], exec::DeviceRing::kInvalidTicket) << i;
    if (i > 0) {
      EXPECT_GT(tickets[i], tickets[i - 1]) << i;
    }
    const auto r = ring.wait(tickets[i]);
    EXPECT_EQ(exec::max_rel_error(want.output, r.output), 0.0) << i;
  }
  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, 16);
  EXPECT_EQ(s.completed, 16);
  EXPECT_LE(s.peak_in_flight, 4 + 1);  // queued bound + the lone worker
}

TEST(DeviceRing, SubmitAllOnStoppedRingReturnsOnlyInvalidTickets) {
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 4, .workers = 1});
  ring.stop();
  const Operands ops;
  const auto tickets =
      ring.submit_all({ops.job(Kernel::kSpMV), ops.job(Kernel::kSpMV)});
  ASSERT_EQ(tickets.size(), 2u);
  for (auto t : tickets) EXPECT_EQ(t, exec::DeviceRing::kInvalidTicket);
  EXPECT_EQ(ring.stats().submitted, 0);
}

TEST(DeviceRing, StopMidSubmitAllLeavesUnadmittedJobsInvalid) {
  GateBackend dev;
  exec::DeviceRing ring(dev, {.slots = 1, .workers = 1});
  const auto t1 = ring.submit(tagged_job(1));
  dev.wait_started(1);             // job 1 executing
  const auto t2 = ring.submit(tagged_job(2));  // the only slot is held
  std::vector<exec::DeviceRing::Ticket> batch;
  std::thread submitter([&] {
    batch = ring.submit_all({tagged_job(3), tagged_job(4)});
  });
  // Let the submitter park on backpressure, then stop the ring while it
  // waits. stop() wakes it before any slot frees, so neither window job
  // is admitted; stop() itself blocks joining the gated worker until
  // open() lets the accepted jobs drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { ring.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  dev.open();
  stopper.join();
  submitter.join();
  ASSERT_EQ(batch.size(), 2u);
  for (auto t : batch) EXPECT_EQ(t, exec::DeviceRing::kInvalidTicket);
  // Accepted tickets still drain and claim after the stop.
  EXPECT_EQ(tag_of(ring.wait(t1)), 1.0f);
  EXPECT_EQ(tag_of(ring.wait(t2)), 2.0f);
  EXPECT_EQ(ring.stats().submitted, 2);
}

TEST(DeviceRing, DeviceFaultsRethrowAtClaim) {
  const ThrowBackend dev;
  exec::DeviceRing ring(dev, {.slots = 2, .workers = 1});
  const auto t = ring.submit(tagged_job(1));
  EXPECT_THROW((void)ring.wait(t), std::runtime_error);
  EXPECT_EQ(ring.stats().completed, 1);  // a faulted job still completes
}

// --- Grouped ServerOptions + deprecated flat aliases ---

TEST(ServerOptionsGroups, DeprecatedAliasesFoldIntoGroups) {
  ServerOptions o;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Pre-grouping call-site style: flat knobs only.
  o.use_plan_cache = false;
  o.batch_window = 3;
  o.use_arena = false;
  o.arena_max_cached_bytes = 1024;
#pragma GCC diagnostic pop
  const ServerOptions n = o.normalized();
  EXPECT_FALSE(n.caches.use_plan_cache);
  EXPECT_EQ(n.batch.window, 3);
  EXPECT_FALSE(n.arena.enabled);
  EXPECT_EQ(n.arena.max_cached_bytes, 1024u);
  // Untouched aliases leave their groups alone.
  EXPECT_TRUE(n.caches.use_conversion_cache);
  EXPECT_EQ(n.batch.policy, runtime::BatchPolicy::kWindow);
}

TEST(ServerOptionsGroups, GroupSettingsSurviveNormalization) {
  ServerOptions o;
  o.caches.use_conversion_cache = false;
  o.batch.window = 5;
  const ServerOptions n = o.normalized();
  EXPECT_FALSE(n.caches.use_conversion_cache);
  EXPECT_EQ(n.batch.window, 5);
}

TEST(ServerOptionsGroups, ServerNormalizesAtConstruction) {
  ServerOptions o;
  o.num_workers = 1;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  o.batch_window = 2;
#pragma GCC diagnostic pop
  Server srv(o);
  EXPECT_EQ(srv.options().batch.window, 2);
}

TEST(ServerOptionsGroups, AsyncAndDualRunRequireADeviceBackend) {
  ServerOptions o;
  o.backend.async = true;  // backend.backend left at kCpu
  EXPECT_THROW(Server srv(o), std::invalid_argument);
  ServerOptions o2;
  o2.backend.dual_run = true;
  EXPECT_THROW(Server srv2(o2), std::invalid_argument);
}

// --- Server integration: device backends, async ring, dual-run ---

ServerOptions device_opts(exec::BackendKind kind) {
  ServerOptions o;
  o.num_workers = 1;
  o.queue_capacity = 32;
  o.batch.window = 16;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  o.backend.backend = kind;
  return o;
}

Request spmv_request(runtime::MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

TEST(ServerBackend, BlockingMintServesBitIdenticalResults) {
  auto o = device_opts(exec::BackendKind::kMint);
  Server srv(o);
  const auto a_dense = random_dense(48, 40, 0.1, 21);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  std::vector<value_t> x(40, 0.25f);

  const auto plan = srv.plan_for(spmv_request(h, x));
  EXPECT_EQ(plan->backend, exec::BackendKind::kMint);
  EXPECT_GT(plan->cpu_cost_ns, 0.0);
  EXPECT_GT(plan->device_cost_ns, 0.0);
  EXPECT_EQ(plan->modeled_device_ns,
            static_cast<std::int64_t>(std::llround(plan->device_cost_ns)));

  const auto resp = srv.submit(spmv_request(h, x)).get();
  // Mint runs the CPU kernels on the plan's repaired ACF rep: bit-equal
  // to a direct engine call on that format.
  const auto want = exec::spmv(encode(a_dense, plan->run_a), x);
  EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), want);
  EXPECT_EQ(resp.stats.dispatch.backend, exec::BackendKind::kMint);
  EXPECT_EQ(resp.stats.dispatch.tier, exec::ExecTier::kDevice);
  EXPECT_EQ(resp.stats.device_ns, plan->modeled_device_ns);
  EXPECT_EQ(srv.device_ring(), nullptr);  // blocking path: no ring

  const auto c = srv.counters();
  EXPECT_EQ(c.device_jobs, 1);
  EXPECT_EQ(c.dual_run_checks, 0);
}

TEST(ServerBackend, DualRunSimAgreesOnEveryKernelKind) {
  auto o = device_opts(exec::BackendKind::kSim);
  o.backend.dual_run = true;  // default tolerance covers sim (see header)
  Server srv(o);
  const auto a_dense = random_dense(40, 32, 0.15, 22);
  const auto b_dense = random_dense(32, 40, 0.15, 23);
  const auto ha = srv.register_matrix(encode(a_dense, Format::kCSR));
  const auto hb = srv.register_matrix(encode(b_dense, Format::kCSR));
  const auto hd = srv.register_matrix(encode(a_dense, Format::kDense));
  const auto hx = srv.register_tensor(encode(random_tensor(9, 11, 8, 0.2, 24),
                                             Format::kCSF));

  std::vector<Request> reqs;
  reqs.push_back(spmv_request(ha, std::vector<value_t>(32, 0.5f)));
  {
    Request r;
    r.kernel = Kernel::kSpMM;
    r.a = ha;
    r.dense_b = random_dense(32, 8, 1.0, 25);
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kGemm;
    r.a = hd;
    r.dense_b = random_dense(32, 8, 1.0, 26);
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kSpGEMM;
    r.a = ha;
    r.b = hb;
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kSpTTM;
    r.x = hx;
    r.dense_b = random_dense(8, 6, 1.0, 27);
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kMTTKRP;
    r.x = hx;
    r.dense_b = random_dense(11, 5, 1.0, 28);
    r.dense_c = random_dense(8, 5, 1.0, 29);
    reqs.push_back(std::move(r));
  }

  for (auto& r : reqs) {
    const auto resp = srv.submit(std::move(r)).get();  // throws on mismatch
    EXPECT_EQ(resp.stats.dispatch.backend, exec::BackendKind::kSim);
  }
  const auto c = srv.counters();
  EXPECT_EQ(c.completed, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(c.dual_run_checks, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(c.dual_run_mismatches, 0);
  EXPECT_EQ(c.failed, 0);
}

TEST(ServerBackend, DualRunMismatchFailsTheRequest) {
  auto o = device_opts(exec::BackendKind::kSim);
  o.backend.dual_run = true;
  // An unsatisfiable tolerance turns every check into a mismatch: the
  // deterministic way to exercise the failure path (sim's real error may
  // legitimately be 0 on tiny reductions).
  o.backend.dual_run_tolerance = -1.0;
  Server srv(o);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.2, 31), Format::kCSR));
  auto fut = srv.submit(spmv_request(h, std::vector<value_t>(24, 1.0f)));
  EXPECT_THROW((void)fut.get(), std::runtime_error);
  const auto c = srv.counters();
  EXPECT_EQ(c.dual_run_checks, 1);
  EXPECT_EQ(c.dual_run_mismatches, 1);
  EXPECT_EQ(c.failed, 1);
}

// Occupies the single serving worker with a chunky SpGEMM so everything
// submitted next piles up in the queue and drains as one async window.
std::future<Response> occupy_worker(Server& srv, runtime::MatrixHandle a,
                                    runtime::MatrixHandle b) {
  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = a;
  r.b = b;
  auto fut = srv.submit(std::move(r));
  while (srv.queue_depth() > 0) std::this_thread::yield();
  return fut;
}

TEST(ServerBackend, AsyncRingKeepsManyDeviceJobsInFlightPerWorker) {
  auto o = device_opts(exec::BackendKind::kMint);
  o.backend.async = true;
  o.backend.ring_slots = 32;
  o.backend.ring_workers = 2;
  // Occupy the modeled latency on the "device": that wall-clock is what
  // the submit-all-then-claim-all window overlaps.
  o.backend.simulate_latency = true;
  Server srv(o);
  ASSERT_NE(srv.device_ring(), nullptr);
  EXPECT_EQ(srv.device_ring()->slots(), 32u);
  EXPECT_EQ(srv.device_ring()->workers(), 2);

  const auto a_dense = random_dense(64, 48, 0.1, 41);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  const auto hs_a = srv.register_matrix(
      encode(random_dense(400, 400, 0.05, 42), Format::kCSR));
  const auto hs_b = srv.register_matrix(
      encode(random_dense(400, 400, 0.05, 43), Format::kCSR));

  std::vector<std::vector<value_t>> xs;
  for (int i = 0; i < 8; ++i) {
    std::vector<value_t> x(48);
    for (index_t k = 0; k < 48; ++k) {
      x[static_cast<std::size_t>(k)] =
          0.125f * static_cast<float>((k + i) % 9) - 0.25f;
    }
    xs.push_back(std::move(x));
  }
  const auto plan = srv.plan_for(spmv_request(h, xs[0]));

  // Stage the burst behind the occupied worker; the next drained window
  // holds all eight requests, and the async path submits the whole window
  // into the ring before claiming the first completion.
  auto occupier = occupy_worker(srv, hs_a, hs_b);
  std::vector<std::future<Response>> futs;
  for (auto& x : xs) futs.push_back(srv.submit(spmv_request(h, x)));
  (void)occupier.get();

  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto resp = futs[i].get();
    const auto want = exec::spmv(encode(a_dense, plan->run_a), xs[i]);
    EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), want) << i;
    EXPECT_EQ(resp.stats.dispatch.backend, exec::BackendKind::kMint) << i;
    EXPECT_GT(resp.stats.device_ns, 0) << i;
    EXPECT_GE(resp.stats.device_wait_ns, 0) << i;
  }

  // The acceptance gate: one serving worker demonstrably held more than
  // one device job in flight.
  const auto rs = srv.device_ring()->stats();
  EXPECT_GT(rs.peak_in_flight, 1);
  EXPECT_EQ(rs.submitted, 9);  // occupier + 8 staged requests
  EXPECT_EQ(rs.completed, 9);

  const auto c = srv.counters();
  EXPECT_EQ(c.device_jobs, 9);
  const auto text = srv.metrics_text();
  EXPECT_NE(text.find("mt_device_inflight_peak"), std::string::npos);
  EXPECT_NE(text.find("mt_device_ring_slots"), std::string::npos);
  EXPECT_NE(text.find("mt_device_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(text.find("tier=\"mint\""), std::string::npos);
}

TEST(ServerBackend, AsyncRingStopsCleanlyWithServerStop) {
  auto o = device_opts(exec::BackendKind::kMint);
  o.backend.async = true;
  o.backend.ring_workers = 1;
  Server srv(o);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.2, 51), Format::kCSR));
  auto fut = srv.submit(spmv_request(h, std::vector<value_t>(24, 1.0f)));
  (void)fut.get();
  srv.stop();  // joins workers, then stops the ring; idempotent
  srv.stop();
  EXPECT_EQ(srv.device_ring()->stats().in_flight, 0);
}

// Multi-client mixed-kernel traffic through the async mint ring — the
// TSan target (this suite carries the `concurrency` ctest label): server
// workers, ring workers, and client threads all touch the ring, the
// caches, and the counters concurrently.
TEST(ServerBackendStress, AsyncMintMixedTrafficStaysCoherent) {
  auto o = device_opts(exec::BackendKind::kMint);
  o.num_workers = 2;
  o.queue_capacity = 64;
  o.batch.window = 8;
  o.backend.async = true;
  o.backend.ring_slots = 16;
  o.backend.ring_workers = 2;
  o.backend.simulate_latency = true;
  o.backend.max_simulated_latency_ns = 200'000;  // keep the test quick
  Server srv(o);

  const auto a_dense = random_dense(48, 40, 0.1, 61);
  const auto ha = srv.register_matrix(encode(a_dense, Format::kCSR));
  const auto factor = random_dense(40, 6, 1.0, 62);
  const std::vector<value_t> x(40, 0.5f);
  const auto spmv_plan = srv.plan_for(spmv_request(ha, x));
  const auto want_spmv = exec::spmv(encode(a_dense, spmv_plan->run_a), x);

  Request mm;
  mm.kernel = Kernel::kSpMM;
  mm.a = ha;
  mm.dense_b = factor;
  const auto spmm_plan = srv.plan_for(mm);
  const auto want_spmm =
      exec::spmm(encode(a_dense, spmm_plan->run_a), factor);

  constexpr int kClients = 3;
  constexpr int kPerClient = 16;
  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      for (int i = 0; i < kPerClient; ++i) {
        const bool mv = ((cidx + i) % 2) == 0;
        Request r;
        if (mv) {
          r = spmv_request(ha, x);
        } else {
          r.kernel = Kernel::kSpMM;
          r.a = ha;
          r.dense_b = factor;
        }
        const auto resp = srv.submit(std::move(r)).get();
        if (mv) {
          if (std::get<std::vector<value_t>>(resp.result) != want_spmv) ++bad;
        } else {
          if (!(std::get<DenseMatrix>(resp.result) == want_spmm)) ++bad;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);

  const auto c = srv.counters();
  EXPECT_EQ(c.completed, kClients * kPerClient);
  EXPECT_EQ(c.device_jobs, kClients * kPerClient);
  EXPECT_EQ(c.failed, 0);
  const auto rs = srv.device_ring()->stats();
  EXPECT_EQ(rs.submitted, kClients * kPerClient);
  EXPECT_EQ(rs.completed, rs.submitted);
  EXPECT_EQ(rs.in_flight, 0);
}

// --- Auto backend routing + partitioned plan retirement ---

// kAuto with the mint backend: routing compares priced envelopes, and
// MintBackend's PCIe latency floor (10us per job) is the deterministic
// lever — tiny workloads stay on the host, chunky ones clear the floor
// and go to the device. (SimBackend's fallback price has no such floor,
// so these tests pin mint.)
ServerOptions auto_opts() {
  auto o = device_opts(exec::BackendKind::kMint);
  o.backend.policy = runtime::BackendPolicy::kAuto;
  return o;
}

TEST(ServerBackendAuto, RoutesByPricedEnvelopePerRequest) {
  Server srv(auto_opts());
  const auto small_dense = random_dense(48, 40, 0.1, 71);
  const auto big_dense = random_dense(400, 400, 0.05, 72);
  const auto hs = srv.register_matrix(encode(small_dense, Format::kCSR));
  const auto hb = srv.register_matrix(encode(big_dense, Format::kCSR));

  // ~400 flops: CPU's 2us dispatch beats mint's 10us PCIe floor.
  const std::vector<value_t> x(40, 0.5f);
  const auto cpu_plan = srv.plan_for(spmv_request(hs, x));
  EXPECT_EQ(cpu_plan->backend, exec::BackendKind::kCpu);

  // ~128k flops: 64us of host arithmetic dwarfs the offload floor.
  Request mm;
  mm.kernel = Kernel::kSpMM;
  mm.a = hb;
  mm.dense_b = random_dense(400, 8, 1.0, 73);
  const auto dev_plan = srv.plan_for(mm);
  EXPECT_EQ(dev_plan->backend, exec::BackendKind::kMint);

  // Served dispatches agree with the routed plans.
  const auto r1 = srv.submit(spmv_request(hs, x)).get();
  EXPECT_EQ(r1.stats.dispatch.backend, exec::BackendKind::kCpu);
  Request mm2 = mm;
  const auto r2 = srv.submit(std::move(mm2)).get();
  EXPECT_EQ(r2.stats.dispatch.backend, exec::BackendKind::kMint);
  EXPECT_EQ(srv.counters().device_jobs, 1);
}

TEST(ServerBackendAuto, DeviceModelSwapLeavesHostPlansCached) {
  auto o = auto_opts();
  Server srv(o);
  const auto small_dense = random_dense(48, 40, 0.1, 74);
  const auto big_dense = random_dense(400, 400, 0.05, 75);
  const auto hs = srv.register_matrix(encode(small_dense, Format::kCSR));
  const auto hb = srv.register_matrix(encode(big_dense, Format::kCSR));
  const std::vector<value_t> x(40, 0.5f);
  Request mm;
  mm.kernel = Kernel::kSpMM;
  mm.a = hb;
  mm.dense_b = random_dense(400, 8, 1.0, 76);

  // One CPU-routed plan (keyed on kHostModel) and one mint-routed plan
  // (keyed on the device-model fingerprint).
  (void)srv.plan_for(spmv_request(hs, x));
  Request mm_warm = mm;
  (void)srv.plan_for(mm_warm);
  EXPECT_EQ(srv.plan_cache().size(), 2u);
  const auto hits_before = srv.plan_cache().hits();

  // Swap only the device model: a bigger accelerator re-prices every
  // device plan but cannot invalidate host plans, which never read it.
  auto accel = o.accel;
  accel.num_pes = 64;
  const auto retired = srv.update_model(accel, o.energy);
  EXPECT_EQ(retired.total(), 1u);
  EXPECT_EQ(retired.of(exec::BackendKind::kMint), 1u);
  EXPECT_EQ(retired.of(exec::BackendKind::kCpu), 0u);
  EXPECT_EQ(srv.plan_cache().size(), 1u);

  // The surviving host plan serves the next request as a cache hit...
  const auto r1 = srv.submit(spmv_request(hs, x)).get();
  EXPECT_TRUE(r1.stats.plan_cache_hit);
  EXPECT_EQ(srv.plan_cache().hits(), hits_before + 1);
  // ...while the retired device plan re-prices against the new model.
  Request mm_replan = mm;
  const auto r2 = srv.submit(std::move(mm_replan)).get();
  EXPECT_FALSE(r2.stats.plan_cache_hit);
  EXPECT_EQ(r2.stats.dispatch.backend, exec::BackendKind::kMint);
}

TEST(ServerBackendAuto, MixedTrafficNeverFusesAcrossBackendsAndMatchesUnbatched) {
  // The batching acceptance gate: mixed CPU/device traffic through a
  // batching kAuto server (async ring, whole windows through submit_all)
  // must be bit-identical to the same traffic through a batching-off
  // server, and no fused launch may span backends.
  auto batched_o = auto_opts();
  batched_o.backend.async = true;
  batched_o.backend.ring_slots = 16;
  batched_o.backend.ring_workers = 2;
  Server batched(batched_o);
  auto off_o = auto_opts();
  off_o.batch.policy = runtime::BatchPolicy::kOff;
  Server unbatched(off_o);

  // Identical operand sets on both servers (deterministic seeds).
  const auto a_dense = random_dense(48, 40, 0.12, 81);
  const auto b_dense = random_dense(40, 48, 0.12, 82);
  const auto big_a = random_dense(400, 400, 0.05, 83);
  const auto big_b = random_dense(400, 400, 0.05, 84);
  const auto x_dense = random_tensor(9, 11, 8, 0.2, 85);
  const auto factor_small = random_dense(40, 6, 1.0, 86);
  const auto factor_big = random_dense(400, 8, 1.0, 87);
  const auto u = random_dense(8, 6, 1.0, 88);
  const auto kb = random_dense(11, 5, 1.0, 89);
  const auto kc = random_dense(8, 5, 1.0, 90);
  const std::vector<value_t> x(40, 0.5f);

  struct Handles {
    runtime::MatrixHandle ha, hb, hd, hba, hbb;
    runtime::TensorHandle hx;
  };
  const auto reg = [&](Server& s) {
    Handles h;
    h.ha = s.register_matrix(encode(a_dense, Format::kCSR));
    h.hb = s.register_matrix(encode(b_dense, Format::kCSR));
    h.hd = s.register_matrix(encode(a_dense, Format::kDense));
    h.hba = s.register_matrix(encode(big_a, Format::kCSR));
    h.hbb = s.register_matrix(encode(big_b, Format::kCSR));
    h.hx = s.register_tensor(encode(x_dense, Format::kCSF));
    return h;
  };

  // All six kernels small (CPU-routed under kAuto), a fusible run of
  // SpMVs on one handle, and repeated big SpMMs (mint-routed, same fuse
  // key — the backend dimension must keep them out of any fused launch).
  const auto traffic = [&](const Handles& h) {
    std::vector<Request> reqs;
    for (int i = 0; i < 3; ++i) reqs.push_back(spmv_request(h.ha, x));
    Request r;
    r.kernel = Kernel::kSpMM;
    r.a = h.ha;
    r.dense_b = factor_small;
    reqs.push_back(r);
    r = {};
    r.kernel = Kernel::kGemm;
    r.a = h.hd;
    r.dense_b = factor_small;
    reqs.push_back(r);
    r = {};
    r.kernel = Kernel::kSpGEMM;
    r.a = h.ha;
    r.b = h.hb;
    reqs.push_back(r);
    r = {};
    r.kernel = Kernel::kSpTTM;
    r.x = h.hx;
    r.dense_b = u;
    reqs.push_back(r);
    r = {};
    r.kernel = Kernel::kMTTKRP;
    r.x = h.hx;
    r.dense_b = kb;
    r.dense_c = kc;
    reqs.push_back(r);
    for (int i = 0; i < 2; ++i) {
      r = {};
      r.kernel = Kernel::kSpMM;
      r.a = h.hba;
      r.dense_b = factor_big;
      reqs.push_back(r);
    }
    return reqs;
  };

  const auto bh = reg(batched);
  const auto uh = reg(unbatched);

  // Stage the whole burst behind the batching server's occupied worker so
  // it drains as one mixed window through serve_window_device.
  auto occupier = occupy_worker(batched, bh.hba, bh.hbb);
  std::vector<std::future<Response>> bf;
  for (auto& r : traffic(bh)) bf.push_back(batched.submit(std::move(r)));
  (void)occupier.get();

  std::vector<std::future<Response>> uf;
  for (auto& r : traffic(uh)) uf.push_back(unbatched.submit(std::move(r)));

  ASSERT_EQ(bf.size(), uf.size());
  for (std::size_t i = 0; i < bf.size(); ++i) {
    const auto got = bf[i].get();
    const auto want = uf[i].get();
    // Bit-identity with batching off, on every kernel kind.
    EXPECT_EQ(exec::max_rel_error(want.result, got.result), 0.0) << i;
    EXPECT_EQ(got.stats.dispatch.backend, want.stats.dispatch.backend) << i;
    // No fused launch ever spans backends: everything batched ran on the
    // host (device items enter form_batches with fusible = false).
    if (got.stats.batched) {
      EXPECT_EQ(got.stats.dispatch.backend, exec::BackendKind::kCpu) << i;
    }
    // The two big SpMMs share a fuse key but route to mint: never fused.
    if (got.stats.dispatch.backend != exec::BackendKind::kCpu) {
      EXPECT_FALSE(got.stats.batched) << i;
      EXPECT_EQ(got.stats.batch_size, 1) << i;
    }
  }
  const auto bc = batched.counters();
  EXPECT_EQ(bc.failed, 0);
  // occupier (big SpGEMM) + 2 big SpMMs routed to the device; the six
  // small requests stayed on the host.
  EXPECT_EQ(bc.device_jobs, 3);
  EXPECT_EQ(unbatched.counters().device_jobs, 2);
}

// --- The dual-run alerting alias counter ---

TEST(ServerBackend, DualRunMismatchAlertCounterInBothExpositionFormats) {
  auto o = device_opts(exec::BackendKind::kSim);
  o.backend.dual_run = true;
  o.backend.dual_run_tolerance = -1.0;  // every check mismatches
  Server srv(o);
  // Bound at construction: the alias reads 0 before any traffic, so an
  // alert rule on its rate never sees a missing series.
  EXPECT_NE(srv.metrics_text().find("mt_dual_run_mismatches_total 0"),
            std::string::npos);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.2, 91), Format::kCSR));
  auto fut = srv.submit(spmv_request(h, std::vector<value_t>(24, 1.0f)));
  EXPECT_THROW((void)fut.get(), std::runtime_error);
  EXPECT_NE(srv.metrics_text().find("mt_dual_run_mismatches_total 1"),
            std::string::npos);
  EXPECT_NE(srv.metrics_json().find("mt_dual_run_mismatches_total"),
            std::string::npos);
  // The alias tracks the mt_serve_-prefixed series the snapshot reports.
  EXPECT_EQ(srv.counters().dual_run_mismatches, 1);
}

// Concurrent submit_all windows from many submitters — the TSan target
// for the batched-admission path: window admission interleaves with slot
// backpressure, worker drain, and claims from every submitter thread.
TEST(ServerBackendStress, ConcurrentSubmitAllWindowsStayCoherent) {
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint, {.slots = 8, .workers = 2});
  const Operands ops;
  const auto want = mint->run(ops.job(Kernel::kSpMV));
  constexpr int kSubmitters = 4;
  constexpr int kWindows = 4;
  constexpr int kWindowSize = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int w = 0; w < kWindows; ++w) {
        std::vector<exec::Job> jobs;
        for (int i = 0; i < kWindowSize; ++i) {
          jobs.push_back(ops.job(Kernel::kSpMV));
        }
        const auto tickets = ring.submit_all(std::move(jobs));
        for (std::size_t i = 0; i < tickets.size(); ++i) {
          // Per-window monotonicity holds even with interleaved windows.
          if (tickets[i] == exec::DeviceRing::kInvalidTicket) ++bad;
          if (i > 0 && tickets[i] <= tickets[i - 1]) ++bad;
        }
        for (auto t : tickets) {
          const auto r = ring.wait(t);
          if (exec::max_rel_error(want.output, r.output) != 0.0) ++bad;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(bad.load(), 0);
  const auto s = ring.stats();
  EXPECT_EQ(s.submitted, kSubmitters * kWindows * kWindowSize);
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(s.in_flight, 0);
}

}  // namespace
