// Every sparse kernel against the dense reference, across shapes and
// density regions (the four ACF algorithms of paper §III-B plus the
// tensor kernels of §II).
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/ttm.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;
using testing::random_tensor;

constexpr double kTol = 1e-3;  // fp32 accumulation, different sum orders

class MatMulAcfs
    : public ::testing::TestWithParam<
          std::tuple<index_t, index_t, index_t, double, double>> {};

TEST_P(MatMulAcfs, AllFourAcfAlgorithmsAgreeWithDenseReference) {
  const auto [m, k, n, da, db] = GetParam();
  const auto a = random_dense(m, k, da, 111);
  const auto b = random_dense(k, n, db, 222);
  const auto want = gemm(a, b);

  EXPECT_LE(max_abs_diff(spmm_coo_dense(CooMatrix::from_dense(a), b), want), kTol);
  EXPECT_LE(max_abs_diff(spmm_csr_dense(CsrMatrix::from_dense(a), b), want), kTol);
  EXPECT_LE(max_abs_diff(spmm_dense_csc(a, CscMatrix::from_dense(b)), want), kTol);
  EXPECT_LE(max_abs_diff(spmm_csr_csc(CsrMatrix::from_dense(a),
                                      CscMatrix::from_dense(b)),
                         want),
            kTol);
}

TEST_P(MatMulAcfs, SpgemmAgreesWithDenseReference) {
  const auto [m, k, n, da, db] = GetParam();
  const auto a = random_dense(m, k, da, 333);
  const auto b = random_dense(k, n, db, 444);
  const auto want = gemm(a, b);
  const auto got =
      spgemm_csr(CsrMatrix::from_dense(a), CsrMatrix::from_dense(b));
  EXPECT_LE(max_abs_diff(got.to_dense(), want), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulAcfs,
    ::testing::Values(
        std::tuple<index_t, index_t, index_t, double, double>{8, 8, 8, 0.5, 0.5},
        std::tuple<index_t, index_t, index_t, double, double>{16, 32, 8, 0.1, 0.9},
        std::tuple<index_t, index_t, index_t, double, double>{32, 16, 24, 0.9, 0.1},
        std::tuple<index_t, index_t, index_t, double, double>{64, 64, 64, 0.02, 0.02},
        std::tuple<index_t, index_t, index_t, double, double>{64, 64, 64, 1.0, 1.0},
        std::tuple<index_t, index_t, index_t, double, double>{1, 50, 50, 0.2, 0.2},
        std::tuple<index_t, index_t, index_t, double, double>{50, 1, 50, 1.0, 0.3},
        std::tuple<index_t, index_t, index_t, double, double>{50, 50, 1, 0.3, 1.0},
        std::tuple<index_t, index_t, index_t, double, double>{128, 96, 80, 0.005, 0.05}));

TEST(Gemm, RejectsMismatchedInner) {
  EXPECT_THROW(gemm(DenseMatrix(2, 3), DenseMatrix(4, 2)),
               std::invalid_argument);
}

TEST(Gemm, IdentityIsNeutral) {
  const auto a = random_dense(9, 9, 0.5, 17);
  DenseMatrix eye(9, 9);
  for (index_t i = 0; i < 9; ++i) eye.set(i, i, 1.0f);
  EXPECT_LE(max_abs_diff(gemm(a, eye), a), kTol);
  EXPECT_LE(max_abs_diff(gemm(eye, a), a), kTol);
}

TEST(Spgemm, EmptyOperandGivesEmptyResult) {
  const auto a = CsrMatrix::from_dense(DenseMatrix(8, 8));
  const auto b = CsrMatrix::from_dense(random_dense(8, 8, 0.5, 3));
  EXPECT_EQ(spgemm_csr(a, b).nnz(), 0);
  EXPECT_EQ(spgemm_csr(b, a).nnz(), 0);
}

TEST(Spmv, AgreesWithGemmColumn) {
  const auto a = random_dense(40, 30, 0.15, 888);
  const auto xs = random_dense(30, 1, 1.0, 999);
  const auto want = gemm(a, xs);
  const std::vector<value_t> x(xs.values().begin(), xs.values().end());
  const auto got = spmv_csr(CsrMatrix::from_dense(a), x);
  for (index_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)], want.at(i, 0), kTol);
  }
}

TEST(Spmv, RejectsWrongLength) {
  const auto a = CsrMatrix::from_dense(random_dense(4, 5, 0.5, 1));
  EXPECT_THROW(spmv_csr(a, std::vector<value_t>(4, 1.f)),
               std::invalid_argument);
}

class TensorKernels
    : public ::testing::TestWithParam<
          std::tuple<index_t, index_t, index_t, index_t, double>> {};

TEST_P(TensorKernels, SpttmAgreesWithDenseReference) {
  const auto [x, y, z, r, density] = GetParam();
  const auto t = random_tensor(x, y, z, density, 606);
  const auto u = random_dense(z, r, 1.0, 707);
  const auto want = ttm_dense(t, u);
  EXPECT_LE(max_abs_diff(spttm_coo(CooTensor3::from_dense(t), u), want), kTol);
  EXPECT_LE(max_abs_diff(spttm_csf(CsfTensor3::from_dense(t), u), want), kTol);
}

TEST_P(TensorKernels, MttkrpAgreesWithDenseReference) {
  const auto [x, y, z, r, density] = GetParam();
  const auto t = random_tensor(x, y, z, density, 808);
  const auto b = random_dense(y, r, 1.0, 909);
  const auto c = random_dense(z, r, 1.0, 1010);
  const auto want = mttkrp_dense(t, b, c);
  EXPECT_LE(max_abs_diff(mttkrp_coo(CooTensor3::from_dense(t), b, c), want), kTol);
  EXPECT_LE(max_abs_diff(mttkrp_csf(CsfTensor3::from_dense(t), b, c), want), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorKernels,
    ::testing::Values(
        std::tuple<index_t, index_t, index_t, index_t, double>{6, 6, 6, 4, 0.2},
        std::tuple<index_t, index_t, index_t, index_t, double>{12, 4, 20, 8, 0.05},
        std::tuple<index_t, index_t, index_t, index_t, double>{20, 20, 3, 5, 0.5},
        std::tuple<index_t, index_t, index_t, index_t, double>{16, 16, 16, 1, 0.0},
        std::tuple<index_t, index_t, index_t, index_t, double>{8, 8, 8, 16, 1.0}));

TEST(TensorKernels, MttkrpRejectsRankMismatch) {
  const auto t = random_tensor(4, 4, 4, 0.5, 1);
  EXPECT_THROW(mttkrp_coo(CooTensor3::from_dense(t), DenseMatrix(4, 3),
                          DenseMatrix(4, 5)),
               std::invalid_argument);
}

TEST(TensorKernels, SpttmRejectsModeMismatch) {
  const auto t = random_tensor(4, 4, 4, 0.5, 2);
  EXPECT_THROW(spttm_coo(CooTensor3::from_dense(t), DenseMatrix(5, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mt
