// MINT: prefix-sum designs (Fig. 9), pipeline composition (Fig. 8),
// design-point area/power (§VII-B), conversion cost model, and the
// software-offload baseline (Fig. 10/11 substrate).
#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.hpp"
#include "mint/blocks.hpp"
#include "mint/mint.hpp"
#include "mint/pipelines.hpp"
#include "mint/prefix_sum.hpp"
#include "mint/sw_offload.hpp"

namespace mt {
namespace {

// --- Prefix sum designs ---

class ScanDesigns : public ::testing::TestWithParam<PrefixDesign> {};

TEST_P(ScanDesigns, MatchesReferenceInclusiveScan) {
  Prng rng(42);
  for (std::size_t n : {0u, 1u, 2u, 7u, 16u, 33u, 128u}) {
    std::vector<std::int64_t> x(n);
    for (auto& v : x) v = static_cast<std::int64_t>(rng.next_below(100));
    std::vector<std::int64_t> want(n);
    std::inclusive_scan(x.begin(), x.end(), want.begin());
    EXPECT_EQ(prefix_sum(x, GetParam()).sums, want) << "n=" << n;
  }
}

TEST_P(ScanDesigns, LatencyFormulaIsConsistent) {
  const auto d = GetParam();
  EXPECT_EQ(prefix_sum(std::vector<std::int64_t>(32, 1), d).latency_cycles,
            scan_latency(32, d));
}

INSTANTIATE_TEST_SUITE_P(All, ScanDesigns,
                         ::testing::Values(PrefixDesign::kSerialChain,
                                           PrefixDesign::kWorkEfficient,
                                           PrefixDesign::kHighlyParallel),
                         [](const auto& info) {
                           std::string s(name_of(info.param));
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(ScanDesigns, LatencyOrderingMatchesFig9) {
  // Highly parallel: log N; work efficient: 2 log N; serial chain: N.
  for (std::int64_t n : {8, 32, 256}) {
    EXPECT_LT(scan_latency(n, PrefixDesign::kHighlyParallel),
              scan_latency(n, PrefixDesign::kWorkEfficient));
    EXPECT_LT(scan_latency(n, PrefixDesign::kWorkEfficient),
              scan_latency(n, PrefixDesign::kSerialChain));
  }
  EXPECT_EQ(scan_latency(32, PrefixDesign::kHighlyParallel), 5);
  EXPECT_EQ(scan_latency(32, PrefixDesign::kWorkEfficient), 10);
  EXPECT_EQ(scan_latency(32, PrefixDesign::kSerialChain), 32);
}

TEST(ScanDesigns, AdderCountOrderingMatchesFig9) {
  // More parallelism costs more active adders.
  for (std::int64_t n : {16, 32, 128}) {
    EXPECT_GT(scan_adder_count(n, PrefixDesign::kHighlyParallel),
              scan_adder_count(n, PrefixDesign::kWorkEfficient));
  }
  // Kogge-Stone at 32 inputs: 32*5 - 32 + 1 = 129 adders.
  EXPECT_EQ(scan_adder_count(32, PrefixDesign::kHighlyParallel), 129);
}

TEST(ScanDesigns, OverlayOverheadMatchesPaper) {
  const auto serial = scan_overlay_overhead(PrefixDesign::kSerialChain);
  EXPECT_DOUBLE_EQ(serial.area_frac, 0.02);   // +2% area (§VII-B)
  EXPECT_DOUBLE_EQ(serial.power_frac, 0.03);  // +3% power
  const auto par = scan_overlay_overhead(PrefixDesign::kHighlyParallel);
  EXPECT_DOUBLE_EQ(par.area_frac, 0.20);      // +20% area
  EXPECT_DOUBLE_EQ(par.power_frac, 0.27);     // +27% power
}

// --- Pipeline composition (Fig. 8) ---

TEST(Pipelines, IdentityNeedsNoBlocks) {
  EXPECT_TRUE(conversion_blocks(Format::kCSR, Format::kCSR).empty());
}

TEST(Pipelines, CsrToCscUsesSortCountPrefix) {
  const auto v = conversion_blocks(Format::kCSR, Format::kCSC);
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kSorter), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kClusterCounter), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kPrefixSum), v.end());
  // Transposition needs no divide/mod.
  EXPECT_EQ(std::find(v.begin(), v.end(), Block::kParallelDiv), v.end());
}

TEST(Pipelines, RlcToCooUsesPrefixAndDivMod) {
  const auto v = conversion_blocks(Format::kRLC, Format::kCOO);
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kPrefixSum), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kParallelDiv), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kParallelMod), v.end());
}

TEST(Pipelines, CsrToBsrUsesModComparatorsCluster) {
  const auto v = conversion_blocks(Format::kCSR, Format::kBSR);
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kParallelMod), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kComparators), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), Block::kClusterCounter), v.end());
}

TEST(Pipelines, DenseToCsfUsesFullChain) {
  const auto v = conversion_blocks(Format::kDense, Format::kCSF);
  for (Block b : {Block::kPrefixSum, Block::kParallelDiv, Block::kParallelMod,
                  Block::kComparators, Block::kMemController}) {
    EXPECT_NE(std::find(v.begin(), v.end(), b), v.end()) << name_of(b);
  }
}

TEST(Pipelines, EveryPairComposesFromCatalogBlocks) {
  for (Format from : kMatrixMcfChoices) {
    for (Format to : kMatrixAcfChoices) {
      const auto v = conversion_blocks(from, to);
      if (from == to) {
        EXPECT_TRUE(v.empty());
        continue;
      }
      EXPECT_FALSE(v.empty()) << name_of(from) << "->" << name_of(to);
      // No duplicates: merged design keeps one instance per block.
      auto s = v;
      std::sort(s.begin(), s.end());
      EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
    }
  }
}

// --- Design points (§VII-B numbers) ---

TEST(MintArea, DesignPointsMatchPaper) {
  EXPECT_NEAR(mint_area_mm2(MintDesign::kBaseline), 0.95, 0.10);
  EXPECT_NEAR(mint_area_mm2(MintDesign::kMerge), 0.41, 0.01);
  EXPECT_NEAR(mint_area_mm2(MintDesign::kMergeReuse), 0.23, 0.01);
}

TEST(MintArea, MergeSavesOverHalfOverBaseline) {
  const double reduction = 1.0 - mint_area_mm2(MintDesign::kMerge) /
                                     mint_area_mm2(MintDesign::kBaseline);
  EXPECT_NEAR(reduction, 0.57, 0.05);  // paper: ~57%
}

TEST(MintArea, ReuseSavesFurtherOverMerge) {
  const double reduction = 1.0 - mint_area_mm2(MintDesign::kMergeReuse) /
                                     mint_area_mm2(MintDesign::kMerge);
  EXPECT_NEAR(reduction, 0.45, 0.05);  // paper: ~45%
}

TEST(MintArea, DivModDominatesMergedDesign) {
  EXPECT_NEAR(divmod_area_fraction(), 0.74, 0.03);   // paper: 74%
  EXPECT_NEAR(divmod_power_fraction(), 0.65, 0.03);  // paper: 65%
}

TEST(MintArea, TinyVersusAccelerator) {
  // MINT_m should be ~0.5% of a 16384-MAC accelerator's area (§VII-B).
  // The array model lives in accel/area.hpp; here assert the magnitude.
  EXPECT_LT(mint_area_mm2(MintDesign::kMerge), 1.0);
}

// --- Conversion cost model ---

TEST(ConversionCost, IdentityIsFree) {
  const EnergyParams e;
  const auto c = mint_matrix_conversion_cost(Format::kCSR, Format::kCSR, 1000,
                                             1000, 10000, DataType::kFp32, e);
  EXPECT_EQ(c.cycles, 0);
  EXPECT_EQ(c.energy_j, 0.0);
}

TEST(ConversionCost, ScalesWithNnz) {
  const EnergyParams e;
  const auto small = mint_matrix_conversion_cost(
      Format::kCSR, Format::kCSC, 10000, 10000, 100'000, DataType::kFp32, e);
  const auto big = mint_matrix_conversion_cost(
      Format::kCSR, Format::kCSC, 10000, 10000, 10'000'000, DataType::kFp32, e);
  EXPECT_GT(big.cycles, small.cycles);
  EXPECT_GT(big.energy_j, small.energy_j);
}

TEST(ConversionCost, DenseSourceSweepsEveryCell) {
  const EnergyParams e;
  // Same nnz, dense source must scan all cells -> more cycles.
  const auto from_dense = mint_matrix_conversion_cost(
      Format::kDense, Format::kCOO, 4000, 4000, 10'000, DataType::kFp32, e);
  const auto from_csr = mint_matrix_conversion_cost(
      Format::kCSR, Format::kCOO, 4000, 4000, 10'000, DataType::kFp32, e);
  EXPECT_GT(from_dense.cycles, from_csr.cycles);
}

TEST(ConversionCost, OverlapsWithStreaming) {
  // Pipelined conversion: cycles are max(stream, work) + fill, never the
  // sum. A conversion whose work rate outpaces DRAM costs barely more
  // than the DRAM stream itself.
  const EnergyParams e;
  const index_t m = 8000, k = 8000;
  const std::int64_t nnz = 1'000'000;
  const auto work = matrix_conversion_work(Format::kRLC, Format::kCOO, m, k,
                                           nnz, DataType::kFp32);
  const auto cost = mint_matrix_conversion_cost(Format::kRLC, Format::kCOO, m,
                                                k, nnz, DataType::kFp32, e);
  const auto stream_in = e.dram_cycles(work.in_bits);
  const auto stream_out = e.dram_cycles(work.out_bits);
  EXPECT_LT(cost.cycles,
            stream_in + stream_out + nnz / 8);  // strictly below the sum
  EXPECT_GE(cost.cycles, std::max(stream_in, stream_out));
}

TEST(ConversionCost, TensorPipelineWorks) {
  const EnergyParams e;
  const auto c = mint_tensor_conversion_cost(
      Format::kCOO, Format::kCSF, 4400, 1100, 1700, 3'300'000, DataType::kFp32, e);
  EXPECT_GT(c.cycles, 0);
  EXPECT_GT(c.energy_j, 0.0);
}

TEST(ConversionCost, MagnitudeMatchesPaperAverage) {
  // Paper §VII-C: average conversion energy 8.75e-5 J. A representative
  // multimillion-nnz conversion should land within an order of magnitude.
  const EnergyParams e;
  const auto c = mint_matrix_conversion_cost(
      Format::kRLC, Format::kCSC, 11'000, 3'600, 3'900'000, DataType::kFp32, e);
  EXPECT_GT(c.energy_j, 8.75e-6);
  EXPECT_LT(c.energy_j, 8.75e-4);
}

// --- Software offload baseline ---

TEST(SwOffload, MintBeatsHostsOnTimeAndEnergy) {
  const EnergyParams e;
  const index_t m = 11'000, k = 3'600;
  const std::int64_t nnz = 3'900'000;
  const auto mint = mint_matrix_conversion_cost(Format::kCSR, Format::kCSC, m,
                                                k, nnz, DataType::kFp32, e);
  const double mint_s = e.seconds(mint.cycles);
  for (HostPlatform p : {HostPlatform::kCpu, HostPlatform::kGpu}) {
    const auto host =
        sw_conversion_cost(Format::kCSR, Format::kCSC, m, k, nnz,
                           DataType::kFp32, p, e);
    EXPECT_GT(host.total_s(), mint_s) << name_of(p);
    // Fig. 10c: roughly three orders of magnitude energy gap.
    EXPECT_GT(host.energy_j / mint.energy_j, 1e3) << name_of(p);
  }
}

TEST(SwOffload, GpuTransferFractionIsLarge) {
  // Fig. 11: H2D/D2H reaches up to ~75% of total offload time with a
  // geomean around 50%.
  const EnergyParams e;
  double worst = 0.0;
  // Sweep the size spectrum like the Table III suite: small matrices are
  // PCIe-latency dominated, large ones bandwidth dominated.
  for (auto [m, nnz] : {std::pair<index_t, std::int64_t>{124, 12'000},
                        std::pair<index_t, std::int64_t>{2'600, 76'000},
                        std::pair<index_t, std::int64_t>{11'000, 3'900'000}}) {
    const auto c = sw_conversion_cost(Format::kCSR, Format::kCSC, m, m, nnz,
                                      DataType::kFp32, HostPlatform::kGpu, e);
    worst = std::max(worst, c.transfer_fraction());
    EXPECT_GT(c.transfer_fraction(), 0.2);
  }
  EXPECT_GT(worst, 0.5);
}

TEST(SwOffload, IdentityIsFree) {
  const EnergyParams e;
  const auto c = sw_conversion_cost(Format::kCSR, Format::kCSR, 100, 100, 50,
                                    DataType::kFp32, HostPlatform::kCpu, e);
  EXPECT_EQ(c.total_s(), 0.0);
  EXPECT_EQ(c.energy_j, 0.0);
}

}  // namespace
}  // namespace mt
