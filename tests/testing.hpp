// Shared helpers for the test binaries: seeded random sparse operands and
// tolerant float comparison.
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "formats/dense.hpp"
#include "formats/tensor_dense.hpp"

namespace mt::testing {

// Dense rows x cols matrix with approximately `density` nonzero fraction
// (exact nonzero count = round(density * rows * cols), placed uniformly).
inline DenseMatrix random_dense(index_t rows, index_t cols, double density,
                                std::uint64_t seed) {
  Prng rng(seed);
  DenseMatrix d(rows, cols);
  const auto cells = static_cast<std::uint64_t>(rows * cols);
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(cells) * density + 0.5);
  for (std::uint64_t p : rng.sample_distinct(cells, k)) {
    d.values()[static_cast<std::size_t>(p)] = rng.next_value();
  }
  return d;
}

inline DenseTensor3 random_tensor(index_t x, index_t y, index_t z,
                                  double density, std::uint64_t seed) {
  Prng rng(seed);
  DenseTensor3 t(x, y, z);
  const auto cells = static_cast<std::uint64_t>(x * y * z);
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(cells) * density + 0.5);
  for (std::uint64_t p : rng.sample_distinct(cells, k)) {
    t.values()[static_cast<std::size_t>(p)] = rng.next_value();
  }
  return t;
}

}  // namespace mt::testing
