# Compile-fail checks for the clang Thread Safety Analysis layer
# (common/thread_annotations.hpp). Included from tests/CMakeLists.txt at
# configure time and re-runnable as a ctest through the mini-project in
# tests/static_analysis/ (so `ctest -L static_analysis` exercises it on a
# fresh build tree in CI).
#
# The guarantee under test is two-sided:
#   * correctly annotated code compiles under
#     -Wthread-safety -Wthread-safety-beta -Werror (the macros are
#     well-formed), and
#   * the two canonical violations — an unguarded access to an
#     MT_GUARDED_BY field, and a call to an MT_REQUIRES method without
#     the lock — FAIL to compile.
# Without the failure direction the whole annotation layer could be a
# silent no-op (e.g. a typo'd __has_attribute gate) and CI would never
# notice.

set(MT_SA_FLAGS -Wthread-safety -Wthread-safety-beta -Werror)

# mt_thread_safety_compile_checks(<fixture_dir> <include_dir>)
#   fixture_dir: directory holding thread_safety_cases.cpp
#   include_dir: the src/ root (for common/thread_annotations.hpp)
function(mt_thread_safety_compile_checks fixture_dir include_dir)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # The annotations expand to nothing outside clang; there is nothing
    # to check (and nothing to miscompile). CI's static-analysis job
    # builds with clang, where the checks are live.
    message(STATUS
      "thread-safety compile checks: skipped (needs clang, have "
      "${CMAKE_CXX_COMPILER_ID})")
    return()
  endif()

  set(fixture ${fixture_dir}/thread_safety_cases.cpp)

  # Positive control: the annotated patterns the runtime uses must be
  # accepted. If this fails the macros themselves are broken, which would
  # make the negative checks below pass for the wrong reason.
  try_compile(sa_positive
    ${CMAKE_CURRENT_BINARY_DIR}/sa_positive
    SOURCES ${fixture}
    COMPILE_DEFINITIONS "${MT_SA_FLAGS}"
    CMAKE_FLAGS
      -DCMAKE_CXX_STANDARD=20
      -DCMAKE_CXX_STANDARD_REQUIRED=ON
      "-DINCLUDE_DIRECTORIES=${include_dir}"
    OUTPUT_VARIABLE sa_positive_out)
  if(NOT sa_positive)
    message(FATAL_ERROR
      "thread-safety positive control failed to compile — the annotation "
      "macros reject valid code:\n${sa_positive_out}")
  endif()

  # Negative cases: each violation must be rejected.
  foreach(case MT_SA_UNGUARDED_FIELD MT_SA_MISSING_REQUIRES)
    try_compile(sa_${case}
      ${CMAKE_CURRENT_BINARY_DIR}/sa_${case}
      SOURCES ${fixture}
      COMPILE_DEFINITIONS "${MT_SA_FLAGS};-D${case}"
      CMAKE_FLAGS
        -DCMAKE_CXX_STANDARD=20
        -DCMAKE_CXX_STANDARD_REQUIRED=ON
        "-DINCLUDE_DIRECTORIES=${include_dir}"
      OUTPUT_VARIABLE sa_${case}_out)
    if(sa_${case})
      message(FATAL_ERROR
        "thread-safety violation ${case} COMPILED — the analysis is not "
        "enforcing the annotations (macro gate broken?)")
    endif()
    message(STATUS "thread-safety compile check ${case}: rejected (good)")
  endforeach()

  message(STATUS "thread-safety compile checks: all passed")
endfunction()
