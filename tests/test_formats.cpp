// Round-trip and structural tests for every matrix and tensor format,
// including the paper's Fig. 3 worked examples.
#include <gtest/gtest.h>

#include <tuple>

#include "formats/bsr.hpp"
#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/dia.hpp"
#include "formats/hicoo.hpp"
#include "formats/rlc.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_flat.hpp"
#include "formats/zvc.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;
using testing::random_tensor;

// The paper's Fig. 3a example matrix:
//   a b . .
//   c d . .
//   . . e .
//   . . . f
DenseMatrix fig3_matrix() {
  DenseMatrix d(4, 4);
  d.set(0, 0, 1.0f);  // a
  d.set(0, 1, 2.0f);  // b
  d.set(1, 0, 3.0f);  // c
  d.set(1, 1, 4.0f);  // d
  d.set(2, 2, 5.0f);  // e
  d.set(3, 3, 6.0f);  // f
  return d;
}

TEST(DenseMatrix, BasicAccessors) {
  DenseMatrix d(3, 5);
  EXPECT_EQ(d.rows(), 3);
  EXPECT_EQ(d.cols(), 5);
  EXPECT_EQ(d.size(), 15);
  EXPECT_EQ(d.nnz(), 0);
  d.set(2, 4, 1.5f);
  EXPECT_EQ(d.at(2, 4), 1.5f);
  EXPECT_EQ(d.nnz(), 1);
}

TEST(DenseMatrix, StorageHasNoMetadata) {
  DenseMatrix d(7, 9);
  const auto s = d.storage(DataType::kFp32);
  EXPECT_EQ(s.data_bits, 7 * 9 * 32);
  EXPECT_EQ(s.metadata_bits, 0);
  EXPECT_EQ(d.storage(DataType::kInt8).data_bits, 7 * 9 * 8);
}

TEST(DenseMatrix, OutOfRangeThrows) {
  DenseMatrix d(2, 2);
  EXPECT_THROW(d.at(2, 0), std::invalid_argument);
  EXPECT_THROW(d.at(0, -1), std::invalid_argument);
}

TEST(CooMatrix, Fig3Example) {
  const auto c = CooMatrix::from_dense(fig3_matrix());
  EXPECT_EQ(c.nnz(), 6);
  // Row-major order: a b c d e f.
  const std::vector<index_t> rows = {0, 0, 1, 1, 2, 3};
  const std::vector<index_t> cols = {0, 1, 0, 1, 2, 3};
  EXPECT_EQ(c.row_ids(), rows);
  EXPECT_EQ(c.col_ids(), cols);
}

TEST(CooMatrix, RejectsDuplicates) {
  EXPECT_THROW(CooMatrix::from_entries(2, 2, {0, 0}, {1, 1}, {1.f, 2.f}),
               std::invalid_argument);
}

TEST(CooMatrix, RejectsOutOfRange) {
  EXPECT_THROW(CooMatrix::from_entries(2, 2, {2}, {0}, {1.f}),
               std::invalid_argument);
}

TEST(CooMatrix, SortsUnsortedEntries) {
  const auto c = CooMatrix::from_entries(3, 3, {2, 0, 1}, {1, 2, 0},
                                         {3.f, 1.f, 2.f});
  EXPECT_TRUE(c.is_row_major_sorted());
  EXPECT_EQ(c.values()[0], 1.f);
  EXPECT_EQ(c.values()[2], 3.f);
}

TEST(CooMatrix, ColMajorSort) {
  auto c = CooMatrix::from_dense(fig3_matrix());
  c.sort_col_major();
  // Column-major order: a c b d e f.
  const std::vector<value_t> want = {1.f, 3.f, 2.f, 4.f, 5.f, 6.f};
  EXPECT_EQ(c.values(), want);
}

TEST(CsrMatrix, Fig3Example) {
  const auto m = CsrMatrix::from_dense(fig3_matrix());
  const std::vector<index_t> ptr = {0, 2, 4, 5, 6};
  const std::vector<index_t> col = {0, 1, 0, 1, 2, 3};
  EXPECT_EQ(m.row_ptr(), ptr);
  EXPECT_EQ(m.col_ids(), col);
}

TEST(CscMatrix, Fig3Example) {
  const auto m = CscMatrix::from_dense(fig3_matrix());
  const std::vector<index_t> ptr = {0, 2, 4, 5, 6};
  const std::vector<index_t> row = {0, 1, 0, 1, 2, 3};
  // Column-major values: a c b d e f.
  const std::vector<value_t> val = {1.f, 3.f, 2.f, 4.f, 5.f, 6.f};
  EXPECT_EQ(m.col_ptr(), ptr);
  EXPECT_EQ(m.row_ids(), row);
  EXPECT_EQ(m.values(), val);
}

TEST(CsrMatrix, FromPartsValidates) {
  // row_ptr wrong length
  EXPECT_THROW(CsrMatrix::from_parts(2, 2, {0, 1}, {0}, {1.f}),
               std::invalid_argument);
  // col id out of range
  EXPECT_THROW(CsrMatrix::from_parts(1, 2, {0, 1}, {2}, {1.f}),
               std::invalid_argument);
  // descending cols in a row
  EXPECT_THROW(CsrMatrix::from_parts(1, 3, {0, 2}, {1, 0}, {1.f, 2.f}),
               std::invalid_argument);
}

TEST(RlcMatrix, Fig3Example) {
  // Row-major stream: a b 0 0 c d 0 0 0 0 e 0 0 0 0 f
  // -> entries (0,a)(0,b)(2,c)(0,d)(4,e)(4,f), matching the paper.
  const auto m = RlcMatrix::from_dense(fig3_matrix());
  ASSERT_EQ(m.entries().size(), 6u);
  const std::vector<std::uint32_t> runs = {0, 0, 2, 0, 4, 4};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(m.entries()[i].zero_run, runs[i]) << i;
  }
  EXPECT_EQ(m.nnz(), 6);
}

TEST(RlcMatrix, EscapeEntriesForLongRuns) {
  // 40 zeros then a nonzero with a 4-bit counter (max run 15): escapes
  // consume 16 zeros each -> entries (15,0)(15,0)(8,x).
  DenseMatrix d(1, 41);
  d.set(0, 40, 9.f);
  const auto m = RlcMatrix::from_dense(d, 4);
  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries()[0].zero_run, 15u);
  EXPECT_EQ(m.entries()[0].value, 0.0f);
  EXPECT_EQ(m.entries()[1].zero_run, 15u);
  EXPECT_EQ(m.entries()[2].zero_run, 8u);
  EXPECT_EQ(m.entries()[2].value, 9.f);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(max_abs_diff(m.to_dense(), d), 0.0);
}

TEST(RlcMatrix, TrailingZerosImplicit) {
  DenseMatrix d(2, 8);
  d.set(0, 0, 1.f);
  const auto m = RlcMatrix::from_dense(d);
  EXPECT_EQ(m.entries().size(), 1u);
  EXPECT_EQ(max_abs_diff(m.to_dense(), d), 0.0);
}

TEST(RlcMatrix, AllZeroMatrixIsEmpty) {
  const auto m = RlcMatrix::from_dense(DenseMatrix(16, 16));
  EXPECT_TRUE(m.entries().empty());
  EXPECT_EQ(m.storage(DataType::kFp32).total_bits(), 0);
}

TEST(ZvcMatrix, Fig3Example) {
  const auto m = ZvcMatrix::from_dense(fig3_matrix());
  EXPECT_EQ(m.nnz(), 6);
  // Mask = 1100 1100 0010 0001 over the row-major stream.
  EXPECT_TRUE(m.occupied(0));
  EXPECT_TRUE(m.occupied(1));
  EXPECT_FALSE(m.occupied(2));
  EXPECT_TRUE(m.occupied(10));
  EXPECT_TRUE(m.occupied(15));
  EXPECT_EQ(m.storage(DataType::kFp32).metadata_bits, 16);
}

TEST(BsrMatrix, Fig3ExampleTwoByTwo) {
  // Fig. 3a BSR: blocks (0,0) [a b; c d], (1,1) [e 0; 0 0] is wrong — in
  // the paper's matrix e=(2,2), f=(3,3) so block row 1 holds one block
  // with e and f on its diagonal: [e 0; 0 f].
  const auto m = BsrMatrix::from_dense(fig3_matrix(), 2, 2);
  EXPECT_EQ(m.num_blocks(), 2);
  const std::vector<index_t> ptr = {0, 1, 2};
  const std::vector<index_t> col = {0, 1};
  EXPECT_EQ(m.block_row_ptr(), ptr);
  EXPECT_EQ(m.block_col_ids(), col);
  // Second block stores explicit zeros for the empty positions.
  EXPECT_EQ(m.block_values()[4], 5.f);
  EXPECT_EQ(m.block_values()[5], 0.f);
  EXPECT_EQ(m.block_values()[7], 6.f);
  EXPECT_EQ(m.nnz(), 6);
}

TEST(BsrMatrix, NonMultipleDimensionsPad) {
  auto d = random_dense(5, 7, 0.4, 101);
  const auto m = BsrMatrix::from_dense(d, 2, 2);
  EXPECT_EQ(m.block_grid_rows(), 3);
  EXPECT_EQ(m.block_grid_cols(), 4);
  EXPECT_EQ(max_abs_diff(m.to_dense(), d), 0.0);
}

TEST(DiaMatrix, TridiagonalIsThreeLanes) {
  DenseMatrix d(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    d.set(i, i, 2.f);
    if (i > 0) d.set(i, i - 1, -1.f);
    if (i < 5) d.set(i, i + 1, -1.f);
  }
  const auto m = DiaMatrix::from_dense(d);
  EXPECT_EQ(m.num_diagonals(), 3);
  const std::vector<index_t> off = {-1, 0, 1};
  EXPECT_EQ(m.offsets(), off);
  EXPECT_EQ(max_abs_diff(m.to_dense(), d), 0.0);
}

TEST(DiaMatrix, PaysFullLanePerDiagonal) {
  DenseMatrix d(8, 8);
  d.set(0, 7, 1.f);  // single element on the far diagonal
  const auto m = DiaMatrix::from_dense(d);
  EXPECT_EQ(m.num_diagonals(), 1);
  EXPECT_EQ(m.storage(DataType::kFp32).data_bits, 8 * 32);
}

// --- Parameterized round-trip sweep over (rows, cols, density) ---

class MatrixRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {};

TEST_P(MatrixRoundTrip, AllFormatsReconstructDense) {
  const auto [rows, cols, density] = GetParam();
  const auto d = random_dense(rows, cols, density, 7777);

  EXPECT_EQ(max_abs_diff(CooMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(CsrMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(CscMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(RlcMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(ZvcMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(BsrMatrix::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(DiaMatrix::from_dense(d).to_dense(), d), 0.0);
}

TEST_P(MatrixRoundTrip, NnzPreserved) {
  const auto [rows, cols, density] = GetParam();
  const auto d = random_dense(rows, cols, density, 4242);
  const auto n = d.nnz();
  EXPECT_EQ(CooMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(CsrMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(CscMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(RlcMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(ZvcMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(BsrMatrix::from_dense(d).nnz(), n);
  EXPECT_EQ(DiaMatrix::from_dense(d).nnz(), n);
}

TEST_P(MatrixRoundTrip, CsrCooCsrStable) {
  const auto [rows, cols, density] = GetParam();
  const auto d = random_dense(rows, cols, density, 515);
  const auto csr = CsrMatrix::from_dense(d);
  const auto again = CsrMatrix::from_coo(csr.to_coo());
  EXPECT_EQ(csr.row_ptr(), again.row_ptr());
  EXPECT_EQ(csr.col_ids(), again.col_ids());
  EXPECT_EQ(csr.values(), again.values());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixRoundTrip,
    ::testing::Values(std::tuple<index_t, index_t, double>{1, 1, 1.0},
                      std::tuple<index_t, index_t, double>{4, 4, 0.4},
                      std::tuple<index_t, index_t, double>{16, 16, 0.0},
                      std::tuple<index_t, index_t, double>{16, 16, 1.0},
                      std::tuple<index_t, index_t, double>{1, 64, 0.1},
                      std::tuple<index_t, index_t, double>{64, 1, 0.1},
                      std::tuple<index_t, index_t, double>{33, 17, 0.05},
                      std::tuple<index_t, index_t, double>{17, 33, 0.5},
                      std::tuple<index_t, index_t, double>{50, 50, 0.01},
                      std::tuple<index_t, index_t, double>{128, 64, 0.002}));

// --- Tensor formats ---

// The paper's Fig. 3b example tensor (4x4x4, 6 nonzeros).
DenseTensor3 fig3_tensor() {
  DenseTensor3 t(4, 4, 4);
  t.set(0, 0, 0, 1.0f);  // a
  t.set(0, 0, 1, 2.0f);  // b
  t.set(1, 2, 2, 3.0f);  // c
  t.set(2, 1, 0, 4.0f);  // d
  t.set(2, 1, 3, 5.0f);  // e
  t.set(3, 0, 3, 6.0f);  // f
  return t;
}

TEST(CooTensor3, Fig3bExample) {
  const auto c = CooTensor3::from_dense(fig3_tensor());
  EXPECT_EQ(c.nnz(), 6);
  const std::vector<index_t> x = {0, 0, 1, 2, 2, 3};
  const std::vector<index_t> y = {0, 0, 2, 1, 1, 0};
  const std::vector<index_t> z = {0, 1, 2, 0, 3, 3};
  EXPECT_EQ(c.x_ids(), x);
  EXPECT_EQ(c.y_ids(), y);
  EXPECT_EQ(c.z_ids(), z);
}

TEST(CsfTensor3, Fig3bTreeShape) {
  const auto t = CsfTensor3::from_dense(fig3_tensor());
  // 4 distinct x slices; 4 distinct (x,y) fibers; 6 leaves.
  const std::vector<index_t> x_ids = {0, 1, 2, 3};
  EXPECT_EQ(t.x_ids(), x_ids);
  EXPECT_EQ(t.y_ids().size(), 4u);
  EXPECT_EQ(t.nnz(), 6);
  EXPECT_EQ(t.y_ptr().back(), 4);
  EXPECT_EQ(t.z_ptr().back(), 6);
}

TEST(CsfTensor3, EmptyTensor) {
  const auto t = CsfTensor3::from_dense(DenseTensor3(3, 3, 3));
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_TRUE(t.x_ids().empty());
}

TEST(HicooTensor3, Fig3bBlocks) {
  const auto c = CooTensor3::from_dense(fig3_tensor());
  const auto h = HicooTensor3::from_coo(c, 2);
  // The paper's Fig. 3b HiCOO example shows 4 blocks for this tensor.
  EXPECT_EQ(h.num_blocks(), 4);
  EXPECT_EQ(h.nnz(), 6);
}

class TensorRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t, double>> {};

TEST_P(TensorRoundTrip, AllFormatsReconstructDense) {
  const auto [x, y, z, density] = GetParam();
  const auto d = random_tensor(x, y, z, density, 999);
  EXPECT_EQ(max_abs_diff(CooTensor3::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(CsfTensor3::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(ZvcTensor3::from_dense(d).to_dense(), d), 0.0);
  EXPECT_EQ(max_abs_diff(RlcTensor3::from_dense(d).to_dense(), d), 0.0);
  const auto coo = CooTensor3::from_dense(d);
  EXPECT_EQ(
      max_abs_diff(HicooTensor3::from_coo(coo, 2).to_coo().to_dense(), d), 0.0);
  EXPECT_EQ(
      max_abs_diff(HicooTensor3::from_coo(coo, 4).to_coo().to_dense(), d), 0.0);
}

TEST_P(TensorRoundTrip, CsfCooEquivalence) {
  const auto [x, y, z, density] = GetParam();
  const auto d = random_tensor(x, y, z, density, 321);
  const auto coo = CooTensor3::from_dense(d);
  const auto back = CsfTensor3::from_coo(coo).to_coo();
  EXPECT_EQ(coo.x_ids(), back.x_ids());
  EXPECT_EQ(coo.y_ids(), back.y_ids());
  EXPECT_EQ(coo.z_ids(), back.z_ids());
  EXPECT_EQ(coo.values(), back.values());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorRoundTrip,
    ::testing::Values(std::tuple<index_t, index_t, index_t, double>{4, 4, 4, 0.1},
                      std::tuple<index_t, index_t, index_t, double>{8, 8, 8, 0.0},
                      std::tuple<index_t, index_t, index_t, double>{8, 8, 8, 1.0},
                      std::tuple<index_t, index_t, index_t, double>{16, 4, 9, 0.05},
                      std::tuple<index_t, index_t, index_t, double>{3, 20, 7, 0.3},
                      std::tuple<index_t, index_t, index_t, double>{32, 32, 2, 0.02}));

// --- Storage accounting on concrete structures ---

TEST(Storage, CooExactBits) {
  const auto c = CooMatrix::from_dense(fig3_matrix());
  const auto s = c.storage(DataType::kFp32);
  // 6 values * 32 bits; ids are 2 bits each (dim 4), 6 * (2+2).
  EXPECT_EQ(s.data_bits, 6 * 32);
  EXPECT_EQ(s.metadata_bits, 6 * 4);
}

TEST(Storage, CsrExactBits) {
  const auto m = CsrMatrix::from_dense(fig3_matrix());
  const auto s = m.storage(DataType::kFp32);
  // col ids: 6 * 2 bits; row_ptr: 5 entries * bits_for(7) = 3.
  EXPECT_EQ(s.metadata_bits, 6 * 2 + 5 * 3);
}

TEST(Storage, MetadataRatioRisesAsDataShrinks) {
  const auto d = random_dense(64, 64, 0.2, 31);
  const auto csr = CsrMatrix::from_dense(d);
  const double r32 = csr.storage(DataType::kFp32).metadata_ratio();
  const double r8 = csr.storage(DataType::kInt8).metadata_ratio();
  // Paper Fig. 4a: quantization pushes the metadata share up.
  EXPECT_GT(r8, r32);
}

TEST(Storage, DenseBeatsCompressedAtFullDensity) {
  const auto d = random_dense(32, 32, 1.0, 77);
  const auto dense_bits = d.storage(DataType::kFp32).total_bits();
  EXPECT_LT(dense_bits, CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits());
  EXPECT_LT(dense_bits, CooMatrix::from_dense(d).storage(DataType::kFp32).total_bits());
  EXPECT_LT(dense_bits, ZvcMatrix::from_dense(d).storage(DataType::kFp32).total_bits());
}

TEST(Storage, CooBeatsCsrAtExtremeSparsity) {
  // nnz << rows: COO's 2 ids per nonzero beat CSR's row_ptr overhead.
  DenseMatrix d(1024, 1024);
  d.set(17, 400, 1.f);
  d.set(900, 3, 2.f);
  const auto coo_bits = CooMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto csr_bits = CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  EXPECT_LT(coo_bits, csr_bits);
}

}  // namespace
}  // namespace mt
