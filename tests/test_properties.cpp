// Randomized property sweeps across the whole stack: format round-trips,
// converter equivalences, kernel agreement, packing laws and SAGE pricing
// consistency, each over many seeded instances rather than hand-picked
// shapes.
#include <gtest/gtest.h>

#include "accel/cycle_sim.hpp"
#include "accel/perf_model.hpp"
#include "convert/convert.hpp"
#include "kernels/gemm.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "sage/sage.hpp"
#include "workloads/synth.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Shape and density derived deterministically from the seed so the
  // sweep covers a scatter of regimes.
  index_t m() const { return 8 + static_cast<index_t>(GetParam() * 7 % 57); }
  index_t k() const { return 8 + static_cast<index_t>(GetParam() * 13 % 49); }
  index_t n() const { return 4 + static_cast<index_t>(GetParam() * 5 % 29); }
  double density() const {
    const double table[] = {0.0, 0.003, 0.02, 0.08, 0.25, 0.6, 1.0};
    return table[GetParam() % 7];
  }
};

TEST_P(Seeded, EveryMatrixFormatRoundTrips) {
  const auto d = random_dense(m(), k(), density(), GetParam());
  for (Format f : {Format::kDense, Format::kCOO, Format::kCSR, Format::kCSC,
                   Format::kRLC, Format::kZVC, Format::kBSR, Format::kDIA,
                   Format::kELL}) {
    EXPECT_EQ(max_abs_diff(decode(encode(d, f)), d), 0.0) << name_of(f);
  }
}

TEST_P(Seeded, ConversionChainPreservesContents) {
  // A pseudo-random walk through the format graph must be lossless.
  const auto d = random_dense(m(), k(), density(), GetParam() + 1000);
  const Format chain[] = {Format::kCSR, Format::kRLC, Format::kCOO,
                          Format::kZVC, Format::kCSC, Format::kELL,
                          Format::kBSR, Format::kDense};
  AnyMatrix cur = encode(d, chain[GetParam() % 8]);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cur = convert(cur, chain[(GetParam() + i * 3 + 1) % 8]);
  }
  EXPECT_EQ(max_abs_diff(decode(cur), d), 0.0);
}

TEST_P(Seeded, StorageIsNeverNegativeAndDataBitsMatchContent) {
  const auto d = random_dense(m(), k(), density(), GetParam() + 2000);
  for (Format f : {Format::kCOO, Format::kCSR, Format::kCSC, Format::kZVC}) {
    const auto s = storage_of(encode(d, f), DataType::kFp32);
    EXPECT_GE(s.metadata_bits, 0) << name_of(f);
    // Exact-nnz formats: payload is exactly nnz * 32 bits.
    EXPECT_EQ(s.data_bits, d.nnz() * 32) << name_of(f);
  }
}

TEST_P(Seeded, AllSpmmVariantsAgree) {
  const auto a = random_dense(m(), k(), density(), GetParam() + 3000);
  const auto b = random_dense(k(), n(), 0.7, GetParam() + 4000);
  const auto want = gemm(a, b);
  EXPECT_LE(max_abs_diff(spmm_coo_dense(CooMatrix::from_dense(a), b), want), 1e-3);
  EXPECT_LE(max_abs_diff(spmm_csr_dense(CsrMatrix::from_dense(a), b), want), 1e-3);
  EXPECT_LE(max_abs_diff(spmm_dense_csc(a, CscMatrix::from_dense(b)), want), 1e-3);
  EXPECT_LE(max_abs_diff(spmm_csr_csc(CsrMatrix::from_dense(a),
                                      CscMatrix::from_dense(b)), want), 1e-3);
  EXPECT_LE(max_abs_diff(spgemm_csr(CsrMatrix::from_dense(a),
                                    CsrMatrix::from_dense(b)).to_dense(),
                         want), 1e-3);
}

TEST_P(Seeded, SimulatorMatchesKernelsUnderRandomAcfs) {
  AccelConfig cfg;
  cfg.num_pes = n();
  cfg.pe_buffer_bytes = k() * 8;
  const auto a = random_dense(m(), k(), density(), GetParam() + 5000);
  const auto b = random_dense(k(), n(), 0.5, GetParam() + 6000);
  const Format fa[] = {Format::kDense, Format::kCSR, Format::kCOO};
  const Format fb[] = {Format::kDense, Format::kCSC};
  const auto r = simulate_ws_matmul(a, b, fa[GetParam() % 3],
                                    fb[GetParam() % 2], cfg);
  EXPECT_LE(max_abs_diff(r.output, gemm(a, b)), 1e-3);
  // Phase sanity: totals compose, occupancies are fractions.
  EXPECT_EQ(r.phases.total_cycles(), r.phases.load_cycles +
                                         r.phases.overlap_cycles +
                                         r.phases.drain_cycles);
  EXPECT_GE(r.phases.overlap_cycles,
            std::max(r.phases.stream_cycles, r.phases.compute_cycles) > 0
                ? std::max(r.phases.stream_cycles, r.phases.compute_cycles)
                : 0);
  EXPECT_LE(r.bus_occupancy, 1.0 + 1e-9);
  EXPECT_LE(r.pe_utilization, 1.0 + 1e-9);
}

TEST_P(Seeded, SageWinnerCostMatchesStandalonePricing) {
  const auto a = CooMatrix::from_dense(
      random_dense(m(), k(), std::max(density(), 0.003), GetParam() + 7000));
  const auto b = CooMatrix::from_dense(
      random_dense(k(), n(), 0.4, GetParam() + 8000));
  AccelConfig cfg;
  cfg.num_pes = 64;
  const EnergyParams e;
  const auto choice = sage_select_matmul(a, b, cfg, e);
  const auto priced = price_matmul_combination(
      a, b, choice.mcf_a, choice.mcf_b, choice.acf_a, choice.acf_b,
      choice.mcf_o, ConverterKind::kMint, cfg, e);
  // The standalone pricing path charges the un-overlapped conversion, so
  // it can only be >= the search's internal (overlapped) cost; compute and
  // DRAM components must agree exactly.
  EXPECT_EQ(priced.compute_cycles, choice.cost.compute_cycles);
  EXPECT_EQ(priced.dram_cycles, choice.cost.dram_cycles);
  EXPECT_DOUBLE_EQ(priced.dram_energy_j, choice.cost.dram_energy_j);
  EXPECT_GE(priced.convert_cycles, choice.cost.convert_cycles);
}

TEST_P(Seeded, PerfModelInvariants) {
  const auto a = CooMatrix::from_dense(
      random_dense(m(), k(), density(), GetParam() + 9000));
  AccelConfig cfg;
  cfg.num_pes = 32;
  const EnergyParams e;
  for (Format fa : {Format::kDense, Format::kCSR, Format::kCOO}) {
    const auto r = model_matmul_dense_b(a, n(), fa, Format::kDense, cfg, e);
    EXPECT_GE(r.performed_macs, r.useful_macs) << name_of(fa);
    EXPECT_GE(r.total_cycles(), 0) << name_of(fa);
    EXPECT_GE(r.compute_energy_j, 0.0) << name_of(fa);
    // Compressed streams ship exactly nnz payload elements per tile set.
    if (fa != Format::kDense) {
      EXPECT_EQ(r.streamed_elems, a.nnz() * r.n_tiles) << name_of(fa);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Seeded, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace mt
