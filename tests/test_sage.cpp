// SAGE: the format search must (1) be optimal within its space, (2)
// reproduce the qualitative selections of Table III, and (3) dominate
// every constrained baseline by construction — the inequality behind
// Fig. 12/13.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "sage/sage.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

namespace mt {
namespace {

AccelConfig test_cfg() {
  // A scaled-down array keeps the test-suite fast while preserving every
  // model mechanism (tiling, buffer pressure, bus packing).
  AccelConfig cfg;
  cfg.num_pes = 256;
  cfg.vector_width = 8;
  cfg.pe_buffer_bytes = 512;
  cfg.bus_bits = 512;
  return cfg;
}

struct MM {
  CooMatrix a, b;
};

// SpGEMM-style pair: B is K x (M/2) at the same density as A.
MM spgemm_pair(index_t m, index_t k, std::int64_t nnz, std::uint64_t seed) {
  const auto b_nnz = static_cast<std::int64_t>(
      static_cast<double>(nnz) / static_cast<double>(m * k) *
      static_cast<double>(k * factor_cols(m)));
  return {synth_coo_matrix(m, k, nnz, seed),
          synth_coo_matrix(k, factor_cols(m), std::max<std::int64_t>(1, b_nnz),
                           seed + 1)};
}

// SpMM-style pair: B dense.
MM spmm_pair(index_t m, index_t k, std::int64_t nnz, std::uint64_t seed) {
  const index_t n = factor_cols(m);
  return {synth_coo_matrix(m, k, nnz, seed),
          synth_coo_matrix(k, n, k * n, seed + 1)};
}

TEST(Sage, PicksTheEdpMinimumOfItsSpace) {
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spgemm_pair(256, 256, 6000, 11);
  const auto best = sage_select_matmul(mm.a, mm.b, cfg, e);
  // Exhaustive re-check: no combination in the full space beats it.
  const auto space = FormatSpace::full();
  for (Format ma : space.mcf_a) {
    for (Format mb : space.mcf_b) {
      for (Format aa : space.acf_a) {
        for (Format ab : space.acf_b) {
          const auto c = price_matmul_combination(
              mm.a, mm.b, ma, mb, aa, ab, best.mcf_o, ConverterKind::kMint,
              cfg, e);
          EXPECT_GE(c.edp(e) * (1 + 1e-12), best.edp)
              << name_of(ma) << "/" << name_of(mb) << " " << name_of(aa)
              << "/" << name_of(ab);
        }
      }
    }
  }
}

TEST(Sage, DenseWorkloadPrefersDenseAcf) {
  // journal-like: 78.5% dense. Compressed ACFs waste bus slots on
  // metadata; Table III row 1 picks Dense-Dense ACF.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto a = synth_coo_matrix(124, 124, 12000, 21);
  const auto b = synth_coo_matrix(124, 62, 6000, 22);
  const auto best = sage_select_matmul(a, b, cfg, e);
  EXPECT_EQ(best.acf_a, Format::kDense);
  EXPECT_EQ(best.acf_b, Format::kDense);
  // and a compact MCF (ZVC at this density, per Table III).
  EXPECT_EQ(best.mcf_a, Format::kZVC);
}

TEST(Sage, ExtremelySparseWorkloadPrefersCompressedAcf) {
  // m3plates-like: 5.4e-5 density. Any dense format on A wastes nearly
  // every bus slot and MAC; Table III row 10 picks COO MCF + CSR ACF.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spgemm_pair(1100, 1100, 66, 31);
  const auto best = sage_select_matmul(mm.a, mm.b, cfg, e);
  EXPECT_NE(best.acf_a, Format::kDense);
  EXPECT_EQ(best.mcf_a, Format::kCOO);
}

TEST(Sage, MidDensityPrefersRlcOrZvcStorage) {
  // speech-like: 5-10% density — Table III stores these in RLC.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spmm_pair(770, 260, 10'010, 41);  // 5% density
  const auto best = sage_select_matmul(mm.a, mm.b, cfg, e);
  EXPECT_TRUE(best.mcf_a == Format::kRLC || best.mcf_a == Format::kZVC ||
              best.mcf_a == Format::kCSR)
      << name_of(best.mcf_a);
  EXPECT_NE(best.mcf_a, Format::kDense);
}

TEST(Sage, McfAndAcfDivergeWhenConversionIsCheap) {
  // The core thesis: with MINT available, the best MCF (compactness) and
  // best ACF (compute) need not coincide. At journal-like density the
  // storage winner is ZVC but ZVC is not even a legal ACF, so SAGE pairs
  // a compact MCF with a Dense ACF via MINT.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto a = synth_coo_matrix(124, 124, 12000, 51);
  const auto b = synth_coo_matrix(124, 62, 6000, 52);
  const auto best = sage_select_matmul(a, b, cfg, e);
  EXPECT_TRUE(best.mcf_a != best.acf_a || best.mcf_b != best.acf_b)
      << best.describe();
}

TEST(Sage, OutputMcfTracksProductDensity) {
  const auto cfg = test_cfg();
  // Dense operands -> dense product.
  const auto da = synth_coo_matrix(64, 64, 64 * 64, 61);
  const auto db = synth_coo_matrix(64, 32, 64 * 32, 62);
  EXPECT_EQ(choose_output_mcf(da, db, cfg.dtype), Format::kDense);
  // Hyper-sparse operands -> hyper-sparse product stored compressed.
  const auto sa = synth_coo_matrix(1000, 1000, 20, 63);
  const auto sb = synth_coo_matrix(1000, 500, 10, 64);
  std::int64_t nnz_o = 0;
  const auto f = choose_output_mcf(sa, sb, cfg.dtype, &nnz_o);
  EXPECT_LT(nnz_o, 100);
  EXPECT_EQ(f, Format::kCOO);
}

TEST(Sage, TensorSelectionFavorsCsfOrCooForSparseTensor) {
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto x = synth_coo_tensor(440, 110, 170, 3300, 71);  // uber-like
  const auto best = sage_select_tensor(x, 64, Kernel::kMTTKRP, cfg, e);
  EXPECT_NE(best.acf_t, Format::kDense);
  EXPECT_TRUE(best.mcf_t == Format::kCOO || best.mcf_t == Format::kCSF)
      << name_of(best.mcf_t);
}

TEST(Sage, TensorDenseIsAdmittedForDenseTensors) {
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto x = synth_coo_tensor(30, 40, 9, 30 * 40 * 9 * 3 / 10, 81);  // 30%
  const auto best = sage_select_tensor(x, 16, Kernel::kSpTTM, cfg, e);
  // BrainQ-like density: Dense compute with a compact linearized MCF
  // (Table III row 11 picks ZVC; our model scores ZVC and RLC within a
  // hair of each other at 30%).
  EXPECT_EQ(best.acf_t, Format::kDense);
  EXPECT_TRUE(best.mcf_t == Format::kZVC || best.mcf_t == Format::kRLC)
      << name_of(best.mcf_t);
}

TEST(Sage, EmptySpaceThrows) {
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spgemm_pair(64, 64, 100, 91);
  FormatSpace s;
  EXPECT_THROW(sage_select_matmul(mm.a, mm.b, cfg, e, s),
               std::invalid_argument);
}

// --- Baselines ---

TEST(Baselines, SpacesMatchTableTwo) {
  const auto tpu = baseline_space(AccelType::kFixFixNone);
  EXPECT_EQ(tpu.mcf_a, std::vector<Format>{Format::kDense});
  EXPECT_EQ(tpu.converter, ConverterKind::kNone);

  const auto eie = baseline_space(AccelType::kFixFixNone2);
  EXPECT_TRUE(eie.mcf_must_equal_acf);

  const auto sigma = baseline_space(AccelType::kFixFlexHw);
  EXPECT_EQ(sigma.mcf_a, std::vector<Format>{Format::kZVC});
  EXPECT_GT(sigma.acf_a.size(), 1u);

  const auto nvdla = baseline_space(AccelType::kFlexFixHw);
  EXPECT_EQ(nvdla.acf_a, std::vector<Format>{Format::kDense});
  EXPECT_EQ(nvdla.mcf_a.size(), 2u);

  const auto ours = baseline_space(AccelType::kFlexFlexHw);
  EXPECT_EQ(ours.mcf_a.size(), kMatrixMcfChoices.size());
  EXPECT_EQ(ours.converter, ConverterKind::kMint);
}

class BaselineDominance : public ::testing::TestWithParam<AccelType> {};

TEST_P(BaselineDominance, ThisWorkNeverLosesOnEdp) {
  // Flex_Flex_HW searches a superset of every baseline's space with the
  // cheapest converter, so its EDP is a lower bound — the structural fact
  // behind the Fig. 13 geomean wins.
  const auto cfg = test_cfg();
  const EnergyParams e;
  for (std::uint64_t seed : {1u, 2u}) {
    for (auto [m, k, nnz] :
         {std::tuple<index_t, index_t, std::int64_t>{124, 124, 12000},
          std::tuple<index_t, index_t, std::int64_t>{770, 260, 10010},
          std::tuple<index_t, index_t, std::int64_t>{1100, 1100, 66}}) {
      const auto mm = spgemm_pair(m, k, nnz, seed * 100);
      const auto ours =
          evaluate_baseline(AccelType::kFlexFlexHw, mm.a, mm.b, cfg, e);
      const auto other = evaluate_baseline(GetParam(), mm.a, mm.b, cfg, e);
      EXPECT_LE(ours.edp, other.edp * (1 + 1e-9))
          << name_of(GetParam()) << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, BaselineDominance,
    ::testing::Values(AccelType::kFixFixNone, AccelType::kFixFixNone2,
                      AccelType::kFixFlexHw, AccelType::kFlexFlexNone,
                      AccelType::kFlexFixHw, AccelType::kFlexFlexSw),
    [](const auto& info) {
      std::string s(name_of(info.param));
      std::replace(s.begin(), s.end(), ' ', '_');
      std::replace(s.begin(), s.end(), '(', '_');
      std::replace(s.begin(), s.end(), ')', '_');
      return s;
    });

TEST(Baselines, TpuSuffersOnSparseWorkloads) {
  // Fig. 12c: on m3plates anything dense is orders of magnitude worse.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spgemm_pair(1100, 1100, 66, 7);
  const auto tpu = evaluate_baseline(AccelType::kFixFixNone, mm.a, mm.b, cfg, e);
  const auto ours = evaluate_baseline(AccelType::kFlexFlexHw, mm.a, mm.b, cfg, e);
  EXPECT_GT(tpu.edp / ours.edp, 10.0);
}

TEST(Baselines, SoftwareConversionCostsMoreThanMint) {
  // Flex_Flex_SW searches the same space but pays host offload per
  // conversion; when the best choice needs a conversion it must lose.
  const auto cfg = test_cfg();
  const EnergyParams e;
  const auto mm = spmm_pair(770, 260, 10'010, 3);
  const auto ours = evaluate_baseline(AccelType::kFlexFlexHw, mm.a, mm.b, cfg, e);
  const auto sw = evaluate_baseline(AccelType::kFlexFlexSw, mm.a, mm.b, cfg, e);
  EXPECT_LE(ours.edp, sw.edp);
}

TEST(Baselines, EveryArchetypeHasDistinctNameAndExemplar) {
  std::set<std::string_view> names, exemplars;
  for (AccelType t : kAllAccelTypes) {
    names.insert(name_of(t));
    exemplars.insert(exemplar_of(t));
  }
  EXPECT_EQ(names.size(), kAllAccelTypes.size());
  EXPECT_EQ(exemplars.size(), kAllAccelTypes.size());
}

}  // namespace
}  // namespace mt
