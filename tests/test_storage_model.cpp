// The analytic storage model must (1) agree with exact storage on
// materialized matrices and (2) reproduce the qualitative crossovers of
// the paper's Fig. 4 compactness study.
#include <gtest/gtest.h>

#include <tuple>

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "formats/rlc.hpp"
#include "formats/storage.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_flat.hpp"
#include "formats/zvc.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;
using testing::random_tensor;

class AnalyticVsExact
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {};

// Exact-by-construction formats: the analytic prediction is an identity in
// (dims, nnz), so it must match to the bit.
TEST_P(AnalyticVsExact, ExactFormatsMatchToTheBit) {
  const auto [m, k, density] = GetParam();
  const auto d = random_dense(m, k, density, 2024);
  const auto nnz = d.nnz();
  for (DataType dt : {DataType::kFp32, DataType::kInt8}) {
    EXPECT_EQ(expected_matrix_storage(Format::kDense, m, k, nnz, dt).total_bits(),
              d.storage(dt).total_bits());
    EXPECT_EQ(expected_matrix_storage(Format::kCOO, m, k, nnz, dt).total_bits(),
              CooMatrix::from_dense(d).storage(dt).total_bits());
    EXPECT_EQ(expected_matrix_storage(Format::kCSR, m, k, nnz, dt).total_bits(),
              CsrMatrix::from_dense(d).storage(dt).total_bits());
    EXPECT_EQ(expected_matrix_storage(Format::kCSC, m, k, nnz, dt).total_bits(),
              CscMatrix::from_dense(d).storage(dt).total_bits());
    EXPECT_EQ(expected_matrix_storage(Format::kZVC, m, k, nnz, dt).total_bits(),
              ZvcMatrix::from_dense(d).storage(dt).total_bits());
  }
}

// RLC entry count is a random variable; the expectation model must land
// within a modest relative error of the realized encoding.
TEST_P(AnalyticVsExact, RlcExpectationTracksRealizedEncoding) {
  const auto [m, k, density] = GetParam();
  if (density == 0.0) return;  // both sides are zero
  const auto d = random_dense(m, k, density, 99);
  const auto exact = RlcMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto model =
      expected_matrix_storage(Format::kRLC, m, k, d.nnz(), DataType::kFp32)
          .total_bits();
  EXPECT_NEAR(static_cast<double>(model), static_cast<double>(exact),
              0.15 * static_cast<double>(exact) + 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticVsExact,
    ::testing::Values(std::tuple<index_t, index_t, double>{64, 64, 0.0},
                      std::tuple<index_t, index_t, double>{64, 64, 0.01},
                      std::tuple<index_t, index_t, double>{64, 64, 0.1},
                      std::tuple<index_t, index_t, double>{64, 64, 0.5},
                      std::tuple<index_t, index_t, double>{64, 64, 1.0},
                      std::tuple<index_t, index_t, double>{128, 32, 0.05},
                      std::tuple<index_t, index_t, double>{32, 128, 0.3},
                      std::tuple<index_t, index_t, double>{256, 256, 0.02}));

TEST(AnalyticTensor, ExactFormatsMatchToTheBit) {
  const auto d = random_tensor(12, 10, 8, 0.07, 5);
  const auto nnz = d.nnz();
  EXPECT_EQ(expected_tensor_storage(Format::kCOO, 12, 10, 8, nnz, DataType::kFp32)
                .total_bits(),
            CooTensor3::from_dense(d).storage(DataType::kFp32).total_bits());
  EXPECT_EQ(expected_tensor_storage(Format::kZVC, 12, 10, 8, nnz, DataType::kFp32)
                .total_bits(),
            ZvcTensor3::from_dense(d).storage(DataType::kFp32).total_bits());
}

TEST(AnalyticTensor, CsfExpectationTracksRealizedTree) {
  const auto d = random_tensor(20, 20, 20, 0.03, 8);
  const auto exact =
      CsfTensor3::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto model = expected_tensor_storage(Format::kCSF, 20, 20, 20, d.nnz(),
                                             DataType::kFp32)
                         .total_bits();
  EXPECT_NEAR(static_cast<double>(model), static_cast<double>(exact),
              0.1 * static_cast<double>(exact) + 64.0);
}

TEST(AnalyticModel, RejectsMismatchedFormatFamilies) {
  EXPECT_THROW(expected_matrix_storage(Format::kCSF, 4, 4, 2, DataType::kFp32),
               std::invalid_argument);
  EXPECT_THROW(
      expected_tensor_storage(Format::kCSR, 4, 4, 4, 2, DataType::kFp32),
      std::invalid_argument);
}

// --- Fig. 4 qualitative reproduction at model scale ---

std::int64_t bits_at(Format f, index_t m, index_t k, double density,
                     DataType dt = DataType::kFp32) {
  const auto nnz = static_cast<std::int64_t>(
      density * static_cast<double>(m) * static_cast<double>(k) + 0.5);
  return expected_matrix_storage(f, m, k, nnz, dt).total_bits();
}

TEST(Fig4Shape, DenseWinsAtFullDensity) {
  const index_t n = 11000;
  for (Format f : {Format::kCOO, Format::kCSR, Format::kCSC, Format::kRLC,
                   Format::kZVC}) {
    EXPECT_LT(bits_at(Format::kDense, n, n, 1.0), bits_at(f, n, n, 1.0))
        << name_of(f);
  }
}

TEST(Fig4Shape, ZvcWinsAtFiftyPercent) {
  const index_t n = 11000;
  for (Format f : {Format::kCOO, Format::kCSR, Format::kCSC, Format::kDense}) {
    EXPECT_LT(bits_at(Format::kZVC, n, n, 0.5), bits_at(f, n, n, 0.5))
        << name_of(f);
  }
}

TEST(Fig4Shape, RlcOrZvcWinAtTenPercent) {
  const index_t n = 11000;
  const auto best_special =
      std::min(bits_at(Format::kRLC, n, n, 0.1), bits_at(Format::kZVC, n, n, 0.1));
  for (Format f : {Format::kCOO, Format::kCSR, Format::kCSC, Format::kDense}) {
    EXPECT_LT(best_special, bits_at(f, n, n, 0.1)) << name_of(f);
  }
}

TEST(Fig4Shape, CooWinsAtExtremeSparsity) {
  const index_t n = 11000;
  const double d = 1e-8;  // the paper's 10^-6 percent
  for (Format f : {Format::kCSR, Format::kCSC, Format::kRLC, Format::kZVC,
                   Format::kDense}) {
    EXPECT_LT(bits_at(Format::kCOO, n, n, d), bits_at(f, n, n, d))
        << name_of(f);
  }
}

TEST(Fig4Shape, CsrBeatsZvcBelowFirstCrossover) {
  const index_t n = 11000;
  // Left of the first red line in Fig. 4a (around a few percent density
  // for fp32), CSR becomes more compact than ZVC.
  EXPECT_LT(bits_at(Format::kCSR, n, n, 0.001), bits_at(Format::kZVC, n, n, 0.001));
  EXPECT_GT(bits_at(Format::kCSR, n, n, 0.5), bits_at(Format::kZVC, n, n, 0.5));
}

TEST(Fig4Shape, DenseCsrCrossoverMovesLeftWithQuantization) {
  const index_t n = 11000;
  // Fig. 4a-ii: with int8 data the metadata share grows, so the density at
  // which Dense overtakes CSR drops. Find the crossover for both dtypes.
  auto crossover = [&](DataType dt) {
    double lo = 1e-6, hi = 1.0;
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (bits_at(Format::kCSR, n, n, mid, dt) <
          bits_at(Format::kDense, n, n, mid, dt)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  EXPECT_LT(crossover(DataType::kInt8), crossover(DataType::kFp32));
}

TEST(Fig4Shape, GrowingKFavorsCooOverCsr) {
  // Fig. 4b-i: at density 1e-5 with M = 1k fixed, increasing K makes CSR's
  // per-row pointer array irrelevant but COO's col ids wider — the paper
  // shows the formats trading places across K. At least verify COO's
  // advantage at small nnz shrinks as K grows.
  const index_t m = 1000;
  auto ratio = [&](index_t k) {
    const double d = 1e-5;
    return static_cast<double>(bits_at(Format::kCOO, m, k, d, DataType::kInt16)) /
           static_cast<double>(bits_at(Format::kCSR, m, k, d, DataType::kInt16));
  };
  EXPECT_LT(ratio(2000), 1.0);   // very sparse: COO wins
  EXPECT_GT(ratio(1 << 20), ratio(2000));  // advantage shrinks with K
}

}  // namespace
}  // namespace mt
