// Telemetry-layer tests: histogram bucket/quantile units and merge
// algebra, registry get-or-create semantics, the trace ring's
// drop-oldest/never-block contract, and the serving integration — the
// concurrency-labeled stress cases ride the TSan CI job (counts must be
// bit-exact after join, per the obs/metrics.hpp consistency contract),
// and the span-nesting test asserts that a fused batch's member exec
// slices exactly partition the group span.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/router.hpp"
#include "runtime/server.hpp"
#include "testing.hpp"

namespace mt::obs {
namespace {

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

HistogramSnapshot snap_of(std::initializer_list<std::int64_t> values) {
  Histogram h;
  for (const auto v : values) h.record(v);
  return h.snapshot();
}

TEST(Histogram, BucketUnitsAndExactMax) {
  Histogram h;
  h.record(0);    // bucket 0 (v <= 0)
  h.record(-7);   // clamped into bucket 0
  h.record(1);    // bit_width 1 -> bucket 1 ([1, 1])
  h.record(2);    // bit_width 2 -> bucket 2 ([2, 3])
  h.record(3);    // bucket 2 as well
  h.record(1000); // bit_width 10 -> bucket 10 ([512, 1023])
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 6);
  EXPECT_EQ(s.sum, 0 + 0 + 1 + 2 + 3 + 1000);
  EXPECT_EQ(s.max, 1000);
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
  EXPECT_EQ(s.buckets[10], 1);
}

TEST(Histogram, QuantilesReportBucketUpperBoundsClampedToMax) {
  // 99 fast samples and one slow outlier: rank(q) = ceil(q * count), so
  // p99 (rank 99) still sits in the value-1 bucket; only the tail beyond
  // it reaches the outlier, whose reported value clamps to the true max
  // instead of its bucket's upper bound.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(1'000'000);  // bit_width 20 -> bucket 20, upper bound 2^20-1
  const auto s = h.snapshot();
  EXPECT_EQ(s.p50(), 1);
  EXPECT_EQ(s.p95(), 1);
  EXPECT_EQ(s.p99(), 1);
  EXPECT_EQ(s.quantile(0.999), 1'000'000);  // min(bucket upper 1048575, max)
  EXPECT_EQ(s.quantile(1.0), 1'000'000);
  EXPECT_EQ(s.quantile(0.0), 1);  // rank clamps to the first sample
}

TEST(Histogram, EmptySnapshotIsAllZeros) {
  const auto s = Histogram{}.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.p50(), 0);
  EXPECT_EQ(s.p99(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const auto a = snap_of({1, 5, 9});
  const auto b = snap_of({0, 1'000'000});
  const auto c = snap_of({42, 42, 42, 7});

  auto ab = a;
  ab += b;
  auto ba = b;
  ba += a;
  expect_same(ab, ba);

  auto ab_c = ab;  // (a + b) + c
  ab_c += c;
  auto bc = b;
  bc += c;
  auto a_bc = a;  // a + (b + c)
  a_bc += bc;
  expect_same(ab_c, a_bc);
  EXPECT_EQ(ab_c.count, 9);
  EXPECT_EQ(ab_c.max, 1'000'000);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("mt_test_total");
  Counter& c2 = reg.counter("mt_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.inc();
  EXPECT_EQ(c1.value(), 4);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("mt_test_total");
  EXPECT_THROW(reg.histogram("mt_test_total"), std::logic_error);
  EXPECT_THROW(reg.gauge("mt_test_total"), std::logic_error);
}

TEST(Registry, SnapshotSortedByName) {
  Registry reg;
  reg.counter("mt_b");
  reg.gauge("mt_a").set(7);
  reg.histogram("mt_c").record(1);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "mt_a");
  EXPECT_EQ(snap[0].value, 7);
  EXPECT_EQ(snap[1].name, "mt_b");
  EXPECT_EQ(snap[2].name, "mt_c");
  EXPECT_EQ(snap[2].hist.count, 1);
}

TEST(MergeSnapshots, SumsByNameAndInsertsMissingSorted) {
  Registry r1, r2;
  r1.counter("mt_x_total").add(2);
  r1.histogram("mt_h").record(8);
  r2.counter("mt_x_total").add(5);
  r2.histogram("mt_h").record(1024);
  r2.gauge("mt_only_second").set(9);

  auto total = r1.snapshot();
  merge_snapshots(total, r2.snapshot());
  ASSERT_EQ(total.size(), 3u);
  EXPECT_EQ(total[0].name, "mt_h");
  EXPECT_EQ(total[0].hist.count, 2);
  EXPECT_EQ(total[0].hist.max, 1024);
  EXPECT_EQ(total[1].name, "mt_only_second");
  EXPECT_EQ(total[1].value, 9);
  EXPECT_EQ(total[2].name, "mt_x_total");
  EXPECT_EQ(total[2].value, 7);
}

// The TSan-ridden stress case: N threads hammer M counters and a shared
// histogram through the registry while a reader snapshots concurrently.
// Weak consistency is allowed while writers run; after join every count
// must be bit-exact.
TEST(Registry, ConcurrentRecordingIsExactAfterJoin) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kMetrics = 4;
  constexpr int kIters = 4000;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      // Cache the references once (the intended idiom), then record hot.
      std::vector<Counter*> counters;
      for (int m = 0; m < kMetrics; ++m) {
        counters.push_back(&reg.counter("mt_c" + std::to_string(m)));
      }
      Histogram& h = reg.histogram("mt_shared_ns");
      for (int i = 0; i < kIters; ++i) {
        for (auto* c : counters) c->inc();
        h.record(i % 1024);
      }
    });
  }
  // Concurrent reader: merged reads must be torn-free and monotone-safe
  // (never exceed what was recorded); values are otherwise unasserted.
  std::thread reader([&reg] {
    for (int i = 0; i < 50; ++i) {
      for (const auto& m : reg.snapshot()) {
        if (m.kind == MetricSnapshot::Kind::kCounter) {
          EXPECT_LE(m.value, std::int64_t{kThreads} * kIters);
        }
      }
      std::this_thread::yield();
    }
  });
  for (auto& w : writers) w.join();
  reader.join();

  for (int m = 0; m < kMetrics; ++m) {
    EXPECT_EQ(reg.counter("mt_c" + std::to_string(m)).value(),
              std::int64_t{kThreads} * kIters);
  }
  const auto s = reg.histogram("mt_shared_ns").snapshot();
  EXPECT_EQ(s.count, std::int64_t{kThreads} * kIters);
  EXPECT_EQ(s.max, 1023);
}

TEST(TraceRing, DropsOldestAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    SpanRecord r;
    r.span_id = i;
    ring.push(r);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6);
  const auto got = ring.drain();
  ASSERT_EQ(got.size(), 4u);
  // Oldest-first: the four survivors are the newest pushes, in order.
  EXPECT_EQ(got[0].span_id, 7u);
  EXPECT_EQ(got[3].span_id, 10u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 6);  // drops are cumulative, not per-drain
}

TEST(TraceRing, CapacityZeroIsInert) {
  TraceRing ring(0);
  ring.push(SpanRecord{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.drain().empty());
  // A scope over a zero-capacity sink degrades to no-ops end to end.
  IdSource ids;
  TraceScope scope(&ring, &ids, 1);
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.add(Stage::kExec, 0, 10), 0u);
}

// Concurrency (TSan): writers racing a full ring never block and never
// lose accounting — records retained + records dropped == records pushed.
TEST(TraceRing, ConcurrentOverflowNeverBlocks) {
  constexpr std::size_t kCap = 64;
  constexpr int kThreads = 6;
  constexpr int kPushes = 500;
  TraceRing ring(kCap);
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&ring, t] {
      for (int i = 0; i < kPushes; ++i) {
        SpanRecord r;
        r.trace_id = static_cast<std::uint64_t>(t);
        ring.push(r);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ring.size(), kCap);
  EXPECT_EQ(ring.dropped(),
            std::int64_t{kThreads} * kPushes - std::int64_t{kCap});
}

TEST(TraceScope, BuffersSpansAndFlushesOnDestruction) {
  TraceRing ring(16);
  IdSource ids;
  {
    TraceScope scope(&ring, &ids, ids.next());
    Span outer(scope, Stage::kQueue);
    const auto parent = outer.end();
    scope.add(Stage::kExec, 5, 9, parent, 3);
    EXPECT_EQ(ring.size(), 0u);  // nothing lands until the flush
  }
  const auto got = ring.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].stage, Stage::kQueue);
  EXPECT_EQ(got[1].stage, Stage::kExec);
  EXPECT_EQ(got[1].parent_span, got[0].span_id);
  EXPECT_EQ(got[1].batch_size, 3);
  EXPECT_EQ(got[0].trace_id, got[1].trace_id);
  EXPECT_NE(got[0].span_id, got[1].span_id);
}

}  // namespace
}  // namespace mt::obs

namespace mt::runtime {
namespace {

using mt::testing::random_dense;

ServerOptions obs_opts() {
  ServerOptions o;
  o.num_workers = 2;
  o.queue_capacity = 32;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  o.obs.trace_ring_capacity = 4096;
  return o;
}

Request spmv_request(MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

TEST(ServerObs, MetricsTextCoversEverySubsystem) {
  Server srv(obs_opts());
  const auto h =
      srv.register_matrix(encode(random_dense(48, 40, 0.05, 7), Format::kCSR));
  const std::vector<value_t> x(40, 1.0f);
  for (int i = 0; i < 3; ++i) (void)srv.submit(spmv_request(h, x)).get();

  const auto text = srv.metrics_text();
  // Serving counters (the ServerCounters view) and latency histograms.
  EXPECT_NE(text.find("mt_serve_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("mt_serve_queue_wait_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Both caches, with hit/miss/eviction/size series.
  EXPECT_NE(text.find("mt_plan_cache_hits_total 2"), std::string::npos);
  EXPECT_NE(text.find("mt_plan_cache_evictions_total 0"), std::string::npos);
  EXPECT_NE(text.find("mt_conversion_cache_bytes"), std::string::npos);
  EXPECT_NE(text.find("mt_conversion_cache_evictions_total"),
            std::string::npos);
  // Arena, queue, thread width.
  EXPECT_NE(text.find("mt_arena_budget_bytes"), std::string::npos);
  EXPECT_NE(text.find("mt_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("mt_kernel_threads"), std::string::npos);
  // Per-kernel x format x tier exec histograms and per-plan accumulators.
  EXPECT_NE(text.find("mt_exec_ns{kernel=\""), std::string::npos);
  EXPECT_NE(text.find("tier=\""), std::string::npos);
  EXPECT_NE(text.find("mt_plan_exec_ns{plan=\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  // The JSON twin exposes the same names with quantiles pre-extracted.
  const auto json = srv.metrics_json();
  EXPECT_NE(json.find("\"mt_serve_requests_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // ServerCounters is a view over the registry: the legacy snapshot and
  // the exposition read the same cells.
  const auto snap = srv.metrics_snapshot();
  for (const auto& m : snap) {
    if (m.name == "mt_serve_requests_total") {
      EXPECT_EQ(m.value, srv.counters().completed);
    }
  }
}

TEST(ServerObs, DisabledMetricsStillServeCountersAndText) {
  auto o = obs_opts();
  o.obs.metrics = false;
  o.obs.trace_ring_capacity = 0;
  Server srv(o);
  const auto h =
      srv.register_matrix(encode(random_dense(32, 32, 0.1, 9), Format::kCSR));
  const std::vector<value_t> x(32, 1.0f);
  const auto resp = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(resp.stats.trace_id, 0u);  // tracing off: no ids assigned
  EXPECT_EQ(srv.counters().completed, 1);
  EXPECT_TRUE(srv.drain_trace().empty());
  const auto text = srv.metrics_text();
  EXPECT_NE(text.find("mt_serve_requests_total 1"), std::string::npos);
  // No histogram series when metrics are off (the always-on counter
  // mt_serve_queue_wait_ns_total remains; the histogram's bucket/count
  // series must not).
  EXPECT_EQ(text.find("mt_serve_queue_wait_ns_bucket"), std::string::npos);
  EXPECT_EQ(text.find("mt_serve_queue_wait_ns_count"), std::string::npos);
  EXPECT_EQ(text.find("mt_exec_ns{"), std::string::npos);
}

TEST(ServerObs, TraceCoversStagesUnderOneId) {
  Server srv(obs_opts());
  const auto h =
      srv.register_matrix(encode(random_dense(48, 40, 0.05, 7), Format::kCSR));
  const std::vector<value_t> x(40, 1.0f);
  const auto resp = srv.submit(spmv_request(h, x)).get();
  ASSERT_NE(resp.stats.trace_id, 0u);

  const auto spans = srv.drain_trace();
  std::set<obs::Stage> stages;
  for (const auto& s : spans) {
    if (s.trace_id != resp.stats.trace_id) continue;
    stages.insert(s.stage);
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  EXPECT_TRUE(stages.contains(obs::Stage::kQueue));
  EXPECT_TRUE(stages.contains(obs::Stage::kPlan));
  EXPECT_TRUE(stages.contains(obs::Stage::kConvert));
  EXPECT_TRUE(stages.contains(obs::Stage::kExec));
  EXPECT_TRUE(srv.drain_trace().empty());  // drain cleared the ring
}

// Occupies the single worker so everything submitted next piles up in the
// queue and drains as one batch window (test_runtime.cpp's idiom).
std::future<Response> occupy_worker(Server& srv, MatrixHandle a,
                                    MatrixHandle b) {
  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = a;
  r.b = b;
  auto fut = srv.submit(std::move(r));
  while (srv.queue_depth() > 0) std::this_thread::yield();
  return fut;
}

TEST(ServerObs, FusedGroupSpanIsPartitionedByMemberExecSlices) {
  auto o = obs_opts();
  o.num_workers = 1;  // one drain stream => deterministic window
  o.batch.policy = BatchPolicy::kWindow;
  o.batch.window = 16;
  Server srv(o);
  // Density 0.05 => SAGE plans SpMV onto CSR (a coalescible ACF).
  const auto h =
      srv.register_matrix(encode(random_dense(64, 48, 0.05, 31), Format::kCSR));
  const auto slow_a =
      srv.register_matrix(encode(random_dense(800, 800, 0.08, 32), Format::kCSR));
  const auto slow_b =
      srv.register_matrix(encode(random_dense(800, 800, 0.08, 33), Format::kCSR));

  constexpr int kMembers = 5;
  std::vector<value_t> x(48, 0.5f);
  auto occupier = occupy_worker(srv, slow_a, slow_b);
  std::vector<std::future<Response>> futs;
  futs.reserve(kMembers);
  for (int i = 0; i < kMembers; ++i) {
    futs.push_back(srv.submit(spmv_request(h, x)));
  }
  (void)occupier.get();

  std::set<std::uint64_t> member_traces;
  for (auto& f : futs) {
    const auto resp = f.get();
    ASSERT_TRUE(resp.stats.batched);
    ASSERT_EQ(resp.stats.batch_size, kMembers);
    member_traces.insert(resp.stats.trace_id);
  }
  ASSERT_EQ(member_traces.size(), static_cast<std::size_t>(kMembers));

  const auto spans = srv.drain_trace();
  const obs::SpanRecord* group = nullptr;
  for (const auto& s : spans) {
    if (s.stage == obs::Stage::kGroup && s.batch_size == kMembers) {
      ASSERT_EQ(group, nullptr) << "exactly one fused launch expected";
      group = &s;
    }
  }
  ASSERT_NE(group, nullptr);

  // Member exec slices: one per request, linked to the group span, each
  // on its own trace — and together they exactly partition the group
  // interval (durations sum to the group's duration).
  std::int64_t slice_sum = 0;
  int slices = 0;
  std::set<std::uint64_t> slice_traces;
  for (const auto& s : spans) {
    if (s.stage != obs::Stage::kExec || s.parent_span != group->span_id) {
      continue;
    }
    ++slices;
    slice_sum += s.duration_ns();
    slice_traces.insert(s.trace_id);
    EXPECT_GE(s.start_ns, group->start_ns);
    EXPECT_LE(s.end_ns, group->end_ns);
  }
  EXPECT_EQ(slices, kMembers);
  EXPECT_EQ(slice_sum, group->duration_ns());
  EXPECT_EQ(slice_traces, member_traces);

  // The scatter stage is accounted to the group too.
  int scatters = 0;
  for (const auto& s : spans) {
    if (s.stage == obs::Stage::kScatter && s.batch_size == kMembers) {
      ++scatters;
    }
  }
  EXPECT_EQ(scatters, 1);
}

TEST(ShardedObs, AggregatesMetricsAndTagsTraceShards) {
  ShardedServerOptions so;
  so.num_shards = 2;
  so.shard = obs_opts();
  so.shard.num_workers = 1;
  ShardedServer srv(so);

  std::vector<MatrixHandle> hs;
  for (int i = 0; i < 4; ++i) {
    hs.push_back(srv.register_matrix(
        encode(random_dense(40, 40, 0.08, 50 + i), Format::kCSR)));
  }
  const std::vector<value_t> x(40, 1.0f);
  std::vector<std::future<Response>> futs;
  futs.reserve(hs.size());
  for (const auto& h : hs) futs.push_back(srv.submit(spmv_request(h, x)));
  std::set<std::uint64_t> traces;
  for (auto& f : futs) traces.insert(f.get().stats.trace_id);
  ASSERT_EQ(traces.size(), hs.size());

  // Fleet text: per-shard series merged by name, router series appended.
  const auto text = srv.metrics_text();
  EXPECT_NE(text.find("mt_serve_requests_total 4"), std::string::npos);
  EXPECT_NE(text.find("mt_router_shards 2"), std::string::npos);
  EXPECT_NE(text.find("mt_router_routing_failures_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("mt_exec_ns{kernel=\""), std::string::npos);

  const auto snap = srv.metrics_snapshot();
  for (const auto& m : snap) {
    if (m.name == "mt_serve_requests_total") {
      EXPECT_EQ(m.value, srv.counters().completed);
    }
    if (m.name == "mt_serve_queue_wait_ns") {
      EXPECT_EQ(m.hist.count, 4);  // histogram buckets merged across shards
    }
  }

  // Traces: every record tagged with a real shard; each request's id has
  // both a route span (deposited by the router) and its stage spans, all
  // on one shard's ring.
  const auto spans = srv.drain_trace();
  ASSERT_FALSE(spans.empty());
  std::map<std::uint64_t, std::set<obs::Stage>> by_trace;
  std::map<std::uint64_t, std::set<int>> shards_of;
  for (const auto& s : spans) {
    ASSERT_GE(s.shard, 0);
    ASSERT_LT(s.shard, so.num_shards);
    by_trace[s.trace_id].insert(s.stage);
    shards_of[s.trace_id].insert(s.shard);
  }
  for (const auto id : traces) {
    ASSERT_TRUE(by_trace.contains(id));
    EXPECT_TRUE(by_trace[id].contains(obs::Stage::kRoute));
    EXPECT_TRUE(by_trace[id].contains(obs::Stage::kQueue));
    EXPECT_TRUE(by_trace[id].contains(obs::Stage::kExec));
    EXPECT_EQ(shards_of[id].size(), 1u) << "one trace, one ring";
  }
}

}  // namespace
}  // namespace mt::runtime
