#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mt {
namespace {

TEST(BitUtil, BitsForMatchesDefinition) {
  // bits_for(n) must represent every value in [0, n-1].
  for (std::uint64_t n = 2; n < 5000; ++n) {
    const int b = bits_for(n);
    EXPECT_GE((std::uint64_t{1} << b), n) << "n=" << n;
    EXPECT_LT((std::uint64_t{1} << (b - 1)), n) << "n=" << n;
  }
}

TEST(BitUtil, MinimumOneBit) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
}

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

TEST(BitUtil, BitsToBytes) {
  EXPECT_EQ(bits_to_bytes(0), 0);
  EXPECT_EQ(bits_to_bytes(1), 1);
  EXPECT_EQ(bits_to_bytes(8), 1);
  EXPECT_EQ(bits_to_bytes(9), 2);
}

TEST(Prng, Deterministic) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, SeedsIndependent) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Prng, NextBelowInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, SampleDistinctExactCountSortedUnique) {
  Prng rng(5);
  const auto s = rng.sample_distinct(10000, 500);
  ASSERT_EQ(s.size(), 500u);
  std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 500u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_LT(s.back(), 10000u);
}

TEST(Prng, SampleDistinctFullRange) {
  Prng rng(6);
  const auto s = rng.sample_distinct(32, 32);
  ASSERT_EQ(s.size(), 32u);
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(s[i], i);
}

TEST(Prng, SampleDistinctSparseFromHugeSpace) {
  Prng rng(11);
  // m3plates-scale: 6.6k from 1.2e8 must not allocate the space.
  const auto s = rng.sample_distinct(121'000'000ull, 6600);
  EXPECT_EQ(s.size(), 6600u);
}

TEST(Prng, SampleDistinctRoughlyUniform) {
  Prng rng(13);
  // Sample halves: expect close to 50/50 split across many trials.
  std::int64_t low = 0, total = 0;
  for (int t = 0; t < 50; ++t) {
    for (auto v : rng.sample_distinct(1000, 100)) {
      low += (v < 500);
      ++total;
    }
  }
  const double frac = static_cast<double>(low) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MT_REQUIRE(false, "nope"), std::invalid_argument);
}

TEST(Error, EnsureThrowsLogicError) {
  EXPECT_THROW(MT_ENSURE(false, "nope"), std::logic_error);
}

}  // namespace
}  // namespace mt
