#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace mt {
namespace {

TEST(EnergyParams, DramCostsRoughly6400xAnAdd) {
  // The paper's §I headline ratio (citing Horowitz ISSCC'14).
  const EnergyParams p;
  EXPECT_NEAR(p.dram_j_per_32b / p.int32_add_j, 6400.0, 1.0);
}

TEST(EnergyParams, DramEnergyLinearInBits) {
  const EnergyParams p;
  EXPECT_DOUBLE_EQ(p.dram_energy_j(64), 2.0 * p.dram_energy_j(32));
  EXPECT_DOUBLE_EQ(p.dram_energy_j(0), 0.0);
}

TEST(EnergyParams, DramCyclesCeil) {
  EnergyParams p;
  p.dram_bytes_per_cycle = 64.0;
  EXPECT_EQ(p.dram_cycles(512), 1);   // 64 bytes exactly
  EXPECT_EQ(p.dram_cycles(513), 2);   // one bit over
  EXPECT_EQ(p.dram_cycles(0), 0);
}

TEST(EnergyParams, MacEnergyOrdersByDatatype) {
  const EnergyParams p;
  EXPECT_LT(p.mac_energy_j(DataType::kInt8), p.mac_energy_j(DataType::kInt16));
  EXPECT_LT(p.mac_energy_j(DataType::kBf16), p.mac_energy_j(DataType::kFp32));
}

TEST(EnergyParams, SramSmallBufferCheaper) {
  const EnergyParams p;
  EXPECT_LT(p.sram_energy_j(DataType::kFp32, /*small_buffer=*/true),
            p.sram_energy_j(DataType::kFp32, /*small_buffer=*/false));
}

TEST(EnergyParams, SecondsAtOneGigahertz) {
  const EnergyParams p;
  EXPECT_DOUBLE_EQ(p.seconds(1'000'000'000), 1.0);
}

TEST(CostBreakdown, SumsComponentwise) {
  const CostBreakdown a{10, 20, 30, 1e-6, 2e-6, 3e-6};
  const CostBreakdown b{1, 2, 3, 1e-7, 2e-7, 3e-7};
  const auto c = a + b;
  EXPECT_EQ(c.total_cycles(), 66);
  EXPECT_NEAR(c.total_energy_j(), 6.6e-6, 1e-12);
}

TEST(CostBreakdown, EdpIsEnergyTimesDelay) {
  const EnergyParams p;
  const CostBreakdown c{1'000'000, 0, 0, 2e-3, 0, 0};
  // 1e6 cycles @1GHz = 1e-3 s; EDP = 2e-3 * 1e-3.
  EXPECT_NEAR(c.edp(p), 2e-6, 1e-12);
}

TEST(Edp, FreeFunction) { EXPECT_DOUBLE_EQ(edp(3.0, 2.0), 6.0); }

}  // namespace
}  // namespace mt
