// Serving-runtime stress test — the suite CI runs under ThreadSanitizer.
//
// Many client threads fire mixed kernels at one server while also churning
// private operands through register/evict cycles. Every response is
// checked bit-identical against a direct exec-engine call on the same
// converted representation: the serving layer (queue, worker pool, plan
// cache, conversion cache) must add zero arithmetic variation under
// arbitrary interleavings. Seeds are fixed, so the workload is
// deterministic run-to-run even though the interleaving is not.
//
// The harness is templated over the server type: the same traffic runs
// against a lone Server and against a four-shard ShardedServer (operands
// scattered across shards, SpGEMM pairs crossing shards through the
// replication path, bounded per-shard caches evicting under churn) —
// sharding must be invisible in the results.
#include <gtest/gtest.h>

#include <future>
#include <random>
#include <thread>
#include <vector>

#include "runtime/router.hpp"
#include "runtime/server.hpp"
#include "testing.hpp"
#include "workloads/synth.hpp"

namespace mt::runtime {
namespace {

using testing::random_dense;

constexpr int kClients = 6;
constexpr int kRequestsPerClient = 80;
constexpr index_t kSpmmCols = 12;
constexpr index_t kRank = 6;

struct SharedWorkload {
  // Registered shared operands (never evicted).
  std::vector<AnyMatrix> mats;
  std::vector<MatrixHandle> mat_handles;
  AnyTensor tensor = AnyTensor(DenseTensor3(1, 1, 1));
  TensorHandle tensor_handle;
  // Request payloads.
  std::vector<value_t> x;          // SpMV input
  DenseMatrix spmm_b;              // SpMM dense factor
  DenseMatrix mttkrp_b, mttkrp_c;  // MTTKRP factors
  // Expected results, precomputed from the memoized plans.
  std::vector<std::vector<value_t>> want_spmv;
  std::vector<DenseMatrix> want_spmm;
  CsrMatrix want_spgemm;
  DenseMatrix want_mttkrp;
};

Request make_spmv(const SharedWorkload& w, std::size_t i) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = w.mat_handles[i];
  r.vec = w.x;
  return r;
}

Request make_spmm(const SharedWorkload& w, std::size_t i) {
  Request r;
  r.kernel = Kernel::kSpMM;
  r.a = w.mat_handles[i];
  r.dense_b = w.spmm_b;
  return r;
}

Request make_spgemm(const SharedWorkload& w) {
  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = w.mat_handles[0];
  r.b = w.mat_handles[1];
  return r;
}

Request make_mttkrp(const SharedWorkload& w) {
  Request r;
  r.kernel = Kernel::kMTTKRP;
  r.x = w.tensor_handle;
  r.dense_b = w.mttkrp_b;
  r.dense_c = w.mttkrp_c;
  return r;
}

template <typename S>
SharedWorkload build_workload(S& srv) {
  SharedWorkload w;
  // Square and same-shaped so every payload fits every operand and the
  // SpGEMM pair is dimension-compatible; different contents and MCFs so
  // each handle is a distinct cached workload.
  const Format mcfs[] = {Format::kCSR, Format::kZVC, Format::kCOO};
  for (int i = 0; i < 3; ++i) {
    w.mats.push_back(
        encode(random_dense(36, 36, 0.06, 100 + static_cast<unsigned>(i)),
               mcfs[i]));
    w.mat_handles.push_back(srv.register_matrix(w.mats.back()));
  }
  w.tensor = AnyTensor(synth_coo_tensor(10, 9, 8, 50, 104));
  w.tensor_handle = srv.register_tensor(w.tensor);

  for (index_t i = 0; i < 36; ++i) {
    w.x.push_back(0.125f * static_cast<float>(i % 7));
  }
  w.spmm_b = random_dense(36, kSpmmCols, 1.0, 105);
  w.mttkrp_b = random_dense(9, kRank, 1.0, 106);
  w.mttkrp_c = random_dense(8, kRank, 1.0, 107);

  // Learn the plans once, then precompute expected results with direct
  // engine calls on identically converted operands.
  for (std::size_t i = 0; i < w.mats.size(); ++i) {
    const auto pv = srv.plan_for(make_spmv(w, i));
    w.want_spmv.push_back(exec::spmv(convert(w.mats[i], pv->run_a), w.x));
    const auto pm = srv.plan_for(make_spmm(w, i));
    w.want_spmm.push_back(
        exec::spmm(convert(w.mats[i], pm->run_a), w.spmm_b));
  }
  w.want_spgemm = exec::spgemm(convert(w.mats[0], Format::kCSR),
                               convert(w.mats[1], Format::kCSR));
  const auto pt = srv.plan_for(make_mttkrp(w));
  w.want_mttkrp =
      exec::mttkrp(convert(w.tensor, pt->run_a), w.mttkrp_b, w.mttkrp_c);
  return w;
}

void expect_same_csr(const CsrMatrix& got, const CsrMatrix& want) {
  EXPECT_EQ(got.row_ptr(), want.row_ptr());
  EXPECT_EQ(got.col_ids(), want.col_ids());
  EXPECT_EQ(got.values(), want.values());
}

// One client: fires a deterministic pseudo-random mix of shared-operand
// requests, keeps a window of outstanding futures, and periodically churns
// private operands — a lone SpMV matrix and an SpGEMM pair (which crosses
// shards on a sharded server) — through register -> serve -> evict.
template <typename S>
void client_thread(S& srv, const SharedWorkload& w, int client_id,
                   std::atomic<int>& failures) {
  std::mt19937 rng(static_cast<unsigned>(7700 + client_id));
  std::uniform_int_distribution<int> pick(0, 99);

  // Private operand state (re-created every churn cycle with the same
  // contents, so the expected result is stable across handles).
  const auto priv_dense =
      random_dense(32, 36, 0.08, 200 + static_cast<unsigned>(client_id));
  const AnyMatrix priv_any = encode(priv_dense, Format::kCSR);
  MatrixHandle priv = srv.register_matrix(priv_any);
  std::vector<value_t> priv_want;  // learned on first use per handle

  // Private SpGEMM pair, same churn discipline. The server always runs
  // SpGEMM as CSR x CSR, so the expectation is handle-independent.
  const AnyMatrix pair_a = encode(
      random_dense(24, 20, 0.1, 300 + static_cast<unsigned>(client_id)),
      Format::kCSR);
  const AnyMatrix pair_b = encode(
      random_dense(20, 22, 0.1, 400 + static_cast<unsigned>(client_id)),
      Format::kCOO);
  MatrixHandle pa = srv.register_matrix(pair_a);
  MatrixHandle pb = srv.register_matrix(pair_b);
  const CsrMatrix pair_want = exec::spgemm(convert(pair_a, Format::kCSR),
                                           convert(pair_b, Format::kCSR));

  struct Pending {
    std::future<Response> fut;
    int kind = 0;          // 0..2 shared kernels by operand, 3 spgemm,
    std::size_t operand = 0;  // 4 mttkrp, 5 private spmv, 6 private pair
  };
  std::vector<Pending> window;

  auto drain = [&](std::size_t keep) {
    while (window.size() > keep) {
      Pending p = std::move(window.front());
      window.erase(window.begin());
      try {
        Response resp = p.fut.get();
        switch (p.kind) {
          case 0:
            EXPECT_EQ(std::get<std::vector<value_t>>(resp.result),
                      w.want_spmv[p.operand]);
            break;
          case 1:
            EXPECT_EQ(std::get<DenseMatrix>(resp.result),
                      w.want_spmm[p.operand]);
            break;
          case 3:
            expect_same_csr(std::get<CsrMatrix>(resp.result), w.want_spgemm);
            break;
          case 4:
            EXPECT_EQ(std::get<DenseMatrix>(resp.result), w.want_mttkrp);
            break;
          case 5:
            EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), priv_want);
            break;
          case 6:
            expect_same_csr(std::get<CsrMatrix>(resp.result), pair_want);
            break;
          default: break;
        }
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  for (int i = 0; i < kRequestsPerClient; ++i) {
    const int roll = pick(rng);
    Pending p;
    if (roll < 30) {
      p.kind = 0;
      p.operand = static_cast<std::size_t>(roll % 3);
      p.fut = srv.submit(make_spmv(w, p.operand));
    } else if (roll < 55) {
      p.kind = 1;
      p.operand = static_cast<std::size_t>(roll % 3);
      p.fut = srv.submit(make_spmm(w, p.operand));
    } else if (roll < 68) {
      p.kind = 3;
      p.fut = srv.submit(make_spgemm(w));
    } else if (roll < 80) {
      p.kind = 4;
      p.fut = srv.submit(make_mttkrp(w));
    } else if (roll < 92) {
      // Private-operand traffic with churn: every few uses, drain, evict
      // the handle, and re-register the same contents under a new id.
      if (roll >= 89) {
        drain(0);
        srv.evict(priv);
        priv = srv.register_matrix(priv_any);
        priv_want.clear();
      }
      if (priv_want.empty()) {
        Request probe;
        probe.kernel = Kernel::kSpMV;
        probe.a = priv;
        probe.vec = w.x;
        const auto plan = srv.plan_for(probe);
        priv_want = exec::spmv(convert(priv_any, plan->run_a), w.x);
      }
      p.kind = 5;
      Request r;
      r.kernel = Kernel::kSpMV;
      r.a = priv;
      r.vec = w.x;
      p.fut = srv.submit(std::move(r));
    } else {
      // Private-pair traffic with churn: on a sharded server the pair
      // regularly lands on two shards, so this drives the cross-shard
      // replication path through create/serve/evict cycles.
      if (roll >= 97) {
        drain(0);
        srv.evict(pa);
        srv.evict(pb);
        pa = srv.register_matrix(pair_a);
        pb = srv.register_matrix(pair_b);
      }
      p.kind = 6;
      Request r;
      r.kernel = Kernel::kSpGEMM;
      r.a = pa;
      r.b = pb;
      p.fut = srv.submit(std::move(r));
    }
    window.push_back(std::move(p));
    if (window.size() >= 8) drain(4);
  }
  drain(0);
  srv.evict(priv);
  srv.evict(pa);
  srv.evict(pb);
}

template <typename S>
void run_traffic(S& srv) {
  const auto w = build_workload(srv);
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&srv, &w, c, &failures] { client_thread(srv, w, c, failures); });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  const auto counters = srv.counters();
  EXPECT_EQ(counters.failed, 0);
  EXPECT_EQ(counters.completed, kClients * kRequestsPerClient);
  // Steady-state traffic must be absorbed by the caches: far more hits
  // than distinct workloads.
  EXPECT_GT(counters.plan_hits, counters.plan_misses);
  EXPECT_GT(counters.conversion_hits, counters.conversion_misses);
  if (srv.options().batch.policy == BatchPolicy::kOff) {
    EXPECT_EQ(counters.batches, 0);
  } else {
    // Whether windows actually coalesce depends on interleaving, but the
    // invariant "batched_requests always come from multi-member launches"
    // must hold under any schedule.
    EXPECT_GE(counters.batched_requests, 2 * counters.batches);
  }

  srv.stop();  // explicit stop before destruction exercises idempotence
  srv.stop();
}

ServerOptions stress_opts(BatchPolicy batching, int batch_window) {
  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 16;
  opts.accel.num_pes = 32;
  opts.accel.pe_buffer_bytes = 64 * 4;
  opts.batch.policy = batching;
  opts.batch.window = batch_window;
  return opts;
}

void run_stress(BatchPolicy batching, int batch_window) {
  Server srv(stress_opts(batching, batch_window));
  run_traffic(srv);
}

// ShardedServer::options() returns ShardedServerOptions; adapt the
// batching probe run_traffic uses.
struct ShardedUnderTest : ShardedServer {
  using ShardedServer::ShardedServer;
  const ServerOptions& options() const {
    return ShardedServer::options().shard;
  }
};

void run_sharded_stress(BatchPolicy batching, int batch_window) {
  ShardedServerOptions opts;
  opts.num_shards = 4;
  opts.shard = stress_opts(batching, batch_window);
  opts.shard.num_workers = 1;  // 4 shards x 1 worker = the same pool size
  // Bounded per-shard caches: generous enough that the hot shared
  // workloads stay resident (the hit-rate assertions above still hold),
  // small enough that churned private operands actually exercise the
  // eviction path under concurrency.
  opts.shard.caches.plan_limits.max_entries = 32;
  opts.shard.caches.conversion_limits.max_entries = 16;
  ShardedUnderTest srv(opts);
  run_traffic(srv);
}

TEST(RuntimeStress, ConcurrentMixedTrafficBitIdentical) {
  run_stress(BatchPolicy::kOff, 1);
}

// Same traffic with the batcher on: fused SpMV/SpMM launches must stay
// bit-identical to the precomputed single-request results under arbitrary
// interleavings, with register/evict churn racing the batching windows.
TEST(RuntimeStress, ConcurrentMixedTrafficBitIdenticalBatched) {
  run_stress(BatchPolicy::kWindow, 8);
}

// The same mixed traffic scattered over four shards: routing, cross-shard
// SpGEMM replication, bounded-cache eviction, and per-shard batching must
// all be invisible in the results.
TEST(RuntimeStress, ShardedConcurrentMixedTrafficBitIdentical) {
  run_sharded_stress(BatchPolicy::kOff, 1);
}

TEST(RuntimeStress, ShardedConcurrentMixedTrafficBitIdenticalBatched) {
  run_sharded_stress(BatchPolicy::kWindow, 8);
}

}  // namespace
}  // namespace mt::runtime
