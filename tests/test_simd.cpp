// The SIMD kernel tier: knob precedence, scalar-tier backward
// compatibility, SIMD-vs-scalar numerical agreement, run-to-run
// determinism, cache-blocked SpGEMM tiling, and the aligned value
// storage the vector loads rely on.
//
// Tolerance note: the ISSUE's determinism contract asks that the SIMD
// tier "match scalar results within tolerance". With value_t = float
// (eps ~ 1.2e-7) a 1e-10 relative bound is unrepresentable: FMA fuses
// the multiply-add rounding step and 8-lane accumulation reassociates
// the sum, so per-element differences of a few ULPs — relative ~1e-6
// over hundreds of accumulated terms — are the *expected* behavior of a
// correct SIMD kernel. The checks below use rtol 1e-5 / atol 1e-6,
// several ULP-decades tighter than any real divergence (a wrong index
// or dropped term shows up at ~1e-1).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"
#include "formats/bsr.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/ell.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "testing.hpp"

namespace {

using namespace mt;

// Restores the override (and the thread setting) even when a test fails.
struct TierGuard {
  int saved = simd_override();
  ~TierGuard() {
    set_simd_enabled(saved);
    set_num_threads(0);
  }
};

constexpr float kRtol = 1e-5f;
constexpr float kAtol = 1e-6f;

void expect_close(const std::vector<value_t>& a,
                  const std::vector<value_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float bound =
        kAtol + kRtol * std::max(std::fabs(a[i]), std::fabs(b[i]));
    EXPECT_NEAR(a[i], b[i], bound) << "element " << i;
  }
}

void expect_close(const DenseMatrix& a, const DenseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    const float av = a.values()[i], bv = b.values()[i];
    const float bound = kAtol + kRtol * std::max(std::fabs(av), std::fabs(bv));
    EXPECT_NEAR(av, bv, bound) << "element " << i;
  }
}

// --- Knob ---

TEST(SimdKnob, OverrideBeatsDetection) {
  TierGuard guard;
  set_simd_enabled(0);
  EXPECT_EQ(simd_override(), 0);
  EXPECT_FALSE(simd_enabled());  // forced scalar regardless of the CPU
  set_simd_enabled(1);
  EXPECT_EQ(simd_override(), 1);
  // Forced on still never claims SIMD on a CPU that cannot run it.
  EXPECT_EQ(simd_enabled(), cpu_has_avx2());
  set_simd_enabled(-1);
  EXPECT_EQ(simd_override(), -1);
  // No override: env/detection decide; either way the predicate must be
  // false whenever the capability probe is.
  if (!cpu_has_avx2()) EXPECT_FALSE(simd_enabled());
}

TEST(SimdKnob, OverrideModeClamps) {
  TierGuard guard;
  set_simd_enabled(7);
  EXPECT_EQ(simd_override(), 1);
  set_simd_enabled(-3);
  EXPECT_EQ(simd_override(), -1);
}

#if !MT_SIMD_X86
TEST(SimdKnob, PortableBuildNeverEnables) {
  TierGuard guard;
  EXPECT_FALSE(cpu_has_avx2());
  set_simd_enabled(1);
  EXPECT_FALSE(simd_enabled());
}
#endif

// --- Scalar tier backward compatibility ---
//
// With the SIMD tier forced off, every kernel must reproduce the naive
// reference loop bit-for-bit: this is the MT_SIMD=off escape hatch that
// restores pre-SIMD results exactly.

TEST(SimdScalarTier, SpmvCsrBitEqualsNaiveReference) {
  TierGuard guard;
  set_simd_enabled(0);
  const auto d = mt::testing::random_dense(48, 64, 0.4, 101);
  const auto a = CsrMatrix::from_dense(d);
  std::vector<value_t> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25f * static_cast<float>(i % 7) - 0.5f;
  }
  std::vector<value_t> want(48, 0.0f);
  for (index_t r = 0; r < 48; ++r) {
    value_t acc = 0.0f;
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      acc += a.values()[i] * x[static_cast<std::size_t>(a.col_ids()[i])];
    }
    want[static_cast<std::size_t>(r)] = acc;
  }
  EXPECT_EQ(spmv_csr(a, x), want);
}

TEST(SimdScalarTier, GemmBitEqualsNaiveReference) {
  TierGuard guard;
  set_simd_enabled(0);
  const auto a = mt::testing::random_dense(20, 30, 0.6, 102);
  const auto b = mt::testing::random_dense(30, 25, 0.6, 103);
  DenseMatrix want(20, 25);
  for (index_t i = 0; i < 20; ++i) {
    for (index_t k = 0; k < 30; ++k) {
      const value_t av = a.at(i, k);
      if (av == 0.0f) continue;
      for (index_t j = 0; j < 25; ++j) {
        want.set(i, j, want.at(i, j) + av * b.at(k, j));
      }
    }
  }
  EXPECT_EQ(gemm(a, b).values(), want.values());
}

// --- SIMD vs scalar: tolerance agreement on every vectorized kernel ---

class SimdVsScalar : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!cpu_has_avx2()) GTEST_SKIP() << "host lacks AVX2+FMA";
  }
  TierGuard guard_;
};

TEST_F(SimdVsScalar, SpmvFormats) {
  // Dense enough that rows exceed both the 16-step and 8-step unroll.
  const auto d = mt::testing::random_dense(64, 96, 0.5, 111);
  const auto xd = mt::testing::random_dense(96, 1, 1.0, 112);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  const auto csr = CsrMatrix::from_dense(d);
  const auto ell = EllMatrix::from_dense(d);
  const auto bsr = BsrMatrix::from_dense(d);
  set_simd_enabled(0);
  const auto s_csr = spmv_csr(csr, x);
  const auto s_ell = spmv_ell(ell, x);
  const auto s_bsr = spmv_bsr(bsr, x);
  const auto s_den = spmv_dense(d, x);
  set_simd_enabled(1);
  expect_close(spmv_csr(csr, x), s_csr);
  expect_close(spmv_ell(ell, x), s_ell);
  expect_close(spmv_bsr(bsr, x), s_bsr);
  expect_close(spmv_dense(d, x), s_den);
}

TEST_F(SimdVsScalar, SpmmCsrAndDenseCsc) {
  // 70 columns: two 32-wide tiles, one 8-wide step, a 6-column tail.
  const auto ad = mt::testing::random_dense(48, 64, 0.3, 113);
  const auto b = mt::testing::random_dense(64, 70, 0.9, 114);
  const auto csr = CsrMatrix::from_dense(ad);
  const auto dl = mt::testing::random_dense(45, 52, 0.9, 115);
  const auto csc = CscMatrix::from_dense(mt::testing::random_dense(52, 38, 0.3, 116));
  set_simd_enabled(0);
  const auto s_csr = spmm_csr_dense(csr, b);
  const auto s_dcsc = spmm_dense_csc(dl, csc);
  set_simd_enabled(1);
  expect_close(spmm_csr_dense(csr, b), s_csr);
  expect_close(spmm_dense_csc(dl, csc), s_dcsc);
}

TEST_F(SimdVsScalar, GemmAcrossPanelBoundaries) {
  // k = 300 spans two kKc = 256 panels; n = 37 leaves a 5-column tail.
  const auto a = mt::testing::random_dense(37, 300, 0.8, 117);
  const auto b = mt::testing::random_dense(300, 37, 0.8, 118);
  set_simd_enabled(0);
  const auto s = gemm(a, b);
  set_simd_enabled(1);
  expect_close(gemm(a, b), s);
}

TEST_F(SimdVsScalar, MttkrpCsfRankTiles) {
  // Rank 24: one 16-wide tile plus an 8-rank scalar tail.
  const auto t = mt::testing::random_tensor(16, 14, 12, 0.2, 119);
  const auto x = CsfTensor3::from_dense(t);
  const auto b = mt::testing::random_dense(14, 24, 1.0, 120);
  const auto c = mt::testing::random_dense(12, 24, 1.0, 121);
  set_simd_enabled(0);
  const auto s = mttkrp_csf(x, b, c);
  set_simd_enabled(1);
  expect_close(mttkrp_csf(x, b, c), s);
}

// --- SIMD tier determinism ---

TEST_F(SimdVsScalar, RunToRunBitIdentical) {
  set_simd_enabled(1);
  const auto d = mt::testing::random_dense(64, 96, 0.5, 131);
  const auto csr = CsrMatrix::from_dense(d);
  const auto b = mt::testing::random_dense(96, 40, 0.9, 132);
  const auto xd = mt::testing::random_dense(96, 1, 1.0, 133);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  EXPECT_EQ(spmv_csr(csr, x), spmv_csr(csr, x));
  EXPECT_EQ(spmm_csr_dense(csr, b).values(), spmm_csr_dense(csr, b).values());
  const auto g1 = gemm(d, mt::testing::random_dense(96, 33, 0.8, 134));
  const auto g2 = gemm(d, mt::testing::random_dense(96, 33, 0.8, 134));
  EXPECT_EQ(g1.values(), g2.values());
}

// The ELL padding contract under the masked gather: padding lanes
// (col_id == -1) must contribute exactly nothing, even when the vector
// holds non-finite values at indices no real entry references.
TEST_F(SimdVsScalar, EllPaddingIgnoresPoisonedVector) {
  set_simd_enabled(1);
  // Row 0 references columns 0..8 (9 entries, exercising the 8-lane
  // step + tail); row 1 references only column 0 and is padded to 9.
  DenseMatrix d(2, 12);
  for (index_t c = 0; c < 9; ++c) d.set(0, c, 1.0f);
  d.set(1, 0, 2.0f);
  const auto ell = EllMatrix::from_dense(d);
  std::vector<value_t> x(12, 1.0f);
  // Columns 9..11 are referenced by no entry; poison them.
  x[9] = std::numeric_limits<float>::quiet_NaN();
  x[10] = std::numeric_limits<float>::infinity();
  x[11] = -std::numeric_limits<float>::infinity();
  const auto y = spmv_ell(ell, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 9.0f);
  EXPECT_EQ(y[1], 2.0f);
}

// --- Cache-blocked SpGEMM ---

TEST(SpgemmTiling, TileWidthNeverChangesBits) {
  TierGuard guard;
  const auto a = CsrMatrix::from_dense(mt::testing::random_dense(40, 64, 0.2, 141));
  const auto b = CsrMatrix::from_dense(mt::testing::random_dense(64, 120, 0.2, 142));
  const auto ref = spgemm_csr(a, b);  // production tile width (single tile)
  for (const index_t tile : {7, 16, 64, 121}) {
    const auto got = spgemm_csr_tiled(a, b, tile);
    ASSERT_EQ(got.nnz(), ref.nnz()) << "tile " << tile;
    EXPECT_EQ(got.row_ptr(), ref.row_ptr()) << "tile " << tile;
    EXPECT_EQ(got.col_ids(), ref.col_ids()) << "tile " << tile;
    EXPECT_EQ(got.values(), ref.values()) << "tile " << tile;
  }
}

// --- Aligned value storage ---

TEST(AlignedStorage, FormatValueBuffersAreCacheLineAligned) {
  const auto d = mt::testing::random_dense(33, 47, 0.3, 151);
  EXPECT_TRUE(is_aligned(d.values().data()));
  EXPECT_TRUE(is_aligned(CsrMatrix::from_dense(d).values().data()));
  EXPECT_TRUE(is_aligned(EllMatrix::from_dense(d).values().data()));
  EXPECT_TRUE(is_aligned(BsrMatrix::from_dense(d).block_values().data()));
}

}  // namespace
