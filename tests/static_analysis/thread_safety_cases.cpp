// Compile-time fixture for the thread-safety-analysis checks
// (tests/test_static_analysis.cmake). Three modes:
//
//   (default)                correctly annotated code — must COMPILE under
//                            -Wthread-safety -Wthread-safety-beta -Werror,
//                            proving the wrappers' annotations are
//                            well-formed (a broken macro would reject
//                            valid code and mask the negative cases).
//   -DMT_SA_UNGUARDED_FIELD  touches an MT_GUARDED_BY field without its
//                            mutex — must FAIL to compile under clang.
//   -DMT_SA_MISSING_REQUIRES calls an MT_REQUIRES method without holding
//                            the lock — must FAIL to compile under clang.
//
// The positive control deliberately exercises the same patterns the
// runtime relies on: scoped guards over both mutex kinds, the
// unlock-before-notify idiom (relockable scoped capability), explicit
// condition-variable wait loops, and REQUIRES-annotated private helpers.

#include "common/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  // LockGuard over a plain Mutex + REQUIRES helper called under the lock.
  void add(int d) MT_EXCLUDES(mu_) {
    mt::LockGuard lk(mu_);
    n_ += d;
    bump();
  }

  // UniqueLock + CondVar wait loop + early unlock before notify — the
  // MpmcQueue shape; the scoped release in the destructor must be
  // provably a no-op on the unlocked path.
  void add_when_even(int d) MT_EXCLUDES(mu_) {
    mt::UniqueLock lk(mu_);
    while (n_ % 2 != 0) cv_.wait(lk);
    n_ += d;
    lk.unlock();
    cv_.notify_one();
  }

  int read() const MT_EXCLUDES(mu_) {
    mt::LockGuard lk(mu_);
    return n_;
  }

#if defined(MT_SA_UNGUARDED_FIELD)
  // Negative case: guarded field touched with no lock held.
  int racy_read() const { return n_; }
#endif

#if defined(MT_SA_MISSING_REQUIRES)
  // Negative case: REQUIRES callee invoked without the capability.
  void racy_bump() { bump(); }
#endif

 private:
  void bump() MT_REQUIRES(mu_) { ++n_; }

  mutable mt::Mutex mu_;
  mt::CondVar cv_;
  int n_ MT_GUARDED_BY(mu_) = 0;
};

class SharedGuarded {
 public:
  void set(int v) MT_EXCLUDES(smu_) {
    mt::LockGuard lk(smu_);
    v_ = v;
  }

  int get() const MT_EXCLUDES(smu_) {
    mt::SharedLock lk(smu_);
    return v_;
  }

 private:
  mutable mt::SharedMutex smu_;
  int v_ MT_GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.add(2);
  g.add_when_even(2);
#if defined(MT_SA_UNGUARDED_FIELD)
  (void)g.racy_read();
#endif
#if defined(MT_SA_MISSING_REQUIRES)
  g.racy_bump();
#endif
  SharedGuarded s;
  s.set(1);
  return g.read() + s.get() > 0 ? 0 : 1;
}
