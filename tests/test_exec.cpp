// The execution engine: every (kernel x format) pair the engine accepts
// must produce the dense-reference result, the dispatch report must match
// the registry (native vs conversion fallback), and a SAGE winning choice
// must be executable end-to-end — MCF materialization, MCF->ACF
// conversion, ACF kernel — not just priced.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "exec/exec.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttm.hpp"
#include "sage/execute.hpp"
#include "testing.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

namespace mt {
namespace {

using testing::random_dense;
using testing::random_tensor;

constexpr double kTol = 1e-4;  // satellite spec: engine vs dense reference

std::string ctx(Kernel k, Format f) {
  return std::string(name_of(k)) + " over " + std::string(name_of(f));
}

// --- Property: every supported (kernel x format) pair matches the dense
// reference, and reports the path the registry promises. ---

TEST(ExecProperty, SpmvEveryFormatMatchesDenseReference) {
  const auto a = random_dense(37, 29, 0.18, 11);
  const auto xd = random_dense(29, 1, 1.0, 12);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  const auto want = gemm(a, xd);
  for (Format f : exec::supported_formats(Kernel::kSpMV)) {
    exec::Dispatch d;
    const auto got = exec::spmv(encode(a, f), x, &d);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(a.rows()));
    for (index_t r = 0; r < a.rows(); ++r) {
      ASSERT_NEAR(got[static_cast<std::size_t>(r)], want.at(r, 0), kTol)
          << ctx(Kernel::kSpMV, f);
    }
    EXPECT_EQ(d.path, exec::has_native(Kernel::kSpMV, f)
                          ? exec::Path::kNative
                          : exec::Path::kFallback)
        << ctx(Kernel::kSpMV, f);
    EXPECT_EQ(d.given_a, f);
    if (d.path == exec::Path::kFallback) {
      EXPECT_EQ(d.ran_a, exec::fallback_format(Kernel::kSpMV));
    } else {
      EXPECT_EQ(d.ran_a, f);
    }
  }
}

TEST(ExecProperty, SpmmEveryFormatMatchesDenseReference) {
  const auto a = random_dense(26, 33, 0.22, 21);
  const auto b = random_dense(33, 17, 1.0, 22);
  const auto want = gemm(a, b);
  for (Format f : exec::supported_formats(Kernel::kSpMM)) {
    exec::Dispatch d;
    const auto got = exec::spmm(encode(a, f), b, &d);
    EXPECT_LE(max_abs_diff(got, want), kTol) << ctx(Kernel::kSpMM, f);
    EXPECT_EQ(d.path, exec::has_native(Kernel::kSpMM, f)
                          ? exec::Path::kNative
                          : exec::Path::kFallback)
        << ctx(Kernel::kSpMM, f);
  }
}

TEST(ExecProperty, SpgemmEveryFormatPairMatchesDenseReference) {
  const auto a = random_dense(24, 30, 0.2, 31);
  const auto b = random_dense(30, 21, 0.25, 32);
  const auto want = gemm(a, b);
  for (Format fa : exec::supported_formats(Kernel::kSpGEMM)) {
    for (Format fb : {Format::kCSR, Format::kCOO, Format::kZVC}) {
      exec::Dispatch d;
      const auto got = exec::spgemm(encode(a, fa), encode(b, fb), &d);
      EXPECT_LE(max_abs_diff(got.to_dense(), want), kTol)
          << ctx(Kernel::kSpGEMM, fa) << "/" << name_of(fb);
      const bool native = fa == Format::kCSR && fb == Format::kCSR;
      EXPECT_EQ(d.path,
                native ? exec::Path::kNative : exec::Path::kFallback);
    }
  }
}

TEST(ExecProperty, SpmmPairDispatchMatchesDenseReference) {
  const auto a = random_dense(22, 28, 0.3, 41);
  const auto b = random_dense(28, 19, 0.4, 42);
  const auto want = gemm(a, b);
  // Every ACF pair SAGE can emit, plus non-native pairs that must fall
  // back: (COO, CSC) has no kernel, (ELL, CSC) repairs both operands.
  const std::pair<Format, Format> pairs[] = {
      {Format::kDense, Format::kDense}, {Format::kCOO, Format::kDense},
      {Format::kCSR, Format::kDense},   {Format::kCSC, Format::kDense},
      {Format::kDense, Format::kCSC},   {Format::kCSR, Format::kCSC},
      {Format::kCOO, Format::kCSC},     {Format::kELL, Format::kCSC},
      {Format::kBSR, Format::kRLC}};
  for (const auto& [fa, fb] : pairs) {
    exec::Dispatch d;
    const auto got = exec::spmm(encode(a, fa), encode(b, fb), &d);
    EXPECT_LE(max_abs_diff(got, want), kTol)
        << name_of(fa) << "/" << name_of(fb);
    EXPECT_EQ(d.path, exec::has_native_pair(fa, fb) ? exec::Path::kNative
                                                    : exec::Path::kFallback)
        << name_of(fa) << "/" << name_of(fb);
  }
}

TEST(ExecProperty, TtmEveryFormatMatchesDenseReference) {
  const auto t = random_tensor(9, 11, 8, 0.15, 51);
  const auto u = random_dense(8, 6, 1.0, 52);
  const auto want = ttm_dense(t, u);
  for (Format f : exec::supported_formats(Kernel::kSpTTM)) {
    exec::Dispatch d;
    const auto got = exec::ttm(encode(t, f), u, &d);
    EXPECT_LE(max_abs_diff(got, want), kTol) << ctx(Kernel::kSpTTM, f);
    EXPECT_EQ(d.path, exec::has_native(Kernel::kSpTTM, f)
                          ? exec::Path::kNative
                          : exec::Path::kFallback)
        << ctx(Kernel::kSpTTM, f);
  }
}

TEST(ExecProperty, MttkrpEveryFormatMatchesDenseReference) {
  const auto t = random_tensor(10, 7, 12, 0.2, 61);
  const auto b = random_dense(7, 5, 1.0, 62);
  const auto c = random_dense(12, 5, 1.0, 63);
  const auto want = mttkrp_dense(t, b, c);
  for (Format f : exec::supported_formats(Kernel::kMTTKRP)) {
    exec::Dispatch d;
    const auto got = exec::mttkrp(encode(t, f), b, c, &d);
    EXPECT_LE(max_abs_diff(got, want), kTol) << ctx(Kernel::kMTTKRP, f);
    EXPECT_EQ(d.path, exec::has_native(Kernel::kMTTKRP, f)
                          ? exec::Path::kNative
                          : exec::Path::kFallback)
        << ctx(Kernel::kMTTKRP, f);
  }
}

// --- Registry coverage: the natives the README matrix promises. ---

TEST(ExecRegistry, NativeCoverageMatchesReadmeMatrix) {
  using exec::has_native;
  for (Format f : {Format::kCSR, Format::kCSC, Format::kCOO, Format::kDense,
                   Format::kELL, Format::kBSR}) {
    EXPECT_TRUE(has_native(Kernel::kSpMV, f)) << name_of(f);
  }
  for (Format f : {Format::kCSR, Format::kCSC, Format::kCOO, Format::kDense}) {
    EXPECT_TRUE(has_native(Kernel::kSpMM, f)) << name_of(f);
  }
  for (Format f : {Format::kCOO, Format::kCSF, Format::kHiCOO,
                   Format::kDense}) {
    EXPECT_TRUE(has_native(Kernel::kMTTKRP, f)) << name_of(f);
  }
  for (Format f : {Format::kCOO, Format::kCSF, Format::kDense}) {
    EXPECT_TRUE(has_native(Kernel::kSpTTM, f)) << name_of(f);
  }
  EXPECT_TRUE(has_native(Kernel::kSpGEMM, Format::kCSR));
  EXPECT_TRUE(has_native(Kernel::kGemm, Format::kDense));
  // Formats that must route through the fallback.
  EXPECT_FALSE(has_native(Kernel::kSpMV, Format::kDIA));
  EXPECT_FALSE(has_native(Kernel::kSpMM, Format::kELL));
  EXPECT_FALSE(has_native(Kernel::kMTTKRP, Format::kZVC));
}

// --- The convert-fallback path, exercised explicitly. ---

TEST(ExecFallback, DiaSpmvConvertsThroughCsr) {
  const auto a = random_dense(20, 20, 0.3, 71);
  const auto xd = random_dense(20, 1, 1.0, 72);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  exec::Dispatch d;
  const auto got = exec::spmv(encode(a, Format::kDIA), x, &d);
  EXPECT_EQ(d.path, exec::Path::kFallback);
  EXPECT_EQ(d.given_a, Format::kDIA);
  EXPECT_EQ(d.ran_a, Format::kCSR);
  const auto want = gemm(a, xd);
  for (index_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(got[static_cast<std::size_t>(r)], want.at(r, 0), kTol);
  }
  EXPECT_NE(d.describe().find("fallback"), std::string::npos);
}

TEST(ExecFallback, ZvcMttkrpConvertsThroughCsf) {
  const auto t = random_tensor(8, 9, 10, 0.15, 81);
  const auto b = random_dense(9, 4, 1.0, 82);
  const auto c = random_dense(10, 4, 1.0, 83);
  exec::Dispatch d;
  const auto got = exec::mttkrp(encode(t, Format::kZVC), b, c, &d);
  EXPECT_EQ(d.path, exec::Path::kFallback);
  EXPECT_EQ(d.ran_a, Format::kCSF);
  EXPECT_LE(max_abs_diff(got, mttkrp_dense(t, b, c)), kTol);
}

// --- SAGE choices executed end-to-end, not just priced. ---

TEST(SageExecute, Table3JournalWinningChoiceRunsAndVerifies) {
  const auto& w = matrix_workload("journal");  // 124x124, 12k nnz
  const auto a = synth_coo_matrix(w, 1);
  const index_t n = factor_cols(w.m);
  const auto b = synth_coo_matrix(w.k, n, w.k * n / 4, 2);
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams energy;
  const auto choice = sage_select_matmul(a, b, cfg, energy);
  const auto r = execute_choice(choice, a, b);
  EXPECT_TRUE(r.verified) << choice.describe()
                          << " err=" << r.max_abs_err
                          << " via " << r.dispatch.describe();
  EXPECT_EQ(r.output.rows(), w.m);
  EXPECT_EQ(r.output.cols(), n);
}

TEST(SageExecute, Table3TensorWinningChoiceRunsAndVerifies) {
  // BrainQ at reduced nnz: Table III dimensions are kept exactly; the
  // dense reference bounds how many nonzeros the test can afford.
  const auto& w = tensor_workload("BrainQ");
  const auto x = synth_coo_tensor(w.x, w.y, w.z, w.nnz / 64, 3);
  const index_t rank = 8;
  const auto fb = random_dense(w.z, rank, 1.0, 4);
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams energy;
  const auto choice = sage_select_tensor(x, rank, w.kernel, cfg, energy);
  const auto r = execute_tensor_choice(choice, w.kernel, x, fb, fb);
  EXPECT_TRUE(r.verified) << "MCF " << name_of(choice.mcf_t) << " ACF "
                          << name_of(choice.acf_t)
                          << " err=" << r.max_abs_err << " via "
                          << r.dispatch.describe();
}

TEST(SageExecute, SpmmDenseBChoiceRunsAndVerifies) {
  const auto a = synth_coo_matrix(96, 80, 96 * 80 / 12, 5);
  const auto b = random_dense(80, 48, 1.0, 6);
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams energy;
  const auto choice = sage_select_spmm_dense_b(a, b.cols(), cfg, energy);
  const auto r = execute_choice_spmm(choice, a, b);
  EXPECT_TRUE(r.verified) << choice.describe() << " err=" << r.max_abs_err;
}

TEST(SageExecute, EveryBaselineArchetypeExecutesItsChoice) {
  const auto a = synth_coo_matrix(48, 40, 48 * 40 / 8, 7);
  const auto b = synth_coo_matrix(40, 36, 40 * 36 / 8, 8);
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams energy;
  for (AccelType t : kAllAccelTypes) {
    SageChoice choice;
    const auto r = execute_baseline(t, a, b, cfg, energy, &choice);
    EXPECT_TRUE(r.verified)
        << name_of(t) << ": " << choice.describe()
        << " err=" << r.max_abs_err << " via " << r.dispatch.describe();
  }
}

// --- Kernel iteration helpers (common/types.hpp satellite). ---

TEST(KernelHelpers, AllKernelsIterateInEnumOrderWithNames) {
  EXPECT_EQ(kAllKernels.size(), 6u);
  for (std::size_t i = 0; i < kAllKernels.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(kAllKernels[i]), i);
    EXPECT_NE(name_of(kAllKernels[i]), "?");
  }
  EXPECT_TRUE(is_tensor_kernel(Kernel::kSpTTM));
  EXPECT_TRUE(is_tensor_kernel(Kernel::kMTTKRP));
  EXPECT_FALSE(is_tensor_kernel(Kernel::kSpMV));
  // Every kernel reports a fallback ACF and a non-empty format set.
  for (Kernel k : kAllKernels) {
    EXPECT_FALSE(exec::supported_formats(k).empty()) << name_of(k);
    EXPECT_TRUE(exec::has_native(k, exec::fallback_format(k))) << name_of(k);
  }
}

}  // namespace
}  // namespace mt
