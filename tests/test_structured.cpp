// ELLPACK and the structured-sparsity generators: the storage trades the
// paper's format survey describes (DIA wins banded, BSR wins blocked,
// ELL wins row-balanced, all lose on unstructured data).
#include <gtest/gtest.h>

#include "convert/convert.hpp"
#include "formats/ell.hpp"
#include "formats/storage.hpp"
#include "workloads/structured.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;

TEST(EllMatrix, RoundTripAcrossShapes) {
  for (auto [m, k, d] : {std::tuple<index_t, index_t, double>{16, 16, 0.0},
                         std::tuple<index_t, index_t, double>{16, 16, 1.0},
                         std::tuple<index_t, index_t, double>{33, 17, 0.1},
                         std::tuple<index_t, index_t, double>{1, 64, 0.3},
                         std::tuple<index_t, index_t, double>{64, 1, 0.3}}) {
    const auto dm = random_dense(m, k, d, 11);
    const auto e = EllMatrix::from_dense(dm);
    EXPECT_EQ(max_abs_diff(e.to_dense(), dm), 0.0);
    EXPECT_EQ(e.nnz(), dm.nnz());
  }
}

TEST(EllMatrix, WidthIsMaxRowPopulation) {
  DenseMatrix d(4, 8);
  d.set(0, 1, 1.f);
  d.set(2, 0, 2.f);
  d.set(2, 3, 3.f);
  d.set(2, 7, 4.f);
  const auto e = EllMatrix::from_dense(d);
  EXPECT_EQ(e.width(), 3);
  EXPECT_EQ(static_cast<index_t>(e.values().size()), 4 * 3);
}

TEST(EllMatrix, EmptyMatrixHasZeroWidth) {
  const auto e = EllMatrix::from_dense(DenseMatrix(8, 8));
  EXPECT_EQ(e.width(), 0);
  EXPECT_EQ(e.storage(DataType::kFp32).total_bits(), 0);
}

TEST(EllMatrix, PaddingChargesStorage) {
  // One heavy row forces full-width padding everywhere.
  DenseMatrix d(32, 32);
  for (index_t c = 0; c < 32; ++c) d.set(0, c, 1.f);
  d.set(5, 3, 1.f);
  const auto ell_bits = EllMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto csr_bits = CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  EXPECT_GT(ell_bits, 10 * csr_bits);
}

TEST(EllMatrix, GenericLayerIntegration) {
  const auto d = random_dense(24, 18, 0.15, 77);
  const AnyMatrix m = encode(d, Format::kELL);
  EXPECT_EQ(format_of(m), Format::kELL);
  EXPECT_EQ(max_abs_diff(decode(convert(m, Format::kCSR)), d), 0.0);
  EXPECT_EQ(max_abs_diff(decode(convert(encode(d, Format::kRLC), Format::kELL)), d), 0.0);
}

TEST(EllStorageModel, TracksExactOnRandomMatrices) {
  for (double d : {0.02, 0.1, 0.4}) {
    const auto dm = random_dense(128, 96, d, 5);
    const auto exact =
        EllMatrix::from_dense(dm).storage(DataType::kFp32).total_bits();
    const auto model = expected_matrix_storage(Format::kELL, 128, 96, dm.nnz(),
                                               DataType::kFp32).total_bits();
    // Extreme-value approximation: generous but bounded tolerance.
    EXPECT_NEAR(static_cast<double>(model), static_cast<double>(exact),
                0.35 * static_cast<double>(exact) + 256.0)
        << "density " << d;
  }
}

// --- Structured generators and the formats that exploit them ---

TEST(Structured, BandedMatrixIsCompactInDia) {
  const auto d = synth_banded_matrix(128, 5, 3);
  EXPECT_EQ(DiaMatrix::from_dense(d).num_diagonals(), 5);
  const auto dia = DiaMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto coo = CooMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto csr = CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  EXPECT_LT(dia, coo);
  EXPECT_LT(dia, csr);
}

TEST(Structured, UnstructuredMatrixIsCatastrophicInDia) {
  const auto d = random_dense(128, 128, 0.03, 4);
  const auto dia = DiaMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto csr = CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  EXPECT_GT(dia, 10 * csr);
}

TEST(Structured, BlockSparseMatrixIsCompactInBsr) {
  const auto d = synth_block_sparse_matrix(128, 128, 4, 4, 0.1, 5);
  const auto bsr =
      BsrMatrix::from_dense(d, 4, 4).storage(DataType::kFp32).total_bits();
  const auto coo = CooMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  const auto csr = CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits();
  EXPECT_LT(bsr, coo);
  EXPECT_LT(bsr, csr);
}

TEST(Structured, MatchedBlockSizeBeatsMismatched) {
  const auto d = synth_block_sparse_matrix(120, 120, 4, 4, 0.1, 6);
  const auto matched =
      BsrMatrix::from_dense(d, 4, 4).storage(DataType::kFp32).total_bits();
  const auto mismatched =
      BsrMatrix::from_dense(d, 3, 5).storage(DataType::kFp32).total_bits();
  EXPECT_LT(matched, mismatched);
}

TEST(Structured, RowBalancedMatrixHasNoEllPadding) {
  const auto d = synth_row_balanced_matrix(64, 256, 8, 7);
  const auto e = EllMatrix::from_dense(d);
  EXPECT_EQ(e.width(), 8);
  EXPECT_EQ(e.nnz(), 64 * 8);
  // Every slot is a real nonzero: ELL beats COO (narrower ids, no row id).
  EXPECT_LT(e.storage(DataType::kFp32).total_bits(),
            CooMatrix::from_dense(d).storage(DataType::kFp32).total_bits());
}

TEST(Structured, GeneratorsAreDeterministic) {
  EXPECT_EQ(max_abs_diff(synth_banded_matrix(32, 3, 9),
                         synth_banded_matrix(32, 3, 9)), 0.0);
  EXPECT_EQ(max_abs_diff(synth_block_sparse_matrix(32, 32, 4, 4, 0.2, 9),
                         synth_block_sparse_matrix(32, 32, 4, 4, 0.2, 9)), 0.0);
  EXPECT_EQ(max_abs_diff(synth_row_balanced_matrix(32, 32, 4, 9),
                         synth_row_balanced_matrix(32, 32, 4, 9)), 0.0);
}

TEST(Structured, BandedRejectsTooManyBands) {
  EXPECT_THROW(synth_banded_matrix(4, 9, 1), std::invalid_argument);
}

TEST(Structured, CsrToBsrPreservesBlockStructure) {
  // The MINT CSR->BSR pipeline on actually-blocked data produces exactly
  // the populated blocks, no more.
  const auto d = synth_block_sparse_matrix(64, 64, 4, 4, 0.15, 10);
  const auto bsr = csr_to_bsr(CsrMatrix::from_dense(d), 4, 4);
  EXPECT_EQ(bsr.num_blocks(),
            BsrMatrix::from_dense(d, 4, 4).num_blocks());
  EXPECT_EQ(max_abs_diff(bsr.to_dense(), d), 0.0);
}

}  // namespace
}  // namespace mt
