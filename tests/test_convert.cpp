// Direct converters vs encode-from-dense oracles, plus the generic
// any->any conversion layer (property: decode is invariant under convert).
#include <gtest/gtest.h>

#include <tuple>

#include "convert/convert.hpp"
#include "testing.hpp"

namespace mt {
namespace {

using testing::random_dense;
using testing::random_tensor;

class DirectConverters
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {
 protected:
  DenseMatrix dense() const {
    const auto [m, k, d] = GetParam();
    return random_dense(m, k, d, 0xC0FFEE);
  }
};

TEST_P(DirectConverters, CsrToCscMatchesOracle) {
  const auto d = dense();
  const auto got = csr_to_csc(CsrMatrix::from_dense(d));
  const auto want = CscMatrix::from_dense(d);
  EXPECT_EQ(got.col_ptr(), want.col_ptr());
  EXPECT_EQ(got.row_ids(), want.row_ids());
  EXPECT_EQ(got.values(), want.values());
}

TEST_P(DirectConverters, CscToCsrMatchesOracle) {
  const auto d = dense();
  const auto got = csc_to_csr(CscMatrix::from_dense(d));
  const auto want = CsrMatrix::from_dense(d);
  EXPECT_EQ(got.row_ptr(), want.row_ptr());
  EXPECT_EQ(got.col_ids(), want.col_ids());
  EXPECT_EQ(got.values(), want.values());
}

TEST_P(DirectConverters, CsrCscInvolution) {
  const auto d = dense();
  const auto csr = CsrMatrix::from_dense(d);
  const auto back = csc_to_csr(csr_to_csc(csr));
  EXPECT_EQ(back.row_ptr(), csr.row_ptr());
  EXPECT_EQ(back.col_ids(), csr.col_ids());
  EXPECT_EQ(back.values(), csr.values());
}

TEST_P(DirectConverters, RlcToCooMatchesOracle) {
  const auto d = dense();
  const auto got = rlc_to_coo(RlcMatrix::from_dense(d));
  const auto want = CooMatrix::from_dense(d);
  EXPECT_EQ(got.row_ids(), want.row_ids());
  EXPECT_EQ(got.col_ids(), want.col_ids());
  EXPECT_EQ(got.values(), want.values());
}

TEST_P(DirectConverters, CsrToBsrMatchesOracle) {
  const auto d = dense();
  const auto got = csr_to_bsr(CsrMatrix::from_dense(d), 2, 2);
  const auto want = BsrMatrix::from_dense(d, 2, 2);
  EXPECT_EQ(got.block_row_ptr(), want.block_row_ptr());
  EXPECT_EQ(got.block_col_ids(), want.block_col_ids());
  EXPECT_EQ(got.block_values(), want.block_values());
}

TEST_P(DirectConverters, CsrToBsrOddBlocksRoundTrip) {
  const auto d = dense();
  const auto bsr = csr_to_bsr(CsrMatrix::from_dense(d), 3, 5);
  EXPECT_EQ(max_abs_diff(bsr.to_dense(), d), 0.0);
  const auto back = bsr_to_csr(bsr);
  EXPECT_EQ(max_abs_diff(back.to_dense(), d), 0.0);
}

TEST_P(DirectConverters, DenseZvcRoundTrip) {
  const auto d = dense();
  EXPECT_EQ(max_abs_diff(zvc_to_dense(dense_to_zvc(d)), d), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectConverters,
    ::testing::Values(std::tuple<index_t, index_t, double>{4, 4, 0.4},
                      std::tuple<index_t, index_t, double>{16, 16, 0.0},
                      std::tuple<index_t, index_t, double>{16, 16, 1.0},
                      std::tuple<index_t, index_t, double>{33, 17, 0.07},
                      std::tuple<index_t, index_t, double>{17, 33, 0.5},
                      std::tuple<index_t, index_t, double>{64, 64, 0.02},
                      std::tuple<index_t, index_t, double>{1, 100, 0.1},
                      std::tuple<index_t, index_t, double>{100, 1, 0.1}));

TEST(DirectConverters, RlcWithEscapesToCoo) {
  DenseMatrix d(3, 40);
  d.set(0, 0, 1.f);
  d.set(2, 39, 2.f);  // long run of zeros in between forces escapes
  const auto got = rlc_to_coo(RlcMatrix::from_dense(d, 3));
  EXPECT_EQ(got.nnz(), 2);
  EXPECT_EQ(max_abs_diff(got.to_dense(), d), 0.0);
}

TEST(DirectConverters, DenseToCsfMatchesFromCoo) {
  const auto t = random_tensor(9, 7, 11, 0.08, 1234);
  const auto a = dense_to_csf(t);
  const auto b = CsfTensor3::from_coo(CooTensor3::from_dense(t));
  EXPECT_EQ(a.x_ids(), b.x_ids());
  EXPECT_EQ(a.y_ptr(), b.y_ptr());
  EXPECT_EQ(a.y_ids(), b.y_ids());
  EXPECT_EQ(a.z_ptr(), b.z_ptr());
  EXPECT_EQ(a.z_ids(), b.z_ids());
  EXPECT_EQ(a.values(), b.values());
}

// --- Generic layer: every (from, to) pair preserves the dense decode ---

class AnyToAny : public ::testing::TestWithParam<std::tuple<Format, Format>> {};

TEST_P(AnyToAny, ConversionPreservesContents) {
  const auto [from, to] = GetParam();
  const auto d = random_dense(24, 18, 0.15, 31337);
  const AnyMatrix src = encode(d, from);
  const AnyMatrix dst = convert(src, to);
  EXPECT_EQ(format_of(dst), to);
  EXPECT_EQ(max_abs_diff(decode(dst), d), 0.0);
}

TEST_P(AnyToAny, NnzPreservedThroughNonPaddingFormats) {
  const auto [from, to] = GetParam();
  // BSR/DIA/RLC report structural element counts that include fill; skip.
  const auto d = random_dense(24, 18, 0.15, 555);
  const AnyMatrix dst = convert(encode(d, from), to);
  EXPECT_EQ(decode(dst).nnz(), d.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AnyToAny,
    ::testing::Combine(
        ::testing::Values(Format::kDense, Format::kCOO, Format::kCSR,
                          Format::kCSC, Format::kRLC, Format::kZVC,
                          Format::kBSR, Format::kDIA, Format::kELL),
        ::testing::Values(Format::kDense, Format::kCOO, Format::kCSR,
                          Format::kCSC, Format::kRLC, Format::kZVC,
                          Format::kBSR, Format::kDIA, Format::kELL)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_to_" +
             std::string(name_of(std::get<1>(info.param)));
    });

class AnyTensorToAny
    : public ::testing::TestWithParam<std::tuple<Format, Format>> {};

TEST_P(AnyTensorToAny, ConversionPreservesContents) {
  const auto [from, to] = GetParam();
  const auto d = random_tensor(10, 8, 12, 0.06, 8844);
  const AnyTensor dst = convert(encode(d, from), to);
  EXPECT_EQ(format_of(dst), to);
  EXPECT_EQ(max_abs_diff(decode(dst), d), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AnyTensorToAny,
    ::testing::Combine(
        ::testing::Values(Format::kDense, Format::kCOO, Format::kCSF,
                          Format::kHiCOO, Format::kZVC, Format::kRLC),
        ::testing::Values(Format::kDense, Format::kCOO, Format::kCSF,
                          Format::kHiCOO, Format::kZVC, Format::kRLC)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_to_" +
             std::string(name_of(std::get<1>(info.param)));
    });

TEST(AnyMatrix, MetadataAccessors) {
  const auto d = random_dense(12, 20, 0.2, 99);
  const AnyMatrix m = encode(d, Format::kCSR);
  EXPECT_EQ(rows_of(m), 12);
  EXPECT_EQ(cols_of(m), 20);
  EXPECT_EQ(nnz_of(m), d.nnz());
  EXPECT_EQ(storage_of(m, DataType::kFp32).total_bits(),
            CsrMatrix::from_dense(d).storage(DataType::kFp32).total_bits());
}

TEST(AnyMatrix, EncodeRejectsTensorFormats) {
  EXPECT_THROW(encode(DenseMatrix(2, 2), Format::kCSF), std::invalid_argument);
}

}  // namespace
}  // namespace mt
