// Sharded serving router tests: consistent-hash ring properties (uniform
// spread, minimal remapping on growth), shard handle encoding, shards=1
// behavioral identity with a lone Server on the full kernel mix,
// cross-shard pair routing with zero-copy replication, eviction fan-out,
// update_model fan-out, aggregated observability, the batcher x sharding
// interaction, and the shard-aware kernel-thread budget.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/threads.hpp"
#include "runtime/router.hpp"
#include "testing.hpp"
#include "workloads/synth.hpp"

namespace mt::runtime {
namespace {

using testing::random_dense;

// --- HashRing properties ---

// Deterministic assignment counts for keys 1..n over a fresh ring.
std::vector<int> spread(const HashRing& ring, int keys) {
  std::vector<int> counts(static_cast<std::size_t>(ring.num_shards()), 0);
  for (int k = 1; k <= keys; ++k) {
    ++counts[static_cast<std::size_t>(
        ring.shard_for(static_cast<std::uint64_t>(k)))];
  }
  return counts;
}

TEST(HashRing, SpreadsTenThousandHandlesUniformly) {
  // Chi-square-style bound: ring placement is deterministic (fixed hash,
  // fixed key set), so these are exact regression bounds, not a
  // statistical test that can flake. With the default 128 vnodes/shard
  // the observed stat is ~6.5 and the worst per-shard deviation ~4.2%;
  // the bounds leave headroom without admitting a skewed ring (a
  // 2x-loaded shard alone would contribute 2500 to the statistic).
  const HashRing ring(4, 128);
  const auto counts = spread(ring, 10000);
  const double expect = 10000.0 / 4.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = static_cast<double>(c) - expect;
    chi2 += d * d / expect;
    EXPECT_NEAR(static_cast<double>(c), expect, 0.15 * expect);
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(HashRing, MoreShardsMoreVnodesStillBounded) {
  // The smoothness bound must hold away from the default configuration
  // too (relative deviation shrinks like 1/sqrt(vnodes) only in
  // expectation; any single configuration just has to stay sane —
  // observed worst deviation here is ~10%).
  const HashRing ring(8, 512);
  const auto counts = spread(ring, 10000);
  const double expect = 10000.0 / 8.0;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, 0.25 * expect);
  }
}

TEST(HashRing, GrowthRemapsOnlyOntoTheNewShard) {
  // Consistent-hashing core property: adding shard N changes no point of
  // shards 0..N-1, so a key either keeps its owner or moves to the new
  // shard — never between two pre-existing shards. The moved fraction
  // tracks the new shard's fair share (~1/N).
  const struct {
    int from, to;
  } cases[] = {{1, 2}, {2, 3}, {4, 5}};
  for (const auto& c : cases) {
    const HashRing before(c.from, 128);
    const HashRing after(c.to, 128);
    int moved = 0;
    for (int k = 1; k <= 10000; ++k) {
      const int sb = before.shard_for(static_cast<std::uint64_t>(k));
      const int sa = after.shard_for(static_cast<std::uint64_t>(k));
      if (sa != sb) {
        ++moved;
        EXPECT_EQ(sa, c.to - 1) << "key " << k
                                << " moved between pre-existing shards";
      }
    }
    const double fair = 1.0 / static_cast<double>(c.to);
    EXPECT_GT(moved, static_cast<int>(0.5 * fair * 10000.0));
    EXPECT_LT(moved, static_cast<int>(1.6 * fair * 10000.0));
  }
}

TEST(HashRing, SingleShardOwnsEverything) {
  const HashRing ring(1, 8);
  for (int k = 1; k <= 100; ++k) {
    EXPECT_EQ(ring.shard_for(static_cast<std::uint64_t>(k)), 0);
  }
}

TEST(ShardHandle, EncodingRoundTripsAndStaysValid) {
  for (const int shard : {0, 1, 7, kMaxShards - 1}) {
    for (const std::uint64_t local : {1ull, 2ull, 1000ull, 1ull << 40}) {
      const auto id = encode_shard_handle(local, shard);
      EXPECT_EQ(shard_of_handle(id), shard);
      EXPECT_EQ(local_handle(id), local);
      EXPECT_TRUE(MatrixHandle{id}.valid());  // local ids start at 1
    }
  }
}

// --- ShardedServer fixtures ---

ServerOptions small_shard_opts() {
  ServerOptions o;
  o.num_workers = 1;
  o.queue_capacity = 16;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  return o;
}

ShardedServerOptions sharded_opts(int shards) {
  ShardedServerOptions o;
  o.num_shards = shards;
  o.shard = small_shard_opts();
  return o;
}

Request spmv_request(MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

void expect_same_result(const Result& got, const Result& want,
                        std::size_t idx) {
  ASSERT_EQ(got.index(), want.index()) << "request " << idx;
  if (const auto* v = std::get_if<std::vector<value_t>>(&want)) {
    EXPECT_EQ(std::get<std::vector<value_t>>(got), *v) << idx;
  } else if (const auto* m = std::get_if<DenseMatrix>(&want)) {
    EXPECT_EQ(std::get<DenseMatrix>(got), *m) << idx;
  } else if (const auto* c = std::get_if<CsrMatrix>(&want)) {
    const auto& g = std::get<CsrMatrix>(got);
    EXPECT_EQ(g.row_ptr(), c->row_ptr()) << idx;
    EXPECT_EQ(g.col_ids(), c->col_ids()) << idx;
    EXPECT_EQ(g.values(), c->values()) << idx;
  } else {
    EXPECT_EQ(std::get<DenseTensor3>(got), std::get<DenseTensor3>(want))
        << idx;
  }
}

// The full kernel mix, built against whatever handles the server type
// under test returned for the same registration order (Server and
// ShardedServer share the handle types; only the encoded ids differ).
struct MixHandles {
  MatrixHandle csr, zvc, dense, pair_b;
  TensorHandle tensor;
};

template <typename S>
MixHandles register_mix(S& srv) {
  MixHandles h;
  h.csr = srv.register_matrix(encode(random_dense(48, 48, 0.05, 91),
                                     Format::kCSR));
  h.zvc = srv.register_matrix(encode(random_dense(48, 48, 0.06, 92),
                                     Format::kZVC));
  h.dense = srv.register_matrix(AnyMatrix(random_dense(32, 32, 1.0, 93)));
  h.pair_b = srv.register_matrix(encode(random_dense(48, 48, 0.07, 94),
                                        Format::kCSC));
  h.tensor = srv.register_tensor(AnyTensor(synth_coo_tensor(10, 9, 8, 60,
                                                            95)));
  return h;
}

std::vector<Request> mix_requests(const MixHandles& h) {
  std::vector<value_t> x(48);
  for (index_t i = 0; i < 48; ++i) {
    x[static_cast<std::size_t>(i)] = 0.25f * static_cast<float>(i % 7) - 0.5f;
  }
  const auto spmm_b = random_dense(48, 12, 1.0, 96);
  const auto gemm_b = random_dense(32, 8, 1.0, 97);
  const auto mt_b = random_dense(9, 6, 1.0, 98);
  const auto mt_c = random_dense(8, 6, 1.0, 99);
  const auto ttm_u = random_dense(8, 6, 1.0, 100);

  std::vector<Request> reqs;
  reqs.push_back(spmv_request(h.csr, x));
  reqs.push_back(spmv_request(h.zvc, x));
  {
    Request r;
    r.kernel = Kernel::kSpMM;
    r.a = h.csr;
    r.dense_b = spmm_b;
    reqs.push_back(std::move(r));
  }
  {
    Request r;  // registered pair SpMM — cross-shard when sharded
    r.kernel = Kernel::kSpMM;
    r.a = h.csr;
    r.b = h.pair_b;
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kGemm;
    r.a = h.dense;
    r.dense_b = gemm_b;
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kSpGEMM;
    r.a = h.csr;
    r.b = h.pair_b;
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kSpTTM;
    r.x = h.tensor;
    r.dense_b = ttm_u;
    reqs.push_back(std::move(r));
  }
  {
    Request r;
    r.kernel = Kernel::kMTTKRP;
    r.x = h.tensor;
    r.dense_b = mt_b;
    r.dense_c = mt_c;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

// Acceptance bar: a one-shard router is behaviorally identical to a lone
// Server — bit-identical responses on the full kernel mix, same cache
// accounting shape, same plans.
TEST(ShardedServer, SingleShardBitIdenticalToServer) {
  std::vector<Result> want;
  {
    Server srv(small_shard_opts());
    const auto h = register_mix(srv);
    for (auto& r : mix_requests(h)) {
      want.push_back(srv.submit(std::move(r)).get().result);
    }
  }

  ShardedServer srv(sharded_opts(1));
  const auto h = register_mix(srv);
  EXPECT_EQ(srv.shard_of(h.csr), 0);
  auto reqs = mix_requests(h);
  ASSERT_EQ(reqs.size(), want.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto resp = srv.submit(std::move(reqs[i])).get();
    expect_same_result(resp.result, want[i], i);
  }
  const auto c = srv.counters();
  EXPECT_EQ(c.completed, static_cast<std::int64_t>(want.size()));
  EXPECT_EQ(c.failed, 0);
}

// And the same mix must stay bit-identical when the operands scatter
// across four shards (cross-shard pair requests included).
TEST(ShardedServer, FourShardsBitIdenticalToServer) {
  std::vector<Result> want;
  {
    Server srv(small_shard_opts());
    const auto h = register_mix(srv);
    for (auto& r : mix_requests(h)) {
      want.push_back(srv.submit(std::move(r)).get().result);
    }
  }

  ShardedServer srv(sharded_opts(4));
  const auto h = register_mix(srv);
  auto reqs = mix_requests(h);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto resp = srv.submit(std::move(reqs[i])).get();
    expect_same_result(resp.result, want[i], i);
  }
  EXPECT_EQ(srv.counters().completed,
            static_cast<std::int64_t>(want.size()));
  EXPECT_EQ(srv.counters().failed, 0);
}

TEST(ShardedServer, SpreadsOperandsAcrossShards) {
  ShardedServer srv(sharded_opts(4));
  std::vector<int> owned(4, 0);
  for (int i = 0; i < 32; ++i) {
    const auto h = srv.register_matrix(
        encode(random_dense(16, 16, 0.2, 200 + static_cast<unsigned>(i)),
               Format::kCSR));
    const int s = srv.shard_of(h);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++owned[static_cast<std::size_t>(s)];
  }
  for (const int n : owned) EXPECT_GT(n, 0) << "a shard owns no operands";
}

// Registers copies of `m` until one lands on `target` (placement is
// deterministic but hash-ordered; a handful of draws reaches any shard).
MatrixHandle register_on_shard(ShardedServer& srv, const AnyMatrix& m,
                               int target) {
  for (int tries = 0; tries < 256; ++tries) {
    const auto h = srv.register_matrix(m);
    if (srv.shard_of(h) == target) return h;
  }
  ADD_FAILURE() << "could not place an operand on shard " << target;
  return {};
}

TEST(ShardedServer, CrossShardPairExecutesOnFirstOperandsShard) {
  ShardedServer srv(sharded_opts(2));
  const auto a_dense = random_dense(36, 30, 0.08, 110);
  const auto b_dense = random_dense(30, 26, 0.08, 111);
  const AnyMatrix a_any = encode(a_dense, Format::kCOO);
  const AnyMatrix b_any = encode(b_dense, Format::kCSC);
  const auto ha = register_on_shard(srv, a_any, 0);
  const auto hb = register_on_shard(srv, b_any, 1);

  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = ha;
  r.b = hb;
  const auto want = exec::spgemm(convert(a_any, Format::kCSR),
                                 convert(b_any, Format::kCSR));
  const auto before_shard1 = srv.shard_counters(1).completed;
  for (int i = 0; i < 3; ++i) {
    const auto got = srv.submit(r).get();
    const auto& csr = std::get<CsrMatrix>(got.result);
    EXPECT_EQ(csr.row_ptr(), want.row_ptr());
    EXPECT_EQ(csr.col_ids(), want.col_ids());
    EXPECT_EQ(csr.values(), want.values());
    // Repeats ride the replica + caches: only the first request plans.
    EXPECT_EQ(got.stats.plan_cache_hit, i > 0);
  }
  // The policy: all three executed on shard 0 (first operand's home).
  EXPECT_EQ(srv.shard_counters(0).completed, 3);
  EXPECT_EQ(srv.shard_counters(1).completed, before_shard1);
}

TEST(ShardedServer, EvictPurgesReplicasAndFailsLaterRequests) {
  ShardedServer srv(sharded_opts(2));
  const AnyMatrix a_any = encode(random_dense(36, 30, 0.08, 112),
                                 Format::kCSR);
  const AnyMatrix b_any = encode(random_dense(30, 26, 0.08, 113),
                                 Format::kCSR);
  const auto ha = register_on_shard(srv, a_any, 0);
  const auto hb = register_on_shard(srv, b_any, 1);

  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = ha;
  r.b = hb;
  (void)srv.submit(r).get();  // replica of hb now lives on shard 0

  srv.evict(hb);  // purges shard 1's registration AND shard 0's replica
  auto fut = srv.submit(r);
  EXPECT_THROW(fut.get(), std::invalid_argument);

  // The A side still serves on its own.
  std::vector<value_t> x(30, 1.0f);
  (void)srv.submit(spmv_request(ha, x)).get();

  srv.evict(ha);
  auto fut2 = srv.submit(spmv_request(ha, x));
  EXPECT_THROW(fut2.get(), std::invalid_argument);
  EXPECT_EQ(srv.counters().failed, 2);
}

TEST(ShardedServer, MalformedPairWithInvalidPrimaryFailsWithoutSideEffects) {
  ShardedServer srv(sharded_opts(2));
  const AnyMatrix b_any = encode(random_dense(30, 26, 0.08, 114),
                                 Format::kCSR);
  const auto hb = register_on_shard(srv, b_any, 1);

  Request r;  // invalid primary, valid cross-shard B
  r.kernel = Kernel::kSpMM;
  r.b = hb;
  auto fut = srv.submit(r);
  EXPECT_THROW(fut.get(), std::invalid_argument);

  // The failure must not have replicated B anywhere as a side effect: B
  // still serves normally from its own shard afterwards.
  std::vector<value_t> x(26, 1.0f);
  (void)srv.submit(spmv_request(hb, x)).get();
  EXPECT_EQ(srv.counters().completed, 1);
  EXPECT_EQ(srv.counters().failed, 1);
}

TEST(ShardedServer, ForeignHandleFailsOnTheFuture) {
  ShardedServer srv(sharded_opts(2));
  // Shard index 7 was never issued by this two-shard router.
  auto fut = srv.submit(spmv_request(MatrixHandle{encode_shard_handle(1, 7)},
                                     std::vector<value_t>(8, 1.0f)));
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(srv.counters().failed, 1);
  EXPECT_EQ(srv.counters().completed, 0);
}

TEST(ShardedServer, UpdateModelFansOutToEveryShard) {
  ShardedServer srv(sharded_opts(4));
  std::vector<value_t> x(24, 1.0f);
  // One planned workload on each of several shards.
  std::vector<MatrixHandle> hs;
  std::vector<int> shards_hit;
  for (int i = 0; i < 8; ++i) {
    hs.push_back(srv.register_matrix(
        encode(random_dense(24, 24, 0.1, 300 + static_cast<unsigned>(i)),
               Format::kCSR)));
    (void)srv.submit(spmv_request(hs.back(), x)).get();
  }
  std::size_t plans = 0;
  int populated_shards = 0;
  for (int s = 0; s < srv.num_shards(); ++s) {
    const auto n = srv.shard(s).plan_cache().size();
    plans += n;
    populated_shards += n > 0 ? 1 : 0;
  }
  EXPECT_EQ(plans, 8u);
  EXPECT_GT(populated_shards, 1) << "operands all landed on one shard";

  const auto old_fp = srv.model_fingerprint();
  auto accel = srv.options().shard.accel;
  accel.num_pes /= 2;
  // Fan-out reaches every shard: the fingerprint moves fleet-wide. These
  // shards run no device backend, so every plan is CPU-backend (keyed on
  // kHostModel) and the partitioned retire reports zero on every backend
  // — the plans survive the device-model swap and keep hitting.
  const auto retired = srv.update_model(accel, srv.options().shard.energy);
  EXPECT_EQ(retired.total(), 0u);
  EXPECT_EQ(retired.of(exec::BackendKind::kCpu), 0u);
  EXPECT_NE(srv.model_fingerprint(), old_fp);
  std::size_t surviving = 0;
  for (int s = 0; s < srv.num_shards(); ++s) {
    surviving += srv.shard(s).plan_cache().size();
    EXPECT_EQ(srv.shard(s).model_fingerprint(), srv.model_fingerprint());
  }
  EXPECT_EQ(surviving, 8u);
  const auto resp = srv.submit(spmv_request(hs[0], x)).get();
  EXPECT_TRUE(resp.stats.plan_cache_hit);  // survived the model swap
}

TEST(ShardedServer, UpdateModelReportsDeviceRetiresPerBackend) {
  // Mint-backend shards: every plan is priced against the device model,
  // so the fan-out's per-backend accounting sees exactly the device
  // plans retired, on the device backend's slot.
  auto opts = sharded_opts(2);
  opts.shard.backend.backend = exec::BackendKind::kMint;
  ShardedServer srv(opts);
  std::vector<value_t> x(24, 1.0f);
  std::vector<MatrixHandle> hs;
  for (int i = 0; i < 4; ++i) {
    hs.push_back(srv.register_matrix(
        encode(random_dense(24, 24, 0.1, 340 + static_cast<unsigned>(i)),
               Format::kCSR)));
    (void)srv.submit(spmv_request(hs.back(), x)).get();
  }
  auto accel = srv.options().shard.accel;
  accel.num_pes /= 2;
  const auto retired = srv.update_model(accel, srv.options().shard.energy);
  EXPECT_EQ(retired.total(), 4u);
  EXPECT_EQ(retired.of(exec::BackendKind::kMint), 4u);
  EXPECT_EQ(retired.of(exec::BackendKind::kCpu), 0u);
  for (int s = 0; s < srv.num_shards(); ++s) {
    EXPECT_EQ(srv.shard(s).plan_cache().size(), 0u);
  }
  const auto resp = srv.submit(spmv_request(hs[0], x)).get();
  EXPECT_FALSE(resp.stats.plan_cache_hit);  // re-planned under the new model
}

TEST(ShardedServer, AggregatesCountersAndQueueDepthAcrossShards) {
  ShardedServer srv(sharded_opts(4));
  std::vector<value_t> x(24, 0.5f);
  std::vector<MatrixHandle> hs;
  for (int i = 0; i < 8; ++i) {
    hs.push_back(srv.register_matrix(
        encode(random_dense(24, 24, 0.1, 400 + static_cast<unsigned>(i)),
               Format::kCSR)));
  }
  std::vector<std::future<Response>> futs;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& h : hs) futs.push_back(srv.submit(spmv_request(h, x)));
  }
  for (auto& f : futs) (void)f.get();

  CountersSnapshot manual;
  for (int s = 0; s < srv.num_shards(); ++s) {
    EXPECT_EQ(srv.queue_depth(s), 0u);  // idle after the drain
    manual += srv.shard_counters(s);
  }
  const auto total = srv.counters();
  EXPECT_EQ(total.completed, 24);
  EXPECT_EQ(total.completed, manual.completed);
  EXPECT_EQ(total.plan_hits, manual.plan_hits);
  EXPECT_EQ(total.plan_misses, manual.plan_misses);
  EXPECT_EQ(srv.queue_depth(), 0u);
}

// --- Batcher x sharding ---

// Occupies shard `s`'s single worker with a chunky SpGEMM so everything
// submitted next piles up in that shard's queue and drains as one window.
std::future<Response> occupy_shard(ShardedServer& srv, int s,
                                   MatrixHandle slow_a, MatrixHandle slow_b) {
  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = slow_a;
  r.b = slow_b;
  auto fut = srv.submit(std::move(r));
  while (srv.queue_depth(s) > 0) std::this_thread::yield();
  return fut;
}

// Per-handle FIFO and fused-vs-off bit-identity must survive requests
// fanning out across shards: each shard batches its own queue
// independently, and responses still match a batching-off router
// bit-for-bit, request by request.
TEST(ShardedServer, BatchedBurstsAcrossShardsBitIdenticalToOff) {
  const AnyMatrix m0 = encode(random_dense(64, 48, 0.05, 120), Format::kCSR);
  const AnyMatrix m1 = encode(random_dense(64, 48, 0.05, 121), Format::kCSR);
  const AnyMatrix slow = encode(random_dense(900, 900, 0.08, 122),
                                Format::kCSR);
  // Distinct per-request vectors: a swapped or reordered response would
  // produce the wrong result, so bit-identity doubles as the per-handle
  // FIFO/routing check.
  std::vector<std::vector<value_t>> xs;
  for (int i = 0; i < 5; ++i) {
    std::vector<value_t> x;
    for (index_t k = 0; k < 48; ++k) {
      x.push_back(0.125f * static_cast<float>((k + i) % 9) - 0.25f);
    }
    xs.push_back(std::move(x));
  }

  auto opts = sharded_opts(2);
  opts.shard.queue_capacity = 64;
  opts.shard.batch.policy = BatchPolicy::kWindow;
  opts.shard.batch.window = 16;

  // Reference: same router topology, batching off, strictly sequential.
  std::vector<std::vector<value_t>> want0, want1;
  {
    auto off = opts;
    off.shard.batch.policy = BatchPolicy::kOff;
    ShardedServer srv(off);
    const auto h0 = register_on_shard(srv, m0, 0);
    const auto h1 = register_on_shard(srv, m1, 1);
    for (const auto& x : xs) {
      want0.push_back(std::get<std::vector<value_t>>(
          srv.submit(spmv_request(h0, x)).get().result));
      want1.push_back(std::get<std::vector<value_t>>(
          srv.submit(spmv_request(h1, x)).get().result));
    }
    EXPECT_EQ(srv.counters().batches, 0);
  }

  ShardedServer srv(opts);
  const auto h0 = register_on_shard(srv, m0, 0);
  const auto h1 = register_on_shard(srv, m1, 1);
  ASSERT_TRUE(coalescible_spmv_format(
      srv.plan_for(spmv_request(h0, xs[0]))->run_a));
  const auto s0_a = register_on_shard(srv, slow, 0);
  const auto s0_b = register_on_shard(srv, slow, 0);
  const auto s1_a = register_on_shard(srv, slow, 1);
  const auto s1_b = register_on_shard(srv, slow, 1);

  auto occ0 = occupy_shard(srv, 0, s0_a, s0_b);
  auto occ1 = occupy_shard(srv, 1, s1_a, s1_b);
  std::vector<std::future<Response>> futs0, futs1;
  for (const auto& x : xs) {
    futs0.push_back(srv.submit(spmv_request(h0, x)));
    futs1.push_back(srv.submit(spmv_request(h1, x)));
  }
  (void)occ0.get();
  (void)occ1.get();

  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto r0 = futs0[i].get();
    const auto r1 = futs1[i].get();
    EXPECT_EQ(std::get<std::vector<value_t>>(r0.result), want0[i]) << i;
    EXPECT_EQ(std::get<std::vector<value_t>>(r1.result), want1[i]) << i;
    EXPECT_TRUE(r0.stats.batched);
    EXPECT_TRUE(r1.stats.batched);
    EXPECT_EQ(r0.stats.batch_size, 5);
    EXPECT_EQ(r1.stats.batch_size, 5);
  }
  // One coalesced launch per shard, never a cross-shard merge.
  const auto c = srv.counters();
  EXPECT_EQ(c.batches, 2);
  EXPECT_EQ(c.batched_requests, 10);
  EXPECT_EQ(srv.shard_counters(0).batches, 1);
  EXPECT_EQ(srv.shard_counters(1).batches, 1);
}

// --- Thread budget ---

TEST(ShardedServer, ShardsJoinTheProcessWideThreadBudget) {
  const int before_override = num_threads_override();
  const int before = num_threads();
  {
    auto opts = sharded_opts(4);
    opts.shard.num_workers = 1;  // would NOT cap as a lone server
    ShardedServer srv(opts);
    // Four single-worker shards are four concurrent kernel callers: the
    // budget divides hardware over all of them.
    EXPECT_EQ(num_threads(),
              std::min(std::max(1, hardware_threads() / 4), before));
  }
  EXPECT_EQ(num_threads_override(), before_override);
  EXPECT_EQ(num_threads(), before);
}

TEST(ShardedServer, SingleShardSingleWorkerLeavesThreadsAlone) {
  const int before = num_threads();
  {
    ShardedServer srv(sharded_opts(1));  // 1 shard x 1 worker
    EXPECT_EQ(num_threads(), before);
  }
  EXPECT_EQ(num_threads(), before);
}

}  // namespace
}  // namespace mt::runtime
