// Arena (runtime/arena.hpp): slab recycling, size-class exactness, byte
// budget, trim, thread-safety under concurrent acquire/release, and the
// serving-runtime integration — payload buffers drawn from a Server's
// arena, recycled across requests, and outliving the arena's owning
// handle. This suite is labeled `concurrency` so the TSan CI job runs it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "convert/convert.hpp"
#include "exec/exec.hpp"
#include "runtime/arena.hpp"
#include "runtime/server.hpp"
#include "testing.hpp"

namespace mt::runtime {
namespace {

using testing::random_dense;

TEST(Arena, AcquireIsCacheLineAlignedAndRecycled) {
  const auto arena = std::make_shared<Arena>();
  const auto alloc = arena_allocator(arena);
  {
    AlignedVec<value_t> v(alloc);
    v.resize(1000, 1.5f);
    EXPECT_TRUE(is_aligned(v.data()));
    const auto s = arena->stats();
    EXPECT_EQ(s.fresh_allocs, 1u);
    EXPECT_EQ(s.reuses, 0u);
    EXPECT_EQ(s.outstanding, 1u);
  }
  {
    const auto s = arena->stats();
    EXPECT_EQ(s.outstanding, 0u);
    EXPECT_GE(s.cached_bytes, 1000 * sizeof(value_t));
  }
  {
    // Same element count => same padded size class => recycled slab.
    AlignedVec<value_t> v(alloc);
    v.resize(1000, 2.5f);
    const auto s = arena->stats();
    EXPECT_EQ(s.fresh_allocs, 1u);
    EXPECT_EQ(s.reuses, 1u);
    EXPECT_EQ(v[999], 2.5f);
  }
}

TEST(Arena, SizeClassesAreExact) {
  const auto arena = std::make_shared<Arena>();
  const auto alloc = arena_allocator(arena);
  {
    AlignedVec<value_t> a(alloc), b(alloc);
    a.resize(64);   // 256 B padded
    b.resize(80);   // 320 B padded
  }
  AlignedVec<value_t> c(alloc);
  c.resize(64);
  const auto s = arena->stats();
  // The 256 B class is recycled; the 320 B slab stays parked.
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.fresh_allocs, 2u);
  EXPECT_GE(s.cached_bytes, std::size_t{320});
}

TEST(Arena, ZeroBudgetFreesEagerly) {
  const auto arena = std::make_shared<Arena>(0);
  const auto alloc = arena_allocator(arena);
  {
    AlignedVec<value_t> v(alloc);
    v.resize(256);
  }
  const auto s = arena->stats();
  EXPECT_EQ(s.cached_bytes, 0u);
  AlignedVec<value_t> v(alloc);
  v.resize(256);
  EXPECT_EQ(arena->stats().fresh_allocs, 2u);  // nothing was cached
}

TEST(Arena, TrimDropsCachedSlabs) {
  const auto arena = std::make_shared<Arena>();
  const auto alloc = arena_allocator(arena);
  { AlignedVec<value_t> v(alloc); v.resize(512); }
  EXPECT_GT(arena->stats().cached_bytes, 0u);
  arena->trim();
  EXPECT_EQ(arena->stats().cached_bytes, 0u);
}

TEST(Arena, ConcurrentAcquireReleaseStaysConsistent) {
  const auto arena = std::make_shared<Arena>();
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&arena, t] {
      const auto alloc = arena_allocator(arena);
      for (int i = 0; i < kIters; ++i) {
        AlignedVec<value_t> v(alloc);
        v.resize(static_cast<std::size_t>((i + t) % 7 + 1) * 37,
                 static_cast<value_t>(i));
        EXPECT_TRUE(is_aligned(v.data()));
        EXPECT_EQ(v.back(), static_cast<value_t>(i));
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto s = arena->stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.fresh_allocs + s.reuses,
            static_cast<std::size_t>(kThreads) * kIters);
}

// A buffer drawn from the arena keeps it alive through the allocator's
// shared_ptr: dropping every external handle must not invalidate the
// buffer, and the final release must not crash.
TEST(Arena, BufferOutlivesLastExternalHandle) {
  DenseMatrix block;
  {
    auto arena = std::make_shared<Arena>();
    const auto m = random_dense(32, 8, 1.0, 61);
    block = exec::column_block(m, 2, 3, arena_allocator(arena));
    arena.reset();  // the block's allocator still holds the pool
  }
  ASSERT_EQ(block.rows(), 32);
  ASSERT_EQ(block.cols(), 3);
  EXPECT_TRUE(is_aligned(block.values().data()));
  value_t sum = 0.0f;
  for (const auto v : block.values()) sum += v;
  EXPECT_TRUE(std::isfinite(sum));
}

// --- Server integration ---

ServerOptions arena_opts() {
  ServerOptions o;
  o.num_workers = 1;
  o.queue_capacity = 8;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  return o;
}

Request spmv_request(MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

TEST(Arena, ServerRecyclesPayloadsAcrossRequests) {
  Server srv(arena_opts());
  ASSERT_NE(srv.arena(), nullptr);  // on by default
  const auto h = srv.register_matrix(
      encode(random_dense(64, 48, 0.05, 62), Format::kCSR));
  const std::vector<value_t> x(48, 0.5f);

  const auto r1 = srv.submit(spmv_request(h, x)).get();
  const auto after_one = srv.arena()->stats();
  EXPECT_GE(after_one.fresh_allocs, 1u);  // the width-1 stacked factor
  const auto r2 = srv.submit(spmv_request(h, x)).get();
  EXPECT_GE(srv.arena()->stats().reuses, 1u);  // same size class, recycled
  EXPECT_EQ(std::get<std::vector<value_t>>(r1.result),
            std::get<std::vector<value_t>>(r2.result));
}

TEST(Arena, ServerWithArenaOffStillServes) {
  auto opts = arena_opts();
  opts.arena.enabled = false;
  Server srv(opts);
  EXPECT_EQ(srv.arena(), nullptr);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.1, 63), Format::kCSR));
  const std::vector<value_t> x(24, 1.0f);
  const auto resp = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(std::get<std::vector<value_t>>(resp.result).size(), 32u);
}

}  // namespace
}  // namespace mt::runtime
