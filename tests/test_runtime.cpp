// Serving-runtime unit tests: plan-cache and conversion-cache hit/miss
// accounting, bit-identical equivalence with direct exec-engine calls,
// cache-bypass modes, eviction, backpressure, and the kernel-thread cap.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/threads.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/server.hpp"
#include "sage/plan_key.hpp"
#include "testing.hpp"
#include "workloads/synth.hpp"

namespace mt::runtime {
namespace {

using testing::random_dense;

// A small server configuration that keeps SAGE searches cheap in tests.
ServerOptions small_opts() {
  ServerOptions o;
  o.num_workers = 2;
  o.queue_capacity = 8;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  return o;
}

Request spmv_request(MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

TEST(PlanCache, HitMissAccountingAndMemoization) {
  Server srv(small_opts());
  const auto a_dense = random_dense(48, 40, 0.05, 7);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  const std::vector<value_t> x(40, 1.0f);

  const auto r1 = srv.submit(spmv_request(h, x)).get();
  EXPECT_FALSE(r1.stats.plan_cache_hit);
  const auto r2 = srv.submit(spmv_request(h, x)).get();
  EXPECT_TRUE(r2.stats.plan_cache_hit);
  const auto r3 = srv.submit(spmv_request(h, x)).get();
  EXPECT_TRUE(r3.stats.plan_cache_hit);

  EXPECT_EQ(srv.plan_cache().misses(), 1);
  EXPECT_EQ(srv.plan_cache().hits(), 2);
  EXPECT_EQ(srv.plan_cache().size(), 1u);

  const auto c = srv.counters();
  EXPECT_EQ(c.completed, 3);
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 2);

  // A second operand is a distinct workload: its first request misses.
  const auto h2 = srv.register_matrix(encode(random_dense(48, 40, 0.05, 8),
                                             Format::kCSR));
  const auto r4 = srv.submit(spmv_request(h2, x)).get();
  EXPECT_FALSE(r4.stats.plan_cache_hit);
  EXPECT_EQ(srv.plan_cache().size(), 2u);
}

TEST(PlanCache, FingerprintSeparatesAccelConfigs) {
  const EnergyParams energy;
  AccelConfig a = AccelConfig::paper_default();
  AccelConfig b = a;
  EXPECT_EQ(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  b.num_pes = a.num_pes / 2;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  b = a;
  b.index_match_rate = 0.5;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  EnergyParams e2;
  e2.dram_j_per_32b *= 2.0;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(a, e2));
}

TEST(ConversionCache, HitMissAccountingAndIdentitySharing) {
  Server srv(small_opts());
  const auto a_dense = random_dense(48, 40, 0.05, 9);
  const auto h = srv.register_matrix(encode(a_dense, Format::kZVC));
  const std::vector<value_t> x(40, 0.5f);

  // First request: the plan itself needs a COO rep (miss) and the kernel
  // an ACF rep (miss unless the ACF happens to be ZVC, which SAGE's ACF
  // space excludes, or COO, which would re-hit the plan's rep).
  const auto r1 = srv.submit(spmv_request(h, x)).get();
  EXPECT_GE(r1.stats.conversion_misses, 1);
  const auto after_first = srv.conversion_cache().misses();

  // Steady state: everything is cached, nothing converts.
  const auto r2 = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(r2.stats.conversion_misses, 0);
  EXPECT_GE(r2.stats.conversion_hits, 1);
  EXPECT_EQ(srv.conversion_cache().misses(), after_first);

  // An operand already registered in the executed ACF shares its
  // representation: no conversion entry is ever created for it.
  const auto plan = srv.plan_for(spmv_request(h, x));
  const auto h2 = srv.register_matrix(
      convert(encode(a_dense, Format::kZVC), plan->run_a));
  const auto size_before = srv.conversion_cache().size();
  const auto r3 = srv.submit(spmv_request(h2, x)).get();
  // New operand, new plan: at most the COO rep for SAGE is materialized
  // (none when the ACF is COO itself); the executed ACF rep is an identity
  // share, not a conversion.
  EXPECT_LE(srv.conversion_cache().size(), size_before + 1);
  EXPECT_GE(r3.stats.conversion_hits, 1);
}

// Served results must be bit-identical to a direct exec-engine call on the
// same converted representation — the serving layer adds caching and
// concurrency, never arithmetic.
TEST(Server, SpmvBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(64, 48, 0.08, 11);
  const AnyMatrix a_any = encode(a_dense, Format::kCSC);
  const auto h = srv.register_matrix(a_any);
  std::vector<value_t> x;
  for (index_t i = 0; i < 48; ++i) x.push_back(0.25f * static_cast<float>(i));

  const auto plan = srv.plan_for(spmv_request(h, x));
  const auto want = exec::spmv(convert(a_any, plan->run_a), x);
  const auto got = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(std::get<std::vector<value_t>>(got.result), want);
}

TEST(Server, SpmmDenseFactorBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(56, 40, 0.06, 12);
  const AnyMatrix a_any = encode(a_dense, Format::kRLC);
  const auto h = srv.register_matrix(a_any);
  const auto b = random_dense(40, 24, 1.0, 13);

  Request r;
  r.kernel = Kernel::kSpMM;
  r.a = h;
  r.dense_b = b;
  const auto plan = srv.plan_for(r);
  const auto want = exec::spmm(convert(a_any, plan->run_a), b);
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
  EXPECT_EQ(got.stats.dispatch.path, exec::Path::kNative);
}

TEST(Server, SpmmRegisteredPairBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(40, 32, 0.05, 14);
  const auto b_dense = random_dense(32, 28, 0.5, 15);
  const AnyMatrix a_any = encode(a_dense, Format::kCSR);
  const AnyMatrix b_any = encode(b_dense, Format::kZVC);
  const auto ha = srv.register_matrix(a_any);
  const auto hb = srv.register_matrix(b_any);

  Request r;
  r.kernel = Kernel::kSpMM;
  r.a = ha;
  r.b = hb;
  const auto plan = srv.plan_for(r);
  // The repaired pair must run natively in the engine.
  EXPECT_TRUE(exec::has_native_pair(plan->run_a, plan->run_b));
  const auto want =
      exec::spmm(convert(a_any, plan->run_a), convert(b_any, plan->run_b));
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
}

TEST(Server, SpgemmBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(36, 30, 0.08, 16);
  const auto b_dense = random_dense(30, 26, 0.08, 17);
  const AnyMatrix a_any = encode(a_dense, Format::kCOO);
  const AnyMatrix b_any = encode(b_dense, Format::kCSC);
  const auto ha = srv.register_matrix(a_any);
  const auto hb = srv.register_matrix(b_any);

  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = ha;
  r.b = hb;
  const auto want = exec::spgemm(convert(a_any, Format::kCSR),
                                 convert(b_any, Format::kCSR));
  const auto got = srv.submit(r).get();
  const auto& csr = std::get<CsrMatrix>(got.result);
  EXPECT_EQ(csr.row_ptr(), want.row_ptr());
  EXPECT_EQ(csr.col_ids(), want.col_ids());
  EXPECT_EQ(csr.values(), want.values());
}

TEST(Server, TensorKernelsBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto x_coo = synth_coo_tensor(10, 9, 8, 60, 18);
  const AnyTensor x_any = AnyTensor(x_coo);
  const auto hx = srv.register_tensor(x_any);
  const auto factor_b = random_dense(9, 6, 1.0, 19);   // MTTKRP B: dim_y x R
  const auto factor_c = random_dense(8, 6, 1.0, 20);   // MTTKRP C: dim_z x R
  const auto factor_u = random_dense(8, 6, 1.0, 21);   // SpTTM U: dim_z x R

  Request mk;
  mk.kernel = Kernel::kMTTKRP;
  mk.x = hx;
  mk.dense_b = factor_b;
  mk.dense_c = factor_c;
  const auto mplan = srv.plan_for(mk);
  const auto mwant =
      exec::mttkrp(convert(x_any, mplan->run_a), factor_b, factor_c);
  EXPECT_EQ(std::get<DenseMatrix>(srv.submit(mk).get().result), mwant);

  Request tk;
  tk.kernel = Kernel::kSpTTM;
  tk.x = hx;
  tk.dense_b = factor_u;
  const auto tplan = srv.plan_for(tk);
  const auto twant = exec::ttm(convert(x_any, tplan->run_a), factor_u);
  EXPECT_EQ(std::get<DenseTensor3>(srv.submit(tk).get().result), twant);
}

TEST(Server, GemmServesDenseOperands) {
  Server srv(small_opts());
  const auto a = random_dense(24, 20, 1.0, 22);
  const auto b = random_dense(20, 16, 1.0, 23);
  const auto h = srv.register_matrix(AnyMatrix(a));
  Request r;
  r.kernel = Kernel::kGemm;
  r.a = h;
  r.dense_b = b;
  const auto want = exec::spmm(AnyMatrix(a), b);
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
  EXPECT_FALSE(got.stats.plan_cache_hit);
  EXPECT_TRUE(srv.submit(r).get().stats.plan_cache_hit);
}

TEST(Server, CacheBypassModesProduceIdenticalResults) {
  const auto a_dense = random_dense(48, 40, 0.06, 24);
  const AnyMatrix a_any = encode(a_dense, Format::kRLC);
  const std::vector<value_t> x(40, 1.5f);

  std::vector<value_t> cached_result, bypass_result;
  {
    Server srv(small_opts());
    const auto h = srv.register_matrix(a_any);
    (void)srv.submit(spmv_request(h, x)).get();
    cached_result = std::get<std::vector<value_t>>(
        srv.submit(spmv_request(h, x)).get().result);
  }
  {
    auto opts = small_opts();
    opts.use_plan_cache = false;
    opts.use_conversion_cache = false;
    Server srv(opts);
    const auto h = srv.register_matrix(a_any);
    const auto r1 = srv.submit(spmv_request(h, x)).get();
    EXPECT_FALSE(r1.stats.plan_cache_hit);
    const auto r2 = srv.submit(spmv_request(h, x)).get();
    EXPECT_FALSE(r2.stats.plan_cache_hit);  // bypass: misses forever
    // The bypassed caches stay empty.
    EXPECT_EQ(srv.plan_cache().size(), 0u);
    EXPECT_EQ(srv.conversion_cache().size(), 0u);
    bypass_result = std::get<std::vector<value_t>>(r2.result);
  }
  EXPECT_EQ(cached_result, bypass_result);
}

TEST(Server, EvictionInvalidatesHandleAndPurgesCaches) {
  Server srv(small_opts());
  const auto a_dense = random_dense(40, 32, 0.05, 25);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  const std::vector<value_t> x(32, 1.0f);

  (void)srv.submit(spmv_request(h, x)).get();
  EXPECT_GT(srv.conversion_cache().size() + srv.plan_cache().size(), 0u);

  srv.evict(h);
  EXPECT_EQ(srv.conversion_cache().size(), 0u);
  EXPECT_EQ(srv.plan_cache().size(), 0u);
  auto fut = srv.submit(spmv_request(h, x));
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(srv.counters().failed, 1);

  // Re-registration issues a fresh handle that serves normally.
  const auto h2 = srv.register_matrix(encode(a_dense, Format::kCSR));
  EXPECT_NE(h2.id, h.id);
  (void)srv.submit(spmv_request(h2, x)).get();
}

TEST(Server, BoundedQueueBackpressureCompletesEverything) {
  auto opts = small_opts();
  opts.queue_capacity = 2;  // force submit-side blocking
  Server srv(opts);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.1, 26), Format::kCSR));
  const std::vector<value_t> x(24, 1.0f);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(srv.submit(spmv_request(h, x)));
  for (auto& f : futs) EXPECT_NO_THROW((void)f.get());
  EXPECT_EQ(srv.counters().completed, 32);
}

TEST(Server, SubmitAfterStopFailsFast) {
  Server srv(small_opts());
  const auto h = srv.register_matrix(
      encode(random_dense(16, 12, 0.2, 27), Format::kCSR));
  srv.stop();
  auto fut = srv.submit(spmv_request(h, std::vector<value_t>(12, 1.0f)));
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Server, WorkerPoolCapsKernelThreadsAndRestores) {
  const int before_override = num_threads_override();
  const int before = num_threads();
  {
    auto opts = small_opts();
    opts.num_workers = 4;
    Server srv(opts);
    // While the pool is live, kernel width is capped so that
    // pool x width never oversubscribes the machine.
    EXPECT_EQ(num_threads(), threads_per_worker(4));
  }
  EXPECT_EQ(num_threads_override(), before_override);
  EXPECT_EQ(num_threads(), before);
}

TEST(Server, OverlappingServersShareOneThreadBudget) {
  const int before = num_threads();
  {
    auto opts_a = small_opts();
    opts_a.num_workers = 4;
    Server a(opts_a);
    {
      auto opts_b = small_opts();
      opts_b.num_workers = 2;
      Server b(opts_b);
      // Budget divides over all live workers (4 + 2), never exceeding the
      // solo width.
      EXPECT_EQ(num_threads(),
                std::min(std::max(1, hardware_threads() / 6), before));
    }
    // b stopped: the budget re-expands to a's pool alone.
    EXPECT_EQ(num_threads(),
              std::min(std::max(1, hardware_threads() / 4), before));
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ThreadsPerWorker, NeverOversubscribesAndNeverExceedsSolo) {
  const int solo = num_threads();
  for (int pool = 1; pool <= 8; ++pool) {
    const int per = threads_per_worker(pool);
    EXPECT_GE(per, 1);
    EXPECT_LE(per, solo);
  }
}

TEST(MpmcQueue, FifoDrainAndCloseSemantics) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  int untouched = 99;
  EXPECT_FALSE(q.push(std::move(untouched)));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::nullopt);
}

}  // namespace
}  // namespace mt::runtime
