// Serving-runtime unit tests: plan-cache and conversion-cache hit/miss
// accounting, bit-identical equivalence with direct exec-engine calls,
// cache-bypass modes, eviction, backpressure, the kernel-thread cap, the
// request batcher (grouping, fusion bit-identity, batch accounting), and
// plan retirement on model updates.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/threads.hpp"
#include "runtime/batcher.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/server.hpp"
#include "sage/plan_key.hpp"
#include "testing.hpp"
#include "workloads/synth.hpp"

namespace mt::runtime {
namespace {

using testing::random_dense;

// A small server configuration that keeps SAGE searches cheap in tests.
ServerOptions small_opts() {
  ServerOptions o;
  o.num_workers = 2;
  o.queue_capacity = 8;
  o.accel.num_pes = 32;
  o.accel.pe_buffer_bytes = 64 * 4;
  return o;
}

Request spmv_request(MatrixHandle a, const std::vector<value_t>& x) {
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec = x;
  return r;
}

TEST(PlanCache, HitMissAccountingAndMemoization) {
  Server srv(small_opts());
  const auto a_dense = random_dense(48, 40, 0.05, 7);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  const std::vector<value_t> x(40, 1.0f);

  const auto r1 = srv.submit(spmv_request(h, x)).get();
  EXPECT_FALSE(r1.stats.plan_cache_hit);
  const auto r2 = srv.submit(spmv_request(h, x)).get();
  EXPECT_TRUE(r2.stats.plan_cache_hit);
  const auto r3 = srv.submit(spmv_request(h, x)).get();
  EXPECT_TRUE(r3.stats.plan_cache_hit);

  EXPECT_EQ(srv.plan_cache().misses(), 1);
  EXPECT_EQ(srv.plan_cache().hits(), 2);
  EXPECT_EQ(srv.plan_cache().size(), 1u);

  const auto c = srv.counters();
  EXPECT_EQ(c.completed, 3);
  EXPECT_EQ(c.plan_misses, 1);
  EXPECT_EQ(c.plan_hits, 2);

  // A second operand is a distinct workload: its first request misses.
  const auto h2 = srv.register_matrix(encode(random_dense(48, 40, 0.05, 8),
                                             Format::kCSR));
  const auto r4 = srv.submit(spmv_request(h2, x)).get();
  EXPECT_FALSE(r4.stats.plan_cache_hit);
  EXPECT_EQ(srv.plan_cache().size(), 2u);
}

TEST(PlanCache, FingerprintSeparatesAccelConfigs) {
  const EnergyParams energy;
  AccelConfig a = AccelConfig::paper_default();
  AccelConfig b = a;
  EXPECT_EQ(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  b.num_pes = a.num_pes / 2;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  b = a;
  b.index_match_rate = 0.5;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(b, energy));
  EnergyParams e2;
  e2.dram_j_per_32b *= 2.0;
  EXPECT_NE(plan_fingerprint(a, energy), plan_fingerprint(a, e2));
}

TEST(ConversionCache, HitMissAccountingAndIdentitySharing) {
  Server srv(small_opts());
  const auto a_dense = random_dense(48, 40, 0.05, 9);
  const auto h = srv.register_matrix(encode(a_dense, Format::kZVC));
  const std::vector<value_t> x(40, 0.5f);

  // First request: the plan itself needs a COO rep (miss) and the kernel
  // an ACF rep (miss unless the ACF happens to be ZVC, which SAGE's ACF
  // space excludes, or COO, which would re-hit the plan's rep).
  const auto r1 = srv.submit(spmv_request(h, x)).get();
  EXPECT_GE(r1.stats.conversion_misses, 1);
  const auto after_first = srv.conversion_cache().misses();

  // Steady state: everything is cached, nothing converts.
  const auto r2 = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(r2.stats.conversion_misses, 0);
  EXPECT_GE(r2.stats.conversion_hits, 1);
  EXPECT_EQ(srv.conversion_cache().misses(), after_first);

  // An operand already registered in the executed ACF shares its
  // representation: no conversion entry is ever created for it.
  const auto plan = srv.plan_for(spmv_request(h, x));
  const auto h2 = srv.register_matrix(
      convert(encode(a_dense, Format::kZVC), plan->run_a));
  const auto size_before = srv.conversion_cache().size();
  const auto r3 = srv.submit(spmv_request(h2, x)).get();
  // New operand, new plan: at most the COO rep for SAGE is materialized
  // (none when the ACF is COO itself); the executed ACF rep is an identity
  // share, not a conversion.
  EXPECT_LE(srv.conversion_cache().size(), size_before + 1);
  EXPECT_GE(r3.stats.conversion_hits, 1);
}

// Served results must be bit-identical to a direct exec-engine call on the
// same converted representation — the serving layer adds caching and
// concurrency, never arithmetic.
TEST(Server, SpmvBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(64, 48, 0.08, 11);
  const AnyMatrix a_any = encode(a_dense, Format::kCSC);
  const auto h = srv.register_matrix(a_any);
  std::vector<value_t> x;
  for (index_t i = 0; i < 48; ++i) x.push_back(0.25f * static_cast<float>(i));

  const auto plan = srv.plan_for(spmv_request(h, x));
  const auto want = exec::spmv(convert(a_any, plan->run_a), x);
  const auto got = srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(std::get<std::vector<value_t>>(got.result), want);
}

TEST(Server, SpmmDenseFactorBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(56, 40, 0.06, 12);
  const AnyMatrix a_any = encode(a_dense, Format::kRLC);
  const auto h = srv.register_matrix(a_any);
  const auto b = random_dense(40, 24, 1.0, 13);

  Request r;
  r.kernel = Kernel::kSpMM;
  r.a = h;
  r.dense_b = b;
  const auto plan = srv.plan_for(r);
  const auto want = exec::spmm(convert(a_any, plan->run_a), b);
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
  EXPECT_EQ(got.stats.dispatch.path, exec::Path::kNative);
}

TEST(Server, SpmmRegisteredPairBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(40, 32, 0.05, 14);
  const auto b_dense = random_dense(32, 28, 0.5, 15);
  const AnyMatrix a_any = encode(a_dense, Format::kCSR);
  const AnyMatrix b_any = encode(b_dense, Format::kZVC);
  const auto ha = srv.register_matrix(a_any);
  const auto hb = srv.register_matrix(b_any);

  Request r;
  r.kernel = Kernel::kSpMM;
  r.a = ha;
  r.b = hb;
  const auto plan = srv.plan_for(r);
  // The repaired pair must run natively in the engine.
  EXPECT_TRUE(exec::has_native_pair(plan->run_a, plan->run_b));
  const auto want =
      exec::spmm(convert(a_any, plan->run_a), convert(b_any, plan->run_b));
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
}

TEST(Server, SpgemmBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto a_dense = random_dense(36, 30, 0.08, 16);
  const auto b_dense = random_dense(30, 26, 0.08, 17);
  const AnyMatrix a_any = encode(a_dense, Format::kCOO);
  const AnyMatrix b_any = encode(b_dense, Format::kCSC);
  const auto ha = srv.register_matrix(a_any);
  const auto hb = srv.register_matrix(b_any);

  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = ha;
  r.b = hb;
  const auto want = exec::spgemm(convert(a_any, Format::kCSR),
                                 convert(b_any, Format::kCSR));
  const auto got = srv.submit(r).get();
  const auto& csr = std::get<CsrMatrix>(got.result);
  EXPECT_EQ(csr.row_ptr(), want.row_ptr());
  EXPECT_EQ(csr.col_ids(), want.col_ids());
  EXPECT_EQ(csr.values(), want.values());
}

TEST(Server, TensorKernelsBitIdenticalToDirectExec) {
  Server srv(small_opts());
  const auto x_coo = synth_coo_tensor(10, 9, 8, 60, 18);
  const AnyTensor x_any = AnyTensor(x_coo);
  const auto hx = srv.register_tensor(x_any);
  const auto factor_b = random_dense(9, 6, 1.0, 19);   // MTTKRP B: dim_y x R
  const auto factor_c = random_dense(8, 6, 1.0, 20);   // MTTKRP C: dim_z x R
  const auto factor_u = random_dense(8, 6, 1.0, 21);   // SpTTM U: dim_z x R

  Request mk;
  mk.kernel = Kernel::kMTTKRP;
  mk.x = hx;
  mk.dense_b = factor_b;
  mk.dense_c = factor_c;
  const auto mplan = srv.plan_for(mk);
  const auto mwant =
      exec::mttkrp(convert(x_any, mplan->run_a), factor_b, factor_c);
  EXPECT_EQ(std::get<DenseMatrix>(srv.submit(mk).get().result), mwant);

  Request tk;
  tk.kernel = Kernel::kSpTTM;
  tk.x = hx;
  tk.dense_b = factor_u;
  const auto tplan = srv.plan_for(tk);
  const auto twant = exec::ttm(convert(x_any, tplan->run_a), factor_u);
  EXPECT_EQ(std::get<DenseTensor3>(srv.submit(tk).get().result), twant);
}

TEST(Server, GemmServesDenseOperands) {
  Server srv(small_opts());
  const auto a = random_dense(24, 20, 1.0, 22);
  const auto b = random_dense(20, 16, 1.0, 23);
  const auto h = srv.register_matrix(AnyMatrix(a));
  Request r;
  r.kernel = Kernel::kGemm;
  r.a = h;
  r.dense_b = b;
  const auto want = exec::spmm(AnyMatrix(a), b);
  const auto got = srv.submit(r).get();
  EXPECT_EQ(std::get<DenseMatrix>(got.result), want);
  EXPECT_FALSE(got.stats.plan_cache_hit);
  EXPECT_TRUE(srv.submit(r).get().stats.plan_cache_hit);
}

TEST(Server, CacheBypassModesProduceIdenticalResults) {
  const auto a_dense = random_dense(48, 40, 0.06, 24);
  const AnyMatrix a_any = encode(a_dense, Format::kRLC);
  const std::vector<value_t> x(40, 1.5f);

  std::vector<value_t> cached_result, bypass_result;
  {
    Server srv(small_opts());
    const auto h = srv.register_matrix(a_any);
    (void)srv.submit(spmv_request(h, x)).get();
    cached_result = std::get<std::vector<value_t>>(
        srv.submit(spmv_request(h, x)).get().result);
  }
  {
    auto opts = small_opts();
    opts.caches.use_plan_cache = false;
    opts.caches.use_conversion_cache = false;
    Server srv(opts);
    const auto h = srv.register_matrix(a_any);
    const auto r1 = srv.submit(spmv_request(h, x)).get();
    EXPECT_FALSE(r1.stats.plan_cache_hit);
    const auto r2 = srv.submit(spmv_request(h, x)).get();
    EXPECT_FALSE(r2.stats.plan_cache_hit);  // bypass: misses forever
    // The bypassed caches stay empty.
    EXPECT_EQ(srv.plan_cache().size(), 0u);
    EXPECT_EQ(srv.conversion_cache().size(), 0u);
    bypass_result = std::get<std::vector<value_t>>(r2.result);
  }
  EXPECT_EQ(cached_result, bypass_result);
}

TEST(Server, EvictionInvalidatesHandleAndPurgesCaches) {
  Server srv(small_opts());
  const auto a_dense = random_dense(40, 32, 0.05, 25);
  const auto h = srv.register_matrix(encode(a_dense, Format::kCSR));
  const std::vector<value_t> x(32, 1.0f);

  (void)srv.submit(spmv_request(h, x)).get();
  EXPECT_GT(srv.conversion_cache().size() + srv.plan_cache().size(), 0u);

  srv.evict(h);
  EXPECT_EQ(srv.conversion_cache().size(), 0u);
  EXPECT_EQ(srv.plan_cache().size(), 0u);
  auto fut = srv.submit(spmv_request(h, x));
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(srv.counters().failed, 1);

  // Re-registration issues a fresh handle that serves normally.
  const auto h2 = srv.register_matrix(encode(a_dense, Format::kCSR));
  EXPECT_NE(h2.id, h.id);
  (void)srv.submit(spmv_request(h2, x)).get();
}

TEST(Server, BoundedQueueBackpressureCompletesEverything) {
  auto opts = small_opts();
  opts.queue_capacity = 2;  // force submit-side blocking
  Server srv(opts);
  const auto h = srv.register_matrix(
      encode(random_dense(32, 24, 0.1, 26), Format::kCSR));
  const std::vector<value_t> x(24, 1.0f);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(srv.submit(spmv_request(h, x)));
  for (auto& f : futs) EXPECT_NO_THROW((void)f.get());
  EXPECT_EQ(srv.counters().completed, 32);
}

TEST(Server, SubmitAfterStopFailsFast) {
  Server srv(small_opts());
  const auto h = srv.register_matrix(
      encode(random_dense(16, 12, 0.2, 27), Format::kCSR));
  srv.stop();
  auto fut = srv.submit(spmv_request(h, std::vector<value_t>(12, 1.0f)));
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Server, WorkerPoolCapsKernelThreadsAndRestores) {
  const int before_override = num_threads_override();
  const int before = num_threads();
  {
    auto opts = small_opts();
    opts.num_workers = 4;
    Server srv(opts);
    // While the pool is live, kernel width is capped so that
    // pool x width never oversubscribes the machine.
    EXPECT_EQ(num_threads(), threads_per_worker(4));
  }
  EXPECT_EQ(num_threads_override(), before_override);
  EXPECT_EQ(num_threads(), before);
}

TEST(Server, OverlappingServersShareOneThreadBudget) {
  const int before = num_threads();
  {
    auto opts_a = small_opts();
    opts_a.num_workers = 4;
    Server a(opts_a);
    {
      auto opts_b = small_opts();
      opts_b.num_workers = 2;
      Server b(opts_b);
      // Budget divides over all live workers (4 + 2), never exceeding the
      // solo width.
      EXPECT_EQ(num_threads(),
                std::min(std::max(1, hardware_threads() / 6), before));
    }
    // b stopped: the budget re-expands to a's pool alone.
    EXPECT_EQ(num_threads(),
              std::min(std::max(1, hardware_threads() / 4), before));
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ThreadsPerWorker, NeverOversubscribesAndNeverExceedsSolo) {
  const int solo = num_threads();
  for (int pool = 1; pool <= 8; ++pool) {
    const int per = threads_per_worker(pool);
    EXPECT_GE(per, 1);
    EXPECT_LE(per, solo);
  }
}

// --- Batcher: grouping (pure) ---

BatchItem spmv_item(std::uint64_t a, index_t rows = 32) {
  BatchItem b;
  b.kernel = Kernel::kSpMV;
  b.a = a;
  b.rows = rows;
  b.width = 1;
  b.fusible = true;
  return b;
}

BatchItem spmm_item(std::uint64_t a, index_t rows, index_t width) {
  BatchItem b;
  b.kernel = Kernel::kSpMM;
  b.a = a;
  b.rows = rows;
  b.width = width;
  b.fusible = true;
  return b;
}

BatchItem spgemm_item(std::uint64_t a, std::uint64_t bb) {
  BatchItem b;
  b.kernel = Kernel::kSpGEMM;
  b.a = a;
  b.b = bb;
  return b;
}

using Members = std::vector<std::size_t>;

TEST(Batcher, FusesSameWorkloadAcrossInterleavedHandles) {
  const auto groups = form_batches(
      {spmv_item(1), spmv_item(2), spmv_item(1), spmv_item(2), spmv_item(1)});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (Members{0, 2, 4}));
  EXPECT_EQ(groups[1].members, (Members{1, 3}));
  EXPECT_TRUE(groups[0].fused);
  EXPECT_TRUE(groups[1].fused);
}

TEST(Batcher, InterveningRequestOnSameHandleBarsJoining) {
  // spmv(1), spgemm(1,2), spmv(1), spmv(2), spmv(1): the SpGEMM touches
  // both handles, so neither later SpMV may hoist over it into an earlier
  // group — per-handle completion order must stay FIFO.
  const auto groups = form_batches({spmv_item(1), spgemm_item(1, 2),
                                    spmv_item(1), spmv_item(2),
                                    spmv_item(1)});
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].members, (Members{0}));
  EXPECT_EQ(groups[1].members, (Members{1}));
  EXPECT_FALSE(groups[1].fused);
  EXPECT_EQ(groups[2].members, (Members{2, 4}));  // rejoin after the barrier
  EXPECT_EQ(groups[3].members, (Members{3}));
}

TEST(Batcher, KernelAndShapeChangesSplitGroups) {
  // Same handle, but a different kernel, factor width, or payload length
  // is a different workload (different plan key / ill-formed stack).
  const auto groups = form_batches(
      {spmm_item(1, 32, 8), spmm_item(1, 32, 8), spmm_item(1, 32, 4),
       spmv_item(1, 32), spmv_item(1, 16)});
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].members, (Members{0, 1}));
  EXPECT_EQ(groups[1].members, (Members{2}));
  EXPECT_EQ(groups[2].members, (Members{3}));
  EXPECT_EQ(groups[3].members, (Members{4}));
}

TEST(Batcher, BackendIsPartOfTheFuseKey) {
  // Same-backend requests still fuse across an interleave of the other
  // backend's traffic; the two backends' groups never merge.
  BatchItem cpu = spmv_item(1);
  BatchItem dev = spmv_item(2);
  dev.backend = exec::BackendKind::kMint;
  const auto groups = form_batches({cpu, dev, cpu, dev});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (Members{0, 2}));
  EXPECT_EQ(groups[1].members, (Members{1, 3}));
  EXPECT_TRUE(groups[0].fused);
  EXPECT_TRUE(groups[1].fused);

  // Identical workload, different backend: the backend boundary alone
  // bars joining, and the per-handle FIFO barrier then keeps every later
  // same-handle request in arrival order.
  BatchItem dev1 = spmv_item(1);
  dev1.backend = exec::BackendKind::kSim;
  const auto split = form_batches({spmv_item(1), dev1, spmv_item(1)});
  ASSERT_EQ(split.size(), 3u);
  for (const auto& g : split) EXPECT_EQ(g.members.size(), 1u);
}

TEST(Batcher, UnbatchableKernelsNeverFuse) {
  BatchItem mttkrp;
  mttkrp.kernel = Kernel::kMTTKRP;
  mttkrp.x = 5;
  const auto groups =
      form_batches({spgemm_item(1, 2), spgemm_item(1, 2), mttkrp, mttkrp});
  ASSERT_EQ(groups.size(), 4u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.members.size(), 1u);
    EXPECT_FALSE(g.fused);
  }
}

TEST(Batcher, CoalescibleSpmvFormatsAreTheProvablyIdenticalOnes) {
  EXPECT_TRUE(coalescible_spmv_format(Format::kCSR));
  EXPECT_TRUE(coalescible_spmv_format(Format::kCOO));
  // CSC reduces over different chunk widths in SpMV vs SpMM; Dense GEMM
  // skips zeros that spmv_dense accumulates; ELL/BSR have no SpMM twin.
  EXPECT_FALSE(coalescible_spmv_format(Format::kCSC));
  EXPECT_FALSE(coalescible_spmv_format(Format::kDense));
  EXPECT_FALSE(coalescible_spmv_format(Format::kELL));
  EXPECT_FALSE(coalescible_spmv_format(Format::kBSR));
  EXPECT_FALSE(coalescible_spmv_format(Format::kZVC));
}

// --- Batcher: server integration ---

ServerOptions batched_opts(int window = 16) {
  auto o = small_opts();
  o.num_workers = 1;  // one drain stream => deterministic windows
  o.queue_capacity = 32;
  o.batch.policy = BatchPolicy::kWindow;
  o.batch.window = window;
  return o;
}

// Occupies the single worker with a chunky SpGEMM so everything submitted
// next piles up in the queue and drains as one window when it finishes.
// Spins until the worker has actually taken the occupier off the queue.
std::future<Response> occupy_worker(Server& srv, MatrixHandle a,
                                    MatrixHandle b) {
  Request r;
  r.kernel = Kernel::kSpGEMM;
  r.a = a;
  r.b = b;
  auto fut = srv.submit(std::move(r));
  while (srv.queue_depth() > 0) std::this_thread::yield();
  return fut;
}

TEST(Server, CoalescedSpmvBitIdenticalToSingleRequests) {
  // Density 0.05 => SAGE plans SpMV onto CSR (a coalescible ACF).
  const auto a_dense = random_dense(64, 48, 0.05, 31);
  const AnyMatrix a_any = encode(a_dense, Format::kCSR);
  const auto slow_a = random_dense(1000, 1000, 0.08, 32);
  const auto slow_b = random_dense(1000, 1000, 0.08, 33);

  std::vector<std::vector<value_t>> xs;
  for (int i = 0; i < 5; ++i) {
    std::vector<value_t> x;
    for (index_t k = 0; k < 48; ++k) {
      x.push_back(0.125f * static_cast<float>((k + i) % 9) - 0.25f);
    }
    xs.push_back(std::move(x));
  }

  // Reference: batching off, requests served one by one.
  std::vector<std::vector<value_t>> want;
  {
    auto opts = batched_opts();
    opts.batch.policy = BatchPolicy::kOff;
    Server srv(opts);
    const auto h = srv.register_matrix(a_any);
    for (const auto& x : xs) {
      want.push_back(std::get<std::vector<value_t>>(
          srv.submit(spmv_request(h, x)).get().result));
    }
    EXPECT_EQ(srv.counters().batches, 0);
  }

  Server srv(batched_opts());
  const auto h = srv.register_matrix(a_any);
  const auto hs_a = srv.register_matrix(encode(slow_a, Format::kCSR));
  const auto hs_b = srv.register_matrix(encode(slow_b, Format::kCSR));
  ASSERT_TRUE(coalescible_spmv_format(srv.plan_for(spmv_request(h, xs[0]))->run_a));

  auto occupier = occupy_worker(srv, hs_a, hs_b);
  std::vector<std::future<Response>> futs;
  for (const auto& x : xs) futs.push_back(srv.submit(spmv_request(h, x)));
  (void)occupier.get();

  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto resp = futs[i].get();
    EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), want[i]);
    EXPECT_TRUE(resp.stats.batched);
    EXPECT_EQ(resp.stats.batch_size, 5);
    // The coalesced launch truthfully reports the SpMM it ran.
    EXPECT_EQ(resp.stats.dispatch.kernel, Kernel::kSpMM);
    EXPECT_EQ(resp.stats.dispatch.path, exec::Path::kNative);
  }
  const auto c = srv.counters();
  EXPECT_EQ(c.batches, 1);
  EXPECT_EQ(c.batched_requests, 5);
}

TEST(Server, BatchedResultsBitIdenticalToBatchingOffForAllKernels) {
  const auto a_dense = random_dense(48, 48, 0.05, 41);   // CSR spmv/spmm plan
  const auto coo_dense = random_dense(48, 48, 0.02, 42); // COO spmv plan
  const auto d_dense = random_dense(32, 32, 1.0, 43);    // dense GEMM operand
  const auto b_dense = random_dense(48, 48, 0.06, 44);   // SpGEMM partner
  const auto x_coo = synth_coo_tensor(10, 9, 8, 60, 45);
  const auto slow_a = random_dense(1000, 1000, 0.08, 46);
  const auto slow_b = random_dense(1000, 1000, 0.08, 47);

  const auto factor = random_dense(48, 8, 1.0, 48);
  const auto gemm_factor = random_dense(32, 6, 1.0, 49);
  const auto mt_b = random_dense(9, 6, 1.0, 50);
  const auto mt_c = random_dense(8, 6, 1.0, 51);
  const auto ttm_u = random_dense(8, 6, 1.0, 52);
  std::vector<value_t> x(48);
  for (index_t i = 0; i < 48; ++i) {
    x[static_cast<std::size_t>(i)] = 0.25f * static_cast<float>(i % 5) - 0.5f;
  }

  struct Shapes {
    MatrixHandle csr, coo, dense, spgemm_b;
    TensorHandle tensor;
  };
  auto register_all = [&](Server& srv) {
    Shapes s;
    s.csr = srv.register_matrix(encode(a_dense, Format::kCSR));
    s.coo = srv.register_matrix(encode(coo_dense, Format::kCOO));
    s.dense = srv.register_matrix(AnyMatrix(d_dense));
    s.spgemm_b = srv.register_matrix(encode(b_dense, Format::kCSR));
    s.tensor = srv.register_tensor(AnyTensor(x_coo));
    return s;
  };
  auto burst = [&](const Shapes& s) {
    std::vector<Request> reqs;
    for (int i = 0; i < 3; ++i) reqs.push_back(spmv_request(s.csr, x));
    for (int i = 0; i < 2; ++i) reqs.push_back(spmv_request(s.coo, x));
    for (int i = 0; i < 3; ++i) {
      Request r;
      r.kernel = Kernel::kSpMM;
      r.a = s.csr;
      r.dense_b = factor;
      reqs.push_back(std::move(r));
    }
    for (int i = 0; i < 2; ++i) {
      Request r;
      r.kernel = Kernel::kGemm;
      r.a = s.dense;
      r.dense_b = gemm_factor;
      reqs.push_back(std::move(r));
    }
    {
      Request r;
      r.kernel = Kernel::kSpGEMM;
      r.a = s.csr;
      r.b = s.spgemm_b;
      reqs.push_back(std::move(r));
    }
    {
      Request r;
      r.kernel = Kernel::kSpTTM;
      r.x = s.tensor;
      r.dense_b = ttm_u;
      reqs.push_back(std::move(r));
    }
    {
      Request r;
      r.kernel = Kernel::kMTTKRP;
      r.x = s.tensor;
      r.dense_b = mt_b;
      r.dense_c = mt_c;
      reqs.push_back(std::move(r));
    }
    return reqs;
  };

  // Reference run: batching off, strictly sequential.
  std::vector<Result> want;
  {
    auto opts = batched_opts();
    opts.batch.policy = BatchPolicy::kOff;
    Server srv(opts);
    const auto s = register_all(srv);
    for (auto& r : burst(s)) {
      want.push_back(srv.submit(std::move(r)).get().result);
    }
  }

  // Batched run: stage the whole burst behind an occupied worker so it
  // drains as one window and the fusible prefixes coalesce.
  Server srv(batched_opts());
  const auto s = register_all(srv);
  const auto hs_a = srv.register_matrix(encode(slow_a, Format::kCSR));
  const auto hs_b = srv.register_matrix(encode(slow_b, Format::kCSR));
  auto occupier = occupy_worker(srv, hs_a, hs_b);
  std::vector<std::future<Response>> futs;
  for (auto& r : burst(s)) futs.push_back(srv.submit(std::move(r)));
  (void)occupier.get();

  ASSERT_EQ(futs.size(), want.size());
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto resp = futs[i].get();
    ASSERT_EQ(resp.result.index(), want[i].index()) << "request " << i;
    if (const auto* v = std::get_if<std::vector<value_t>>(&want[i])) {
      EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), *v) << i;
    } else if (const auto* m = std::get_if<DenseMatrix>(&want[i])) {
      EXPECT_EQ(std::get<DenseMatrix>(resp.result), *m) << i;
    } else if (const auto* c = std::get_if<CsrMatrix>(&want[i])) {
      const auto& got = std::get<CsrMatrix>(resp.result);
      EXPECT_EQ(got.row_ptr(), c->row_ptr()) << i;
      EXPECT_EQ(got.col_ids(), c->col_ids()) << i;
      EXPECT_EQ(got.values(), c->values()) << i;
    } else {
      EXPECT_EQ(std::get<DenseTensor3>(resp.result),
                std::get<DenseTensor3>(want[i])) << i;
    }
  }
  // Each fusible run (SpMV per operand when its plan is coalescible, SpMM,
  // GEMM) coalesced into one launch; the tail passed through unbatched.
  const bool csr_fuses =
      coalescible_spmv_format(srv.plan_for(spmv_request(s.csr, x))->run_a);
  const bool coo_fuses =
      coalescible_spmv_format(srv.plan_for(spmv_request(s.coo, x))->run_a);
  const auto c = srv.counters();
  EXPECT_EQ(c.batches, 2 + (csr_fuses ? 1 : 0) + (coo_fuses ? 1 : 0));
  EXPECT_EQ(c.batched_requests,
            5 + (csr_fuses ? 3 : 0) + (coo_fuses ? 2 : 0));
  EXPECT_EQ(c.completed, static_cast<std::int64_t>(want.size()) + 1);
  EXPECT_TRUE(csr_fuses);  // density 0.05 plans onto CSR — if SAGE ever
  EXPECT_TRUE(coo_fuses);  // re-prices these, revisit the operands above
}

TEST(Server, NonCoalescibleSpmvPlanPassesThrough) {
  // Density 0.2 => SAGE plans SpMV onto Dense, which never coalesces.
  const auto a_dense = random_dense(64, 48, 0.2, 61);
  const AnyMatrix a_any = encode(a_dense, Format::kCSR);
  const auto slow_a = random_dense(1000, 1000, 0.08, 62);
  const auto slow_b = random_dense(1000, 1000, 0.08, 63);
  std::vector<value_t> x(48, 0.75f);

  Server srv(batched_opts());
  const auto h = srv.register_matrix(a_any);
  ASSERT_FALSE(
      coalescible_spmv_format(srv.plan_for(spmv_request(h, x))->run_a));
  const auto hs_a = srv.register_matrix(encode(slow_a, Format::kCSR));
  const auto hs_b = srv.register_matrix(encode(slow_b, Format::kCSR));
  auto occupier = occupy_worker(srv, hs_a, hs_b);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(srv.submit(spmv_request(h, x)));
  (void)occupier.get();

  const auto want = exec::spmv(
      convert(a_any, srv.plan_for(spmv_request(h, x))->run_a), x);
  for (auto& f : futs) {
    const auto resp = f.get();
    EXPECT_EQ(std::get<std::vector<value_t>>(resp.result), want);
    EXPECT_FALSE(resp.stats.batched);
    EXPECT_EQ(resp.stats.dispatch.kernel, Kernel::kSpMV);
  }
  EXPECT_EQ(srv.counters().batches, 0);
}

TEST(Server, BatchFailsUniformlyWhenHandleEvictedInFlight) {
  Server srv(batched_opts());
  const auto h = srv.register_matrix(
      encode(random_dense(48, 48, 0.05, 71), Format::kCSR));
  const auto hs_a = srv.register_matrix(
      encode(random_dense(1000, 1000, 0.08, 72), Format::kCSR));
  const auto hs_b = srv.register_matrix(
      encode(random_dense(1000, 1000, 0.08, 73), Format::kCSR));
  std::vector<value_t> x(48, 1.0f);

  auto occupier = occupy_worker(srv, hs_a, hs_b);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(srv.submit(spmv_request(h, x)));
  srv.evict(h);  // queued requests now name a dead handle
  (void)occupier.get();
  for (auto& f : futs) EXPECT_THROW(f.get(), std::invalid_argument);
  EXPECT_EQ(srv.counters().failed, 3);
}

// --- Model lifecycle ---

TEST(Server, UpdateModelLeavesHostPlansCached) {
  Server srv(small_opts());
  const auto h = srv.register_matrix(
      encode(random_dense(48, 40, 0.05, 81), Format::kCSR));
  const std::vector<value_t> x(40, 1.0f);

  (void)srv.submit(spmv_request(h, x)).get();
  EXPECT_EQ(srv.plan_cache().size(), 1u);
  const auto old_fp = srv.model_fingerprint();

  // Same model: nothing changes, nothing is retired.
  EXPECT_EQ(srv.update_model(srv.options().accel, srv.options().energy)
                .total(),
            0u);
  EXPECT_EQ(srv.model_fingerprint(), old_fp);
  EXPECT_EQ(srv.plan_cache().size(), 1u);

  // New accelerator: the planning fingerprint moves, but a CPU-only
  // server's plans are priced independent of the device model (keyed on
  // kHostModel), so the partitioned retire drops none of them and the
  // next request still hits the cache.
  auto accel = srv.options().accel;
  accel.num_pes /= 2;
  const auto retired = srv.update_model(accel, srv.options().energy);
  EXPECT_EQ(retired.total(), 0u);
  EXPECT_EQ(retired.of(exec::BackendKind::kCpu), 0u);
  EXPECT_NE(srv.model_fingerprint(), old_fp);
  EXPECT_EQ(srv.plan_cache().size(), 1u);
  const auto hits_before = srv.plan_cache().hits();
  const auto resp = srv.submit(spmv_request(h, x)).get();
  EXPECT_TRUE(resp.stats.plan_cache_hit);
  EXPECT_EQ(srv.plan_cache().hits(), hits_before + 1);

  // Explicit retirement: the old fingerprint owns no entries, an unknown
  // fingerprint owns none, and kHostModel is a guarded no-op — the CPU
  // plan survives all three.
  EXPECT_EQ(srv.retire_plans(old_fp).total(), 0u);
  EXPECT_EQ(srv.retire_plans(12345).total(), 0u);
  EXPECT_EQ(srv.retire_plans(kHostModel).total(), 0u);
  EXPECT_EQ(srv.plan_cache().size(), 1u);
}

TEST(PlanCache, RetireDropsOnlyMatchingFingerprintPerBackend) {
  PlanCache cache;
  auto plan = std::make_shared<Plan>();
  PlanKey k1{Kernel::kSpMV, 1, 0, /*model=*/111, 1};  // backend kCpu
  PlanKey k2{Kernel::kSpMV, 1, 0, /*model=*/222, 1};
  PlanKey k3{Kernel::kSpMV, 1, 0, /*model=*/111, 1};
  k3.backend = exec::BackendKind::kMint;
  PlanKey host{Kernel::kSpMV, 2, 0, kHostModel, 1};
  bool hit = false;
  for (const auto& k : {k1, k2, k3, host}) {
    (void)cache.get_or_compute(k, [&] { return plan; }, &hit);
  }
  EXPECT_EQ(cache.size(), 4u);
  const auto retired = cache.retire(111);
  EXPECT_EQ(retired.total(), 2u);
  EXPECT_EQ(retired.of(exec::BackendKind::kCpu), 1u);
  EXPECT_EQ(retired.of(exec::BackendKind::kMint), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.retire(111).total(), 0u);
  // kHostModel marks model-independent plans; retiring it is a no-op.
  EXPECT_EQ(cache.retire(kHostModel).total(), 0u);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_compute(k2, [&] { return plan; }, &hit);
  EXPECT_TRUE(hit);  // the surviving fingerprint still serves
  (void)cache.get_or_compute(host, [&] { return plan; }, &hit);
  EXPECT_TRUE(hit);  // so does the host partition
}

// --- Cache eviction (cache_policy.hpp) ---

TEST(EvictionIndex, LruOrderRespectedAmongEqualCosts) {
  EvictionIndex<int> idx;
  idx.touch(1, 5.0, 10);
  idx.touch(2, 5.0, 10);
  idx.touch(3, 5.0, 10);
  // Equal costs degrade to exact LRU: least-recently-touched goes first.
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(1));
  idx.refresh(2);  // 2 is now the most recent; 3 becomes LRU
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(3));
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(2));
  EXPECT_EQ(idx.pop_victim(), std::nullopt);
}

TEST(EvictionIndex, CostAwareKeepsTheExpensiveEntryUnderPressure) {
  EvictionIndex<int> idx;
  idx.touch(1, 100.0, 10);  // expensive to recompute, touched first
  idx.touch(2, 1.0, 10);
  idx.touch(3, 1.0, 10);
  idx.touch(4, 1.0, 10);
  // Pure LRU would evict 1 first; the cost-aware policy sheds the cheap
  // entries and keeps the expensive one under pressure.
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(2));
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(3));
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(4));
  EXPECT_EQ(idx.pop_victim(), std::optional<int>(1));
}

TEST(EvictionIndex, ExpensiveEntryAgesOutAsTheClockAdvances) {
  EvictionIndex<int> idx;
  idx.touch(1, 10.0, 1);
  // Each eviction advances the clock to the victim's priority, so a
  // stream of cheap entries eventually outprices an idle expensive one
  // (no permanent squatters).
  int evicted_1_after = -1;
  int next_key = 2;
  for (int round = 0; round < 20 && evicted_1_after < 0; ++round) {
    idx.touch(next_key++, 1.0, 1);
    const auto victim = idx.pop_victim();
    ASSERT_TRUE(victim.has_value());
    if (*victim == 1) evicted_1_after = round;
  }
  EXPECT_GE(evicted_1_after, 5);   // survived well past its cost rank...
  EXPECT_LE(evicted_1_after, 15);  // ...but not forever
}

TEST(EvictionIndex, TracksBytesAndBudget) {
  EvictionIndex<int> idx;
  idx.touch(1, 1.0, 100);
  idx.touch(2, 1.0, 200);
  EXPECT_EQ(idx.entries(), 2u);
  EXPECT_EQ(idx.bytes(), 300u);
  idx.touch(2, 1.0, 50);  // re-touch re-prices the byte charge
  EXPECT_EQ(idx.bytes(), 150u);
  CacheOptions entries_cap;
  entries_cap.max_entries = 1;
  EXPECT_TRUE(idx.over(entries_cap));
  CacheOptions bytes_cap;
  bytes_cap.max_bytes = 149;
  EXPECT_TRUE(idx.over(bytes_cap));
  bytes_cap.max_bytes = 150;
  EXPECT_FALSE(idx.over(bytes_cap));
  idx.erase(1);
  EXPECT_EQ(idx.bytes(), 50u);
  EXPECT_FALSE(idx.over(entries_cap));
}

TEST(ConversionCache, CapacityBoundsEntriesAndRecomputesEvicted) {
  CacheOptions limits;
  limits.max_entries = 2;
  ConversionCache cache(limits);
  const auto src = std::make_shared<const AnyMatrix>(
      encode(random_dense(32, 28, 0.1, 131), Format::kZVC));
  // Four distinct target formats through a 2-entry budget.
  const Format targets[] = {Format::kCSR, Format::kCOO, Format::kCSC,
                            Format::kDense};
  bool hit = false;
  for (const auto f : targets) {
    const auto rep = cache.matrix(7, f, src, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(format_of(*rep), f);
    EXPECT_LE(cache.size(), 2u);
  }
  // Whatever was evicted converts again, correctly.
  const auto csr = cache.matrix(7, Format::kCSR, src, &hit);
  EXPECT_EQ(decode(*csr), decode(*src));
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ConversionCache, InFlightSharedRepsSurviveEviction) {
  CacheOptions limits;
  limits.max_entries = 1;
  ConversionCache cache(limits);
  const auto src = std::make_shared<const AnyMatrix>(
      encode(random_dense(32, 28, 0.1, 132), Format::kZVC));
  bool hit = false;
  // Hold the first representation like an in-flight request would...
  const auto held = cache.matrix(9, Format::kCSR, src, &hit);
  // ...then churn enough conversions through the 1-entry budget that its
  // cache entry is certainly gone.
  for (const auto f : {Format::kCOO, Format::kCSC, Format::kDense}) {
    (void)cache.matrix(9, f, src, &hit);
  }
  EXPECT_LE(cache.size(), 1u);
  // The held shared_ptr is unaffected: eviction unpublishes, never frees.
  EXPECT_EQ(format_of(*held), Format::kCSR);
  EXPECT_EQ(decode(*held), decode(*src));
}

TEST(ConversionCache, ZeroCapacityBypassesStorage) {
  CacheOptions limits;
  limits.max_entries = 0;
  ConversionCache cache(limits);
  const auto src = std::make_shared<const AnyMatrix>(
      encode(random_dense(24, 24, 0.1, 133), Format::kZVC));
  bool hit = true;
  const auto r1 = cache.matrix(3, Format::kCSR, src, &hit);
  EXPECT_FALSE(hit);
  const auto r2 = cache.matrix(3, Format::kCSR, src, &hit);
  EXPECT_FALSE(hit);  // nothing was stored: misses forever
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(decode(*r1), decode(*r2));
  // Identity sharing needs no storage and still hits.
  const auto id_rep = cache.matrix(3, Format::kZVC, src, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(id_rep.get(), src.get());
}

TEST(PlanCache, CapacityBoundsPlans) {
  CacheOptions limits;
  limits.max_entries = 1;
  PlanCache cache(limits);
  auto plan = std::make_shared<Plan>();
  // k2's search is made deterministically the expensive one, so the
  // cost-aware victim choice between the two is never down to timing
  // noise on a trivial lambda.
  const auto slow_compute = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return plan;
  };
  const PlanKey k1{Kernel::kSpMV, 1, 0, 11, 1};
  const PlanKey k2{Kernel::kSpMV, 2, 0, 11, 1};
  bool hit = false;
  (void)cache.get_or_compute(k1, [&] { return plan; }, &hit);
  EXPECT_FALSE(hit);
  (void)cache.get_or_compute(k2, slow_compute, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1u);  // the cheap k1 was evicted to admit k2
  (void)cache.get_or_compute(k2, slow_compute, &hit);
  EXPECT_TRUE(hit);  // the admitted entry still serves
  (void)cache.get_or_compute(k1, [&] { return plan; }, &hit);
  EXPECT_FALSE(hit);  // the evicted key recomputes
  EXPECT_EQ(cache.size(), 1u);
}

// What the server is contractually obliged to return for a single SpMV:
// coalescible plans route through the SpMM twin as a width-1 stack (so
// bits never depend on batch timing); everything else uses exec::spmv.
std::vector<value_t> served_spmv_reference(const AnyMatrix& m, Format acf,
                                           const std::vector<value_t>& x) {
  if (coalescible_spmv_format(acf) &&
      exec::has_native(Kernel::kSpMM, acf)) {
    return exec::column_of(
        exec::spmm(convert(m, acf), exec::stack_columns({&x})), 0);
  }
  return exec::spmv(convert(m, acf), x);
}

// End-to-end: a server with bounded caches keeps serving correct results
// while staying within its budget (thrash costs recompute, never
// correctness).
TEST(Server, BoundedCachesStayWithinBudgetAndServeCorrectly) {
  auto opts = small_opts();
  opts.caches.plan_limits.max_entries = 2;
  opts.caches.conversion_limits.max_entries = 3;
  Server srv(opts);

  std::vector<AnyMatrix> mats;
  std::vector<MatrixHandle> hs;
  for (int i = 0; i < 4; ++i) {
    mats.push_back(encode(
        random_dense(40, 32, 0.08, 140 + static_cast<unsigned>(i)),
        Format::kZVC));
    hs.push_back(srv.register_matrix(mats.back()));
  }
  std::vector<value_t> x(32);
  for (index_t i = 0; i < 32; ++i) {
    x[static_cast<std::size_t>(i)] = 0.5f * static_cast<float>(i % 3) - 0.5f;
  }

  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < hs.size(); ++i) {
      const auto plan = srv.plan_for(spmv_request(hs[i], x));
      const auto want = served_spmv_reference(mats[i], plan->run_a, x);
      const auto got = srv.submit(spmv_request(hs[i], x)).get();
      EXPECT_EQ(std::get<std::vector<value_t>>(got.result), want);
      EXPECT_LE(srv.plan_cache().size(), 2u);
      EXPECT_LE(srv.conversion_cache().size(), 3u);
    }
  }
  EXPECT_EQ(srv.counters().failed, 0);
}

TEST(MpmcQueue, TryPopNTakesOnlyWhatIsThere) {
  MpmcQueue<int> q(8);
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(q.push(std::move(i)));
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_n(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.try_pop_n(out, 10), 2u);  // drains the rest, never blocks
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(q.try_pop_n(out, 4), 0u);  // empty queue: returns immediately
}

TEST(MpmcQueue, FifoDrainAndCloseSemantics) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  int untouched = 99;
  EXPECT_FALSE(q.push(std::move(untouched)));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::nullopt);
}

}  // namespace
}  // namespace mt::runtime
