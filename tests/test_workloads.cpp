#include <gtest/gtest.h>

#include <set>

#include "kernels/gemm.hpp"
#include "workloads/im2col.hpp"
#include "workloads/registry.hpp"
#include "workloads/resnet.hpp"
#include "workloads/synth.hpp"
#include "testing.hpp"

namespace mt {
namespace {

TEST(Registry, TableThreeShapes) {
  EXPECT_EQ(table3_matrices().size(), 10u);
  EXPECT_EQ(table3_tensors().size(), 3u);
  const auto& j = matrix_workload("journal");
  EXPECT_EQ(j.m, 124);
  EXPECT_EQ(j.k, 124);
  EXPECT_NEAR(j.density(), 0.785, 0.01);
  const auto& m3 = matrix_workload("m3plates");
  EXPECT_NEAR(m3.density(), 5.4e-5, 1e-5);
  const auto& uber = tensor_workload("Uber");
  EXPECT_EQ(uber.kernel, Kernel::kMTTKRP);
  EXPECT_NEAR(uber.density(), 3.9e-4, 1e-4);
  const auto& brainq = tensor_workload("BrainQ");
  EXPECT_EQ(brainq.kernel, Kernel::kSpTTM);
  EXPECT_NEAR(brainq.density(), 0.291, 0.01);
}

TEST(Registry, DensitySpansTheFullSpectrum) {
  // The suite is chosen to cover 78.5% down to 5.4e-3% (paper §VII-A).
  double lo = 1.0, hi = 0.0;
  for (const auto& w : table3_matrices()) {
    lo = std::min(lo, w.density());
    hi = std::max(hi, w.density());
  }
  EXPECT_LT(lo, 1e-4);
  EXPECT_GT(hi, 0.7);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(matrix_workload("nope"), std::invalid_argument);
  EXPECT_THROW(tensor_workload("nope"), std::invalid_argument);
}

TEST(Registry, FactorColsIsHalfM) {
  EXPECT_EQ(factor_cols(124), 62);
  EXPECT_EQ(factor_cols(1), 1);
}

TEST(Synth, MatrixHasExactNnzAndBounds) {
  const auto c = synth_coo_matrix(100, 200, 500, 42);
  EXPECT_EQ(c.nnz(), 500);
  EXPECT_EQ(c.rows(), 100);
  EXPECT_EQ(c.cols(), 200);
  for (std::int64_t i = 0; i < c.nnz(); ++i) {
    EXPECT_GE(c.values()[i], 0.5f);
    EXPECT_LT(c.values()[i], 1.5f);
  }
}

TEST(Synth, Deterministic) {
  const auto a = synth_coo_matrix(50, 50, 100, 7);
  const auto b = synth_coo_matrix(50, 50, 100, 7);
  EXPECT_EQ(a.row_ids(), b.row_ids());
  EXPECT_EQ(a.col_ids(), b.col_ids());
  EXPECT_EQ(a.values(), b.values());
  const auto c = synth_coo_matrix(50, 50, 100, 8);
  EXPECT_NE(a.row_ids(), c.row_ids());
}

TEST(Synth, TensorHasExactNnz) {
  const auto t = synth_coo_tensor(20, 30, 40, 777, 9);
  EXPECT_EQ(t.nnz(), 777);
}

TEST(Synth, TensorCoordinatesDecodeCorrectly) {
  // z varies fastest in the linearization; verify coordinates are in range
  // and distinct.
  const auto t = synth_coo_tensor(7, 11, 13, 300, 10);
  std::set<std::tuple<index_t, index_t, index_t>> seen;
  for (std::int64_t i = 0; i < t.nnz(); ++i) {
    EXPECT_LT(t.x_ids()[i], 7);
    EXPECT_LT(t.y_ids()[i], 11);
    EXPECT_LT(t.z_ids()[i], 13);
    seen.insert({t.x_ids()[i], t.y_ids()[i], t.z_ids()[i]});
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(Synth, TableThreeWorkloadGeneratesAtScale) {
  // m3plates: 6.6k nonzeros out of 1.21e8 cells — must be fast and exact.
  const auto c = synth_coo_matrix(matrix_workload("m3plates"), 1);
  EXPECT_EQ(c.nnz(), 6600);
}

TEST(Synth, DenseMatrixDensity) {
  const auto d = synth_dense_matrix(64, 64, 0.25, 5);
  EXPECT_EQ(d.nnz(), 1024);
}

TEST(Resnet, LayerTableMatchesFig14a) {
  const auto& layers = resnet50_cifar10_layers();
  ASSERT_EQ(layers.size(), 8u);
  EXPECT_EQ(layers[0].c_in, 3);
  EXPECT_EQ(layers[0].k_out, 64);
  EXPECT_EQ(layers[6].k_out, 2048);
  // Layer 8 under global pruning is 98.4% weight-sparse.
  EXPECT_NEAR(layers[7].wgt_sparsity[2], 0.984, 1e-9);
  // Normal strategy never prunes weights.
  for (const auto& l : layers) EXPECT_EQ(l.wgt_sparsity[0], 0.0);
  // Layer-wise pruning is exactly 50% everywhere.
  for (const auto& l : layers) EXPECT_EQ(l.wgt_sparsity[1], 0.5);
}

TEST(Resnet, Im2colShape) {
  const auto& l = resnet50_cifar10_layers()[3];  // 128->128, 16x16, 3x3
  const auto s = im2col_gemm_shape(l, 64);
  EXPECT_EQ(s.m, 128);
  EXPECT_EQ(s.k, 128 * 3 * 3);
  EXPECT_EQ(s.n, 16 * 16 * 64);
}

TEST(Im2col, MatchesDirectConvolution) {
  const auto input = testing::random_tensor(3, 8, 8, 0.6, 77);
  const auto filters = testing::random_dense(5, 3 * 3 * 3, 0.8, 88);
  const auto want = conv2d_reference(input, filters, 3, 3, 1);
  const auto got = conv2d_im2col(input, filters, 3, 3, 1);
  EXPECT_LE(max_abs_diff(got, want), 1e-3);
}

TEST(Im2col, NoPaddingShrinksOutput) {
  const auto input = testing::random_tensor(2, 6, 6, 1.0, 3);
  const auto filters = testing::random_dense(4, 2 * 3 * 3, 1.0, 4);
  const auto out = conv2d_im2col(input, filters, 3, 3, 0);
  EXPECT_EQ(out.dim_y(), 4);
  EXPECT_EQ(out.dim_z(), 4);
  EXPECT_LE(max_abs_diff(out, conv2d_reference(input, filters, 3, 3, 0)), 1e-3);
}

TEST(Im2col, OneByOneFilterIsChannelMix) {
  const auto input = testing::random_tensor(3, 5, 5, 1.0, 6);
  const auto filters = testing::random_dense(2, 3, 1.0, 7);
  const auto out = conv2d_im2col(input, filters, 1, 1, 0);
  // Spot check one output: out(f, y, x) = sum_c filt(f,c) * in(c,y,x).
  value_t want = 0.0f;
  for (index_t c = 0; c < 3; ++c) want += filters.at(1, c) * input.at(c, 2, 3);
  EXPECT_NEAR(out.at(1, 2, 3), want, 1e-4);
}

}  // namespace
}  // namespace mt
