// Parallel-vs-serial equivalence: every OpenMP kernel path must produce
// the same result with MT_NUM_THREADS=4 as with 1. Parallelism in these
// kernels is always across independent output rows/fibers, so the
// per-element accumulation order is identical and results are
// bit-identical, not merely tolerance-close.
//
// Every kernel check runs once per kernel tier (scalar always, the AVX2
// tier when the host supports it): the determinism contract is per-tier —
// each tier is bit-identical across thread counts, even though the two
// tiers round differently from each other.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/simd.hpp"
#include "common/threads.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/ttm.hpp"
#include "testing.hpp"

namespace {

using namespace mt;

constexpr int kThreads = 4;

// Runs `f` serially and with kThreads threads, restoring the previous
// setting, and returns the two results.
template <typename F>
auto serial_vs_parallel(F&& f) {
  set_num_threads(1);
  auto serial = f();
  set_num_threads(kThreads);
  auto parallel = f();
  set_num_threads(0);
  return std::pair(std::move(serial), std::move(parallel));
}

// Runs `body` once with the scalar tier pinned and, when the host has
// AVX2+FMA, once with the SIMD tier pinned, restoring runtime detection
// afterwards.
template <typename F>
void run_tiers(F&& body) {
  set_simd_enabled(0);
  body();
  if (cpu_has_avx2()) {
    set_simd_enabled(1);
    body();
  }
  set_simd_enabled(-1);
}

template <class AllocA, class AllocB>
void expect_same(const std::vector<value_t, AllocA>& a,
                 const std::vector<value_t, AllocB>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "element " << i;
  }
}

void expect_same(const DenseMatrix& a, const DenseMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  expect_same(a.values(), b.values());
}

TEST(Parallel, OpenMPIsActive) {
#ifdef _OPENMP
  set_num_threads(kThreads);
  int observed = 0;
  const int nt = num_threads();
#pragma omp parallel num_threads(nt)
  {
#pragma omp single
    observed = omp_get_num_threads();
  }
  set_num_threads(0);
  EXPECT_EQ(observed, kThreads);
#else
  FAIL() << "built without OpenMP: parallel kernel paths are dead code";
#endif
}

TEST(Parallel, ThreadsKnobPrecedence) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);  // falls back to MT_NUM_THREADS / OpenMP default
  EXPECT_GE(num_threads(), 1);
}

TEST(Parallel, SpmvCsr) {
  const auto a = CsrMatrix::from_dense(mt::testing::random_dense(64, 96, 0.15, 11));
  const auto xd = mt::testing::random_dense(96, 1, 1.0, 12);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmv_csr(a, x); });
    expect_same(s, p);
  });
}

// The engine's other SpMV ACFs: CSC reduces fixed column chunks in chunk
// order, COO splits the entry range at row boundaries, Dense/ELL/BSR own
// disjoint rows — all bit-identical by construction.
TEST(Parallel, SpmvEngineFormats) {
  const auto d = mt::testing::random_dense(70, 90, 0.15, 13);
  const auto xd = mt::testing::random_dense(90, 1, 1.0, 14);
  const std::vector<value_t> x(xd.values().begin(), xd.values().end());
  run_tiers([&] {
    {
      const auto a = CscMatrix::from_dense(d);
      auto [s, p] = serial_vs_parallel([&] { return spmv_csc(a, x); });
      expect_same(s, p);
    }
    {
      const auto a = CooMatrix::from_dense(d);
      auto [s, p] = serial_vs_parallel([&] { return spmv_coo(a, x); });
      expect_same(s, p);
    }
    {
      auto [s, p] = serial_vs_parallel([&] { return spmv_dense(d, x); });
      expect_same(s, p);
    }
    {
      const auto a = EllMatrix::from_dense(d);
      auto [s, p] = serial_vs_parallel([&] { return spmv_ell(a, x); });
      expect_same(s, p);
    }
    {
      const auto a = BsrMatrix::from_dense(d);
      auto [s, p] = serial_vs_parallel([&] { return spmv_bsr(a, x); });
      expect_same(s, p);
    }
  });
}

TEST(Parallel, SpmmCooDense) {
  const auto a = CooMatrix::from_dense(mt::testing::random_dense(52, 60, 0.2, 15));
  const auto b = mt::testing::random_dense(60, 28, 1.0, 16);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmm_coo_dense(a, b); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpmmCscDense) {
  const auto a = CscMatrix::from_dense(mt::testing::random_dense(52, 60, 0.2, 17));
  const auto b = mt::testing::random_dense(60, 28, 1.0, 18);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmm_csc_dense(a, b); });
    expect_same(s, p);
  });
}

TEST(Parallel, MttkrpHicoo) {
  const auto t = mt::testing::random_tensor(24, 20, 16, 0.1, 19);
  const auto x = HicooTensor3::from_coo(CooTensor3::from_dense(t));
  const auto b = mt::testing::random_dense(20, 8, 1.0, 44);
  const auto c = mt::testing::random_dense(16, 8, 1.0, 45);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return mttkrp_hicoo(x, b, c); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpmmCsrDense) {
  const auto a = CsrMatrix::from_dense(mt::testing::random_dense(48, 64, 0.2, 21));
  const auto b = mt::testing::random_dense(64, 32, 1.0, 22);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmm_csr_dense(a, b); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpmmDenseCsc) {
  const auto a = mt::testing::random_dense(40, 56, 1.0, 23);
  const auto b = CscMatrix::from_dense(mt::testing::random_dense(56, 44, 0.2, 24));
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmm_dense_csc(a, b); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpmmCsrCsc) {
  const auto a = CsrMatrix::from_dense(mt::testing::random_dense(40, 56, 0.2, 25));
  const auto b = CscMatrix::from_dense(mt::testing::random_dense(56, 44, 0.2, 26));
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spmm_csr_csc(a, b); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpgemmCsr) {
  const auto a = CsrMatrix::from_dense(mt::testing::random_dense(48, 64, 0.15, 31));
  const auto b = CsrMatrix::from_dense(mt::testing::random_dense(64, 56, 0.15, 32));
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spgemm_csr(a, b); });
    ASSERT_EQ(s.nnz(), p.nnz());
    for (std::size_t i = 0; i < s.row_ptr().size(); ++i) {
      EXPECT_EQ(s.row_ptr()[i], p.row_ptr()[i]);
    }
    for (std::size_t i = 0; i < s.values().size(); ++i) {
      EXPECT_EQ(s.col_ids()[i], p.col_ids()[i]);
      EXPECT_EQ(s.values()[i], p.values()[i]);
    }
  });
}

TEST(Parallel, MttkrpCsf) {
  const auto t = mt::testing::random_tensor(24, 20, 16, 0.1, 41);
  const auto x = CsfTensor3::from_dense(t);
  const auto b = mt::testing::random_dense(20, 8, 1.0, 42);
  const auto c = mt::testing::random_dense(16, 8, 1.0, 43);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return mttkrp_csf(x, b, c); });
    expect_same(s, p);
  });
}

TEST(Parallel, SpttmCsf) {
  const auto t = mt::testing::random_tensor(24, 20, 16, 0.1, 51);
  const auto x = CsfTensor3::from_dense(t);
  const auto u = mt::testing::random_dense(16, 8, 1.0, 52);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return spttm_csf(x, u); });
    ASSERT_EQ(s.dim_x(), p.dim_x());
    ASSERT_EQ(s.dim_y(), p.dim_y());
    ASSERT_EQ(s.dim_z(), p.dim_z());
    expect_same(s.values(), p.values());
  });
}

TEST(Parallel, Gemm) {
  const auto a = mt::testing::random_dense(40, 48, 0.5, 61);
  const auto b = mt::testing::random_dense(48, 36, 0.5, 62);
  run_tiers([&] {
    auto [s, p] = serial_vs_parallel([&] { return gemm(a, b); });
    expect_same(s, p);
  });
}

}  // namespace
