#include "runtime/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "common/threads.hpp"
#include "obs/export.hpp"
#include "sage/plan_key.hpp"

namespace mt::runtime {

// normalized() is the one place the deprecated flat aliases are still
// read — by design, so the fold-in itself compiles warning-free.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
ServerOptions::ServerOptions() = default;
ServerOptions::ServerOptions(const ServerOptions&) = default;
ServerOptions::ServerOptions(ServerOptions&&) = default;
ServerOptions& ServerOptions::operator=(const ServerOptions&) = default;
ServerOptions& ServerOptions::operator=(ServerOptions&&) = default;
ServerOptions::~ServerOptions() = default;

ServerOptions ServerOptions::normalized() const {
  ServerOptions n = *this;
  const ServerOptions defaults;
  // An alias left at its default is treated as unset (group field wins);
  // a changed alias overrides the group. Group and alias defaults are
  // identical, so explicitly re-setting an alias to the default is a
  // no-op either way.
  if (use_plan_cache != defaults.use_plan_cache) {
    n.caches.use_plan_cache = use_plan_cache;
  }
  if (use_conversion_cache != defaults.use_conversion_cache) {
    n.caches.use_conversion_cache = use_conversion_cache;
  }
  if (!(plan_cache_limits == defaults.plan_cache_limits)) {
    n.caches.plan_limits = plan_cache_limits;
  }
  if (!(conversion_cache_limits == defaults.conversion_cache_limits)) {
    n.caches.conversion_limits = conversion_cache_limits;
  }
  if (batching != defaults.batching) n.batch.policy = batching;
  if (batch_window != defaults.batch_window) n.batch.window = batch_window;
  if (use_arena != defaults.use_arena) n.arena.enabled = use_arena;
  if (arena_max_cached_bytes != defaults.arena_max_cached_bytes) {
    n.arena.max_cached_bytes = arena_max_cached_bytes;
  }
  return n;
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

// Repair a SAGE (ACFa, ACFb) pair to the nearest pair the exec engine runs
// natively, mirroring the engine's own fallback order (keep A, densify B;
// then CSR-ify A, keep B; then CSR x Dense). The conversion cache then
// materializes exactly what will execute, so serving never pays the
// engine's per-call conversion fallback.
void repair_pair(Format& ra, Format& rb) {
  if (exec::has_native_pair(ra, rb)) return;
  if (exec::has_native_pair(ra, Format::kDense)) {
    rb = Format::kDense;
  } else if (exec::has_native_pair(Format::kCSR, rb)) {
    ra = Format::kCSR;
  } else {
    ra = Format::kCSR;
    rb = Format::kDense;
  }
}

Format repair_single(Kernel k, Format acf) {
  return exec::has_native(k, acf) ? acf : exec::fallback_format(k);
}

// Plan-fingerprint label for the per-plan latency accumulators
// (mt_plan_exec_ns{plan="<hex>"}).
std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const CooMatrix& as_coo(const AnyMatrix& m) {
  const auto* coo = std::get_if<CooMatrix>(&m);
  MT_ENSURE(coo != nullptr, "SAGE input representation must be COO");
  return *coo;
}

const CooTensor3& as_coo(const AnyTensor& t) {
  const auto* coo = std::get_if<CooTensor3>(&t);
  MT_ENSURE(coo != nullptr, "SAGE input representation must be COO");
  return *coo;
}

// Process-wide kernel-thread budget shared by every live multi-worker
// server and every ShardedServer shard (single-worker shards join via
// ServerOptions::shard_member): the cap is hardware / (total workers
// across servers), so the "workers x kernel width never oversubscribes"
// invariant holds even with overlapping Server lifetimes. The pre-cap
// override is saved once and restored when the last capping server stops.
class ThreadCapRegistry {
 public:
  void acquire(int workers) MT_EXCLUDES(mu_) {
    LockGuard lk(mu_);
    if (servers_ == 0) {
      saved_override_ = num_threads_override();
      baseline_ = num_threads();
    }
    ++servers_;
    total_workers_ += workers;
    apply();
  }

  void release(int workers) MT_EXCLUDES(mu_) {
    LockGuard lk(mu_);
    --servers_;
    total_workers_ -= workers;
    if (servers_ == 0) {
      set_num_threads(saved_override_);
    } else {
      apply();
    }
  }

  static ThreadCapRegistry& instance() {
    static ThreadCapRegistry r;
    return r;
  }

 private:
  void apply() MT_REQUIRES(mu_) {
    const int cap = std::max(1, hardware_threads() / total_workers_);
    set_num_threads(std::min(cap, baseline_));
  }

  Mutex mu_;
  int servers_ MT_GUARDED_BY(mu_) = 0;
  int total_workers_ MT_GUARDED_BY(mu_) = 0;
  int saved_override_ MT_GUARDED_BY(mu_) = 0;
  int baseline_ MT_GUARDED_BY(mu_) = 1;  // solo kernel width before any cap
};

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts.normalized()),
      accel_(opts_.accel),
      energy_(opts_.energy),
      fingerprint_(plan_fingerprint(opts_.accel, opts_.energy)),
      arena_(opts_.arena.enabled
                 ? std::make_shared<Arena>(opts_.arena.max_cached_bytes)
                 : nullptr),
      trace_ring_(opts_.obs.trace_ring_capacity),
      plans_(opts_.caches.plan_limits),
      reps_(opts_.caches.conversion_limits),
      counters_(registry_),
      queue_(opts_.queue_capacity) {
  MT_REQUIRE(opts_.num_workers >= 1, "server needs at least one worker");
  MT_REQUIRE(opts_.batch.window >= 1, "batch window must be at least 1");
  cpu_backend_ = exec::make_backend(exec::BackendKind::kCpu);
  if (opts_.backend.backend != exec::BackendKind::kCpu) {
    exec::MintBackendOptions mo;
    mo.simulate_latency = opts_.backend.simulate_latency;
    mo.max_simulated_latency_ns = opts_.backend.max_simulated_latency_ns;
    device_backend_ = exec::make_backend(opts_.backend.backend, mo);
    if (opts_.backend.async) {
      exec::RingOptions ro;
      ro.slots = opts_.backend.ring_slots;
      ro.workers = opts_.backend.ring_workers;
      ring_ = std::make_unique<exec::DeviceRing>(*device_backend_, ro);
    }
  } else {
    MT_REQUIRE(!opts_.backend.async && !opts_.backend.dual_run,
               "async submission and dual-run need a device backend");
    MT_REQUIRE(opts_.backend.policy == BackendPolicy::kForce,
               "auto backend routing needs a device backend to route to");
  }
  if (opts_.obs.metrics) {
    queue_wait_hist_ = &registry_.histogram("mt_serve_queue_wait_ns");
  }
  if (opts_.cap_kernel_threads &&
      (opts_.num_workers > 1 || opts_.shard_member)) {
    ThreadCapRegistry::instance().acquire(opts_.num_workers);
    capped_threads_ = true;
  }
  workers_.reserve(static_cast<std::size_t>(opts_.num_workers));
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

// NOLINTNEXTLINE(bugprone-exception-escape): stop() only closes the queue
// and joins workers; neither path throws in practice, and a destructor
// that deadlocked instead of joining would be strictly worse.
Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers claim every ticket they submitted before exiting, so by here
  // the ring is idle; stop it after the joins so no claim ever races a
  // drained ring.
  if (ring_ != nullptr) ring_->stop();
  if (capped_threads_) ThreadCapRegistry::instance().release(opts_.num_workers);
}

// --- Registry ---

MatrixHandle Server::register_matrix(AnyMatrix m) {
  return adopt_matrix(std::make_shared<const AnyMatrix>(std::move(m)));
}

MatrixHandle Server::adopt_matrix(ConversionCache::MatrixPtr m) {
  MT_REQUIRE(m != nullptr, "cannot adopt a null matrix representation");
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  LockGuard lk(reg_mu_);
  matrices_.emplace(id, std::move(m));
  return {id};
}

ConversionCache::MatrixPtr Server::matrix_source(MatrixHandle h) const {
  MT_REQUIRE(h.valid(), "handle names no matrix operand");
  return matrix_src(h.id);
}

TensorHandle Server::register_tensor(AnyTensor t) {
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto rep = std::make_shared<const AnyTensor>(std::move(t));
  LockGuard lk(reg_mu_);
  tensors_.emplace(id, std::move(rep));
  return {id};
}

void Server::evict(MatrixHandle h) {
  {
    LockGuard lk(reg_mu_);
    matrices_.erase(h.id);
  }
  reps_.evict(h.id);
  plans_.evict_operand(h.id);
}

void Server::evict(TensorHandle h) {
  {
    LockGuard lk(reg_mu_);
    tensors_.erase(h.id);
  }
  reps_.evict(h.id);
  plans_.evict_operand(h.id);
}

ConversionCache::MatrixPtr Server::matrix_src(std::uint64_t id) const {
  SharedLock lk(reg_mu_);
  auto it = matrices_.find(id);
  MT_REQUIRE(it != matrices_.end(), "unknown or evicted matrix handle");
  return it->second;
}

ConversionCache::TensorPtr Server::tensor_src(std::uint64_t id) const {
  SharedLock lk(reg_mu_);
  auto it = tensors_.find(id);
  MT_REQUIRE(it != tensors_.end(), "unknown or evicted tensor handle");
  return it->second;
}

bool Server::operand_registered(std::uint64_t id) const {
  SharedLock lk(reg_mu_);
  return matrices_.contains(id) || tensors_.contains(id);
}

// --- Representation resolution ---

ConversionCache::MatrixPtr Server::matrix_rep(MatrixHandle h, Format f,
                                              ServeStats& s) {
  MT_REQUIRE(h.valid(), "request names no matrix operand");
  auto src = matrix_src(h.id);
  if (!opts_.caches.use_conversion_cache) {
    if (format_of(*src) == f) {
      // Identity needs no conversion even with the cache bypassed.
      ++s.conversion_hits;
      return src;
    }
    ++s.conversion_misses;
    return std::make_shared<const AnyMatrix>(convert(*src, f));
  }
  bool hit = false;
  auto rep = reps_.matrix(h.id, f, src, &hit);
  ++(hit ? s.conversion_hits : s.conversion_misses);
  // evict() may have purged the caches between our registry lookup and the
  // insert above; ids are never reused, so re-purge rather than leak an
  // unreachable entry. (evict erases the registry before purging, so if
  // the id is still registered here, its purge cannot have missed us.)
  if (!hit && !operand_registered(h.id)) reps_.evict(h.id);
  return rep;
}

ConversionCache::TensorPtr Server::tensor_rep(TensorHandle h, Format f,
                                              ServeStats& s) {
  MT_REQUIRE(h.valid(), "request names no tensor operand");
  auto src = tensor_src(h.id);
  if (!opts_.caches.use_conversion_cache) {
    if (format_of(*src) == f) {
      ++s.conversion_hits;
      return src;
    }
    ++s.conversion_misses;
    return std::make_shared<const AnyTensor>(convert(*src, f));
  }
  bool hit = false;
  auto rep = reps_.tensor(h.id, f, src, &hit);
  ++(hit ? s.conversion_hits : s.conversion_misses);
  if (!hit && !operand_registered(h.id)) reps_.evict(h.id);
  return rep;
}

// --- Model lifecycle ---

RetireCounts Server::update_model(const AccelConfig& accel,
                                  const EnergyParams& energy) {
  std::uint64_t old = 0;
  {
    LockGuard lk(model_mu_);
    const auto next = plan_fingerprint(accel, energy);
    if (next == fingerprint_) return {};  // same model: nothing to retire
    old = fingerprint_;
    accel_ = accel;
    energy_ = energy;
    fingerprint_ = next;
  }
  // Device-backend plans for the old fingerprint can never be hit again
  // (the fingerprint is part of their key); reclaim them instead of
  // leaking dead entries. CPU-backend plans are keyed on kHostModel and
  // survive — their pricing never read the device model.
  return plans_.retire(old);
}

RetireCounts Server::retire_plans(std::uint64_t model_fingerprint) {
  return plans_.retire(model_fingerprint);
}

std::uint64_t Server::model_fingerprint() const {
  SharedLock lk(model_mu_);
  return fingerprint_;
}

Server::ModelSnapshot Server::model_snapshot() const {
  SharedLock lk(model_mu_);
  return {accel_, energy_, fingerprint_};
}

// --- Planning ---

exec::BackendKind Server::route_backend(const Request& r,
                                        const ModelSnapshot& model) const {
  if (device_backend_ == nullptr) return exec::BackendKind::kCpu;
  if (opts_.backend.policy == BackendPolicy::kForce) {
    return opts_.backend.backend;
  }
  // kAuto: the cheaper priced envelope wins. Pricing on the flops
  // estimate alone (no SAGE CostBreakdown — none exists before the
  // search) keeps routing O(1); the device's fixed offload overhead
  // (e.g. MintBackend's PCIe latency floor) is what sends small
  // workloads to the host.
  exec::PricingInput pin;
  pin.kernel = r.kernel;
  pin.flops = flops_for(r);
  pin.accel = &model.accel;
  pin.energy = &model.energy;
  const double host_ns = cpu_backend_->price(pin).ns;
  const double device_ns = device_backend_->price(pin).ns;
  return device_ns < host_ns ? opts_.backend.backend
                             : exec::BackendKind::kCpu;
}

PlanKey Server::key_for(const Request& r, const ModelSnapshot& model) const {
  PlanKey k;
  k.kernel = r.kernel;
  k.backend = route_backend(r, model);
  // CPU-backend plans are model-independent (CpuBackend::price never
  // reads the device AccelConfig/EnergyParams), so they key on the
  // kHostModel sentinel: a device-model swap retires none of them.
  k.model = k.backend == exec::BackendKind::kCpu ? kHostModel
                                                 : model.fingerprint;
  if (is_tensor_kernel(r.kernel)) {
    k.a = r.x.id;
    k.width = r.dense_b.cols();
  } else {
    k.a = r.a.id;
    k.b = r.b.id;
    switch (r.kernel) {
      case Kernel::kSpMV: k.width = 1; break;
      case Kernel::kGemm:
      case Kernel::kSpMM:
        k.width = r.b.valid() ? 0 : r.dense_b.cols();
        break;
      default: break;
    }
  }
  return k;
}

PlanCache::PlanPtr Server::compute_plan(const Request& r, ServeStats& s,
                                        const ModelSnapshot& model) {
  const AccelConfig& accel = model.accel;
  const EnergyParams& energy = model.energy;
  // One key per computation: the routing decision, the cached entry, and
  // the latency-accumulator label all see the same backend and model.
  const PlanKey key = key_for(r, model);
  auto plan = std::make_shared<Plan>();
  plan->kernel = r.kernel;
  plan->backend = key.backend;
  switch (r.kernel) {
    case Kernel::kGemm:
      // Dense x Dense is the only native GEMM; no search needed.
      plan->run_a = plan->run_b = Format::kDense;
      break;
    case Kernel::kSpMV: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      plan->choice = sage_select_spmm_dense_b(as_coo(*a), 1, accel,
                                              energy);
      plan->run_a = repair_single(Kernel::kSpMV, plan->choice.acf_a);
      break;
    }
    case Kernel::kSpMM: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      if (r.b.valid()) {
        const auto b = matrix_rep(r.b, Format::kCOO, s);
        plan->choice = sage_select_matmul(as_coo(*a), as_coo(*b), accel,
                                          energy);
        plan->run_a = plan->choice.acf_a;
        plan->run_b = plan->choice.acf_b;
        repair_pair(plan->run_a, plan->run_b);
      } else {
        plan->choice = sage_select_spmm_dense_b(
            as_coo(*a), r.dense_b.cols(), accel, energy);
        plan->run_a = repair_single(Kernel::kSpMM, plan->choice.acf_a);
        // The factor arrives dense in the request body and is consumed
        // dense; only registered operands go through the conversion cache.
        plan->run_b = Format::kDense;
      }
      break;
    }
    case Kernel::kSpGEMM: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      const auto b = matrix_rep(r.b, Format::kCOO, s);
      // Priced for the stats/describe; the engine's native SpGEMM pair is
      // CSR x CSR, so that is what the server executes and caches.
      plan->choice = sage_select_matmul(as_coo(*a), as_coo(*b), accel,
                                        energy);
      plan->run_a = plan->run_b = Format::kCSR;
      break;
    }
    case Kernel::kSpTTM:
    case Kernel::kMTTKRP: {
      const auto x = tensor_rep(r.x, Format::kCOO, s);
      plan->tensor_choice =
          sage_select_tensor(as_coo(*x), r.dense_b.cols(), r.kernel,
                             accel, energy);
      plan->run_a = repair_single(r.kernel, plan->tensor_choice.acf_t);
      break;
    }
  }
  // The backend dimension: price the workload on the host and (when one
  // is configured) the device, and stamp which substrate executes it.
  // The SAGE CostBreakdown of the winning combination — where a search
  // ran — is the device envelope; plain GEMM prices on the MAC estimate.
  {
    exec::PricingInput pin;
    pin.kernel = r.kernel;
    pin.flops = flops_for(r);
    if (is_tensor_kernel(r.kernel)) {
      pin.sage_cost = &plan->tensor_choice.cost;
    } else if (r.kernel != Kernel::kGemm) {
      pin.sage_cost = &plan->choice.cost;
    }
    pin.accel = &accel;
    pin.energy = &energy;
    plan->cpu_cost_ns = cpu_backend_->price(pin).ns;
    if (device_backend_ != nullptr) {
      plan->device_cost_ns = device_backend_->price(pin).ns;
      plan->modeled_device_ns =
          static_cast<std::int64_t>(std::llround(plan->device_cost_ns));
    }
  }
  if (opts_.obs.metrics) {
    // Per-plan latency accumulator, labeled by the plan key's fingerprint.
    // Re-deriving an evicted plan rebinds the same histogram, so a plan's
    // measured distribution survives cache churn — exactly what the
    // adaptive planner wants to learn from.
    const auto fp = static_cast<std::uint64_t>(PlanKeyHash{}(key));
    plan->latency = &registry_.histogram("mt_plan_exec_ns{plan=\"" +
                                         hex64(fp) + "\"}");
  }
  return plan;
}

PlanCache::PlanPtr Server::resolve_plan(const Request& r, ServeStats& s) {
  const auto t0 = now_ns();
  // One snapshot per request: the key's fingerprint and the searched
  // model always agree, even when update_model() lands mid-request.
  const ModelSnapshot model = model_snapshot();
  PlanCache::PlanPtr plan;
  if (!opts_.caches.use_plan_cache) {
    s.plan_cache_hit = false;
    plan = compute_plan(r, s, model);
  } else {
    const PlanKey key = key_for(r, model);
    bool hit = false;
    plan = plans_.get_or_compute(
        key, [&] { return compute_plan(r, s, model); }, &hit);
    s.plan_cache_hit = hit;
    // Same evict race as in matrix_rep/tensor_rep: un-publish a plan
    // inserted for an operand that was concurrently evicted, or under a
    // fingerprint that update_model() concurrently retired (the entry is
    // internally consistent either way — key and pricing share one
    // snapshot — this is memory hygiene, not correctness).
    if (!hit) {
      if (key.a != 0 && !operand_registered(key.a)) {
        plans_.evict_operand(key.a);
      }
      if (key.b != 0 && !operand_registered(key.b)) {
        plans_.evict_operand(key.b);
      }
      // kHostModel-keyed (CPU) plans are never stale: no model swap can
      // invalidate them, so only device-fingerprint keys get the check.
      if (key.model != kHostModel && key.model != model_fingerprint()) {
        plans_.retire(key.model);
      }
    }
  }
  s.plan_ns = now_ns() - t0;
  return plan;
}

PlanCache::PlanPtr Server::plan_for(const Request& r) {
  ServeStats scratch;
  return resolve_plan(r, scratch);
}

// --- Serving ---

std::future<Response> Server::submit(Request r) {
  Item item;
  item.req = std::move(r);
  if (item.req.trace_id == 0 && trace_ring_.capacity() > 0) {
    item.req.trace_id = trace_ids_.next();
  }
  item.enqueue_ns = now_ns();
  auto fut = item.promise.get_future();
  if (!queue_.push(std::move(item))) {
    // push() returning false leaves the moved-from argument untouched
    // (the queue was closed before any mutation), so the promise is
    // still ours to fail.
    // NOLINTNEXTLINE(bugprone-use-after-move)
    item.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("server is stopped; request rejected")));
  }
  return fut;
}

Response Server::serve(Request& req, std::int64_t queue_wait_ns) {
  Response resp;
  resp.stats.queue_wait_ns = queue_wait_ns;
  resp.stats.trace_id = req.trace_id;
  const auto plan = resolve_plan(req, resp.stats);
  execute_plan(req, plan, resp);
  return resp;
}

// Conversion + kernel execution under an already-resolved plan; fills
// resp.result and the convert/exec sections of resp.stats. The blocking
// path: one Backend::run on the calling worker (the async path is
// serve_window_async).
void Server::execute_plan(Request& req, const PlanCache::PlanPtr& plan,
                          Response& resp) {
  ServeStats& s = resp.stats;
  const auto t_conv = now_ns();
  ConversionCache::MatrixPtr rep_a, rep_b;
  ConversionCache::TensorPtr rep_x;
  if (is_tensor_kernel(req.kernel)) {
    rep_x = tensor_rep(req.x, plan->run_a, s);
  } else {
    rep_a = matrix_rep(req.a, plan->run_a, s);
    if (req.b.valid()) rep_b = matrix_rep(req.b, plan->run_b, s);
  }
  s.convert_ns = now_ns() - t_conv;

  const bool on_device =
      device_backend_ != nullptr && plan->backend != exec::BackendKind::kCpu;
  JobBundle jb;
  fill_job(jb, req, *plan, rep_a.get(), rep_b.get(), rep_x.get(), on_device);
  // The snapshot must outlive run(): SimBackend reads the config while
  // executing, and a concurrent update_model() may swap the live one.
  const ModelSnapshot model = model_snapshot();
  jb.job.accel = &model.accel;
  jb.job.energy = &model.energy;

  const auto t_exec = now_ns();
  exec::JobResult jr =
      on_device ? device_backend_->run(jb.job) : cpu_backend_->run(jb.job);
  if (on_device && opts_.backend.dual_run) dual_run_check(jb.job, jr);
  s.dispatch = jr.dispatch;
  s.device_ns = jr.device_ns;
  if (jb.unstack) {
    resp.result = exec::column_of(std::get<DenseMatrix>(jr.output), 0);
  } else {
    resp.result = std::move(jr.output);
  }
  s.exec_ns = now_ns() - t_exec;
  if (plan->latency != nullptr) plan->latency->record(s.exec_ns);
  if (auto* h = exec_hist(s.dispatch)) h->record(s.exec_ns);
}

void Server::fill_job(JobBundle& jb, const Request& req, const Plan& plan,
                      const AnyMatrix* rep_a, const AnyMatrix* rep_b,
                      const AnyTensor* rep_x, bool device) const {
  exec::Job& job = jb.job;
  job.kernel = req.kernel;
  job.alloc = dense_alloc();
  job.modeled_ns = plan.modeled_device_ns;
  switch (req.kernel) {
    case Kernel::kSpMV:
      if (!device && coalescible_spmv_format(plan.run_a) &&
          exec::has_native(Kernel::kSpMM, plan.run_a)) {
        // CPU backend only: coalescible plans serve through the SpMM twin
        // as a width-1 column stack — exactly the coalesced path with one
        // member — so response bits never depend on batch timing, in
        // every kernel tier. (The SIMD SpMV row kernel reduces 8 lanes in
        // a tree and would otherwise round differently from the twin.)
        // Device backends take the SpMV job as-is: fusion is disabled on
        // the device path, so there is no batch-timing bit contract to
        // keep, and the sim lowers SpMV to a k x 1 matmul anyway.
        jb.staged_b = exec::stack_columns({&req.vec}, job.alloc);
        jb.unstack = true;
        job.kernel = Kernel::kSpMM;
        job.a = rep_a;
        job.dense_b = &jb.staged_b;
      } else {
        job.a = rep_a;
        job.vec = &req.vec;
      }
      break;
    case Kernel::kGemm:
    case Kernel::kSpMM:
      job.a = rep_a;
      if (rep_b != nullptr) {
        job.b = rep_b;
      } else {
        job.dense_b = &req.dense_b;
      }
      break;
    case Kernel::kSpGEMM:
      MT_REQUIRE(rep_b != nullptr, "SpGEMM needs two registered operands");
      job.a = rep_a;
      job.b = rep_b;
      break;
    case Kernel::kSpTTM:
      job.x = rep_x;
      job.dense_b = &req.dense_b;
      break;
    case Kernel::kMTTKRP:
      job.x = rep_x;
      job.dense_b = &req.dense_b;
      job.dense_c = &req.dense_c;
      break;
  }
}

void Server::dual_run_check(const exec::Job& job,
                            const exec::JobResult& device) {
  const exec::JobResult host = cpu_backend_->run(job);
  const double err = exec::max_rel_error(host.output, device.output);
  const bool ok = err <= opts_.backend.dual_run_tolerance;
  counters_.record_dual_run(ok);
  if (!ok) {
    throw std::runtime_error(
        "dual-run mismatch: device output diverges from the host kernels "
        "(max relative error " +
        std::to_string(err) + ")");
  }
}

std::int64_t Server::flops_for(const Request& r) const {
  switch (r.kernel) {
    case Kernel::kSpMV:
      return 2 * nnz_of(*matrix_src(r.a.id));
    case Kernel::kGemm:
    case Kernel::kSpMM: {
      const auto a = matrix_src(r.a.id);
      const auto width = static_cast<std::int64_t>(
          r.b.valid() ? cols_of(*matrix_src(r.b.id)) : r.dense_b.cols());
      return 2 * nnz_of(*a) * width;
    }
    case Kernel::kSpGEMM: {
      const auto a = matrix_src(r.a.id);
      const auto b = matrix_src(r.b.id);
      // Expected MACs of the product: nnz(A) times B's average row fill.
      const auto rows_b =
          std::max<std::int64_t>(1, static_cast<std::int64_t>(rows_of(*b)));
      return 2 * nnz_of(*a) *
             std::max<std::int64_t>(1, nnz_of(*b) / rows_b);
    }
    case Kernel::kSpTTM:
    case Kernel::kMTTKRP:
      return 2 * nnz_of(*tensor_src(r.x.id)) *
             static_cast<std::int64_t>(r.dense_b.cols());
  }
  return 0;
}

// --- Batched serving (runtime/batcher.hpp) ---

void Server::worker_loop() {
  std::vector<Item> window;
  while (auto item = queue_.pop()) {
    window.clear();
    window.push_back(std::move(*item));
    if (opts_.batch.policy == BatchPolicy::kWindow && opts_.batch.window > 1) {
      // Extend the window with whatever is already queued — never wait
      // for more traffic; an idle queue means a window of one.
      queue_.try_pop_n(window,
                       static_cast<std::size_t>(opts_.batch.window - 1));
    }
    serve_window(window);
  }
}

void Server::serve_window(std::vector<Item>& window) {
  if (device_backend_ != nullptr) {
    // Device-capable path: plans route per request (kForce sends every
    // request to the device, kAuto splits by priced envelope), grouping
    // keys on the routed backend so no group crosses a substrate, and
    // ring-routed jobs submit as one batch.
    serve_window_device(window);
    return;
  }
  if (window.size() == 1) {
    serve_one(window.front());
    return;
  }
  std::vector<BatchItem> meta;
  meta.reserve(window.size());
  for (const auto& it : window) meta.push_back(batch_item_for(it.req));
  for (const auto& group : form_batches(meta)) {
    if (group.fused && group.members.size() > 1) {
      serve_fused(window, group.members);
    } else {
      for (const auto i : group.members) serve_one(window[i]);
    }
  }
}

void Server::serve_one(Item& item) {
  const auto start = now_ns();
  try {
    // Queue wait runs until this request's group actually starts, so time
    // spent parked behind earlier groups of the same drained window is
    // charged to latency, not hidden.
    Response resp = serve(item.req, start - item.enqueue_ns);
    if (queue_wait_hist_ != nullptr) {
      queue_wait_hist_->record(resp.stats.queue_wait_ns);
    }
    record_trace(item.enqueue_ns, start, resp.stats);
    counters_.record(resp.stats);
    item.promise.set_value(std::move(resp));
  } catch (...) {
    counters_.record_failure();
    item.promise.set_exception(std::current_exception());
  }
}

void Server::serve_window_device(std::vector<Item>& window) {
  // Per-request serving state. `pending` is sized once up front, so the
  // submitted jobs' operand/model pointers (which point into their
  // Pending) stay stable for the whole window.
  struct Pending {
    Item* item = nullptr;
    ServeStats stats;
    PlanCache::PlanPtr plan;
    ConversionCache::MatrixPtr rep_a, rep_b;
    ConversionCache::TensorPtr rep_x;
    JobBundle bundle;
    ModelSnapshot model;
    exec::DeviceRing::Ticket ticket = exec::DeviceRing::kInvalidTicket;
    std::int64_t start_ns = 0;
    bool failed = false;  // promise already completed with an exception
    bool on_ring = false;
  };
  std::vector<Pending> pending(window.size());

  const auto fail = [this](Pending& p) {
    counters_.record_failure();
    p.item->promise.set_exception(std::current_exception());
    p.failed = true;
  };

  // Phase 1 — resolve every request's plan; the plan's backend is the
  // request's route. Queue wait ends here for every member of the window.
  for (std::size_t i = 0; i < window.size(); ++i) {
    Pending& p = pending[i];
    p.item = &window[i];
    p.start_ns = now_ns();
    p.stats.queue_wait_ns = p.start_ns - window[i].enqueue_ns;
    p.stats.trace_id = window[i].req.trace_id;
    try {
      p.plan = resolve_plan(window[i].req, p.stats);
    } catch (...) {
      fail(p);
    }
  }

  // Phase 2 — group with the backend-aware fuse key. Device-routed
  // requests never fuse (fusion's gather/scatter twin is a host-kernel
  // bit contract), so they land in singleton groups; CPU-routed requests
  // keep the full coalescing behavior of the CPU-only path. Failed
  // requests keep their default (unfusible) meta and are skipped below.
  std::vector<BatchItem> meta(window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    const Pending& p = pending[i];
    if (p.failed) continue;
    meta[i] = batch_item_for(window[i].req);
    meta[i].backend = p.plan->backend;
    if (meta[i].backend != exec::BackendKind::kCpu) meta[i].fusible = false;
  }
  const auto groups = form_batches(meta);

  // Phase 3 — prepare every ring-routed job and submit the lot as ONE
  // batched ring submission (the queue lock is taken per drained window,
  // not per job). All submits happen before any claim or CPU-group
  // execution, so one worker keeps up to window-size device jobs in
  // flight; the ring counts only queued descriptors against its slot
  // bound, so submit-all-then-claim-all can never deadlock.
  if (ring_ != nullptr) {
    std::vector<std::size_t> ring_members;
    std::vector<exec::Job> jobs;
    ring_members.reserve(window.size());
    jobs.reserve(window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      Pending& p = pending[i];
      if (p.failed || p.plan->backend == exec::BackendKind::kCpu) continue;
      try {
        Item& item = window[i];
        const auto t_conv = now_ns();
        if (is_tensor_kernel(item.req.kernel)) {
          p.rep_x = tensor_rep(item.req.x, p.plan->run_a, p.stats);
        } else {
          p.rep_a = matrix_rep(item.req.a, p.plan->run_a, p.stats);
          if (item.req.b.valid()) {
            p.rep_b = matrix_rep(item.req.b, p.plan->run_b, p.stats);
          }
        }
        p.stats.convert_ns = now_ns() - t_conv;
        p.model = model_snapshot();
        fill_job(p.bundle, item.req, *p.plan, p.rep_a.get(), p.rep_b.get(),
                 p.rep_x.get(), /*device=*/true);
        p.bundle.job.accel = &p.model.accel;
        p.bundle.job.energy = &p.model.energy;
        p.on_ring = true;
        ring_members.push_back(i);
        jobs.push_back(p.bundle.job);
      } catch (...) {
        fail(p);
      }
    }
    const auto tickets = ring_->submit_all(std::move(jobs));
    for (std::size_t j = 0; j < ring_members.size(); ++j) {
      pending[ring_members[j]].ticket = tickets[j];
    }
  }

  // Phase 4 — complete groups in first-arrival order, which preserves
  // per-handle FIFO completion across the CPU/device split. Ring tickets
  // are claimed in submission order; CPU groups execute on this worker
  // while the device side is still chewing. Operands (reps, request
  // payloads, model snapshots) stay alive in `pending`/`window` until
  // each ticket is claimed — the ring's lifetime contract.
  const auto claim_ring = [&](Pending& p) {
    try {
      if (p.ticket == exec::DeviceRing::kInvalidTicket) {
        throw std::runtime_error(
            "server is stopping; device ring rejected the job");
      }
      const auto t_wait = now_ns();
      exec::JobResult jr = ring_->wait(p.ticket);
      p.stats.device_wait_ns = now_ns() - t_wait;
      if (opts_.backend.dual_run) dual_run_check(p.bundle.job, jr);
      Response resp;
      resp.stats = p.stats;
      ServeStats& s = resp.stats;
      s.dispatch = jr.dispatch;
      s.device_ns = jr.device_ns;
      s.exec_ns = jr.run_ns;  // device-side wall time of this job
      resp.result = std::move(jr.output);
      if (p.plan->latency != nullptr) p.plan->latency->record(s.exec_ns);
      if (auto* h = exec_hist(s.dispatch)) h->record(s.exec_ns);
      if (queue_wait_hist_ != nullptr) {
        queue_wait_hist_->record(s.queue_wait_ns);
      }
      record_trace(p.item->enqueue_ns, p.start_ns, s);
      counters_.record(s);
      p.item->promise.set_value(std::move(resp));
    } catch (...) {
      fail(p);
    }
  };
  // Blocking completion for CPU-routed singles and (no ring) device jobs:
  // execute under the phase-1 plan on this worker, keeping the phase-1
  // stats (queue wait, plan time).
  const auto finish_blocking = [&](Pending& p) {
    try {
      Response resp;
      resp.stats = p.stats;
      execute_plan(p.item->req, p.plan, resp);
      if (queue_wait_hist_ != nullptr) {
        queue_wait_hist_->record(resp.stats.queue_wait_ns);
      }
      record_trace(p.item->enqueue_ns, p.start_ns, resp.stats);
      counters_.record(resp.stats);
      p.item->promise.set_value(std::move(resp));
    } catch (...) {
      fail(p);
    }
  };
  for (const auto& group : groups) {
    std::vector<std::size_t> live;
    live.reserve(group.members.size());
    for (const auto i : group.members) {
      if (!pending[i].failed) live.push_back(i);
    }
    if (live.empty()) continue;
    Pending& lead = pending[live.front()];
    if (group.fused && live.size() > 1 &&
        lead.plan->backend == exec::BackendKind::kCpu) {
      serve_fused_exec(window, live, lead.plan, lead.stats, lead.start_ns);
      continue;
    }
    for (const auto i : live) {
      Pending& p = pending[i];
      if (p.on_ring) {
        claim_ring(p);
      } else {
        finish_blocking(p);
      }
    }
  }
}

void Server::record_trace(std::int64_t enqueue_ns, std::int64_t start_ns,
                          const ServeStats& s) {
  if (trace_ring_.capacity() == 0 || s.trace_id == 0) return;
  obs::TraceScope scope(&trace_ring_, &trace_ids_, s.trace_id);
  scope.add(obs::Stage::kQueue, enqueue_ns, start_ns);
  // The serve path runs plan -> convert -> exec back to back, so laying
  // the measured durations end to end reconstructs the real intervals.
  auto t = start_ns;
  scope.add(obs::Stage::kPlan, t, t + s.plan_ns);
  t += s.plan_ns;
  scope.add(obs::Stage::kConvert, t, t + s.convert_ns);
  t += s.convert_ns;
  scope.add(obs::Stage::kExec, t, t + s.exec_ns, 0, s.batch_size);
}

obs::Histogram* Server::exec_hist(const exec::Dispatch& d) {
  if (!opts_.obs.metrics) return nullptr;
  const auto k = static_cast<std::size_t>(d.kernel);
  const auto f = static_cast<std::size_t>(d.ran_a);
  const auto t = exec::tier_slot(d.backend, d.tier);
  auto& slot =
      exec_hists_[(k * kAllFormats.size() + f) * exec::kNumTierSlots + t];
  auto* h = slot.load(std::memory_order_acquire);
  if (h == nullptr) {
    // CPU runs keep the historical "scalar"/"avx2" label values; device
    // backends add "sim"/"mint" under the same label key, so existing
    // scrapes of mt_exec_ns series stay stable.
    std::string name = "mt_exec_ns{kernel=\"";
    name += name_of(d.kernel);
    name += "\",format=\"";
    name += name_of(d.ran_a);
    name += "\",tier=\"";
    name += exec::tier_label(d.backend, d.tier);
    name += "\"}";
    h = &registry_.histogram(name);
    slot.store(h, std::memory_order_release);
  }
  return h;
}

BatchItem Server::batch_item_for(const Request& r) const {
  BatchItem b;
  b.kernel = r.kernel;
  switch (r.kernel) {
    case Kernel::kSpMV:
      b.a = r.a.id;
      b.rows = static_cast<index_t>(r.vec.size());
      b.width = 1;
      b.fusible = true;
      break;
    case Kernel::kGemm:
    case Kernel::kSpMM:
      b.a = r.a.id;
      b.b = r.b.id;
      if (!r.b.valid()) {
        // Dense factors concatenate column-wise; registered-pair SpMM
        // has no dense payload to fuse and passes through.
        b.rows = r.dense_b.rows();
        b.width = r.dense_b.cols();
        b.fusible = true;
      }
      break;
    case Kernel::kSpGEMM:
      b.a = r.a.id;
      b.b = r.b.id;
      break;
    case Kernel::kSpTTM:
    case Kernel::kMTTKRP:
      b.x = r.x.id;
      break;
  }
  return b;
}

void Server::serve_fused(std::vector<Item>& window,
                         const std::vector<std::size_t>& members) {
  Item& lead = window[members.front()];
  const auto start = now_ns();  // group start: queue wait ends here
  ServeStats ls;  // leader stats: the group's plan/convert costs
  ls.queue_wait_ns = start - lead.enqueue_ns;
  ls.trace_id = lead.req.trace_id;
  PlanCache::PlanPtr plan;
  try {
    plan = resolve_plan(lead.req, ls);
  } catch (...) {
    // Resolution failure (unknown/evicted handle): the members share one
    // workload key, so each would have failed alone with the same error.
    const auto e = std::current_exception();
    for (const auto i : members) {
      counters_.record_failure();
      window[i].promise.set_exception(e);
    }
    return;
  }
  serve_fused_exec(window, members, plan, ls, start);
}

void Server::serve_fused_exec(std::vector<Item>& window,
                              const std::vector<std::size_t>& members,
                              const PlanCache::PlanPtr& plan,
                              const ServeStats& leader_stats,
                              std::int64_t start) {
  Item& lead = window[members.front()];
  const bool is_spmv = lead.req.kernel == Kernel::kSpMV;
  try {
    ServeStats ls = leader_stats;
    if (is_spmv && !(coalescible_spmv_format(plan->run_a) &&
                     exec::has_native(Kernel::kSpMM, plan->run_a))) {
      // No provably bit-identical SpMM twin for this plan's ACF: serve
      // the leader under the stats that already paid the resolution, then
      // the rest one by one (their resolutions hit the now-cached plan).
      Response resp;
      resp.stats = ls;
      execute_plan(lead.req, plan, resp);
      if (queue_wait_hist_ != nullptr) {
        queue_wait_hist_->record(resp.stats.queue_wait_ns);
      }
      record_trace(lead.enqueue_ns, start, resp.stats);
      counters_.record(resp.stats);
      lead.promise.set_value(std::move(resp));
      for (std::size_t j = 1; j < members.size(); ++j) {
        serve_one(window[members[j]]);
      }
      return;
    }
    const auto t_conv = now_ns();
    const auto rep_a = matrix_rep(lead.req.a, plan->run_a, ls);
    ls.convert_ns = now_ns() - t_conv;

    // Gather: one wide dense factor from the members' payloads.
    const index_t width = is_spmv ? 1 : lead.req.dense_b.cols();
    DenseMatrix fused_b;
    if (is_spmv) {
      std::vector<const std::vector<value_t>*> cols;
      cols.reserve(members.size());
      for (const auto i : members) cols.push_back(&window[i].req.vec);
      fused_b = exec::stack_columns(cols, dense_alloc());
    } else {
      std::vector<const DenseMatrix*> blocks;
      blocks.reserve(members.size());
      for (const auto i : members) blocks.push_back(&window[i].req.dense_b);
      fused_b = exec::concat_columns(blocks, dense_alloc());
    }

    const auto t_exec = now_ns();
    exec::Dispatch dispatch;
    const DenseMatrix fused_c = exec::spmm(*rep_a, fused_b, &dispatch);
    const auto exec_end = now_ns();
    const auto exec_ns = exec_end - t_exec;
    // Histograms see the launch, not the members: one fused kernel is one
    // latency sample (the per-request counters still amortize below).
    if (plan->latency != nullptr) plan->latency->record(exec_ns);
    if (auto* eh = exec_hist(dispatch)) eh->record(exec_ns);

    // Scatter: build every response before completing any promise, so a
    // failure anywhere still fails the whole group uniformly.
    const int n = static_cast<int>(members.size());
    std::vector<Response> out(members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
      const Item& it = window[members[j]];
      Response& resp = out[j];
      ServeStats& s = resp.stats;
      if (j == 0) {
        s = ls;  // the leader carries the real plan/convert accounting
      } else {
        // Followers were absorbed by the leader's resolution — a cache
        // hit when the plan cache is on, a freeride (not a hit) when it
        // is bypassed, so bypass-mode counters still read zero hits.
        s.plan_cache_hit = opts_.caches.use_plan_cache;
      }
      s.queue_wait_ns = start - it.enqueue_ns;
      s.trace_id = it.req.trace_id;
      s.batched = true;
      s.batch_size = n;
      s.dispatch = dispatch;
      s.exec_ns = exec_ns / n;  // amortized slice: sums stay meaningful
      if (queue_wait_hist_ != nullptr) {
        queue_wait_hist_->record(s.queue_wait_ns);
      }
      const auto j_idx = static_cast<index_t>(j);
      if (is_spmv) {
        resp.result = exec::column_of(fused_c, j_idx);
      } else {
        resp.result = exec::column_block(fused_c, j_idx * width, width,
                                         dense_alloc());
      }
    }
    // Trace: plan/convert on the leader's trace, one group span covering
    // the fused launch, and per-member exec slices that exactly partition
    // the group interval (slice j is [t_exec + j*exec_ns/n,
    // t_exec + (j+1)*exec_ns/n)) and link to it via parent_span — each
    // member's slice lives on that member's own trace id, so following
    // any one request's trace leads to the launch it shared.
    if (trace_ring_.capacity() > 0 && lead.req.trace_id != 0) {
      obs::TraceScope scope(&trace_ring_, &trace_ids_, lead.req.trace_id);
      scope.add(obs::Stage::kPlan, start, start + ls.plan_ns);
      scope.add(obs::Stage::kConvert, start + ls.plan_ns,
                start + ls.plan_ns + ls.convert_ns);
      const auto group =
          scope.add(obs::Stage::kGroup, t_exec, exec_end, 0, n);
      for (std::size_t j = 0; j < members.size(); ++j) {
        const Item& it = window[members[j]];
        const auto jj = static_cast<std::int64_t>(j);
        scope.add_for(it.req.trace_id, obs::Stage::kQueue, it.enqueue_ns,
                      start);
        scope.add_for(it.req.trace_id, obs::Stage::kExec,
                      t_exec + jj * exec_ns / n,
                      t_exec + (jj + 1) * exec_ns / n, group, n);
      }
      scope.add(obs::Stage::kScatter, exec_end, now_ns(), 0, n);
    }
    // Count before completing any promise: a client that observes its
    // future ready must also observe the batch in the counters.
    counters_.record_batch(n);
    for (std::size_t j = 0; j < members.size(); ++j) {
      counters_.record(out[j].stats);
      window[members[j]].promise.set_value(std::move(out[j]));
    }
  } catch (...) {
    // Group-level failure (unknown/evicted handle, shape mismatch): the
    // members share one workload key, so each would have failed alone
    // with the same error.
    const auto e = std::current_exception();
    for (const auto i : members) {
      counters_.record_failure();
      window[i].promise.set_exception(e);
    }
  }
}

// --- Exposition ---

std::vector<obs::MetricSnapshot> Server::metrics_snapshot() const {
  auto snap = registry_.snapshot();
  // Pull-based series: levels owned by their structures (caches, arena,
  // queue), sampled only here so steady-state serving never maintains
  // them. Counters among them (hits, evictions) are monotone at the
  // source, so the exported series is monotone too.
  std::vector<obs::MetricSnapshot> pulled;
  const auto add = [&pulled](const char* name, std::int64_t v,
                             obs::MetricSnapshot::Kind kind) {
    obs::MetricSnapshot m;
    m.name = name;
    m.kind = kind;
    m.value = v;
    pulled.push_back(std::move(m));
  };
  const auto counter = [&add](const char* name, std::int64_t v) {
    add(name, v, obs::MetricSnapshot::Kind::kCounter);
  };
  const auto gauge = [&add](const char* name, std::int64_t v) {
    add(name, v, obs::MetricSnapshot::Kind::kGauge);
  };
  counter("mt_plan_cache_hits_total", plans_.hits());
  counter("mt_plan_cache_misses_total", plans_.misses());
  counter("mt_plan_cache_evictions_total", plans_.evictions());
  gauge("mt_plan_cache_entries", static_cast<std::int64_t>(plans_.size()));
  counter("mt_conversion_cache_hits_total", reps_.hits());
  counter("mt_conversion_cache_misses_total", reps_.misses());
  counter("mt_conversion_cache_evictions_total", reps_.evictions());
  gauge("mt_conversion_cache_entries",
        static_cast<std::int64_t>(reps_.size()));
  gauge("mt_conversion_cache_bytes",
        static_cast<std::int64_t>(reps_.bytes()));
  if (arena_ != nullptr) {
    const auto a = arena_->stats();
    counter("mt_arena_fresh_allocs_total",
            static_cast<std::int64_t>(a.fresh_allocs));
    counter("mt_arena_reuses_total", static_cast<std::int64_t>(a.reuses));
    gauge("mt_arena_cached_bytes",
          static_cast<std::int64_t>(a.cached_bytes));
    gauge("mt_arena_outstanding_blocks",
          static_cast<std::int64_t>(a.outstanding));
    gauge("mt_arena_budget_bytes",
          static_cast<std::int64_t>(arena_->max_cached_bytes()));
  }
  gauge("mt_queue_depth", static_cast<std::int64_t>(queue_.size()));
  gauge("mt_queue_capacity",
        static_cast<std::int64_t>(opts_.queue_capacity));
  gauge("mt_workers", opts_.num_workers);
  gauge("mt_kernel_threads", num_threads());
  counter("mt_trace_dropped_total", trace_ring_.dropped());
  gauge("mt_trace_buffered_spans",
        static_cast<std::int64_t>(trace_ring_.size()));
  if (ring_ != nullptr) {
    // Async device ring levels. mt_device_inflight_peak is the high-water
    // mark of submitted-but-uncompleted jobs — the series the ">1 in
    // flight per worker" acceptance reads.
    const auto rs = ring_->stats();
    gauge("mt_device_ring_slots", static_cast<std::int64_t>(ring_->slots()));
    gauge("mt_device_ring_workers", ring_->workers());
    gauge("mt_device_inflight", rs.in_flight);
    gauge("mt_device_inflight_peak", rs.peak_in_flight);
    counter("mt_device_jobs_submitted_total", rs.submitted);
    counter("mt_device_jobs_completed_total", rs.completed);
  }
  obs::merge_snapshots(snap, pulled);
  return snap;
}

std::string Server::metrics_text() const {
  return obs::metrics_text(metrics_snapshot());
}

std::string Server::metrics_json() const {
  return obs::metrics_json(metrics_snapshot());
}

}  // namespace mt::runtime
