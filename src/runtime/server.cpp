#include "runtime/server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/threads.hpp"
#include "sage/plan_key.hpp"

namespace mt::runtime {

namespace {

// Repair a SAGE (ACFa, ACFb) pair to the nearest pair the exec engine runs
// natively, mirroring the engine's own fallback order (keep A, densify B;
// then CSR-ify A, keep B; then CSR x Dense). The conversion cache then
// materializes exactly what will execute, so serving never pays the
// engine's per-call conversion fallback.
void repair_pair(Format& ra, Format& rb) {
  if (exec::has_native_pair(ra, rb)) return;
  if (exec::has_native_pair(ra, Format::kDense)) {
    rb = Format::kDense;
  } else if (exec::has_native_pair(Format::kCSR, rb)) {
    ra = Format::kCSR;
  } else {
    ra = Format::kCSR;
    rb = Format::kDense;
  }
}

Format repair_single(Kernel k, Format acf) {
  return exec::has_native(k, acf) ? acf : exec::fallback_format(k);
}

const CooMatrix& as_coo(const AnyMatrix& m) {
  const auto* coo = std::get_if<CooMatrix>(&m);
  MT_ENSURE(coo != nullptr, "SAGE input representation must be COO");
  return *coo;
}

const CooTensor3& as_coo(const AnyTensor& t) {
  const auto* coo = std::get_if<CooTensor3>(&t);
  MT_ENSURE(coo != nullptr, "SAGE input representation must be COO");
  return *coo;
}

// Process-wide kernel-thread budget shared by every live multi-worker
// server: the cap is hardware / (total workers across servers), so the
// "workers x kernel width never oversubscribes" invariant holds even with
// overlapping Server lifetimes (the sharded-servers direction in the
// ROADMAP). The pre-cap override is saved once and restored when the last
// capping server stops.
class ThreadCapRegistry {
 public:
  void acquire(int workers) {
    std::lock_guard lk(mu_);
    if (servers_ == 0) {
      saved_override_ = num_threads_override();
      baseline_ = num_threads();
    }
    ++servers_;
    total_workers_ += workers;
    apply();
  }

  void release(int workers) {
    std::lock_guard lk(mu_);
    --servers_;
    total_workers_ -= workers;
    if (servers_ == 0) {
      set_num_threads(saved_override_);
    } else {
      apply();
    }
  }

  static ThreadCapRegistry& instance() {
    static ThreadCapRegistry r;
    return r;
  }

 private:
  void apply() {
    const int cap = std::max(1, hardware_threads() / total_workers_);
    set_num_threads(std::min(cap, baseline_));
  }

  std::mutex mu_;
  int servers_ = 0;
  int total_workers_ = 0;
  int saved_override_ = 0;
  int baseline_ = 1;  // solo kernel width before any cap
};

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      fingerprint_(plan_fingerprint(opts_.accel, opts_.energy)),
      queue_(opts_.queue_capacity) {
  MT_REQUIRE(opts_.num_workers >= 1, "server needs at least one worker");
  if (opts_.cap_kernel_threads && opts_.num_workers > 1) {
    ThreadCapRegistry::instance().acquire(opts_.num_workers);
    capped_threads_ = true;
  }
  workers_.reserve(static_cast<std::size_t>(opts_.num_workers));
  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (capped_threads_) ThreadCapRegistry::instance().release(opts_.num_workers);
}

// --- Registry ---

MatrixHandle Server::register_matrix(AnyMatrix m) {
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto rep = std::make_shared<const AnyMatrix>(std::move(m));
  std::unique_lock lk(reg_mu_);
  matrices_.emplace(id, std::move(rep));
  return {id};
}

TensorHandle Server::register_tensor(AnyTensor t) {
  const auto id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto rep = std::make_shared<const AnyTensor>(std::move(t));
  std::unique_lock lk(reg_mu_);
  tensors_.emplace(id, std::move(rep));
  return {id};
}

void Server::evict(MatrixHandle h) {
  {
    std::unique_lock lk(reg_mu_);
    matrices_.erase(h.id);
  }
  reps_.evict(h.id);
  plans_.evict_operand(h.id);
}

void Server::evict(TensorHandle h) {
  {
    std::unique_lock lk(reg_mu_);
    tensors_.erase(h.id);
  }
  reps_.evict(h.id);
  plans_.evict_operand(h.id);
}

ConversionCache::MatrixPtr Server::matrix_src(std::uint64_t id) const {
  std::shared_lock lk(reg_mu_);
  auto it = matrices_.find(id);
  MT_REQUIRE(it != matrices_.end(), "unknown or evicted matrix handle");
  return it->second;
}

ConversionCache::TensorPtr Server::tensor_src(std::uint64_t id) const {
  std::shared_lock lk(reg_mu_);
  auto it = tensors_.find(id);
  MT_REQUIRE(it != tensors_.end(), "unknown or evicted tensor handle");
  return it->second;
}

bool Server::operand_registered(std::uint64_t id) const {
  std::shared_lock lk(reg_mu_);
  return matrices_.contains(id) || tensors_.contains(id);
}

// --- Representation resolution ---

ConversionCache::MatrixPtr Server::matrix_rep(MatrixHandle h, Format f,
                                              ServeStats& s) {
  MT_REQUIRE(h.valid(), "request names no matrix operand");
  auto src = matrix_src(h.id);
  if (!opts_.use_conversion_cache) {
    if (format_of(*src) == f) {
      // Identity needs no conversion even with the cache bypassed.
      ++s.conversion_hits;
      return src;
    }
    ++s.conversion_misses;
    return std::make_shared<const AnyMatrix>(convert(*src, f));
  }
  bool hit = false;
  auto rep = reps_.matrix(h.id, f, src, &hit);
  ++(hit ? s.conversion_hits : s.conversion_misses);
  // evict() may have purged the caches between our registry lookup and the
  // insert above; ids are never reused, so re-purge rather than leak an
  // unreachable entry. (evict erases the registry before purging, so if
  // the id is still registered here, its purge cannot have missed us.)
  if (!hit && !operand_registered(h.id)) reps_.evict(h.id);
  return rep;
}

ConversionCache::TensorPtr Server::tensor_rep(TensorHandle h, Format f,
                                              ServeStats& s) {
  MT_REQUIRE(h.valid(), "request names no tensor operand");
  auto src = tensor_src(h.id);
  if (!opts_.use_conversion_cache) {
    if (format_of(*src) == f) {
      ++s.conversion_hits;
      return src;
    }
    ++s.conversion_misses;
    return std::make_shared<const AnyTensor>(convert(*src, f));
  }
  bool hit = false;
  auto rep = reps_.tensor(h.id, f, src, &hit);
  ++(hit ? s.conversion_hits : s.conversion_misses);
  if (!hit && !operand_registered(h.id)) reps_.evict(h.id);
  return rep;
}

// --- Planning ---

PlanKey Server::key_for(const Request& r) const {
  PlanKey k;
  k.kernel = r.kernel;
  k.model = fingerprint_;
  if (is_tensor_kernel(r.kernel)) {
    k.a = r.x.id;
    k.width = r.dense_b.cols();
  } else {
    k.a = r.a.id;
    k.b = r.b.id;
    switch (r.kernel) {
      case Kernel::kSpMV: k.width = 1; break;
      case Kernel::kGemm:
      case Kernel::kSpMM:
        k.width = r.b.valid() ? 0 : r.dense_b.cols();
        break;
      default: break;
    }
  }
  return k;
}

PlanCache::PlanPtr Server::compute_plan(const Request& r, ServeStats& s) {
  auto plan = std::make_shared<Plan>();
  plan->kernel = r.kernel;
  switch (r.kernel) {
    case Kernel::kGemm:
      // Dense x Dense is the only native GEMM; no search needed.
      plan->run_a = plan->run_b = Format::kDense;
      break;
    case Kernel::kSpMV: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      plan->choice = sage_select_spmm_dense_b(as_coo(*a), 1, opts_.accel,
                                              opts_.energy);
      plan->run_a = repair_single(Kernel::kSpMV, plan->choice.acf_a);
      break;
    }
    case Kernel::kSpMM: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      if (r.b.valid()) {
        const auto b = matrix_rep(r.b, Format::kCOO, s);
        plan->choice = sage_select_matmul(as_coo(*a), as_coo(*b), opts_.accel,
                                          opts_.energy);
        plan->run_a = plan->choice.acf_a;
        plan->run_b = plan->choice.acf_b;
        repair_pair(plan->run_a, plan->run_b);
      } else {
        plan->choice = sage_select_spmm_dense_b(
            as_coo(*a), r.dense_b.cols(), opts_.accel, opts_.energy);
        plan->run_a = repair_single(Kernel::kSpMM, plan->choice.acf_a);
        // The factor arrives dense in the request body and is consumed
        // dense; only registered operands go through the conversion cache.
        plan->run_b = Format::kDense;
      }
      break;
    }
    case Kernel::kSpGEMM: {
      const auto a = matrix_rep(r.a, Format::kCOO, s);
      const auto b = matrix_rep(r.b, Format::kCOO, s);
      // Priced for the stats/describe; the engine's native SpGEMM pair is
      // CSR x CSR, so that is what the server executes and caches.
      plan->choice = sage_select_matmul(as_coo(*a), as_coo(*b), opts_.accel,
                                        opts_.energy);
      plan->run_a = plan->run_b = Format::kCSR;
      break;
    }
    case Kernel::kSpTTM:
    case Kernel::kMTTKRP: {
      const auto x = tensor_rep(r.x, Format::kCOO, s);
      plan->tensor_choice =
          sage_select_tensor(as_coo(*x), r.dense_b.cols(), r.kernel,
                             opts_.accel, opts_.energy);
      plan->run_a = repair_single(r.kernel, plan->tensor_choice.acf_t);
      break;
    }
  }
  return plan;
}

PlanCache::PlanPtr Server::resolve_plan(const Request& r, ServeStats& s) {
  const auto t0 = now_ns();
  PlanCache::PlanPtr plan;
  if (!opts_.use_plan_cache) {
    s.plan_cache_hit = false;
    plan = compute_plan(r, s);
  } else {
    const PlanKey key = key_for(r);
    bool hit = false;
    plan = plans_.get_or_compute(
        key, [&] { return compute_plan(r, s); }, &hit);
    s.plan_cache_hit = hit;
    // Same evict race as in matrix_rep/tensor_rep: un-publish a plan
    // inserted for an operand that was concurrently evicted.
    if (!hit) {
      if (key.a != 0 && !operand_registered(key.a)) {
        plans_.evict_operand(key.a);
      }
      if (key.b != 0 && !operand_registered(key.b)) {
        plans_.evict_operand(key.b);
      }
    }
  }
  s.plan_ns = now_ns() - t0;
  return plan;
}

PlanCache::PlanPtr Server::plan_for(const Request& r) {
  ServeStats scratch;
  return resolve_plan(r, scratch);
}

// --- Serving ---

std::future<Response> Server::submit(Request r) {
  Item item;
  item.req = std::move(r);
  item.enqueue_ns = now_ns();
  auto fut = item.promise.get_future();
  if (!queue_.push(std::move(item))) {
    item.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("server is stopped; request rejected")));
  }
  return fut;
}

Response Server::serve(Request& req, std::int64_t queue_wait_ns) {
  Response resp;
  ServeStats& s = resp.stats;
  s.queue_wait_ns = queue_wait_ns;

  const auto plan = resolve_plan(req, s);

  const auto t_conv = now_ns();
  ConversionCache::MatrixPtr rep_a, rep_b;
  ConversionCache::TensorPtr rep_x;
  if (is_tensor_kernel(req.kernel)) {
    rep_x = tensor_rep(req.x, plan->run_a, s);
  } else {
    rep_a = matrix_rep(req.a, plan->run_a, s);
    if (req.b.valid()) rep_b = matrix_rep(req.b, plan->run_b, s);
  }
  s.convert_ns = now_ns() - t_conv;

  const auto t_exec = now_ns();
  switch (req.kernel) {
    case Kernel::kSpMV:
      resp.result = exec::spmv(*rep_a, req.vec, &s.dispatch);
      break;
    case Kernel::kGemm:
    case Kernel::kSpMM:
      if (rep_b != nullptr) {
        resp.result = exec::spmm(*rep_a, *rep_b, &s.dispatch);
      } else {
        resp.result = exec::spmm(*rep_a, req.dense_b, &s.dispatch);
      }
      break;
    case Kernel::kSpGEMM:
      MT_REQUIRE(rep_b != nullptr, "SpGEMM needs two registered operands");
      resp.result = exec::spgemm(*rep_a, *rep_b, &s.dispatch);
      break;
    case Kernel::kSpTTM:
      resp.result = exec::ttm(*rep_x, req.dense_b, &s.dispatch);
      break;
    case Kernel::kMTTKRP:
      resp.result = exec::mttkrp(*rep_x, req.dense_b, req.dense_c,
                                 &s.dispatch);
      break;
  }
  s.exec_ns = now_ns() - t_exec;
  return resp;
}

void Server::worker_loop() {
  while (auto item = queue_.pop()) {
    const auto dequeued = now_ns();
    try {
      Response resp = serve(item->req, dequeued - item->enqueue_ns);
      counters_.record(resp.stats);
      item->promise.set_value(std::move(resp));
    } catch (...) {
      counters_.record_failure();
      item->promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace mt::runtime
