// Plan cache — memoizes SAGE decisions per distinct serving workload.
//
// SAGE enumerates the full MCF x ACF space on every call (hundreds of
// priced combinations); under serving traffic the same (kernel, operand,
// accelerator) workload recurs thousands of times, so the search should
// run exactly once. The cache keys on the registered operands' stable
// handle ids plus sage::plan_fingerprint of the accelerator/energy model
// — operand contents behind a handle are immutable by contract, so id
// equality implies workload equality.
//
// Lookup is single-flight: concurrent misses on one key elect one
// computing thread; the others block on a shared_future rather than
// duplicating the SAGE search. A throwing computation un-publishes the
// entry so later requests can retry.
//
// Capacity (cache_policy.hpp): a CacheOptions budget bounds the number of
// memoized plans (bytes are a flat sizeof(Plan) each — plans are tiny;
// entry count is the real lever). Over budget, the cost-aware LRU policy
// evicts the plan whose measured SAGE-search time makes it cheapest to
// re-derive among the least recently used. A zero budget disables
// memoization entirely (every request searches, like use_plan_cache =
// false but scoped to the cache).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "exec/exec.hpp"
#include "formats/format.hpp"
#include "runtime/cache_policy.hpp"
#include "sage/sage.hpp"

namespace mt::obs {
class Histogram;
}  // namespace mt::obs

namespace mt::runtime {

// Model fingerprint used for plans whose pricing never reads the device
// model (CPU-backend plans): CpuBackend::price depends only on the
// workload, so a device AccelConfig/EnergyParams swap cannot invalidate
// them. Keying them on this sentinel instead of the live fingerprint is
// what makes retire(model) backend-partitioned. (sage::plan_fingerprint
// is FNV-1a from a nonzero offset basis; a real model hashing to exactly
// 0 is a 2^-64 event, and even then the cost is one skipped eager sweep,
// never a wrong plan — the fingerprint still differs from its successor.)
inline constexpr std::uint64_t kHostModel = 0;

// Per-backend breakdown of a retire(model) sweep, indexed by
// exec::BackendKind. update_model reports this so operators can see a
// device-model swap retiring only device-priced plans.
struct RetireCounts {
  std::array<std::size_t, 3> by_backend{};  // kCpu, kSim, kMint

  std::size_t total() const {
    std::size_t n = 0;
    for (const auto c : by_backend) n += c;
    return n;
  }
  std::size_t of(exec::BackendKind b) const {
    return by_backend[static_cast<std::size_t>(b)];
  }
  RetireCounts& operator+=(const RetireCounts& o) {
    for (std::size_t i = 0; i < by_backend.size(); ++i) {
      by_backend[i] += o.by_backend[i];
    }
    return *this;
  }
  bool operator==(const RetireCounts&) const = default;
};

// Identity of one distinct serving workload.
struct PlanKey {
  Kernel kernel = Kernel::kSpMV;
  std::uint64_t a = 0;      // first registered operand id (matrix or tensor)
  std::uint64_t b = 0;      // second registered operand id (0 = none/dense)
  std::uint64_t model = 0;  // sage::plan_fingerprint(cfg, energy)
  index_t width = 0;        // dense factor columns: N for SpMM, rank for
                            // tensor kernels, 1 for SpMV, 0 otherwise
  // Execution substrate the plan routes to. Same workload, different
  // backend => different plan: the executed ACFs may repair differently
  // and the priced costs certainly do.
  exec::BackendKind backend = exec::BackendKind::kCpu;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

// A reusable, fully-resolved decision: the winning SAGE combination plus
// the ACFs the server actually executes. run_a/run_b are "repaired" to the
// nearest formats with native exec-engine kernels, so a served request
// never pays a per-call conversion fallback inside the engine — the
// conversion cache materializes exactly these formats, once.
struct Plan {
  Kernel kernel = Kernel::kSpMV;
  SageChoice choice;               // matrix kernels (unset for kGemm)
  SageTensorChoice tensor_choice;  // tensor kernels
  Format run_a = Format::kDense;   // executed ACF of operand A / tensor X
  Format run_b = Format::kDense;   // executed ACF of operand B (if any)
  // The backend dimension: which substrate executes this plan, and what
  // each configured backend charges for the workload (exec::Backend::
  // price). Both prices are recorded even under forced routing so stats
  // and benches can compare the host and device envelopes per plan.
  exec::BackendKind backend = exec::BackendKind::kCpu;
  double cpu_cost_ns = 0.0;     // CpuBackend's predicted latency
  double device_cost_ns = 0.0;  // device backend's price (0 = none built)
  // device_cost_ns rounded to whole ns — travels as Job::modeled_ns, i.e.
  // the latency MintBackend reports (and optionally enforces).
  std::int64_t modeled_device_ns = 0;
  // Per-plan exec-latency accumulator (mt_plan_exec_ns{plan="..."}),
  // owned by the Server's obs::Registry and wired at plan creation; null
  // when telemetry is off. Living on the plan keeps the hot path at one
  // pointer chase — no name lookup per request — and the measured
  // distribution is the feed for the ROADMAP's online adaptive planner.
  obs::Histogram* latency = nullptr;
};

class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const Plan>;
  using Compute = std::function<PlanPtr()>;

  explicit PlanCache(CacheOptions limits = {}) : limits_(limits) {}

  // Returns the plan for `key`, invoking `fn` at most once across all
  // concurrent callers of the same key. `hit` reports whether the entry
  // already existed (i.e. this caller paid no SAGE search). `fn` runs
  // outside the cache lock (it is a full SAGE search), so it may re-enter
  // the cache-owning Server freely.
  PlanPtr get_or_compute(const PlanKey& key, const Compute& fn, bool* hit)
      MT_EXCLUDES(mu_);

  // Drops every plan mentioning operand `id` (called on eviction; ids are
  // never reused, so this is memory hygiene rather than correctness).
  void evict_operand(std::uint64_t id) MT_EXCLUDES(mu_);

  // Drops every plan priced against model fingerprint `model` and returns
  // how many were retired, broken down by backend. Plans keyed on a
  // superseded AccelConfig/EnergyParams already miss cleanly (the
  // fingerprint is part of the key); this reclaims their memory eagerly
  // instead of leaking dead entries for the server's lifetime. Retirement
  // is backend-partitioned: CPU-backend plans are keyed on kHostModel
  // (their pricing never reads the device model), so retiring a real
  // device fingerprint leaves them cached, and retire(kHostModel) itself
  // is a no-op — CPU plans only leave via eviction or clear().
  RetireCounts retire(std::uint64_t model) MT_EXCLUDES(mu_);

  void clear() MT_EXCLUDES(mu_);

  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Plans retired by the capacity policy (not by evict_operand/retire —
  // those are hygiene, this is budget pressure).
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const MT_EXCLUDES(mu_);
  const CacheOptions& limits() const { return limits_; }

 private:
  struct Entry {
    std::shared_future<PlanPtr> fut;
    bool ready = false;
  };

  // Evicts lowest-priority plans until the budget holds.
  void enforce_limits() MT_REQUIRES(mu_);

  const CacheOptions limits_;
  mutable Mutex mu_;
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_ MT_GUARDED_BY(mu_);
  EvictionIndex<PlanKey, PlanKeyHash> index_ MT_GUARDED_BY(mu_);
  std::atomic<std::int64_t> hits_{0}, misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace mt::runtime
