#include "runtime/shard.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mt::runtime {

HashRing::HashRing(int num_shards, int vnodes) : num_shards_(num_shards) {
  MT_REQUIRE(num_shards >= 1 && num_shards <= kMaxShards,
             "shard count must be in [1, kMaxShards]");
  MT_REQUIRE(vnodes >= 1, "ring needs at least one point per shard");
  points_.reserve(static_cast<std::size_t>(num_shards) *
                  static_cast<std::size_t>(vnodes));
  for (int s = 0; s < num_shards; ++s) {
    for (int r = 0; r < vnodes; ++r) {
      // Point identity depends on (shard, replica) only — never on the
      // total shard count — which is what makes growth minimally
      // disruptive (see header). The top tag bit domain-separates point
      // ids from registration keys: without it, key k and shard 0's
      // replica k hash identically ((0 << 32) | k == k), parking every
      // low key on shard 0.
      const auto id = (1ull << 63) |
                      (static_cast<std::uint64_t>(s) << 32) |
                      static_cast<std::uint64_t>(r);
      points_.emplace_back(splitmix64(id), s);
    }
  }
  std::sort(points_.begin(), points_.end());
}

int HashRing::shard_for(std::uint64_t key) const {
  const auto h = splitmix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

}  // namespace mt::runtime
