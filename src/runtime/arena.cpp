#include "runtime/arena.hpp"

#include <new>

namespace mt::runtime {

Arena::Arena(std::size_t max_cached_bytes)
    : max_cached_bytes_(max_cached_bytes) {}

Arena::~Arena() { trim(); }

void* Arena::acquire(std::size_t bytes) {
  {
    LockGuard lock(mu_);
    auto it = free_.find(bytes);
    if (it != free_.end() && !it->second.empty()) {
      void* p = it->second.back();
      it->second.pop_back();
      stats_.cached_bytes -= bytes;
      ++stats_.reuses;
      ++stats_.outstanding;
      return p;
    }
    ++stats_.fresh_allocs;
    ++stats_.outstanding;
  }
  // Allocate outside the lock: the slow path must not serialize workers.
  return ::operator new(bytes, std::align_val_t{kValueAlign});
}

void Arena::release(void* p, std::size_t bytes) noexcept {
  // Caching can itself allocate (free-list node growth); if that throws
  // we fall through to freeing the slab, keeping release() noexcept.
  try {
    LockGuard lock(mu_);
    --stats_.outstanding;
    if (stats_.cached_bytes + bytes <= max_cached_bytes_) {
      free_[bytes].push_back(p);
      stats_.cached_bytes += bytes;
      return;
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch): fallthrough frees below
  }
  // Over budget (or caching failed): free eagerly, outside the lock.
  ::operator delete(p, bytes, std::align_val_t{kValueAlign});
}

Arena::Stats Arena::stats() const {
  LockGuard lock(mu_);
  return stats_;
}

void Arena::trim() {
  std::unordered_map<std::size_t, std::vector<void*>> drained;
  {
    LockGuard lock(mu_);
    drained.swap(free_);
    stats_.cached_bytes = 0;
  }
  for (auto& [bytes, slabs] : drained) {
    for (void* p : slabs) {
      ::operator delete(p, bytes, std::align_val_t{kValueAlign});
    }
  }
}

}  // namespace mt::runtime
