// Shard placement for the sharded serving router (runtime/router.hpp).
//
// Two pieces, both pure and unit-testable:
//
// Handle encoding — a ShardedServer handle id packs the owning shard into
// its low kShardBits bits and the shard-local Server id into the high
// bits. Routing a request is therefore O(1): decode the shard index
// straight from the handle, no ring lookup and no routing table. Local
// ids start at 1, so every encoded id is nonzero and MatrixHandle/
// TensorHandle::valid() keeps working.
//
// HashRing — classic consistent hashing with virtual nodes, used once per
// registration to place a new operand. Each shard contributes `vnodes`
// points hashed from (shard, replica) only, so a shard's points are
// identical regardless of how many other shards exist: growing the shard
// count remaps only the keys the new shard's points capture (expected
// vnode-count-weighted 1/N of the keyspace), and never moves a key
// between two pre-existing shards. Registration keys are hashed through
// splitmix64 first, so even sequential counters spread uniformly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mt::runtime {

inline constexpr int kShardBits = 8;
inline constexpr int kMaxShards = 1 << kShardBits;  // 256

constexpr std::uint64_t encode_shard_handle(std::uint64_t local_id,
                                            int shard) {
  return (local_id << kShardBits) | static_cast<std::uint64_t>(shard);
}

constexpr int shard_of_handle(std::uint64_t id) {
  return static_cast<int>(id & (kMaxShards - 1));
}

constexpr std::uint64_t local_handle(std::uint64_t id) {
  return id >> kShardBits;
}

// splitmix64 finalizer — the same avalanche the plan-key hash uses; full
// 64-bit mixing so sequential registration keys land uniformly.
constexpr std::uint64_t splitmix64(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  return v;
}

class HashRing {
 public:
  // `vnodes` points per shard: more points, smoother spread (relative
  // per-shard load deviation shrinks like 1/sqrt(vnodes)).
  explicit HashRing(int num_shards, int vnodes = 128);

  // Owning shard for `key`: the first ring point clockwise from
  // splitmix64(key), wrapping at the top. O(log(shards * vnodes)).
  int shard_for(std::uint64_t key) const;

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  // (point hash, shard), sorted by hash.
  std::vector<std::pair<std::uint64_t, int>> points_;
};

}  // namespace mt::runtime
