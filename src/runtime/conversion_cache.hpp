// Conversion cache — each registered operand's converted representations,
// materialized once and shared read-only across all requests.
//
// The exec engine's fallback path re-runs convert() on every call; under
// serving traffic that is the dominant per-request cost after SAGE search.
// This cache keys (operand id, target format) to a shared_ptr<const ...>
// representation: the first request pays the O(nnz) conversion, every
// later request — on any worker thread — borrows the same immutable
// object and feeds it to the engine's const-ref entry points, which then
// dispatch natively (zero conversions, zero copies).
//
// A request for the operand's own registered format shares the registered
// representation itself and counts as a hit: identity is the cheapest
// conversion. Like the plan cache, population is single-flight.
//
// Capacity (cache_policy.hpp): a CacheOptions budget bounds the number of
// materialized representations and their aggregate storage_of() bytes.
// Over budget, the cost-aware LRU policy evicts the representation whose
// measured convert() time makes it cheapest to recompute among the least
// recently used; identity shares are never stored, so they cost no budget.
// Eviction only unpublishes the cache entry — in-flight requests holding
// the shared_ptr keep their representation alive until they finish. A
// zero budget disables caching entirely (every call converts, nothing is
// stored, single-flight is forfeited).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "convert/convert.hpp"
#include "runtime/cache_policy.hpp"

namespace mt::runtime {

class ConversionCache {
 public:
  using MatrixPtr = std::shared_ptr<const AnyMatrix>;
  using TensorPtr = std::shared_ptr<const AnyTensor>;

  explicit ConversionCache(CacheOptions limits = {}) : limits_(limits) {}

  // Representation of matrix operand `id` (whose registered form is
  // `src`) in format `f`. `hit` reports whether the conversion was
  // already materialized (or unnecessary because format_of(*src) == f).
  MatrixPtr matrix(std::uint64_t id, Format f, const MatrixPtr& src,
                   bool* hit);

  // Tensor flavor of the same contract.
  TensorPtr tensor(std::uint64_t id, Format f, const TensorPtr& src,
                   bool* hit);

  // Drops every cached representation of operand `id`. In-flight requests
  // holding the shared_ptr keep their representation alive; the cache just
  // stops handing it out.
  void evict(std::uint64_t id) MT_EXCLUDES(mu_);

  void clear() MT_EXCLUDES(mu_);

  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Representations dropped by the capacity policy (evict() calls — the
  // operand-retirement path — are not counted here).
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const MT_EXCLUDES(mu_);
  // Aggregate storage_of() bytes of the materialized representations
  // (identity shares excluded — they borrow the registry's memory).
  std::size_t bytes() const MT_EXCLUDES(mu_);
  const CacheOptions& limits() const { return limits_; }

 private:
  struct Key {
    std::uint64_t id = 0;
    Format f = Format::kDense;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.id * 64 +
                                        static_cast<std::uint64_t>(k.f));
    }
  };
  // Map payload: the single-flight future plus whether the computing
  // thread has finalized it (only finalized entries are in the victim
  // index, so an in-flight computation is never evicted under its
  // waiters).
  template <typename Ptr>
  struct Entry {
    std::shared_future<Ptr> fut;
    bool ready = false;
  };

  // The map holding entries of pointer type Ptr. Template-selected so the
  // guarded-field reference is only ever formed under mu_ (passing the map
  // into get() from an unlocked caller would trip
  // -Wthread-safety-reference).
  template <typename Ptr>
  std::unordered_map<Key, Entry<Ptr>, KeyHash>& map_for() MT_REQUIRES(mu_);

  template <typename Ptr, typename Convert, typename Bytes>
  Ptr get(Key key, const Convert& fn, const Bytes& bytes_of, bool* hit)
      MT_EXCLUDES(mu_);

  // Evicts lowest-priority entries until the budget holds. Victims can
  // live in either map; ids are shared across both (the server hands out
  // matrix and tensor ids from one counter), so erasing the key from both
  // maps is unambiguous.
  void enforce_limits() MT_REQUIRES(mu_);

  const CacheOptions limits_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry<MatrixPtr>, KeyHash> matrices_
      MT_GUARDED_BY(mu_);
  std::unordered_map<Key, Entry<TensorPtr>, KeyHash> tensors_
      MT_GUARDED_BY(mu_);
  EvictionIndex<Key, KeyHash> index_ MT_GUARDED_BY(mu_);
  std::atomic<std::int64_t> hits_{0}, misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace mt::runtime
