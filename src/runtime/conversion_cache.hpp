// Conversion cache — each registered operand's converted representations,
// materialized once and shared read-only across all requests.
//
// The exec engine's fallback path re-runs convert() on every call; under
// serving traffic that is the dominant per-request cost after SAGE search.
// This cache keys (operand id, target format) to a shared_ptr<const ...>
// representation: the first request pays the O(nnz) conversion, every
// later request — on any worker thread — borrows the same immutable
// object and feeds it to the engine's const-ref entry points, which then
// dispatch natively (zero conversions, zero copies).
//
// A request for the operand's own registered format shares the registered
// representation itself and counts as a hit: identity is the cheapest
// conversion. Like the plan cache, population is single-flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "convert/convert.hpp"

namespace mt::runtime {

class ConversionCache {
 public:
  using MatrixPtr = std::shared_ptr<const AnyMatrix>;
  using TensorPtr = std::shared_ptr<const AnyTensor>;

  // Representation of matrix operand `id` (whose registered form is
  // `src`) in format `f`. `hit` reports whether the conversion was
  // already materialized (or unnecessary because format_of(*src) == f).
  MatrixPtr matrix(std::uint64_t id, Format f, const MatrixPtr& src,
                   bool* hit);

  // Tensor flavor of the same contract.
  TensorPtr tensor(std::uint64_t id, Format f, const TensorPtr& src,
                   bool* hit);

  // Drops every cached representation of operand `id`. In-flight requests
  // holding the shared_ptr keep their representation alive; the cache just
  // stops handing it out.
  void evict(std::uint64_t id);

  void clear();

  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Key {
    std::uint64_t id = 0;
    Format f = Format::kDense;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.id * 64 +
                                        static_cast<std::uint64_t>(k.f));
    }
  };

  template <typename Ptr, typename Convert>
  Ptr get(std::unordered_map<Key, std::shared_future<Ptr>, KeyHash>& map,
          Key key, const Convert& fn, bool* hit);

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_future<MatrixPtr>, KeyHash> matrices_;
  std::unordered_map<Key, std::shared_future<TensorPtr>, KeyHash> tensors_;
  std::atomic<std::int64_t> hits_{0}, misses_{0};
};

}  // namespace mt::runtime
