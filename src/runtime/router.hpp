// Sharded serving router — N independent Server shards behind one API.
//
// A single Server serializes every admission on one MPMC queue mutex and
// every registration on one registry lock; past a handful of client
// threads those two lock domains are the scalability ceiling. The
// ShardedServer partitions registered operands across N full Server
// instances (each with its own queue, worker pool, plan cache, conversion
// cache, and capacity budget) and routes each request to the shard that
// owns its primary operand:
//
//   clients ──► ShardedServer ──► shard 0: queue ► workers ► caches
//                   │ O(1) decode ► shard 1: queue ► workers ► caches
//                   │             ► ...
//                   └── future<Response>   (stats pass through unchanged)
//
// Placement and routing — registration draws a key from a monotonic
// counter and places the operand on a consistent-hash ring
// (runtime/shard.hpp); the returned handle encodes the owning shard in
// its low bits, so every later submit()/evict()/plan_for() decodes the
// shard in O(1) with no routing table and no ring lookup. The ring only
// matters again when the shard count changes: consistent hashing keeps
// the keyspace fraction that moves to ~1/N, minimizing re-registration
// churn in a rolling resize (see HashRing).
//
// Cross-shard pair kernels (SpGEMM / registered-pair SpMM / GEMM with a
// registered B) — the defined policy: the request executes on the FIRST
// operand's shard. The second operand is lazily replicated there by
// sharing its immutable source representation (shared_ptr adoption — the
// replica costs zero bytes of payload copy); the executing shard's
// conversion cache then materializes whatever ACF the plan wants, i.e. a
// conversion-cache miss on first touch is allowed by contract. Replicas
// are memoized per (operand, shard) and purged when the owning handle is
// evicted.
//
// Semantics: with num_shards == 1 the router is behaviorally identical to
// a lone Server — same plans, same bit-identical results, same error
// surface (failures arrive on the future, never from submit() itself).
// update_model fans out to every shard; counters()/queue_depth()
// aggregate per-shard snapshots into a weakly-consistent cross-shard view
// (see Server::queue_depth for the contract). Thread budgeting: every
// shard joins the process-wide ThreadCapRegistry (ServerOptions::
// shard_member), so N shards x W workers cap the OpenMP kernel width to
// hardware/(N*W) exactly like one N*W-worker server would.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "runtime/server.hpp"
#include "runtime/shard.hpp"

namespace mt::runtime {

struct ShardedServerOptions {
  int num_shards = 2;
  int ring_vnodes = 128;   // placement smoothness (see HashRing)
  ServerOptions shard;     // applied to every shard (workers, queue,
                           // caches + capacity budgets, batching, model)
};

class ShardedServer {
 public:
  explicit ShardedServer(ShardedServerOptions opts = {});
  ~ShardedServer();  // stop()s if still running

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  // --- Operand registry ---

  MatrixHandle register_matrix(AnyMatrix m);
  TensorHandle register_tensor(AnyTensor t);

  // Evicts the operand from its home shard and every shard holding a
  // replica of it; later requests naming the handle fail via the future.
  void evict(MatrixHandle h) MT_EXCLUDES(replica_mu_);
  void evict(TensorHandle h);

  // --- Serving ---

  // Routes to the primary operand's shard (blocking only on that shard's
  // bounded queue). Routing errors — a handle this router never issued,
  // an evicted cross-shard operand — surface on the returned future,
  // exactly like Server's own failures.
  std::future<Response> submit(Request r);

  // Plan resolution on the owning shard (memoized there); replicates a
  // cross-shard second operand just like submit().
  PlanCache::PlanPtr plan_for(const Request& r);

  // --- Model lifecycle ---

  // Fans out to every shard; returns the fleet-wide retired-plan counts
  // broken down by backend (per-shard RetireCounts summed field-wise).
  // Retirement is backend-partitioned exactly as on one Server: a
  // device-model swap retires zero CPU-backend plans on any shard.
  RetireCounts update_model(const AccelConfig& accel,
                            const EnergyParams& energy);

  // Fingerprint of the planning model (identical on every shard).
  std::uint64_t model_fingerprint() const;

  // --- Observability / lifecycle ---

  // Cross-shard sums of per-shard snapshots, plus requests that failed in
  // routing before reaching any shard. Weakly consistent (see
  // Server::queue_depth's contract): each addend is an atomic per-shard
  // snapshot; the total corresponds to no single global instant.
  CountersSnapshot counters() const;
  std::size_t queue_depth() const;

  // Fleet-wide telemetry: every shard's metrics_snapshot() merged by
  // metric name (obs::merge_snapshots — counters and histogram buckets
  // add, gauge levels sum into fleet totals, e.g. mt_queue_depth becomes
  // the aggregate depth), plus the router's own series
  // (mt_router_routing_failures_total, mt_router_shards). Same weak
  // consistency as counters(): per-shard addends from no single instant.
  std::vector<obs::MetricSnapshot> metrics_snapshot() const;
  std::string metrics_text() const;
  std::string metrics_json() const;

  // Merges every shard's trace ring (each drained oldest-first) and tags
  // each record with its shard index. A routed request's route span and
  // stage spans share one trace id and one shard ring (the router deposits
  // its spans on the executing shard), so per-trace reassembly needs no
  // cross-ring matching.
  std::vector<obs::SpanRecord> drain_trace();

  CountersSnapshot shard_counters(int shard) const;
  std::size_t queue_depth(int shard) const;
  const Server& shard(int i) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(MatrixHandle h) const { return shard_of_handle(h.id); }
  int shard_of(TensorHandle h) const { return shard_of_handle(h.id); }
  const ShardedServerOptions& options() const { return opts_; }

  // Closes intake and drains every shard. Idempotent.
  void stop();

 private:
  // Decodes/validates a global handle id, returning its shard index;
  // throws for ids this router never issued.
  int owning_shard(std::uint64_t id) const;
  // Rewrites the request's handles to shard-local ids (replicating a
  // cross-shard B onto the primary shard if needed) and returns the shard
  // that must execute it.
  int to_local(Request& r);
  // Shard-local handle for operand `global_id` on shard `target`,
  // registering a zero-copy replica on first use.
  std::uint64_t replica_on(int target, std::uint64_t global_id)
      MT_EXCLUDES(replica_mu_);

  ShardedServerOptions opts_;
  HashRing ring_;
  std::vector<std::unique_ptr<Server>> shards_;
  std::atomic<std::uint64_t> next_key_{1};  // ring placement keys

  // Replica registry: global operand id -> (shard -> local replica id).
  // The mutex also serializes replica creation against evict(), so a
  // replica can never be registered after its source's eviction purged
  // the map (the creation path re-reads the source under this lock and
  // throws if it is gone).
  mutable Mutex replica_mu_;
  std::unordered_map<std::uint64_t, std::unordered_map<int, std::uint64_t>>
      replicas_ MT_GUARDED_BY(replica_mu_);

  std::atomic<std::int64_t> routing_failures_{0};

  // Fleet-wide trace-id source. Shards' own IdSources all start at 1, so
  // shard-issued ids would collide across rings once drain_trace() merges
  // them; the router hands every routed request an id from this single
  // counter instead (Server::submit only assigns when trace_id == 0).
  obs::IdSource trace_ids_;
};

}  // namespace mt::runtime
