// Capacity limits and replacement policy for the serving-runtime caches.
//
// Both runtime caches (plan cache, conversion cache) started out unbounded:
// entries only left on explicit evict()/retire(). Under operand churn a
// long-lived server — and every shard of a ShardedServer — must stay
// bounded, so each cache now takes a CacheOptions budget and sheds entries
// with a cost-aware LRU policy (GreedyDual): an entry's priority is
//
//   H(entry) = clock + recompute_cost
//
// refreshed on every hit. Eviction removes the lowest-H entry (ties broken
// by least-recent touch, i.e. exact LRU among equal costs) and advances the
// clock to the victim's H. Recently-touched entries and entries that are
// expensive to recompute — a conversion's measured convert() time, a plan's
// measured SAGE-search time — therefore survive pressure longest, while an
// idle cheap entry ages out as the clock catches up to it.
//
// EvictionIndex is the pure bookkeeping half (not thread-safe) so the
// policy is unit-testable with injected costs, independent of timing
// noise. Synchronization contract: every EvictionIndex member lives as a
// field MT_GUARDED_BY the owning cache's mutex (plan_cache.hpp,
// conversion_cache.hpp), so clang's thread safety analysis proves each
// access happens under that lock even though this class carries no
// annotations of its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>

namespace mt::runtime {

inline constexpr std::size_t kUnboundedCacheLimit =
    std::numeric_limits<std::size_t>::max();

// Capacity budget for one cache. The defaults never evict; a limit of 0
// disables the cache entirely (every lookup recomputes, nothing is stored
// — the bypass degenerate case, which also forfeits single-flight).
struct CacheOptions {
  std::size_t max_entries = kUnboundedCacheLimit;
  std::size_t max_bytes = kUnboundedCacheLimit;

  bool operator==(const CacheOptions&) const = default;

  bool bypass() const { return max_entries == 0 || max_bytes == 0; }
  bool bounded() const {
    return max_entries != kUnboundedCacheLimit ||
           max_bytes != kUnboundedCacheLimit;
  }
};

// Cost-aware LRU (GreedyDual) victim index over the keys of one cache.
// Tracks only finalized entries — in-flight single-flight computations are
// never victims — and the aggregate byte footprint the limits are enforced
// against.
template <typename K, typename Hash = std::hash<K>>
class EvictionIndex {
 public:
  // Inserts `k`, or re-prices an existing entry (new cost/bytes), at
  // priority clock + cost.
  void touch(const K& k, double cost, std::size_t bytes) {
    auto [it, inserted] = slots_.try_emplace(k);
    if (!inserted) bytes_ -= it->second.bytes;
    it->second = Slot{clock_ + cost, ++seq_, cost, bytes};
    bytes_ += bytes;
  }

  // Refreshes recency/priority of an existing key at its stored cost;
  // no-op if absent (e.g. the entry was evicted under the caller's feet).
  void refresh(const K& k) {
    auto it = slots_.find(k);
    if (it == slots_.end()) return;
    it->second.h = clock_ + it->second.cost;
    it->second.seq = ++seq_;
  }

  void erase(const K& k) {
    auto it = slots_.find(k);
    if (it == slots_.end()) return;
    bytes_ -= it->second.bytes;
    slots_.erase(it);
  }

  // Removes and returns the lowest-(H, recency) key, advancing the clock
  // to its H so survivors age relative to it. Linear scan: these caches
  // hold at most a few hundred entries and evict rarely.
  std::optional<K> pop_victim() {
    if (slots_.empty()) return std::nullopt;
    auto victim = slots_.begin();
    for (auto it = std::next(slots_.begin()); it != slots_.end(); ++it) {
      if (it->second.h < victim->second.h ||
          (it->second.h == victim->second.h &&
           it->second.seq < victim->second.seq)) {
        victim = it;
      }
    }
    if (victim->second.h > clock_) clock_ = victim->second.h;
    K key = victim->first;
    bytes_ -= victim->second.bytes;
    slots_.erase(victim);
    return key;
  }

  bool over(const CacheOptions& limits) const {
    return slots_.size() > limits.max_entries || bytes_ > limits.max_bytes;
  }

  std::size_t entries() const { return slots_.size(); }
  std::size_t bytes() const { return bytes_; }

  void clear() {
    slots_.clear();
    bytes_ = 0;
    // The clock survives clear(): priorities are only compared among live
    // entries, so resetting it is unnecessary and would deflate future H.
  }

 private:
  struct Slot {
    double h = 0.0;          // GreedyDual priority: clock-at-touch + cost
    std::uint64_t seq = 0;   // touch order: LRU tie-break among equal H
    double cost = 0.0;       // recompute cost (ns) re-applied on refresh
    std::size_t bytes = 0;
  };

  std::unordered_map<K, Slot, Hash> slots_;
  double clock_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace mt::runtime
