// Request batching — the stage between the MPMC queue and the worker pool.
//
// PR 3 amortized per-request *setup* (SAGE search, conversions); this stage
// reshapes the *work itself*: a worker drains a window of queued requests
// and coalesces the batchable ones into fewer, wider kernel launches.
//
//   SpMV coalescing   n SpMV requests on one operand stack their input
//                     vectors into the columns of a dense block and run a
//                     single SpMM — one pass over the matrix instead of n
//                     (higher arithmetic intensity), one dispatch instead
//                     of n. The result's columns scatter back to the
//                     per-request futures.
//   SpMM/GEMM fusion  same-plan requests with dense factors concatenate
//                     their factor columns into one wide factor; each
//                     caller gets its column block of the fused output.
//
// Unbatchable kernels (SpGEMM, SpTTM, MTTKRP, two-registered-operand SpMM)
// pass through untouched. Grouping preserves FIFO order per operand
// handle: a request joins an earlier group only if no later-arriving
// request touching any of the same handles sits between them, and groups
// execute in first-arrival order, so requests on one handle always
// complete in submission order within a drained window (exactly the
// guarantee the un-batched single-pop worker gave).
//
// Bit-identity contract: fused execution must produce byte-for-byte the
// results of serving each request alone. Dense-factor SpMM/GEMM kernels
// compute output columns independently, so concatenation is always safe;
// SpMV-as-SpMM is only taken for ACFs whose SpMM kernel walks each row's
// nonzeros in the same order as its SpMV kernel (CSR, COO — see
// coalescible_spmv_format), every other plan passes through unfused.
//
// Thread-safety: everything here is a pure function over values the
// calling worker owns (no shared state, no locks), so this module needs
// no thread safety annotations — each worker batches its own drained
// window independently.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "exec/exec.hpp"
#include "formats/format.hpp"

namespace mt::runtime {

// Whether (and how aggressively) the server batches at the queue head.
enum class BatchPolicy : std::uint8_t {
  kOff,     // PR-3 behavior: one pop, one kernel per request
  kWindow,  // drain up to ServerOptions::batch_window requests per wakeup
};

// What the grouping pass needs to know about one drained request.
struct BatchItem {
  Kernel kernel = Kernel::kSpMV;
  std::uint64_t a = 0;   // registered matrix operand id (0 = none)
  std::uint64_t b = 0;   // second registered matrix operand id (0 = none)
  std::uint64_t x = 0;   // registered tensor operand id (0 = none)
  index_t rows = 0;      // dense payload rows (vec length / factor rows)
  index_t width = 0;     // dense factor columns (1 for SpMV)
  bool fusible = false;  // dense-factor kernel, candidate for fusion
  // Execution substrate the request's *plan* routes to. Part of the fuse
  // key: a CPU-planned and a device-planned request are different work
  // even on identical operands — fusing them would drag one of them onto
  // the other's backend (wrong pricing, and for sim a different numeric
  // contract). Callers that batch before resolving plans (the CPU-only
  // server path, where every plan shares one substrate) may leave the
  // default.
  exec::BackendKind backend = exec::BackendKind::kCpu;
};

// One unit of execution: indices into the drained window, in FIFO order.
// `fused` marks a group whose members share a fusion key (same kernel,
// operand, payload shape, backend — i.e. same plan-cache key); a fused
// group of size > 1 executes as one coalesced kernel on that backend.
struct BatchGroup {
  std::vector<std::size_t> members;
  bool fused = false;
};

// Partitions a drained window into execution groups, preserving per-handle
// FIFO order (see file comment). Pure function — unit-tested directly.
std::vector<BatchGroup> form_batches(const std::vector<BatchItem>& items);

// True if SpMV requests planned onto `acf` may be coalesced into the SpMM
// kernel for the same format with bit-identical per-column results.
bool coalescible_spmv_format(Format acf);

}  // namespace mt::runtime
