#include "runtime/router.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/export.hpp"

namespace mt::runtime {

ShardedServer::ShardedServer(ShardedServerOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.num_shards, opts_.ring_vnodes) {
  // Every shard joins the process-wide kernel-thread budget so N shards x
  // W workers divide the hardware exactly like one N*W-worker server.
  opts_.shard.shard_member = opts_.num_shards > 1;
  shards_.reserve(static_cast<std::size_t>(opts_.num_shards));
  for (int s = 0; s < opts_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Server>(opts_.shard));
  }
}

// NOLINTNEXTLINE(bugprone-exception-escape): fans out to Server::stop(),
// which closes queues and joins workers — no throwing path in practice.
ShardedServer::~ShardedServer() { stop(); }

void ShardedServer::stop() {
  for (auto& s : shards_) s->stop();
}

// --- Registry ---

MatrixHandle ShardedServer::register_matrix(AnyMatrix m) {
  const auto key = next_key_.fetch_add(1, std::memory_order_relaxed);
  const int s = ring_.shard_for(key);
  const auto local = shards_[static_cast<std::size_t>(s)]->register_matrix(
      std::move(m));
  return {encode_shard_handle(local.id, s)};
}

TensorHandle ShardedServer::register_tensor(AnyTensor t) {
  const auto key = next_key_.fetch_add(1, std::memory_order_relaxed);
  const int s = ring_.shard_for(key);
  const auto local = shards_[static_cast<std::size_t>(s)]->register_tensor(
      std::move(t));
  return {encode_shard_handle(local.id, s)};
}

int ShardedServer::owning_shard(std::uint64_t id) const {
  const int s = shard_of_handle(id);
  MT_REQUIRE(s < num_shards(), "handle was not issued by this router");
  return s;
}

void ShardedServer::evict(MatrixHandle h) {
  const int home = owning_shard(h.id);
  // One lock over home-eviction + replica purge: replica_on() serializes
  // against this, so no replica can be created from the dying source and
  // recorded after the purge (it would leak unreachably).
  LockGuard lk(replica_mu_);
  shards_[static_cast<std::size_t>(home)]->evict(
      MatrixHandle{local_handle(h.id)});
  if (auto it = replicas_.find(h.id); it != replicas_.end()) {
    for (const auto& [s, local] : it->second) {
      shards_[static_cast<std::size_t>(s)]->evict(MatrixHandle{local});
    }
    replicas_.erase(it);
  }
}

void ShardedServer::evict(TensorHandle h) {
  const int home = owning_shard(h.id);
  // Tensors are never replicated (no cross-shard tensor pair kernels),
  // so only the home shard holds state.
  shards_[static_cast<std::size_t>(home)]->evict(
      TensorHandle{local_handle(h.id)});
}

std::uint64_t ShardedServer::replica_on(int target, std::uint64_t global_id) {
  LockGuard lk(replica_mu_);
  if (auto it = replicas_.find(global_id); it != replicas_.end()) {
    if (auto jt = it->second.find(target); jt != it->second.end()) {
      return jt->second;
    }
  }
  const int home = owning_shard(global_id);
  // Throws std::invalid_argument if the operand was evicted — under the
  // same lock evict() takes, so creation and purge cannot interleave.
  // Nothing is recorded until both steps succeed: an entry created before
  // a throwing source lookup would outlive the id forever (ids are never
  // reused, so no later evict could clean it up).
  auto src = shards_[static_cast<std::size_t>(home)]->matrix_source(
      MatrixHandle{local_handle(global_id)});
  const auto local =
      shards_[static_cast<std::size_t>(target)]->adopt_matrix(std::move(src));
  replicas_[global_id].emplace(target, local.id);
  return local.id;
}

// --- Routing ---

int ShardedServer::to_local(Request& r) {
  int s = 0;
  if (is_tensor_kernel(r.kernel)) {
    if (r.x.valid()) {
      s = owning_shard(r.x.id);
      r.x.id = local_handle(r.x.id);
    }
  } else {
    if (r.a.valid()) {
      s = owning_shard(r.a.id);
      r.a.id = local_handle(r.a.id);
      if (r.b.valid()) {
        const int sb = owning_shard(r.b.id);
        // Cross-shard pair policy: execute on the first operand's shard,
        // with B replicated there (zero-copy source share; the executing
        // shard's conversion cache may miss on first touch). Only reached
        // behind a valid A: a malformed request must fail on its invalid
        // primary, not leave a replica registered as a side effect.
        r.b.id = sb == s ? local_handle(r.b.id) : replica_on(s, r.b.id);
      }
    }
  }
  // Invalid (id == 0) primary handles route to shard 0, whose Server
  // raises the same "names no operand" error a lone Server would.
  return s;
}

std::future<Response> ShardedServer::submit(Request r) {
  try {
    const bool tracing = opts_.shard.obs.trace_ring_capacity > 0;
    const auto t0 = tracing ? now_ns() : 0;
    const int s = to_local(r);
    Server& shard = *shards_[static_cast<std::size_t>(s)];
    if (tracing) {
      // Pre-assign the trace id from the router's fleet-unique source and
      // deposit the route span (shard resolution + replica setup) on the
      // executing shard, so the whole trace drains from one ring under
      // one id that no other shard's requests can share.
      if (r.trace_id == 0) r.trace_id = trace_ids_.next();
      obs::SpanRecord rec;
      rec.trace_id = r.trace_id;
      rec.span_id = shard.trace_ids().next();
      rec.stage = obs::Stage::kRoute;
      rec.start_ns = t0;
      rec.end_ns = now_ns();
      shard.push_span(rec);
    }
    return shard.submit(std::move(r));
  } catch (...) {
    // Routing failures (foreign handle, evicted cross-shard operand)
    // surface on the future, matching Server's own error surface.
    routing_failures_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Response> p;
    p.set_exception(std::current_exception());
    return p.get_future();
  }
}

PlanCache::PlanPtr ShardedServer::plan_for(const Request& r) {
  Request local = r;
  const int s = to_local(local);
  return shards_[static_cast<std::size_t>(s)]->plan_for(local);
}

// --- Model lifecycle ---

RetireCounts ShardedServer::update_model(const AccelConfig& accel,
                                         const EnergyParams& energy) {
  RetireCounts retired;
  for (auto& s : shards_) retired += s->update_model(accel, energy);
  return retired;
}

std::uint64_t ShardedServer::model_fingerprint() const {
  return shards_.front()->model_fingerprint();
}

// --- Observability ---

CountersSnapshot ShardedServer::counters() const {
  CountersSnapshot total;
  for (const auto& s : shards_) total += s->counters();
  total.failed += routing_failures_.load(std::memory_order_relaxed);
  return total;
}

std::size_t ShardedServer::queue_depth() const {
  // Snapshot loop: each shard's depth is read atomically under its queue
  // mutex; the sum is weakly consistent (see Server::queue_depth).
  std::size_t depth = 0;
  for (const auto& s : shards_) depth += s->queue_depth();
  return depth;
}

std::vector<obs::MetricSnapshot> ShardedServer::metrics_snapshot() const {
  std::vector<obs::MetricSnapshot> total;
  for (const auto& s : shards_) {
    obs::merge_snapshots(total, s->metrics_snapshot());
  }
  std::vector<obs::MetricSnapshot> router(2);
  router[0].name = "mt_router_routing_failures_total";
  router[0].kind = obs::MetricSnapshot::Kind::kCounter;
  router[0].value = routing_failures_.load(std::memory_order_relaxed);
  router[1].name = "mt_router_shards";
  router[1].kind = obs::MetricSnapshot::Kind::kGauge;
  router[1].value = num_shards();
  obs::merge_snapshots(total, router);
  return total;
}

std::string ShardedServer::metrics_text() const {
  return obs::metrics_text(metrics_snapshot());
}

std::string ShardedServer::metrics_json() const {
  return obs::metrics_json(metrics_snapshot());
}

std::vector<obs::SpanRecord> ShardedServer::drain_trace() {
  std::vector<obs::SpanRecord> out;
  for (int s = 0; s < num_shards(); ++s) {
    auto part = shards_[static_cast<std::size_t>(s)]->drain_trace();
    for (auto& r : part) r.shard = s;
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

CountersSnapshot ShardedServer::shard_counters(int shard) const {
  MT_REQUIRE(shard >= 0 && shard < num_shards(), "shard index out of range");
  return shards_[static_cast<std::size_t>(shard)]->counters();
}

std::size_t ShardedServer::queue_depth(int shard) const {
  MT_REQUIRE(shard >= 0 && shard < num_shards(), "shard index out of range");
  return shards_[static_cast<std::size_t>(shard)]->queue_depth();
}

const Server& ShardedServer::shard(int i) const {
  MT_REQUIRE(i >= 0 && i < num_shards(), "shard index out of range");
  return *shards_[static_cast<std::size_t>(i)];
}

}  // namespace mt::runtime
