// Concurrent serving runtime — a stateful server in front of the exec
// engine (paper north star: amortize per-request setup across a stream of
// requests, SimBricks-style client/server shape).
//
//   clients                                        workers
//   submit(Request) ──► bounded MPMC queue ──► batcher ──► worker pool
//        │                                       │             │
//        └── future<Response>                    │             ▼
//                                                │         exec engine
//                                                │             │
//                  (drains up to batch_window    │   ├── plan cache (SAGE
//                   requests, coalesces SpMV →   │   │   once per workload)
//                   SpMM and fuses same-plan     │   └── conversion cache
//                   SpMM — runtime/batcher.hpp)  │       (operand ACF reps,
//                                                        shared read-only)
//
// Operands are registered up front and referred to by stable handles;
// their contents are immutable for the handle's lifetime (that contract
// is what lets handle ids key both caches). Each request resolves a Plan
// (memoized SAGE decision), borrows the operand's converted representation
// from the conversion cache, and runs the kernel natively through the
// exec engine's const-ref entry points. Results return through futures
// together with a ServeStats record; aggregate counters feed benches.
//
// Thread policy (see common/threads.hpp): with more than one worker the
// server joins a process-wide thread budget that caps the OpenMP kernel
// width to hardware_threads() / (total workers across all live servers),
// so kernel teams x workers never oversubscribe the machine even with
// overlapping Server lifetimes; the pre-cap setting is restored when the
// last capping server stops.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "accel/config.hpp"
#include "common/aligned.hpp"
#include "common/thread_annotations.hpp"
#include "energy/energy_model.hpp"
#include "exec/backend.hpp"
#include "exec/device_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/arena.hpp"
#include "runtime/batcher.hpp"
#include "runtime/conversion_cache.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/stats.hpp"

namespace mt::runtime {

struct MatrixHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

struct TensorHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

// One unit of work. Which fields matter depends on the kernel:
//   kSpMV            a + vec
//   kGemm / kSpMM    a + dense_b, or a + b (both registered/sparse)
//   kSpGEMM          a + b
//   kSpTTM           x + dense_b (the factor U)
//   kMTTKRP          x + dense_b + dense_c
struct Request {
  Kernel kernel = Kernel::kSpMV;
  MatrixHandle a;              // sparse/registered matrix operand
  MatrixHandle b;              // second registered operand (pair kernels)
  TensorHandle x;              // tensor operand (tensor kernels)
  std::vector<value_t> vec;    // SpMV input vector
  DenseMatrix dense_b;         // dense factor (SpMM B / SpTTM U / MTTKRP B)
  DenseMatrix dense_c;         // MTTKRP C
  // Trace identity (obs/trace.hpp). 0 = assign at admission; the
  // ShardedServer router pre-assigns so one id follows a request across
  // its shard hop. Ignored when tracing is off.
  std::uint64_t trace_id = 0;
};

// Exactly the exec layer's job-output variant — SpMV -> vector,
// GEMM/SpMM/MTTKRP -> DenseMatrix, SpGEMM -> CsrMatrix, SpTTM ->
// DenseTensor3 — so a backend's JobResult::output moves into a Response
// without repacking.
using Result = exec::JobOutput;

struct Response {
  Result result;
  ServeStats stats;
};

// Telemetry switches (src/obs). The always-on baseline — the
// ServerCounters sums behind Server::counters() — is not gated here; it
// predates this layer and benches depend on it. These knobs govern the
// *extra* instrumentation:
//
//   metrics   latency histograms (queue wait, per-kernel x format x tier
//             exec time) and per-plan accumulators. Hot-path cost per
//             request: a handful of relaxed atomic adds on per-thread
//             shards (obs/metrics.hpp).
//   tracing   per-request stage spans into a bounded ring
//             (trace_ring_capacity > 0). Spans are derived from the
//             stage timestamps the server already measures, so the cost
//             is one short lock + a few copies per request, not extra
//             clock reads.
struct ObsOptions {
  bool metrics = true;
  std::size_t trace_ring_capacity = 0;  // records kept; 0 = tracing off
};

// Cache behavior: bypass switches exist for benchmarking the no-cache
// path (bench_serve) and for debugging; serving traffic wants both on.
// Capacity budgets (cache_policy.hpp) default unbounded; bounded caches
// shed cost-aware-LRU victims past the budget, and a zero budget stores
// nothing. Under a ShardedServer these bound each shard, which is what
// keeps operand churn safe at fleet scale.
struct CacheSettings {
  bool use_plan_cache = true;        // off: SAGE search on every request
  bool use_conversion_cache = true;  // off: operands re-convert per request
  CacheOptions plan_limits;
  CacheOptions conversion_limits;
};

// Request batching at the queue head (see runtime/batcher.hpp): kWindow
// lets each worker drain up to `window` queued requests and coalesce
// same-workload SpMV/SpMM/GEMM into one fused kernel; kOff is the
// one-request-one-kernel path.
struct BatchSettings {
  BatchPolicy policy = BatchPolicy::kWindow;
  int window = 8;
};

// Dense payload recycling (runtime/arena.hpp): the batcher's fused
// factors and every per-response dense block draw their 64-byte-aligned
// storage from a server-owned slab arena, so steady-state serving stops
// hitting the global allocator for payload-sized buffers. Off: plain
// aligned heap allocations — identical bytes, no recycling.
struct ArenaSettings {
  bool enabled = true;
  std::size_t max_cached_bytes = std::size_t{64} << 20;
};

// How requests pick between the host kernels and the configured device
// backend. Routing happens at plan resolution, so it is part of the plan
// key: the same workload routed to different substrates is two plans.
enum class BackendPolicy : std::uint8_t {
  kForce,  // every request executes on BackendOptions::backend
  kAuto,   // per request: the substrate with the cheaper priced envelope
           // (exec::Backend::price on the flops estimate) wins. Requires
           // a device backend — with none configured there is nothing to
           // route between.
};

// Which execution substrate serves requests (exec/backend.hpp) and how.
//
//   backend   kCpu routes every request through the host kernel library
//             (the default, and the only fused/coalesced path). kSim and
//             kMint build that device backend at server start; `policy`
//             decides which requests route to it; plans gain the backend
//             dimension and are priced on both substrates.
//   async     device jobs go through a bounded submission ring
//             (exec/device_ring.hpp): each serving worker submits its
//             whole drained window before claiming any completion, so one
//             worker keeps up to `window` device jobs in flight instead
//             of blocking inside each kernel call. Requires a device
//             backend.
//   dual_run  every device result is cross-checked against the CPU
//             backend on the same job; a relative error above
//             dual_run_tolerance fails the request (and shows up in
//             mt_serve_dual_run_mismatches_total). The tolerance covers
//             SimBackend's fp32 K-tile reassociation (tests/test_backend
//             documents the bound); mint results are bit-identical.
//   simulate_latency  MintBackend only: run() occupies the modeled
//             offload latency (bounded by max_simulated_latency_ns) so
//             async overlap is physically observable even on one core.
struct BackendOptions {
  exec::BackendKind backend = exec::BackendKind::kCpu;
  BackendPolicy policy = BackendPolicy::kForce;
  bool async = false;
  std::size_t ring_slots = 32;  // descriptor-queue bound
  int ring_workers = 2;         // device-side executor threads
  bool dual_run = false;
  double dual_run_tolerance = 5e-4;
  bool simulate_latency = false;
  std::int64_t max_simulated_latency_ns = 2'000'000;
};

struct ServerOptions {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  CacheSettings caches;
  BatchSettings batch;
  ArenaSettings arena;
  BackendOptions backend;
  bool cap_kernel_threads = true;    // keep workers x OpenMP width <= hw
  // Set by ShardedServer on its shards: join the process-wide kernel
  // thread budget even with a single worker, so N single-worker shards
  // count as N concurrent kernel callers (a lone 1-worker Server has
  // nothing to share with and skips the registry).
  bool shard_member = false;
  AccelConfig accel = AccelConfig::paper_default();
  EnergyParams energy;
  // Telemetry (src/obs): histograms/per-plan accumulators and request
  // tracing. Defaults keep metrics on (the ≥0.95x overhead budget is
  // checked by bench_serve) and tracing off.
  ObsOptions obs;

  // --- Deprecated aliases (one release) ---
  //
  // The pre-grouping flat knobs. Server construction calls normalized(),
  // which folds any alias that differs from its default into the nested
  // group above (the alias wins over an untouched group field, so old
  // call sites keep working verbatim). New code sets the groups directly.
  [[deprecated("use caches.use_plan_cache")]]
  bool use_plan_cache = true;
  [[deprecated("use caches.use_conversion_cache")]]
  bool use_conversion_cache = true;
  [[deprecated("use caches.plan_limits")]]
  CacheOptions plan_cache_limits;
  [[deprecated("use caches.conversion_limits")]]
  CacheOptions conversion_cache_limits;
  [[deprecated("use batch.policy")]]
  BatchPolicy batching = BatchPolicy::kWindow;
  [[deprecated("use batch.window")]]
  int batch_window = 8;
  [[deprecated("use arena.enabled")]]
  bool use_arena = true;
  [[deprecated("use arena.max_cached_bytes")]]
  std::size_t arena_max_cached_bytes = std::size_t{64} << 20;

  // A copy with every set deprecated alias folded into its group.
  ServerOptions normalized() const;

  // Special members are user-declared and defaulted out of line (in
  // server.cpp, inside a -Wdeprecated-declarations suppression): the
  // compiler-synthesized versions would copy the deprecated aliases and
  // trip -Werror in every TU that copies a ServerOptions.
  ServerOptions();
  ServerOptions(const ServerOptions&);
  ServerOptions(ServerOptions&&);
  ServerOptions& operator=(const ServerOptions&);
  ServerOptions& operator=(ServerOptions&&);
  ~ServerOptions();
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- Operand registry (callable concurrently with serving) ---

  // Registers an operand in whatever MCF it arrives in; the returned
  // handle is stable for the server's lifetime and never reused. The
  // operand's contents are immutable once registered.
  MatrixHandle register_matrix(AnyMatrix m);
  TensorHandle register_tensor(AnyTensor t);

  // Registers an operand that already lives behind a shared immutable
  // representation, without copying it. The router's cross-shard
  // replication path uses this: the same underlying bytes serve as the
  // source on the home shard and the replica on the executing shard.
  MatrixHandle adopt_matrix(ConversionCache::MatrixPtr m);

  // The registered source representation behind `h` (shared, zero-copy);
  // throws std::invalid_argument if the handle is unknown or evicted.
  ConversionCache::MatrixPtr matrix_source(MatrixHandle h) const;

  // Unregisters the operand and purges its cache entries. In-flight
  // requests already holding its representations finish normally;
  // requests that name the handle afterwards fail (via their future).
  void evict(MatrixHandle h);
  void evict(TensorHandle h);

  // --- Serving ---

  // Enqueues the request (blocking while the queue is full — bounded-queue
  // backpressure) and returns the future carrying the Response. Errors
  // (unknown handle, shape mismatch, stopped server) surface as exceptions
  // on the future.
  std::future<Response> submit(Request r);

  // Resolves (and, caches enabled, memoizes) the plan for `r` without
  // executing it — warmup and tests use this to learn run_a/run_b.
  PlanCache::PlanPtr plan_for(const Request& r);

  // --- Model lifecycle ---

  // Swaps the accelerator/energy model future requests plan against and
  // eagerly retires the superseded fingerprint's cached plans (they could
  // never be hit again — the fingerprint is part of every device-backend
  // plan key). Returns the retired plans broken down by backend.
  // Retirement is backend-partitioned: CPU-backend plans are keyed on
  // kHostModel because CpuBackend pricing never reads the device model,
  // so a device-model swap retires zero of them — they stay cached and
  // keep hitting. (Their SAGE format choice therefore stays pinned at
  // first resolution; re-tuning formats from measured latency is the
  // ROADMAP's adaptive-planning item.) Callable while serving: in-flight
  // requests finish under whichever model they resolved.
  RetireCounts update_model(const AccelConfig& accel,
                            const EnergyParams& energy);

  // Drops every cached plan priced against `model_fingerprint`; returns
  // the per-backend retire counts. update_model calls this for the old
  // model; it is public so external bookkeeping can retire fingerprints
  // it knows are stale. retire_plans(kHostModel) is a no-op by design
  // (see PlanCache::retire).
  RetireCounts retire_plans(std::uint64_t model_fingerprint);

  // Fingerprint of the model currently used for planning.
  std::uint64_t model_fingerprint() const;

  // --- Observability / lifecycle ---

  CountersSnapshot counters() const { return counters_.snapshot(); }
  // Requests admitted but not yet drained by a worker (tests use this to
  // stage deterministic batches; operators to watch backpressure).
  //
  // Consistency contract: the value is an atomic snapshot of THIS queue
  // (taken under the queue mutex — never a torn read), but it is stale
  // the instant it returns. Aggregators summing depths across shards
  // (ShardedServer::queue_depth) therefore see a weakly-consistent sum:
  // each addend was exact at its own read point, while the total may
  // correspond to no single global instant. That is the strongest
  // guarantee available without a stop-the-world lock over every shard,
  // and it is monotonic-safe for the two real uses — staging tests that
  // wait for 0 on an idle server, and operators watching backpressure
  // trends.
  std::size_t queue_depth() const { return queue_.size(); }
  const PlanCache& plan_cache() const { return plans_; }
  const ConversionCache& conversion_cache() const { return reps_; }
  // The options as normalized at construction (deprecated aliases folded
  // into their groups) — read the nested groups, not the aliases.
  const ServerOptions& options() const { return opts_; }
  // The payload arena, or null when ServerOptions::arena.enabled is off.
  const std::shared_ptr<Arena>& arena() const { return arena_; }
  // The async submission ring, or null unless a device backend with
  // backend.async is configured. Exposed for its RingStats (the in-flight
  // high-water mark the async acceptance gates on).
  const exec::DeviceRing* device_ring() const { return ring_.get(); }

  // Full telemetry snapshot: every registry metric (counters and the
  // ObsOptions::metrics histograms) plus pull-based gauges sampled now —
  // cache hit/miss/eviction/entries/bytes, arena reuse/alloc/budget,
  // queue depth/capacity, kernel-thread width, trace-ring drops. Merged
  // shard reads carry the obs/metrics.hpp weak-consistency contract;
  // the pulled gauges carry queue_depth()'s (each exact at its own read
  // point, jointly from no single instant).
  std::vector<obs::MetricSnapshot> metrics_snapshot() const;
  // The snapshot rendered for scraping (obs/export.hpp).
  std::string metrics_text() const;
  std::string metrics_json() const;

  // Drains the trace ring (oldest-first) — empty when tracing is off.
  std::vector<obs::SpanRecord> drain_trace() { return trace_ring_.drain(); }
  const obs::TraceRing& trace_ring() const { return trace_ring_; }

  // Router hooks (ShardedServer): pre-assign trace ids from this shard's
  // id source and deposit router-side spans (the route stage) into this
  // shard's ring, so every record of one trace drains from one place.
  obs::IdSource& trace_ids() { return trace_ids_; }
  void push_span(const obs::SpanRecord& r) { trace_ring_.push(r); }

  // Closes intake, drains queued requests, joins workers, restores the
  // kernel-thread setting. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Item {
    Request req;
    std::promise<Response> promise;
    std::int64_t enqueue_ns = 0;
  };

  void worker_loop();
  void serve_window(std::vector<Item>& window);
  void serve_one(Item& item);
  void serve_fused(std::vector<Item>& window,
                   const std::vector<std::size_t>& members);
  // The fused-group body after the leader's plan is resolved: gather the
  // members' payloads, one coalesced launch, scatter per-member column
  // blocks. `ls` is the leader's stats (it paid the plan/convert costs),
  // `start` the group-start timestamp. Shared by the CPU-only window path
  // (via serve_fused) and CPU-routed groups of the device-capable path.
  void serve_fused_exec(std::vector<Item>& window,
                        const std::vector<std::size_t>& members,
                        const PlanCache::PlanPtr& plan, const ServeStats& ls,
                        std::int64_t start);
  // Device-capable window path: resolves every request's plan (learning
  // its backend route), groups with the backend-aware fuse key so no
  // group crosses a substrate, submits all ring-routed jobs as ONE
  // DeviceRing::submit_all batch before claiming any completion (>1
  // device job in flight per serving worker), and completes groups in
  // first-arrival order — CPU-routed groups fuse/execute on the worker
  // while device jobs are in flight.
  void serve_window_device(std::vector<Item>& window);
  // Replays a served request's stage intervals (already measured into its
  // ServeStats) as trace spans: queue -> plan -> convert -> exec laid
  // end-to-end from `start_ns`. One ring lock per request, zero extra
  // clock reads.
  void record_trace(std::int64_t enqueue_ns, std::int64_t start_ns,
                    const ServeStats& s);
  // The exec-time histogram for this dispatch
  // (mt_exec_ns{kernel=..,format=..,tier=..}), cached per combination so
  // the steady state is one atomic pointer load. Null when metrics off.
  obs::Histogram* exec_hist(const exec::Dispatch& d);
  BatchItem batch_item_for(const Request& r) const;
  Response serve(Request& req, std::int64_t queue_wait_ns);
  void execute_plan(Request& req, const PlanCache::PlanPtr& plan,
                    Response& resp);
  // One backend job for `req` under `plan`, operand pointers borrowed from
  // the resolved representations and the request body. On the CPU backend
  // a coalescible SpMV stages its vector as a width-1 SpMM factor — the
  // bit-stable twin of the fused path — owned by `staged_b`; `unstack`
  // marks the dense result for column-0 extraction.
  struct JobBundle {
    exec::Job job;
    DenseMatrix staged_b;
    bool unstack = false;
  };
  void fill_job(JobBundle& jb, const Request& req, const Plan& plan,
                const AnyMatrix* rep_a, const AnyMatrix* rep_b,
                const AnyTensor* rep_x, bool device) const;
  // Dual-run cross-check: replays `job` on the CPU backend and compares
  // outputs (exec::max_rel_error); records the check and throws when the
  // divergence exceeds opts_.backend.dual_run_tolerance.
  void dual_run_check(const exec::Job& job, const exec::JobResult& device);
  // Coarse useful-MAC estimate of `r` (2 * nnz * width style) feeding
  // exec::PricingInput — a relative scale for ranking backends, not an
  // absolute prediction.
  std::int64_t flops_for(const Request& r) const;
  // Allocator for dense payloads and response blocks: arena-backed when
  // the arena is on, a plain aligned allocator otherwise.
  AlignedAllocator<value_t> dense_alloc() const {
    return arena_ ? arena_allocator(arena_) : AlignedAllocator<value_t>{};
  }
  // One coherent read of the live planning model. Each request takes
  // exactly one snapshot and uses it for both the plan key and the SAGE
  // search, so a concurrent update_model() can never cache a plan priced
  // under one fingerprint but keyed under another.
  struct ModelSnapshot {
    AccelConfig accel;
    EnergyParams energy;
    std::uint64_t fingerprint = 0;
  };
  ModelSnapshot model_snapshot() const;
  PlanCache::PlanPtr resolve_plan(const Request& r, ServeStats& s);
  PlanCache::PlanPtr compute_plan(const Request& r, ServeStats& s,
                                  const ModelSnapshot& model);
  // Which substrate serves `r`: kForce pins every request to the
  // configured backend; kAuto compares the host and device price
  // envelopes (flops estimate only — routing runs before any SAGE
  // search, so it must stay O(1) per request). Both callers of one
  // request pass the same snapshot, so routing and pricing can never
  // straddle an update_model().
  exec::BackendKind route_backend(const Request& r,
                                  const ModelSnapshot& model) const;
  PlanKey key_for(const Request& r, const ModelSnapshot& model) const;

  ConversionCache::MatrixPtr matrix_src(std::uint64_t id) const;
  ConversionCache::TensorPtr tensor_src(std::uint64_t id) const;
  bool operand_registered(std::uint64_t id) const;
  ConversionCache::MatrixPtr matrix_rep(MatrixHandle h, Format f,
                                        ServeStats& s);
  ConversionCache::TensorPtr tensor_rep(TensorHandle h, Format f,
                                        ServeStats& s);

  ServerOptions opts_;

  // Live planning model. Starts as opts_.accel/opts_.energy and may be
  // swapped by update_model(); guarded so planning threads never read a
  // half-updated config. opts_ itself stays immutable after construction.
  mutable SharedMutex model_mu_;
  AccelConfig accel_ MT_GUARDED_BY(model_mu_);
  EnergyParams energy_ MT_GUARDED_BY(model_mu_);
  // sage::plan_fingerprint(accel_, energy_)
  std::uint64_t fingerprint_ MT_GUARDED_BY(model_mu_) = 0;

  std::atomic<std::uint64_t> next_id_{1};
  mutable SharedMutex reg_mu_;
  std::unordered_map<std::uint64_t, ConversionCache::MatrixPtr> matrices_
      MT_GUARDED_BY(reg_mu_);
  std::unordered_map<std::uint64_t, ConversionCache::TensorPtr> tensors_
      MT_GUARDED_BY(reg_mu_);

  // Payload arena (null when opts_.use_arena is false). Shared: response
  // buffers carry the shared_ptr through their allocator, so client-held
  // results stay valid after the server dies.
  std::shared_ptr<Arena> arena_;

  // Telemetry. Declared before counters_: ServerCounters is a view over
  // registry_ and binds its counters at construction.
  obs::Registry registry_;
  obs::IdSource trace_ids_;
  obs::TraceRing trace_ring_;
  // Cached registry references so the hot path never re-does a name
  // lookup: the queue-wait histogram (null = ObsOptions::metrics off) and
  // one lazily-bound slot per (kernel, ran-format, backend x tier) exec
  // histogram. Benign create race: both racers get the same registry
  // object.
  obs::Histogram* queue_wait_hist_ = nullptr;
  std::array<std::atomic<obs::Histogram*>,
             kAllKernels.size() * kAllFormats.size() * exec::kNumTierSlots>
      exec_hists_ = {};

  PlanCache plans_;
  ConversionCache reps_;
  ServerCounters counters_;

  // Execution substrates. cpu_backend_ always exists (the host kernel
  // library behind the exec free functions); device_backend_ only when
  // opts_.backend.backend names a device; ring_ only when backend.async
  // is also set. Declared before the queue/workers so serving threads
  // never outlive them; stop() still tears down in the explicit order
  // queue close -> join workers -> ring stop.
  std::unique_ptr<exec::Backend> cpu_backend_;
  std::unique_ptr<exec::Backend> device_backend_;
  std::unique_ptr<exec::DeviceRing> ring_;

  MpmcQueue<Item> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  bool capped_threads_ = false;
};

}  // namespace mt::runtime
