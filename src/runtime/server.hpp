// Concurrent serving runtime — a stateful server in front of the exec
// engine (paper north star: amortize per-request setup across a stream of
// requests, SimBricks-style client/server shape).
//
//   clients                                        workers
//   submit(Request) ──► bounded MPMC queue ──► worker pool ──► exec engine
//        │                                        │
//        └── future<Response>                     ├── plan cache (SAGE once
//                                                 │   per distinct workload)
//                                                 └── conversion cache
//                                                     (operand ACF reps,
//                                                      shared read-only)
//
// Operands are registered up front and referred to by stable handles;
// their contents are immutable for the handle's lifetime (that contract
// is what lets handle ids key both caches). Each request resolves a Plan
// (memoized SAGE decision), borrows the operand's converted representation
// from the conversion cache, and runs the kernel natively through the
// exec engine's const-ref entry points. Results return through futures
// together with a ServeStats record; aggregate counters feed benches.
//
// Thread policy (see common/threads.hpp): with more than one worker the
// server joins a process-wide thread budget that caps the OpenMP kernel
// width to hardware_threads() / (total workers across all live servers),
// so kernel teams x workers never oversubscribe the machine even with
// overlapping Server lifetimes; the pre-cap setting is restored when the
// last capping server stops.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "accel/config.hpp"
#include "energy/energy_model.hpp"
#include "runtime/conversion_cache.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/stats.hpp"

namespace mt::runtime {

struct MatrixHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

struct TensorHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

// One unit of work. Which fields matter depends on the kernel:
//   kSpMV            a + vec
//   kGemm / kSpMM    a + dense_b, or a + b (both registered/sparse)
//   kSpGEMM          a + b
//   kSpTTM           x + dense_b (the factor U)
//   kMTTKRP          x + dense_b + dense_c
struct Request {
  Kernel kernel = Kernel::kSpMV;
  MatrixHandle a;              // sparse/registered matrix operand
  MatrixHandle b;              // second registered operand (pair kernels)
  TensorHandle x;              // tensor operand (tensor kernels)
  std::vector<value_t> vec;    // SpMV input vector
  DenseMatrix dense_b;         // dense factor (SpMM B / SpTTM U / MTTKRP B)
  DenseMatrix dense_c;         // MTTKRP C
};

using Result =
    std::variant<std::vector<value_t>,  // SpMV
                 DenseMatrix,           // GEMM / SpMM / MTTKRP
                 CsrMatrix,             // SpGEMM
                 DenseTensor3>;         // SpTTM

struct Response {
  Result result;
  ServeStats stats;
};

struct ServerOptions {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  // Cache bypass switches exist for benchmarking the no-cache path
  // (bench_serve) and for debugging; serving traffic wants both on.
  bool use_plan_cache = true;        // off: SAGE search on every request
  bool use_conversion_cache = true;  // off: operands re-convert per request
  bool cap_kernel_threads = true;    // keep workers x OpenMP width <= hw
  AccelConfig accel = AccelConfig::paper_default();
  EnergyParams energy;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // --- Operand registry (callable concurrently with serving) ---

  // Registers an operand in whatever MCF it arrives in; the returned
  // handle is stable for the server's lifetime and never reused. The
  // operand's contents are immutable once registered.
  MatrixHandle register_matrix(AnyMatrix m);
  TensorHandle register_tensor(AnyTensor t);

  // Unregisters the operand and purges its cache entries. In-flight
  // requests already holding its representations finish normally;
  // requests that name the handle afterwards fail (via their future).
  void evict(MatrixHandle h);
  void evict(TensorHandle h);

  // --- Serving ---

  // Enqueues the request (blocking while the queue is full — bounded-queue
  // backpressure) and returns the future carrying the Response. Errors
  // (unknown handle, shape mismatch, stopped server) surface as exceptions
  // on the future.
  std::future<Response> submit(Request r);

  // Resolves (and, caches enabled, memoizes) the plan for `r` without
  // executing it — warmup and tests use this to learn run_a/run_b.
  PlanCache::PlanPtr plan_for(const Request& r);

  // --- Observability / lifecycle ---

  CountersSnapshot counters() const { return counters_.snapshot(); }
  const PlanCache& plan_cache() const { return plans_; }
  const ConversionCache& conversion_cache() const { return reps_; }
  const ServerOptions& options() const { return opts_; }

  // Closes intake, drains queued requests, joins workers, restores the
  // kernel-thread setting. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Item {
    Request req;
    std::promise<Response> promise;
    std::int64_t enqueue_ns = 0;
  };

  void worker_loop();
  Response serve(Request& req, std::int64_t queue_wait_ns);
  PlanCache::PlanPtr resolve_plan(const Request& r, ServeStats& s);
  PlanCache::PlanPtr compute_plan(const Request& r, ServeStats& s);
  PlanKey key_for(const Request& r) const;

  ConversionCache::MatrixPtr matrix_src(std::uint64_t id) const;
  ConversionCache::TensorPtr tensor_src(std::uint64_t id) const;
  bool operand_registered(std::uint64_t id) const;
  ConversionCache::MatrixPtr matrix_rep(MatrixHandle h, Format f,
                                        ServeStats& s);
  ConversionCache::TensorPtr tensor_rep(TensorHandle h, Format f,
                                        ServeStats& s);

  ServerOptions opts_;
  std::uint64_t fingerprint_ = 0;  // sage::plan_fingerprint(accel, energy)

  std::atomic<std::uint64_t> next_id_{1};
  mutable std::shared_mutex reg_mu_;
  std::unordered_map<std::uint64_t, ConversionCache::MatrixPtr> matrices_;
  std::unordered_map<std::uint64_t, ConversionCache::TensorPtr> tensors_;

  PlanCache plans_;
  ConversionCache reps_;
  ServerCounters counters_;

  MpmcQueue<Item> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  bool capped_threads_ = false;
};

}  // namespace mt::runtime
