// Per-request and aggregate observability for the serving runtime.
//
// Every Response carries a ServeStats record: where the request's time
// went (queue wait, SAGE planning, conversion, kernel execution), whether
// the plan cache and conversion cache absorbed the setup work, and the
// exec-engine Dispatch describing the kernel/format actually run. The
// Server folds each record into a ServerCounters instance whose snapshot
// feeds bench_serve and the examples.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "exec/exec.hpp"

namespace mt::runtime {

// Monotonic nanosecond timestamp shared by the queue/server/bench timing.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// How one request was served.
struct ServeStats {
  std::int64_t queue_wait_ns = 0;  // enqueue -> worker dequeue
  std::int64_t plan_ns = 0;        // plan resolution (near-zero on a hit)
  std::int64_t convert_ns = 0;     // operand-representation resolution
  std::int64_t exec_ns = 0;        // ACF kernel execution
  bool plan_cache_hit = false;
  int conversion_hits = 0;    // operand reps served from cache (or shared)
  int conversion_misses = 0;  // operand reps materialized for this request
  bool batched = false;       // served by a coalesced/fused kernel launch
  int batch_size = 1;         // requests sharing that launch (1 = alone)
  exec::Dispatch dispatch;    // how the exec engine ran the kernel
                              // (a coalesced SpMV reports the SpMM it ran)

  std::int64_t total_ns() const {
    return queue_wait_ns + plan_ns + convert_ns + exec_ns;
  }

  // e.g. "SpMV over CSR: native | plan hit, conv 1/0, queue 12us, exec 48us"
  std::string describe() const;
};

// Aggregate view of a ServerCounters instance at one instant.
struct CountersSnapshot {
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_misses = 0;
  std::int64_t conversion_hits = 0;
  std::int64_t conversion_misses = 0;
  std::int64_t batches = 0;           // fused launches serving >1 request
  std::int64_t batched_requests = 0;  // requests served by those launches
  std::int64_t queue_wait_ns = 0;
  std::int64_t plan_ns = 0;
  std::int64_t convert_ns = 0;
  std::int64_t exec_ns = 0;

  double plan_hit_rate() const {
    const auto n = plan_hits + plan_misses;
    return n == 0 ? 0.0 : static_cast<double>(plan_hits) / static_cast<double>(n);
  }
  double conversion_hit_rate() const {
    const auto n = conversion_hits + conversion_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(conversion_hits) / static_cast<double>(n);
  }
  // Fraction of completed requests absorbed into fused launches.
  double batched_fraction() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(batched_requests) /
                                static_cast<double>(completed);
  }
  double avg_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }

  // Field-wise accumulation — the router sums per-shard snapshots into a
  // cross-shard view (each addend is internally consistent; the sum is
  // weakly consistent across shards, like the aggregate queue depth).
  CountersSnapshot& operator+=(const CountersSnapshot& o) {
    completed += o.completed;
    failed += o.failed;
    plan_hits += o.plan_hits;
    plan_misses += o.plan_misses;
    conversion_hits += o.conversion_hits;
    conversion_misses += o.conversion_misses;
    batches += o.batches;
    batched_requests += o.batched_requests;
    queue_wait_ns += o.queue_wait_ns;
    plan_ns += o.plan_ns;
    convert_ns += o.convert_ns;
    exec_ns += o.exec_ns;
    return *this;
  }
};

// Lock-free accumulation of ServeStats records across worker threads.
// Relaxed ordering: counters are monotonic telemetry, not synchronization.
class ServerCounters {
 public:
  void record(const ServeStats& s) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    (s.plan_cache_hit ? plan_hits_ : plan_misses_)
        .fetch_add(1, std::memory_order_relaxed);
    conversion_hits_.fetch_add(s.conversion_hits, std::memory_order_relaxed);
    conversion_misses_.fetch_add(s.conversion_misses,
                                 std::memory_order_relaxed);
    queue_wait_ns_.fetch_add(s.queue_wait_ns, std::memory_order_relaxed);
    plan_ns_.fetch_add(s.plan_ns, std::memory_order_relaxed);
    convert_ns_.fetch_add(s.convert_ns, std::memory_order_relaxed);
    exec_ns_.fetch_add(s.exec_ns, std::memory_order_relaxed);
  }

  void record_failure() { failed_.fetch_add(1, std::memory_order_relaxed); }

  // Called once per fused launch that served `n` (> 1) requests; the
  // per-request record() calls above still happen for every member.
  void record_batch(int n) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(n, std::memory_order_relaxed);
  }

  CountersSnapshot snapshot() const {
    CountersSnapshot c;
    c.completed = completed_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    c.plan_hits = plan_hits_.load(std::memory_order_relaxed);
    c.plan_misses = plan_misses_.load(std::memory_order_relaxed);
    c.conversion_hits = conversion_hits_.load(std::memory_order_relaxed);
    c.conversion_misses = conversion_misses_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.batched_requests = batched_requests_.load(std::memory_order_relaxed);
    c.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
    c.plan_ns = plan_ns_.load(std::memory_order_relaxed);
    c.convert_ns = convert_ns_.load(std::memory_order_relaxed);
    c.exec_ns = exec_ns_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<std::int64_t> completed_{0}, failed_{0};
  std::atomic<std::int64_t> plan_hits_{0}, plan_misses_{0};
  std::atomic<std::int64_t> conversion_hits_{0}, conversion_misses_{0};
  std::atomic<std::int64_t> batches_{0}, batched_requests_{0};
  std::atomic<std::int64_t> queue_wait_ns_{0}, plan_ns_{0}, convert_ns_{0},
      exec_ns_{0};
};

}  // namespace mt::runtime
