// Per-request and aggregate observability for the serving runtime.
//
// Every Response carries a ServeStats record: where the request's time
// went (queue wait, SAGE planning, conversion, kernel execution), whether
// the plan cache and conversion cache absorbed the setup work, and the
// exec-engine Dispatch describing the kernel/format actually run. The
// Server folds each record into a ServerCounters instance whose snapshot
// feeds bench_serve and the examples.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"

namespace mt::runtime {

// Monotonic nanosecond timestamp shared by the queue/server/bench timing.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// How one request was served.
struct ServeStats {
  std::int64_t queue_wait_ns = 0;  // enqueue -> worker dequeue
  std::int64_t plan_ns = 0;        // plan resolution (near-zero on a hit)
  std::int64_t convert_ns = 0;     // operand-representation resolution
  std::int64_t exec_ns = 0;        // ACF kernel execution
  bool plan_cache_hit = false;
  int conversion_hits = 0;    // operand reps served from cache (or shared)
  int conversion_misses = 0;  // operand reps materialized for this request
  bool batched = false;       // served by a coalesced/fused kernel launch
  int batch_size = 1;         // requests sharing that launch (1 = alone)
  // Device-path accounting (zero on the CPU backend):
  std::int64_t device_ns = 0;       // modeled/simulated device time of the
                                    // job (JobResult::device_ns)
  std::int64_t device_wait_ns = 0;  // async ring only: time the serving
                                    // worker blocked claiming the ticket
                                    // (short when submits overlapped well)
  exec::Dispatch dispatch;    // how the exec engine ran the kernel
                              // (a coalesced SpMV reports the SpMM it ran)
  std::uint64_t trace_id = 0;  // key into Server::drain_trace() records
                               // (0 when tracing is off)

  std::int64_t total_ns() const {
    return queue_wait_ns + plan_ns + convert_ns + exec_ns;
  }

  // e.g. "SpMV over CSR: native | plan hit, conv 1/0, queue 12us, exec 48us"
  std::string describe() const;
};

// Aggregate view of a ServerCounters instance at one instant.
struct CountersSnapshot {
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_misses = 0;
  std::int64_t conversion_hits = 0;
  std::int64_t conversion_misses = 0;
  std::int64_t batches = 0;           // fused launches serving >1 request
  std::int64_t batched_requests = 0;  // requests served by those launches
  std::int64_t device_jobs = 0;       // requests executed on a device backend
  std::int64_t device_wait_ns = 0;    // total async claim-block time
  std::int64_t dual_run_checks = 0;      // CPU-vs-device cross-checks run
  std::int64_t dual_run_mismatches = 0;  // checks outside tolerance (the
                                         // request also failed)
  std::int64_t queue_wait_ns = 0;
  std::int64_t plan_ns = 0;
  std::int64_t convert_ns = 0;
  std::int64_t exec_ns = 0;

  double plan_hit_rate() const {
    const auto n = plan_hits + plan_misses;
    return n == 0 ? 0.0 : static_cast<double>(plan_hits) / static_cast<double>(n);
  }
  double conversion_hit_rate() const {
    const auto n = conversion_hits + conversion_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(conversion_hits) / static_cast<double>(n);
  }
  // Fraction of completed requests absorbed into fused launches.
  double batched_fraction() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(batched_requests) /
                                static_cast<double>(completed);
  }
  double avg_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }

  // Field-wise accumulation — the router sums per-shard snapshots into a
  // cross-shard view (each addend is internally consistent; the sum is
  // weakly consistent across shards, like the aggregate queue depth).
  CountersSnapshot& operator+=(const CountersSnapshot& o) {
    completed += o.completed;
    failed += o.failed;
    plan_hits += o.plan_hits;
    plan_misses += o.plan_misses;
    conversion_hits += o.conversion_hits;
    conversion_misses += o.conversion_misses;
    batches += o.batches;
    batched_requests += o.batched_requests;
    device_jobs += o.device_jobs;
    device_wait_ns += o.device_wait_ns;
    dual_run_checks += o.dual_run_checks;
    dual_run_mismatches += o.dual_run_mismatches;
    queue_wait_ns += o.queue_wait_ns;
    plan_ns += o.plan_ns;
    convert_ns += o.convert_ns;
    exec_ns += o.exec_ns;
    return *this;
  }
};

// Lock-free accumulation of ServeStats records across worker threads — a
// thin view over an obs::Registry. Each member points at a registry
// counter (mt_serve_*_total), so everything record() folds in shows up in
// Server::metrics_text() under the same names this snapshot reports, with
// no second set of books.
//
// Consistency: snapshot() performs one merged shard read per counter (the
// obs/metrics.hpp contract) — weakly consistent while workers are still
// recording, exact once they are quiescent. The same shape as the queue's
// size() contract: trends while running, exact totals at rest.
class ServerCounters {
 public:
  // Creates (or adopts) the mt_serve_* counters in `reg`. The references
  // are stable for the registry's lifetime; the registry must outlive
  // this view.
  explicit ServerCounters(obs::Registry& reg)
      : completed_(&reg.counter("mt_serve_requests_total")),
        failed_(&reg.counter("mt_serve_failures_total")),
        plan_hits_(&reg.counter("mt_serve_plan_hits_total")),
        plan_misses_(&reg.counter("mt_serve_plan_misses_total")),
        conversion_hits_(&reg.counter("mt_serve_conversion_hits_total")),
        conversion_misses_(&reg.counter("mt_serve_conversion_misses_total")),
        batches_(&reg.counter("mt_serve_batches_total")),
        batched_requests_(&reg.counter("mt_serve_batched_requests_total")),
        device_jobs_(&reg.counter("mt_serve_device_jobs_total")),
        device_wait_ns_(&reg.counter("mt_serve_device_wait_ns_total")),
        dual_run_checks_(&reg.counter("mt_serve_dual_run_checks_total")),
        dual_run_mismatches_(
            &reg.counter("mt_serve_dual_run_mismatches_total")),
        dual_run_mismatch_alert_(
            &reg.counter("mt_dual_run_mismatches_total")),
        queue_wait_ns_(&reg.counter("mt_serve_queue_wait_ns_total")),
        plan_ns_(&reg.counter("mt_serve_plan_ns_total")),
        convert_ns_(&reg.counter("mt_serve_convert_ns_total")),
        exec_ns_(&reg.counter("mt_serve_exec_ns_total")) {}

  void record(const ServeStats& s) {
    completed_->inc();
    (s.plan_cache_hit ? plan_hits_ : plan_misses_)->inc();
    conversion_hits_->add(s.conversion_hits);
    conversion_misses_->add(s.conversion_misses);
    if (s.dispatch.backend != exec::BackendKind::kCpu) {
      device_jobs_->inc();
      device_wait_ns_->add(s.device_wait_ns);
    }
    queue_wait_ns_->add(s.queue_wait_ns);
    plan_ns_->add(s.plan_ns);
    convert_ns_->add(s.convert_ns);
    exec_ns_->add(s.exec_ns);
  }

  void record_failure() { failed_->inc(); }

  // Called once per fused launch that served `n` (> 1) requests; the
  // per-request record() calls above still happen for every member.
  void record_batch(int n) {
    batches_->inc();
    batched_requests_->add(n);
  }

  // Called once per dual-run cross-check; a mismatched check also fails
  // the request (record_failure), so mismatches <= failed always holds.
  // Mismatches feed two series: the mt_serve_-prefixed counter the
  // snapshot reports, and the short alerting alias
  // mt_dual_run_mismatches_total (README documents the alert rule — any
  // increase means a device backend returned wrong numbers).
  void record_dual_run(bool within_tolerance) {
    dual_run_checks_->inc();
    if (!within_tolerance) {
      dual_run_mismatches_->inc();
      dual_run_mismatch_alert_->inc();
    }
  }

  CountersSnapshot snapshot() const {
    CountersSnapshot c;
    c.completed = completed_->value();
    c.failed = failed_->value();
    c.plan_hits = plan_hits_->value();
    c.plan_misses = plan_misses_->value();
    c.conversion_hits = conversion_hits_->value();
    c.conversion_misses = conversion_misses_->value();
    c.batches = batches_->value();
    c.batched_requests = batched_requests_->value();
    c.device_jobs = device_jobs_->value();
    c.device_wait_ns = device_wait_ns_->value();
    c.dual_run_checks = dual_run_checks_->value();
    c.dual_run_mismatches = dual_run_mismatches_->value();
    c.queue_wait_ns = queue_wait_ns_->value();
    c.plan_ns = plan_ns_->value();
    c.convert_ns = convert_ns_->value();
    c.exec_ns = exec_ns_->value();
    return c;
  }

 private:
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* plan_hits_;
  obs::Counter* plan_misses_;
  obs::Counter* conversion_hits_;
  obs::Counter* conversion_misses_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Counter* device_jobs_;
  obs::Counter* device_wait_ns_;
  obs::Counter* dual_run_checks_;
  obs::Counter* dual_run_mismatches_;
  obs::Counter* dual_run_mismatch_alert_;
  obs::Counter* queue_wait_ns_;
  obs::Counter* plan_ns_;
  obs::Counter* convert_ns_;
  obs::Counter* exec_ns_;
};

}  // namespace mt::runtime
