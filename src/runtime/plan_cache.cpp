#include "runtime/plan_cache.hpp"

#include "runtime/stats.hpp"

namespace mt::runtime {

namespace {

void mix(std::size_t& h, std::uint64_t v) {
  // splitmix64-style avalanche, folded into the running hash.
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t h = 0;
  mix(h, static_cast<std::uint64_t>(k.kernel));
  mix(h, k.a);
  mix(h, k.b);
  mix(h, k.model);
  mix(h, static_cast<std::uint64_t>(k.width));
  mix(h, static_cast<std::uint64_t>(k.backend));
  return h;
}

PlanCache::PlanPtr PlanCache::get_or_compute(const PlanKey& key,
                                             const Compute& fn, bool* hit) {
  if (limits_.bypass()) {
    // Zero budget: search without publishing (no single-flight either —
    // exactly the semantics a disabled cache asks for).
    if (hit != nullptr) *hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return fn();
  }
  std::shared_future<PlanPtr> fut;
  std::promise<PlanPtr> mine;
  bool compute = false;
  {
    LockGuard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second.fut;
      // Refresh recency so hot workloads outlive capacity pressure.
      if (it->second.ready) index_.refresh(key);
    } else {
      fut = mine.get_future().share();
      map_.emplace(key, Entry{fut, /*ready=*/false});
      compute = true;
    }
  }
  if (hit != nullptr) *hit = !compute;
  (compute ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  if (compute) {
    try {
      const auto t0 = now_ns();
      PlanPtr plan = fn();
      const auto cost_ns = static_cast<double>(now_ns() - t0);
      {
        LockGuard lk(mu_);
        // The entry may have been evicted/retired while we searched; only
        // finalize (and index) entries that are still published.
        auto it = map_.find(key);
        if (it != map_.end()) {
          it->second.ready = true;
          index_.touch(key, cost_ns, sizeof(Plan));
          enforce_limits();
        }
      }
      mine.set_value(std::move(plan));
    } catch (...) {
      // Un-publish so later requests retry instead of caching the error,
      // then propagate to this caller and any waiters.
      // (If clear()/evict raced us this may drop a successor's fresh
      // entry; that only costs one recompute, never a wrong result.)
      {
        LockGuard lk(mu_);
        map_.erase(key);
        index_.erase(key);
      }
      mine.set_exception(std::current_exception());
    }
  }
  return fut.get();  // rethrows the computing thread's exception, if any
}

void PlanCache::enforce_limits() {
  while (index_.over(limits_)) {
    const auto victim = index_.pop_victim();
    if (!victim) break;  // everything left is in-flight; nothing evictable
    map_.erase(*victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::evict_operand(std::uint64_t id) {
  LockGuard lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.a == id || it->first.b == id) {
      index_.erase(it->first);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

RetireCounts PlanCache::retire(std::uint64_t model) {
  RetireCounts retired;
  // kHostModel marks model-independent (CPU-backend) plans; sweeping it
  // would throw away plans no model swap can invalidate.
  if (model == kHostModel) return retired;
  LockGuard lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.model == model) {
      ++retired.by_backend[static_cast<std::size_t>(it->first.backend)];
      index_.erase(it->first);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  return retired;
}

void PlanCache::clear() {
  LockGuard lk(mu_);
  map_.clear();
  index_.clear();
}

std::size_t PlanCache::size() const {
  LockGuard lk(mu_);
  return map_.size();
}

}  // namespace mt::runtime
