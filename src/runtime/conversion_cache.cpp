#include "runtime/conversion_cache.hpp"

#include <type_traits>

#include "runtime/stats.hpp"

namespace mt::runtime {

template <typename Ptr>
std::unordered_map<ConversionCache::Key, ConversionCache::Entry<Ptr>,
                   ConversionCache::KeyHash>&
ConversionCache::map_for() {
  if constexpr (std::is_same_v<Ptr, MatrixPtr>) {
    return matrices_;
  } else {
    static_assert(std::is_same_v<Ptr, TensorPtr>);
    return tensors_;
  }
}

template <typename Ptr, typename Convert, typename Bytes>
Ptr ConversionCache::get(Key key, const Convert& fn, const Bytes& bytes_of,
                         bool* hit) {
  if (limits_.bypass()) {
    // Zero budget: compute without publishing (and without single-flight —
    // concurrent callers each convert; that is the semantics bypass asks
    // for).
    if (hit != nullptr) *hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return fn();
  }
  std::shared_future<Ptr> fut;
  std::promise<Ptr> mine;
  bool compute = false;
  {
    LockGuard lk(mu_);
    auto& map = map_for<Ptr>();
    auto it = map.find(key);
    if (it != map.end()) {
      fut = it->second.fut;
      // Refresh recency so a hot representation outlives capacity
      // pressure. Entries still being computed are not indexed yet.
      if (it->second.ready) index_.refresh(key);
    } else {
      fut = mine.get_future().share();
      map.emplace(key, Entry<Ptr>{fut, /*ready=*/false});
      compute = true;
    }
  }
  if (hit != nullptr) *hit = !compute;
  (compute ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  if (compute) {
    try {
      const auto t0 = now_ns();
      Ptr rep = fn();
      const auto cost_ns = static_cast<double>(now_ns() - t0);
      {
        LockGuard lk(mu_);
        // The entry may have been evict(id)ed while we converted; only
        // finalize (and index) entries that are still published.
        auto& map = map_for<Ptr>();
        auto it = map.find(key);
        if (it != map.end()) {
          it->second.ready = true;
          index_.touch(key, cost_ns, bytes_of(*rep));
          enforce_limits();
        }
      }
      mine.set_value(std::move(rep));
    } catch (...) {
      {
        LockGuard lk(mu_);
        map_for<Ptr>().erase(key);
        index_.erase(key);
      }
      mine.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

void ConversionCache::enforce_limits() {
  while (index_.over(limits_)) {
    const auto victim = index_.pop_victim();
    if (!victim) break;  // everything left is in-flight; nothing evictable
    matrices_.erase(*victim);
    tensors_.erase(*victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ConversionCache::MatrixPtr ConversionCache::matrix(std::uint64_t id, Format f,
                                                   const MatrixPtr& src,
                                                   bool* hit) {
  if (format_of(*src) == f) {
    // Identity: share the registered representation, no copy.
    if (hit != nullptr) *hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return src;
  }
  return get<MatrixPtr>(
      Key{id, f},
      [&] { return std::make_shared<const AnyMatrix>(convert(*src, f)); },
      [](const AnyMatrix& m) {
        return static_cast<std::size_t>(
            storage_of(m, DataType::kFp32).total_bytes());
      },
      hit);
}

ConversionCache::TensorPtr ConversionCache::tensor(std::uint64_t id, Format f,
                                                   const TensorPtr& src,
                                                   bool* hit) {
  if (format_of(*src) == f) {
    if (hit != nullptr) *hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return src;
  }
  return get<TensorPtr>(
      Key{id, f},
      [&] { return std::make_shared<const AnyTensor>(convert(*src, f)); },
      [](const AnyTensor& t) {
        return static_cast<std::size_t>(
            storage_of(t, DataType::kFp32).total_bytes());
      },
      hit);
}

void ConversionCache::evict(std::uint64_t id) {
  LockGuard lk(mu_);
  for (auto it = matrices_.begin(); it != matrices_.end();) {
    if (it->first.id == id) {
      index_.erase(it->first);
      it = matrices_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = tensors_.begin(); it != tensors_.end();) {
    if (it->first.id == id) {
      index_.erase(it->first);
      it = tensors_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConversionCache::clear() {
  LockGuard lk(mu_);
  matrices_.clear();
  tensors_.clear();
  index_.clear();
}

std::size_t ConversionCache::size() const {
  LockGuard lk(mu_);
  return matrices_.size() + tensors_.size();
}

std::size_t ConversionCache::bytes() const {
  LockGuard lk(mu_);
  return index_.bytes();
}

}  // namespace mt::runtime
