#include "runtime/conversion_cache.hpp"

namespace mt::runtime {

template <typename Ptr, typename Convert>
Ptr ConversionCache::get(
    std::unordered_map<Key, std::shared_future<Ptr>, KeyHash>& map, Key key,
    const Convert& fn, bool* hit) {
  std::shared_future<Ptr> fut;
  std::promise<Ptr> mine;
  bool compute = false;
  {
    std::lock_guard lk(mu_);
    auto it = map.find(key);
    if (it != map.end()) {
      fut = it->second;
    } else {
      fut = mine.get_future().share();
      map.emplace(key, fut);
      compute = true;
    }
  }
  if (hit != nullptr) *hit = !compute;
  (compute ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  if (compute) {
    try {
      mine.set_value(fn());
    } catch (...) {
      {
        std::lock_guard lk(mu_);
        map.erase(key);
      }
      mine.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

ConversionCache::MatrixPtr ConversionCache::matrix(std::uint64_t id, Format f,
                                                   const MatrixPtr& src,
                                                   bool* hit) {
  if (format_of(*src) == f) {
    // Identity: share the registered representation, no copy.
    if (hit != nullptr) *hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return src;
  }
  return get(matrices_, Key{id, f},
             [&] { return std::make_shared<const AnyMatrix>(convert(*src, f)); },
             hit);
}

ConversionCache::TensorPtr ConversionCache::tensor(std::uint64_t id, Format f,
                                                   const TensorPtr& src,
                                                   bool* hit) {
  if (format_of(*src) == f) {
    if (hit != nullptr) *hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return src;
  }
  return get(tensors_, Key{id, f},
             [&] { return std::make_shared<const AnyTensor>(convert(*src, f)); },
             hit);
}

void ConversionCache::evict(std::uint64_t id) {
  std::lock_guard lk(mu_);
  for (auto it = matrices_.begin(); it != matrices_.end();) {
    it = it->first.id == id ? matrices_.erase(it) : std::next(it);
  }
  for (auto it = tensors_.begin(); it != tensors_.end();) {
    it = it->first.id == id ? tensors_.erase(it) : std::next(it);
  }
}

void ConversionCache::clear() {
  std::lock_guard lk(mu_);
  matrices_.clear();
  tensors_.clear();
}

std::size_t ConversionCache::size() const {
  std::lock_guard lk(mu_);
  return matrices_.size() + tensors_.size();
}

}  // namespace mt::runtime
