// Slab-recycling arena behind the serving runtime's dense payloads.
//
// The batcher's gather/scatter path (exec::stack_columns /
// exec::concat_columns / exec::column_block) materializes a dense
// payload per batch and a dense block per response. Sizes repeat
// heavily across batches (same models, same batch windows), so instead
// of hitting the global allocator per request the Server routes those
// buffers through an Arena: a thread-safe free list keyed by padded
// byte size (the size classes AlignedAllocator computes — whole cache
// lines), bounded by a byte budget.
//
// Implements mt::MemoryPool (common/aligned.hpp), so plugging it in is
// just handing an arena-backed AlignedAllocator to the existing
// containers — the buffers themselves are ordinary AlignedVec storage,
// 64-byte aligned, and travel by move through the queue→worker→future
// hop without copies.
//
// Lifetime: allocators hold a shared_ptr<MemoryPool>, so a response
// vector handed to a client keeps the arena alive even after the
// Server that owned it is destroyed. Always create via
// std::make_shared<Arena>().
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/aligned.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace mt::runtime {

class Arena final : public MemoryPool {
 public:
  // `max_cached_bytes` bounds the free lists (not outstanding memory):
  // a release that would exceed the budget frees eagerly instead.
  explicit Arena(std::size_t max_cached_bytes = std::size_t{64} << 20);
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // MemoryPool: `bytes` is already padded to whole cache lines by
  // AlignedAllocator; the free lists are keyed by that exact size.
  void* acquire(std::size_t bytes) override MT_EXCLUDES(mu_);
  void release(void* p, std::size_t bytes) noexcept override
      MT_EXCLUDES(mu_);

  struct Stats {
    std::size_t fresh_allocs = 0;   // acquire() misses (hit ::operator new)
    std::size_t reuses = 0;         // acquire() hits (recycled slab)
    std::size_t cached_bytes = 0;   // bytes parked in free lists
    std::size_t outstanding = 0;    // blocks acquired and not yet released
  };
  Stats stats() const MT_EXCLUDES(mu_);

  // The free-list byte budget (the ctor argument) — exported as the
  // mt_arena_budget_bytes gauge so cached_bytes has a denominator.
  std::size_t max_cached_bytes() const { return max_cached_bytes_; }

  // Frees every cached slab (outstanding blocks are untouched).
  void trim() MT_EXCLUDES(mu_);

 private:
  const std::size_t max_cached_bytes_;
  mutable Mutex mu_;
  std::unordered_map<std::size_t, std::vector<void*>> free_
      MT_GUARDED_BY(mu_);
  Stats stats_ MT_GUARDED_BY(mu_);
};

// Convenience: an allocator for value buffers drawing from `arena`.
inline AlignedAllocator<value_t> arena_allocator(
    std::shared_ptr<Arena> arena) {
  return AlignedAllocator<value_t>(std::move(arena));
}

}  // namespace mt::runtime
