#include "runtime/stats.hpp"

#include <sstream>

namespace mt::runtime {

std::string ServeStats::describe() const {
  std::ostringstream os;
  os << dispatch.describe() << " | plan "
     << (plan_cache_hit ? "hit" : "miss") << ", conv " << conversion_hits
     << '/' << conversion_misses;
  if (batched) os << ", batch " << batch_size;
  os << ", queue " << queue_wait_ns / 1000
     << "us, plan " << plan_ns / 1000 << "us, convert " << convert_ns / 1000
     << "us, exec " << exec_ns / 1000 << "us";
  return os.str();
}

}  // namespace mt::runtime
