#include "runtime/batcher.hpp"

#include <unordered_map>

namespace mt::runtime {

namespace {

// Fusion identity of one batchable request. Two requests fuse only if the
// whole key matches: same kernel and operand (same plan-cache entry), the
// same payload shape (so stacking/concatenation is well-formed and a
// malformed request fails alone with its own error, never poisoning a
// batch), and the same execution backend (so a fused group launches on
// exactly the substrate every member's plan was priced for).
struct FuseKey {
  Kernel kernel = Kernel::kSpMV;
  std::uint64_t a = 0;
  index_t rows = 0;
  index_t width = 0;
  exec::BackendKind backend = exec::BackendKind::kCpu;

  bool operator==(const FuseKey&) const = default;
};

struct FuseKeyHash {
  std::size_t operator()(const FuseKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.kernel);
    h = h * 0x9e3779b97f4a7c15ull + k.a;
    h = h * 0x9e3779b97f4a7c15ull + static_cast<std::size_t>(k.rows);
    h = h * 0x9e3779b97f4a7c15ull + static_cast<std::size_t>(k.width);
    h = h * 0x9e3779b97f4a7c15ull + static_cast<std::size_t>(k.backend);
    return h;
  }
};

}  // namespace

bool coalescible_spmv_format(Format acf) {
  // A format is coalescible when its SpMM twin's per-column accumulation
  // order is independent of the factor width, so a request's bits are the
  // same whether it executes alone or inside any stacked batch. The
  // server leans on this by serving *every* SpMV on such a plan through
  // the twin (singles as a width-1 stack): batched == unbatched bitwise
  // holds by construction, in the scalar and SIMD tiers alike.
  // CSR: spmm_csr_dense accumulates each (row, column) cell over the
  // row's nonzeros in index order with fused multiply-adds in vector
  // tiles and tail alike — width only changes addressing. COO: the twin
  // uses the same fixed row-aligned nnz partition (serial sweep when
  // unsorted) and mul+add per cell, which also matches spmv_coo exactly.
  // CSC is excluded: routing it through spmm_csc_dense would change
  // today's served bits (spmv_csc reduces over 512-column chunks, the
  // twin over max(256, k/8)). Dense is excluded: gemm() skips zero
  // entries of A while spmv_dense accumulates them, which diverges on
  // non-finite inputs. ELL/BSR have no native SpMM kernel at all.
  return acf == Format::kCSR || acf == Format::kCOO;
}

std::vector<BatchGroup> form_batches(const std::vector<BatchItem>& items) {
  std::vector<BatchGroup> groups;
  groups.reserve(items.size());
  // Fusion key -> group still accepting members.
  std::unordered_map<FuseKey, std::size_t, FuseKeyHash> open;
  // Operand id -> index of the last group touching it. A request may only
  // join a group that is the *latest* toucher of every operand it names;
  // otherwise joining would hoist it over an intervening request on the
  // same handle and break per-handle FIFO completion order.
  std::unordered_map<std::uint64_t, std::size_t> last_touch;

  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& it = items[i];
    const std::uint64_t handles[] = {it.a, it.b, it.x};
    if (it.fusible) {
      const FuseKey key{it.kernel, it.a, it.rows, it.width, it.backend};
      const auto og = open.find(key);
      if (og != open.end()) {
        bool fifo_safe = true;
        for (const auto h : handles) {
          if (h == 0) continue;
          const auto lt = last_touch.find(h);
          fifo_safe = fifo_safe && lt != last_touch.end() &&
                      lt->second == og->second;
        }
        if (fifo_safe) {
          groups[og->second].members.push_back(i);
          continue;  // last_touch already points at this group
        }
      }
    }
    const std::size_t g = groups.size();
    groups.push_back({{i}, it.fusible});
    if (it.fusible) {
      open[FuseKey{it.kernel, it.a, it.rows, it.width, it.backend}] = g;
    }
    for (const auto h : handles) {
      if (h != 0) last_touch[h] = g;
    }
  }
  return groups;
}

}  // namespace mt::runtime
