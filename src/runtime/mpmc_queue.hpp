// Bounded multi-producer multi-consumer queue — the admission channel of
// the serving runtime.
//
// Intentionally a mutex + two condition variables rather than a lock-free
// ring: requests carry promises and operand handles, so the per-item cost
// is dominated by kernel execution, not queue ops, and the blocking
// semantics are the feature — a full queue exerts backpressure on open-loop
// clients (the submit side blocks), which bench_serve measures as queue
// wait. The simple locking discipline is also trivially ThreadSanitizer-
// clean, which the runtime stress test enforces in CI — and it is now
// compile-time checkable: every guarded field carries MT_GUARDED_BY and
// the wait conditions are written as explicit loops so clang's thread
// safety analysis can prove each access (common/thread_annotations.hpp).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mt::runtime {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : cap_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks while the queue is full. Returns false — leaving `v` untouched —
  // if the queue was closed before space opened up.
  bool push(T&& v) MT_EXCLUDES(mu_) {
    UniqueLock lk(mu_);
    while (!closed_ && q_.size() >= cap_) not_full_.wait(lk);
    if (closed_) return false;
    q_.push_back(std::move(v));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. After close(), drains the remaining
  // items in FIFO order, then returns nullopt to every consumer.
  std::optional<T> pop() MT_EXCLUDES(mu_) {
    UniqueLock lk(mu_);
    while (!closed_ && q_.empty()) not_empty_.wait(lk);
    if (q_.empty()) return std::nullopt;
    std::optional<T> v(std::move(q_.front()));
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  // Non-blocking bulk pop: appends up to `max_items` immediately-available
  // items to `out` in FIFO order and returns how many were taken. Never
  // waits — the batching worker uses this to extend a window with whatever
  // is already queued without stalling for more traffic.
  std::size_t try_pop_n(std::vector<T>& out, std::size_t max_items)
      MT_EXCLUDES(mu_) {
    std::size_t taken = 0;
    {
      LockGuard lk(mu_);
      while (taken < max_items && !q_.empty()) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  // Idempotent: rejects future pushes and wakes every blocked thread.
  void close() MT_EXCLUDES(mu_) {
    {
      LockGuard lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Atomic snapshot of the current depth (taken under the queue mutex,
  // never a torn read), stale the instant it returns. Cross-shard
  // aggregation sums one such snapshot per shard — see the consistency
  // contract on Server::queue_depth.
  std::size_t size() const MT_EXCLUDES(mu_) {
    LockGuard lk(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return cap_; }

 private:
  const std::size_t cap_;
  mutable Mutex mu_;
  CondVar not_full_, not_empty_;
  std::deque<T> q_ MT_GUARDED_BY(mu_);
  bool closed_ MT_GUARDED_BY(mu_) = false;
};

}  // namespace mt::runtime
