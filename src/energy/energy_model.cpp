#include "energy/energy_model.hpp"

#include <cmath>

#include "common/bitutil.hpp"

namespace mt {

std::int64_t EnergyParams::dram_cycles(std::int64_t bits) const {
  const double bytes = static_cast<double>(bits) / 8.0;
  return static_cast<std::int64_t>(std::ceil(bytes / dram_bytes_per_cycle));
}

double EnergyParams::mac_energy_j(DataType dt) const {
  switch (dt) {
    case DataType::kInt8: return int8_mac_j;
    case DataType::kInt16: return int8_mac_j * 2.0;
    case DataType::kBf16: return fp32_mac_j * 0.4;
    case DataType::kFp32: return fp32_mac_j;
  }
  return fp32_mac_j;
}

double EnergyParams::sram_energy_j(DataType dt, bool small_buffer) const {
  const double per_32b = small_buffer ? sram_small_j_per_32b : sram_large_j_per_32b;
  return per_32b * static_cast<double>(bits_of(dt)) / 32.0;
}

CostBreakdown operator+(const CostBreakdown& a, const CostBreakdown& b) {
  return {a.dram_cycles + b.dram_cycles,
          a.convert_cycles + b.convert_cycles,
          a.compute_cycles + b.compute_cycles,
          a.dram_energy_j + b.dram_energy_j,
          a.convert_energy_j + b.convert_energy_j,
          a.compute_energy_j + b.compute_energy_j};
}

}  // namespace mt
