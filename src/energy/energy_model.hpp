// Technology energy/latency constants and the EDP arithmetic every
// evaluation figure rests on.
//
// Calibration follows Horowitz, "Computing's energy problem" (ISSCC 2014),
// the paper's own citation for the claim that a DRAM transfer costs ~6400x
// an add (§I): int32 add = 0.1 pJ, fp32 MAC = 4.6 pJ, DRAM = 640 pJ per
// 32-bit word. SRAM access energy scales with buffer size. All energies
// are reported in joules, all delays in cycles at a 1 GHz clock (the
// paper's synthesis point).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mt {

struct EnergyParams {
  // Joules per event (Horowitz ISSCC'14, 45 nm, scaled as the paper does).
  double int32_add_j = 0.1e-12;
  double fp32_mult_j = 3.7e-12;
  double fp32_mac_j = 4.6e-12;   // mult + add
  double int8_mac_j = 0.23e-12;  // 0.2 pJ mult + 0.03 pJ add
  double dram_j_per_32b = 640e-12;
  double sram_small_j_per_32b = 5e-12;   // <= 8 KB PE-local buffer
  double sram_large_j_per_32b = 50e-12;  // multi-banked global scratchpad
  double noc_j_per_32b_hop = 0.8e-12;    // bus/NoC wire + mux energy

  // Timing.
  double clock_hz = 1e9;                  // 1 GHz synthesis point
  double dram_bytes_per_cycle = 64.0;     // ~64 GB/s HBM-class interface
  double pcie_bytes_per_second = 16e9;    // PCIe gen3 x16 (H2D/D2H model)
  double pcie_latency_s = 10e-6;          // per-transfer setup

  // Host platforms for the Flex_Flex_SW baseline (paper §VII-B: i9-9820X
  // 165 W, Titan RTX 280 W).
  double cpu_tdp_w = 165.0;
  double gpu_tdp_w = 280.0;

  // Energy to move `bits` from/to DRAM.
  double dram_energy_j(std::int64_t bits) const {
    return dram_j_per_32b * static_cast<double>(bits) / 32.0;
  }
  // Cycles to stream `bits` over the DRAM interface.
  std::int64_t dram_cycles(std::int64_t bits) const;

  // Energy per MAC at the given datatype (bf16/int16 interpolated).
  double mac_energy_j(DataType dt) const;

  // Per-element SRAM access energy scaled by word width.
  double sram_energy_j(DataType dt, bool small_buffer) const;

  double seconds(std::int64_t cycles) const {
    return static_cast<double>(cycles) / clock_hz;
  }
};

// Energy-delay product in J*s — SAGE's objective (paper §VI).
constexpr double edp(double energy_j, double delay_s) {
  return energy_j * delay_s;
}

// Cost components every evaluation reports (Fig. 12's stacked bars).
struct CostBreakdown {
  std::int64_t dram_cycles = 0;     // streaming MCF operands + output
  std::int64_t convert_cycles = 0;  // MINT or software conversion
  std::int64_t compute_cycles = 0;  // accelerator execution
  double dram_energy_j = 0.0;
  double convert_energy_j = 0.0;
  double compute_energy_j = 0.0;

  std::int64_t total_cycles() const {
    return dram_cycles + convert_cycles + compute_cycles;
  }
  double total_energy_j() const {
    return dram_energy_j + convert_energy_j + compute_energy_j;
  }
  double edp(const EnergyParams& p) const {
    return total_energy_j() * p.seconds(total_cycles());
  }
};

CostBreakdown operator+(const CostBreakdown& a, const CostBreakdown& b);

}  // namespace mt
