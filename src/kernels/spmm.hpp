// Sparse matrix x dense matrix kernels, one per ACF combination the paper
// evaluates (§III-B). Each function name spells the ACF of (A, B); the
// output is always dense, matching the paper's ACF naming such as
// "COO(A)-Dense(B)-Dense(O)".
#pragma once

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"

namespace mt {

// Paper Alg. 1: iterate the nonzeros of COO A, scale rows of dense B.
// Parallel over entry ranges split at row boundaries (row-major input),
// so threads own disjoint output rows; unsorted entries run serially.
DenseMatrix spmm_coo_dense(const CooMatrix& a, const DenseMatrix& b);

// Row-parallel CSR A times dense B.
DenseMatrix spmm_csr_dense(const CsrMatrix& a, const DenseMatrix& b);

// CSC A times dense B: column-parallel over fixed chunks of A columns,
// per-chunk partial outputs reduced in chunk order (deterministic at any
// thread count; the column-major dual of the CSR path).
DenseMatrix spmm_csc_dense(const CscMatrix& a, const DenseMatrix& b);

// Dense A times CSC B (EIE-style weight-stationary view: each output
// column is a sparse combination of A columns).
DenseMatrix spmm_dense_csc(const DenseMatrix& a, const CscMatrix& b);

// Both operands compressed: sorted-intersection of CSR rows of A with CSC
// columns of B (the ACF ExTensor-style accelerators run at extreme
// sparsity).
DenseMatrix spmm_csr_csc(const CsrMatrix& a, const CscMatrix& b);

}  // namespace mt
