// Sparse matrix x dense matrix kernels, one per ACF combination the paper
// evaluates (§III-B). Each function name spells the ACF of (A, B); the
// output is always dense, matching the paper's ACF naming such as
// "COO(A)-Dense(B)-Dense(O)".
#pragma once

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"

namespace mt {

// Paper Alg. 1: iterate the nonzeros of COO A, scale rows of dense B.
DenseMatrix spmm_coo_dense(const CooMatrix& a, const DenseMatrix& b);

// Row-parallel CSR A times dense B.
DenseMatrix spmm_csr_dense(const CsrMatrix& a, const DenseMatrix& b);

// Dense A times CSC B (EIE-style weight-stationary view: each output
// column is a sparse combination of A columns).
DenseMatrix spmm_dense_csc(const DenseMatrix& a, const CscMatrix& b);

// Both operands compressed: sorted-intersection of CSR rows of A with CSC
// columns of B (the ACF ExTensor-style accelerators run at extreme
// sparsity).
DenseMatrix spmm_csr_csc(const CsrMatrix& a, const CscMatrix& b);

}  // namespace mt
