// Sparse matrix x dense vector (SpMV) — the iterative-solver kernel the
// paper's §II background calls out alongside SpMM.
#pragma once

#include <vector>

#include "formats/csr.hpp"

namespace mt {

std::vector<value_t> spmv_csr(const CsrMatrix& a,
                              const std::vector<value_t>& x);

}  // namespace mt
