// Sparse matrix x dense vector (SpMV) — the iterative-solver kernel the
// paper's §II background calls out alongside SpMM.
//
// One implementation per ACF the execution engine registers natively.
// Parallelism is always deterministic: either threads own disjoint output
// rows (CSR/Dense/ELL/BSR/COO) or partial vectors are reduced in a fixed
// chunk order independent of the thread count (CSC), so results are
// bit-identical at any MT_NUM_THREADS.
#pragma once

#include <vector>

#include "formats/bsr.hpp"
#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/ell.hpp"

namespace mt {

std::vector<value_t> spmv_csr(const CsrMatrix& a,
                              const std::vector<value_t>& x);

// Column-parallel over fixed 512-column chunks; per-chunk partial vectors
// are reduced in chunk order (gather-free scatter without races).
std::vector<value_t> spmv_csc(const CscMatrix& a,
                              const std::vector<value_t>& x);

// Entry range split at row boundaries so each thread owns disjoint output
// rows (requires row-major order; unsorted entries run serially).
std::vector<value_t> spmv_coo(const CooMatrix& a,
                              const std::vector<value_t>& x);

std::vector<value_t> spmv_dense(const DenseMatrix& a,
                                const std::vector<value_t>& x);

std::vector<value_t> spmv_ell(const EllMatrix& a,
                              const std::vector<value_t>& x);

// Block-row parallel; a block row owns its block_rows() output rows.
std::vector<value_t> spmv_bsr(const BsrMatrix& a,
                              const std::vector<value_t>& x);

}  // namespace mt
