// Sparse x sparse matrix multiplication (SpGEMM).
//
// Gustavson's row-wise algorithm over CSR operands, producing CSR output.
// SpGEMM dominates multigrid setup in the scientific workloads the paper
// motivates (§II) and is the kernel behind Fig. 12/13.
#pragma once

#include "formats/csr.hpp"

namespace mt {

CsrMatrix spgemm_csr(const CsrMatrix& a, const CsrMatrix& b);

// Cache-blocked Gustavson with an explicit accumulator tile width (in
// output columns). spgemm_csr picks the production width; the parameter
// is exposed so tests can force multi-tile execution on small matrices
// and assert bit-identity against the single-tile sweep.
CsrMatrix spgemm_csr_tiled(const CsrMatrix& a, const CsrMatrix& b,
                           index_t tile_cols);

}  // namespace mt
