// Sparse x sparse matrix multiplication (SpGEMM).
//
// Gustavson's row-wise algorithm over CSR operands, producing CSR output.
// SpGEMM dominates multigrid setup in the scientific workloads the paper
// motivates (§II) and is the kernel behind Fig. 12/13.
#pragma once

#include "formats/csr.hpp"

namespace mt {

CsrMatrix spgemm_csr(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace mt
