#include "kernels/gemm.hpp"

#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

DenseMatrix gemm(const DenseMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  const value_t* pa = a.values().data();
  const value_t* pb = b.values().data();
  value_t* po = o.values().data();
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t i = 0; i < m; ++i) {
    // i-k-j loop order keeps the B row access contiguous.
    for (index_t kk = 0; kk < k; ++kk) {
      const value_t av = pa[i * k + kk];
      if (av == 0.0f) continue;
      for (index_t j = 0; j < n; ++j) {
        po[i * n + j] += av * pb[kk * n + j];
      }
    }
  }
  return o;
}

}  // namespace mt
