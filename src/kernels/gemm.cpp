#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"

namespace mt {

#if MT_SIMD_X86
namespace {

// Register micro-kernel geometry: kMr x kNr output tiles (4 rows x 16
// columns = 8 ymm accumulators, leaving registers for the two B vectors
// and the broadcast A element) over kKc-deep k-panels so the B panel
// (kKc x kNr floats = 16 KiB) stays L1-resident while it is reused
// across every row tile.
constexpr index_t kMr = 4;
constexpr index_t kNr = 16;
constexpr index_t kKc = 256;

// One mr x 16 output tile accumulated over the k-panel [k0, k1). The
// tile is loaded once, FMA'd kc times, stored once; k advances in the
// same ascending order as the scalar loop, so per-cell accumulation
// order matches scalar exactly (FMA rounding and the zero-skip aside).
MT_SIMD_TARGET void gemm_tile_avx2(const value_t* pa, const value_t* pb,
                                   value_t* po, index_t k, index_t n,
                                   index_t i0, index_t mr, index_t k0,
                                   index_t k1, index_t j0) {
  __m256 c[kMr][2];
  for (index_t r = 0; r < mr; ++r) {
    c[r][0] = simd::load(po + (i0 + r) * n + j0);
    c[r][1] = simd::load(po + (i0 + r) * n + j0 + 8);
  }
  for (index_t kk = k0; kk < k1; ++kk) {
    const __m256 b0 = simd::load(pb + kk * n + j0);
    const __m256 b1 = simd::load(pb + kk * n + j0 + 8);
    for (index_t r = 0; r < mr; ++r) {
      const __m256 av = simd::set1(pa[(i0 + r) * k + kk]);
      c[r][0] = simd::fma(av, b0, c[r][0]);
      c[r][1] = simd::fma(av, b1, c[r][1]);
    }
  }
  for (index_t r = 0; r < mr; ++r) {
    simd::store(po + (i0 + r) * n + j0, c[r][0]);
    simd::store(po + (i0 + r) * n + j0 + 8, c[r][1]);
  }
}

}  // namespace
#endif  // MT_SIMD_X86

DenseMatrix gemm(const DenseMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  const value_t* pa = a.values().data();
  const value_t* pb = b.values().data();
  value_t* po = o.values().data();
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t j_main = n - n % kNr;
    // Each iteration owns rows [i0, i0+mr) of the output exclusively;
    // results are bit-identical at any thread count.
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t i0 = 0; i0 < m; i0 += kMr) {
      const index_t mr = std::min(kMr, m - i0);
      for (index_t k0 = 0; k0 < k; k0 += kKc) {
        const index_t k1 = std::min(k, k0 + kKc);
        for (index_t j0 = 0; j0 < j_main; j0 += kNr) {
          gemm_tile_avx2(pa, pb, po, k, n, i0, mr, k0, k1, j0);
        }
        // Column tail (< kNr): scalar, same k-panel traversal order, and
        // fused multiply-add to match the tile's FMA rounding — a cell's
        // bits must not depend on whether its column falls in a tile or
        // the tail, or concatenating batched GEMM factors (which shifts
        // the tile grid) would change per-request results.
        for (index_t r = i0; r < i0 + mr; ++r) {
          for (index_t kk = k0; kk < k1; ++kk) {
            const value_t av = pa[r * k + kk];
            for (index_t j = j_main; j < n; ++j) {
              po[r * n + j] = std::fmaf(av, pb[kk * n + j], po[r * n + j]);
            }
          }
        }
      }
    }
    return o;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t i = 0; i < m; ++i) {
    // i-k-j loop order keeps the B row access contiguous.
    for (index_t kk = 0; kk < k; ++kk) {
      const value_t av = pa[i * k + kk];
      if (av == 0.0f) continue;
      for (index_t j = 0; j < n; ++j) {
        po[i * n + j] += av * pb[kk * n + j];
      }
    }
  }
  return o;
}

}  // namespace mt
