// Dense GEMM reference kernel.
//
// O = A * B with all operands dense. This is the correctness oracle every
// sparse kernel and the accelerator's functional simulator are checked
// against, and the compute model of the Dense(A)-Dense(B)-Dense(O) ACF.
#pragma once

#include "formats/dense.hpp"

namespace mt {

// O(M,N) = A(M,K) * B(K,N); OpenMP-parallel over rows of A.
DenseMatrix gemm(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace mt
