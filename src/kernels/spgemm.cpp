#include "kernels/spgemm.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

namespace {

// Accumulator tile width for the production path: the touched slice of
// the dense accumulator (tile * 4 B) plus its occupancy bitmap stays
// within L1/L2 even when B has millions of columns. Tiling only changes
// *when* a column range is drained, never the per-cell accumulation
// order, so the result is bit-identical at any width (tests force small
// widths to prove it).
constexpr index_t kSpgemmTileCols = 16384;

}  // namespace

// Gustavson, cache-blocked, sort-free. Per output row the classic dense
// accumulator is paired with an occupancy *bitmap*; draining a tile
// sweeps the bitmap words in ascending order (countr_zero per word), so
// the sorted column ids fall out of the sweep instead of a per-row
// std::sort of the touched list — the sort was the dominant cost of the
// previous implementation, not the FLOPs. Column tiles are walked with
// per-entry resume cursors into B's rows, so every B nonzero is still
// visited exactly once per A entry regardless of the tile count.
//
// Determinism: each output row depends only on its own A row and B, per
// (r, c) accumulation follows A's row-r nonzero order on any thread
// count, and rows are concatenated in ascending order — bit-identical
// run-to-run, across thread counts, and to the pre-tiled kernel.
CsrMatrix spgemm_csr_tiled(const CsrMatrix& a, const CsrMatrix& b,
                           index_t tile_cols) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  MT_REQUIRE(tile_cols > 0, "tile width must be positive");
  const index_t m = a.rows(), n = b.cols();
  const int nt = num_threads();
  const index_t nwords = (n + 63) / 64;

  const index_t* a_rp = a.row_ptr().data();
  const index_t* a_ci = a.col_ids().data();
  const value_t* a_v = a.values().data();
  const index_t* b_rp = b.row_ptr().data();
  const index_t* b_ci = b.col_ids().data();
  const value_t* b_v = b.values().data();

  // Contiguous row ranges per thread; each thread appends its rows to a
  // private buffer and the buffers are stitched in row order below, so
  // the assembled output does not depend on nt.
  std::vector<index_t> row_nnz(static_cast<std::size_t>(m), 0);
  std::vector<std::vector<index_t>> tcols(static_cast<std::size_t>(nt));
  std::vector<std::vector<value_t>> tvals(static_cast<std::size_t>(nt));
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int t = 0; t < nt; ++t) {
    const index_t r_lo = m * t / nt;
    const index_t r_hi = m * (t + 1) / nt;
    auto& out_c = tcols[static_cast<std::size_t>(t)];
    auto& out_v = tvals[static_cast<std::size_t>(t)];
    std::vector<value_t> acc(static_cast<std::size_t>(n), 0.0f);
    std::vector<std::uint64_t> occupied(static_cast<std::size_t>(nwords), 0);
    std::vector<index_t> cursor;
    for (index_t r = r_lo; r < r_hi; ++r) {
      const index_t a_lo = a_rp[r], a_hi = a_rp[r + 1];
      cursor.assign(static_cast<std::size_t>(a_hi - a_lo), 0);
      for (index_t i = a_lo; i < a_hi; ++i) {
        cursor[static_cast<std::size_t>(i - a_lo)] = b_rp[a_ci[i]];
      }
      const std::size_t row_start = out_c.size();
      for (index_t c0 = 0; c0 < n; c0 += tile_cols) {
        const index_t c_end = std::min<index_t>(n, c0 + tile_cols);
        // Scatter this row's contributions that land in [c0, c_end).
        for (index_t i = a_lo; i < a_hi; ++i) {
          const value_t av = a_v[i];
          const index_t j_hi = b_rp[a_ci[i] + 1];
          index_t j = cursor[static_cast<std::size_t>(i - a_lo)];
          for (; j < j_hi && b_ci[j] < c_end; ++j) {
            const index_t c = b_ci[j];
            acc[static_cast<std::size_t>(c)] += av * b_v[j];
            occupied[static_cast<std::size_t>(c >> 6)] |=
                std::uint64_t{1} << (c & 63);
          }
          cursor[static_cast<std::size_t>(i - a_lo)] = j;
        }
        // Drain the tile: sweeping words (then bits) in ascending order
        // yields sorted column ids for free. A word straddling c_end is
        // safe to drain whole — bits >= c_end cannot be set yet, and the
        // next tile re-sweeps the word.
        for (index_t w = c0 >> 6; w < (c_end + 63) >> 6; ++w) {
          std::uint64_t bits = occupied[static_cast<std::size_t>(w)];
          occupied[static_cast<std::size_t>(w)] = 0;
          while (bits != 0) {
            const index_t c = (w << 6) + std::countr_zero(bits);
            bits &= bits - 1;
            const value_t x = acc[static_cast<std::size_t>(c)];
            acc[static_cast<std::size_t>(c)] = 0.0f;
            // Numerical cancellation can produce exact zeros; keep them
            // out of the compressed output so nnz reflects stored values.
            if (x != 0.0f) {
              out_c.push_back(c);
              out_v.push_back(x);
            }
          }
        }
      }
      row_nnz[static_cast<std::size_t>(r)] =
          static_cast<index_t>(out_c.size() - row_start);
    }
  }

  std::vector<index_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t r = 0; r < m; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] =
        row_ptr[static_cast<std::size_t>(r)] +
        row_nnz[static_cast<std::size_t>(r)];
  }
  const auto total = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(m)]);
  std::vector<index_t> col_ids(total);
  AlignedVec<value_t> values(total);
  for (int t = 0; t < nt; ++t) {
    const index_t r_lo = m * t / nt;
    const auto off = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r_lo)]);
    const auto& src_c = tcols[static_cast<std::size_t>(t)];
    const auto& src_v = tvals[static_cast<std::size_t>(t)];
    std::copy(src_c.begin(), src_c.end(), col_ids.begin() + static_cast<std::ptrdiff_t>(off));
    std::copy(src_v.begin(), src_v.end(), values.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return CsrMatrix::from_parts_aligned(m, n, std::move(row_ptr),
                                       std::move(col_ids), std::move(values));
}

CsrMatrix spgemm_csr(const CsrMatrix& a, const CsrMatrix& b) {
  return spgemm_csr_tiled(a, b, kSpgemmTileCols);
}

}  // namespace mt
