#include "kernels/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

CsrMatrix spgemm_csr(const CsrMatrix& a, const CsrMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const index_t m = a.rows(), n = b.cols();
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(m));
  std::vector<std::vector<value_t>> vals(static_cast<std::size_t>(m));
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel num_threads(nt)
  {
    // Gustavson: per output row, a dense accumulator over N plus the list
    // of touched columns (sparse accumulator pattern).
    std::vector<value_t> acc(static_cast<std::size_t>(n), 0.0f);
    std::vector<index_t> touched;
    // omp-determinism: Gustavson assigns each thread whole output rows
    // (cols[r]/vals[r] are written only by iteration r), and the per-row
    // accumulation order follows A's row-r nonzeros on any thread, so
    // dynamic scheduling cannot change the result bits.
#pragma omp for schedule(dynamic, 16)
    for (index_t r = 0; r < m; ++r) {
      touched.clear();
      for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
        const index_t k = a.col_ids()[i];
        const value_t av = a.values()[i];
        for (index_t j = b.row_ptr()[k]; j < b.row_ptr()[k + 1]; ++j) {
          const index_t c = b.col_ids()[j];
          if (acc[static_cast<std::size_t>(c)] == 0.0f) touched.push_back(c);
          acc[static_cast<std::size_t>(c)] += av * b.values()[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& rc = cols[static_cast<std::size_t>(r)];
      auto& rv = vals[static_cast<std::size_t>(r)];
      for (index_t c : touched) {
        const value_t x = acc[static_cast<std::size_t>(c)];
        acc[static_cast<std::size_t>(c)] = 0.0f;
        // Numerical cancellation can produce exact zeros; keep them out of
        // the compressed output so nnz reflects stored values.
        if (x != 0.0f) {
          rc.push_back(c);
          rv.push_back(x);
        }
      }
    }
  }
  std::vector<index_t> row_ptr{0};
  row_ptr.reserve(static_cast<std::size_t>(m) + 1);
  std::size_t total = 0;
  for (index_t r = 0; r < m; ++r) {
    total += cols[static_cast<std::size_t>(r)].size();
    row_ptr.push_back(static_cast<index_t>(total));
  }
  std::vector<index_t> col_ids;
  std::vector<value_t> values;
  col_ids.reserve(total);
  values.reserve(total);
  for (index_t r = 0; r < m; ++r) {
    col_ids.insert(col_ids.end(), cols[static_cast<std::size_t>(r)].begin(),
                   cols[static_cast<std::size_t>(r)].end());
    values.insert(values.end(), vals[static_cast<std::size_t>(r)].begin(),
                  vals[static_cast<std::size_t>(r)].end());
  }
  return CsrMatrix::from_parts(m, n, std::move(row_ptr), std::move(col_ids),
                               std::move(values));
}

}  // namespace mt
