#include "kernels/mttkrp.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"
#include "kernels/partition.hpp"

namespace mt {

#if MT_SIMD_X86
namespace {

// One CSF x-slice restricted to the rank tile [r0, r0+16): the fiber
// accumulator lives in two ymm registers across the whole z walk, and
// the B/C factor-row touches are confined to a 16-float panel — the
// rank-blocking that keeps factor panels L1-resident while the (much
// larger) id/value arrays stream. Per-(ix, r) accumulation order is the
// same z-then-y order as the scalar loop.
MT_SIMD_TARGET void mttkrp_csf_slice_tile_avx2(
    const index_t* y_ptr, const index_t* y_ids, const index_t* z_ptr,
    const index_t* z_ids, const value_t* xv, const value_t* pb,
    const value_t* pc, value_t* pm, index_t rank, index_t xi, index_t ix,
    index_t r0) {
  for (index_t yi = y_ptr[xi]; yi < y_ptr[xi + 1]; ++yi) {
    const index_t iy = y_ids[yi];
    __m256 acc0 = simd::zero();
    __m256 acc1 = simd::zero();
    for (index_t zi = z_ptr[yi]; zi < z_ptr[yi + 1]; ++zi) {
      const __m256 v = simd::set1(xv[zi]);
      const value_t* pcr = pc + z_ids[zi] * rank + r0;
      acc0 = simd::fma(v, simd::load(pcr), acc0);
      acc1 = simd::fma(v, simd::load(pcr + 8), acc1);
    }
    const value_t* pbr = pb + iy * rank + r0;
    value_t* pmr = pm + ix * rank + r0;
    simd::store(pmr, simd::fma(acc0, simd::load(pbr), simd::load(pmr)));
    simd::store(pmr + 8,
                simd::fma(acc1, simd::load(pbr + 8), simd::load(pmr + 8)));
  }
}

}  // namespace
#endif  // MT_SIMD_X86

DenseMatrix mttkrp_coo(const CooTensor3& x, const DenseMatrix& b,
                       const DenseMatrix& c) {
  MT_REQUIRE(x.dim_y() == b.rows() && x.dim_z() == c.rows(),
             "factor matrix rows must match tensor modes");
  MT_REQUIRE(b.cols() == c.cols(), "factor rank mismatch");
  const index_t rank = b.cols();
  DenseMatrix m(x.dim_x(), rank);
  value_t* pm = m.values().data();
  const value_t* pb = b.values().data();
  const value_t* pc = c.values().data();
  for (std::int64_t i = 0; i < x.nnz(); ++i) {
    const index_t ix = x.x_ids()[i], iy = x.y_ids()[i], iz = x.z_ids()[i];
    const value_t v = x.values()[i];
    for (index_t r = 0; r < rank; ++r) {
      pm[ix * rank + r] += v * pb[iy * rank + r] * pc[iz * rank + r];
    }
  }
  return m;
}

DenseMatrix mttkrp_csf(const CsfTensor3& x, const DenseMatrix& b,
                       const DenseMatrix& c) {
  MT_REQUIRE(x.dim_y() == b.rows() && x.dim_z() == c.rows(),
             "factor matrix rows must match tensor modes");
  MT_REQUIRE(b.cols() == c.cols(), "factor rank mismatch");
  const index_t rank = b.cols();
  DenseMatrix m(x.dim_x(), rank);
  value_t* pm = m.values().data();
  const value_t* pb = b.values().data();
  const value_t* pc = c.values().data();
  // Each level-0 node owns one output row, so x-slices parallelize freely;
  // the z-fiber partial sum factors out B(j,:) — the classic CSF MTTKRP
  // operation-count saving.
  const auto n1 = static_cast<index_t>(x.x_ids().size());
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t r_main = rank - rank % 16;
    const index_t* y_ptr = x.y_ptr().data();
    const index_t* y_ids = x.y_ids().data();
    const index_t* z_ptr = x.z_ptr().data();
    const index_t* z_ids = x.z_ids().data();
    const value_t* xv = x.values().data();
#pragma omp parallel num_threads(nt)
    {
      std::vector<value_t> fiber_acc(static_cast<std::size_t>(rank - r_main));
#pragma omp for schedule(static)
      for (index_t xi = 0; xi < n1; ++xi) {
        const index_t ix = x.x_ids()[static_cast<std::size_t>(xi)];
        for (index_t r0 = 0; r0 < r_main; r0 += 16) {
          mttkrp_csf_slice_tile_avx2(y_ptr, y_ids, z_ptr, z_ids, xv, pb, pc,
                                     pm, rank, xi, ix, r0);
        }
        // Rank tail (< 16): scalar, same fiber walk per remaining rank.
        if (r_main < rank) {
          for (index_t yi = y_ptr[xi]; yi < y_ptr[xi + 1]; ++yi) {
            const index_t iy = y_ids[yi];
            std::fill(fiber_acc.begin(), fiber_acc.end(), 0.0f);
            for (index_t zi = z_ptr[yi]; zi < z_ptr[yi + 1]; ++zi) {
              const index_t iz = z_ids[zi];
              const value_t v = xv[zi];
              for (index_t r = r_main; r < rank; ++r) {
                fiber_acc[static_cast<std::size_t>(r - r_main)] +=
                    v * pc[iz * rank + r];
              }
            }
            for (index_t r = r_main; r < rank; ++r) {
              pm[ix * rank + r] +=
                  fiber_acc[static_cast<std::size_t>(r - r_main)] *
                  pb[iy * rank + r];
            }
          }
        }
      }
    }
    return m;
  }
#endif
#pragma omp parallel num_threads(nt)
  {
    std::vector<value_t> fiber_acc(static_cast<std::size_t>(rank));
#pragma omp for schedule(static)
    for (index_t xi = 0; xi < n1; ++xi) {
      const index_t ix = x.x_ids()[static_cast<std::size_t>(xi)];
      for (index_t yi = x.y_ptr()[xi]; yi < x.y_ptr()[xi + 1]; ++yi) {
        const index_t iy = x.y_ids()[static_cast<std::size_t>(yi)];
        std::fill(fiber_acc.begin(), fiber_acc.end(), 0.0f);
        for (index_t zi = x.z_ptr()[yi]; zi < x.z_ptr()[yi + 1]; ++zi) {
          const index_t iz = x.z_ids()[static_cast<std::size_t>(zi)];
          const value_t v = x.values()[static_cast<std::size_t>(zi)];
          for (index_t r = 0; r < rank; ++r) {
            fiber_acc[static_cast<std::size_t>(r)] += v * pc[iz * rank + r];
          }
        }
        for (index_t r = 0; r < rank; ++r) {
          pm[ix * rank + r] +=
              fiber_acc[static_cast<std::size_t>(r)] * pb[iy * rank + r];
        }
      }
    }
  }
  return m;
}

DenseMatrix mttkrp_hicoo(const HicooTensor3& x, const DenseMatrix& b,
                         const DenseMatrix& c) {
  MT_REQUIRE(x.dim_y() == b.rows() && x.dim_z() == c.rows(),
             "factor matrix rows must match tensor modes");
  MT_REQUIRE(b.cols() == c.cols(), "factor rank mismatch");
  const index_t rank = b.cols();
  const index_t blk = x.block();
  DenseMatrix m(x.dim_x(), rank);
  value_t* pm = m.values().data();
  const value_t* pb = b.values().data();
  const value_t* pc = c.values().data();
  const auto nblocks = x.num_blocks();
  // Blocks with equal block_x cover the same output-row band [bx*B,
  // bx*B+B); cutting the block array between distinct block_x values keeps
  // those bands thread-private.
  const int nt = num_threads();
  const auto cut = key_aligned_cuts(x.block_x(), nblocks, nt);
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int t = 0; t < nt; ++t) {
    for (std::int64_t bi = cut[static_cast<std::size_t>(t)];
         bi < cut[static_cast<std::size_t>(t) + 1]; ++bi) {
      const index_t base_x = x.block_x()[static_cast<std::size_t>(bi)] * blk;
      const index_t base_y = x.block_y()[static_cast<std::size_t>(bi)] * blk;
      const index_t base_z = x.block_z()[static_cast<std::size_t>(bi)] * blk;
      for (index_t e = x.block_ptr()[static_cast<std::size_t>(bi)];
           e < x.block_ptr()[static_cast<std::size_t>(bi) + 1]; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        const index_t ix = base_x + x.elem_x()[ei];
        const index_t iy = base_y + x.elem_y()[ei];
        const index_t iz = base_z + x.elem_z()[ei];
        const value_t v = x.values()[ei];
        for (index_t r = 0; r < rank; ++r) {
          pm[ix * rank + r] += v * pb[iy * rank + r] * pc[iz * rank + r];
        }
      }
    }
  }
  return m;
}

DenseMatrix mttkrp_dense(const DenseTensor3& x, const DenseMatrix& b,
                         const DenseMatrix& c) {
  MT_REQUIRE(x.dim_y() == b.rows() && x.dim_z() == c.rows(),
             "factor matrix rows must match tensor modes");
  MT_REQUIRE(b.cols() == c.cols(), "factor rank mismatch");
  const index_t rank = b.cols();
  DenseMatrix m(x.dim_x(), rank);
  for (index_t ix = 0; ix < x.dim_x(); ++ix) {
    for (index_t iy = 0; iy < x.dim_y(); ++iy) {
      for (index_t iz = 0; iz < x.dim_z(); ++iz) {
        const value_t v = x.at(ix, iy, iz);
        if (v == 0.0f) continue;
        for (index_t r = 0; r < rank; ++r) {
          m.set(ix, r, m.at(ix, r) + v * b.at(iy, r) * c.at(iz, r));
        }
      }
    }
  }
  return m;
}

}  // namespace mt
