// Sparse Tensor Times dense Matrix (SpTTM), mode-3:
//   Y(i, j, l) = sum_k X(i, j, k) * U(k, l)
// The Tucker-decomposition building block of the paper's §II (tan-shaded
// rows of Table III). X is sparse (COO or CSF), U dense, Y dense.
#pragma once

#include "formats/csf.hpp"
#include "formats/dense.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_dense.hpp"

namespace mt {

DenseTensor3 spttm_coo(const CooTensor3& x, const DenseMatrix& u);
DenseTensor3 spttm_csf(const CsfTensor3& x, const DenseMatrix& u);

// Triple-loop dense reference used as the oracle.
DenseTensor3 ttm_dense(const DenseTensor3& x, const DenseMatrix& u);

}  // namespace mt
