#include "kernels/ttm.hpp"

#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

DenseTensor3 spttm_coo(const CooTensor3& x, const DenseMatrix& u) {
  MT_REQUIRE(x.dim_z() == u.rows(), "mode-3 size must match U rows");
  DenseTensor3 y(x.dim_x(), x.dim_y(), u.cols());
  const index_t l = u.cols();
  value_t* py = y.values().data();
  const value_t* pu = u.values().data();
  for (std::int64_t i = 0; i < x.nnz(); ++i) {
    const index_t ix = x.x_ids()[i], iy = x.y_ids()[i], iz = x.z_ids()[i];
    const value_t v = x.values()[i];
    value_t* row = py + (ix * x.dim_y() + iy) * l;
    for (index_t jl = 0; jl < l; ++jl) row[jl] += v * pu[iz * l + jl];
  }
  return y;
}

DenseTensor3 spttm_csf(const CsfTensor3& x, const DenseMatrix& u) {
  MT_REQUIRE(x.dim_z() == u.rows(), "mode-3 size must match U rows");
  DenseTensor3 y(x.dim_x(), x.dim_y(), u.cols());
  const index_t l = u.cols();
  value_t* py = y.values().data();
  const value_t* pu = u.values().data();
  // The fiber structure makes each (x,y) output row private, so fibers can
  // run in parallel — the locality CSF buys over COO.
  const auto n2 = static_cast<index_t>(x.y_ids().size());
  std::vector<index_t> fiber_x(static_cast<std::size_t>(n2));
  for (std::size_t xi = 0; xi < x.x_ids().size(); ++xi) {
    for (index_t yi = x.y_ptr()[xi]; yi < x.y_ptr()[xi + 1]; ++yi) {
      fiber_x[static_cast<std::size_t>(yi)] = static_cast<index_t>(xi);
    }
  }
  [[maybe_unused]] const int nt = num_threads();
  // omp-determinism: fiber yi writes only its own output row (the (ix,iy)
  // slice), and the z-walk within a fiber is a fixed serial order, so
  // dynamic scheduling over fibers cannot change the result bits.
#pragma omp parallel for num_threads(nt) schedule(dynamic, 32)
  for (index_t yi = 0; yi < n2; ++yi) {
    const index_t ix = x.x_ids()[static_cast<std::size_t>(fiber_x[static_cast<std::size_t>(yi)])];
    const index_t iy = x.y_ids()[static_cast<std::size_t>(yi)];
    value_t* row = py + (ix * x.dim_y() + iy) * l;
    for (index_t zi = x.z_ptr()[yi]; zi < x.z_ptr()[yi + 1]; ++zi) {
      const index_t iz = x.z_ids()[static_cast<std::size_t>(zi)];
      const value_t v = x.values()[static_cast<std::size_t>(zi)];
      for (index_t jl = 0; jl < l; ++jl) row[jl] += v * pu[iz * l + jl];
    }
  }
  return y;
}

DenseTensor3 ttm_dense(const DenseTensor3& x, const DenseMatrix& u) {
  MT_REQUIRE(x.dim_z() == u.rows(), "mode-3 size must match U rows");
  DenseTensor3 y(x.dim_x(), x.dim_y(), u.cols());
  for (index_t ix = 0; ix < x.dim_x(); ++ix) {
    for (index_t iy = 0; iy < x.dim_y(); ++iy) {
      for (index_t iz = 0; iz < x.dim_z(); ++iz) {
        const value_t v = x.at(ix, iy, iz);
        if (v == 0.0f) continue;
        for (index_t jl = 0; jl < u.cols(); ++jl) {
          y.set(ix, iy, jl, y.at(ix, iy, jl) + v * u.at(iz, jl));
        }
      }
    }
  }
  return y;
}

}  // namespace mt
