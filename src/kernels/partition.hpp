// Work partitioning shared by the deterministic parallel kernels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mt {

// Splits [0, n) into at most `parts` contiguous ranges whose boundaries
// never fall inside a run of equal `keys` values (keys must be sorted, or
// at least grouped). With keys = row ids of a row-major COO this gives
// each range exclusive ownership of its output rows, so ranges parallelize
// without races and accumulate in the same order as a serial sweep.
inline std::vector<std::int64_t> key_aligned_cuts(
    const std::vector<index_t>& keys, std::int64_t n, int parts) {
  std::vector<std::int64_t> cut(static_cast<std::size_t>(parts) + 1, n);
  cut[0] = 0;
  for (int t = 1; t < parts; ++t) {
    std::int64_t p = n * t / parts;
    while (p > 0 && p < n &&
           keys[static_cast<std::size_t>(p)] ==
               keys[static_cast<std::size_t>(p - 1)]) {
      ++p;
    }
    cut[static_cast<std::size_t>(t)] =
        std::max(p, cut[static_cast<std::size_t>(t - 1)]);
  }
  return cut;
}

}  // namespace mt
