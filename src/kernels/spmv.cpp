#include "kernels/spmv.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/threads.hpp"
#include "kernels/partition.hpp"

namespace mt {

std::vector<value_t> spmv_csr(const CsrMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t acc = 0.0f;
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      acc += a.values()[i] * x[static_cast<std::size_t>(a.col_ids()[i])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_csc(const CscMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  // Fixed chunk width (not a function of the thread count) keeps the
  // chunk-order reduction below bit-identical at any MT_NUM_THREADS.
  constexpr index_t kChunkCols = 512;
  const index_t nchunks = (cols + kChunkCols - 1) / kChunkCols;
  if (nchunks == 0) return y;
  std::vector<value_t> part(static_cast<std::size_t>(nchunks * rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    value_t* py = part.data() + chunk * rows;
    const index_t c_hi = std::min(cols, (chunk + 1) * kChunkCols);
    for (index_t c = chunk * kChunkCols; c < c_hi; ++c) {
      const value_t xc = x[static_cast<std::size_t>(c)];
      for (index_t i = a.col_ptr()[c]; i < a.col_ptr()[c + 1]; ++i) {
        py[a.row_ids()[i]] += a.values()[i] * xc;
      }
    }
  }
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    const value_t* py = part.data() + chunk * rows;
    for (index_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] += py[r];
  }
  return y;
}

std::vector<value_t> spmv_coo(const CooMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0f);
  const std::int64_t nnz = a.nnz();
  if (!a.is_row_major_sorted()) {
    // Arbitrary entry order: accumulate serially (any order is correct,
    // but rows are no longer contiguous so the split below would race).
    for (std::int64_t i = 0; i < nnz; ++i) {
      y[static_cast<std::size_t>(a.row_ids()[static_cast<std::size_t>(i)])] +=
          a.values()[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(a.col_ids()[static_cast<std::size_t>(i)])];
    }
    return y;
  }
  const int nt = num_threads();
  const auto cut = key_aligned_cuts(a.row_ids(), nnz, nt);
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int t = 0; t < nt; ++t) {
    for (std::int64_t i = cut[static_cast<std::size_t>(t)];
         i < cut[static_cast<std::size_t>(t) + 1]; ++i) {
      y[static_cast<std::size_t>(a.row_ids()[static_cast<std::size_t>(i)])] +=
          a.values()[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(a.col_ids()[static_cast<std::size_t>(i)])];
    }
  }
  return y;
}

std::vector<value_t> spmv_dense(const DenseMatrix& a,
                                const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  const value_t* pa = a.values().data();
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < rows; ++r) {
    value_t acc = 0.0f;
    for (index_t c = 0; c < cols; ++c) {
      acc += pa[r * cols + c] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_ell(const EllMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), width = a.width();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < rows; ++r) {
    value_t acc = 0.0f;
    for (index_t s = 0; s < width; ++s) {
      const index_t c = a.col_ids()[static_cast<std::size_t>(r * width + s)];
      if (c < 0) continue;  // padding slot
      acc += a.values()[static_cast<std::size_t>(r * width + s)] *
             x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_bsr(const BsrMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  const index_t br = a.block_rows(), bc = a.block_cols();
  const index_t grid_rows = a.block_grid_rows();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    const index_t r_hi = std::min(rows - gr * br, br);  // edge-block clamp
    for (index_t blk = a.block_row_ptr()[gr]; blk < a.block_row_ptr()[gr + 1];
         ++blk) {
      const index_t c0 = a.block_col_ids()[static_cast<std::size_t>(blk)] * bc;
      const index_t c_hi = std::min(cols - c0, bc);
      const value_t* pv =
          a.block_values().data() + static_cast<std::size_t>(blk * br * bc);
      for (index_t r = 0; r < r_hi; ++r) {
        value_t acc = 0.0f;
        for (index_t c = 0; c < c_hi; ++c) {
          acc += pv[r * bc + c] * x[static_cast<std::size_t>(c0 + c)];
        }
        y[static_cast<std::size_t>(gr * br + r)] += acc;
      }
    }
  }
  return y;
}

}  // namespace mt
