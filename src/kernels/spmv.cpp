#include "kernels/spmv.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"
#include "kernels/partition.hpp"

namespace mt {

#if MT_SIMD_X86
namespace {

// One CSR row: 8-lane gather+FMA with two accumulators to split the FMA
// latency chain, reduced by the fixed-order hadd; the tail stays scalar.
// The traversal order is a pure function of the row contents, so the
// result is bit-identical run-to-run and across thread counts (each row
// is private to one thread).
MT_SIMD_TARGET value_t spmv_row_avx2(const value_t* vals, const index_t* cols,
                                     index_t cnt, const value_t* x) {
  __m256 acc0 = simd::zero();
  __m256 acc1 = simd::zero();
  index_t i = 0;
  for (; i + 16 <= cnt; i += 16) {
    acc0 = simd::fma(simd::load(vals + i), simd::gather(x, cols + i), acc0);
    acc1 = simd::fma(simd::load(vals + i + 8),
                     simd::gather(x, cols + i + 8), acc1);
  }
  for (; i + 8 <= cnt; i += 8) {
    acc0 = simd::fma(simd::load(vals + i), simd::gather(x, cols + i), acc0);
  }
  value_t acc = simd::hadd(simd::add(acc0, acc1));
  for (; i < cnt; ++i) {
    acc += vals[i] * x[cols[i]];
  }
  return acc;
}

// ELL row of `width` slots: padding slots (col_id == -1, value 0) are
// handled by the masked gather, which yields +0.0f for them without
// touching memory — no branch in the hot loop.
MT_SIMD_TARGET value_t spmv_ell_row_avx2(const value_t* vals,
                                         const index_t* cols, index_t width,
                                         const value_t* x) {
  __m256 acc0 = simd::zero();
  index_t s = 0;
  for (; s + 8 <= width; s += 8) {
    acc0 = simd::fma(simd::load(vals + s), simd::gather_nonneg(x, cols + s),
                     acc0);
  }
  value_t acc = simd::hadd(acc0);
  for (; s < width; ++s) {
    const index_t c = cols[s];
    if (c < 0) continue;  // padding slot
    acc += vals[s] * x[c];
  }
  return acc;
}

// Contiguous dot product (dense rows, BSR block rows): vector body plus
// scalar tail in the same fixed order every run.
MT_SIMD_TARGET value_t dot_avx2(const value_t* a, const value_t* b,
                                index_t n) {
  __m256 acc = simd::zero();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = simd::fma(simd::load(a + i), simd::load(b + i), acc);
  }
  value_t s = simd::hadd(acc);
  for (; i < n; ++i) {
    s += a[i] * b[i];
  }
  return s;
}

}  // namespace
#endif  // MT_SIMD_X86

std::vector<value_t> spmv_csr(const CsrMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t* rp = a.row_ptr().data();
    const index_t* ci = a.col_ids().data();
    const value_t* av = a.values().data();
    const value_t* px = x.data();
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t r = 0; r < a.rows(); ++r) {
      y[static_cast<std::size_t>(r)] =
          spmv_row_avx2(av + rp[r], ci + rp[r], rp[r + 1] - rp[r], px);
    }
    return y;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t acc = 0.0f;
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      acc += a.values()[i] * x[static_cast<std::size_t>(a.col_ids()[i])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_csc(const CscMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  // Fixed chunk width (not a function of the thread count) keeps the
  // chunk-order reduction below bit-identical at any MT_NUM_THREADS.
  constexpr index_t kChunkCols = 512;
  const index_t nchunks = (cols + kChunkCols - 1) / kChunkCols;
  if (nchunks == 0) return y;
  std::vector<value_t> part(static_cast<std::size_t>(nchunks * rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    value_t* py = part.data() + chunk * rows;
    const index_t c_hi = std::min(cols, (chunk + 1) * kChunkCols);
    for (index_t c = chunk * kChunkCols; c < c_hi; ++c) {
      const value_t xc = x[static_cast<std::size_t>(c)];
      for (index_t i = a.col_ptr()[c]; i < a.col_ptr()[c + 1]; ++i) {
        py[a.row_ids()[i]] += a.values()[i] * xc;
      }
    }
  }
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    const value_t* py = part.data() + chunk * rows;
    for (index_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] += py[r];
  }
  return y;
}

std::vector<value_t> spmv_coo(const CooMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0f);
  const std::int64_t nnz = a.nnz();
  if (!a.is_row_major_sorted()) {
    // Arbitrary entry order: accumulate serially (any order is correct,
    // but rows are no longer contiguous so the split below would race).
    for (std::int64_t i = 0; i < nnz; ++i) {
      y[static_cast<std::size_t>(a.row_ids()[static_cast<std::size_t>(i)])] +=
          a.values()[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(a.col_ids()[static_cast<std::size_t>(i)])];
    }
    return y;
  }
  const int nt = num_threads();
  const auto cut = key_aligned_cuts(a.row_ids(), nnz, nt);
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int t = 0; t < nt; ++t) {
    for (std::int64_t i = cut[static_cast<std::size_t>(t)];
         i < cut[static_cast<std::size_t>(t) + 1]; ++i) {
      y[static_cast<std::size_t>(a.row_ids()[static_cast<std::size_t>(i)])] +=
          a.values()[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(a.col_ids()[static_cast<std::size_t>(i)])];
    }
  }
  return y;
}

std::vector<value_t> spmv_dense(const DenseMatrix& a,
                                const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  const value_t* pa = a.values().data();
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const value_t* px = x.data();
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t r = 0; r < rows; ++r) {
      y[static_cast<std::size_t>(r)] = dot_avx2(pa + r * cols, px, cols);
    }
    return y;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < rows; ++r) {
    value_t acc = 0.0f;
    for (index_t c = 0; c < cols; ++c) {
      acc += pa[r * cols + c] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_ell(const EllMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), width = a.width();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t* ci = a.col_ids().data();
    const value_t* av = a.values().data();
    const value_t* px = x.data();
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t r = 0; r < rows; ++r) {
      y[static_cast<std::size_t>(r)] =
          spmv_ell_row_avx2(av + r * width, ci + r * width, width, px);
    }
    return y;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < rows; ++r) {
    value_t acc = 0.0f;
    for (index_t s = 0; s < width; ++s) {
      const index_t c = a.col_ids()[static_cast<std::size_t>(r * width + s)];
      if (c < 0) continue;  // padding slot
      acc += a.values()[static_cast<std::size_t>(r * width + s)] *
             x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<value_t> spmv_bsr(const BsrMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  const index_t rows = a.rows(), cols = a.cols();
  const index_t br = a.block_rows(), bc = a.block_cols();
  const index_t grid_rows = a.block_grid_rows();
  std::vector<value_t> y(static_cast<std::size_t>(rows), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    // Block rows are contiguous in both the block storage and x, so the
    // inner loop is a plain dot product; blocks narrower than a vector
    // run through dot_avx2's scalar tail.
    const value_t* px = x.data();
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t gr = 0; gr < grid_rows; ++gr) {
      const index_t r_hi = std::min(rows - gr * br, br);  // edge-block clamp
      for (index_t blk = a.block_row_ptr()[gr];
           blk < a.block_row_ptr()[gr + 1]; ++blk) {
        const index_t c0 =
            a.block_col_ids()[static_cast<std::size_t>(blk)] * bc;
        const index_t c_hi = std::min(cols - c0, bc);
        const value_t* pv =
            a.block_values().data() + static_cast<std::size_t>(blk * br * bc);
        for (index_t r = 0; r < r_hi; ++r) {
          y[static_cast<std::size_t>(gr * br + r)] +=
              dot_avx2(pv + r * bc, px + c0, c_hi);
        }
      }
    }
    return y;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    const index_t r_hi = std::min(rows - gr * br, br);  // edge-block clamp
    for (index_t blk = a.block_row_ptr()[gr]; blk < a.block_row_ptr()[gr + 1];
         ++blk) {
      const index_t c0 = a.block_col_ids()[static_cast<std::size_t>(blk)] * bc;
      const index_t c_hi = std::min(cols - c0, bc);
      const value_t* pv =
          a.block_values().data() + static_cast<std::size_t>(blk * br * bc);
      for (index_t r = 0; r < r_hi; ++r) {
        value_t acc = 0.0f;
        for (index_t c = 0; c < c_hi; ++c) {
          acc += pv[r * bc + c] * x[static_cast<std::size_t>(c0 + c)];
        }
        y[static_cast<std::size_t>(gr * br + r)] += acc;
      }
    }
  }
  return y;
}

}  // namespace mt
