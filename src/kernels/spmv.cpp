#include "kernels/spmv.hpp"

#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

std::vector<value_t> spmv_csr(const CsrMatrix& a,
                              const std::vector<value_t>& x) {
  MT_REQUIRE(static_cast<index_t>(x.size()) == a.cols(),
             "vector length must equal matrix columns");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(dynamic, 64)
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t acc = 0.0f;
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      acc += a.values()[i] * x[static_cast<std::size_t>(a.col_ids()[i])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

}  // namespace mt
