// Matricized Tensor Times Khatri-Rao Product (MTTKRP), mode-1:
//   M(i, r) = sum_{j,k} X(i, j, k) * B(j, r) * C(k, r)
// The CP-decomposition bottleneck of the paper's §II (yellow-shaded rows
// of Table III). X is sparse, B and C dense factor matrices.
#pragma once

#include "formats/csf.hpp"
#include "formats/dense.hpp"
#include "formats/hicoo.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_dense.hpp"

namespace mt {

DenseMatrix mttkrp_coo(const CooTensor3& x, const DenseMatrix& b,
                       const DenseMatrix& c);
DenseMatrix mttkrp_csf(const CsfTensor3& x, const DenseMatrix& b,
                       const DenseMatrix& c);

// HiCOO blocks are lexicographically sorted, so splitting the block array
// at block-x boundaries gives each thread disjoint output-row ranges —
// the same block-level parallelism Li et al. exploit, race-free.
DenseMatrix mttkrp_hicoo(const HicooTensor3& x, const DenseMatrix& b,
                         const DenseMatrix& c);

// Quadruple-loop dense reference used as the oracle.
DenseMatrix mttkrp_dense(const DenseTensor3& x, const DenseMatrix& b,
                         const DenseMatrix& c);

}  // namespace mt
