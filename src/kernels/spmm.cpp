#include "kernels/spmm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"
#include "kernels/partition.hpp"

namespace mt {

#if MT_SIMD_X86
namespace {

// One CSR×Dense output row: j-tiles of 32 columns held in four ymm
// accumulators across the whole nonzero walk, so each output element is
// loaded/stored once per row instead of once per nonzero. Per-cell
// accumulation still follows A's row-r nonzeros in order, matching the
// scalar path's order (FMA rounding aside).
MT_SIMD_TARGET void spmm_csr_row_avx2(const index_t* cols,
                                      const value_t* vals, index_t cnt,
                                      const value_t* pb, index_t n,
                                      value_t* out) {
  index_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 c0 = simd::zero();
    __m256 c1 = simd::zero();
    __m256 c2 = simd::zero();
    __m256 c3 = simd::zero();
    for (index_t i = 0; i < cnt; ++i) {
      const __m256 av = simd::set1(vals[i]);
      const value_t* pr = pb + cols[i] * n + j;
      c0 = simd::fma(av, simd::load(pr), c0);
      c1 = simd::fma(av, simd::load(pr + 8), c1);
      c2 = simd::fma(av, simd::load(pr + 16), c2);
      c3 = simd::fma(av, simd::load(pr + 24), c3);
    }
    simd::store(out + j, c0);
    simd::store(out + j + 8, c1);
    simd::store(out + j + 16, c2);
    simd::store(out + j + 24, c3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 c0 = simd::zero();
    for (index_t i = 0; i < cnt; ++i) {
      c0 = simd::fma(simd::set1(vals[i]),
                     simd::load(pb + cols[i] * n + j), c0);
    }
    simd::store(out + j, c0);
  }
  // Column tail (< 8): fused multiply-add, not mul+add, so a cell's bits
  // never depend on whether its column lands in a vector tile or the tail
  // — that is what makes per-column results independent of the matrix
  // width, which the serving batcher relies on when it stacks SpMV
  // payloads of different batch sizes through this kernel.
  for (; j < n; ++j) {
    value_t acc = 0.0f;
    for (index_t i = 0; i < cnt; ++i) {
      acc = std::fmaf(vals[i], pb[cols[i] * n + j], acc);
    }
    out[j] = acc;
  }
}

// One Dense×CSC output column: 8-row panels of A addressed by strided
// gather ((r+l)*k + kk), accumulated in a register across B's column-j
// nonzeros, then scattered into the strided output column. Removes the
// per-nonzero load/store of every output element the scalar loop pays.
MT_SIMD_TARGET void spmm_dense_csc_col_avx2(const value_t* pa, index_t m,
                                            index_t k, const index_t* rows,
                                            const value_t* vals, index_t cnt,
                                            value_t* po, index_t n,
                                            index_t j) {
  index_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const __m256i base_lo = _mm256_setr_epi64x(
        (r + 0) * k, (r + 1) * k, (r + 2) * k, (r + 3) * k);
    const __m256i base_hi = _mm256_setr_epi64x(
        (r + 4) * k, (r + 5) * k, (r + 6) * k, (r + 7) * k);
    __m256 acc = simd::zero();
    for (index_t i = 0; i < cnt; ++i) {
      const __m256i kk = _mm256_set1_epi64x(rows[i]);
      const __m128 lo =
          _mm256_i64gather_ps(pa, _mm256_add_epi64(base_lo, kk), 4);
      const __m128 hi =
          _mm256_i64gather_ps(pa, _mm256_add_epi64(base_hi, kk), 4);
      const __m256 col =
          _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
      acc = simd::fma(col, simd::set1(vals[i]), acc);
    }
    alignas(32) value_t lane[8];
    simd::store(lane, acc);
    for (int l = 0; l < 8; ++l) {
      po[(r + l) * n + j] += lane[l];
    }
  }
  for (; r < m; ++r) {
    value_t acc = 0.0f;
    for (index_t i = 0; i < cnt; ++i) {
      acc += pa[r * k + rows[i]] * vals[i];
    }
    po[r * n + j] += acc;
  }
}

}  // namespace
#endif  // MT_SIMD_X86

DenseMatrix spmm_coo_dense(const CooMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  const value_t* pb = b.values().data();
  const std::int64_t nnz = a.nnz();
  if (!a.is_row_major_sorted()) {
    // Alg. 1 of the paper over arbitrary entry order: consecutive entries
    // may share output rows, so this path stays serial.
    for (std::int64_t i = 0; i < nnz; ++i) {
      const index_t rid = a.row_ids()[i];
      const index_t cid = a.col_ids()[i];
      const value_t val = a.values()[i];
      for (index_t j = 0; j < n; ++j) {
        po[rid * n + j] += val * pb[cid * n + j];
      }
    }
    return o;
  }
  // Row-major entries: split the nnz range at row boundaries so each
  // thread's output rows are disjoint (bit-identical to the serial sweep).
  const int nt = num_threads();
  const auto cut = key_aligned_cuts(a.row_ids(), nnz, nt);
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int t = 0; t < nt; ++t) {
    for (std::int64_t i = cut[static_cast<std::size_t>(t)];
         i < cut[static_cast<std::size_t>(t) + 1]; ++i) {
      const index_t rid = a.row_ids()[i];
      const index_t cid = a.col_ids()[i];
      const value_t val = a.values()[i];
      for (index_t j = 0; j < n; ++j) {
        po[rid * n + j] += val * pb[cid * n + j];
      }
    }
  }
  return o;
}

DenseMatrix spmm_csr_dense(const CsrMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  const value_t* pb = b.values().data();
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t* rp = a.row_ptr().data();
    const index_t* ci = a.col_ids().data();
    const value_t* av = a.values().data();
#pragma omp parallel for num_threads(nt) schedule(static)
    for (index_t r = 0; r < a.rows(); ++r) {
      spmm_csr_row_avx2(ci + rp[r], av + rp[r], rp[r + 1] - rp[r], pb, n,
                        po + r * n);
    }
    return o;
  }
#endif
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const index_t k = a.col_ids()[i];
      const value_t av = a.values()[i];
      for (index_t j = 0; j < n; ++j) {
        po[r * n + j] += av * pb[k * n + j];
      }
    }
  }
  return o;
}

DenseMatrix spmm_csc_dense(const CscMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  DenseMatrix o(m, n);
  value_t* po = o.values().data();
  const value_t* pb = b.values().data();
  // Scattering into shared output rows from different A columns would
  // race, so columns are processed in fixed-width chunks with a private
  // partial output per chunk, reduced in chunk order. The chunk width is
  // independent of the thread count (deterministic results) and capped so
  // the partials stay within 8x the output footprint.
  const index_t chunk_cols = std::max<index_t>(256, (k + 7) / 8);
  const index_t nchunks = (k + chunk_cols - 1) / chunk_cols;
  if (nchunks == 0) return o;
  std::vector<value_t> part(static_cast<std::size_t>(nchunks * m * n), 0.0f);
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(static)
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    value_t* pp = part.data() + chunk * m * n;
    const index_t c_hi = std::min(k, (chunk + 1) * chunk_cols);
    for (index_t c = chunk * chunk_cols; c < c_hi; ++c) {
      for (index_t i = a.col_ptr()[c]; i < a.col_ptr()[c + 1]; ++i) {
        const index_t r = a.row_ids()[i];
        const value_t av = a.values()[i];
        for (index_t j = 0; j < n; ++j) {
          pp[r * n + j] += av * pb[c * n + j];
        }
      }
    }
  }
  for (index_t chunk = 0; chunk < nchunks; ++chunk) {
    const value_t* pp = part.data() + chunk * m * n;
    for (index_t e = 0; e < m * n; ++e) po[e] += pp[e];
  }
  return o;
}

DenseMatrix spmm_dense_csc(const DenseMatrix& a, const CscMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  value_t* po = o.values().data();
  const value_t* pa = a.values().data();
  [[maybe_unused]] const int nt = num_threads();
#if MT_SIMD_X86
  if (simd_enabled()) {
    const index_t* cp = b.col_ptr().data();
    const index_t* ri = b.row_ids().data();
    const value_t* bv = b.values().data();
    // omp-determinism: each iteration owns output column j exclusively,
    // and the row-panel/nonzero walk inside the column kernel is a pure
    // function of j, so dynamic scheduling cannot change the result bits.
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
    for (index_t j = 0; j < n; ++j) {
      spmm_dense_csc_col_avx2(pa, m, k, ri + cp[j], bv + cp[j],
                              cp[j + 1] - cp[j], po, n, j);
    }
    return o;
  }
#endif
  // omp-determinism: each iteration owns output column j exclusively
  // (writes po[r*n+j] for fixed j), and the per-column accumulation order
  // follows B's column-j nonzeros regardless of which thread runs it, so
  // dynamic scheduling cannot change the result bits.
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = b.col_ptr()[j]; i < b.col_ptr()[j + 1]; ++i) {
      const index_t kk = b.row_ids()[i];
      const value_t bv = b.values()[i];
      for (index_t r = 0; r < m; ++r) {
        po[r * n + j] += pa[r * k + kk] * bv;
      }
    }
  }
  return o;
}

DenseMatrix spmm_csr_csc(const CsrMatrix& a, const CscMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  [[maybe_unused]] const int nt = num_threads();
  // omp-determinism: each iteration owns output row r exclusively, and
  // every (r, j) cell accumulates via the same sorted intersection walk
  // on any thread, so dynamic scheduling cannot change the result bits.
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
  for (index_t r = 0; r < a.rows(); ++r) {
    const index_t a_lo = a.row_ptr()[r], a_hi = a.row_ptr()[r + 1];
    if (a_lo == a_hi) continue;
    for (index_t j = 0; j < n; ++j) {
      // Sorted intersection of A's row-r col ids and B's column-j row ids
      // — exactly the comparator matching the extended PEs perform.
      index_t ia = a_lo;
      index_t ib = b.col_ptr()[j];
      const index_t b_hi = b.col_ptr()[j + 1];
      value_t acc = 0.0f;
      while (ia < a_hi && ib < b_hi) {
        const index_t ka = a.col_ids()[ia];
        const index_t kb = b.row_ids()[ib];
        if (ka == kb) {
          acc += a.values()[ia] * b.values()[ib];
          ++ia;
          ++ib;
        } else if (ka < kb) {
          ++ia;
        } else {
          ++ib;
        }
      }
      if (acc != 0.0f) po[r * n + j] += acc;
    }
  }
  return o;
}

}  // namespace mt
