#include "kernels/spmm.hpp"

#include "common/error.hpp"
#include "common/threads.hpp"

namespace mt {

DenseMatrix spmm_coo_dense(const CooMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  const value_t* pb = b.values().data();
  // Alg. 1 of the paper, kept serial over nnz: consecutive entries share
  // output rows, so row-parallelism would race.
  for (std::int64_t i = 0; i < a.nnz(); ++i) {
    const index_t rid = a.row_ids()[i];
    const index_t cid = a.col_ids()[i];
    const value_t val = a.values()[i];
    for (index_t j = 0; j < n; ++j) {
      po[rid * n + j] += val * pb[cid * n + j];
    }
  }
  return o;
}

DenseMatrix spmm_csr_dense(const CsrMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  const value_t* pb = b.values().data();
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const index_t k = a.col_ids()[i];
      const value_t av = a.values()[i];
      for (index_t j = 0; j < n; ++j) {
        po[r * n + j] += av * pb[k * n + j];
      }
    }
  }
  return o;
}

DenseMatrix spmm_dense_csc(const DenseMatrix& a, const CscMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  value_t* po = o.values().data();
  const value_t* pa = a.values().data();
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = b.col_ptr()[j]; i < b.col_ptr()[j + 1]; ++i) {
      const index_t kk = b.row_ids()[i];
      const value_t bv = b.values()[i];
      for (index_t r = 0; r < m; ++r) {
        po[r * n + j] += pa[r * k + kk] * bv;
      }
    }
  }
  return o;
}

DenseMatrix spmm_csr_csc(const CsrMatrix& a, const CscMatrix& b) {
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  DenseMatrix o(a.rows(), b.cols());
  const index_t n = b.cols();
  value_t* po = o.values().data();
  [[maybe_unused]] const int nt = num_threads();
#pragma omp parallel for num_threads(nt) schedule(dynamic, 16)
  for (index_t r = 0; r < a.rows(); ++r) {
    const index_t a_lo = a.row_ptr()[r], a_hi = a.row_ptr()[r + 1];
    if (a_lo == a_hi) continue;
    for (index_t j = 0; j < n; ++j) {
      // Sorted intersection of A's row-r col ids and B's column-j row ids
      // — exactly the comparator matching the extended PEs perform.
      index_t ia = a_lo;
      index_t ib = b.col_ptr()[j];
      const index_t b_hi = b.col_ptr()[j + 1];
      value_t acc = 0.0f;
      while (ia < a_hi && ib < b_hi) {
        const index_t ka = a.col_ids()[ia];
        const index_t kb = b.row_ids()[ib];
        if (ka == kb) {
          acc += a.values()[ia] * b.values()[ib];
          ++ia;
          ++ib;
        } else if (ka < kb) {
          ++ia;
        } else {
          ++ib;
        }
      }
      if (acc != 0.0f) po[r * n + j] += acc;
    }
  }
  return o;
}

}  // namespace mt
