#include "formats/zvc.hpp"

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

ZvcMatrix ZvcMatrix::from_dense(const DenseMatrix& d) {
  ZvcMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  const index_t total = d.size();
  m.mask_.assign(static_cast<std::size_t>(ceil_div(total, 64)), 0);
  for (index_t p = 0; p < total; ++p) {
    const value_t x = d.values()[static_cast<std::size_t>(p)];
    if (x != 0.0f) {
      m.mask_[static_cast<std::size_t>(p >> 6)] |= std::uint64_t{1} << (p & 63);
      m.val_.push_back(x);
    }
  }
  return m;
}

DenseMatrix ZvcMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  std::size_t next = 0;
  const index_t total = rows_ * cols_;
  for (index_t p = 0; p < total; ++p) {
    if (occupied(p)) {
      MT_ENSURE(next < val_.size(), "ZVC mask has more set bits than values");
      d.values()[static_cast<std::size_t>(p)] = val_[next++];
    }
  }
  MT_ENSURE(next == val_.size(), "ZVC values not fully consumed");
  return d;
}

StorageSize ZvcMatrix::storage(DataType dt) const {
  // The mask costs exactly one bit per dense element.
  return {nnz() * bits_of(dt), rows_ * cols_};
}

}  // namespace mt
