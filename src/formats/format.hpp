// Compression-format identifiers (paper Fig. 3).
//
// A format can serve as a Memory Compression Format (MCF — how a tensor is
// laid out in DRAM), as an Algorithm Compression Format (ACF — how the
// accelerator consumes it), or both. The paper's evaluation admits six
// matrix MCFs (Dense, RLC, ZVC, COO, CSR, CSC) and four matrix ACFs
// (Dense, COO, CSR, CSC); tensor workloads additionally use CSF and HiCOO.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace mt {

enum class Format : std::uint8_t {
  kDense,
  kCOO,
  kCSR,
  kCSC,
  kRLC,
  kZVC,
  kBSR,
  kDIA,
  kELL,
  kCSF,
  kHiCOO,
};

constexpr std::string_view name_of(Format f) {
  switch (f) {
    case Format::kDense: return "Dense";
    case Format::kCOO: return "COO";
    case Format::kCSR: return "CSR";
    case Format::kCSC: return "CSC";
    case Format::kRLC: return "RLC";
    case Format::kZVC: return "ZVC";
    case Format::kBSR: return "BSR";
    case Format::kDIA: return "DIA";
    case Format::kELL: return "ELL";
    case Format::kCSF: return "CSF";
    case Format::kHiCOO: return "HiCOO";
  }
  return "?";
}

// Every format, in enum order — the iteration set for coverage queries
// and the index space of the serving runtime's per-format telemetry.
inline constexpr std::array<Format, 11> kAllFormats = {
    Format::kDense, Format::kCOO, Format::kCSR, Format::kCSC,
    Format::kRLC,   Format::kZVC, Format::kBSR, Format::kDIA,
    Format::kELL,   Format::kCSF, Format::kHiCOO};

// MCF candidates SAGE searches for a matrix operand (paper §VII-A).
inline constexpr std::array<Format, 6> kMatrixMcfChoices = {
    Format::kDense, Format::kRLC, Format::kZVC,
    Format::kCOO,   Format::kCSR, Format::kCSC};

// ACF candidates the extended PE microarchitecture supports for a matrix
// operand (paper §VII-A).
inline constexpr std::array<Format, 4> kMatrixAcfChoices = {
    Format::kDense, Format::kCOO, Format::kCSR, Format::kCSC};

// MCF candidates for a 3-D tensor operand (Table III uses these).
inline constexpr std::array<Format, 5> kTensorMcfChoices = {
    Format::kDense, Format::kRLC, Format::kZVC, Format::kCOO, Format::kCSF};

// ACF candidates for a 3-D tensor operand.
inline constexpr std::array<Format, 3> kTensorAcfChoices = {
    Format::kDense, Format::kCOO, Format::kCSF};

// True if the format keeps explicit zero-valued elements (affects how many
// elements the bus must move and the buffer must hold).
constexpr bool stores_zeros(Format f) {
  return f == Format::kDense || f == Format::kBSR || f == Format::kDIA ||
         f == Format::kELL;
}

}  // namespace mt
