#include "formats/rlc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mt {

RlcMatrix RlcMatrix::from_dense(const DenseMatrix& d, int run_bits) {
  MT_REQUIRE(run_bits >= 1 && run_bits <= 16, "run counter width 1..16 bits");
  RlcMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  m.run_bits_ = run_bits;
  const std::uint32_t max_run = m.max_run();
  std::uint32_t zeros = 0;
  for (value_t x : d.values()) {
    if (x == 0.0f) {
      ++zeros;
      continue;
    }
    // An escape entry encodes max_run zeros plus one explicit zero value,
    // consuming max_run + 1 zeros of the stream.
    while (zeros > max_run) {
      m.entries_.push_back({max_run, 0.0f});
      zeros -= max_run + 1;
    }
    m.entries_.push_back({zeros, x});
    zeros = 0;
  }
  // Trailing zeros are implicit: the decoder knows rows*cols.
  return m;
}

DenseMatrix RlcMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  index_t pos = 0;
  const index_t total = rows_ * cols_;
  for (const RlcEntry& e : entries_) {
    pos += e.zero_run;
    MT_ENSURE(pos < total, "RLC stream exceeds matrix size");
    d.values()[static_cast<std::size_t>(pos)] = e.value;
    ++pos;
  }
  return d;
}

std::int64_t RlcMatrix::nnz() const {
  return std::count_if(entries_.begin(), entries_.end(),
                       [](const RlcEntry& e) { return e.value != 0.0f; });
}

StorageSize RlcMatrix::storage(DataType dt) const {
  const auto n = static_cast<std::int64_t>(entries_.size());
  return {n * bits_of(dt), n * run_bits_};
}

}  // namespace mt
