#include "formats/ell.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

EllMatrix EllMatrix::from_dense(const DenseMatrix& d) {
  EllMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  std::vector<std::vector<std::pair<index_t, value_t>>> rows(
      static_cast<std::size_t>(d.rows()));
  index_t width = 0;
  for (index_t r = 0; r < d.rows(); ++r) {
    for (index_t c = 0; c < d.cols(); ++c) {
      const value_t v = d.at(r, c);
      if (v != 0.0f) rows[static_cast<std::size_t>(r)].emplace_back(c, v);
    }
    width = std::max(width,
                     static_cast<index_t>(rows[static_cast<std::size_t>(r)].size()));
  }
  m.width_ = width;
  m.col_.assign(static_cast<std::size_t>(d.rows() * width), -1);
  m.val_.assign(static_cast<std::size_t>(d.rows() * width), 0.0f);
  for (index_t r = 0; r < d.rows(); ++r) {
    const auto& row = rows[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < row.size(); ++i) {
      m.col_[static_cast<std::size_t>(r * width) + i] = row[i].first;
      m.val_[static_cast<std::size_t>(r * width) + i] = row[i].second;
    }
  }
  return m;
}

DenseMatrix EllMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t i = 0; i < width_; ++i) {
      const index_t c = col_[static_cast<std::size_t>(r * width_ + i)];
      if (c < 0) continue;  // padding slot
      MT_ENSURE(c < cols_, "ELL col id in range");
      d.set(r, c, val_[static_cast<std::size_t>(r * width_ + i)]);
    }
  }
  return d;
}

std::int64_t EllMatrix::nnz() const {
  return std::count_if(val_.begin(), val_.end(),
                       [](value_t x) { return x != 0.0f; });
}

StorageSize EllMatrix::storage(DataType dt) const {
  // Padding slots pay full freight — ELL's structured-layout tax. The id
  // field needs one extra code point for the padding sentinel.
  const std::int64_t slots = rows_ * width_;
  return {slots * bits_of(dt),
          slots * bits_for(static_cast<std::uint64_t>(cols_) + 1)};
}

}  // namespace mt
