#include "formats/csf.hpp"

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

CsfTensor3 CsfTensor3::from_coo(const CooTensor3& c) {
  CsfTensor3 t;
  t.x_ = c.dim_x();
  t.y_ = c.dim_y();
  t.z_ = c.dim_z();
  t.y_ptr_.push_back(0);
  const std::int64_t n = c.nnz();
  for (std::int64_t i = 0; i < n; ++i) {
    const index_t x = c.x_ids()[i];
    const index_t y = c.y_ids()[i];
    const bool new_x = t.x_ids_.empty() || t.x_ids_.back() != x;
    if (new_x) {
      t.x_ids_.push_back(x);
      t.y_ptr_.push_back(t.y_ptr_.back());
    }
    const bool new_y = new_x || t.y_ids_.empty() ||
                       t.y_ids_[static_cast<std::size_t>(t.y_ptr_.back()) - 1] != y;
    if (new_y) {
      t.y_ids_.push_back(y);
      ++t.y_ptr_.back();
      t.z_ptr_.push_back(static_cast<index_t>(t.z_ids_.size()));
    }
    t.z_ids_.push_back(c.z_ids()[i]);
    t.val_.push_back(c.values()[i]);
  }
  t.z_ptr_.push_back(static_cast<index_t>(t.z_ids_.size()));
  if (t.y_ids_.empty()) t.z_ptr_ = {0};
  // z_ptr has n2+1 entries, where n2 = |y_ids|.
  MT_ENSURE(t.z_ptr_.size() == t.y_ids_.size() + 1, "CSF level-2 pointer shape");
  MT_ENSURE(t.y_ptr_.size() == t.x_ids_.size() + 1, "CSF level-1 pointer shape");
  return t;
}

CsfTensor3 CsfTensor3::from_dense(const DenseTensor3& d) {
  return from_coo(CooTensor3::from_dense(d));
}

CooTensor3 CsfTensor3::to_coo() const {
  std::vector<index_t> xs, ys, zs;
  xs.reserve(val_.size());
  ys.reserve(val_.size());
  zs.reserve(val_.size());
  for (std::size_t xi = 0; xi < x_ids_.size(); ++xi) {
    for (index_t yi = y_ptr_[xi]; yi < y_ptr_[xi + 1]; ++yi) {
      for (index_t zi = z_ptr_[yi]; zi < z_ptr_[yi + 1]; ++zi) {
        xs.push_back(x_ids_[xi]);
        ys.push_back(y_ids_[static_cast<std::size_t>(yi)]);
        zs.push_back(z_ids_[static_cast<std::size_t>(zi)]);
      }
    }
  }
  return CooTensor3::from_entries(x_, y_, z_, std::move(xs), std::move(ys),
                                  std::move(zs), val_);
}

DenseTensor3 CsfTensor3::to_dense() const { return to_coo().to_dense(); }

StorageSize CsfTensor3::storage(DataType dt) const {
  const auto n1 = static_cast<std::int64_t>(x_ids_.size());
  const auto n2 = static_cast<std::int64_t>(y_ids_.size());
  const std::int64_t n = nnz();
  const std::int64_t meta =
      n1 * bits_for(static_cast<std::uint64_t>(x_)) +
      n2 * bits_for(static_cast<std::uint64_t>(y_)) +
      n * bits_for(static_cast<std::uint64_t>(z_)) +
      (n1 + 1) * bits_for(static_cast<std::uint64_t>(n2) + 1) +
      (n2 + 1) * bits_for(static_cast<std::uint64_t>(n) + 1);
  return {n * bits_of(dt), meta};
}

}  // namespace mt
