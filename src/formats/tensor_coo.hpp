// Coordinate (COO) 3-D tensor: one (x, y, z, value) tuple per nonzero,
// sorted lexicographically. The MCF Table III selects for the Uber tensor
// and the hub representation for tensor-format conversion.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/storage.hpp"
#include "formats/tensor_dense.hpp"

namespace mt {

class CooTensor3 {
 public:
  CooTensor3() = default;

  static CooTensor3 from_entries(index_t x, index_t y, index_t z,
                                 std::vector<index_t> xs,
                                 std::vector<index_t> ys,
                                 std::vector<index_t> zs,
                                 std::vector<value_t> values);
  static CooTensor3 from_dense(const DenseTensor3& d);

  DenseTensor3 to_dense() const;

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<index_t>& x_ids() const { return xi_; }
  const std::vector<index_t>& y_ids() const { return yi_; }
  const std::vector<index_t>& z_ids() const { return zi_; }
  const std::vector<value_t>& values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t x_ = 0, y_ = 0, z_ = 0;
  std::vector<index_t> xi_, yi_, zi_;
  std::vector<value_t> val_;
};

}  // namespace mt
