// Run-Length Coding (RLC) over the row-major linearization of a matrix.
//
// Each entry is (zero_run, value): `zero_run` zeros followed by one stored
// element. The run counter is a short fixed-width field (kRlcRunBits,
// Eyeriss-style); runs longer than the counter maximum are carried by
// escape entries whose stored element is an explicit zero, so an escape
// consumes (max_run + 1) zeros of the stream. Trailing zeros are implicit:
// the decoder knows rows*cols. This is the MCF that wins the paper's
// middle density band (Fig. 4a) and Table III picks it for speech/nd3k.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

struct RlcEntry {
  std::uint32_t zero_run = 0;  // < (1 << run_bits)
  value_t value = 0.0f;        // 0.0 for escape entries

  bool operator==(const RlcEntry&) const = default;
};

class RlcMatrix {
 public:
  RlcMatrix() = default;

  static RlcMatrix from_dense(const DenseMatrix& d, int run_bits = kRlcRunBits);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  int run_bits() const { return run_bits_; }
  std::uint32_t max_run() const { return (1u << run_bits_) - 1u; }

  // Stored entries including escapes (what storage is charged for).
  const std::vector<RlcEntry>& entries() const { return entries_; }

  // True nonzero count (escape entries excluded).
  std::int64_t nnz() const;

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  int run_bits_ = kRlcRunBits;
  std::vector<RlcEntry> entries_;
};

}  // namespace mt
