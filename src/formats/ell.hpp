// ELLPACK (ELL) matrix format [Bell & Garland SC'09, the paper's fmt
// survey citation].
//
// Every row stores exactly `width` = max-row-nnz (col_id, value) slots;
// shorter rows are padded (sentinel column id, zero value). The regular
// per-row layout is what vector machines and some accelerators want, at
// the cost of padding when row populations are skewed — the same
// structured-format trade the paper defers to future work for its
// performance model, supported here for storage and conversion.
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class EllMatrix {
 public:
  EllMatrix() = default;

  static EllMatrix from_dense(const DenseMatrix& d);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t width() const { return width_; }  // slots per row
  std::int64_t nnz() const;

  // Row-major, rows_ * width_ entries; padding slots have col_id == -1
  // and value 0.0f. Values are 64-byte aligned for the SIMD tier.
  const std::vector<index_t>& col_ids() const { return col_; }
  const AlignedVec<value_t>& values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0, cols_ = 0, width_ = 0;
  std::vector<index_t> col_;
  AlignedVec<value_t> val_;
};

}  // namespace mt
