#include "formats/tensor_coo.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

CooTensor3 CooTensor3::from_entries(index_t x, index_t y, index_t z,
                                    std::vector<index_t> xs,
                                    std::vector<index_t> ys,
                                    std::vector<index_t> zs,
                                    std::vector<value_t> values) {
  MT_REQUIRE(xs.size() == ys.size() && ys.size() == zs.size() &&
                 zs.size() == values.size(),
             "parallel arrays must have equal length");
  CooTensor3 t;
  t.x_ = x;
  t.y_ = y;
  t.z_ = z;
  std::vector<std::size_t> p(values.size());
  std::iota(p.begin(), p.end(), 0);
  std::sort(p.begin(), p.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(xs[a], ys[a], zs[a]) < std::tie(xs[b], ys[b], zs[b]);
  });
  t.xi_.reserve(p.size());
  t.yi_.reserve(p.size());
  t.zi_.reserve(p.size());
  t.val_.reserve(p.size());
  for (std::size_t i : p) {
    MT_REQUIRE(xs[i] >= 0 && xs[i] < x && ys[i] >= 0 && ys[i] < y &&
                   zs[i] >= 0 && zs[i] < z,
               "tensor COO coordinate out of range");
    t.xi_.push_back(xs[i]);
    t.yi_.push_back(ys[i]);
    t.zi_.push_back(zs[i]);
    t.val_.push_back(values[i]);
  }
  for (std::size_t i = 1; i < t.val_.size(); ++i) {
    MT_REQUIRE(std::tie(t.xi_[i], t.yi_[i], t.zi_[i]) !=
                   std::tie(t.xi_[i - 1], t.yi_[i - 1], t.zi_[i - 1]),
               "duplicate tensor COO coordinate");
  }
  return t;
}

CooTensor3 CooTensor3::from_dense(const DenseTensor3& d) {
  CooTensor3 t;
  t.x_ = d.dim_x();
  t.y_ = d.dim_y();
  t.z_ = d.dim_z();
  for (index_t ix = 0; ix < d.dim_x(); ++ix) {
    for (index_t iy = 0; iy < d.dim_y(); ++iy) {
      for (index_t iz = 0; iz < d.dim_z(); ++iz) {
        const value_t v = d.at(ix, iy, iz);
        if (v != 0.0f) {
          t.xi_.push_back(ix);
          t.yi_.push_back(iy);
          t.zi_.push_back(iz);
          t.val_.push_back(v);
        }
      }
    }
  }
  return t;
}

DenseTensor3 CooTensor3::to_dense() const {
  DenseTensor3 d(x_, y_, z_);
  for (std::size_t i = 0; i < val_.size(); ++i) {
    d.set(xi_[i], yi_[i], zi_[i], val_[i]);
  }
  return d;
}

StorageSize CooTensor3::storage(DataType dt) const {
  const std::int64_t n = nnz();
  return {n * bits_of(dt), n * (bits_for(static_cast<std::uint64_t>(x_)) +
                                bits_for(static_cast<std::uint64_t>(y_)) +
                                bits_for(static_cast<std::uint64_t>(z_)))};
}

}  // namespace mt
