// Zero-Value Compression (ZVC).
//
// Stores the nonzero values plus a one-bit-per-element occupancy mask over
// the row-major linearization (paper Fig. 3, [Rhu et al. HPCA'18]). The
// mask cost is exactly rows*cols bits regardless of sparsity, which makes
// ZVC the most compact MCF in the ~25-75% density band of Fig. 4a and the
// fixed MCF of SIGMA in Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class ZvcMatrix {
 public:
  ZvcMatrix() = default;

  static ZvcMatrix from_dense(const DenseMatrix& d);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  // Occupancy bit for linear position p (row-major).
  bool occupied(index_t p) const {
    return (mask_[static_cast<std::size_t>(p >> 6)] >> (p & 63)) & 1u;
  }

  const std::vector<std::uint64_t>& mask_words() const { return mask_; }
  const std::vector<value_t>& values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<std::uint64_t> mask_;  // ceil(rows*cols / 64) words
  std::vector<value_t> val_;         // nnz values in mask order
};

}  // namespace mt
