// Hierarchical COO (HiCOO) for 3-D tensors [Li et al. SC'18].
//
// Nonzeros are grouped into BxBxB blocks (paper Fig. 3b uses B = 2):
// per block a pointer into the element array plus block coordinates at
// reduced width; per element only log2(B)-bit offsets inside the block.
// Saves metadata whenever nonzeros cluster.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/storage.hpp"
#include "formats/tensor_coo.hpp"

namespace mt {

class HicooTensor3 {
 public:
  HicooTensor3() = default;

  static HicooTensor3 from_coo(const CooTensor3& c, index_t block = kHicooBlock);

  CooTensor3 to_coo() const;

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  index_t block() const { return b_; }
  std::int64_t num_blocks() const { return static_cast<std::int64_t>(bx_.size()); }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<index_t>& block_ptr() const { return bptr_; }  // nblocks+1
  const std::vector<index_t>& block_x() const { return bx_; }
  const std::vector<index_t>& block_y() const { return by_; }
  const std::vector<index_t>& block_z() const { return bz_; }
  const std::vector<std::uint8_t>& elem_x() const { return ex_; }
  const std::vector<std::uint8_t>& elem_y() const { return ey_; }
  const std::vector<std::uint8_t>& elem_z() const { return ez_; }
  const std::vector<value_t>& values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t x_ = 0, y_ = 0, z_ = 0, b_ = kHicooBlock;
  std::vector<index_t> bptr_, bx_, by_, bz_;
  std::vector<std::uint8_t> ex_, ey_, ez_;
  std::vector<value_t> val_;
};

}  // namespace mt
