#include "formats/bsr.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

index_t BsrMatrix::block_grid_rows() const { return ceil_div(rows_, br_); }
index_t BsrMatrix::block_grid_cols() const { return ceil_div(cols_, bc_); }

BsrMatrix BsrMatrix::from_dense(const DenseMatrix& d, index_t block_rows,
                                index_t block_cols) {
  MT_REQUIRE(block_rows > 0 && block_cols > 0, "positive block dims");
  BsrMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  m.br_ = block_rows;
  m.bc_ = block_cols;
  const index_t grid_rows = m.block_grid_rows();
  const index_t grid_cols = m.block_grid_cols();
  m.block_row_ptr_.assign(static_cast<std::size_t>(grid_rows) + 1, 0);
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    for (index_t gc = 0; gc < grid_cols; ++gc) {
      bool any = false;
      for (index_t r = gr * block_rows; r < std::min((gr + 1) * block_rows, m.rows_) && !any; ++r) {
        for (index_t c = gc * block_cols; c < std::min((gc + 1) * block_cols, m.cols_); ++c) {
          if (d.at(r, c) != 0.0f) {
            any = true;
            break;
          }
        }
      }
      if (!any) continue;
      m.block_col_.push_back(gc);
      // Out-of-matrix positions in a boundary block are stored as zeros,
      // exactly like the explicit fill zeros of a partial block.
      for (index_t br = 0; br < block_rows; ++br) {
        for (index_t bc = 0; bc < block_cols; ++bc) {
          const index_t r = gr * block_rows + br;
          const index_t c = gc * block_cols + bc;
          m.val_.push_back(r < m.rows_ && c < m.cols_ ? d.at(r, c) : 0.0f);
        }
      }
    }
    m.block_row_ptr_[static_cast<std::size_t>(gr) + 1] =
        static_cast<index_t>(m.block_col_.size());
  }
  return m;
}

BsrMatrix BsrMatrix::from_parts(index_t rows, index_t cols, index_t block_rows,
                                index_t block_cols,
                                std::vector<index_t> block_row_ptr,
                                std::vector<index_t> block_col_ids,
                                std::vector<value_t> block_values) {
  MT_REQUIRE(block_rows > 0 && block_cols > 0, "positive block dims");
  BsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.br_ = block_rows;
  m.bc_ = block_cols;
  const index_t grid_rows = m.block_grid_rows();
  const index_t grid_cols = m.block_grid_cols();
  MT_REQUIRE(static_cast<index_t>(block_row_ptr.size()) == grid_rows + 1,
             "block_row_ptr must have grid_rows+1 entries");
  MT_REQUIRE(block_row_ptr.front() == 0 &&
                 block_row_ptr.back() ==
                     static_cast<index_t>(block_col_ids.size()),
             "block_row_ptr must span [0, num_blocks]");
  MT_REQUIRE(block_values.size() ==
                 block_col_ids.size() * static_cast<std::size_t>(block_rows) *
                     static_cast<std::size_t>(block_cols),
             "block_values must hold br*bc values per block");
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    for (index_t b = block_row_ptr[gr]; b < block_row_ptr[gr + 1]; ++b) {
      MT_REQUIRE(block_col_ids[b] >= 0 && block_col_ids[b] < grid_cols,
                 "block col id out of range");
      MT_REQUIRE(b == block_row_ptr[gr] || block_col_ids[b - 1] < block_col_ids[b],
                 "block col ids ascending within a block row");
    }
  }
  m.block_row_ptr_ = std::move(block_row_ptr);
  m.block_col_ = std::move(block_col_ids);
  m.val_.assign(block_values.begin(), block_values.end());
  return m;
}

DenseMatrix BsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  const index_t grid_rows = block_grid_rows();
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    for (index_t b = block_row_ptr_[gr]; b < block_row_ptr_[gr + 1]; ++b) {
      const index_t gc = block_col_[b];
      for (index_t br = 0; br < br_; ++br) {
        for (index_t bc = 0; bc < bc_; ++bc) {
          const index_t r = gr * br_ + br;
          const index_t c = gc * bc_ + bc;
          const value_t x = val_[static_cast<std::size_t>((b * br_ + br) * bc_ + bc)];
          if (r < rows_ && c < cols_) {
            d.set(r, c, x);
          } else {
            MT_ENSURE(x == 0.0f, "padding region of a boundary block must be zero");
          }
        }
      }
    }
  }
  return d;
}

std::int64_t BsrMatrix::nnz() const {
  return std::count_if(val_.begin(), val_.end(),
                       [](value_t x) { return x != 0.0f; });
}

StorageSize BsrMatrix::storage(DataType dt) const {
  const std::int64_t nb = num_blocks();
  const std::int64_t meta =
      nb * bits_for(static_cast<std::uint64_t>(block_grid_cols())) +
      (block_grid_rows() + 1) * bits_for(static_cast<std::uint64_t>(nb) + 1);
  return {nb * br_ * bc_ * bits_of(dt), meta};
}

}  // namespace mt
