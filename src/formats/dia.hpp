// Diagonal (DIA) matrix format.
//
// Stores every diagonal that contains at least one nonzero as a full
// `rows`-long lane (out-of-matrix positions are padding, paper Fig. 3 shows
// them as '*'), plus one signed offset per stored diagonal. Extremely
// compact for banded scientific operators, catastrophic for unstructured
// sparsity — which is why the paper lists it as a format whose performance
// model is future work while we still support storage and conversion.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class DiaMatrix {
 public:
  DiaMatrix() = default;

  static DiaMatrix from_dense(const DenseMatrix& d);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int64_t num_diagonals() const { return static_cast<std::int64_t>(offsets_.size()); }
  std::int64_t nnz() const;

  // offsets_[d] = c - r for the stored diagonal d; ascending.
  const std::vector<index_t>& offsets() const { return offsets_; }
  // lane d occupies data_[d*rows .. (d+1)*rows); lane position r holds
  // A(r, r + offset[d]) or 0 padding when that column is out of range.
  const std::vector<value_t>& lanes() const { return data_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<index_t> offsets_;
  std::vector<value_t> data_;
};

}  // namespace mt
