#include "formats/csr.hpp"

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

CsrMatrix CsrMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<index_t> row_ptr,
                                std::vector<index_t> col_ids,
                                std::vector<value_t> values) {
  return from_parts_aligned(rows, cols, std::move(row_ptr),
                            std::move(col_ids),
                            AlignedVec<value_t>(values.begin(), values.end()));
}

CsrMatrix CsrMatrix::from_parts_aligned(index_t rows, index_t cols,
                                        std::vector<index_t> row_ptr,
                                        std::vector<index_t> col_ids,
                                        AlignedVec<value_t> values) {
  MT_REQUIRE(static_cast<index_t>(row_ptr.size()) == rows + 1,
             "row_ptr must have rows+1 entries");
  MT_REQUIRE(col_ids.size() == values.size(), "col_ids/values length mismatch");
  MT_REQUIRE(row_ptr.front() == 0 &&
                 row_ptr.back() == static_cast<index_t>(values.size()),
             "row_ptr must span [0, nnz]");
  for (index_t r = 0; r < rows; ++r) {
    MT_REQUIRE(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be non-decreasing");
    for (index_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      MT_REQUIRE(col_ids[i] >= 0 && col_ids[i] < cols, "col_id out of range");
      MT_REQUIRE(i == row_ptr[r] || col_ids[i - 1] < col_ids[i],
                 "col_ids ascending within a row");
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_ = std::move(col_ids);
  m.val_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::from_dense(const DenseMatrix& d) {
  return from_coo(CooMatrix::from_dense(d));
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& c) {
  CooMatrix sorted = c;
  if (!sorted.is_row_major_sorted()) sorted.sort_row_major();
  CsrMatrix m;
  m.rows_ = sorted.rows();
  m.cols_ = sorted.cols();
  m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
  m.col_ = sorted.col_ids();
  m.val_.assign(sorted.values().begin(), sorted.values().end());
  for (index_t r : sorted.row_ids()) ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
  for (index_t r = 0; r < m.rows_; ++r) {
    m.row_ptr_[static_cast<std::size_t>(r) + 1] += m.row_ptr_[static_cast<std::size_t>(r)];
  }
  return m;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      d.set(r, col_[i], val_[i]);
    }
  }
  return d;
}

CooMatrix CsrMatrix::to_coo() const {
  std::vector<index_t> rows(val_.size());
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) rows[i] = r;
  }
  return CooMatrix::from_entries(rows_, cols_, std::move(rows), col_,
                                 std::vector<value_t>(val_.begin(), val_.end()));
}

StorageSize CsrMatrix::storage(DataType dt) const {
  const std::int64_t n = nnz();
  const std::int64_t meta =
      n * bits_for(static_cast<std::uint64_t>(cols_)) +
      (rows_ + 1) * bits_for(static_cast<std::uint64_t>(n) + 1);
  return {n * bits_of(dt), meta};
}

}  // namespace mt
