// Dense (uncompressed) matrix, row-major.
//
// Dense is both a storage format (the trivial MCF with zero metadata) and
// the ACF used by TPU-style accelerators; it is also the interchange
// representation every compressed format can encode from / decode to,
// which the round-trip tests rely on.
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "formats/storage.hpp"

namespace mt {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, value_t fill = 0.0f);
  // Allocator-taking overload: the serving runtime passes an arena-backed
  // allocator so batch payload buffers are recycled across requests.
  DenseMatrix(index_t rows, index_t cols, value_t fill,
              const AlignedAllocator<value_t>& alloc);

  static DenseMatrix from_values(index_t rows, index_t cols,
                                 std::vector<value_t> values);
  static DenseMatrix from_values(index_t rows, index_t cols,
                                 AlignedVec<value_t> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  value_t at(index_t r, index_t c) const {
    MT_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index in range");
    return v_[static_cast<std::size_t>(r * cols_ + c)];
  }
  void set(index_t r, index_t c, value_t x) {
    MT_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index in range");
    v_[static_cast<std::size_t>(r * cols_ + c)] = x;
  }

  // Value storage is 64-byte aligned (common/aligned.hpp) so the SIMD
  // kernel tier's vector loads start on cache-line boundaries.
  const AlignedVec<value_t>& values() const { return v_; }
  AlignedVec<value_t>& values() { return v_; }

  std::int64_t nnz() const;

  StorageSize storage(DataType dt) const;

  bool operator==(const DenseMatrix&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedVec<value_t> v_;
};

// Max |a - b| over all elements; matrices must have identical shape.
double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace mt
