#include "formats/dense.hpp"

#include <algorithm>
#include <cmath>

namespace mt {

DenseMatrix::DenseMatrix(index_t rows, index_t cols, value_t fill)
    : rows_(rows), cols_(cols),
      v_(static_cast<std::size_t>(rows * cols), fill) {
  MT_REQUIRE(rows >= 0 && cols >= 0, "non-negative dimensions");
}

DenseMatrix::DenseMatrix(index_t rows, index_t cols, value_t fill,
                         const AlignedAllocator<value_t>& alloc)
    : rows_(rows), cols_(cols),
      v_(static_cast<std::size_t>(rows * cols), fill, alloc) {
  MT_REQUIRE(rows >= 0 && cols >= 0, "non-negative dimensions");
}

DenseMatrix DenseMatrix::from_values(index_t rows, index_t cols,
                                     std::vector<value_t> values) {
  MT_REQUIRE(static_cast<index_t>(values.size()) == rows * cols,
             "value count must equal rows*cols");
  DenseMatrix d(rows, cols);
  d.v_.assign(values.begin(), values.end());
  return d;
}

DenseMatrix DenseMatrix::from_values(index_t rows, index_t cols,
                                     AlignedVec<value_t> values) {
  MT_REQUIRE(static_cast<index_t>(values.size()) == rows * cols,
             "value count must equal rows*cols");
  DenseMatrix d(rows, cols);
  d.v_ = std::move(values);
  return d;
}

std::int64_t DenseMatrix::nnz() const {
  return std::count_if(v_.begin(), v_.end(),
                       [](value_t x) { return x != 0.0f; });
}

StorageSize DenseMatrix::storage(DataType dt) const {
  return {rows_ * cols_ * bits_of(dt), 0};
}

double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  MT_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
             "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.values()[i]) -
                             static_cast<double>(b.values()[i])));
  }
  return m;
}

}  // namespace mt
