// Compressed Sparse Fiber (CSF) for 3-D tensors [Smith & Karypis 2015].
//
// A three-level tree in fixed mode order x -> y -> z:
//   level 0: x_ids (one node per distinct x slice with nonzeros)
//   level 1: y_ptr delimits each x node's children; y_ids names them
//   level 2: z_ptr delimits each (x,y) fiber; z_ids + values are leaves
// Table III picks CSF as the ACF for the Crime and Uber tensors; Dense ->
// CSF is one of the paper's four showcased MINT pipelines (Fig. 8f).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/storage.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_dense.hpp"

namespace mt {

class CsfTensor3 {
 public:
  CsfTensor3() = default;

  static CsfTensor3 from_coo(const CooTensor3& c);  // c sorted lexicographically
  static CsfTensor3 from_dense(const DenseTensor3& d);

  CooTensor3 to_coo() const;
  DenseTensor3 to_dense() const;

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  // Tree arrays (see file comment for the level layout).
  const std::vector<index_t>& x_ids() const { return x_ids_; }
  const std::vector<index_t>& y_ptr() const { return y_ptr_; }
  const std::vector<index_t>& y_ids() const { return y_ids_; }
  const std::vector<index_t>& z_ptr() const { return z_ptr_; }
  const std::vector<index_t>& z_ids() const { return z_ids_; }
  const std::vector<value_t>& values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t x_ = 0, y_ = 0, z_ = 0;
  std::vector<index_t> x_ids_;  // n1
  std::vector<index_t> y_ptr_;  // n1 + 1
  std::vector<index_t> y_ids_;  // n2
  std::vector<index_t> z_ptr_;  // n2 + 1
  std::vector<index_t> z_ids_;  // nnz
  std::vector<value_t> val_;    // nnz
};

}  // namespace mt
