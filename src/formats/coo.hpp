// Coordinate (COO) matrix format.
//
// Stores each nonzero as (row_id, col_id, value). COO is the most compact
// MCF at extreme sparsity (paper Fig. 4b) and the hub representation for
// general format conversion (paper §V-B: "COO enables fast translation to
// other formats").
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class CooMatrix {
 public:
  CooMatrix() = default;

  // Entries may arrive unsorted; they are sorted row-major and validated
  // (in-range, no duplicates).
  static CooMatrix from_entries(index_t rows, index_t cols,
                                std::vector<index_t> row_ids,
                                std::vector<index_t> col_ids,
                                std::vector<value_t> values);
  static CooMatrix from_dense(const DenseMatrix& d);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<index_t>& row_ids() const { return row_; }
  const std::vector<index_t>& col_ids() const { return col_; }
  const std::vector<value_t>& values() const { return val_; }

  // Re-sorts entries column-major (col, then row) or row-major.
  void sort_col_major();
  void sort_row_major();
  bool is_row_major_sorted() const;

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_, col_;
  std::vector<value_t> val_;
};

}  // namespace mt
