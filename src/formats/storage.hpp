// Exact and analytic storage-size accounting.
//
// Every concrete format structure reports its exact footprint through
// StorageSize (split into payload data bits and format metadata bits,
// because the paper's Fig. 4 story is about the metadata-to-data ratio).
// The analytic model predicts the same quantities from (dims, nnz, dtype)
// only, under the paper's uniform-random sparsity assumption — that is
// what SAGE and the Fig. 4 sweeps use, since an 11k x 11k dense-density
// matrix never needs to be materialized to be costed.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "formats/format.hpp"

namespace mt {

struct StorageSize {
  std::int64_t data_bits = 0;      // nonzero (or dense) element payload
  std::int64_t metadata_bits = 0;  // ids, pointers, masks, run counters

  constexpr std::int64_t total_bits() const { return data_bits + metadata_bits; }
  constexpr double total_bytes() const { return static_cast<double>(total_bits()) / 8.0; }
  constexpr double metadata_ratio() const {
    const auto t = total_bits();
    return t == 0 ? 0.0 : static_cast<double>(metadata_bits) / static_cast<double>(t);
  }
};

constexpr StorageSize operator+(StorageSize a, StorageSize b) {
  return {a.data_bits + b.data_bits, a.metadata_bits + b.metadata_bits};
}

// Width of the RLC zero-run counter field. Eyeriss-style RLC uses a short
// fixed-width counter with zero-valued escape entries for longer runs; 4
// bits reproduces the paper's Fig. 4 behaviour where RLC wins the middle
// densities but loses both extremes.
inline constexpr int kRlcRunBits = 4;

// Default BSR block (paper walks through 2x2) and HiCOO block (2x2x2).
inline constexpr index_t kBsrBlockRows = 2;
inline constexpr index_t kBsrBlockCols = 2;
inline constexpr index_t kHicooBlock = 2;

// --- Analytic model (expected sizes under uniform random sparsity) ---

// Expected storage of an MxK matrix with `nnz` nonzeros stored in `f`.
StorageSize expected_matrix_storage(Format f, index_t m, index_t k,
                                    std::int64_t nnz, DataType dt);

// Expected storage of an X*Y*Z tensor with `nnz` nonzeros stored in `f`.
StorageSize expected_tensor_storage(Format f, index_t x, index_t y, index_t z,
                                    std::int64_t nnz, DataType dt);

}  // namespace mt
