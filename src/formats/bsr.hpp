// Block Compressed Sparse Row (BSR).
//
// CSR over fixed-size dense blocks: metadata is paid once per nonzero
// block, and blocks that are only partially occupied store explicit zeros
// (paper §V-B3: "CSR does not contain any zero values, while BSR may").
// Dimensions that are not block multiples are implicitly zero-padded.
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class BsrMatrix {
 public:
  BsrMatrix() = default;

  static BsrMatrix from_dense(const DenseMatrix& d,
                              index_t block_rows = kBsrBlockRows,
                              index_t block_cols = kBsrBlockCols);

  // Assembles a BSR matrix from pre-built arrays (used by the direct
  // CSR->BSR converter); validates pointer/id consistency.
  static BsrMatrix from_parts(index_t rows, index_t cols, index_t block_rows,
                              index_t block_cols,
                              std::vector<index_t> block_row_ptr,
                              std::vector<index_t> block_col_ids,
                              std::vector<value_t> block_values);

  DenseMatrix to_dense() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t block_rows() const { return br_; }
  index_t block_cols() const { return bc_; }
  index_t block_grid_rows() const;  // ceil(rows / block_rows)
  index_t block_grid_cols() const;  // ceil(cols / block_cols)

  std::int64_t num_blocks() const { return static_cast<std::int64_t>(block_col_.size()); }
  std::int64_t nnz() const;  // true nonzeros (fill zeros excluded)

  const std::vector<index_t>& block_row_ptr() const { return block_row_ptr_; }
  const std::vector<index_t>& block_col_ids() const { return block_col_; }
  // Blocks stored contiguously, each block row-major, br*bc values;
  // 64-byte aligned for the SIMD tier.
  const AlignedVec<value_t>& block_values() const { return val_; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0, cols_ = 0;
  index_t br_ = kBsrBlockRows, bc_ = kBsrBlockCols;
  std::vector<index_t> block_row_ptr_;  // grid_rows + 1
  std::vector<index_t> block_col_;      // num_blocks
  AlignedVec<value_t> val_;             // num_blocks * br * bc
};

}  // namespace mt
