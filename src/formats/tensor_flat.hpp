// ZVC and RLC over the x->y->z linearization of a 3-D tensor.
//
// Both formats are order-agnostic once the tensor is linearized (paper
// Fig. 3b shows exactly this), so they reuse the matrix encoders on a
// 1 x (X*Y*Z) view. BrainQ's MCF in Table III is tensor ZVC.
#pragma once

#include "common/types.hpp"
#include "formats/rlc.hpp"
#include "formats/storage.hpp"
#include "formats/tensor_dense.hpp"
#include "formats/zvc.hpp"

namespace mt {

class ZvcTensor3 {
 public:
  ZvcTensor3() = default;

  static ZvcTensor3 from_dense(const DenseTensor3& d);
  DenseTensor3 to_dense() const;

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  std::int64_t nnz() const { return flat_.nnz(); }
  const ZvcMatrix& flat() const { return flat_; }

  StorageSize storage(DataType dt) const { return flat_.storage(dt); }

 private:
  index_t x_ = 0, y_ = 0, z_ = 0;
  ZvcMatrix flat_;  // 1 x (x*y*z)
};

class RlcTensor3 {
 public:
  RlcTensor3() = default;

  static RlcTensor3 from_dense(const DenseTensor3& d, int run_bits = kRlcRunBits);
  DenseTensor3 to_dense() const;

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  std::int64_t nnz() const { return flat_.nnz(); }
  const RlcMatrix& flat() const { return flat_; }

  StorageSize storage(DataType dt) const { return flat_.storage(dt); }

 private:
  index_t x_ = 0, y_ = 0, z_ = 0;
  RlcMatrix flat_;  // 1 x (x*y*z)
};

}  // namespace mt
