#include "formats/hicoo.hpp"

#include <algorithm>
#include <tuple>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

HicooTensor3 HicooTensor3::from_coo(const CooTensor3& c, index_t block) {
  MT_REQUIRE(block > 0 && (block & (block - 1)) == 0,
             "HiCOO block must be a power of two");
  HicooTensor3 t;
  t.x_ = c.dim_x();
  t.y_ = c.dim_y();
  t.z_ = c.dim_z();
  t.b_ = block;
  // COO is sorted lexicographically; with a power-of-two block this is
  // also sorted by (block coordinates, element offsets) except that y/z
  // splits can interleave blocks. Re-bucket by block id to be safe.
  struct Entry {
    index_t bx, by, bz;
    std::uint8_t ex, ey, ez;
    value_t v;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(c.nnz()));
  for (std::int64_t i = 0; i < c.nnz(); ++i) {
    const index_t x = c.x_ids()[i], y = c.y_ids()[i], z = c.z_ids()[i];
    entries.push_back({x / block, y / block, z / block,
                       static_cast<std::uint8_t>(x % block),
                       static_cast<std::uint8_t>(y % block),
                       static_cast<std::uint8_t>(z % block), c.values()[i]});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return std::tie(a.bx, a.by, a.bz, a.ex, a.ey, a.ez) <
                            std::tie(b.bx, b.by, b.bz, b.ex, b.ey, b.ez);
                   });
  t.bptr_.push_back(0);
  for (const Entry& e : entries) {
    const bool new_block = t.bx_.empty() || t.bx_.back() != e.bx ||
                           t.by_.back() != e.by || t.bz_.back() != e.bz;
    if (new_block) {
      t.bx_.push_back(e.bx);
      t.by_.push_back(e.by);
      t.bz_.push_back(e.bz);
      t.bptr_.push_back(t.bptr_.back());
    }
    ++t.bptr_.back();
    t.ex_.push_back(e.ex);
    t.ey_.push_back(e.ey);
    t.ez_.push_back(e.ez);
    t.val_.push_back(e.v);
  }
  return t;
}

CooTensor3 HicooTensor3::to_coo() const {
  std::vector<index_t> xs, ys, zs;
  xs.reserve(val_.size());
  ys.reserve(val_.size());
  zs.reserve(val_.size());
  for (std::size_t bi = 0; bi < bx_.size(); ++bi) {
    for (index_t i = bptr_[bi]; i < bptr_[bi + 1]; ++i) {
      xs.push_back(bx_[bi] * b_ + ex_[static_cast<std::size_t>(i)]);
      ys.push_back(by_[bi] * b_ + ey_[static_cast<std::size_t>(i)]);
      zs.push_back(bz_[bi] * b_ + ez_[static_cast<std::size_t>(i)]);
    }
  }
  return CooTensor3::from_entries(x_, y_, z_, std::move(xs), std::move(ys),
                                  std::move(zs), val_);
}

StorageSize HicooTensor3::storage(DataType dt) const {
  const std::int64_t nb = num_blocks();
  const std::int64_t n = nnz();
  const int eb = bits_for(static_cast<std::uint64_t>(b_));
  const std::int64_t meta =
      (nb + 1) * bits_for(static_cast<std::uint64_t>(n) + 1) +
      nb * (bits_for(static_cast<std::uint64_t>(ceil_div(x_, b_))) +
            bits_for(static_cast<std::uint64_t>(ceil_div(y_, b_))) +
            bits_for(static_cast<std::uint64_t>(ceil_div(z_, b_)))) +
      n * 3 * eb;
  return {n * bits_of(dt), meta};
}

}  // namespace mt
