// Compressed Sparse Column (CSC) matrix format.
//
// The column-major dual of CSR. CSC(B) is the natural stationary ACF for a
// weight-stationary accelerator (each PE holds one compressed column of B,
// paper Fig. 6b), and CSR<->CSC conversion is the paper's canonical MINT
// use case (weight transposition during backpropagation).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_parts(index_t rows, index_t cols,
                              std::vector<index_t> col_ptr,
                              std::vector<index_t> row_ids,
                              std::vector<value_t> values);
  static CscMatrix from_dense(const DenseMatrix& d);
  static CscMatrix from_coo(const CooMatrix& c);  // re-sorts column-major

  DenseMatrix to_dense() const;
  CooMatrix to_coo() const;  // returned row-major sorted

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<index_t>& col_ptr() const { return col_ptr_; }
  const std::vector<index_t>& row_ids() const { return row_; }
  const std::vector<value_t>& values() const { return val_; }

  index_t col_nnz(index_t c) const { return col_ptr_[c + 1] - col_ptr_[c]; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> col_ptr_;  // cols + 1
  std::vector<index_t> row_;      // nnz, ascending within each column
  std::vector<value_t> val_;      // nnz
};

}  // namespace mt
