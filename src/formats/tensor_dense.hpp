// Dense 3-D tensor, linearized x -> y -> z (paper Fig. 3b order).
#pragma once

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "formats/storage.hpp"

namespace mt {

class DenseTensor3 {
 public:
  DenseTensor3() = default;
  DenseTensor3(index_t x, index_t y, index_t z, value_t fill = 0.0f);

  index_t dim_x() const { return x_; }
  index_t dim_y() const { return y_; }
  index_t dim_z() const { return z_; }
  index_t size() const { return x_ * y_ * z_; }

  index_t linear(index_t ix, index_t iy, index_t iz) const {
    MT_REQUIRE(ix >= 0 && ix < x_ && iy >= 0 && iy < y_ && iz >= 0 && iz < z_,
               "tensor index in range");
    return (ix * y_ + iy) * z_ + iz;
  }
  value_t at(index_t ix, index_t iy, index_t iz) const {
    return v_[static_cast<std::size_t>(linear(ix, iy, iz))];
  }
  void set(index_t ix, index_t iy, index_t iz, value_t x) {
    v_[static_cast<std::size_t>(linear(ix, iy, iz))] = x;
  }

  const std::vector<value_t>& values() const { return v_; }
  std::vector<value_t>& values() { return v_; }

  std::int64_t nnz() const;
  StorageSize storage(DataType dt) const;

  bool operator==(const DenseTensor3&) const = default;

 private:
  index_t x_ = 0, y_ = 0, z_ = 0;
  std::vector<value_t> v_;
};

double max_abs_diff(const DenseTensor3& a, const DenseTensor3& b);

}  // namespace mt
