#include "formats/tensor_dense.hpp"

#include <algorithm>
#include <cmath>

namespace mt {

DenseTensor3::DenseTensor3(index_t x, index_t y, index_t z, value_t fill)
    : x_(x), y_(y), z_(z), v_(static_cast<std::size_t>(x * y * z), fill) {
  MT_REQUIRE(x >= 0 && y >= 0 && z >= 0, "non-negative dimensions");
}

std::int64_t DenseTensor3::nnz() const {
  return std::count_if(v_.begin(), v_.end(),
                       [](value_t x) { return x != 0.0f; });
}

StorageSize DenseTensor3::storage(DataType dt) const {
  return {size() * bits_of(dt), 0};
}

double max_abs_diff(const DenseTensor3& a, const DenseTensor3& b) {
  MT_REQUIRE(a.dim_x() == b.dim_x() && a.dim_y() == b.dim_y() &&
                 a.dim_z() == b.dim_z(),
             "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.values()[i]) -
                             static_cast<double>(b.values()[i])));
  }
  return m;
}

}  // namespace mt
