// Compressed Sparse Row (CSR) matrix format.
//
// row_ptr[r]..row_ptr[r+1] delimit the nonzeros of row r in (col_id, value)
// pairs. CSR is the best MCF in the low-density band left of the paper's
// Fig. 4a first crossover, and CSR(A) is the streaming ACF of EIE-style
// accelerators (paper Fig. 6b).
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/dense.hpp"
#include "formats/storage.hpp"

namespace mt {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  static CsrMatrix from_parts(index_t rows, index_t cols,
                              std::vector<index_t> row_ptr,
                              std::vector<index_t> col_ids,
                              std::vector<value_t> values);
  // Move-in variant for producers that already build aligned storage
  // (SpGEMM assembles its output directly into an AlignedVec). A
  // distinct name, not an overload: braced-init value lists would be
  // ambiguous between the two vector types.
  static CsrMatrix from_parts_aligned(index_t rows, index_t cols,
                                      std::vector<index_t> row_ptr,
                                      std::vector<index_t> col_ids,
                                      AlignedVec<value_t> values);
  static CsrMatrix from_dense(const DenseMatrix& d);
  static CsrMatrix from_coo(const CooMatrix& c);

  DenseMatrix to_dense() const;
  CooMatrix to_coo() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(val_.size()); }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col_ids() const { return col_; }
  // 64-byte aligned (common/aligned.hpp) for the SIMD kernel tier.
  const AlignedVec<value_t>& values() const { return val_; }

  index_t row_nnz(index_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  StorageSize storage(DataType dt) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;  // rows + 1
  std::vector<index_t> col_;      // nnz, ascending within each row
  AlignedVec<value_t> val_;       // nnz
};

}  // namespace mt
