#include "formats/tensor_flat.hpp"

namespace mt {

namespace {
DenseMatrix flatten(const DenseTensor3& d) {
  return DenseMatrix::from_values(1, d.size(), d.values());
}

DenseTensor3 unflatten(index_t x, index_t y, index_t z, const DenseMatrix& m) {
  DenseTensor3 d(x, y, z);
  d.values().assign(m.values().begin(), m.values().end());
  return d;
}
}  // namespace

ZvcTensor3 ZvcTensor3::from_dense(const DenseTensor3& d) {
  ZvcTensor3 t;
  t.x_ = d.dim_x();
  t.y_ = d.dim_y();
  t.z_ = d.dim_z();
  t.flat_ = ZvcMatrix::from_dense(flatten(d));
  return t;
}

DenseTensor3 ZvcTensor3::to_dense() const {
  return unflatten(x_, y_, z_, flat_.to_dense());
}

RlcTensor3 RlcTensor3::from_dense(const DenseTensor3& d, int run_bits) {
  RlcTensor3 t;
  t.x_ = d.dim_x();
  t.y_ = d.dim_y();
  t.z_ = d.dim_z();
  t.flat_ = RlcMatrix::from_dense(flatten(d), run_bits);
  return t;
}

DenseTensor3 RlcTensor3::to_dense() const {
  return unflatten(x_, y_, z_, flat_.to_dense());
}

}  // namespace mt
