#include "formats/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

namespace {
// Applies permutation `p` to the three parallel arrays.
void permute(const std::vector<std::size_t>& p, std::vector<index_t>& r,
             std::vector<index_t>& c, std::vector<value_t>& v) {
  std::vector<index_t> r2(r.size()), c2(c.size());
  std::vector<value_t> v2(v.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    r2[i] = r[p[i]];
    c2[i] = c[p[i]];
    v2[i] = v[p[i]];
  }
  r = std::move(r2);
  c = std::move(c2);
  v = std::move(v2);
}
}  // namespace

CooMatrix CooMatrix::from_entries(index_t rows, index_t cols,
                                  std::vector<index_t> row_ids,
                                  std::vector<index_t> col_ids,
                                  std::vector<value_t> values) {
  MT_REQUIRE(rows >= 0 && cols >= 0, "non-negative dimensions");
  MT_REQUIRE(row_ids.size() == col_ids.size() && col_ids.size() == values.size(),
             "parallel arrays must have equal length");
  CooMatrix c;
  c.rows_ = rows;
  c.cols_ = cols;
  c.row_ = std::move(row_ids);
  c.col_ = std::move(col_ids);
  c.val_ = std::move(values);
  for (std::size_t i = 0; i < c.val_.size(); ++i) {
    MT_REQUIRE(c.row_[i] >= 0 && c.row_[i] < rows && c.col_[i] >= 0 &&
                   c.col_[i] < cols,
               "COO coordinate out of range");
  }
  c.sort_row_major();
  for (std::size_t i = 1; i < c.val_.size(); ++i) {
    MT_REQUIRE(c.row_[i] != c.row_[i - 1] || c.col_[i] != c.col_[i - 1],
               "duplicate COO coordinate");
  }
  return c;
}

CooMatrix CooMatrix::from_dense(const DenseMatrix& d) {
  CooMatrix c;
  c.rows_ = d.rows();
  c.cols_ = d.cols();
  for (index_t r = 0; r < d.rows(); ++r) {
    for (index_t k = 0; k < d.cols(); ++k) {
      const value_t x = d.at(r, k);
      if (x != 0.0f) {
        c.row_.push_back(r);
        c.col_.push_back(k);
        c.val_.push_back(x);
      }
    }
  }
  return c;
}

DenseMatrix CooMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t i = 0; i < val_.size(); ++i) d.set(row_[i], col_[i], val_[i]);
  return d;
}

void CooMatrix::sort_row_major() {
  std::vector<std::size_t> p(val_.size());
  std::iota(p.begin(), p.end(), 0);
  std::sort(p.begin(), p.end(), [&](std::size_t a, std::size_t b) {
    return row_[a] != row_[b] ? row_[a] < row_[b] : col_[a] < col_[b];
  });
  permute(p, row_, col_, val_);
}

void CooMatrix::sort_col_major() {
  std::vector<std::size_t> p(val_.size());
  std::iota(p.begin(), p.end(), 0);
  std::sort(p.begin(), p.end(), [&](std::size_t a, std::size_t b) {
    return col_[a] != col_[b] ? col_[a] < col_[b] : row_[a] < row_[b];
  });
  permute(p, row_, col_, val_);
}

bool CooMatrix::is_row_major_sorted() const {
  for (std::size_t i = 1; i < val_.size(); ++i) {
    if (row_[i] < row_[i - 1] ||
        (row_[i] == row_[i - 1] && col_[i] <= col_[i - 1])) {
      return false;
    }
  }
  return true;
}

StorageSize CooMatrix::storage(DataType dt) const {
  const std::int64_t n = nnz();
  return {n * bits_of(dt), n * (bits_for(static_cast<std::uint64_t>(rows_)) +
                                bits_for(static_cast<std::uint64_t>(cols_)))};
}

}  // namespace mt
