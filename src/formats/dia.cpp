#include "formats/dia.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

DiaMatrix DiaMatrix::from_dense(const DenseMatrix& d) {
  DiaMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  // Offsets range over c - r in [-(rows-1), cols-1].
  for (index_t off = -(d.rows() - 1); off <= d.cols() - 1; ++off) {
    bool any = false;
    for (index_t r = std::max<index_t>(0, -off);
         r < std::min(d.rows(), d.cols() - off); ++r) {
      if (d.at(r, r + off) != 0.0f) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    m.offsets_.push_back(off);
    for (index_t r = 0; r < d.rows(); ++r) {
      const index_t c = r + off;
      m.data_.push_back(c >= 0 && c < d.cols() ? d.at(r, c) : 0.0f);
    }
  }
  return m;
}

DenseMatrix DiaMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t k = 0; k < offsets_.size(); ++k) {
    const index_t off = offsets_[k];
    for (index_t r = 0; r < rows_; ++r) {
      const index_t c = r + off;
      if (c >= 0 && c < cols_) {
        d.set(r, c, data_[k * static_cast<std::size_t>(rows_) +
                          static_cast<std::size_t>(r)]);
      }
    }
  }
  return d;
}

std::int64_t DiaMatrix::nnz() const {
  return std::count_if(data_.begin(), data_.end(),
                       [](value_t x) { return x != 0.0f; });
}

StorageSize DiaMatrix::storage(DataType dt) const {
  const auto nd = static_cast<std::int64_t>(offsets_.size());
  // Every stored diagonal pays a full rows-long lane (padding included);
  // the offset field must span rows+cols-1 distinct values.
  return {nd * rows_ * bits_of(dt),
          nd * bits_for(static_cast<std::uint64_t>(rows_ + cols_))};
}

}  // namespace mt
