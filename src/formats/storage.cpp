#include "formats/storage.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

namespace {

// P(a cell group of `len` cells contains at least one nonzero) under
// uniform random density d, computed as -expm1(len*log1p(-d)) so it stays
// accurate at d = 1e-8 where (1-d)^len underflows naive evaluation.
double p_group_occupied(double density, double len) {
  if (density <= 0.0) return 0.0;
  if (density >= 1.0) return 1.0;
  return -std::expm1(len * std::log1p(-density));
}

// Expected RLC entries (value entries + escape entries).
//
// Gaps between consecutive nonzeros are geometric with success probability
// d; an entry chain of R+1-zero escapes covers each gap, so the expected
// escapes per nonzero is q^(R+1)/(1-q^(R+1)) with q = 1-d, giving total
// entries nnz / (1 - q^(R+1)). As d -> 0 this tends to cells/(R+1): the
// whole matrix becomes an escape chain, which is why RLC loses at extreme
// sparsity in Fig. 4a.
double expected_rlc_entries(double cells, double nnz, int run_bits) {
  if (nnz <= 0.0) return 0.0;
  const double d = nnz / cells;
  if (d >= 1.0) return cells;
  const double r1 = static_cast<double>((1 << run_bits) - 1) + 1.0;
  const double p_covered = p_group_occupied(d, r1);  // 1 - q^(R+1)
  return std::min(nnz / p_covered, cells);
}

std::int64_t round_up(double x) {
  return static_cast<std::int64_t>(std::ceil(x));
}

}  // namespace

StorageSize expected_matrix_storage(Format f, index_t m, index_t k,
                                    std::int64_t nnz, DataType dt) {
  MT_REQUIRE(m > 0 && k > 0, "positive dimensions");
  MT_REQUIRE(nnz >= 0 && nnz <= m * k, "nnz within matrix cells");
  const std::int64_t b = bits_of(dt);
  const double cells = static_cast<double>(m) * static_cast<double>(k);
  const double d = static_cast<double>(nnz) / cells;

  switch (f) {
    case Format::kDense:
      return {m * k * b, 0};
    case Format::kCOO:
      return {nnz * b, nnz * (bits_for(static_cast<std::uint64_t>(m)) +
                              bits_for(static_cast<std::uint64_t>(k)))};
    case Format::kCSR:
      return {nnz * b,
              nnz * bits_for(static_cast<std::uint64_t>(k)) +
                  (m + 1) * bits_for(static_cast<std::uint64_t>(nnz) + 1)};
    case Format::kCSC:
      return {nnz * b,
              nnz * bits_for(static_cast<std::uint64_t>(m)) +
                  (k + 1) * bits_for(static_cast<std::uint64_t>(nnz) + 1)};
    case Format::kZVC:
      return {nnz * b, m * k};
    case Format::kRLC: {
      const std::int64_t entries = round_up(
          expected_rlc_entries(cells, static_cast<double>(nnz), kRlcRunBits));
      return {entries * b, entries * kRlcRunBits};
    }
    case Format::kBSR: {
      const index_t gr = ceil_div(m, kBsrBlockRows);
      const index_t gc = ceil_div(k, kBsrBlockCols);
      const double block_cells =
          static_cast<double>(kBsrBlockRows * kBsrBlockCols);
      const double enb = static_cast<double>(gr) * static_cast<double>(gc) *
                         p_group_occupied(d, block_cells);
      const std::int64_t nb = round_up(enb);
      return {nb * kBsrBlockRows * kBsrBlockCols * b,
              nb * bits_for(static_cast<std::uint64_t>(gc)) +
                  (gr + 1) * bits_for(static_cast<std::uint64_t>(nb) + 1)};
    }
    case Format::kDIA: {
      // Expected count of occupied diagonals: sum over all m+k-1 offsets of
      // the probability that the diagonal holds at least one nonzero.
      double ed = 0.0;
      for (index_t off = -(m - 1); off <= k - 1; ++off) {
        const index_t lo = std::max<index_t>(0, -off);
        const index_t hi = std::min(m, k - off);
        ed += p_group_occupied(d, static_cast<double>(hi - lo));
      }
      const std::int64_t nd = round_up(ed);
      return {nd * m * b, nd * bits_for(static_cast<std::uint64_t>(m + k))};
    }
    case Format::kELL: {
      // Expected max row population over m Binomial(k, d) rows, via the
      // Gaussian extreme-value approximation mean + sqrt(2 ln m) * sigma.
      const double mean = static_cast<double>(k) * d;
      const double sigma = std::sqrt(std::max(0.0, mean * (1.0 - d)));
      const double z = std::sqrt(2.0 * std::log(std::max(2.0, static_cast<double>(m))));
      const auto width = nnz == 0
                             ? std::int64_t{0}
                             : std::min<std::int64_t>(
                                   k, std::max<std::int64_t>(
                                          round_up(mean), round_up(mean + z * sigma)));
      const std::int64_t slots = m * width;
      return {slots * b, slots * bits_for(static_cast<std::uint64_t>(k) + 1)};
    }
    case Format::kCSF:
    case Format::kHiCOO:
      MT_REQUIRE(false, "CSF/HiCOO are tensor formats; use expected_tensor_storage");
  }
  MT_ENSURE(false, "unhandled format");
}

StorageSize expected_tensor_storage(Format f, index_t x, index_t y, index_t z,
                                    std::int64_t nnz, DataType dt) {
  MT_REQUIRE(x > 0 && y > 0 && z > 0, "positive dimensions");
  MT_REQUIRE(nnz >= 0 && nnz <= x * y * z, "nnz within tensor cells");
  const std::int64_t b = bits_of(dt);
  const double cells = static_cast<double>(x) * static_cast<double>(y) *
                       static_cast<double>(z);
  const double d = static_cast<double>(nnz) / cells;

  switch (f) {
    case Format::kDense:
      return {x * y * z * b, 0};
    case Format::kCOO:
      return {nnz * b, nnz * (bits_for(static_cast<std::uint64_t>(x)) +
                              bits_for(static_cast<std::uint64_t>(y)) +
                              bits_for(static_cast<std::uint64_t>(z)))};
    case Format::kZVC:
      return {nnz * b, x * y * z};
    case Format::kRLC: {
      const std::int64_t entries = round_up(
          expected_rlc_entries(cells, static_cast<double>(nnz), kRlcRunBits));
      return {entries * b, entries * kRlcRunBits};
    }
    case Format::kCSF: {
      // Expected distinct level sizes under uniform sparsity:
      // n1 = occupied x-slices, n2 = occupied (x,y) fibers.
      const double n1 =
          static_cast<double>(x) *
          p_group_occupied(d, static_cast<double>(y) * static_cast<double>(z));
      const double n2 = static_cast<double>(x) * static_cast<double>(y) *
                        p_group_occupied(d, static_cast<double>(z));
      const std::int64_t in1 = round_up(n1);
      const std::int64_t in2 = round_up(n2);
      const std::int64_t meta =
          in1 * bits_for(static_cast<std::uint64_t>(x)) +
          in2 * bits_for(static_cast<std::uint64_t>(y)) +
          nnz * bits_for(static_cast<std::uint64_t>(z)) +
          (in1 + 1) * bits_for(static_cast<std::uint64_t>(in2) + 1) +
          (in2 + 1) * bits_for(static_cast<std::uint64_t>(nnz) + 1);
      return {nnz * b, meta};
    }
    case Format::kHiCOO: {
      const index_t bx = ceil_div(x, kHicooBlock);
      const index_t by = ceil_div(y, kHicooBlock);
      const index_t bz = ceil_div(z, kHicooBlock);
      const double block_cells = static_cast<double>(kHicooBlock) *
                                 static_cast<double>(kHicooBlock) *
                                 static_cast<double>(kHicooBlock);
      const double enb = static_cast<double>(bx) * static_cast<double>(by) *
                         static_cast<double>(bz) *
                         p_group_occupied(d, block_cells);
      const std::int64_t nb = round_up(enb);
      const int eb = bits_for(static_cast<std::uint64_t>(kHicooBlock));
      const std::int64_t meta =
          (nb + 1) * bits_for(static_cast<std::uint64_t>(nnz) + 1) +
          nb * (bits_for(static_cast<std::uint64_t>(bx)) +
                bits_for(static_cast<std::uint64_t>(by)) +
                bits_for(static_cast<std::uint64_t>(bz))) +
          nnz * 3 * eb;
      return {nnz * b, meta};
    }
    case Format::kCSR:
    case Format::kCSC:
    case Format::kBSR:
    case Format::kDIA:
    case Format::kELL:
      MT_REQUIRE(false, "matrix-only format; use expected_matrix_storage");
  }
  MT_ENSURE(false, "unhandled format");
}

}  // namespace mt
