#include "formats/csc.hpp"

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace mt {

CscMatrix CscMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<index_t> col_ptr,
                                std::vector<index_t> row_ids,
                                std::vector<value_t> values) {
  MT_REQUIRE(static_cast<index_t>(col_ptr.size()) == cols + 1,
             "col_ptr must have cols+1 entries");
  MT_REQUIRE(row_ids.size() == values.size(), "row_ids/values length mismatch");
  MT_REQUIRE(col_ptr.front() == 0 &&
                 col_ptr.back() == static_cast<index_t>(values.size()),
             "col_ptr must span [0, nnz]");
  for (index_t c = 0; c < cols; ++c) {
    MT_REQUIRE(col_ptr[c] <= col_ptr[c + 1], "col_ptr must be non-decreasing");
    for (index_t i = col_ptr[c]; i < col_ptr[c + 1]; ++i) {
      MT_REQUIRE(row_ids[i] >= 0 && row_ids[i] < rows, "row_id out of range");
      MT_REQUIRE(i == col_ptr[c] || row_ids[i - 1] < row_ids[i],
                 "row_ids ascending within a column");
    }
  }
  CscMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.col_ptr_ = std::move(col_ptr);
  m.row_ = std::move(row_ids);
  m.val_ = std::move(values);
  return m;
}

CscMatrix CscMatrix::from_dense(const DenseMatrix& d) {
  return from_coo(CooMatrix::from_dense(d));
}

CscMatrix CscMatrix::from_coo(const CooMatrix& c) {
  CooMatrix sorted = c;
  sorted.sort_col_major();
  CscMatrix m;
  m.rows_ = sorted.rows();
  m.cols_ = sorted.cols();
  m.col_ptr_.assign(static_cast<std::size_t>(m.cols_) + 1, 0);
  m.row_ = sorted.row_ids();
  m.val_ = sorted.values();
  for (index_t col : sorted.col_ids()) ++m.col_ptr_[static_cast<std::size_t>(col) + 1];
  for (index_t col = 0; col < m.cols_; ++col) {
    m.col_ptr_[static_cast<std::size_t>(col) + 1] += m.col_ptr_[static_cast<std::size_t>(col)];
  }
  return m;
}

DenseMatrix CscMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (index_t c = 0; c < cols_; ++c) {
    for (index_t i = col_ptr_[c]; i < col_ptr_[c + 1]; ++i) {
      d.set(row_[i], c, val_[i]);
    }
  }
  return d;
}

CooMatrix CscMatrix::to_coo() const {
  std::vector<index_t> cols(val_.size());
  for (index_t c = 0; c < cols_; ++c) {
    for (index_t i = col_ptr_[c]; i < col_ptr_[c + 1]; ++i) cols[i] = c;
  }
  return CooMatrix::from_entries(rows_, cols_, row_, std::move(cols), val_);
}

StorageSize CscMatrix::storage(DataType dt) const {
  const std::int64_t n = nnz();
  const std::int64_t meta =
      n * bits_for(static_cast<std::uint64_t>(rows_)) +
      (cols_ + 1) * bits_for(static_cast<std::uint64_t>(n) + 1);
  return {n * bits_of(dt), meta};
}

}  // namespace mt
