#include "obs/trace.hpp"

#include <chrono>

namespace mt::obs {

namespace {

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void TraceRing::push_locked(const SpanRecord& r) {
  if (ring_.size() < cap_) {
    ring_.push_back(r);
    return;
  }
  // Full: overwrite the oldest record in place. head_ points at it; the
  // ring stays a contiguous [head_, head_) circular window.
  ring_[head_] = r;
  head_ = (head_ + 1) % cap_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRing::push(const SpanRecord& r) {
  if (cap_ == 0) return;
  LockGuard lk(mu_);
  push_locked(r);
}

void TraceRing::push_all(const std::vector<SpanRecord>& rs) {
  if (cap_ == 0 || rs.empty()) return;
  LockGuard lk(mu_);
  for (const auto& r : rs) push_locked(r);
}

std::vector<SpanRecord> TraceRing::drain() {
  std::vector<SpanRecord> out;
  LockGuard lk(mu_);
  if (ring_.empty()) return out;
  out.reserve(ring_.size());
  // Oldest-first: [head_, end) then [0, head_).
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  ring_.clear();
  head_ = 0;
  return out;
}

std::size_t TraceRing::size() const {
  LockGuard lk(mu_);
  return ring_.size();
}

std::uint64_t TraceScope::add(Stage stage, std::int64_t start_ns,
                              std::int64_t end_ns, std::uint64_t parent_span,
                              int batch_size) {
  return add_for(trace_id_, stage, start_ns, end_ns, parent_span, batch_size);
}

std::uint64_t TraceScope::add_for(std::uint64_t trace_id, Stage stage,
                                  std::int64_t start_ns, std::int64_t end_ns,
                                  std::uint64_t parent_span, int batch_size) {
  if (sink_ == nullptr) return 0;
  SpanRecord r;
  r.trace_id = trace_id;
  r.span_id = ids_->next();
  r.parent_span = parent_span;
  r.stage = stage;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.batch_size = batch_size;
  buf_.push_back(r);
  return r.span_id;
}

void TraceScope::flush() {
  if (sink_ == nullptr || buf_.empty()) return;
  sink_->push_all(buf_);
  buf_.clear();
}

Span::Span(TraceScope& scope, Stage stage, std::uint64_t parent_span)
    : scope_(scope), stage_(stage), parent_(parent_span),
      start_ns_(scope.active() ? trace_now_ns() : 0),
      done_(!scope.active()) {}

std::uint64_t Span::end() {
  if (done_) return 0;
  done_ = true;
  return scope_.add(stage_, start_ns_, trace_now_ns(), parent_);
}

}  // namespace mt::obs
