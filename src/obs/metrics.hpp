// Lock-free metrics registry — the measurement substrate of the serving
// runtime (src/runtime) and the input feed for the future adaptive
// planner (ROADMAP: online adaptive planning from measured latencies).
//
// Three metric kinds:
//
//   Counter    monotonic sum (requests served, cache evictions)
//   Gauge      last-written level (queue depth, cached bytes)
//   Histogram  log2-bucketed latency distribution with p50/p95/p99/max
//              extraction (queue wait, per-kernel exec time)
//
// Hot-path design: every recording operation is a relaxed atomic add on a
// per-thread shard — no locks, no branches beyond the shard pick, no
// allocation. Each metric owns kShards cache-line-sized shard slots;
// a thread hashes its id to a slot once (thread_local) and keeps it, so
// two workers recording into one histogram touch different cache lines.
// Reads merge the shards.
//
// Consistency contract for merged reads (the same weak-consistency shape
// as Server::queue_depth, extended to sharded writers): a snapshot reads
// each shard's atomics individually with relaxed loads, so the merged
// value may mix shard states from slightly different instants and may
// miss recordings that are mid-flight on other threads. Three guarantees
// hold regardless: (1) every individual load is atomic — never a torn
// value; (2) counters and histogram bucket counts are monotone, so a
// snapshot never exceeds what was actually recorded by the time the last
// shard is read; (3) after the writing threads are joined (or otherwise
// happens-before-ordered with the reader), a snapshot is exact — the
// concurrency test asserts bit-exact counts after join. That is the
// strongest contract available without serializing the hot path, and it
// is what telemetry wants: trends while running, exact totals at rest.
//
// Naming scheme (what the registry keys and the exposition surfaces):
//   mt_<subsystem>_<quantity>[_<unit>]{label="value",...}
// e.g. mt_serve_queue_wait_ns, mt_exec_ns{kernel="SpMV",format="CSR",
// tier="avx2"}. Labels are baked into the name string — the registry is
// a flat name -> metric map; obs/export.cpp re-parses the {...} suffix
// only for the Prometheus text rendering.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mt::obs {

// Shard count per metric. A power of two so the slot pick is a mask; 8
// slots cover the worker-pool sizes the runtime actually runs (2-8) while
// keeping an idle metric at half a KiB.
inline constexpr std::size_t kShards = 8;

// The calling thread's shard slot — assigned round-robin on first use so
// up to kShards concurrently-recording threads get distinct slots.
std::size_t shard_slot();

// Number of log2 buckets. Bucket i counts values v with bit_width(v) == i,
// i.e. bucket 0 is v <= 0 (clamped), bucket i >= 1 covers [2^(i-1), 2^i).
// 64 buckets cover the full positive int64 range (ns timestamps included).
inline constexpr std::size_t kBuckets = 64;

// --- Snapshots (plain values; mergeable across shards and servers) ---

struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  std::int64_t buckets[kBuckets] = {};

  // Quantile estimate: the upper bound of the bucket where the cumulative
  // count crosses q * count (0 for an empty histogram). Log2 buckets make
  // this exact to within 2x, which is the resolution latency monitoring
  // needs; max is tracked exactly.
  std::int64_t quantile(double q) const;
  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p95() const { return quantile(0.95); }
  std::int64_t p99() const { return quantile(0.99); }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Bucket-wise merge: associative and commutative (the unit tests assert
  // it), so shard merges, cross-server merges, and router aggregation all
  // compose in any order.
  HistogramSnapshot& operator+=(const HistogramSnapshot& o);
};

// One exported metric at one instant.
struct MetricSnapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;       // counter / gauge
  HistogramSnapshot hist;       // histogram
};

// --- Metrics (registry-owned; record paths are lock-free) ---

class Counter {
 public:
  void add(std::int64_t n) {
    shards_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  // Merged shard read — weakly consistent while writers run (file comment).
  std::int64_t value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[kShards];
};

// A level, not a sum: set() overwrites. Gauges are usually written by one
// sampler (the exposition path pulls levels from their owning structures),
// so they keep a single slot rather than shards.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  // Records `v` (clamped to >= 0) into the calling thread's shard:
  // one relaxed add on the bucket, one on count, one on sum, and a
  // relaxed max update. No locks, no allocation.
  void record(std::int64_t v);
  // Merged shard read — weakly consistent while writers run (file comment).
  HistogramSnapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> max{0};
    std::atomic<std::int64_t> buckets[kBuckets] = {};
  };
  Shard shards_[kShards];
};

// --- Registry ---
//
// Owns the metrics by name. Creation takes the registry mutex once; the
// returned references are stable for the registry's lifetime, so callers
// cache them and the steady-state record path never touches the map.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create. Mixing kinds under one name throws std::logic_error
  // (it is always a naming bug, and silently aliasing would corrupt both).
  Counter& counter(std::string_view name) MT_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) MT_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) MT_EXCLUDES(mu_);

  // Every metric, sorted by name (stable exposition order). Each entry is
  // a merged shard read; the set of metrics is a point-in-time copy.
  std::vector<MetricSnapshot> snapshot() const MT_EXCLUDES(mu_);

  std::size_t size() const MT_EXCLUDES(mu_);

 private:
  struct Slot {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot_for(std::string_view name, MetricSnapshot::Kind kind)
      MT_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, Slot> map_ MT_GUARDED_BY(mu_);
};

// Merges `from` into `to` by metric name: counters and histograms add,
// gauges sum as well (aggregating levels across shards — a fleet's queue
// depth is the sum of per-shard depths). Names missing from `to` are
// appended. Keeps `to` sorted by name.
void merge_snapshots(std::vector<MetricSnapshot>& to,
                     const std::vector<MetricSnapshot>& from);

}  // namespace mt::obs
