#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace mt::obs {

std::size_t shard_slot() {
  // Round-robin assignment on first use: up to kShards concurrent
  // recording threads land on distinct slots (a modulo-hashed thread id
  // can collide even for two threads). The counter never shrinks — a
  // thread keeps its slot for its lifetime.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

namespace {

std::size_t bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
}

// The value the quantile estimator reports for a bucket: its inclusive
// upper bound (2^i - 1 for bucket i), so estimates never undershoot the
// bucket that contains the true quantile.
std::int64_t bucket_upper(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 63) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << i) - 1;
}

}  // namespace

std::int64_t HistogramSnapshot::quantile(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it holds the quantile.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             q * static_cast<double>(count) + 0.9999999));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) return std::min(bucket_upper(i), max);
  }
  return max;
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& o) {
  count += o.count;
  sum += o.sum;
  max = std::max(max, o.max);
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  return *this;
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  Shard& s = shards_[shard_slot()];
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  // Relaxed CAS max: last-writer races only ever lose to a larger value.
  std::int64_t cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

Registry::Slot& Registry::slot_for(std::string_view name,
                                   MetricSnapshot::Kind kind) {
  auto [it, inserted] = map_.try_emplace(std::string(name));
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  LockGuard lk(mu_);
  Slot& s = slot_for(name, MetricSnapshot::Kind::kCounter);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  LockGuard lk(mu_);
  Slot& s = slot_for(name, MetricSnapshot::Kind::kGauge);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  LockGuard lk(mu_);
  Slot& s = slot_for(name, MetricSnapshot::Kind::kHistogram);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>();
  return *s.histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    LockGuard lk(mu_);
    out.reserve(map_.size());
    for (const auto& [name, slot] : map_) {
      MetricSnapshot m;
      m.name = name;
      m.kind = slot.kind;
      switch (slot.kind) {
        case MetricSnapshot::Kind::kCounter:
          m.value = slot.counter->value();
          break;
        case MetricSnapshot::Kind::kGauge:
          m.value = slot.gauge->value();
          break;
        case MetricSnapshot::Kind::kHistogram:
          m.hist = slot.histogram->snapshot();
          break;
      }
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::size_t Registry::size() const {
  LockGuard lk(mu_);
  return map_.size();
}

void merge_snapshots(std::vector<MetricSnapshot>& to,
                     const std::vector<MetricSnapshot>& from) {
  for (const auto& m : from) {
    auto it = std::lower_bound(
        to.begin(), to.end(), m,
        [](const MetricSnapshot& a, const MetricSnapshot& b) {
          return a.name < b.name;
        });
    if (it == to.end() || it->name != m.name) {
      to.insert(it, m);
      continue;
    }
    // Kind mismatches across servers would be a naming bug; keep the
    // first kind and fold values by that kind (counters/gauges sum,
    // histograms bucket-merge).
    if (it->kind == MetricSnapshot::Kind::kHistogram) {
      it->hist += m.hist;
    } else {
      it->value += m.value;
    }
  }
}

}  // namespace mt::obs
