// Per-request trace spans — where a slow request spent its time.
//
// Every request admitted to a Server gets a trace id (assigned by the
// Server at admission, or earlier by the ShardedServer router so one id
// follows the request across a shard hop). As the request moves through
// the pipeline, RAII Span objects record stage intervals:
//
//   queue      enqueue -> worker pickup            (per request)
//   plan       plan-cache resolution / SAGE search (per request or group)
//   convert    operand representation resolution   (per request or group)
//   exec       the kernel launch                   (per request or group)
//   scatter    fused-result un-stacking            (per fused group)
//   group      a fused batch launch; member requests' exec spans link to
//              it via parent_span (their slices partition its interval)
//   route      router-side shard resolution + replica setup
//
// Records land in a bounded per-server ring (TraceRing): writers never
// block and never allocate in steady state — when the ring is full the
// oldest record is overwritten, because under overload fresh spans are
// exactly the ones an operator needs. drain() hands back the buffered
// records oldest-first and clears the ring.
//
// The span id space is per-server (a monotonically increasing counter);
// trace ids are globally unique per router/server via the same scheme.
// ShardedServer::drain_trace() merges the per-shard rings and tags each
// record with its shard, so a cross-shard request's route span (router)
// and stage spans (executing shard) share one trace id.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mt::obs {

enum class Stage : std::uint8_t {
  kQueue,
  kPlan,
  kConvert,
  kExec,
  kScatter,
  kGroup,
  kRoute,
};

constexpr std::string_view name_of(Stage s) {
  switch (s) {
    case Stage::kQueue: return "queue";
    case Stage::kPlan: return "plan";
    case Stage::kConvert: return "convert";
    case Stage::kExec: return "exec";
    case Stage::kScatter: return "scatter";
    case Stage::kGroup: return "group";
    case Stage::kRoute: return "route";
  }
  return "?";
}

// One recorded stage interval. Plain data; drained records are safe to
// hold after the server dies.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0 = root of its trace
  Stage stage = Stage::kQueue;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  int shard = -1;        // filled by ShardedServer::drain_trace()
  int batch_size = 1;    // members sharing a group span's launch

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

// Bounded MPMC ring of span records. push() never blocks: a full ring
// drops its oldest record. capacity 0 disables recording entirely (every
// push is a no-op) — the ServerOptions::obs.tracing=false path.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : cap_(capacity) {
    // The ring grows lazily to cap_ on first pushes, then stays put, so
    // a tracing-off server allocates nothing here.
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void push(const SpanRecord& r) MT_EXCLUDES(mu_);
  // One lock for a request's whole span set (the server buffers a
  // request's records and flushes once).
  void push_all(const std::vector<SpanRecord>& rs) MT_EXCLUDES(mu_);

  // The buffered records oldest-first; clears the ring. Weakly consistent
  // with concurrent pushes (a record pushed during the drain lands in the
  // next drain), exact once writers are quiescent.
  std::vector<SpanRecord> drain() MT_EXCLUDES(mu_);

  std::size_t size() const MT_EXCLUDES(mu_);
  std::size_t capacity() const { return cap_; }
  // Records overwritten before ever being drained.
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void push_locked(const SpanRecord& r) MT_REQUIRES(mu_);

  const std::size_t cap_;
  mutable Mutex mu_;
  std::vector<SpanRecord> ring_ MT_GUARDED_BY(mu_);  // grows to cap_, then fixed
  std::size_t head_ MT_GUARDED_BY(mu_) = 0;  // oldest record when full
  std::atomic<std::int64_t> dropped_{0};
};

// Issues span/trace ids. One per Server (and one per router), so ids are
// unique within the ring(s) an operator drains together.
class IdSource {
 public:
  std::uint64_t next() { return n_.fetch_add(1, std::memory_order_relaxed) + 1; }

 private:
  std::atomic<std::uint64_t> n_{0};
};

// A request's span set under construction: stack-buffered records flushed
// to the ring in one push_all when the request completes. Null sink =
// tracing off; every operation degrades to a no-op without branching at
// call sites.
class TraceScope {
 public:
  TraceScope(TraceRing* sink, IdSource* ids, std::uint64_t trace_id)
      : sink_(sink && sink->capacity() > 0 ? sink : nullptr), ids_(ids),
        trace_id_(trace_id) {}

  ~TraceScope() { flush(); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return sink_ != nullptr; }
  std::uint64_t trace_id() const { return trace_id_; }

  // Appends a completed interval; returns its span id (0 when inactive).
  std::uint64_t add(Stage stage, std::int64_t start_ns, std::int64_t end_ns,
                    std::uint64_t parent_span = 0, int batch_size = 1);

  // Same, under an explicit trace id — the fused-group path records each
  // member's exec slice under that member's own trace while the group
  // span lives on the leader's.
  std::uint64_t add_for(std::uint64_t trace_id, Stage stage,
                        std::int64_t start_ns, std::int64_t end_ns,
                        std::uint64_t parent_span = 0, int batch_size = 1);

  void flush();

 private:
  TraceRing* sink_;
  IdSource* ids_;
  std::uint64_t trace_id_;
  std::vector<SpanRecord> buf_;
};

// RAII stage timer over a TraceScope: records [construction, destruction)
// via scope.add() unless ended explicitly first.
class Span {
 public:
  Span(TraceScope& scope, Stage stage, std::uint64_t parent_span = 0);
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the interval now; returns the recorded span id (0 if inactive).
  std::uint64_t end();

 private:
  TraceScope& scope_;
  Stage stage_;
  std::uint64_t parent_;
  std::int64_t start_ns_;
  bool done_ = false;
};

}  // namespace mt::obs
