// Stats exposition — renders a metrics snapshot as Prometheus-style text
// or JSON.
//
// The registry keys metrics by full name with labels baked in
// (`mt_exec_ns{kernel="SpMV",format="CSR",tier="avx2"}`); the text
// renderer splits that back into base name + label set so histograms
// expose the conventional series:
//
//   mt_exec_ns_bucket{kernel="SpMV",...,le="1024"} 17
//   mt_exec_ns_bucket{kernel="SpMV",...,le="+Inf"} 31
//   mt_exec_ns_sum{kernel="SpMV",...} 913840
//   mt_exec_ns_count{kernel="SpMV",...} 31
//   mt_exec_ns{kernel="SpMV",...,quantile="0.5"} 16383
//
// Only non-empty histogram buckets get a _bucket line (log2 bucketing
// would otherwise print 64 lines per histogram, mostly zeros); `le`
// bounds are the buckets' inclusive upper bounds, so the series is still
// cumulative and monotone the way scrapers expect. Quantile lines carry
// p50/p95/p99 pre-extracted — the paper-repo benches and the README
// examples read those directly.
//
// metrics_json renders the same snapshot as one JSON object keyed by full
// metric name — the machine-consumption twin (BENCH tooling, tests).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mt::obs {

// Prometheus-style text exposition of a snapshot (see file comment).
std::string metrics_text(const std::vector<MetricSnapshot>& snap);

// JSON object: {"name": value, ...} for counters/gauges and
// {"name": {"count":..,"sum":..,"max":..,"p50":..,"p95":..,"p99":..}, ...}
// for histograms.
std::string metrics_json(const std::vector<MetricSnapshot>& snap);

}  // namespace mt::obs
