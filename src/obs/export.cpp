#include "obs/export.hpp"

#include <limits>
#include <sstream>

namespace mt::obs {

namespace {

// Splits "name{a="b",c="d"}" into ("name", "a=\"b\",c=\"d\"").
// No-label names return an empty label part.
std::pair<std::string, std::string> split_labels(const std::string& full) {
  const auto brace = full.find('{');
  if (brace == std::string::npos || full.back() != '}') return {full, ""};
  return {full.substr(0, brace),
          full.substr(brace + 1, full.size() - brace - 2)};
}

// "name{labels,extra}" — handles every combination of empty parts.
std::string with_labels(const std::string& base, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

std::int64_t bucket_upper_bound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 63) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << i) - 1;
}

// Label values carry quotes ('{kernel="SpMV"}'); JSON keys must escape
// them.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* kind_name(MetricSnapshot::Kind k) {
  switch (k) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "?";
}

void render_histogram_text(std::ostringstream& os, const std::string& base,
                           const std::string& labels,
                           const HistogramSnapshot& h) {
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;  // sparse: log2 histograms are mostly 0
    cum += h.buckets[i];
    os << with_labels(base + "_bucket", labels,
                      "le=\"" + std::to_string(bucket_upper_bound(i)) + "\"")
       << ' ' << cum << '\n';
  }
  os << with_labels(base + "_bucket", labels, "le=\"+Inf\"") << ' ' << h.count
     << '\n';
  os << with_labels(base + "_sum", labels) << ' ' << h.sum << '\n';
  os << with_labels(base + "_count", labels) << ' ' << h.count << '\n';
  const std::pair<const char*, double> qs[] = {
      {"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& [qname, q] : qs) {
    os << with_labels(base, labels,
                      std::string("quantile=\"") + qname + "\"")
       << ' ' << h.quantile(q) << '\n';
  }
  os << with_labels(base + "_max", labels) << ' ' << h.max << '\n';
}

}  // namespace

std::string metrics_text(const std::vector<MetricSnapshot>& snap) {
  std::ostringstream os;
  std::string last_base;
  for (const auto& m : snap) {
    const auto [base, labels] = split_labels(m.name);
    if (base != last_base) {
      os << "# TYPE " << base << ' ' << kind_name(m.kind) << '\n';
      last_base = base;
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        os << m.name << ' ' << m.value << '\n';
        break;
      case MetricSnapshot::Kind::kHistogram:
        render_histogram_text(os, base, labels, m.hist);
        break;
    }
  }
  return os.str();
}

std::string metrics_json(const std::vector<MetricSnapshot>& snap) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& m : snap) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(m.name) << "\": ";
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      os << "{\"count\": " << m.hist.count << ", \"sum\": " << m.hist.sum
         << ", \"max\": " << m.hist.max << ", \"mean\": " << m.hist.mean()
         << ", \"p50\": " << m.hist.p50() << ", \"p95\": " << m.hist.p95()
         << ", \"p99\": " << m.hist.p99() << "}";
    } else {
      os << m.value;
    }
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace mt::obs
