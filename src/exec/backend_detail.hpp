// Internal seam between backend.cpp (factory) and sim_backend.cpp (the
// cycle-simulator backend's lowering machinery). Not part of the public
// exec API — include exec/backend.hpp instead.
#pragma once

#include <memory>

#include "exec/backend.hpp"

namespace mt::exec::detail {

std::unique_ptr<Backend> make_sim_backend();

}  // namespace mt::exec::detail
