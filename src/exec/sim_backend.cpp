// SimBackend — every kernel lowered onto the cycle-accurate
// weight-stationary simulator (accel/cycle_sim.hpp).
//
// The simulator executes one tile: stationary operand B holds at most
// num_pes columns of at most buffer_elems() elements each. This backend
// tiles the lowered A(m x k) * B(k x n) product over N (output-column
// tiles of num_pes) and K (stationary-depth passes of buffer_elems()),
// streaming each A tile as CSR against a Dense stationary tile, and
// accumulates the partial products — the analytic PerfModel's tiled
// execution, run functionally. Accumulating fp32 partials in K-tile order
// reassociates the reduction relative to the CPU kernels, hence the
// documented dual-run tolerance instead of bit-equality.
//
// Kernel lowerings (all exact, not approximations):
//   SpMV     y = A x            -> (m x k) * (k x 1)
//   GEMM/SpMM                   -> (m x k) * (k x n)
//   SpGEMM   C = A B            -> dense product, re-encoded to CSR
//   SpTTM    Y(i,j,l)           -> unfold X as (x*y, z) times U (z x r)
//   MTTKRP   M(i,r)             -> X_(1) (x, y*z) times the Khatri-Rao
//                                  product (B kr C)(jy*z+jz, r)
#include <algorithm>
#include <utility>

#include "accel/cycle_sim.hpp"
#include "common/error.hpp"
#include "exec/backend_detail.hpp"

namespace mt::exec::detail {

namespace {

struct SimRun {
  DenseMatrix out;
  std::int64_t cycles = 0;
};

DenseMatrix slice(const DenseMatrix& m, index_t r0, index_t nr, index_t c0,
                  index_t nc) {
  DenseMatrix out(nr, nc);
  const value_t* pm = m.values().data();
  value_t* po = out.values().data();
  const index_t stride = m.cols();
  for (index_t r = 0; r < nr; ++r) {
    for (index_t c = 0; c < nc; ++c) {
      po[r * nc + c] = pm[(r0 + r) * stride + c0 + c];
    }
  }
  return out;
}

// O = A * B through the simulator, tiled to its single-tile envelope.
SimRun sim_matmul(const DenseMatrix& a, const DenseMatrix& b,
                  const AccelConfig& cfg,
                  const AlignedAllocator<value_t>& alloc) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  MT_REQUIRE(b.rows() == k, "sim matmul inner dimensions must agree");
  SimRun run{DenseMatrix(m, n, 0.0f, alloc), 0};
  if (m == 0 || n == 0 || k == 0) return run;
  const index_t nt_max = std::min(n, cfg.num_pes);
  const index_t kt_max = std::min(k, cfg.buffer_elems());
  value_t* po = run.out.values().data();
  for (index_t n0 = 0; n0 < n; n0 += nt_max) {
    const index_t nt = std::min(nt_max, n - n0);
    for (index_t k0 = 0; k0 < k; k0 += kt_max) {
      const index_t kt = std::min(kt_max, k - k0);
      const DenseMatrix at = slice(a, 0, m, k0, kt);
      const DenseMatrix bt = slice(b, k0, kt, n0, nt);
      const CycleSimResult res =
          simulate_ws_matmul(at, bt, Format::kCSR, Format::kDense, cfg);
      run.cycles += res.phases.total_cycles();
      const value_t* pr = res.output.values().data();
      for (index_t r = 0; r < m; ++r) {
        for (index_t c = 0; c < nt; ++c) {
          po[r * n + n0 + c] += pr[r * nt + c];
        }
      }
    }
  }
  return run;
}

// X unfolded along mode 1: the (x, y, z) dense buffer IS the row-major
// (x*y, z) matrix (linear index (ix*y + iy)*z + iz), so the unfold is a
// copy of the value buffer under a matrix shape.
DenseMatrix unfold_xy_by_z(const DenseTensor3& t) {
  DenseMatrix m(t.dim_x() * t.dim_y(), t.dim_z());
  std::copy(t.values().begin(), t.values().end(), m.values().begin());
  return m;
}

DenseMatrix unfold_x_by_yz(const DenseTensor3& t) {
  DenseMatrix m(t.dim_x(), t.dim_y() * t.dim_z());
  std::copy(t.values().begin(), t.values().end(), m.values().begin());
  return m;
}

// (B kr C)(iy*z + iz, r) = B(iy, r) * C(iz, r) — the MTTKRP factor.
DenseMatrix khatri_rao(const DenseMatrix& b, const DenseMatrix& c) {
  MT_REQUIRE(b.cols() == c.cols(), "Khatri-Rao factors share a rank");
  const index_t y = b.rows(), z = c.rows(), r = b.cols();
  DenseMatrix out(y * z, r);
  value_t* po = out.values().data();
  for (index_t iy = 0; iy < y; ++iy) {
    for (index_t iz = 0; iz < z; ++iz) {
      for (index_t rr = 0; rr < r; ++rr) {
        po[(iy * z + iz) * r + rr] = b.at(iy, rr) * c.at(iz, rr);
      }
    }
  }
  return out;
}

class SimBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kSim; }

  JobResult run(const Job& job) const override {
    const AccelConfig cfg =
        job.accel != nullptr ? *job.accel : AccelConfig::paper_default();
    const EnergyParams energy =
        job.energy != nullptr ? *job.energy : EnergyParams{};
    JobResult r;
    r.dispatch.kernel = job.kernel;
    r.dispatch.backend = BackendKind::kSim;
    r.dispatch.tier = ExecTier::kDevice;
    r.dispatch.ran_a = Format::kCSR;  // the streamed ACF of every lowering
    std::int64_t cycles = 0;
    switch (job.kernel) {
      case Kernel::kSpMV: {
        MT_REQUIRE(job.a != nullptr && job.vec != nullptr,
                   "SpMV job needs a matrix operand and an input vector");
        r.dispatch.given_a = format_of(*job.a);
        const DenseMatrix a = decode(*job.a);
        MT_REQUIRE(static_cast<index_t>(job.vec->size()) == a.cols(),
                   "SpMV vector length must match the matrix columns");
        DenseMatrix bx(a.cols(), 1);
        std::copy(job.vec->begin(), job.vec->end(), bx.values().begin());
        SimRun run = sim_matmul(a, bx, cfg, job.alloc);
        cycles = run.cycles;
        r.output = column_of(run.out, 0);
        break;
      }
      case Kernel::kGemm:
      case Kernel::kSpMM: {
        MT_REQUIRE(job.a != nullptr &&
                       (job.b != nullptr || job.dense_b != nullptr),
                   "SpMM job needs operand A and a B operand or factor");
        r.dispatch.given_a = format_of(*job.a);
        r.dispatch.has_b = job.b != nullptr;
        if (job.b != nullptr) r.dispatch.given_b = format_of(*job.b);
        r.dispatch.ran_b = Format::kDense;
        const DenseMatrix a = decode(*job.a);
        const DenseMatrix b =
            job.b != nullptr ? decode(*job.b) : *job.dense_b;
        SimRun run = sim_matmul(a, b, cfg, job.alloc);
        cycles = run.cycles;
        r.output = std::move(run.out);
        break;
      }
      case Kernel::kSpGEMM: {
        MT_REQUIRE(job.a != nullptr && job.b != nullptr,
                   "SpGEMM job needs two compressed operands");
        r.dispatch.given_a = format_of(*job.a);
        r.dispatch.has_b = true;
        r.dispatch.given_b = format_of(*job.b);
        r.dispatch.ran_b = Format::kDense;
        SimRun run =
            sim_matmul(decode(*job.a), decode(*job.b), cfg, job.alloc);
        cycles = run.cycles;
        r.output = dense_to_csr(run.out);
        break;
      }
      case Kernel::kSpTTM: {
        MT_REQUIRE(job.x != nullptr && job.dense_b != nullptr,
                   "SpTTM job needs a tensor operand and a dense factor");
        r.dispatch.given_a = format_of(*job.x);
        const DenseTensor3 x = decode(*job.x);
        SimRun run =
            sim_matmul(unfold_xy_by_z(x), *job.dense_b, cfg, job.alloc);
        cycles = run.cycles;
        DenseTensor3 y(x.dim_x(), x.dim_y(), job.dense_b->cols());
        std::copy(run.out.values().begin(), run.out.values().end(),
                  y.values().begin());
        r.output = std::move(y);
        break;
      }
      case Kernel::kMTTKRP: {
        MT_REQUIRE(job.x != nullptr && job.dense_b != nullptr &&
                       job.dense_c != nullptr,
                   "MTTKRP job needs a tensor operand and two dense factors");
        r.dispatch.given_a = format_of(*job.x);
        const DenseTensor3 x = decode(*job.x);
        SimRun run = sim_matmul(unfold_x_by_yz(x),
                                khatri_rao(*job.dense_b, *job.dense_c), cfg,
                                job.alloc);
        cycles = run.cycles;
        r.output = std::move(run.out);
        break;
      }
    }
    r.device_ns =
        static_cast<std::int64_t>(energy.seconds(cycles) * 1e9);
    return r;
  }

  BackendCost price(const PricingInput& in) const override {
    const EnergyParams energy =
        in.energy != nullptr ? *in.energy : EnergyParams{};
    BackendCost c;
    if (in.sage_cost != nullptr) {
      // The device this backend simulates is exactly the device the SAGE
      // performance model prices: charge the winning combination's
      // compute phase (operands arrive converted from the host, so no
      // DRAM/convert term). This prices the *modeled device*, not the
      // host wall-clock of running the simulator — SimBackend is a
      // verification backend, and its plan cost should rank it like the
      // hardware it stands in for.
      c.ns = energy.seconds(in.sage_cost->compute_cycles) * 1e9;
      c.energy_j = in.sage_cost->compute_energy_j;
      return c;
    }
    const AccelConfig cfg =
        in.accel != nullptr ? *in.accel : AccelConfig::paper_default();
    const double macs = static_cast<double>(in.flops) / 2.0;
    const double cycles = macs / static_cast<double>(cfg.total_macs());
    c.ns = energy.seconds(static_cast<std::int64_t>(cycles)) * 1e9;
    c.energy_j = macs * energy.mac_energy_j(cfg.dtype);
    return c;
  }
};

}  // namespace

std::unique_ptr<Backend> make_sim_backend() {
  return std::make_unique<SimBackend>();
}

}  // namespace mt::exec::detail
