#include "exec/device_ring.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace mt::exec {

namespace {

std::int64_t ring_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DeviceRing::DeviceRing(const Backend& device, RingOptions opts)
    : device_(device), slots_(std::max<std::size_t>(1, opts.slots)) {
  const int n = std::max(1, opts.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

// NOLINTNEXTLINE(bugprone-exception-escape): stop() only closes intake and
// joins drained workers; neither path throws in practice, and a destructor
// that leaked running threads would be strictly worse.
DeviceRing::~DeviceRing() { stop(); }

DeviceRing::Ticket DeviceRing::submit(Job job) {
  Ticket t = kInvalidTicket;
  {
    UniqueLock lk(mu_);
    while (!stopping_ && queue_.size() >= slots_) space_.wait(lk);
    if (stopping_) return kInvalidTicket;
    t = next_ticket_++;
    queue_.emplace_back(t, std::move(job));
    const auto in_flight =
        static_cast<std::int64_t>(queue_.size()) + active_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight);
  }
  work_.notify_one();
  return t;
}

std::vector<DeviceRing::Ticket> DeviceRing::submit_all(
    std::vector<Job> jobs) {
  std::vector<Ticket> out(jobs.size(), kInvalidTicket);
  bool queued_any = false;
  {
    UniqueLock lk(mu_);
    std::size_t i = 0;
    while (i < jobs.size()) {
      while (!stopping_ && queue_.size() >= slots_) {
        // Admitted descriptors may not have been announced yet (the batch
        // notify happens after unlock): wake the device workers so they
        // can drain the queue and open slots for the rest of the window.
        if (!queue_.empty()) work_.notify_all();
        space_.wait(lk);
      }
      if (stopping_) break;  // the rest of the window stays kInvalidTicket
      while (i < jobs.size() && queue_.size() < slots_) {
        out[i] = next_ticket_++;
        queue_.emplace_back(out[i], std::move(jobs[i]));
        ++i;
        queued_any = true;
      }
      const auto in_flight =
          static_cast<std::int64_t>(queue_.size()) + active_;
      peak_in_flight_ = std::max(peak_in_flight_, in_flight);
    }
  }
  if (queued_any) work_.notify_all();
  return out;
}

void DeviceRing::worker_loop() {
  for (;;) {
    Ticket t = kInvalidTicket;
    Job job;
    {
      UniqueLock lk(mu_);
      while (!stopping_ && queue_.empty()) work_.wait(lk);
      // Drain-on-stop: accepted descriptors still execute; only an empty
      // queue under stopping_ ends the worker.
      if (queue_.empty()) return;
      t = queue_.front().first;
      job = std::move(queue_.front().second);
      queue_.pop_front();
      ++active_;
    }
    space_.notify_one();
    Completion c;
    const auto t0 = ring_now_ns();
    try {
      c.result = device_.run(job);
    } catch (...) {
      c.error = std::current_exception();
    }
    c.result.run_ns = ring_now_ns() - t0;
    {
      LockGuard lk(mu_);
      --active_;
      ++completed_;
      completions_.emplace(t, std::move(c));
    }
    done_.notify_all();
  }
}

JobResult DeviceRing::claim(Completion&& c) {
  if (c.error != nullptr) std::rethrow_exception(c.error);
  return std::move(c.result);
}

bool DeviceRing::try_poll(Ticket t, JobResult* out) {
  Completion c;
  {
    LockGuard lk(mu_);
    if (t == kInvalidTicket || t >= next_ticket_) {
      throw std::invalid_argument("ticket was never issued by this ring");
    }
    auto it = completions_.find(t);
    if (it == completions_.end()) return false;  // still in flight
    c = std::move(it->second);
    completions_.erase(it);
  }
  done_.notify_all();
  JobResult r = claim(std::move(c));
  if (out != nullptr) *out = std::move(r);
  return true;
}

JobResult DeviceRing::wait(Ticket t) {
  Completion c;
  {
    UniqueLock lk(mu_);
    if (t == kInvalidTicket || t >= next_ticket_) {
      throw std::invalid_argument("ticket was never issued by this ring");
    }
    for (;;) {
      auto it = completions_.find(t);
      if (it != completions_.end()) {
        c = std::move(it->second);
        completions_.erase(it);
        break;
      }
      if (drained_) {
        // Workers are joined and every accepted job's completion was
        // posted before the join, so an absent ticket can only mean a
        // second claim of one already taken.
        throw std::invalid_argument("ticket was already claimed");
      }
      done_.wait(lk);
    }
  }
  return claim(std::move(c));
}

void DeviceRing::stop() {
  bool expected = false;
  if (!stop_requested_.compare_exchange_strong(expected, true)) {
    // Another thread is stopping (or has stopped) the ring; wait until
    // the drain finishes so stop() means "stopped" for every caller.
    UniqueLock lk(mu_);
    while (!drained_) done_.wait(lk);
    return;
  }
  {
    LockGuard lk(mu_);
    stopping_ = true;
  }
  space_.notify_all();  // submitters return kInvalidTicket
  work_.notify_all();   // workers drain the queue, then exit
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    LockGuard lk(mu_);
    drained_ = true;
  }
  done_.notify_all();  // claimers of never-completed tickets get thrown
}

RingStats DeviceRing::stats() const {
  LockGuard lk(mu_);
  RingStats s;
  s.submitted = static_cast<std::int64_t>(next_ticket_) - 1;
  s.completed = completed_;
  s.in_flight = static_cast<std::int64_t>(queue_.size()) + active_;
  s.peak_in_flight = peak_in_flight_;
  return s;
}

}  // namespace mt::exec
