// Pluggable execution backends — the substrate dimension of a plan.
//
// The paper prices MCF x ACF choices against one execution substrate; this
// repo carries three that can run a chosen plan, and this interface makes
// them interchangeable behind the serving stack:
//
//   CpuBackend   the OpenMP/SIMD kernel library (src/kernels via the
//                exec free functions) — the fast host path, the
//                correctness reference for everything else.
//   SimBackend   the cycle-accurate weight-stationary simulator
//                (src/accel/cycle_sim) — "slow accurate": every kernel is
//                lowered to tiled A*B matmuls inside the simulator's
//                single-tile envelope, producing real output values plus
//                exact cycle counts.
//   MintBackend  the MINT modeled-offload path — results computed by the
//                CPU kernels (bit-exact with CpuBackend), latency taken
//                from the SAGE/MINT cost model of the plan's winning
//                combination, optionally *enforced* with a bounded sleep
//                so an async submission ring shows real overlap.
//
// One Job shape covers all six kernels and collapses the historical
// special-case entry points (SpMM with a dense factor vs. with a second
// compressed operand) into a single Backend::run(Job). Backends are
// stateless and const — one instance serves many threads; per-model state
// (AccelConfig/EnergyParams) travels inside the Job so a model swap never
// has to rebuild a backend under concurrent use.
//
// Numerical contract: CpuBackend and MintBackend are bit-identical.
// SimBackend tiles over N and K and accumulates fp32 partial products in
// tile order, which reassociates the K-reduction relative to the CPU
// kernels — dual-run comparisons must use max_rel_error with a documented
// tolerance (see tests/test_backend.cpp), exactly like the SIMD tier's
// lane-tree reductions in test_simd.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "accel/config.hpp"
#include "common/aligned.hpp"
#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "exec/exec.hpp"

namespace mt::exec {

// One unit of backend work. Which operand fields matter depends on the
// kernel (same convention as runtime::Request):
//   kSpMV            a + vec
//   kGemm / kSpMM    a + dense_b, or a + b (both compressed/registered)
//   kSpGEMM          a + b
//   kSpTTM           x + dense_b (the factor U)
//   kMTTKRP          x + dense_b + dense_c
// Operand pointers are borrowed, never owned: the submitter keeps them
// alive until the job's result is claimed (the async ring's contract).
struct Job {
  Kernel kernel = Kernel::kSpMV;
  const AnyMatrix* a = nullptr;
  const AnyMatrix* b = nullptr;              // second compressed operand
  const AnyTensor* x = nullptr;              // tensor operand
  const DenseMatrix* dense_b = nullptr;      // dense factor (B / U)
  const DenseMatrix* dense_c = nullptr;      // MTTKRP C
  const std::vector<value_t>* vec = nullptr; // SpMV input vector

  // Allocator for dense output payloads (arena-backed under the server).
  AlignedAllocator<value_t> alloc;

  // Model the device backends execute/price under; null falls back to the
  // paper defaults. Passed per job (not held by the backend) so a serving
  // model swap needs no backend rebuild.
  const AccelConfig* accel = nullptr;
  const EnergyParams* energy = nullptr;

  // Modeled offload latency of this job's plan (ns), priced by the plan's
  // cost model at plan time. MintBackend reports it as device_ns and, when
  // built with simulate_latency, sleeps min(modeled_ns, max sleep) so
  // in-flight overlap is physically observable. 0 = not priced.
  std::int64_t modeled_ns = 0;
};

// Every result shape a job can produce; runtime::Result aliases this.
using JobOutput = std::variant<std::vector<value_t>,  // SpMV
                               DenseMatrix,           // GEMM/SpMM/MTTKRP
                               CsrMatrix,             // SpGEMM
                               DenseTensor3>;         // SpTTM

struct JobResult {
  JobOutput output;
  Dispatch dispatch;          // how the backend actually ran the job
  std::int64_t device_ns = 0; // modeled/simulated device time (0 on CPU):
                              // sim = cycle count at the model clock,
                              // mint = the job's modeled offload latency
  std::int64_t run_ns = 0;    // wall-clock of run(); stamped by the
                              // DeviceRing (0 on direct backend calls,
                              // where the caller times the call itself)
};

// What a backend charges for one job — the plan's backend dimension.
struct BackendCost {
  double ns = 0.0;       // predicted latency
  double energy_j = 0.0; // predicted energy (0 where the model has none)
};

// Workload summary the server assembles at plan time so pricing never
// re-derives operand structure. `sage_cost` is the winning combination's
// CostBreakdown when a SAGE search ran (null for plain GEMM): its
// compute_cycles are the accelerator execution model and its total_cycles
// add DRAM streaming + MINT conversion — exactly the sim and mint
// offload envelopes.
struct PricingInput {
  Kernel kernel = Kernel::kSpMV;
  std::int64_t flops = 0;  // useful MAC work estimate (2*nnz*width style)
  const CostBreakdown* sage_cost = nullptr;
  const AccelConfig* accel = nullptr;
  const EnergyParams* energy = nullptr;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;

  // Executes the job synchronously on the calling thread. Throws on
  // malformed jobs (missing operands, shape mismatch) — the same error
  // surface as the exec free functions. Const and reentrant: one backend
  // instance serves every worker.
  virtual JobResult run(const Job& job) const = 0;

  // Predicted cost of one such job on this backend — the number the plan
  // cache stores per backend and the auto-selection policy compares.
  virtual BackendCost price(const PricingInput& in) const = 0;
};

// Factory covering the three kinds. MintBackend options:
struct MintBackendOptions {
  // Sleep the modeled offload latency (bounded below) inside run(), so
  // device jobs occupy wall-clock time proportional to the model and an
  // async ring demonstrably overlaps them. Off: results return at CPU
  // speed with the latency only reported.
  bool simulate_latency = false;
  std::int64_t max_simulated_latency_ns = 2'000'000;
};

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const MintBackendOptions& mint = {});

// Dual-run comparator: worst elementwise |x - y| / max(1, |x|, |y|) over
// the two outputs' decoded dense values (mixed absolute/relative, so
// near-zero entries compare absolutely). Returns +infinity when the
// outputs hold different result types or shapes. CPU-vs-mint must be 0;
// CPU-vs-sim is bounded by the fp32 K-tiling reassociation tolerance
// documented in tests/test_backend.cpp.
double max_rel_error(const JobOutput& a, const JobOutput& b);

}  // namespace mt::exec
