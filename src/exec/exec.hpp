// Format-generic kernel execution engine.
//
// The paper decouples the memory format (MCF) from the algorithm format
// (ACF); SAGE prices every pair, and this engine is what makes the chosen
// pair *runnable*: one entry point per kernel, taking AnyMatrix/AnyTensor
// operands, with a (Kernel x Format) registry underneath. A request whose
// operand format has a registered native kernel routes straight to it;
// anything else falls back by converting the operand through the COO-hub
// convert() layer into the kernel's fallback ACF. Every call reports which
// path was taken, so tests and benches can assert native coverage instead
// of silently eating conversion costs.
//
// Concurrency contract: every entry point takes its operands by const
// reference end-to-end and never mutates or copies them on the native
// path (fallback materializes only the converted temporary it consumes).
// The dispatch registry is immutable after first use, so the serving
// runtime (src/runtime) can feed one shared, read-only operand — e.g. a
// conversion-cache representation — to many threads calling these entry
// points concurrently.
#pragma once

#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "convert/convert.hpp"
#include "formats/dense.hpp"
#include "formats/tensor_dense.hpp"

namespace mt::exec {

// Whether a call ran in the operand's own format or via conversion.
enum class Path : std::uint8_t { kNative, kFallback };

constexpr std::string_view name_of(Path p) {
  return p == Path::kNative ? "native" : "fallback";
}

// Which execution substrate ran (or would run) a job. kCpu is the
// OpenMP/SIMD kernel library underneath the free functions below; kSim is
// the cycle-accurate accelerator simulator (src/accel, "slow accurate");
// kMint is the MINT modeled-offload pipeline (bit-exact CPU results priced
// and optionally delayed by the accelerator cost model). See backend.hpp.
enum class BackendKind : std::uint8_t { kCpu, kSim, kMint };

constexpr std::string_view name_of(BackendKind b) {
  switch (b) {
    case BackendKind::kCpu: return "cpu";
    case BackendKind::kSim: return "sim";
    case BackendKind::kMint: return "mint";
  }
  return "?";
}

// Execution tier within a backend: the CPU backend dispatches scalar or
// SIMD kernel bodies; device backends run as a single device tier.
enum class ExecTier : std::uint8_t { kScalar, kSimd, kDevice };

// How one engine call was executed: the operand formats as handed in and
// the formats the kernel actually consumed (equal on the native path),
// plus the backend x tier that was live at dispatch time.
struct Dispatch {
  Kernel kernel = Kernel::kSpMV;
  Path path = Path::kNative;
  Format given_a = Format::kDense;
  Format ran_a = Format::kDense;
  bool has_b = false;               // second compressed operand present
  Format given_b = Format::kDense;
  Format ran_b = Format::kDense;
  BackendKind backend = BackendKind::kCpu;
  ExecTier tier = ExecTier::kScalar;  // kSimd iff mt::simd_enabled() when
                                      // the CPU backend dispatched

  std::string describe() const;  // e.g. "SpMV over DIA: fallback via CSR"
};

// The tier label the observability layer attaches to exec histograms.
// CPU keeps the pre-backend label values ("scalar"/"avx2") so existing
// mt_exec_ns{...,tier=...} series names stay stable for scrapes; device
// backends add new values in the same label key instead of overloading
// the CPU ones (a scalar CPU run and a device run are different series).
constexpr std::string_view tier_label(BackendKind b, ExecTier t) {
  switch (b) {
    case BackendKind::kCpu: return t == ExecTier::kSimd ? "avx2" : "scalar";
    case BackendKind::kSim: return "sim";
    case BackendKind::kMint: return "mint";
  }
  return "?";
}

// Dense index of the (backend, tier) combination for per-tier telemetry
// slot arrays; kNumTierSlots is the array extent.
inline constexpr std::size_t kNumTierSlots = 4;
constexpr std::size_t tier_slot(BackendKind b, ExecTier t) {
  switch (b) {
    case BackendKind::kCpu: return t == ExecTier::kSimd ? 1 : 0;
    case BackendKind::kSim: return 2;
    case BackendKind::kMint: return 3;
  }
  return 0;
}

// --- Entry points (one per kernel; the sparse operand is format-generic) ---

std::vector<value_t> spmv(const AnyMatrix& a, const std::vector<value_t>& x,
                          Dispatch* d = nullptr);

// A (any format) times a dense factor B.
DenseMatrix spmm(const AnyMatrix& a, const DenseMatrix& b,
                 Dispatch* d = nullptr);

// Both operands compressed — the ACF pairs of paper §III-B. (Dense, Dense)
// routes to the GEMM kernel, so this also covers Kernel::kGemm.
DenseMatrix spmm(const AnyMatrix& a, const AnyMatrix& b,
                 Dispatch* d = nullptr);

// Sparse x sparse with compressed output.
CsrMatrix spgemm(const AnyMatrix& a, const AnyMatrix& b,
                 Dispatch* d = nullptr);

// Mode-3 SpTTM: Y(i,j,l) = sum_k X(i,j,k) * U(k,l).
DenseTensor3 ttm(const AnyTensor& x, const DenseMatrix& u,
                 Dispatch* d = nullptr);

// Mode-1 MTTKRP with dense factors B and C.
DenseMatrix mttkrp(const AnyTensor& x, const DenseMatrix& b,
                   const DenseMatrix& c, Dispatch* d = nullptr);

// --- Column-block helpers (the serving batcher's gather/scatter path) ---
//
// The runtime batcher coalesces n SpMV requests into one SpMM by stacking
// their input vectors as columns, and fuses same-plan SpMM requests by
// concatenating their dense factors; after the fused kernel it scatters
// each caller's column block back out. These are the only places the
// engine copies dense data on behalf of the batcher, kept here so the
// layout convention (row-major, column j of request j) lives next to the
// kernels that consume it. Each takes the allocator for the produced
// matrix, so the serving runtime can draw these per-request payloads
// from its slab-recycling arena instead of the global heap; the default
// is a plain (pool-less) aligned allocation.

// Stacks n equal-length vectors as the n columns of a dense matrix.
DenseMatrix stack_columns(
    const std::vector<const std::vector<value_t>*>& cols,
    const AlignedAllocator<value_t>& alloc = {});

// Concatenates matrices with equal row counts side by side ([B0 | B1 | …]).
DenseMatrix concat_columns(const std::vector<const DenseMatrix*>& blocks,
                           const AlignedAllocator<value_t>& alloc = {});

// Copies columns [col0, col0 + ncols) of `m` into a new dense matrix.
DenseMatrix column_block(const DenseMatrix& m, index_t col0, index_t ncols,
                         const AlignedAllocator<value_t>& alloc = {});

// Copies column `c` of `m` out as a vector (an SpMV result un-stacked).
std::vector<value_t> column_of(const DenseMatrix& m, index_t c);

// --- Registry queries (drive the README support matrix and the tests) ---

// True if `k` has a native kernel consuming the sparse operand in `f`
// (other operands dense). SpGEMM reads this per operand.
bool has_native(Kernel k, Format f);

// True if the two-compressed-operand SpMM has a native kernel for the
// exact (A, B) format pair.
bool has_native_pair(Format fa, Format fb);

// The ACF the engine converts to when no native kernel is registered.
Format fallback_format(Kernel k);

// Every format the engine accepts for `k`'s sparse operand (native or
// fallback): the AnyMatrix alternatives for matrix kernels, the AnyTensor
// alternatives for tensor kernels.
std::vector<Format> supported_formats(Kernel k);

}  // namespace mt::exec
