// Async device submission ring — the host/accelerator split of the
// serving stack's device path.
//
// Modeled on a driver's descriptor ring: the host (a Server worker)
// writes job descriptors into a bounded ring and immediately gets a
// monotonic ticket back; device workers (the "accelerator side") drain
// descriptors and execute them on a Backend; the host claims completions
// by ticket — polling (try_poll) or blocking (wait) — instead of blocking
// inside the kernel call. One submitting worker can therefore keep many
// device jobs in flight: submit the whole window, then claim.
//
//   submit(Job) ─► [ slot | slot | slot … ]  ─► device workers ─► Backend
//        │             bounded (backpressure)         │
//        └── Ticket            completions ◄──────────┘
//                  try_poll(t) / wait(t)
//
// Contracts:
//   * Backpressure bounds the *descriptor queue* (jobs accepted but not
//     yet picked up), like a hardware ring's slot count. Jobs being
//     executed and unclaimed completions are NOT counted against the
//     bound, so a submitter may post arbitrarily many jobs before
//     claiming any — submit-all-then-claim-all never deadlocks.
//   * Every accepted ticket completes: stop() closes intake, drains the
//     remaining descriptors through the device workers, joins them, and
//     then wakes all claimers — wait() after (or racing) stop() still
//     returns the job's result. Claims are one-shot: a result is moved
//     out to exactly one claimer.
//   * Operand lifetime: the submitter keeps a Job's borrowed operands
//     alive until that job's ticket is claimed (or the ring is stopped).
//   * In-flight accounting: submitted-but-unclaimed-and-uncompleted jobs
//     (queued + executing). stats().peak_in_flight is the high-water mark
//     — the number the ">1 in flight per worker" acceptance gates on.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "exec/backend.hpp"

namespace mt::exec {

struct RingOptions {
  std::size_t slots = 32;  // descriptor-queue bound (0 clamps to 1)
  int workers = 2;         // device-side executor threads (>= 1)
};

struct RingStats {
  std::int64_t submitted = 0;       // tickets issued
  std::int64_t completed = 0;       // jobs finished (claimed or not)
  std::int64_t in_flight = 0;       // submitted, not yet completed
  std::int64_t peak_in_flight = 0;  // high-water mark of in_flight
};

class DeviceRing {
 public:
  // Tickets are monotonically increasing from 1 in submission order;
  // kInvalidTicket (0) is returned by submit() on a stopped ring.
  using Ticket = std::uint64_t;
  static constexpr Ticket kInvalidTicket = 0;

  explicit DeviceRing(const Backend& device, RingOptions opts = {});
  ~DeviceRing();  // stop()s if still running

  DeviceRing(const DeviceRing&) = delete;
  DeviceRing& operator=(const DeviceRing&) = delete;

  // Blocks while every descriptor slot holds a not-yet-started job
  // (bounded-ring backpressure); returns kInvalidTicket iff the ring was
  // stopped before space opened up (the job is not accepted).
  Ticket submit(Job job) MT_EXCLUDES(mu_);

  // Batched submit: posts a drained batch window of jobs while taking the
  // ring lock once per admitted run instead of once per job. Tickets come
  // back in order (out[i] is jobs[i]'s ticket) and obey the same slot
  // backpressure as submit(): when the descriptor queue is full the call
  // sleeps until device workers free slots, then admits as many more jobs
  // as fit. Executing and unclaimed-completed jobs still don't count
  // against the bound, so submit-all-then-claim-all cannot deadlock. If
  // the ring stops mid-call, every not-yet-admitted job's slot holds
  // kInvalidTicket (those jobs are not accepted).
  std::vector<Ticket> submit_all(std::vector<Job> jobs) MT_EXCLUDES(mu_);

  // Non-blocking claim: true + moves the result out when ticket `t` has
  // completed; false while it is still in flight. Throws
  // std::invalid_argument for a ticket never issued or already claimed,
  // and rethrows the job's exception if it failed.
  bool try_poll(Ticket t, JobResult* out) MT_EXCLUDES(mu_);

  // Blocking claim of ticket `t`: returns the result (or rethrows the
  // job's exception) once the device side completes it. Safe to call
  // concurrently with stop() — accepted jobs drain before workers exit.
  JobResult wait(Ticket t) MT_EXCLUDES(mu_);

  // Closes intake, drains accepted descriptors, joins device workers,
  // wakes every claimer. Idempotent; the destructor calls it.
  void stop() MT_EXCLUDES(mu_);

  RingStats stats() const MT_EXCLUDES(mu_);
  std::size_t slots() const { return slots_; }
  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Completion {
    JobResult result;  // run_ns stamped with the device-side wall time
    std::exception_ptr error;
  };

  void worker_loop() MT_EXCLUDES(mu_);
  // Unwraps a claimed completion, rethrowing a failed job's exception.
  static JobResult claim(Completion&& c);

  const Backend& device_;
  const std::size_t slots_;

  mutable Mutex mu_;
  CondVar space_;       // signaled when a descriptor slot frees up
  CondVar work_;        // signaled when a descriptor is queued / on stop
  CondVar done_;        // signaled when a completion is posted / drained
  std::deque<std::pair<Ticket, Job>> queue_ MT_GUARDED_BY(mu_);
  std::unordered_map<Ticket, Completion> completions_ MT_GUARDED_BY(mu_);
  Ticket next_ticket_ MT_GUARDED_BY(mu_) = 1;
  std::int64_t active_ MT_GUARDED_BY(mu_) = 0;  // jobs being executed
  std::int64_t completed_ MT_GUARDED_BY(mu_) = 0;
  std::int64_t peak_in_flight_ MT_GUARDED_BY(mu_) = 0;
  bool stopping_ MT_GUARDED_BY(mu_) = false;
  bool drained_ MT_GUARDED_BY(mu_) = false;  // workers joined; no more
                                             // completions will arrive

  // Elects the single thread that closes intake and joins workers;
  // latecomers block until drained_ (see stop()).
  std::atomic<bool> stop_requested_{false};

  std::vector<std::thread> workers_;
};

}  // namespace mt::exec
