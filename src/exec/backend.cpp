#include "exec/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "exec/backend_detail.hpp"

namespace mt::exec {

namespace {

// Effective host MAC throughput used when pricing CPU execution: a coarse,
// documented constant (single-threaded scalar fp32 order of magnitude) —
// the point of the number is a stable *relative* scale against the device
// models, not an absolute prediction. The fixed term covers per-call
// dispatch and representation-borrowing overhead.
constexpr double kCpuFlopsPerNs = 2.0;     // ~2 GFLOP/s
constexpr double kCpuDispatchNs = 2000.0;

const EnergyParams& energy_or_default(const EnergyParams* p) {
  static const EnergyParams kDefault{};
  return p == nullptr ? kDefault : *p;
}

class CpuBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::kCpu; }

  JobResult run(const Job& job) const override {
    JobResult r;
    switch (job.kernel) {
      case Kernel::kSpMV:
        MT_REQUIRE(job.a != nullptr && job.vec != nullptr,
                   "SpMV job needs a matrix operand and an input vector");
        r.output = spmv(*job.a, *job.vec, &r.dispatch);
        break;
      case Kernel::kGemm:
      case Kernel::kSpMM:
        // The one run() signature covers both historical SpMM entry
        // points: a second compressed operand when present, the dense
        // factor otherwise.
        MT_REQUIRE(job.a != nullptr &&
                       (job.b != nullptr || job.dense_b != nullptr),
                   "SpMM job needs operand A and a B operand or factor");
        r.output = job.b != nullptr ? spmm(*job.a, *job.b, &r.dispatch)
                                    : spmm(*job.a, *job.dense_b, &r.dispatch);
        break;
      case Kernel::kSpGEMM:
        MT_REQUIRE(job.a != nullptr && job.b != nullptr,
                   "SpGEMM job needs two compressed operands");
        r.output = spgemm(*job.a, *job.b, &r.dispatch);
        break;
      case Kernel::kSpTTM:
        MT_REQUIRE(job.x != nullptr && job.dense_b != nullptr,
                   "SpTTM job needs a tensor operand and a dense factor");
        r.output = ttm(*job.x, *job.dense_b, &r.dispatch);
        break;
      case Kernel::kMTTKRP:
        MT_REQUIRE(job.x != nullptr && job.dense_b != nullptr &&
                       job.dense_c != nullptr,
                   "MTTKRP job needs a tensor operand and two dense factors");
        r.output = mttkrp(*job.x, *job.dense_b, *job.dense_c, &r.dispatch);
        break;
    }
    return r;
  }

  BackendCost price(const PricingInput& in) const override {
    BackendCost c;
    c.ns = kCpuDispatchNs + static_cast<double>(in.flops) / kCpuFlopsPerNs;
    c.energy_j = energy_or_default(in.energy).cpu_tdp_w * c.ns * 1e-9;
    return c;
  }
};

// Modeled offload: CPU kernels produce the bytes (bit-identical to
// CpuBackend), the SAGE/MINT cost model of the plan's winning combination
// produces the latency. With simulate_latency on, run() occupies the
// modeled wall-clock (bounded), which is what lets an async submission
// ring demonstrate real in-flight overlap even on a single-core host.
class MintBackend final : public Backend {
 public:
  explicit MintBackend(const MintBackendOptions& opts) : opts_(opts) {}

  BackendKind kind() const override { return BackendKind::kMint; }

  JobResult run(const Job& job) const override {
    JobResult r = cpu_.run(job);
    r.dispatch.backend = BackendKind::kMint;
    r.dispatch.tier = ExecTier::kDevice;
    r.device_ns = job.modeled_ns;
    if (opts_.simulate_latency && job.modeled_ns > 0) {
      const auto sleep_ns =
          std::min(job.modeled_ns, opts_.max_simulated_latency_ns);
      std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
    }
    return r;
  }

  BackendCost price(const PricingInput& in) const override {
    const EnergyParams& energy = energy_or_default(in.energy);
    BackendCost c;
    if (in.sage_cost != nullptr) {
      // Full offload envelope: DRAM streaming + MINT conversion +
      // accelerator compute of the winning combination.
      c.ns = energy.seconds(in.sage_cost->total_cycles()) * 1e9;
      c.energy_j = in.sage_cost->total_energy_j();
      return c;
    }
    // No SAGE search ran (plain GEMM): dense MACs at the accelerator's
    // full vector rate, plus the PCIe-style transfer setup the offload
    // model charges per job.
    const AccelConfig cfg =
        in.accel != nullptr ? *in.accel : AccelConfig::paper_default();
    const double macs = static_cast<double>(in.flops) / 2.0;
    const double cycles = macs / static_cast<double>(cfg.total_macs());
    c.ns = energy.pcie_latency_s * 1e9 +
           energy.seconds(static_cast<std::int64_t>(cycles)) * 1e9;
    c.energy_j = macs * energy.mac_energy_j(cfg.dtype);
    return c;
  }

 private:
  CpuBackend cpu_;
  MintBackendOptions opts_;
};

}  // namespace

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const MintBackendOptions& mint) {
  switch (kind) {
    case BackendKind::kCpu: return std::make_unique<CpuBackend>();
    case BackendKind::kSim: return detail::make_sim_backend();
    case BackendKind::kMint: return std::make_unique<MintBackend>(mint);
  }
  MT_ENSURE(false, "unknown backend kind");
  return nullptr;
}

namespace {

double span_err(const value_t* a, const value_t* b, std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a[i], y = b[i];
    const double scale = std::max({1.0, std::abs(x), std::abs(y)});
    worst = std::max(worst, std::abs(x - y) / scale);
  }
  return worst;
}

constexpr double kShapeMismatch = std::numeric_limits<double>::infinity();

}  // namespace

double max_rel_error(const JobOutput& a, const JobOutput& b) {
  if (a.index() != b.index()) return kShapeMismatch;
  if (const auto* va = std::get_if<std::vector<value_t>>(&a)) {
    const auto& vb = std::get<std::vector<value_t>>(b);
    if (va->size() != vb.size()) return kShapeMismatch;
    return span_err(va->data(), vb.data(), va->size());
  }
  if (const auto* ma = std::get_if<DenseMatrix>(&a)) {
    const auto& mb = std::get<DenseMatrix>(b);
    if (ma->rows() != mb.rows() || ma->cols() != mb.cols()) {
      return kShapeMismatch;
    }
    return span_err(ma->values().data(), mb.values().data(),
                    static_cast<std::size_t>(ma->size()));
  }
  if (const auto* ca = std::get_if<CsrMatrix>(&a)) {
    const auto& cb = std::get<CsrMatrix>(b);
    if (ca->rows() != cb.rows() || ca->cols() != cb.cols()) {
      return kShapeMismatch;
    }
    // Compare on decoded dense values: the two backends may keep different
    // explicit-zero patterns for the same numerical product.
    const DenseMatrix da = csr_to_dense(*ca), db = csr_to_dense(cb);
    return span_err(da.values().data(), db.values().data(),
                    static_cast<std::size_t>(da.size()));
  }
  const auto& ta = std::get<DenseTensor3>(a);
  const auto& tb = std::get<DenseTensor3>(b);
  if (ta.dim_x() != tb.dim_x() || ta.dim_y() != tb.dim_y() ||
      ta.dim_z() != tb.dim_z()) {
    return kShapeMismatch;
  }
  return span_err(ta.values().data(), tb.values().data(),
                  static_cast<std::size_t>(ta.size()));
}

}  // namespace mt::exec
