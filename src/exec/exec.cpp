#include "exec/exec.hpp"

#include <array>
#include <sstream>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/ttm.hpp"

namespace mt::exec {

namespace {

constexpr std::size_t kNumFormats = 11;
static_assert(static_cast<std::size_t>(Format::kHiCOO) + 1 == kNumFormats,
              "registry tables must cover every Format enumerator");

constexpr std::size_t idx(Format f) { return static_cast<std::size_t>(f); }
constexpr std::size_t pair_idx(Format a, Format b) {
  return idx(a) * kNumFormats + idx(b);
}

using SpmvFn = std::vector<value_t> (*)(const AnyMatrix&,
                                        const std::vector<value_t>&);
using SpmmFn = DenseMatrix (*)(const AnyMatrix&, const DenseMatrix&);
using PairFn = DenseMatrix (*)(const AnyMatrix&, const AnyMatrix&);
using TtmFn = DenseTensor3 (*)(const AnyTensor&, const DenseMatrix&);
using MttkrpFn = DenseMatrix (*)(const AnyTensor&, const DenseMatrix&,
                                 const DenseMatrix&);

// The (Kernel x Format) registry. Each slot wraps a native kernel behind
// the type-erased AnyMatrix/AnyTensor signature; empty slots route to the
// kernel's fallback ACF via convert().
struct Registry {
  std::array<SpmvFn, kNumFormats> spmv{};
  std::array<SpmmFn, kNumFormats> spmm{};  // A-format, B dense
  std::array<PairFn, kNumFormats * kNumFormats> spmm_pair{};
  std::array<TtmFn, kNumFormats> ttm{};
  std::array<MttkrpFn, kNumFormats> mttkrp{};
};

const Registry& registry() {
  static const Registry reg = [] {
    Registry r;

    // SpMV: six native ACFs.
    r.spmv[idx(Format::kCSR)] = [](const AnyMatrix& a,
                                   const std::vector<value_t>& x) {
      return spmv_csr(std::get<CsrMatrix>(a), x);
    };
    r.spmv[idx(Format::kCSC)] = [](const AnyMatrix& a,
                                   const std::vector<value_t>& x) {
      return spmv_csc(std::get<CscMatrix>(a), x);
    };
    r.spmv[idx(Format::kCOO)] = [](const AnyMatrix& a,
                                   const std::vector<value_t>& x) {
      return spmv_coo(std::get<CooMatrix>(a), x);
    };
    r.spmv[idx(Format::kDense)] = [](const AnyMatrix& a,
                                     const std::vector<value_t>& x) {
      return spmv_dense(std::get<DenseMatrix>(a), x);
    };
    r.spmv[idx(Format::kELL)] = [](const AnyMatrix& a,
                                   const std::vector<value_t>& x) {
      return spmv_ell(std::get<EllMatrix>(a), x);
    };
    r.spmv[idx(Format::kBSR)] = [](const AnyMatrix& a,
                                   const std::vector<value_t>& x) {
      return spmv_bsr(std::get<BsrMatrix>(a), x);
    };

    // SpMM with a dense factor: four native A formats.
    r.spmm[idx(Format::kCSR)] = [](const AnyMatrix& a, const DenseMatrix& b) {
      return spmm_csr_dense(std::get<CsrMatrix>(a), b);
    };
    r.spmm[idx(Format::kCSC)] = [](const AnyMatrix& a, const DenseMatrix& b) {
      return spmm_csc_dense(std::get<CscMatrix>(a), b);
    };
    r.spmm[idx(Format::kCOO)] = [](const AnyMatrix& a, const DenseMatrix& b) {
      return spmm_coo_dense(std::get<CooMatrix>(a), b);
    };
    r.spmm[idx(Format::kDense)] = [](const AnyMatrix& a, const DenseMatrix& b) {
      return gemm(std::get<DenseMatrix>(a), b);
    };

    // Two-compressed-operand SpMM: the §III-B ACF pairs.
    r.spmm_pair[pair_idx(Format::kDense, Format::kDense)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return gemm(std::get<DenseMatrix>(a), std::get<DenseMatrix>(b));
        };
    r.spmm_pair[pair_idx(Format::kCOO, Format::kDense)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return spmm_coo_dense(std::get<CooMatrix>(a),
                                std::get<DenseMatrix>(b));
        };
    r.spmm_pair[pair_idx(Format::kCSR, Format::kDense)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return spmm_csr_dense(std::get<CsrMatrix>(a),
                                std::get<DenseMatrix>(b));
        };
    r.spmm_pair[pair_idx(Format::kCSC, Format::kDense)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return spmm_csc_dense(std::get<CscMatrix>(a),
                                std::get<DenseMatrix>(b));
        };
    r.spmm_pair[pair_idx(Format::kDense, Format::kCSC)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return spmm_dense_csc(std::get<DenseMatrix>(a),
                                std::get<CscMatrix>(b));
        };
    r.spmm_pair[pair_idx(Format::kCSR, Format::kCSC)] =
        [](const AnyMatrix& a, const AnyMatrix& b) {
          return spmm_csr_csc(std::get<CsrMatrix>(a), std::get<CscMatrix>(b));
        };

    // SpTTM: three native tensor ACFs.
    r.ttm[idx(Format::kCOO)] = [](const AnyTensor& x, const DenseMatrix& u) {
      return spttm_coo(std::get<CooTensor3>(x), u);
    };
    r.ttm[idx(Format::kCSF)] = [](const AnyTensor& x, const DenseMatrix& u) {
      return spttm_csf(std::get<CsfTensor3>(x), u);
    };
    r.ttm[idx(Format::kDense)] = [](const AnyTensor& x, const DenseMatrix& u) {
      return ttm_dense(std::get<DenseTensor3>(x), u);
    };

    // MTTKRP: four native tensor ACFs (HiCOO beyond the seed set).
    r.mttkrp[idx(Format::kCOO)] = [](const AnyTensor& x, const DenseMatrix& b,
                                     const DenseMatrix& c) {
      return mttkrp_coo(std::get<CooTensor3>(x), b, c);
    };
    r.mttkrp[idx(Format::kCSF)] = [](const AnyTensor& x, const DenseMatrix& b,
                                     const DenseMatrix& c) {
      return mttkrp_csf(std::get<CsfTensor3>(x), b, c);
    };
    r.mttkrp[idx(Format::kHiCOO)] = [](const AnyTensor& x,
                                       const DenseMatrix& b,
                                       const DenseMatrix& c) {
      return mttkrp_hicoo(std::get<HicooTensor3>(x), b, c);
    };
    r.mttkrp[idx(Format::kDense)] = [](const AnyTensor& x,
                                       const DenseMatrix& b,
                                       const DenseMatrix& c) {
      return mttkrp_dense(std::get<DenseTensor3>(x), b, c);
    };
    return r;
  }();
  return reg;
}

Dispatch make_dispatch(Kernel k, Format fa) {
  Dispatch d;
  d.kernel = k;
  d.given_a = d.ran_a = fa;
  d.backend = BackendKind::kCpu;
  d.tier = simd_enabled() ? ExecTier::kSimd : ExecTier::kScalar;
  return d;
}

Dispatch make_pair_dispatch(Kernel k, Format fa, Format fb) {
  Dispatch d = make_dispatch(k, fa);
  d.has_b = true;
  d.given_b = d.ran_b = fb;
  return d;
}

}  // namespace

std::string Dispatch::describe() const {
  std::ostringstream os;
  os << name_of(kernel) << " over " << name_of(given_a);
  if (has_b) os << '/' << name_of(given_b);
  os << ": " << name_of(path);
  if (path == Path::kFallback) {
    os << " via " << name_of(ran_a);
    if (has_b) os << '/' << name_of(ran_b);
  }
  return os.str();
}

std::vector<value_t> spmv(const AnyMatrix& a, const std::vector<value_t>& x,
                          Dispatch* d) {
  const Format f = format_of(a);
  auto info = make_dispatch(Kernel::kSpMV, f);
  const auto& reg = registry();
  if (SpmvFn fn = reg.spmv[idx(f)]) {
    if (d != nullptr) *d = info;
    return fn(a, x);
  }
  info.path = Path::kFallback;
  info.ran_a = fallback_format(Kernel::kSpMV);
  if (d != nullptr) *d = info;
  return reg.spmv[idx(info.ran_a)](convert(a, info.ran_a), x);
}

DenseMatrix spmm(const AnyMatrix& a, const DenseMatrix& b, Dispatch* d) {
  const Format f = format_of(a);
  auto info = make_dispatch(Kernel::kSpMM, f);
  const auto& reg = registry();
  if (SpmmFn fn = reg.spmm[idx(f)]) {
    if (d != nullptr) *d = info;
    return fn(a, b);
  }
  info.path = Path::kFallback;
  info.ran_a = fallback_format(Kernel::kSpMM);
  if (d != nullptr) *d = info;
  return reg.spmm[idx(info.ran_a)](convert(a, info.ran_a), b);
}

DenseMatrix spmm(const AnyMatrix& a, const AnyMatrix& b, Dispatch* d) {
  const Format fa = format_of(a), fb = format_of(b);
  // Dense x Dense is the GEMM kernel; report it as such.
  const Kernel k = fa == Format::kDense && fb == Format::kDense
                       ? Kernel::kGemm
                       : Kernel::kSpMM;
  auto info = make_pair_dispatch(k, fa, fb);
  const auto& reg = registry();
  if (PairFn fn = reg.spmm_pair[pair_idx(fa, fb)]) {
    if (d != nullptr) *d = info;
    return fn(a, b);
  }
  info.path = Path::kFallback;
  // Cheapest repair first: keep A native and densify B, then re-format A
  // to CSR keeping B, then convert both.
  if (reg.spmm_pair[pair_idx(fa, Format::kDense)] != nullptr) {
    info.ran_b = Format::kDense;
    if (d != nullptr) *d = info;
    return reg.spmm_pair[pair_idx(fa, Format::kDense)](
        a, AnyMatrix(decode(b)));
  }
  if (reg.spmm_pair[pair_idx(Format::kCSR, fb)] != nullptr) {
    info.ran_a = Format::kCSR;
    if (d != nullptr) *d = info;
    return reg.spmm_pair[pair_idx(Format::kCSR, fb)](convert(a, Format::kCSR),
                                                     b);
  }
  info.ran_a = Format::kCSR;
  info.ran_b = Format::kDense;
  if (d != nullptr) *d = info;
  return spmm_csr_dense(std::get<CsrMatrix>(convert(a, Format::kCSR)),
                        decode(b));
}

CsrMatrix spgemm(const AnyMatrix& a, const AnyMatrix& b, Dispatch* d) {
  const Format fa = format_of(a), fb = format_of(b);
  auto info = make_pair_dispatch(Kernel::kSpGEMM, fa, fb);
  const CsrMatrix* pa = std::get_if<CsrMatrix>(&a);
  const CsrMatrix* pb = std::get_if<CsrMatrix>(&b);
  CsrMatrix ca, cb;
  if (pa == nullptr) {
    ca = std::get<CsrMatrix>(convert(a, Format::kCSR));
    pa = &ca;
    info.path = Path::kFallback;
    info.ran_a = Format::kCSR;
  }
  if (pb == nullptr) {
    cb = std::get<CsrMatrix>(convert(b, Format::kCSR));
    pb = &cb;
    info.path = Path::kFallback;
    info.ran_b = Format::kCSR;
  }
  if (d != nullptr) *d = info;
  return spgemm_csr(*pa, *pb);
}

DenseTensor3 ttm(const AnyTensor& x, const DenseMatrix& u, Dispatch* d) {
  const Format f = format_of(x);
  auto info = make_dispatch(Kernel::kSpTTM, f);
  const auto& reg = registry();
  if (TtmFn fn = reg.ttm[idx(f)]) {
    if (d != nullptr) *d = info;
    return fn(x, u);
  }
  info.path = Path::kFallback;
  info.ran_a = fallback_format(Kernel::kSpTTM);
  if (d != nullptr) *d = info;
  return reg.ttm[idx(info.ran_a)](convert(x, info.ran_a), u);
}

DenseMatrix mttkrp(const AnyTensor& x, const DenseMatrix& b,
                   const DenseMatrix& c, Dispatch* d) {
  const Format f = format_of(x);
  auto info = make_dispatch(Kernel::kMTTKRP, f);
  const auto& reg = registry();
  if (MttkrpFn fn = reg.mttkrp[idx(f)]) {
    if (d != nullptr) *d = info;
    return fn(x, b, c);
  }
  info.path = Path::kFallback;
  info.ran_a = fallback_format(Kernel::kMTTKRP);
  if (d != nullptr) *d = info;
  return reg.mttkrp[idx(info.ran_a)](convert(x, info.ran_a), b, c);
}

DenseMatrix stack_columns(
    const std::vector<const std::vector<value_t>*>& cols,
    const AlignedAllocator<value_t>& alloc) {
  MT_REQUIRE(!cols.empty(), "stack_columns needs at least one vector");
  const index_t rows = static_cast<index_t>(cols.front()->size());
  const index_t n = static_cast<index_t>(cols.size());
  DenseMatrix out(rows, n, 0.0f, alloc);
  value_t* po = out.values().data();
  for (index_t j = 0; j < n; ++j) {
    const auto& col = *cols[static_cast<std::size_t>(j)];
    MT_REQUIRE(static_cast<index_t>(col.size()) == rows,
               "stacked vectors must share one length");
    for (index_t r = 0; r < rows; ++r) {
      po[r * n + j] = col[static_cast<std::size_t>(r)];
    }
  }
  return out;
}

DenseMatrix concat_columns(const std::vector<const DenseMatrix*>& blocks,
                           const AlignedAllocator<value_t>& alloc) {
  MT_REQUIRE(!blocks.empty(), "concat_columns needs at least one block");
  const index_t rows = blocks.front()->rows();
  index_t total = 0;
  for (const auto* b : blocks) {
    MT_REQUIRE(b->rows() == rows, "concatenated blocks must share row count");
    total += b->cols();
  }
  DenseMatrix out(rows, total, 0.0f, alloc);
  value_t* po = out.values().data();
  index_t at = 0;
  for (const auto* b : blocks) {
    const index_t w = b->cols();
    const value_t* pb = b->values().data();
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c = 0; c < w; ++c) {
        po[r * total + at + c] = pb[r * w + c];
      }
    }
    at += w;
  }
  return out;
}

DenseMatrix column_block(const DenseMatrix& m, index_t col0, index_t ncols,
                         const AlignedAllocator<value_t>& alloc) {
  MT_REQUIRE(col0 >= 0 && ncols >= 0 && col0 + ncols <= m.cols(),
             "column block must lie inside the matrix");
  DenseMatrix out(m.rows(), ncols, 0.0f, alloc);
  const value_t* pm = m.values().data();
  value_t* po = out.values().data();
  const index_t stride = m.cols();
  for (index_t r = 0; r < m.rows(); ++r) {
    for (index_t c = 0; c < ncols; ++c) {
      po[r * ncols + c] = pm[r * stride + col0 + c];
    }
  }
  return out;
}

std::vector<value_t> column_of(const DenseMatrix& m, index_t c) {
  MT_REQUIRE(c >= 0 && c < m.cols(), "column index in range");
  std::vector<value_t> out(static_cast<std::size_t>(m.rows()));
  const value_t* pm = m.values().data();
  const index_t stride = m.cols();
  for (index_t r = 0; r < m.rows(); ++r) {
    out[static_cast<std::size_t>(r)] = pm[r * stride + c];
  }
  return out;
}

bool has_native(Kernel k, Format f) {
  const auto& reg = registry();
  switch (k) {
    case Kernel::kGemm: return f == Format::kDense;
    case Kernel::kSpMV: return reg.spmv[idx(f)] != nullptr;
    case Kernel::kSpMM: return reg.spmm[idx(f)] != nullptr;
    case Kernel::kSpGEMM: return f == Format::kCSR;
    case Kernel::kSpTTM: return reg.ttm[idx(f)] != nullptr;
    case Kernel::kMTTKRP: return reg.mttkrp[idx(f)] != nullptr;
  }
  return false;
}

bool has_native_pair(Format fa, Format fb) {
  return registry().spmm_pair[pair_idx(fa, fb)] != nullptr;
}

Format fallback_format(Kernel k) {
  switch (k) {
    case Kernel::kGemm: return Format::kDense;
    case Kernel::kSpMV:
    case Kernel::kSpMM:
    case Kernel::kSpGEMM: return Format::kCSR;
    case Kernel::kSpTTM:
    case Kernel::kMTTKRP: return Format::kCSF;
  }
  return Format::kDense;
}

std::vector<Format> supported_formats(Kernel k) {
  if (k == Kernel::kGemm) return {Format::kDense};
  if (is_tensor_kernel(k)) {
    return {Format::kDense, Format::kCOO, Format::kCSF,
            Format::kHiCOO, Format::kZVC, Format::kRLC};
  }
  return {Format::kDense, Format::kCOO, Format::kCSR,
          Format::kCSC,   Format::kRLC, Format::kZVC,
          Format::kBSR,   Format::kDIA, Format::kELL};
}

}  // namespace mt::exec
