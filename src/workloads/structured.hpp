// Structured-sparsity generators.
//
// The paper's performance model assumes uniform random sparsity and
// defers structured formats (DIA, BSR, HiCOO, ELLPACK) to future work —
// but the *storage* story of those formats only shows up on structured
// data. These generators produce the two canonical structures: banded
// operators (stencils/PDE matrices, where DIA shines) and block-sparse
// matrices (structured pruning, where BSR shines).
#pragma once

#include <cstdint>

#include "formats/dense.hpp"

namespace mt {

// Banded matrix: `bands` diagonals clustered around the main diagonal,
// fully populated (classic finite-difference stencil shape).
DenseMatrix synth_banded_matrix(index_t n, index_t bands, std::uint64_t seed);

// Block-sparse matrix: dense blocks of block_rows x block_cols, with a
// `block_density` fraction of blocks populated (structured pruning shape).
DenseMatrix synth_block_sparse_matrix(index_t rows, index_t cols,
                                      index_t block_rows, index_t block_cols,
                                      double block_density,
                                      std::uint64_t seed);

// Row-balanced matrix: every row holds exactly `row_nnz` nonzeros at
// random columns (the best case for ELLPACK: zero padding).
DenseMatrix synth_row_balanced_matrix(index_t rows, index_t cols,
                                      index_t row_nnz, std::uint64_t seed);

}  // namespace mt
