// The CNN case-study layer table (paper Fig. 14a): eight ResNet-50
// convolution layers trained on CIFAR-10, with the measured input
// activation and weight sparsities under three pruning strategies.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mt {

enum class PruneStrategy : std::uint8_t {
  kNormal,        // no weight pruning
  kLayer50,       // L1 unstructured, 50% per layer (0.29% accuracy loss)
  kGlobal70,      // L1 unstructured, 70% global (0.74% accuracy loss)
};

constexpr std::string_view name_of(PruneStrategy s) {
  switch (s) {
    case PruneStrategy::kNormal: return "Normal";
    case PruneStrategy::kLayer50: return "50% Prune (layer)";
    case PruneStrategy::kGlobal70: return "70% Prune (global)";
  }
  return "?";
}

inline constexpr std::array<PruneStrategy, 3> kAllPruneStrategies = {
    PruneStrategy::kNormal, PruneStrategy::kLayer50, PruneStrategy::kGlobal70};

struct ConvLayer {
  int layer_id = 0;
  index_t c_in = 0;    // input channels C
  index_t k_out = 0;   // output channels K
  index_t h = 0, w = 0;  // input activation spatial dims
  index_t r = 0, s = 0;  // filter spatial dims
  // Fractions of *zero* elements (the paper reports sparsity percent).
  std::array<double, 3> act_sparsity{};  // indexed by PruneStrategy
  std::array<double, 3> wgt_sparsity{};

  double act_density(PruneStrategy p) const {
    return 1.0 - act_sparsity[static_cast<std::size_t>(p)];
  }
  double wgt_density(PruneStrategy p) const {
    return 1.0 - wgt_sparsity[static_cast<std::size_t>(p)];
  }
};

// The eight rows of Fig. 14a (stride 1 throughout).
const std::vector<ConvLayer>& resnet50_cifar10_layers();

// im2col GEMM shape for a conv layer at the given batch size, with 'same'
// padding (the input (H, W) in Fig. 14a is preserved by stride-1 convs):
//   weights  : M = K_out        x  K = C*R*S   (sparse after pruning)
//   activations: K = C*R*S      x  N = H*W*batch (sparse after ReLU)
struct GemmShape {
  index_t m = 0, k = 0, n = 0;
};
GemmShape im2col_gemm_shape(const ConvLayer& l, index_t batch);

}  // namespace mt
