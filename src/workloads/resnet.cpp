#include "workloads/resnet.hpp"

namespace mt {

const std::vector<ConvLayer>& resnet50_cifar10_layers() {
  // Columns of Fig. 14a, sparsities converted from percent to fractions.
  // act_sparsity / wgt_sparsity order: {Normal, 50% layer, 70% global}.
  static const std::vector<ConvLayer> kLayers = {
      {1, 3, 64, 32, 32, 3, 3, {0.000, 0.000, 0.000}, {0.000, 0.500, 0.454}},
      {2, 64, 256, 32, 32, 1, 1, {0.566, 0.555, 0.550}, {0.000, 0.500, 0.748}},
      {3, 128, 512, 16, 16, 1, 1, {0.631, 0.592, 0.604}, {0.000, 0.500, 0.634}},
      {4, 128, 128, 16, 16, 3, 3, {0.526, 0.520, 0.523}, {0.000, 0.500, 0.353}},
      {5, 1024, 256, 8, 8, 1, 1, {0.602, 0.570, 0.598}, {0.000, 0.500, 0.499}},
      {6, 256, 256, 8, 8, 3, 3, {0.594, 0.565, 0.570}, {0.000, 0.500, 0.383}},
      {7, 512, 2048, 4, 4, 1, 1, {0.640, 0.610, 0.410}, {0.000, 0.500, 0.882}},
      {8, 512, 512, 4, 4, 3, 3, {0.492, 0.478, 0.436}, {0.000, 0.500, 0.984}},
  };
  return kLayers;
}

GemmShape im2col_gemm_shape(const ConvLayer& l, index_t batch) {
  return {l.k_out, l.c_in * l.r * l.s, l.h * l.w * batch};
}

}  // namespace mt
