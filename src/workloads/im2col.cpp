#include "workloads/im2col.hpp"

#include "common/error.hpp"
#include "kernels/gemm.hpp"

namespace mt {

namespace {
index_t out_dim(index_t in, index_t filt, index_t pad) {
  return in + 2 * pad - filt + 1;
}
}  // namespace

DenseMatrix im2col(const DenseTensor3& input, index_t r, index_t s,
                   index_t pad) {
  const index_t c = input.dim_x(), h = input.dim_y(), w = input.dim_z();
  const index_t ho = out_dim(h, r, pad), wo = out_dim(w, s, pad);
  MT_REQUIRE(ho > 0 && wo > 0, "filter larger than padded input");
  DenseMatrix col(c * r * s, ho * wo);
  for (index_t ci = 0; ci < c; ++ci) {
    for (index_t ri = 0; ri < r; ++ri) {
      for (index_t si = 0; si < s; ++si) {
        const index_t row = (ci * r + ri) * s + si;
        for (index_t y = 0; y < ho; ++y) {
          for (index_t x = 0; x < wo; ++x) {
            const index_t iy = y + ri - pad;
            const index_t ix = x + si - pad;
            const value_t v = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                  ? input.at(ci, iy, ix)
                                  : 0.0f;
            col.set(row, y * wo + x, v);
          }
        }
      }
    }
  }
  return col;
}

DenseTensor3 conv2d_reference(const DenseTensor3& input,
                              const DenseMatrix& filters, index_t r, index_t s,
                              index_t pad) {
  const index_t c = input.dim_x(), h = input.dim_y(), w = input.dim_z();
  MT_REQUIRE(filters.cols() == c * r * s,
             "filters must have C*R*S columns");
  const index_t ko = filters.rows();
  const index_t ho = out_dim(h, r, pad), wo = out_dim(w, s, pad);
  DenseTensor3 out(ko, ho, wo);
  for (index_t f = 0; f < ko; ++f) {
    for (index_t y = 0; y < ho; ++y) {
      for (index_t x = 0; x < wo; ++x) {
        value_t acc = 0.0f;
        for (index_t ci = 0; ci < c; ++ci) {
          for (index_t ri = 0; ri < r; ++ri) {
            for (index_t si = 0; si < s; ++si) {
              const index_t iy = y + ri - pad;
              const index_t ix = x + si - pad;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
              acc += input.at(ci, iy, ix) *
                     filters.at(f, (ci * r + ri) * s + si);
            }
          }
        }
        out.set(f, y, x, acc);
      }
    }
  }
  return out;
}

DenseTensor3 conv2d_im2col(const DenseTensor3& input,
                           const DenseMatrix& filters, index_t r, index_t s,
                           index_t pad) {
  const auto col = im2col(input, r, s, pad);
  const auto o = gemm(filters, col);  // (K_out) x (H_out*W_out)
  const index_t ho = out_dim(input.dim_y(), r, pad);
  const index_t wo = out_dim(input.dim_z(), s, pad);
  DenseTensor3 out(filters.rows(), ho, wo);
  out.values().assign(o.values().begin(), o.values().end());
  return out;
}

}  // namespace mt
