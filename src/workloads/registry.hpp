// The paper's evaluation workloads (Table III), recorded by shape and
// nonzero count.
//
// The original matrices/tensors come from SuiteSparse, DeepBench, FROSTT
// and BrainQ; offline we synthesize uniform-random tensors with identical
// dimensions and nnz (see DESIGN.md "Substitutions" — the paper's own
// models assume uniform random placement for unstructured formats, so the
// selection and performance behaviour is preserved).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace mt {

struct MatrixWorkload {
  std::string name;
  std::string source;  // dataset of origin in the paper
  index_t m = 0;       // rows of the sparse operand A
  index_t k = 0;       // cols of A
  std::int64_t nnz = 0;

  double density() const {
    return static_cast<double>(nnz) /
           (static_cast<double>(m) * static_cast<double>(k));
  }
};

struct TensorWorkload {
  std::string name;
  std::string source;
  index_t x = 0, y = 0, z = 0;
  std::int64_t nnz = 0;
  Kernel kernel = Kernel::kSpTTM;  // which tensor kernel Table III runs

  double density() const {
    return static_cast<double>(nnz) / (static_cast<double>(x) *
                                       static_cast<double>(y) *
                                       static_cast<double>(z));
  }
};

// The ten matrix rows of Table III, in the paper's order (journal ->
// m3plates, spanning densities 78.5% down to 5.4e-3%).
const std::vector<MatrixWorkload>& table3_matrices();

// The three tensor rows (BrainQ SpTTM, Crime/Uber MTTKRP).
const std::vector<TensorWorkload>& table3_tensors();

// Lookup by name; throws if unknown.
const MatrixWorkload& matrix_workload(const std::string& name);
const TensorWorkload& tensor_workload(const std::string& name);

// The paper generalizes the factor matrices multiplied against each
// workload to dimensions K x (M/2).
index_t factor_cols(index_t m);

}  // namespace mt
