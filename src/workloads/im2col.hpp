// Functional im2col: lowers a convolution to GEMM exactly the way the
// paper's case study does ("Like TPU, we use im2col to convert
// convolutions to GEMM operations", §VII-D).
#pragma once

#include "formats/dense.hpp"
#include "formats/tensor_dense.hpp"

namespace mt {

// Input feature map is a (C, H, W) tensor; filters are given as a
// (K_out x C*R*S) matrix (one flattened filter per row).

// Unrolls the input into a (C*R*S) x (H_out*W_out) matrix for stride-1
// convolution with `pad` zero-padding on each side.
DenseMatrix im2col(const DenseTensor3& input, index_t r, index_t s,
                   index_t pad);

// Direct sliding-window convolution used as the oracle; returns a
// (K_out, H_out, W_out) tensor.
DenseTensor3 conv2d_reference(const DenseTensor3& input,
                              const DenseMatrix& filters, index_t r, index_t s,
                              index_t pad);

// conv via im2col + GEMM; must equal conv2d_reference.
DenseTensor3 conv2d_im2col(const DenseTensor3& input,
                           const DenseMatrix& filters, index_t r, index_t s,
                           index_t pad);

}  // namespace mt
