#include "workloads/structured.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mt {

DenseMatrix synth_banded_matrix(index_t n, index_t bands, std::uint64_t seed) {
  MT_REQUIRE(bands >= 1 && bands <= 2 * n - 1, "band count within matrix");
  Prng rng(seed);
  DenseMatrix d(n, n);
  // Offsets alternate 0, +1, -1, +2, -2, ... around the main diagonal.
  for (index_t i = 0; i < bands; ++i) {
    const index_t off = (i + 1) / 2 * ((i % 2) != 0 ? 1 : -1);
    for (index_t r = 0; r < n; ++r) {
      const index_t c = r + off;
      if (c >= 0 && c < n) d.set(r, c, rng.next_value());
    }
  }
  return d;
}

DenseMatrix synth_block_sparse_matrix(index_t rows, index_t cols,
                                      index_t block_rows, index_t block_cols,
                                      double block_density,
                                      std::uint64_t seed) {
  MT_REQUIRE(block_rows > 0 && block_cols > 0, "positive block dims");
  MT_REQUIRE(block_density >= 0.0 && block_density <= 1.0,
             "block density in [0,1]");
  Prng rng(seed);
  DenseMatrix d(rows, cols);
  const index_t grid_rows = (rows + block_rows - 1) / block_rows;
  const index_t grid_cols = (cols + block_cols - 1) / block_cols;
  const auto total = static_cast<std::uint64_t>(grid_rows * grid_cols);
  const auto k = static_cast<std::uint64_t>(
      block_density * static_cast<double>(total) + 0.5);
  for (std::uint64_t p : rng.sample_distinct(total, k)) {
    const index_t gr = static_cast<index_t>(p) / grid_cols;
    const index_t gc = static_cast<index_t>(p) % grid_cols;
    for (index_t r = gr * block_rows; r < std::min((gr + 1) * block_rows, rows); ++r) {
      for (index_t c = gc * block_cols; c < std::min((gc + 1) * block_cols, cols); ++c) {
        d.set(r, c, rng.next_value());
      }
    }
  }
  return d;
}

DenseMatrix synth_row_balanced_matrix(index_t rows, index_t cols,
                                      index_t row_nnz, std::uint64_t seed) {
  MT_REQUIRE(row_nnz >= 0 && row_nnz <= cols, "row nnz within row");
  Prng rng(seed);
  DenseMatrix d(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (std::uint64_t c : rng.sample_distinct(
             static_cast<std::uint64_t>(cols),
             static_cast<std::uint64_t>(row_nnz))) {
      d.set(r, static_cast<index_t>(c), rng.next_value());
    }
  }
  return d;
}

}  // namespace mt
