#include "workloads/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mt {

const std::vector<MatrixWorkload>& table3_matrices() {
  // Dimensions and nnz exactly as printed in Table III.
  static const std::vector<MatrixWorkload> kRows = {
      {"journal", "SuiteSparse", 124, 124, 12'000},
      {"bibd", "SuiteSparse", 171, 92'000, 3'300'000},
      {"dendrimer", "SuiteSparse", 730, 730, 63'000},
      {"speech1", "DeepBench", 11'000, 3'600, 3'900'000},
      {"speech2", "DeepBench", 7'700, 2'600, 1'000'000},
      {"nd3k", "SuiteSparse", 9'000, 9'000, 3'300'000},
      {"cavity14", "SuiteSparse", 2'600, 2'600, 76'000},
      {"model3", "SuiteSparse", 1'600, 4'600, 24'000},
      {"cat_ears", "SuiteSparse", 5'200, 13'200, 40'000},
      {"m3plates", "SuiteSparse", 11'000, 11'000, 6'600},
  };
  return kRows;
}

const std::vector<TensorWorkload>& table3_tensors() {
  static const std::vector<TensorWorkload> kRows = {
      {"BrainQ", "BrainQ", 60, 70'000, 9, 11'000'000, Kernel::kSpTTM},
      {"Crime", "FROSTT", 6'200, 24, 2'500, 5'200'000, Kernel::kMTTKRP},
      {"Uber", "FROSTT", 4'400, 1'100, 1'700, 3'300'000, Kernel::kMTTKRP},
  };
  return kRows;
}

const MatrixWorkload& matrix_workload(const std::string& name) {
  const auto& rows = table3_matrices();
  const auto it = std::find_if(rows.begin(), rows.end(),
                               [&](const auto& w) { return w.name == name; });
  MT_REQUIRE(it != rows.end(), "unknown matrix workload: " + name);
  return *it;
}

const TensorWorkload& tensor_workload(const std::string& name) {
  const auto& rows = table3_tensors();
  const auto it = std::find_if(rows.begin(), rows.end(),
                               [&](const auto& w) { return w.name == name; });
  MT_REQUIRE(it != rows.end(), "unknown tensor workload: " + name);
  return *it;
}

index_t factor_cols(index_t m) { return std::max<index_t>(1, m / 2); }

}  // namespace mt
