#include "workloads/synth.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mt {

CooMatrix synth_coo_matrix(index_t m, index_t k, std::int64_t nnz,
                           std::uint64_t seed) {
  MT_REQUIRE(m > 0 && k > 0, "positive dimensions");
  Prng rng(seed);
  const auto cells = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k);
  const auto positions = rng.sample_distinct(cells, static_cast<std::uint64_t>(nnz));
  std::vector<index_t> rows, cols;
  std::vector<value_t> vals;
  rows.reserve(positions.size());
  cols.reserve(positions.size());
  vals.reserve(positions.size());
  for (std::uint64_t p : positions) {
    rows.push_back(static_cast<index_t>(p / static_cast<std::uint64_t>(k)));
    cols.push_back(static_cast<index_t>(p % static_cast<std::uint64_t>(k)));
    vals.push_back(rng.next_value());
  }
  return CooMatrix::from_entries(m, k, std::move(rows), std::move(cols),
                                 std::move(vals));
}

CooMatrix synth_coo_matrix(const MatrixWorkload& w, std::uint64_t seed) {
  return synth_coo_matrix(w.m, w.k, w.nnz, seed);
}

CooTensor3 synth_coo_tensor(index_t x, index_t y, index_t z, std::int64_t nnz,
                            std::uint64_t seed) {
  MT_REQUIRE(x > 0 && y > 0 && z > 0, "positive dimensions");
  Prng rng(seed);
  const auto cells = static_cast<std::uint64_t>(x) *
                     static_cast<std::uint64_t>(y) *
                     static_cast<std::uint64_t>(z);
  const auto positions = rng.sample_distinct(cells, static_cast<std::uint64_t>(nnz));
  std::vector<index_t> xs, ys, zs;
  std::vector<value_t> vals;
  xs.reserve(positions.size());
  for (std::uint64_t p : positions) {
    zs.push_back(static_cast<index_t>(p % static_cast<std::uint64_t>(z)));
    const std::uint64_t q = p / static_cast<std::uint64_t>(z);
    ys.push_back(static_cast<index_t>(q % static_cast<std::uint64_t>(y)));
    xs.push_back(static_cast<index_t>(q / static_cast<std::uint64_t>(y)));
    vals.push_back(rng.next_value());
  }
  return CooTensor3::from_entries(x, y, z, std::move(xs), std::move(ys),
                                  std::move(zs), std::move(vals));
}

CooTensor3 synth_coo_tensor(const TensorWorkload& w, std::uint64_t seed) {
  return synth_coo_tensor(w.x, w.y, w.z, w.nnz, seed);
}

DenseMatrix synth_dense_matrix(index_t m, index_t k, double density,
                               std::uint64_t seed) {
  MT_REQUIRE(density >= 0.0 && density <= 1.0, "density in [0,1]");
  const auto nnz = static_cast<std::int64_t>(
      density * static_cast<double>(m) * static_cast<double>(k) + 0.5);
  return synth_coo_matrix(m, k, nnz, seed).to_dense();
}

}  // namespace mt
