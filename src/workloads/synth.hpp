// Seeded synthetic operand generators.
//
// Generation is O(nnz) regardless of the dense cell count, so even the
// Uber tensor (8.2e9 cells, 3.3M nonzeros) materializes in compressed form
// without touching a dense intermediate. Values are uniform in [0.5, 1.5)
// to keep fp32 accumulation well-conditioned in correctness checks.
#pragma once

#include <cstdint>

#include "formats/coo.hpp"
#include "formats/dense.hpp"
#include "formats/tensor_coo.hpp"
#include "workloads/registry.hpp"

namespace mt {

// nnz uniformly placed cells in an m x k matrix.
CooMatrix synth_coo_matrix(index_t m, index_t k, std::int64_t nnz,
                           std::uint64_t seed);
CooMatrix synth_coo_matrix(const MatrixWorkload& w, std::uint64_t seed);

// nnz uniformly placed cells in an x*y*z tensor.
CooTensor3 synth_coo_tensor(index_t x, index_t y, index_t z, std::int64_t nnz,
                            std::uint64_t seed);
CooTensor3 synth_coo_tensor(const TensorWorkload& w, std::uint64_t seed);

// Dense matrix with round(density * m * k) nonzeros (small operands only).
DenseMatrix synth_dense_matrix(index_t m, index_t k, double density,
                               std::uint64_t seed);

}  // namespace mt
