// Bus packing: how a streamed operand is serialized over the broadcast
// bus under each ACF (paper Fig. 6).
//
// Packet grammar per cycle (slots = bus elements/cycle):
//   Dense A : [row_id | v v v ...]            up to slots-1 values, one row
//   CSR A   : [row_id | (v,col) (v,col) ...]  up to (slots-1)/2 pairs, one row
//   COO A   : [(v,row,col) ...]               up to slots/3 triplets, any rows
// A packet never spans rows for Dense/CSR (the shared row_id header is
// what makes the packing compact — and why Fig. 6b needs an extra cycle
// when the row id changes mid-bus, the paper's 'C'/'H' case).
#pragma once

#include <vector>

#include "accel/config.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"

namespace mt {

// One streamed element with its coordinates resolved. For Dense streams
// zero-valued elements appear explicitly (they occupy bus slots and MACs).
struct StreamElem {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0f;
};

struct BusPacket {
  std::vector<StreamElem> elems;
};

// Streaming ACFs supported by the extended PEs for the moving operand.
constexpr bool is_stream_acf(Format f) {
  return f == Format::kDense || f == Format::kCSR || f == Format::kCOO;
}
// Stationary ACFs supported for the resident operand (paper Fig. 6 and
// every ACFf entry of Table III use Dense or CSC).
constexpr bool is_stationary_acf(Format f) {
  return f == Format::kDense || f == Format::kCSC;
}

// Materializes the packet sequence for streaming matrix `a` (given as
// sorted COO plus its dense dimensions) restricted to columns
// [k_lo, k_hi). Used by the functional cycle simulator (small operands).
std::vector<BusPacket> pack_stream(const CooMatrix& a, Format acf,
                                   const AccelConfig& cfg, index_t k_lo,
                                   index_t k_hi);

// Cycle count of the same packing without materializing packets — the
// closed form the analytic model uses; must equal pack_stream(...).size().
std::int64_t stream_cycles(const CooMatrix& a, Format acf,
                           const AccelConfig& cfg, index_t k_lo, index_t k_hi);

// Elements per cycle devoted to payload under each ACF (for bus-occupancy
// and energy accounting).
index_t payload_per_packet(Format acf, const AccelConfig& cfg);

}  // namespace mt
