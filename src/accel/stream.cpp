#include "accel/stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mt {

index_t payload_per_packet(Format acf, const AccelConfig& cfg) {
  const index_t slots = cfg.bus_slots();
  switch (acf) {
    case Format::kDense: return slots - 1;            // header + values
    case Format::kCSR: return (slots - 1) / 2;        // header + (v,col) pairs
    case Format::kCOO: return slots / 3;              // (v,row,col) triplets
    default: MT_REQUIRE(false, "not a streaming ACF");
  }
  return 0;
}

std::vector<BusPacket> pack_stream(const CooMatrix& a, Format acf,
                                   const AccelConfig& cfg, index_t k_lo,
                                   index_t k_hi) {
  MT_REQUIRE(is_stream_acf(acf), "streaming ACF must be Dense/CSR/COO");
  MT_REQUIRE(a.is_row_major_sorted(), "stream source must be row-major COO");
  MT_REQUIRE(k_lo >= 0 && k_lo <= k_hi && k_hi <= a.cols(), "valid K range");
  const index_t cap = payload_per_packet(acf, cfg);
  MT_REQUIRE(cap >= 1, "bus too narrow for this ACF");
  std::vector<BusPacket> out;

  if (acf == Format::kDense) {
    // Every cell in [k_lo, k_hi) is streamed, zeros included. Build a row
    // lookup from the COO nonzeros.
    std::vector<std::vector<std::pair<index_t, value_t>>> rows(
        static_cast<std::size_t>(a.rows()));
    for (std::int64_t i = 0; i < a.nnz(); ++i) {
      const index_t c = a.col_ids()[i];
      if (c >= k_lo && c < k_hi) {
        rows[static_cast<std::size_t>(a.row_ids()[i])].emplace_back(c, a.values()[i]);
      }
    }
    for (index_t r = 0; r < a.rows(); ++r) {
      std::size_t next = 0;
      for (index_t c0 = k_lo; c0 < k_hi; c0 += cap) {
        BusPacket p;
        const index_t c1 = std::min(c0 + cap, k_hi);
        for (index_t c = c0; c < c1; ++c) {
          value_t v = 0.0f;
          const auto& rowlist = rows[static_cast<std::size_t>(r)];
          if (next < rowlist.size() && rowlist[next].first == c) {
            v = rowlist[next].second;
            ++next;
          }
          p.elems.push_back({r, c, v});
        }
        out.push_back(std::move(p));
      }
    }
    return out;
  }

  // Compressed streams carry only nonzeros in range.
  BusPacket cur;
  index_t cur_row = -1;
  auto flush = [&] {
    if (!cur.elems.empty()) {
      out.push_back(std::move(cur));
      cur = {};
    }
  };
  for (std::int64_t i = 0; i < a.nnz(); ++i) {
    const index_t c = a.col_ids()[i];
    if (c < k_lo || c >= k_hi) continue;
    const index_t r = a.row_ids()[i];
    const bool row_break = (acf == Format::kCSR) && r != cur_row;
    if (row_break || static_cast<index_t>(cur.elems.size()) >= cap) flush();
    cur_row = r;
    cur.elems.push_back({r, c, a.values()[i]});
  }
  flush();
  return out;
}

std::int64_t stream_cycles(const CooMatrix& a, Format acf,
                           const AccelConfig& cfg, index_t k_lo,
                           index_t k_hi) {
  MT_REQUIRE(is_stream_acf(acf), "streaming ACF must be Dense/CSR/COO");
  MT_REQUIRE(k_lo >= 0 && k_lo <= k_hi && k_hi <= a.cols(), "valid K range");
  const index_t cap = payload_per_packet(acf, cfg);
  MT_REQUIRE(cap >= 1, "bus too narrow for this ACF");

  switch (acf) {
    case Format::kDense:
      // Every row streams ceil(width / cap) packets.
      return a.rows() * ceil_div(k_hi - k_lo, cap);
    case Format::kCSR: {
      // Packets never span rows: sum ceil(row_nnz_in_range / cap).
      std::int64_t cycles = 0;
      std::int64_t run = 0;
      index_t run_row = -1;
      for (std::int64_t i = 0; i < a.nnz(); ++i) {
        const index_t c = a.col_ids()[i];
        if (c < k_lo || c >= k_hi) continue;
        if (a.row_ids()[i] != run_row) {
          cycles += ceil_div(run, cap);
          run = 0;
          run_row = a.row_ids()[i];
        }
        ++run;
      }
      cycles += ceil_div(run, cap);
      return cycles;
    }
    case Format::kCOO: {
      std::int64_t n = 0;
      for (std::int64_t i = 0; i < a.nnz(); ++i) {
        const index_t c = a.col_ids()[i];
        if (c >= k_lo && c < k_hi) ++n;
      }
      return ceil_div(n, cap);
    }
    default: break;
  }
  MT_ENSURE(false, "unhandled ACF");
}

}  // namespace mt
