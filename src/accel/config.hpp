// Accelerator template configuration (paper §IV-A / §VII-A).
//
// The evaluation configuration gives every accelerator 16384 MAC units
// (2048 PEs x 8-wide vector units, the paper's PE has "vector size of
// eight 32-bit compute units"), 512 B of buffer per PE, and a 512-bit
// input bus per cycle. The Fig. 6 walkthrough uses a scaled-down instance
// (4 PEs, 5-element bus, 8-element buffers).
#pragma once

#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "formats/format.hpp"

namespace mt {

struct AccelConfig {
  index_t num_pes = 2048;
  index_t vector_width = 8;       // MACs per PE per cycle
  index_t pe_buffer_bytes = 512;  // stationary data+metadata per PE
  index_t bus_bits = 512;         // broadcast bandwidth per cycle
  DataType dtype = DataType::kFp32;

  // Matched-element throughput per PE (elements/cycle) when the stream or
  // the stationary operand is compressed: each element traverses the
  // indexing unit — comparator match, one-hot-to-binary encode, irregular
  // buffer gather (paper Fig. 7a) — instead of the direct sequential
  // access a Dense-Dense dataflow enjoys at full vector rate. Calibrated
  // so SAGE reproduces Table III's ACF selections: Dense ACFs win above
  // ~4% density, compressed ACFs below ~1% (crossover = rate/vector_width).
  double index_match_rate = 0.25;

  index_t total_macs() const { return num_pes * vector_width; }
  index_t elem_bits() const { return bits_of(dtype); }

  // Bus capacity in elements per cycle. The walkthrough's simplification
  // (§IV-B): each metadata element occupies one element slot.
  index_t bus_slots() const { return bus_bits / elem_bits(); }

  // PE buffer capacity in elements (data or metadata, flag-partitioned).
  index_t buffer_elems() const { return pe_buffer_bytes * 8 / elem_bits(); }

  // Per-PE consumption rate for a given ACF combination: direct sequential
  // access (Dense stream into Dense buffers) runs at vector rate; any
  // compressed participant routes through the indexing unit.
  double pe_consume_rate(Format acf_stream, Format acf_stationary) const {
    const bool irregular =
        acf_stream != Format::kDense || acf_stationary == Format::kCSC;
    return irregular ? index_match_rate
                     : static_cast<double>(vector_width);
  }

  void validate() const {
    MT_REQUIRE(num_pes > 0 && vector_width > 0, "positive PE array");
    MT_REQUIRE(index_match_rate > 0.0, "positive indexing-unit rate");
    MT_REQUIRE(bus_slots() >= 3, "bus must carry at least one COO triplet");
    MT_REQUIRE(buffer_elems() >= 2, "buffer must hold at least one pair");
  }

  // The paper's evaluation configuration (§VII-A).
  static AccelConfig paper_default() { return {}; }

  // The Fig. 6 walkthrough instance: 4 PEs, bandwidth of five elements
  // per cycle, eight-element weight buffers.
  static AccelConfig walkthrough() {
    AccelConfig c;
    c.num_pes = 4;
    c.vector_width = 8;
    c.pe_buffer_bytes = 8 * 4;  // eight fp32 elements
    c.bus_bits = 5 * 32;        // five fp32 slots
    return c;
  }
};

}  // namespace mt
