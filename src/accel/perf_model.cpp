#include "accel/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace mt {

namespace {

// On-chip energy shared by all kernels: every performed MAC reads its
// stationary operand from the PE buffer; every streamed element crosses
// the bus; loads write buffers; drains write the global scratchpad.
double onchip_energy(const EnergyParams& e, const AccelConfig& cfg,
                     std::int64_t performed_macs, std::int64_t streamed,
                     std::int64_t loaded, std::int64_t drained) {
  const double mac = e.mac_energy_j(cfg.dtype);
  const double sram_pe = e.sram_energy_j(cfg.dtype, /*small_buffer=*/true);
  const double sram_gb = e.sram_energy_j(cfg.dtype, /*small_buffer=*/false);
  const double noc = e.noc_j_per_32b_hop * bits_of(cfg.dtype) / 32.0;
  return static_cast<double>(performed_macs) * (mac + sram_pe) +
         static_cast<double>(streamed) * (noc + sram_gb) +
         static_cast<double>(loaded) * (sram_pe + noc) +
         static_cast<double>(drained) * sram_gb;
}

void finalize(PerfResult& r, const AccelConfig& cfg, const EnergyParams& e,
              std::int64_t loaded, std::int64_t drained) {
  const double cap_slots = static_cast<double>(r.phases.stream_cycles) *
                           static_cast<double>(cfg.bus_slots());
  r.bus_occupancy =
      cap_slots == 0.0 ? 0.0 : static_cast<double>(r.streamed_elems) / cap_slots;
  const double mac_capacity = static_cast<double>(r.total_cycles()) *
                              static_cast<double>(cfg.total_macs());
  r.pe_utilization =
      mac_capacity == 0.0 ? 0.0
                          : static_cast<double>(r.useful_macs) / mac_capacity;
  r.compute_energy_j =
      onchip_energy(e, cfg, r.performed_macs, r.streamed_elems, loaded, drained);
}

}  // namespace

PerfResult model_matmul(const CooMatrix& a, const CooMatrix& b, Format acf_a,
                        Format acf_b, const AccelConfig& cfg,
                        const EnergyParams& energy) {
  cfg.validate();
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  MT_REQUIRE(is_stream_acf(acf_a), "A must use a streaming ACF");
  MT_REQUIRE(is_stationary_acf(acf_b), "B must use a stationary ACF");
  MT_REQUIRE(a.is_row_major_sorted(), "A must be row-major sorted COO");

  const index_t k = a.cols();
  const index_t n = b.cols();
  const index_t slots = cfg.bus_slots();
  const index_t buf = cfg.buffer_elems();
  const index_t cap = payload_per_packet(acf_a, cfg);

  // Streamed-element multiplicity per K coordinate: how many A elements
  // with column k cross the bus (nnz of A's column for compressed streams,
  // one per row for Dense).
  std::vector<std::int64_t> a_col_nnz(static_cast<std::size_t>(k), 0);
  for (std::int64_t i = 0; i < a.nnz(); ++i) {
    ++a_col_nnz[static_cast<std::size_t>(a.col_ids()[i])];
  }

  // K-pass height from buffer occupancy (paper §IV: "a buffer entry can be
  // treated as either data or metadata"). Dense columns need one element
  // per K row; CSC columns need two buffer elements per nonzero, so the
  // pass height scales with 1/density of B.
  index_t kt;
  if (acf_b == Format::kDense) {
    kt = std::min<index_t>(k, buf);
  } else {
    const double density_b =
        static_cast<double>(b.nnz()) /
        (static_cast<double>(k) * std::max<double>(1.0, static_cast<double>(n)));
    const auto cap_pairs = static_cast<double>(buf / 2);
    kt = density_b <= 0.0 ? k : static_cast<index_t>(cap_pairs / density_b);
    kt = std::clamp<index_t>(kt, 1, k);
  }

  PerfResult res;
  res.n_tiles = ceil_div(n, cfg.num_pes);
  res.k_passes = ceil_div(k, kt);

  // Bucket A's nonzeros by K pass, preserving row-major order within each
  // bucket, so each pass is priced in O(bucket size) instead of O(nnz).
  std::vector<std::vector<index_t>> a_rows_by_pass(
      static_cast<std::size_t>(res.k_passes));
  for (std::int64_t i = 0; i < a.nnz(); ++i) {
    a_rows_by_pass[static_cast<std::size_t>(a.col_ids()[i] / kt)].push_back(
        a.row_ids()[i]);
  }
  // Per-pass streaming stats for compressed streams.
  struct PassStream {
    std::int64_t cycles = 0;        // CSR packet count (row-break rule)
    std::int64_t elems = 0;         // nonzeros streamed
    std::int64_t rows_touched = 0;  // distinct rows
  };
  std::vector<PassStream> pass_stream(static_cast<std::size_t>(res.k_passes));
  for (index_t p = 0; p < res.k_passes; ++p) {
    auto& ps = pass_stream[static_cast<std::size_t>(p)];
    const auto& rows = a_rows_by_pass[static_cast<std::size_t>(p)];
    ps.elems = static_cast<std::int64_t>(rows.size());
    std::int64_t run = 0;
    index_t run_row = -1;
    for (index_t r : rows) {
      if (r != run_row) {
        ps.cycles += ceil_div(run, cap);
        run = 0;
        run_row = r;
        ++ps.rows_touched;
      }
      ++run;
    }
    ps.cycles += ceil_div(run, cap);
  }

  // Bucket B's nonzeros by K pass; column-major order is preserved so the
  // per-PE maximum falls out of one sweep per (tile, pass).
  std::vector<std::vector<std::pair<index_t, index_t>>> b_by_pass(
      static_cast<std::size_t>(res.k_passes));
  {
    CooMatrix bc = b;
    bc.sort_col_major();
    for (std::int64_t i = 0; i < bc.nnz(); ++i) {
      b_by_pass[static_cast<std::size_t>(bc.row_ids()[i] / kt)].emplace_back(
          bc.col_ids()[i], bc.row_ids()[i]);
    }
  }

  std::int64_t loaded_total = 0;
  std::int64_t drained_total = 0;

  for (index_t t = 0; t < res.n_tiles; ++t) {
    const index_t j0 = t * cfg.num_pes;
    const index_t j1 = std::min(j0 + cfg.num_pes, n);
    for (index_t p = 0; p < res.k_passes; ++p) {
      const index_t k0 = p * kt;
      const index_t k1 = std::min(k0 + kt, k);
      const auto& ps = pass_stream[static_cast<std::size_t>(p)];

      // --- Stream ---
      std::int64_t sc;
      std::int64_t streamed;
      std::int64_t rows_touched;
      if (acf_a == Format::kDense) {
        sc = a.rows() * ceil_div(k1 - k0, cap);
        streamed = a.rows() * (k1 - k0);
        rows_touched = a.rows();
      } else if (acf_a == Format::kCSR) {
        sc = ps.cycles;
        streamed = ps.elems;
        rows_touched = ps.rows_touched;
      } else {  // COO: triplets may mix rows freely
        sc = ceil_div(ps.elems, cap);
        streamed = ps.elems;
        rows_touched = ps.rows_touched;
      }
      res.phases.stream_cycles += sc;
      res.streamed_elems += streamed;

      // --- Load + match counting over B's nonzeros in this tile/pass ---
      std::int64_t load_elems = 0;
      std::int64_t max_pe_performed = 0;
      std::int64_t tile_performed = 0;
      std::int64_t tile_useful = 0;
      {
        std::int64_t cur_pe_perf = 0;
        index_t cur_col = -1;
        for (const auto& [j, kk] : b_by_pass[static_cast<std::size_t>(p)]) {
          if (j < j0 || j >= j1) continue;
          if (j != cur_col) {
            max_pe_performed = std::max(max_pe_performed, cur_pe_perf);
            cur_pe_perf = 0;
            cur_col = j;
          }
          const std::int64_t useful = a_col_nnz[static_cast<std::size_t>(kk)];
          const std::int64_t mult =
              acf_a == Format::kDense ? a.rows() : useful;
          if (acf_b == Format::kCSC) {
            load_elems += 2;
            cur_pe_perf += mult;
            tile_performed += mult;
          }
          tile_useful += useful;
        }
        max_pe_performed = std::max(max_pe_performed, cur_pe_perf);
      }
      if (acf_b == Format::kDense) {
        // Every PE holds the full K-range column and MACs every streamed
        // element, zeros in the buffer included.
        load_elems = (j1 - j0) * (k1 - k0);
        max_pe_performed = streamed;
        tile_performed = streamed * (j1 - j0);
      }
      res.performed_macs += tile_performed;
      res.useful_macs += tile_useful;
      loaded_total += load_elems;
      res.phases.load_cycles += ceil_div(load_elems, slots);

      const std::int64_t cc = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(max_pe_performed) /
                    cfg.pe_consume_rate(acf_a, acf_b)));
      res.phases.compute_cycles += cc;
      res.phases.overlap_cycles += std::max(sc, cc);

      const std::int64_t drained = rows_touched * (j1 - j0);
      drained_total += drained;
      res.phases.drain_cycles += ceil_div(drained, slots);
    }
  }

  finalize(res, cfg, energy, loaded_total, drained_total);
  return res;
}

PerfResult model_matmul_dense_b(const CooMatrix& a, index_t n, Format acf_a,
                                Format acf_b, const AccelConfig& cfg,
                                const EnergyParams& energy) {
  cfg.validate();
  MT_REQUIRE(n > 0, "positive output width");
  MT_REQUIRE(is_stream_acf(acf_a), "A must use a streaming ACF");
  MT_REQUIRE(is_stationary_acf(acf_b), "B must use a stationary ACF");
  MT_REQUIRE(a.is_row_major_sorted(), "A must be row-major sorted COO");

  const index_t k = a.cols();
  const index_t slots = cfg.bus_slots();
  const index_t buf = cfg.buffer_elems();
  const index_t cap = payload_per_packet(acf_a, cfg);
  // A fully dense column needs one buffer element per row under Dense ACF
  // and a (row_id, value) pair per row under CSC (every row is a nonzero).
  const index_t elems_per_row = acf_b == Format::kDense ? 1 : 2;
  const index_t kt = std::clamp<index_t>(buf / elems_per_row, 1, k);

  PerfResult res;
  res.n_tiles = ceil_div(n, cfg.num_pes);
  res.k_passes = ceil_div(k, kt);

  // Per-pass stream stats of A (identical bucketing to model_matmul).
  struct PassStream {
    std::int64_t cycles = 0;
    std::int64_t elems = 0;
    std::int64_t rows_touched = 0;
  };
  std::vector<PassStream> pass_stream(static_cast<std::size_t>(res.k_passes));
  {
    std::vector<std::vector<index_t>> rows_by_pass(
        static_cast<std::size_t>(res.k_passes));
    for (std::int64_t i = 0; i < a.nnz(); ++i) {
      rows_by_pass[static_cast<std::size_t>(a.col_ids()[i] / kt)].push_back(
          a.row_ids()[i]);
    }
    for (index_t p = 0; p < res.k_passes; ++p) {
      auto& ps = pass_stream[static_cast<std::size_t>(p)];
      std::int64_t run = 0;
      index_t run_row = -1;
      for (index_t r : rows_by_pass[static_cast<std::size_t>(p)]) {
        if (r != run_row) {
          ps.cycles += ceil_div(run, cap);
          run = 0;
          run_row = r;
          ++ps.rows_touched;
        }
        ++run;
      }
      ps.cycles += ceil_div(run, cap);
      ps.elems =
          static_cast<std::int64_t>(rows_by_pass[static_cast<std::size_t>(p)].size());
    }
  }

  std::int64_t loaded_total = 0, drained_total = 0;
  for (index_t t = 0; t < res.n_tiles; ++t) {
    const index_t j0 = t * cfg.num_pes;
    const index_t j1 = std::min(j0 + cfg.num_pes, n);
    const index_t width = j1 - j0;
    for (index_t p = 0; p < res.k_passes; ++p) {
      const index_t k0 = p * kt;
      const index_t k1 = std::min(k0 + kt, k);
      const auto& ps = pass_stream[static_cast<std::size_t>(p)];

      std::int64_t sc, streamed, rows_touched;
      if (acf_a == Format::kDense) {
        sc = a.rows() * ceil_div(k1 - k0, cap);
        streamed = a.rows() * (k1 - k0);
        rows_touched = a.rows();
      } else if (acf_a == Format::kCSR) {
        sc = ps.cycles;
        streamed = ps.elems;
        rows_touched = ps.rows_touched;
      } else {
        sc = ceil_div(ps.elems, cap);
        streamed = ps.elems;
        rows_touched = ps.rows_touched;
      }
      res.phases.stream_cycles += sc;
      res.streamed_elems += streamed;

      // B fully dense: every streamed element matches in every PE; useful
      // equals performed for compressed streams (A's zeros never ship).
      const std::int64_t load_elems = width * (k1 - k0) * elems_per_row;
      loaded_total += load_elems;
      res.phases.load_cycles += ceil_div(load_elems, slots);
      res.performed_macs += streamed * width;
      res.useful_macs += ps.elems * width;

      const std::int64_t cc = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(streamed) /
                    cfg.pe_consume_rate(acf_a, acf_b)));
      res.phases.compute_cycles += cc;
      res.phases.overlap_cycles += std::max(sc, cc);

      const std::int64_t drained = rows_touched * width;
      drained_total += drained;
      res.phases.drain_cycles += ceil_div(drained, slots);
    }
  }
  finalize(res, cfg, energy, loaded_total, drained_total);
  return res;
}

std::int64_t tensor_stream_cycles(const CooTensor3& x, Format acf_t,
                                  const AccelConfig& cfg) {
  const index_t slots = cfg.bus_slots();
  switch (acf_t) {
    case Format::kDense: {
      // Linearized cells with a positional header per packet.
      const std::int64_t cells = x.dim_x() * x.dim_y() * x.dim_z();
      return ceil_div(cells, slots - 1);
    }
    case Format::kCOO:
      // (value, x, y, z) quadruples.
      return ceil_div(x.nnz(), std::max<index_t>(1, slots / 4));
    case Format::kCSF: {
      // Tree stream: one x id per slice, (y id + fiber header) per fiber,
      // (z id, value) per leaf.
      std::int64_t n1 = 0, n2 = 0;
      index_t px = -1, py = -1;
      for (std::int64_t i = 0; i < x.nnz(); ++i) {
        if (x.x_ids()[i] != px) {
          ++n1;
          px = x.x_ids()[i];
          py = -1;
        }
        if (x.y_ids()[i] != py) {
          ++n2;
          py = x.y_ids()[i];
        }
      }
      return ceil_div(n1 + 2 * n2 + 2 * x.nnz(), slots);
    }
    default:
      MT_REQUIRE(false, "tensor ACF must be Dense/COO/CSF");
  }
  return 0;
}

PerfResult model_spttm(const CooTensor3& x, index_t r, Format acf_t,
                       const AccelConfig& cfg, const EnergyParams& energy) {
  cfg.validate();
  MT_REQUIRE(r > 0, "positive factor rank");
  const index_t slots = cfg.bus_slots();
  const std::int64_t cells = x.dim_x() * x.dim_y() * x.dim_z();

  PerfResult res;
  res.n_tiles = ceil_div(r, cfg.num_pes);
  // PE holds U(:, r): one dense column of Z elements.
  res.k_passes = ceil_div(x.dim_z(), cfg.buffer_elems());

  // Distinct (x,y) fibers = dense output rows to drain.
  std::int64_t n2 = 0;
  {
    index_t px = -1, py = -1;
    for (std::int64_t i = 0; i < x.nnz(); ++i) {
      if (x.x_ids()[i] != px || x.y_ids()[i] != py) {
        ++n2;
        px = x.x_ids()[i];
        py = x.y_ids()[i];
      }
    }
  }

  const std::int64_t sc = tensor_stream_cycles(x, acf_t, cfg);
  std::int64_t loaded_total = 0, drained_total = 0;
  for (std::int64_t t = 0; t < res.n_tiles; ++t) {
    const index_t width = std::min<index_t>(cfg.num_pes, r - t * cfg.num_pes);
    // The K (Z) passes partition the stream; their total equals one full
    // tensor stream per output tile.
    res.phases.stream_cycles += sc;
    const std::int64_t streamed = acf_t == Format::kDense ? cells : x.nnz();
    res.streamed_elems += streamed;
    // Every streamed element MACs once in every PE of the tile (dense U
    // never misses); Dense ACF also MACs the zeros it streams. Compressed
    // streams pay the indexing-unit rate (coordinates gather irregularly).
    const std::int64_t per_pe = streamed;
    const std::int64_t cc = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(per_pe) /
                  cfg.pe_consume_rate(acf_t, Format::kDense)));
    res.phases.compute_cycles += cc;
    res.phases.overlap_cycles += std::max(sc, cc);
    res.performed_macs += per_pe * width;
    res.useful_macs += x.nnz() * width;

    const std::int64_t load_elems = static_cast<std::int64_t>(x.dim_z()) * width;
    loaded_total += load_elems;
    res.phases.load_cycles += ceil_div(load_elems, slots);

    const std::int64_t rows = acf_t == Format::kDense
                                  ? x.dim_x() * x.dim_y()
                                  : n2;
    const std::int64_t drained = rows * width;
    drained_total += drained;
    res.phases.drain_cycles += ceil_div(drained, slots);
  }
  finalize(res, cfg, energy, loaded_total, drained_total);
  return res;
}

PerfResult model_mttkrp(const CooTensor3& x, index_t r, Format acf_t,
                        const AccelConfig& cfg, const EnergyParams& energy) {
  cfg.validate();
  MT_REQUIRE(r > 0, "positive factor rank");
  const index_t slots = cfg.bus_slots();
  const std::int64_t cells = x.dim_x() * x.dim_y() * x.dim_z();

  PerfResult res;
  res.n_tiles = ceil_div(r, cfg.num_pes);
  // PE holds B(:, r) and C(:, r): Y + Z dense elements. When they exceed
  // the buffer, the factor columns are reloaded in slices and the tensor
  // is re-streamed once per slice (the nonzeros needing a given slice are
  // not contiguous, unlike the matmul K-pass case).
  res.k_passes = ceil_div(x.dim_y() + x.dim_z(), cfg.buffer_elems());

  const std::int64_t sc = tensor_stream_cycles(x, acf_t, cfg);
  std::int64_t loaded_total = 0, drained_total = 0;
  for (std::int64_t t = 0; t < res.n_tiles; ++t) {
    const index_t width = std::min<index_t>(cfg.num_pes, r - t * cfg.num_pes);
    for (std::int64_t p = 0; p < res.k_passes; ++p) {
      res.phases.stream_cycles += sc;
      const std::int64_t streamed = acf_t == Format::kDense ? cells : x.nnz();
      res.streamed_elems += streamed;
      // Two MACs per element per PE: v * B(j,r), then * C(k,r). Work is
      // divided across passes (each pass covers a slice of B/C rows).
      const std::int64_t per_pe =
          ceil_div(2 * streamed, std::max<std::int64_t>(1, res.k_passes));
      const std::int64_t cc = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(per_pe) /
                    cfg.pe_consume_rate(acf_t, Format::kDense)));
      res.phases.compute_cycles += cc;
      res.phases.overlap_cycles += std::max(sc, cc);
      res.performed_macs += per_pe * width;
    }
    res.useful_macs += 2 * x.nnz() * width;

    const std::int64_t load_elems =
        static_cast<std::int64_t>(x.dim_y() + x.dim_z()) * width;
    loaded_total += load_elems;
    res.phases.load_cycles += ceil_div(load_elems, slots);

    const std::int64_t drained = static_cast<std::int64_t>(x.dim_x()) * width;
    drained_total += drained;
    res.phases.drain_cycles += ceil_div(drained, slots);
  }
  finalize(res, cfg, energy, loaded_total, drained_total);
  return res;
}

}  // namespace mt
