// Functional cycle-level simulation of the weight-stationary accelerator
// with flexible-ACF PEs (paper §IV, Fig. 6).
//
// The simulator executes the walkthrough literally: operand B is loaded
// stationary (one output column per PE, values plus metadata sharing the
// flag-partitioned buffer), operand A is streamed over the broadcast bus
// packet by packet, PEs match coordinates (direct indexing for Dense B,
// comparator matching for CSC B) and accumulate into output registers.
// It produces the real output matrix — checked against the software
// kernels — together with exact phase cycle counts.
//
// Scope: a single tile (N <= num_pes, stationary operand fits the PE
// buffers); the analytic PerfModel extends the same accounting to tiled
// execution at scale and is cross-checked against this simulator.
#pragma once

#include "accel/config.hpp"
#include "accel/stream.hpp"
#include "formats/dense.hpp"

namespace mt {

// Phase latencies. Streaming and compute are pipelined against each other
// (the walkthrough counts only bus cycles because its vector units keep
// up), so the executed latency of the main phase is max(stream, compute).
struct SimPhases {
  std::int64_t load_cycles = 0;     // stationary operand into PE buffers
  std::int64_t stream_cycles = 0;   // operand A over the bus
  std::int64_t compute_cycles = 0;  // vector-MAC throughput bound
  std::int64_t overlap_cycles = 0;  // sum over passes of max(stream, compute)
  std::int64_t drain_cycles = 0;    // outputs to the global buffer

  std::int64_t total_cycles() const {
    return load_cycles + overlap_cycles + drain_cycles;
  }
};

struct CycleSimResult {
  DenseMatrix output;  // O = A * B, bit-equal to the software kernels
  SimPhases phases;
  std::int64_t performed_macs = 0;  // MACs executed (zero operands included)
  std::int64_t useful_macs = 0;     // MACs with both operands nonzero
  std::int64_t streamed_elems = 0;  // payload elements sent over the bus
  double bus_occupancy = 0.0;       // payload slots used / slots available
  double pe_utilization = 0.0;      // useful MACs / (cycles * MAC capacity)
};

// Runs O = A * B on the PE array. acf_a must be a streaming ACF
// (Dense/CSR/COO), acf_b a stationary ACF (Dense/CSC). Requires a single
// tile: B.cols() <= num_pes and each PE's stationary column fits its
// buffer; throws otherwise (use PerfModel for tiled executions).
CycleSimResult simulate_ws_matmul(const DenseMatrix& a, const DenseMatrix& b,
                                  Format acf_a, Format acf_b,
                                  const AccelConfig& cfg);

}  // namespace mt
