// Analytic performance model of the weight-stationary accelerator — the
// model SAGE queries (paper §VI "Performance Modeling").
//
// Shares the exact accounting of the functional cycle simulator (bus
// packing closed forms, buffer-occupancy K-passes, one PE per output
// column, compute/stream overlap) but works on compressed operands and
// tiles over N and K, so it evaluates Table-III-scale workloads in
// O(nnz) time. tests/test_accel.cpp cross-checks it cycle-for-cycle
// against simulate_ws_matmul on single-tile instances.
#pragma once

#include "accel/config.hpp"
#include "accel/cycle_sim.hpp"
#include "accel/stream.hpp"
#include "energy/energy_model.hpp"
#include "formats/coo.hpp"
#include "formats/tensor_coo.hpp"

namespace mt {

struct PerfResult {
  SimPhases phases;
  std::int64_t performed_macs = 0;
  std::int64_t useful_macs = 0;
  std::int64_t streamed_elems = 0;  // payload elements over all passes
  std::int64_t n_tiles = 0;         // output-column tiles
  std::int64_t k_passes = 0;        // stationary reload passes per tile
  double bus_occupancy = 0.0;
  double pe_utilization = 0.0;
  double compute_energy_j = 0.0;    // on-chip: MACs + buffers + bus

  std::int64_t total_cycles() const { return phases.total_cycles(); }
};

// O = A * B with A streamed (Dense/CSR/COO ACF) and B stationary
// (Dense/CSC ACF). Operands arrive as sorted COO carrying their true
// nonzero structure; the ACF decides how they are represented on the bus
// and in the buffers. Covers GEMM, SpMM and SpGEMM uniformly — what makes
// A or B "sparse" is its nnz, what makes the run efficient is the ACF.
PerfResult model_matmul(const CooMatrix& a, const CooMatrix& b, Format acf_a,
                        Format acf_b, const AccelConfig& cfg,
                        const EnergyParams& energy);

// SpMM fast path: B is a fully dense K x N matrix. Closed forms replace
// the per-nonzero B sweep, so a 3600x5500 dense factor (Table III's
// speech1 SpMM scenario) never needs 20M COO entries materialized.
// Matches model_matmul(a, dense_b_as_coo, ...) exactly (tested).
PerfResult model_matmul_dense_b(const CooMatrix& a, index_t n, Format acf_a,
                                Format acf_b, const AccelConfig& cfg,
                                const EnergyParams& energy);

// Mode-3 SpTTM: Y(i,j,l) = sum_k X(i,j,k) U(k,l), U dense Z x R.
// acf_t in {Dense, COO, CSF} decides the tensor's bus representation.
PerfResult model_spttm(const CooTensor3& x, index_t r, Format acf_t,
                       const AccelConfig& cfg, const EnergyParams& energy);

// MTTKRP: M(i,r) = sum_{j,k} X(i,j,k) B(j,r) C(k,r), B/C dense.
PerfResult model_mttkrp(const CooTensor3& x, index_t r, Format acf_t,
                        const AccelConfig& cfg, const EnergyParams& energy);

// Bus cost of streaming a 3-D tensor under a tensor ACF; exposed for tests.
std::int64_t tensor_stream_cycles(const CooTensor3& x, Format acf_t,
                                  const AccelConfig& cfg);

}  // namespace mt
