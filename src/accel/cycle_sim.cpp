#include "accel/cycle_sim.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace mt {

CycleSimResult simulate_ws_matmul(const DenseMatrix& a, const DenseMatrix& b,
                                  Format acf_a, Format acf_b,
                                  const AccelConfig& cfg) {
  cfg.validate();
  MT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  MT_REQUIRE(is_stream_acf(acf_a), "A must use a streaming ACF");
  MT_REQUIRE(is_stationary_acf(acf_b), "B must use a stationary ACF");
  MT_REQUIRE(b.cols() <= cfg.num_pes, "single tile: one PE per B column");

  const index_t k = a.cols();
  const index_t n = b.cols();
  const index_t slots = cfg.bus_slots();

  // --- Load phase: B columns into PE buffers ---
  // Dense B stores the full column (zeros keep buffer indexing correct,
  // Fig. 6a); CSC B stores (row_id, value) pairs in the metadata/data
  // partitions (Fig. 6b).
  struct PeBuffer {
    std::vector<value_t> dense;                         // Dense ACF
    std::vector<std::pair<index_t, value_t>> nonzeros;  // CSC ACF
    index_t occupancy = 0;                              // buffer elements
  };
  std::vector<PeBuffer> pes(static_cast<std::size_t>(n));
  std::int64_t load_elems = 0;
  for (index_t j = 0; j < n; ++j) {
    auto& pe = pes[static_cast<std::size_t>(j)];
    if (acf_b == Format::kDense) {
      pe.dense.resize(static_cast<std::size_t>(k));
      for (index_t kk = 0; kk < k; ++kk) {
        pe.dense[static_cast<std::size_t>(kk)] = b.at(kk, j);
      }
      pe.occupancy = k;
    } else {
      for (index_t kk = 0; kk < k; ++kk) {
        const value_t v = b.at(kk, j);
        if (v != 0.0f) pe.nonzeros.emplace_back(kk, v);
      }
      pe.occupancy = 2 * static_cast<index_t>(pe.nonzeros.size());
    }
    MT_REQUIRE(pe.occupancy <= cfg.buffer_elems(),
               "single tile: stationary column must fit the PE buffer");
    load_elems += pe.occupancy;
  }

  // --- Stream phase ---
  const auto coo_a = CooMatrix::from_dense(a);
  const auto packets = pack_stream(coo_a, acf_a, cfg, 0, k);

  CycleSimResult res;
  res.output = DenseMatrix(a.rows(), n);
  std::vector<std::int64_t> pe_performed(static_cast<std::size_t>(n), 0);
  std::set<index_t> touched_rows;
  for (const BusPacket& p : packets) {
    for (const StreamElem& e : p.elems) {
      ++res.streamed_elems;
      touched_rows.insert(e.row);
      for (index_t j = 0; j < n; ++j) {
        auto& pe = pes[static_cast<std::size_t>(j)];
        value_t bv = 0.0f;
        bool match = false;
        if (acf_b == Format::kDense) {
          // Direct buffer indexing by the streamed coordinate (Fig. 6a/6c).
          bv = pe.dense[static_cast<std::size_t>(e.col)];
          match = true;
        } else {
          // Comparator match of streamed col id against stored row ids.
          const auto it = std::lower_bound(
              pe.nonzeros.begin(), pe.nonzeros.end(), e.col,
              [](const auto& kv, index_t key) { return kv.first < key; });
          if (it != pe.nonzeros.end() && it->first == e.col) {
            bv = it->second;
            match = true;
          }
        }
        if (!match) continue;
        ++pe_performed[static_cast<std::size_t>(j)];
        ++res.performed_macs;
        if (e.value != 0.0f && bv != 0.0f) ++res.useful_macs;
        res.output.set(e.row, j, res.output.at(e.row, j) + e.value * bv);
      }
    }
  }

  // --- Phase accounting ---
  res.phases.load_cycles = ceil_div(load_elems, slots);
  res.phases.stream_cycles = static_cast<std::int64_t>(packets.size());
  const std::int64_t max_pe =
      pe_performed.empty()
          ? 0
          : *std::max_element(pe_performed.begin(), pe_performed.end());
  res.phases.compute_cycles = static_cast<std::int64_t>(std::ceil(
      static_cast<double>(max_pe) / cfg.pe_consume_rate(acf_a, acf_b)));
  res.phases.overlap_cycles =
      std::max(res.phases.stream_cycles, res.phases.compute_cycles);
  const std::int64_t drained =
      static_cast<std::int64_t>(touched_rows.size()) * n;
  res.phases.drain_cycles = ceil_div(drained, slots);

  const double cap_slots =
      static_cast<double>(res.phases.stream_cycles) * static_cast<double>(slots);
  res.bus_occupancy =
      cap_slots == 0.0 ? 0.0 : static_cast<double>(res.streamed_elems) / cap_slots;
  const double mac_capacity = static_cast<double>(res.phases.total_cycles()) *
                              static_cast<double>(cfg.total_macs());
  res.pe_utilization =
      mac_capacity == 0.0 ? 0.0
                          : static_cast<double>(res.useful_macs) / mac_capacity;
  return res;
}

}  // namespace mt
