// PE and array area model (paper Fig. 7b: the flexible-ACF extension adds
// ~10% to a PE with a 128 B buffer and an 8-wide 32-bit vector unit).
//
// Component areas are 28 nm post-P&R estimates consistent with the
// paper's synthesis point; what the evaluation consumes is the *ratio*
// structure: extension overhead vs. base PE, and MINT vs. the whole
// array (§VII-B "MINT_m consumes 0.5% of its area").
#pragma once

#include "accel/config.hpp"

namespace mt {

struct PeAreaBreakdown {
  double mac_mm2 = 0.0;         // vector MAC units
  double buffer_mm2 = 0.0;      // weight/metadata scratchpad
  double control_mm2 = 0.0;     // sequencing, registers (Rreg/Creg/Oreg)
  double comparators_mm2 = 0.0; // extension: metadata comparators
  double encoder_mm2 = 0.0;     // extension: one-hot-to-binary + addr gen
  double flags_mm2 = 0.0;       // extension: buffer entry flag bits

  double base_mm2() const { return mac_mm2 + buffer_mm2 + control_mm2; }
  double extension_mm2() const {
    return comparators_mm2 + encoder_mm2 + flags_mm2;
  }
  double total_mm2() const { return base_mm2() + extension_mm2(); }
  double extension_overhead() const { return extension_mm2() / base_mm2(); }
};

// Per-PE area; `multi_precision` models the evaluation accelerator's
// (int16/int32 & bfp16/fp32) compute units, which roughly double MAC area.
PeAreaBreakdown pe_area(const AccelConfig& cfg, bool multi_precision = false);

// Whole-array area (PEs + NoC + global buffer amortization).
double array_area_mm2(const AccelConfig& cfg, bool multi_precision = true);

}  // namespace mt
