#include "accel/area.hpp"

namespace mt {

namespace {
// 28 nm component constants (mm^2).
constexpr double kMacFp32 = 0.0020;          // one fp32 MAC lane
constexpr double kBufferPerByte = 0.000020;  // SRAM + periphery
constexpr double kControl = 0.0020;          // FSM + output registers
constexpr double kComparator = 0.00020;      // one metadata comparator lane
constexpr double kEncoder = 0.00035;         // one-hot->binary + addr gen
constexpr double kFlagPerByte = 0.0000020;   // 1 flag bit per buffer entry
constexpr double kNocPerPe = 0.0008;         // bus/NoC slice per PE
}  // namespace

PeAreaBreakdown pe_area(const AccelConfig& cfg, bool multi_precision) {
  PeAreaBreakdown a;
  const double mac_scale = multi_precision ? 2.0 : 1.0;
  a.mac_mm2 = kMacFp32 * mac_scale * static_cast<double>(cfg.vector_width);
  a.buffer_mm2 = kBufferPerByte * static_cast<double>(cfg.pe_buffer_bytes);
  a.control_mm2 = kControl;
  // One comparator per vector lane so a full bus packet matches per cycle.
  a.comparators_mm2 = kComparator * static_cast<double>(cfg.vector_width);
  a.encoder_mm2 = kEncoder;
  a.flags_mm2 = kFlagPerByte * static_cast<double>(cfg.pe_buffer_bytes);
  return a;
}

double array_area_mm2(const AccelConfig& cfg, bool multi_precision) {
  const auto pe = pe_area(cfg, multi_precision);
  return (pe.total_mm2() + kNocPerPe) * static_cast<double>(cfg.num_pes);
}

}  // namespace mt
