// Software format conversion — the correctness oracle for MINT and the
// compute substrate of the paper's Flex_Flex_SW baseline (host CPU/GPU
// conversion via MKL/cuSPARSE).
//
// Direct converters mirror the MINT pipelines of paper Fig. 8 (counting
// sort + prefix sum for CSR->CSC, prefix sum + div/mod for RLC->COO, block
// bucketing for CSR->BSR, tree construction for Dense->CSF) rather than
// bouncing through a dense intermediate. The generic AnyMatrix layer
// performs any->any conversion for the remaining pairs via the COO hub,
// the role the paper assigns COO ("enables fast translation to other
// formats").
#pragma once

#include <variant>

#include "formats/bsr.hpp"
#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/format.hpp"
#include "formats/hicoo.hpp"
#include "formats/rlc.hpp"
#include "formats/tensor_coo.hpp"
#include "formats/tensor_dense.hpp"
#include "formats/tensor_flat.hpp"
#include "formats/zvc.hpp"

namespace mt {

// --- Direct matrix converters (paper §V-B showcase conversions) ---

// Counting sort over column ids + prefix sum (Fig. 8c).
CscMatrix csr_to_csc(const CsrMatrix& a);
CsrMatrix csc_to_csr(const CscMatrix& a);

// Running position via prefix sum of (run+1), then divide/mod by the
// column count (Fig. 8d).
CooMatrix rlc_to_coo(const RlcMatrix& a);
RlcMatrix coo_to_rlc(const CooMatrix& a, int run_bits = kRlcRunBits);

// Block bucketing per row block with explicit fill zeros (Fig. 8e).
BsrMatrix csr_to_bsr(const CsrMatrix& a, index_t block_rows = kBsrBlockRows,
                     index_t block_cols = kBsrBlockCols);
CsrMatrix bsr_to_csr(const BsrMatrix& a);

// Occupancy scan + prefix-sum compaction (Fig. 8f; also ZVC<->Dense).
CsfTensor3 dense_to_csf(const DenseTensor3& a);
ZvcMatrix dense_to_zvc(const DenseMatrix& a);
DenseMatrix zvc_to_dense(const ZvcMatrix& a);
CsrMatrix dense_to_csr(const DenseMatrix& a);
DenseMatrix csr_to_dense(const CsrMatrix& a);

// --- Generic any->any layer ---

using AnyMatrix = std::variant<DenseMatrix, CooMatrix, CsrMatrix, CscMatrix,
                               RlcMatrix, ZvcMatrix, BsrMatrix, DiaMatrix,
                               EllMatrix>;

Format format_of(const AnyMatrix& m);
index_t rows_of(const AnyMatrix& m);
index_t cols_of(const AnyMatrix& m);
std::int64_t nnz_of(const AnyMatrix& m);
StorageSize storage_of(const AnyMatrix& m, DataType dt);

// Encodes a dense matrix into `target`.
AnyMatrix encode(const DenseMatrix& d, Format target);
// Decodes any format back to dense.
DenseMatrix decode(const AnyMatrix& m);
// any -> any; uses a direct converter when one exists, otherwise the COO hub.
AnyMatrix convert(const AnyMatrix& m, Format target);

// --- Generic tensor layer ---

using AnyTensor = std::variant<DenseTensor3, CooTensor3, CsfTensor3,
                               HicooTensor3, ZvcTensor3, RlcTensor3>;

Format format_of(const AnyTensor& t);
std::int64_t nnz_of(const AnyTensor& t);
StorageSize storage_of(const AnyTensor& t, DataType dt);

AnyTensor encode(const DenseTensor3& d, Format target);
DenseTensor3 decode(const AnyTensor& t);
AnyTensor convert(const AnyTensor& t, Format target);

}  // namespace mt
