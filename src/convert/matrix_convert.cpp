#include <algorithm>

#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "convert/convert.hpp"

namespace mt {

CscMatrix csr_to_csc(const CsrMatrix& a) {
  const std::int64_t n = a.nnz();
  // Histogram of column ids (MINT's cluster counter, Fig. 8c step 3).
  std::vector<index_t> col_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (index_t c : a.col_ids()) ++col_ptr[static_cast<std::size_t>(c) + 1];
  // Prefix sum (Fig. 8c step 5).
  for (index_t c = 0; c < a.cols(); ++c) {
    col_ptr[static_cast<std::size_t>(c) + 1] += col_ptr[static_cast<std::size_t>(c)];
  }
  // Scatter with a per-column write cursor (Fig. 8c steps 6-9). Iterating
  // rows in order makes row ids ascending within each column.
  std::vector<index_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  std::vector<index_t> row_ids(static_cast<std::size_t>(n));
  std::vector<value_t> values(static_cast<std::size_t>(n));
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const index_t dst = cursor[static_cast<std::size_t>(a.col_ids()[i])]++;
      row_ids[static_cast<std::size_t>(dst)] = r;
      values[static_cast<std::size_t>(dst)] = a.values()[i];
    }
  }
  return CscMatrix::from_parts(a.rows(), a.cols(), std::move(col_ptr),
                               std::move(row_ids), std::move(values));
}

CsrMatrix csc_to_csr(const CscMatrix& a) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r : a.row_ids()) ++row_ptr[static_cast<std::size_t>(r) + 1];
  for (index_t r = 0; r < a.rows(); ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] += row_ptr[static_cast<std::size_t>(r)];
  }
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<index_t> col_ids(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> values(static_cast<std::size_t>(a.nnz()));
  for (index_t c = 0; c < a.cols(); ++c) {
    for (index_t i = a.col_ptr()[c]; i < a.col_ptr()[c + 1]; ++i) {
      const index_t dst = cursor[static_cast<std::size_t>(a.row_ids()[i])]++;
      col_ids[static_cast<std::size_t>(dst)] = c;
      values[static_cast<std::size_t>(dst)] = a.values()[i];
    }
  }
  return CsrMatrix::from_parts(a.rows(), a.cols(), std::move(row_ptr),
                               std::move(col_ids), std::move(values));
}

CooMatrix rlc_to_coo(const RlcMatrix& a) {
  // Running linear position = prefix sum of (zero_run + 1) (Fig. 8d step
  // 2-3); row/col recovered by dividing/modding by the K dimension
  // (Fig. 8d step 4). Escape entries advance the position but emit nothing.
  std::vector<index_t> rows, cols;
  std::vector<value_t> vals;
  rows.reserve(a.entries().size());
  index_t pos = -1;
  for (const RlcEntry& e : a.entries()) {
    pos += static_cast<index_t>(e.zero_run) + 1;
    if (e.value == 0.0f) continue;
    rows.push_back(pos / a.cols());
    cols.push_back(pos % a.cols());
    vals.push_back(e.value);
  }
  return CooMatrix::from_entries(a.rows(), a.cols(), std::move(rows),
                                 std::move(cols), std::move(vals));
}

RlcMatrix coo_to_rlc(const CooMatrix& a, int run_bits) {
  // COO is row-major sorted, so linear positions are ascending; emit runs
  // directly without materializing the dense stream.
  MT_REQUIRE(a.is_row_major_sorted(), "COO must be row-major sorted");
  RlcMatrix out;
  // Encode through a dense row strip only when needed — here entries are
  // already ordered, so build the entry list directly via from_dense on a
  // small wrapper is wasteful for huge matrices. Construct via the public
  // encoder on a staging dense only for small sizes is not acceptable;
  // instead reconstruct entries manually.
  // (RlcMatrix exposes no from_entries, so go through its encoder using a
  // dense staging buffer; conversions of this direction are only used on
  // test-scale data.)
  return RlcMatrix::from_dense(a.to_dense(), run_bits);
}

BsrMatrix csr_to_bsr(const CsrMatrix& a, index_t block_rows,
                     index_t block_cols) {
  MT_REQUIRE(block_rows > 0 && block_cols > 0, "positive block dims");
  const index_t grid_rows = ceil_div(a.rows(), block_rows);
  const index_t grid_cols = ceil_div(a.cols(), block_cols);
  std::vector<index_t> block_row_ptr{0};
  std::vector<index_t> block_col_ids;
  std::vector<value_t> block_values;
  // Per row block: find the set of touched block columns (MINT uses mods +
  // comparators + register flags, Fig. 8e step 2), then fill each block's
  // br*bc region with values or explicit zeros.
  std::vector<index_t> touched(static_cast<std::size_t>(grid_cols), 0);
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    std::fill(touched.begin(), touched.end(), 0);
    const index_t r_lo = gr * block_rows;
    const index_t r_hi = std::min(r_lo + block_rows, a.rows());
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
        touched[static_cast<std::size_t>(a.col_ids()[i] / block_cols)] = 1;
      }
    }
    const index_t first_block = static_cast<index_t>(block_col_ids.size());
    for (index_t gc = 0; gc < grid_cols; ++gc) {
      if (touched[static_cast<std::size_t>(gc)]) block_col_ids.push_back(gc);
    }
    const index_t nb_row = static_cast<index_t>(block_col_ids.size()) - first_block;
    block_values.resize(block_values.size() +
                        static_cast<std::size_t>(nb_row * block_rows * block_cols),
                        0.0f);
    // Map block col -> slot within this row block for scatter.
    std::vector<index_t> slot(static_cast<std::size_t>(grid_cols), -1);
    for (index_t b = first_block; b < first_block + nb_row; ++b) {
      slot[static_cast<std::size_t>(block_col_ids[b])] = b;
    }
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
        const index_t c = a.col_ids()[i];
        const index_t b = slot[static_cast<std::size_t>(c / block_cols)];
        const index_t within =
            (b * block_rows + (r - r_lo)) * block_cols + (c % block_cols);
        block_values[static_cast<std::size_t>(within)] = a.values()[i];
      }
    }
    block_row_ptr.push_back(static_cast<index_t>(block_col_ids.size()));
  }
  return BsrMatrix::from_parts(a.rows(), a.cols(), block_rows, block_cols,
                               std::move(block_row_ptr),
                               std::move(block_col_ids),
                               std::move(block_values));
}

CsrMatrix bsr_to_csr(const BsrMatrix& a) {
  std::vector<index_t> rows, cols;
  std::vector<value_t> vals;
  const index_t grid_rows = a.block_grid_rows();
  for (index_t gr = 0; gr < grid_rows; ++gr) {
    for (index_t b = a.block_row_ptr()[gr]; b < a.block_row_ptr()[gr + 1]; ++b) {
      for (index_t br = 0; br < a.block_rows(); ++br) {
        for (index_t bc = 0; bc < a.block_cols(); ++bc) {
          const value_t x = a.block_values()[static_cast<std::size_t>(
              (b * a.block_rows() + br) * a.block_cols() + bc)];
          if (x == 0.0f) continue;  // drop fill zeros
          rows.push_back(gr * a.block_rows() + br);
          cols.push_back(a.block_col_ids()[b] * a.block_cols() + bc);
          vals.push_back(x);
        }
      }
    }
  }
  return CsrMatrix::from_coo(CooMatrix::from_entries(
      a.rows(), a.cols(), std::move(rows), std::move(cols), std::move(vals)));
}

CsfTensor3 dense_to_csf(const DenseTensor3& a) { return CsfTensor3::from_dense(a); }
ZvcMatrix dense_to_zvc(const DenseMatrix& a) { return ZvcMatrix::from_dense(a); }
DenseMatrix zvc_to_dense(const ZvcMatrix& a) { return a.to_dense(); }
CsrMatrix dense_to_csr(const DenseMatrix& a) { return CsrMatrix::from_dense(a); }
DenseMatrix csr_to_dense(const CsrMatrix& a) { return a.to_dense(); }

}  // namespace mt
