#include "common/error.hpp"
#include "convert/convert.hpp"

namespace mt {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

// Formats whose encode/decode is O(nnz) via COO, without a dense
// intermediate (RLC counts: Fig. 8d gives it direct COO pipelines).
// ZVC/DIA/ELL encodings are defined over the dense linearization and
// must round-trip through decode() instead.
bool matrix_coo_path(Format f) {
  return f == Format::kCOO || f == Format::kCSR || f == Format::kCSC ||
         f == Format::kRLC || f == Format::kBSR;
}

CooMatrix hub_to_coo(const AnyMatrix& m) {
  if (const auto* coo = std::get_if<CooMatrix>(&m)) return *coo;
  if (const auto* csr = std::get_if<CsrMatrix>(&m)) return csr->to_coo();
  if (const auto* csc = std::get_if<CscMatrix>(&m)) return csc->to_coo();
  if (const auto* rlc = std::get_if<RlcMatrix>(&m)) return rlc_to_coo(*rlc);
  if (const auto* bsr = std::get_if<BsrMatrix>(&m)) {
    return bsr_to_csr(*bsr).to_coo();
  }
  MT_ENSURE(false, "format has no direct COO path");
}

AnyMatrix hub_from_coo(const CooMatrix& c, Format target) {
  switch (target) {
    case Format::kCSR: return CsrMatrix::from_coo(c);
    case Format::kCSC: return CscMatrix::from_coo(c);
    case Format::kRLC: return coo_to_rlc(c);
    case Format::kBSR: return csr_to_bsr(CsrMatrix::from_coo(c));
    default: MT_ENSURE(false, "format has no direct COO path");
  }
}

}  // namespace

Format format_of(const AnyMatrix& m) {
  return std::visit(
      Overloaded{[](const DenseMatrix&) { return Format::kDense; },
                 [](const CooMatrix&) { return Format::kCOO; },
                 [](const CsrMatrix&) { return Format::kCSR; },
                 [](const CscMatrix&) { return Format::kCSC; },
                 [](const RlcMatrix&) { return Format::kRLC; },
                 [](const ZvcMatrix&) { return Format::kZVC; },
                 [](const BsrMatrix&) { return Format::kBSR; },
                 [](const DiaMatrix&) { return Format::kDIA; },
                 [](const EllMatrix&) { return Format::kELL; }},
      m);
}

index_t rows_of(const AnyMatrix& m) {
  return std::visit([](const auto& x) { return x.rows(); }, m);
}

index_t cols_of(const AnyMatrix& m) {
  return std::visit([](const auto& x) { return x.cols(); }, m);
}

std::int64_t nnz_of(const AnyMatrix& m) {
  return std::visit([](const auto& x) { return x.nnz(); }, m);
}

StorageSize storage_of(const AnyMatrix& m, DataType dt) {
  return std::visit([dt](const auto& x) { return x.storage(dt); }, m);
}

AnyMatrix encode(const DenseMatrix& d, Format target) {
  switch (target) {
    case Format::kDense: return d;
    case Format::kCOO: return CooMatrix::from_dense(d);
    case Format::kCSR: return CsrMatrix::from_dense(d);
    case Format::kCSC: return CscMatrix::from_dense(d);
    case Format::kRLC: return RlcMatrix::from_dense(d);
    case Format::kZVC: return ZvcMatrix::from_dense(d);
    case Format::kBSR: return BsrMatrix::from_dense(d);
    case Format::kDIA: return DiaMatrix::from_dense(d);
    case Format::kELL: return EllMatrix::from_dense(d);
    case Format::kCSF:
    case Format::kHiCOO:
      MT_REQUIRE(false, "CSF/HiCOO are tensor formats");
  }
  MT_ENSURE(false, "unhandled format");
}

DenseMatrix decode(const AnyMatrix& m) {
  return std::visit(
      Overloaded{[](const DenseMatrix& x) { return x; },
                 [](const auto& x) { return x.to_dense(); }},
      m);
}

AnyMatrix convert(const AnyMatrix& m, Format target) {
  if (format_of(m) == target) return m;
  // Direct fast paths first (the conversions MINT implements natively).
  if (const auto* csr = std::get_if<CsrMatrix>(&m)) {
    if (target == Format::kCSC) return csr_to_csc(*csr);
    if (target == Format::kBSR) return csr_to_bsr(*csr);
    if (target == Format::kCOO) return csr->to_coo();
  }
  if (const auto* csc = std::get_if<CscMatrix>(&m)) {
    if (target == Format::kCSR) return csc_to_csr(*csc);
    if (target == Format::kCOO) return csc->to_coo();
  }
  if (const auto* rlc = std::get_if<RlcMatrix>(&m)) {
    if (target == Format::kCOO) return rlc_to_coo(*rlc);
  }
  if (const auto* coo = std::get_if<CooMatrix>(&m)) {
    if (target == Format::kCSR) return CsrMatrix::from_coo(*coo);
    if (target == Format::kCSC) return CscMatrix::from_coo(*coo);
  }
  if (const auto* bsr = std::get_if<BsrMatrix>(&m)) {
    if (target == Format::kCSR) return bsr_to_csr(*bsr);
  }
  // COO hub (paper §V-B: "COO enables fast translation to other formats"):
  // compressed->compressed pairs stay O(nnz); only pairs with a
  // dense-coupled side (ZVC/DIA/ELL, defined over the dense linearization)
  // decode to a dense intermediate.
  if (matrix_coo_path(format_of(m)) && matrix_coo_path(target)) {
    // A COO source feeds the hub converters directly — no copy of the
    // operand is ever made (the serving runtime's conversion cache relies
    // on const-ref conversion from shared, read-only representations).
    if (const auto* coo = std::get_if<CooMatrix>(&m)) {
      return hub_from_coo(*coo, target);
    }
    CooMatrix hub = hub_to_coo(m);
    if (target == Format::kCOO) return AnyMatrix(std::move(hub));
    return hub_from_coo(hub, target);
  }
  return encode(decode(m), target);
}

// --- Tensor layer ---

Format format_of(const AnyTensor& t) {
  return std::visit(
      Overloaded{[](const DenseTensor3&) { return Format::kDense; },
                 [](const CooTensor3&) { return Format::kCOO; },
                 [](const CsfTensor3&) { return Format::kCSF; },
                 [](const HicooTensor3&) { return Format::kHiCOO; },
                 [](const ZvcTensor3&) { return Format::kZVC; },
                 [](const RlcTensor3&) { return Format::kRLC; }},
      t);
}

std::int64_t nnz_of(const AnyTensor& t) {
  return std::visit([](const auto& x) { return x.nnz(); }, t);
}

StorageSize storage_of(const AnyTensor& t, DataType dt) {
  return std::visit([dt](const auto& x) { return x.storage(dt); }, t);
}

AnyTensor encode(const DenseTensor3& d, Format target) {
  switch (target) {
    case Format::kDense: return d;
    case Format::kCOO: return CooTensor3::from_dense(d);
    case Format::kCSF: return CsfTensor3::from_dense(d);
    case Format::kHiCOO: return HicooTensor3::from_coo(CooTensor3::from_dense(d));
    case Format::kZVC: return ZvcTensor3::from_dense(d);
    case Format::kRLC: return RlcTensor3::from_dense(d);
    default:
      MT_REQUIRE(false, "matrix-only format for a tensor");
  }
  MT_ENSURE(false, "unhandled format");
}

DenseTensor3 decode(const AnyTensor& t) {
  return std::visit(
      Overloaded{[](const DenseTensor3& x) { return x; },
                 [](const HicooTensor3& x) { return x.to_coo().to_dense(); },
                 [](const auto& x) { return x.to_dense(); }},
      t);
}

AnyTensor convert(const AnyTensor& t, Format target) {
  if (format_of(t) == target) return t;
  if (const auto* coo = std::get_if<CooTensor3>(&t)) {
    if (target == Format::kCSF) return CsfTensor3::from_coo(*coo);
    if (target == Format::kHiCOO) return HicooTensor3::from_coo(*coo);
  }
  if (const auto* csf = std::get_if<CsfTensor3>(&t)) {
    if (target == Format::kCOO) return csf->to_coo();
    if (target == Format::kHiCOO) return HicooTensor3::from_coo(csf->to_coo());
  }
  if (const auto* h = std::get_if<HicooTensor3>(&t)) {
    if (target == Format::kCOO) return h->to_coo();
    if (target == Format::kCSF) return CsfTensor3::from_coo(h->to_coo());
  }
  return encode(decode(t), target);
}

}  // namespace mt
