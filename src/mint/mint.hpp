// MINT design points (paper §V-A, Fig. 8a):
//   MINT_b  (baseline)      — one private block set per supported
//                             conversion; no sharing.
//   MINT_m  (merge)         — overlapping blocks generalized and merged
//                             into one instance each (~57% area saving).
//   MINT_mr (merge + reuse) — additionally absorbs the prefix-sum adders
//                             and the activation-unit dividers into the
//                             host accelerator datapath (~45% further).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "formats/format.hpp"
#include "mint/blocks.hpp"
#include "mint/prefix_sum.hpp"

namespace mt {

enum class MintDesign : std::uint8_t { kBaseline, kMerge, kMergeReuse };

constexpr std::string_view name_of(MintDesign d) {
  switch (d) {
    case MintDesign::kBaseline: return "MINT_b";
    case MintDesign::kMerge: return "MINT_m";
    case MintDesign::kMergeReuse: return "MINT_mr";
  }
  return "?";
}

// The four conversions the paper's Fig. 8 walks through and synthesizes
// MINT_b over (§V-B).
struct ShowcaseConversion {
  Format from;
  Format to;
};
const std::vector<ShowcaseConversion>& showcase_conversions();

// Area (mm^2) and power (mW) of a design point, derived from the block
// catalog by composition: kBaseline sums private copies per showcase
// conversion, kMerge keeps one instance per distinct block, kMergeReuse
// drops accelerator-reusable blocks and adds the overlay wiring cost.
double mint_area_mm2(MintDesign d);
double mint_power_mw(MintDesign d);

// Fraction of MINT_m area/power consumed by the divide+mod units
// (the paper measures 74% / 65%).
double divmod_area_fraction();
double divmod_power_fraction();

}  // namespace mt
