#include "mint/sw_offload.hpp"

#include <algorithm>

namespace mt {

OffloadCost sw_conversion_cost(Format from, Format to, index_t m, index_t k,
                               std::int64_t nnz, DataType dt, HostPlatform p,
                               const EnergyParams& energy,
                               const HostRates& rates) {
  OffloadCost c;
  if (from == to) return c;
  const auto work = matrix_conversion_work(from, to, m, k, nnz, dt);
  // Host libraries process the full element stream (dense-source sweeps
  // touch every cell just like MINT's scan path).
  const double elems =
      static_cast<double>(std::max(work.scan_elems, work.heavy_elems));
  const double rate =
      p == HostPlatform::kCpu ? rates.cpu_elems_per_s : rates.gpu_elems_per_s;
  c.compute_s = elems / rate;

  const double bytes =
      static_cast<double>(work.in_bits + work.out_bits) / 8.0;
  if (p == HostPlatform::kGpu) {
    // H2D for the source, D2H for the result, each paying setup latency.
    c.transfer_s = bytes / energy.pcie_bytes_per_second +
                   2.0 * energy.pcie_latency_s;
  } else {
    // CPU converts in host DRAM; the accelerator still re-reads the result
    // over the memory interface, modeled at DRAM bandwidth.
    c.transfer_s =
        bytes / (energy.dram_bytes_per_cycle * energy.clock_hz);
  }
  const double tdp = p == HostPlatform::kCpu ? energy.cpu_tdp_w : energy.gpu_tdp_w;
  c.energy_j = tdp * rates.active_power_fraction * c.total_s();
  return c;
}

}  // namespace mt
