#include "mint/blocks.hpp"

#include "common/error.hpp"

namespace mt {

const BlockSpec& block_spec(Block b) {
  // Areas (mm^2), powers (mW) at 1 GHz, throughputs (elems/cycle).
  // Divide and mod are pipelined but hardware-expensive — the paper limits
  // both to eight parallel units and measures them at 74%/65% of MINT_m
  // area/power.
  static const BlockSpec kSpecs[] = {
      /*kPrefixSum*/      {0.020, 4.0, 32, true},
      /*kParallelDiv*/    {0.170, 28.0, 8, true},
      /*kParallelMod*/    {0.133, 20.0, 8, false},
      /*kSorter*/         {0.025, 6.0, 16, false},
      /*kClusterCounter*/ {0.010, 2.5, 16, false},
      /*kComparators*/    {0.006, 1.5, 32, false},
      /*kMultipliers*/    {0.014, 5.0, 8, false},
      /*kMemController*/  {0.035, 7.0, 16, false},
  };
  const auto i = static_cast<std::size_t>(b);
  MT_REQUIRE(i < std::size(kSpecs), "unknown block");
  return kSpecs[i];
}

}  // namespace mt
