// Conversion pipelines: which building blocks a given MCF->ACF conversion
// exercises (paper Fig. 8c-f) and how many cycles/joules it costs.
//
// MINT is pipelined against the memory stream (§V-B "MINT is pipelined to
// start conversion while streaming in data from memory"), so the cycle
// cost of a conversion is the maximum of the DRAM stream-in, the scan-rate
// work, the heavy (divide/mod/sort) work, and the DRAM stream-out — plus
// a fixed pipeline fill latency.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "formats/format.hpp"
#include "mint/blocks.hpp"

namespace mt {

// Blocks the `from -> to` conversion instantiates. Empty when from == to.
std::vector<Block> conversion_blocks(Format from, Format to);

// Work decomposition of a conversion.
struct ConversionWork {
  std::int64_t scan_elems = 0;   // occupancy/pointer work at scan rate
  std::int64_t heavy_elems = 0;  // divide/mod/sort work at 8/cycle
  std::int64_t in_bits = 0;      // source MCF footprint streamed in
  std::int64_t out_bits = 0;     // destination format streamed out
};

ConversionWork matrix_conversion_work(Format from, Format to, index_t m,
                                      index_t k, std::int64_t nnz, DataType dt);
ConversionWork tensor_conversion_work(Format from, Format to, index_t x,
                                      index_t y, index_t z, std::int64_t nnz,
                                      DataType dt);

struct ConversionCost {
  std::int64_t cycles = 0;
  double energy_j = 0.0;
};

// Cost of running `work` through the pipeline made of `blocks`.
ConversionCost pipeline_cost(const std::vector<Block>& blocks,
                             const ConversionWork& work,
                             const EnergyParams& energy);

// Convenience wrappers: blocks + work + cost in one call. Zero-cost when
// from == to (no conversion needed).
ConversionCost mint_matrix_conversion_cost(Format from, Format to, index_t m,
                                           index_t k, std::int64_t nnz,
                                           DataType dt,
                                           const EnergyParams& energy);
ConversionCost mint_tensor_conversion_cost(Format from, Format to, index_t x,
                                           index_t y, index_t z,
                                           std::int64_t nnz, DataType dt,
                                           const EnergyParams& energy);

}  // namespace mt
