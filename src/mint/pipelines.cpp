#include "mint/pipelines.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "formats/storage.hpp"

namespace mt {

namespace {

bool is_coordinate_target(Format f) {
  return f == Format::kCOO || f == Format::kCSF || f == Format::kHiCOO;
}
bool is_linearized(Format f) {
  // Formats defined over the dense linearization: recovering coordinates
  // needs divide/mod by the dimensions (Fig. 8d step 4, Fig. 8f step 3).
  return f == Format::kDense || f == Format::kRLC || f == Format::kZVC;
}
bool is_pointer_format(Format f) {
  return f == Format::kCSR || f == Format::kCSC || f == Format::kBSR ||
         f == Format::kCSF || f == Format::kHiCOO;
}

void add(std::vector<Block>& v, Block b) {
  if (std::find(v.begin(), v.end(), b) == v.end()) v.push_back(b);
}

}  // namespace

std::vector<Block> conversion_blocks(Format from, Format to) {
  std::vector<Block> v;
  if (from == to) return v;
  add(v, Block::kMemController);  // every conversion reads/writes scratchpad

  // CSR <-> CSC transposition: chunked sort + cluster count + pointer
  // prefix + comparators for output row-id regeneration (Fig. 8c).
  if ((from == Format::kCSR && to == Format::kCSC) ||
      (from == Format::kCSC && to == Format::kCSR)) {
    add(v, Block::kSorter);
    add(v, Block::kClusterCounter);
    add(v, Block::kPrefixSum);
    add(v, Block::kComparators);
    return v;
  }

  // Linearized sources reconstruct running positions by prefix sum.
  if (is_linearized(from)) add(v, Block::kPrefixSum);
  // Coordinate targets from linearized sources need div/mod (Fig. 8d/8f).
  if (is_linearized(from) && is_coordinate_target(to)) {
    add(v, Block::kParallelDiv);
    add(v, Block::kParallelMod);
  }
  // Blocked targets locate the block of each nonzero with mods and track
  // initialized blocks with comparators (Fig. 8e).
  if (to == Format::kBSR || to == Format::kHiCOO) {
    add(v, Block::kParallelMod);
    add(v, Block::kComparators);
    add(v, Block::kClusterCounter);
  }
  // Pointer-array targets histogram ids and prefix-sum them.
  if (is_pointer_format(to)) {
    add(v, Block::kClusterCounter);
    add(v, Block::kPrefixSum);
  }
  // Tree targets (CSF) compare consecutive coordinates to build levels.
  if (to == Format::kCSF) add(v, Block::kComparators);
  // Linearized targets compute positions from coordinates: row*K+col via
  // multipliers, runs/mask via prefix sums.
  if (is_linearized(to)) {
    add(v, Block::kMultipliers);
    add(v, Block::kPrefixSum);
  }
  return v;
}

namespace {

ConversionWork make_work(Format from, Format to, std::int64_t cells,
                         std::int64_t nnz, const StorageSize& in,
                         const StorageSize& out) {
  ConversionWork w;
  w.in_bits = in.total_bits();
  w.out_bits = out.total_bits();
  // Scan-rate work: dense-linearized sources sweep every cell through the
  // occupancy/prefix path; compressed sources sweep their entries.
  w.scan_elems = (from == Format::kDense || from == Format::kZVC) ? cells : nnz;
  // Heavy work: one div/mod (or sort slot) per produced nonzero when the
  // pipeline includes those blocks.
  const auto blocks = conversion_blocks(from, to);
  const bool heavy =
      std::find_if(blocks.begin(), blocks.end(), [](Block b) {
        return b == Block::kParallelDiv || b == Block::kParallelMod ||
               b == Block::kSorter;
      }) != blocks.end();
  w.heavy_elems = heavy ? nnz : 0;
  return w;
}

}  // namespace

ConversionWork matrix_conversion_work(Format from, Format to, index_t m,
                                      index_t k, std::int64_t nnz,
                                      DataType dt) {
  return make_work(from, to, m * k, nnz,
                   expected_matrix_storage(from, m, k, nnz, dt),
                   expected_matrix_storage(to, m, k, nnz, dt));
}

ConversionWork tensor_conversion_work(Format from, Format to, index_t x,
                                      index_t y, index_t z, std::int64_t nnz,
                                      DataType dt) {
  return make_work(from, to, x * y * z, nnz,
                   expected_tensor_storage(from, x, y, z, nnz, dt),
                   expected_tensor_storage(to, x, y, z, nnz, dt));
}

ConversionCost pipeline_cost(const std::vector<Block>& blocks,
                             const ConversionWork& work,
                             const EnergyParams& energy) {
  if (blocks.empty()) return {};
  constexpr std::int64_t kPipelineFill = 50;  // fill/drain latency

  std::int64_t scan_rate = 0, heavy_rate = 0;
  double power_mw = 0.0;
  for (Block b : blocks) {
    const auto& s = block_spec(b);
    power_mw += s.power_mw;
    if (b == Block::kPrefixSum || b == Block::kComparators) {
      scan_rate = scan_rate == 0 ? s.throughput : std::min(scan_rate, s.throughput);
    }
    if (b == Block::kParallelDiv || b == Block::kParallelMod ||
        b == Block::kSorter) {
      heavy_rate = heavy_rate == 0 ? s.throughput : std::min(heavy_rate, s.throughput);
    }
  }
  if (scan_rate == 0) scan_rate = 32;
  if (heavy_rate == 0) heavy_rate = 8;

  const std::int64_t stream_in = energy.dram_cycles(work.in_bits);
  const std::int64_t stream_out = energy.dram_cycles(work.out_bits);
  const std::int64_t scan_cycles = ceil_div(work.scan_elems, scan_rate);
  const std::int64_t heavy_cycles = ceil_div(work.heavy_elems, heavy_rate);

  ConversionCost c;
  c.cycles = std::max({stream_in, stream_out, scan_cycles, heavy_cycles}) +
             kPipelineFill;
  // Active power of the instantiated blocks for the duration, plus the
  // scratchpad traffic of the memory controller (every element is staged
  // in and read back out of the conversion buffers). DRAM energy of the
  // operand transfers themselves is charged by the cost model that moves
  // the tensors (SAGE), not double-counted here.
  const double sram = energy.sram_energy_j(DataType::kFp32, /*small_buffer=*/true);
  c.energy_j = power_mw * 1e-3 * energy.seconds(c.cycles) +
               2.0 * sram * static_cast<double>(work.scan_elems + work.heavy_elems);
  return c;
}

ConversionCost mint_matrix_conversion_cost(Format from, Format to, index_t m,
                                           index_t k, std::int64_t nnz,
                                           DataType dt,
                                           const EnergyParams& energy) {
  if (from == to) return {};
  return pipeline_cost(conversion_blocks(from, to),
                       matrix_conversion_work(from, to, m, k, nnz, dt), energy);
}

ConversionCost mint_tensor_conversion_cost(Format from, Format to, index_t x,
                                           index_t y, index_t z,
                                           std::int64_t nnz, DataType dt,
                                           const EnergyParams& energy) {
  if (from == to) return {};
  return pipeline_cost(conversion_blocks(from, to),
                       tensor_conversion_work(from, to, x, y, z, nnz, dt),
                       energy);
}

}  // namespace mt
