#include "mint/mint.hpp"

#include "mint/pipelines.hpp"

namespace mt {

namespace {
// Overlay wiring (muxes, forwarding links, control) added when MINT_mr
// repurposes accelerator adders/dividers.
constexpr double kOverlayAreaMm2 = 0.007;
constexpr double kOverlayPowerMw = 2.0;
}  // namespace

const std::vector<ShowcaseConversion>& showcase_conversions() {
  static const std::vector<ShowcaseConversion> kList = {
      {Format::kCSR, Format::kCSC},   // backprop weight transpose
      {Format::kRLC, Format::kCOO},   // common MCF -> translation hub
      {Format::kCSR, Format::kBSR},   // structured-data accelerators
      {Format::kDense, Format::kCSF}, // compress dense outputs
  };
  return kList;
}

double mint_area_mm2(MintDesign d) {
  switch (d) {
    case MintDesign::kBaseline: {
      // Private block copies per conversion, no sharing.
      double a = 0.0;
      for (const auto& c : showcase_conversions()) {
        // Matrix pipelines except Dense->CSF, which is a tensor pipeline;
        // the block list is format-driven either way.
        for (Block b : conversion_blocks(c.from, c.to)) {
          a += block_spec(b).area_mm2;
        }
      }
      return a;
    }
    case MintDesign::kMerge: {
      double a = 0.0;
      for (Block b : kAllBlocks) a += block_spec(b).area_mm2;
      return a;
    }
    case MintDesign::kMergeReuse: {
      double a = kOverlayAreaMm2;
      for (Block b : kAllBlocks) {
        if (!reusable_in_accelerator(b)) a += block_spec(b).area_mm2;
      }
      return a;
    }
  }
  return 0.0;
}

double mint_power_mw(MintDesign d) {
  switch (d) {
    case MintDesign::kBaseline: {
      double p = 0.0;
      for (const auto& c : showcase_conversions()) {
        for (Block b : conversion_blocks(c.from, c.to)) {
          p += block_spec(b).power_mw;
        }
      }
      return p;
    }
    case MintDesign::kMerge: {
      double p = 0.0;
      for (Block b : kAllBlocks) p += block_spec(b).power_mw;
      return p;
    }
    case MintDesign::kMergeReuse: {
      double p = kOverlayPowerMw;
      for (Block b : kAllBlocks) {
        if (!reusable_in_accelerator(b)) p += block_spec(b).power_mw;
      }
      return p;
    }
  }
  return 0.0;
}

double divmod_area_fraction() {
  const double dm = block_spec(Block::kParallelDiv).area_mm2 +
                    block_spec(Block::kParallelMod).area_mm2;
  return dm / mint_area_mm2(MintDesign::kMerge);
}

double divmod_power_fraction() {
  const double dm = block_spec(Block::kParallelDiv).power_mw +
                    block_spec(Block::kParallelMod).power_mw;
  return dm / mint_power_mw(MintDesign::kMerge);
}

}  // namespace mt
