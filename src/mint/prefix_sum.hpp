// The three prefix-sum (scan) microarchitectures of paper Fig. 9, modeled
// functionally with exact latency and adder-count accounting.
//
// Prefix sums appear in every MINT conversion (pointer construction,
// position calculation, occupancy compaction); the paper's MINT_mr design
// point realizes them by overlaying forwarding links and muxes on the
// accelerator's existing adders, trading area against latency:
//   serial chain    — reuses a store-and-forward reduction; O(N) latency,
//                     simplest wiring, +2%/+3% area/power on a 16x16 array
//   work efficient  — Brent-Kung on an adder tree; 2*log2(N) latency
//   highly parallel — Kogge-Stone; log2(N) latency, most adders/links,
//                     +20%/+27% area/power
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mt {

enum class PrefixDesign : std::uint8_t {
  kSerialChain,
  kWorkEfficient,
  kHighlyParallel,
};

constexpr std::string_view name_of(PrefixDesign d) {
  switch (d) {
    case PrefixDesign::kSerialChain: return "serial-chain";
    case PrefixDesign::kWorkEfficient: return "work-efficient";
    case PrefixDesign::kHighlyParallel: return "highly-parallel";
  }
  return "?";
}

struct ScanResult {
  std::vector<std::int64_t> sums;  // inclusive prefix sums
  std::int64_t latency_cycles = 0; // pipeline depth for one N-wide batch
  std::int64_t adds = 0;           // adder activations consumed
};

// Runs an inclusive scan over `x` with the given design's dataflow; all
// three produce identical sums but different latency/adds.
ScanResult prefix_sum(std::span<const std::int64_t> x, PrefixDesign d);

// Structural costs for an N-input instance.
std::int64_t scan_latency(std::int64_t n, PrefixDesign d);
std::int64_t scan_adder_count(std::int64_t n, PrefixDesign d);

// Area/power overhead fractions of overlaying the design on an existing
// int32 PE array (paper §VII-B measurements).
struct OverlayOverhead {
  double area_frac = 0.0;
  double power_frac = 0.0;
};
OverlayOverhead scan_overlay_overhead(PrefixDesign d);

}  // namespace mt
