#include "mint/prefix_sum.hpp"

#include <bit>

#include "common/error.hpp"

namespace mt {

namespace {
std::int64_t log2_ceil(std::int64_t n) {
  return n <= 1 ? 0 : std::bit_width(static_cast<std::uint64_t>(n - 1));
}
}  // namespace

ScanResult prefix_sum(std::span<const std::int64_t> x, PrefixDesign d) {
  const auto n = static_cast<std::int64_t>(x.size());
  ScanResult r;
  r.sums.assign(x.begin(), x.end());
  r.latency_cycles = scan_latency(n, d);
  if (n == 0) return r;

  switch (d) {
    case PrefixDesign::kSerialChain: {
      // One adder per position, each forwarding to its right neighbour.
      for (std::int64_t i = 1; i < n; ++i) {
        r.sums[static_cast<std::size_t>(i)] += r.sums[static_cast<std::size_t>(i - 1)];
        ++r.adds;
      }
      break;
    }
    case PrefixDesign::kWorkEfficient: {
      // Brent-Kung: up-sweep (reduce) then down-sweep on a padded tree.
      const std::int64_t levels = log2_ceil(n);
      for (std::int64_t lvl = 0; lvl < levels; ++lvl) {
        const std::int64_t stride = std::int64_t{1} << (lvl + 1);
        for (std::int64_t i = stride - 1; i < n; i += stride) {
          r.sums[static_cast<std::size_t>(i)] +=
              r.sums[static_cast<std::size_t>(i - stride / 2)];
          ++r.adds;
        }
      }
      for (std::int64_t lvl = levels - 2; lvl >= 0; --lvl) {
        const std::int64_t stride = std::int64_t{1} << (lvl + 1);
        for (std::int64_t i = stride + stride / 2 - 1; i < n; i += stride) {
          r.sums[static_cast<std::size_t>(i)] +=
              r.sums[static_cast<std::size_t>(i - stride / 2)];
          ++r.adds;
        }
      }
      break;
    }
    case PrefixDesign::kHighlyParallel: {
      // Kogge-Stone: log N rounds, each position adding its d-distant
      // left neighbour.
      std::vector<std::int64_t> tmp(r.sums.size());
      for (std::int64_t dist = 1; dist < n; dist <<= 1) {
        tmp = r.sums;
        for (std::int64_t i = dist; i < n; ++i) {
          r.sums[static_cast<std::size_t>(i)] =
              tmp[static_cast<std::size_t>(i)] +
              tmp[static_cast<std::size_t>(i - dist)];
          ++r.adds;
        }
      }
      break;
    }
  }
  return r;
}

std::int64_t scan_latency(std::int64_t n, PrefixDesign d) {
  if (n <= 1) return n;
  switch (d) {
    case PrefixDesign::kSerialChain:
      return n;  // the carry ripples through every adder
    case PrefixDesign::kWorkEfficient:
      return 2 * log2_ceil(n);
    case PrefixDesign::kHighlyParallel:
      return log2_ceil(n);
  }
  return n;
}

std::int64_t scan_adder_count(std::int64_t n, PrefixDesign d) {
  if (n <= 1) return 0;
  switch (d) {
    case PrefixDesign::kSerialChain:
      // N-1 chain adders plus the offset row that removes the blocking
      // stall between batches (paper Fig. 9a).
      return (n - 1) + n;
    case PrefixDesign::kWorkEfficient:
      return 2 * (n - 1) - log2_ceil(n);  // Brent-Kung node count
    case PrefixDesign::kHighlyParallel:
      return n * log2_ceil(n) - n + 1;  // Kogge-Stone node count
  }
  return 0;
}

OverlayOverhead scan_overlay_overhead(PrefixDesign d) {
  // Paper §VII-B: serial chain overlay on a 16x16 int32 array costs +2%
  // area / +3% power; the 32-input highly parallel overlay costs +20% /
  // +27%. Work-efficient sits between.
  switch (d) {
    case PrefixDesign::kSerialChain: return {0.02, 0.03};
    case PrefixDesign::kWorkEfficient: return {0.09, 0.12};
    case PrefixDesign::kHighlyParallel: return {0.20, 0.27};
  }
  return {};
}

}  // namespace mt
