// Host-offloaded format conversion — the Flex_Flex_SW baseline (paper
// Table I/II "SW": MKL on CPU, cuSPARSE on GPU).
//
// Offloading pays (1) host compute time at library throughput, (2)
// host<->device transfers (PCIe for the GPU path — the H2D/D2H costs
// Fig. 11 shows reaching 75% of total time), and (3) host platform power
// for the duration, which is why Fig. 10c shows MINT about three orders
// of magnitude more energy-efficient.
#pragma once

#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "formats/format.hpp"
#include "mint/pipelines.hpp"

namespace mt {

enum class HostPlatform : std::uint8_t { kCpu, kGpu };

constexpr std::string_view name_of(HostPlatform p) {
  return p == HostPlatform::kCpu ? "CPU(MKL)" : "GPU(cuSPARSE)";
}

struct OffloadCost {
  double compute_s = 0.0;   // host library conversion time
  double transfer_s = 0.0;  // H2D + D2H (GPU) / memory traffic (CPU)
  double energy_j = 0.0;    // platform power * total time

  double total_s() const { return compute_s + transfer_s; }
  double transfer_fraction() const {
    const double t = total_s();
    return t == 0.0 ? 0.0 : transfer_s / t;
  }
};

// Conversion throughputs of host libraries (elements/second), calibrated
// to the wall-clock magnitudes of the paper's Fig. 10 (milliseconds for
// multimillion-nonzero matrices).
struct HostRates {
  double cpu_elems_per_s = 1.5e8;
  double gpu_elems_per_s = 8.0e8;
  // Host-side active power during conversion (fraction of TDP).
  double active_power_fraction = 0.4;
};

OffloadCost sw_conversion_cost(Format from, Format to, index_t m, index_t k,
                               std::int64_t nnz, DataType dt, HostPlatform p,
                               const EnergyParams& energy,
                               const HostRates& rates = {});

}  // namespace mt
