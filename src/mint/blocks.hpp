// MINT building-block catalog (paper Fig. 8a).
//
// Each block carries 28 nm post-P&R area/power and a steady-state
// throughput. The catalog is calibrated so the composed design points
// reproduce the paper's §VII-B numbers: MINT_m = 0.41 mm^2 with the
// divide+mod units at 74% of area and 65% of power; MINT_b = 0.95 mm^2
// over the four showcased conversions; MINT_mr = 0.23 mm^2 after reusing
// accelerator adders (prefix sum) and activation-unit dividers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mt {

enum class Block : std::uint8_t {
  kPrefixSum,      // 32-input scan unit
  kParallelDiv,    // 8 pipelined dividers
  kParallelMod,    // 8 pipelined modulo units
  kSorter,         // pipelined sorting network (bus-width inputs)
  kClusterCounter, // histogram of ids within a chunk
  kComparators,    // id match/ordering comparators
  kMultipliers,    // 8 multipliers (position scaling)
  kMemController,  // address generators + FIFOs + crossbar
};

inline constexpr std::array<Block, 8> kAllBlocks = {
    Block::kPrefixSum,  Block::kParallelDiv,    Block::kParallelMod,
    Block::kSorter,     Block::kClusterCounter, Block::kComparators,
    Block::kMultipliers, Block::kMemController};

constexpr std::string_view name_of(Block b) {
  switch (b) {
    case Block::kPrefixSum: return "prefix-sum";
    case Block::kParallelDiv: return "parallel-div";
    case Block::kParallelMod: return "parallel-mod";
    case Block::kSorter: return "sorter";
    case Block::kClusterCounter: return "cluster-counter";
    case Block::kComparators: return "comparators";
    case Block::kMultipliers: return "multipliers";
    case Block::kMemController: return "mem-controller";
  }
  return "?";
}

struct BlockSpec {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  std::int64_t throughput = 0;  // elements per cycle, steady state
  bool accelerator_can_reuse = false;  // MINT_mr removes it from the macro
};

// The calibrated catalog entry for a block.
const BlockSpec& block_spec(Block b);

// Whether the accelerator datapath can absorb this block in MINT_mr
// (adders become the prefix sum per Fig. 9; activation-unit dividers
// serve the parallel divide, §V-A).
constexpr bool reusable_in_accelerator(Block b) {
  return b == Block::kPrefixSum || b == Block::kParallelDiv;
}

}  // namespace mt
