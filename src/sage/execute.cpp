#include "sage/execute.hpp"

#include "common/error.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttm.hpp"

namespace mt {

namespace {

// MCF materialization followed by the MCF -> ACF conversion step: exactly
// the data movement MINT performs on-accelerator, run through the software
// converter so the result is functionally checkable.
AnyMatrix through_mcf(const CooMatrix& a, Format mcf, Format acf) {
  const AnyMatrix stored = convert(AnyMatrix(a), mcf);
  return convert(stored, acf);
}

}  // namespace

SageExecution execute_choice(const SageChoice& c, const CooMatrix& a,
                             const CooMatrix& b, double tol) {
  const AnyMatrix acf_a = through_mcf(a, c.mcf_a, c.acf_a);
  const AnyMatrix acf_b = through_mcf(b, c.mcf_b, c.acf_b);
  SageExecution r;
  r.output = exec::spmm(acf_a, acf_b, &r.dispatch);
  const auto want = gemm(a.to_dense(), b.to_dense());
  r.max_abs_err = max_abs_diff(r.output, want);
  r.verified = r.max_abs_err <= tol;
  return r;
}

SageExecution execute_choice_spmm(const SageChoice& c, const CooMatrix& a,
                                  const DenseMatrix& b, double tol) {
  const AnyMatrix acf_a = through_mcf(a, c.mcf_a, c.acf_a);
  SageExecution r;
  if (c.acf_b == Format::kDense) {
    r.output = exec::spmm(acf_a, b, &r.dispatch);
  } else {
    r.output = exec::spmm(acf_a, encode(b, c.acf_b), &r.dispatch);
  }
  const auto want = gemm(a.to_dense(), b);
  r.max_abs_err = max_abs_diff(r.output, want);
  r.verified = r.max_abs_err <= tol;
  return r;
}

SageTensorExecution execute_tensor_choice(const SageTensorChoice& choice,
                                          Kernel kernel, const CooTensor3& x,
                                          const DenseMatrix& b,
                                          const DenseMatrix& c, double tol) {
  MT_REQUIRE(kernel == Kernel::kSpTTM || kernel == Kernel::kMTTKRP,
             "tensor kernels are SpTTM or MTTKRP");
  const AnyTensor stored = convert(AnyTensor(x), choice.mcf_t);
  const AnyTensor acf = convert(stored, choice.acf_t);
  SageTensorExecution r;
  if (kernel == Kernel::kMTTKRP) {
    const auto got = exec::mttkrp(acf, b, c, &r.dispatch);
    r.max_abs_err = max_abs_diff(got, mttkrp_dense(x.to_dense(), b, c));
  } else {
    const auto got = exec::ttm(acf, b, &r.dispatch);
    r.max_abs_err = max_abs_diff(got, ttm_dense(x.to_dense(), b));
  }
  r.verified = r.max_abs_err <= tol;
  return r;
}

}  // namespace mt
