#include "sage/plan_key.hpp"

#include <bit>

namespace mt {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) { mix(h, std::bit_cast<std::uint64_t>(v)); }

}  // namespace

std::uint64_t plan_fingerprint(const AccelConfig& cfg,
                               const EnergyParams& energy) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(cfg.num_pes));
  mix(h, static_cast<std::uint64_t>(cfg.vector_width));
  mix(h, static_cast<std::uint64_t>(cfg.pe_buffer_bytes));
  mix(h, static_cast<std::uint64_t>(cfg.bus_bits));
  mix(h, static_cast<std::uint64_t>(cfg.dtype));
  mix(h, cfg.index_match_rate);
  mix(h, energy.int32_add_j);
  mix(h, energy.fp32_mult_j);
  mix(h, energy.fp32_mac_j);
  mix(h, energy.int8_mac_j);
  mix(h, energy.dram_j_per_32b);
  mix(h, energy.sram_small_j_per_32b);
  mix(h, energy.sram_large_j_per_32b);
  mix(h, energy.noc_j_per_32b_hop);
  mix(h, energy.clock_hz);
  mix(h, energy.dram_bytes_per_cycle);
  mix(h, energy.pcie_bytes_per_second);
  mix(h, energy.pcie_latency_s);
  mix(h, energy.cpu_tdp_w);
  mix(h, energy.gpu_tdp_w);
  return h;
}

}  // namespace mt
