// SAGE — Sparsity formAt Generation Engine (paper §VI).
//
// Given a workload (concrete sparse operands), the accelerator
// configuration, and the conversion capability, SAGE enumerates every
// admissible MCF x ACF combination, prices each with its cost model
// (DRAM transfer + format conversion) and performance model (the
// accelerator simulator's analytic mode), and returns the combination
// with the lowest energy-delay product.
//
// The admissible format space is itself a parameter, because the Table-II
// baseline accelerators are exactly restrictions of this search: a TPU is
// SAGE constrained to Dense-Dense with no converter, ExTensor is
// MCF==ACF, NVDLA is a fixed Dense ACF with a HW decompressor, and so on
// (see src/baselines).
#pragma once

#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/perf_model.hpp"
#include "energy/energy_model.hpp"
#include "formats/format.hpp"
#include "formats/tensor_coo.hpp"

namespace mt {

enum class ConverterKind : std::uint8_t {
  kNone,        // MCF must equal ACF
  kMint,        // this work: on-accelerator MINT module
  kFixedHw,     // dedicated single-purpose decompressor (NVDLA-style)
  kSoftwareCpu, // host MKL offload
  kSoftwareGpu, // device cuSPARSE offload
};

// The search space SAGE enumerates.
struct FormatSpace {
  std::vector<Format> mcf_a;
  std::vector<Format> mcf_b;
  std::vector<Format> acf_a;  // streaming formats (Dense/CSR/COO)
  std::vector<Format> acf_b;  // stationary formats (Dense/CSC)
  bool mcf_must_equal_acf = false;
  ConverterKind converter = ConverterKind::kMint;

  // The unrestricted space of this work (Flex_Flex_HW).
  static FormatSpace full();
};

struct SageChoice {
  Format mcf_a = Format::kDense;
  Format mcf_b = Format::kDense;
  Format acf_a = Format::kDense;
  Format acf_b = Format::kDense;
  Format mcf_o = Format::kDense;  // output storage format
  CostBreakdown cost;
  double edp = 0.0;
  PerfResult perf;  // compute-phase details of the winning combination

  std::string describe() const;
};

// Selects formats for O = A * B (covers GEMM/SpMM/SpGEMM — the operands'
// nnz decides which regime the workload is in).
SageChoice sage_select_matmul(const CooMatrix& a, const CooMatrix& b,
                              const AccelConfig& cfg,
                              const EnergyParams& energy,
                              const FormatSpace& space = FormatSpace::full());

// SpMM variant: B is a fully dense K x N factor matrix (Table III's
// right-hand scenario). Searches A's formats; B's candidates come from
// `space` but are priced against a dense operand via the closed-form
// performance model, so no giant dense COO is ever materialized.
SageChoice sage_select_spmm_dense_b(const CooMatrix& a, index_t n,
                                    const AccelConfig& cfg,
                                    const EnergyParams& energy,
                                    const FormatSpace& space = FormatSpace::full());

// Selects formats for a tensor kernel (SpTTM or MTTKRP) with dense factor
// matrices of `rank` columns. The tensor's MCF/ACF are searched; factors
// are Dense-Dense (every ACFf/MCFf entry of Table III's tensor rows).
struct TensorFormatSpace {
  std::vector<Format> mcf_t;
  std::vector<Format> acf_t;  // Dense/COO/CSF
  bool mcf_must_equal_acf = false;
  ConverterKind converter = ConverterKind::kMint;

  static TensorFormatSpace full();
};

struct SageTensorChoice {
  Format mcf_t = Format::kDense;
  Format acf_t = Format::kDense;
  CostBreakdown cost;
  double edp = 0.0;
  PerfResult perf;
};

SageTensorChoice sage_select_tensor(
    const CooTensor3& x, index_t rank, Kernel kernel, const AccelConfig& cfg,
    const EnergyParams& energy,
    const TensorFormatSpace& space = TensorFormatSpace::full());

// Cost model helper (exposed for tests and benches): full pipeline cost of
// one specific combination.
CostBreakdown price_matmul_combination(const CooMatrix& a, const CooMatrix& b,
                                       Format mcf_a, Format mcf_b,
                                       Format acf_a, Format acf_b,
                                       Format mcf_o, ConverterKind converter,
                                       const AccelConfig& cfg,
                                       const EnergyParams& energy);

// Best (most compact) storage format for the product O, estimated from
// the operands' uniform-density product structure.
Format choose_output_mcf(const CooMatrix& a, const CooMatrix& b, DataType dt,
                         std::int64_t* out_nnz_estimate = nullptr);

}  // namespace mt
