// Plan identity for serving-layer memoization.
//
// A SAGE decision is a pure function of the workload operands, the
// accelerator configuration, and the energy calibration: rerunning the
// search with the same inputs always returns the same SageChoice /
// SageTensorChoice, so the choice itself is a reusable plan. The serving
// runtime identifies registered operands by stable handles; this header
// supplies the remaining key ingredient — a stable fingerprint of the
// model inputs — so that (kernel, operand ids, fingerprint, factor width)
// fully identifies a distinct workload and the plan cache can hand the
// memoized choice to every subsequent request.
#pragma once

#include <cstdint>

#include "accel/config.hpp"
#include "energy/energy_model.hpp"

namespace mt {

// Order-sensitive FNV-1a over every AccelConfig and EnergyParams field
// that influences SAGE pricing. Two configurations with equal fingerprints
// price identically; any field change reseeds the plan space.
std::uint64_t plan_fingerprint(const AccelConfig& cfg,
                               const EnergyParams& energy);

}  // namespace mt
