// Functional execution of a SAGE decision — the closed loop the analytic
// models alone cannot provide.
//
// SAGE prices MCF x ACF combinations; execute_choice() actually runs one:
// the operands are materialized in the winning MCF, converted MCF -> ACF
// through the software conversion layer (the functional mirror of MINT),
// the kernel runs in the chosen ACF via the execution engine, and the
// output is checked against the dense reference. A SageChoice that cannot
// round-trip this path is a pricing-only artifact; the tests use this to
// guarantee every modeled scenario is executable.
#pragma once

#include "exec/exec.hpp"
#include "sage/sage.hpp"

namespace mt {

struct SageExecution {
  bool verified = false;    // max_abs_err <= tol
  double max_abs_err = 0.0; // vs the dense reference
  exec::Dispatch dispatch;  // how the engine ran the ACF kernel
  DenseMatrix output;       // decoded engine output
};

// Executes a matmul choice with both operands sparse (SpGEMM/SpMM regime).
// Reference: dense GEMM over the decoded operands — keep shapes modest.
SageExecution execute_choice(const SageChoice& c, const CooMatrix& a,
                             const CooMatrix& b, double tol = 1e-3);

// Executes an SpMM choice whose factor B is given dense (the
// sage_select_spmm_dense_b scenario); B is encoded into the chosen ACFb.
SageExecution execute_choice_spmm(const SageChoice& c, const CooMatrix& a,
                                  const DenseMatrix& b, double tol = 1e-3);

struct SageTensorExecution {
  bool verified = false;
  double max_abs_err = 0.0;
  exec::Dispatch dispatch;
};

// Executes a tensor choice: MTTKRP takes factors (b, c); SpTTM takes u = b
// and ignores c. Reference: the dense tensor kernel over x.to_dense().
SageTensorExecution execute_tensor_choice(const SageTensorChoice& choice,
                                          Kernel kernel, const CooTensor3& x,
                                          const DenseMatrix& b,
                                          const DenseMatrix& c,
                                          double tol = 1e-3);

}  // namespace mt
