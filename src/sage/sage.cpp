#include "sage/sage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "formats/storage.hpp"
#include "mint/pipelines.hpp"
#include "mint/sw_offload.hpp"

namespace mt {

namespace {

// Conversion cost for one operand under the selected converter capability.
// Returns cycles/energy charged to the conversion stage.
ConversionCost operand_conversion(Format mcf, Format acf, index_t rows,
                                  index_t cols, std::int64_t nnz, DataType dt,
                                  ConverterKind conv,
                                  const EnergyParams& energy) {
  if (mcf == acf) return {};
  switch (conv) {
    case ConverterKind::kNone:
      MT_ENSURE(false, "kNone spaces must not reach conversion pricing");
    case ConverterKind::kMint:
    case ConverterKind::kFixedHw: {
      // A dedicated decompressor has the same streaming-overlapped profile
      // as the equivalent MINT pipeline; the difference is flexibility
      // (it exists only for its one hardwired pair), not unit cost.
      // The conversion overlaps the operand's DRAM stream-in (§V-B), which
      // the cost model already charges as dram_cycles — only the excess
      // (work outpacing DRAM, plus pipeline fill) serializes here.
      auto c = mint_matrix_conversion_cost(mcf, acf, rows, cols, nnz, dt, energy);
      const auto stream_in = energy.dram_cycles(
          expected_matrix_storage(mcf, rows, cols, nnz, dt).total_bits());
      c.cycles = std::max<std::int64_t>(c.cycles - stream_in, 0);
      return c;
    }
    case ConverterKind::kSoftwareCpu:
    case ConverterKind::kSoftwareGpu: {
      const auto host = conv == ConverterKind::kSoftwareCpu
                            ? HostPlatform::kCpu
                            : HostPlatform::kGpu;
      const auto c = sw_conversion_cost(mcf, acf, rows, cols, nnz, dt, host, energy);
      return {static_cast<std::int64_t>(c.total_s() * energy.clock_hz),
              c.energy_j};
    }
  }
  return {};
}

}  // namespace

FormatSpace FormatSpace::full() {
  FormatSpace s;
  s.mcf_a.assign(kMatrixMcfChoices.begin(), kMatrixMcfChoices.end());
  s.mcf_b.assign(kMatrixMcfChoices.begin(), kMatrixMcfChoices.end());
  s.acf_a = {Format::kDense, Format::kCSR, Format::kCOO};
  s.acf_b = {Format::kDense, Format::kCSC};
  return s;
}

TensorFormatSpace TensorFormatSpace::full() {
  TensorFormatSpace s;
  s.mcf_t.assign(kTensorMcfChoices.begin(), kTensorMcfChoices.end());
  s.acf_t = {Format::kDense, Format::kCOO, Format::kCSF};
  return s;
}

Format choose_output_mcf(const CooMatrix& a, const CooMatrix& b, DataType dt,
                         std::int64_t* out_nnz_estimate) {
  // Under uniform sparsity, O(i,j) is nonzero unless all K pairings miss:
  // d_o = 1 - (1 - dA*dB)^K.
  const double da = static_cast<double>(a.nnz()) /
                    (static_cast<double>(a.rows()) * static_cast<double>(a.cols()));
  const double db = static_cast<double>(b.nnz()) /
                    (static_cast<double>(b.rows()) * static_cast<double>(b.cols()));
  const double d_pair = std::clamp(da * db, 0.0, 1.0);
  const double d_o =
      d_pair >= 1.0
          ? 1.0
          : -std::expm1(static_cast<double>(a.cols()) * std::log1p(-d_pair));
  const auto cells =
      static_cast<double>(a.rows()) * static_cast<double>(b.cols());
  const auto nnz_o = static_cast<std::int64_t>(std::ceil(d_o * cells));
  if (out_nnz_estimate != nullptr) *out_nnz_estimate = nnz_o;

  Format best = Format::kDense;
  std::int64_t best_bits = std::numeric_limits<std::int64_t>::max();
  for (Format f : kMatrixMcfChoices) {
    const auto bits =
        expected_matrix_storage(f, a.rows(), b.cols(), nnz_o, dt).total_bits();
    if (bits < best_bits) {
      best_bits = bits;
      best = f;
    }
  }
  return best;
}

CostBreakdown price_matmul_combination(const CooMatrix& a, const CooMatrix& b,
                                       Format mcf_a, Format mcf_b,
                                       Format acf_a, Format acf_b,
                                       Format mcf_o, ConverterKind converter,
                                       const AccelConfig& cfg,
                                       const EnergyParams& energy) {
  const DataType dt = cfg.dtype;
  CostBreakdown c;

  // --- DRAM: stream both operands in their MCF, write O in its MCF ---
  const auto bits_a =
      expected_matrix_storage(mcf_a, a.rows(), a.cols(), a.nnz(), dt).total_bits();
  const auto bits_b =
      expected_matrix_storage(mcf_b, b.rows(), b.cols(), b.nnz(), dt).total_bits();
  std::int64_t nnz_o = 0;
  choose_output_mcf(a, b, dt, &nnz_o);
  const auto bits_o =
      expected_matrix_storage(mcf_o, a.rows(), b.cols(), nnz_o, dt).total_bits();
  c.dram_cycles = energy.dram_cycles(bits_a + bits_b + bits_o);
  c.dram_energy_j = energy.dram_energy_j(bits_a + bits_b + bits_o);

  // --- Conversion: each operand whose MCF differs from its ACF ---
  const auto conv_a = operand_conversion(mcf_a, acf_a, a.rows(), a.cols(),
                                         a.nnz(), dt, converter, energy);
  const auto conv_b = operand_conversion(mcf_b, acf_b, b.rows(), b.cols(),
                                         b.nnz(), dt, converter, energy);
  c.convert_cycles = conv_a.cycles + conv_b.cycles;
  c.convert_energy_j = conv_a.energy_j + conv_b.energy_j;

  // --- Compute: the accelerator running the chosen ACFs ---
  const auto perf = model_matmul(a, b, acf_a, acf_b, cfg, energy);
  c.compute_cycles = perf.total_cycles();
  c.compute_energy_j = perf.compute_energy_j;
  return c;
}

SageChoice sage_select_matmul(const CooMatrix& a, const CooMatrix& b,
                              const AccelConfig& cfg,
                              const EnergyParams& energy,
                              const FormatSpace& space) {
  MT_REQUIRE(!space.mcf_a.empty() && !space.mcf_b.empty() &&
                 !space.acf_a.empty() && !space.acf_b.empty(),
             "format space must be non-empty");
  const Format mcf_o = choose_output_mcf(a, b, cfg.dtype);

  SageChoice best;
  best.edp = std::numeric_limits<double>::infinity();
  for (Format acf_a : space.acf_a) {
    for (Format acf_b : space.acf_b) {
      const auto perf = model_matmul(a, b, acf_a, acf_b, cfg, energy);
      for (Format mcf_a : space.mcf_a) {
        if (space.mcf_must_equal_acf && mcf_a != acf_a) continue;
        if (space.converter == ConverterKind::kNone && mcf_a != acf_a) continue;
        for (Format mcf_b : space.mcf_b) {
          if (space.mcf_must_equal_acf && mcf_b != acf_b) continue;
          if (space.converter == ConverterKind::kNone && mcf_b != acf_b) continue;
          CostBreakdown c;
          const DataType dt = cfg.dtype;
          const auto bits_a = expected_matrix_storage(mcf_a, a.rows(), a.cols(),
                                                      a.nnz(), dt).total_bits();
          const auto bits_b = expected_matrix_storage(mcf_b, b.rows(), b.cols(),
                                                      b.nnz(), dt).total_bits();
          std::int64_t nnz_o = 0;
          choose_output_mcf(a, b, dt, &nnz_o);
          const auto bits_o = expected_matrix_storage(mcf_o, a.rows(), b.cols(),
                                                      nnz_o, dt).total_bits();
          c.dram_cycles = energy.dram_cycles(bits_a + bits_b + bits_o);
          c.dram_energy_j = energy.dram_energy_j(bits_a + bits_b + bits_o);
          const auto conv_a =
              mcf_a == acf_a ? ConversionCost{}
                             : operand_conversion(mcf_a, acf_a, a.rows(),
                                                  a.cols(), a.nnz(), dt,
                                                  space.converter, energy);
          const auto conv_b =
              mcf_b == acf_b ? ConversionCost{}
                             : operand_conversion(mcf_b, acf_b, b.rows(),
                                                  b.cols(), b.nnz(), dt,
                                                  space.converter, energy);
          c.convert_cycles = conv_a.cycles + conv_b.cycles;
          c.convert_energy_j = conv_a.energy_j + conv_b.energy_j;
          c.compute_cycles = perf.total_cycles();
          c.compute_energy_j = perf.compute_energy_j;

          const double e = c.edp(energy);
          if (e < best.edp) {
            best = {mcf_a, mcf_b, acf_a, acf_b, mcf_o, c, e, perf};
          }
        }
      }
    }
  }
  MT_ENSURE(std::isfinite(best.edp), "no admissible format combination");
  return best;
}

SageChoice sage_select_spmm_dense_b(const CooMatrix& a, index_t n,
                                    const AccelConfig& cfg,
                                    const EnergyParams& energy,
                                    const FormatSpace& space) {
  MT_REQUIRE(!space.mcf_a.empty() && !space.mcf_b.empty() &&
                 !space.acf_a.empty() && !space.acf_b.empty(),
             "format space must be non-empty");
  const DataType dt = cfg.dtype;
  const index_t k = a.cols();
  const std::int64_t b_nnz = k * n;  // fully dense factor

  // Output of sparse x dense is dense row-wise wherever A's row has any
  // nonzero; store Dense (it is within a few metadata bits of optimal and
  // matches every MCFO the paper reports for SpMM).
  const Format mcf_o = Format::kDense;
  const std::int64_t bits_o = a.rows() * n * bits_of(dt);

  SageChoice best;
  best.edp = std::numeric_limits<double>::infinity();
  for (Format acf_a : space.acf_a) {
    for (Format acf_b : space.acf_b) {
      const auto perf = model_matmul_dense_b(a, n, acf_a, acf_b, cfg, energy);
      for (Format mcf_a : space.mcf_a) {
        if (space.mcf_must_equal_acf && mcf_a != acf_a) continue;
        if (space.converter == ConverterKind::kNone && mcf_a != acf_a) continue;
        for (Format mcf_b : space.mcf_b) {
          if (space.mcf_must_equal_acf && mcf_b != acf_b) continue;
          if (space.converter == ConverterKind::kNone && mcf_b != acf_b) continue;
          CostBreakdown c;
          const auto bits_a = expected_matrix_storage(mcf_a, a.rows(), k,
                                                      a.nnz(), dt).total_bits();
          const auto bits_b =
              expected_matrix_storage(mcf_b, k, n, b_nnz, dt).total_bits();
          c.dram_cycles = energy.dram_cycles(bits_a + bits_b + bits_o);
          c.dram_energy_j = energy.dram_energy_j(bits_a + bits_b + bits_o);
          const auto conv_a =
              mcf_a == acf_a ? ConversionCost{}
                             : operand_conversion(mcf_a, acf_a, a.rows(), k,
                                                  a.nnz(), dt, space.converter,
                                                  energy);
          const auto conv_b =
              mcf_b == acf_b ? ConversionCost{}
                             : operand_conversion(mcf_b, acf_b, k, n, b_nnz,
                                                  dt, space.converter, energy);
          c.convert_cycles = conv_a.cycles + conv_b.cycles;
          c.convert_energy_j = conv_a.energy_j + conv_b.energy_j;
          c.compute_cycles = perf.total_cycles();
          c.compute_energy_j = perf.compute_energy_j;
          const double e = c.edp(energy);
          if (e < best.edp) {
            best = {mcf_a, mcf_b, acf_a, acf_b, mcf_o, c, e, perf};
          }
        }
      }
    }
  }
  MT_ENSURE(std::isfinite(best.edp), "no admissible format combination");
  return best;
}

SageTensorChoice sage_select_tensor(const CooTensor3& x, index_t rank,
                                    Kernel kernel, const AccelConfig& cfg,
                                    const EnergyParams& energy,
                                    const TensorFormatSpace& space) {
  MT_REQUIRE(kernel == Kernel::kSpTTM || kernel == Kernel::kMTTKRP,
             "tensor kernels are SpTTM or MTTKRP");
  MT_REQUIRE(!space.mcf_t.empty() && !space.acf_t.empty(),
             "format space must be non-empty");
  const DataType dt = cfg.dtype;

  // Dense factor matrices: B (Y x R) and C (Z x R) for MTTKRP, U (Z x R)
  // for SpTTM; stored and consumed Dense (Table III tensor rows).
  const std::int64_t factor_bits =
      (kernel == Kernel::kMTTKRP ? (x.dim_y() + x.dim_z()) : x.dim_z()) * rank *
      bits_of(dt);
  // Output: dense factor-sized matrix for MTTKRP, fiber x rank tensor for
  // SpTTM (drained dense).
  const std::int64_t out_bits =
      (kernel == Kernel::kMTTKRP ? x.dim_x() * rank
                                 : x.dim_x() * x.dim_y() * rank) *
      bits_of(dt);

  SageTensorChoice best;
  best.edp = std::numeric_limits<double>::infinity();
  for (Format acf : space.acf_t) {
    const auto perf = kernel == Kernel::kSpTTM
                          ? model_spttm(x, rank, acf, cfg, energy)
                          : model_mttkrp(x, rank, acf, cfg, energy);
    for (Format mcf : space.mcf_t) {
      if (space.mcf_must_equal_acf && mcf != acf) continue;
      if (space.converter == ConverterKind::kNone && mcf != acf) continue;
      CostBreakdown c;
      const auto bits_t =
          expected_tensor_storage(mcf, x.dim_x(), x.dim_y(), x.dim_z(),
                                  x.nnz(), dt).total_bits();
      c.dram_cycles = energy.dram_cycles(bits_t + factor_bits + out_bits);
      c.dram_energy_j = energy.dram_energy_j(bits_t + factor_bits + out_bits);
      if (mcf != acf) {
        auto conv = mint_tensor_conversion_cost(
            mcf, acf, x.dim_x(), x.dim_y(), x.dim_z(), x.nnz(), dt, energy);
        // Overlapped with the tensor's DRAM stream-in (see the matrix path).
        conv.cycles = std::max<std::int64_t>(
            conv.cycles - energy.dram_cycles(bits_t), 0);
        c.convert_cycles = conv.cycles;
        c.convert_energy_j = conv.energy_j;
      }
      c.compute_cycles = perf.total_cycles();
      c.compute_energy_j = perf.compute_energy_j;
      const double e = c.edp(energy);
      if (e < best.edp) best = {mcf, acf, c, e, perf};
    }
  }
  MT_ENSURE(std::isfinite(best.edp), "no admissible format combination");
  return best;
}

std::string SageChoice::describe() const {
  std::ostringstream os;
  os << "MCF " << name_of(mcf_a) << '(' << 'A' << ")-" << name_of(mcf_b)
     << "(B), ACF " << name_of(acf_a) << "(A)-" << name_of(acf_b)
     << "(B), O in " << name_of(mcf_o);
  return os.str();
}

}  // namespace mt
