// Core scalar types shared by every subsystem.
//
// Functional structures carry fp32 values and 64-bit indices; the *modeled*
// datatype (what the accelerator/DRAM cost models charge per element) is a
// separate DataType so the same functional tensor can be costed as int8,
// bf16 or fp32 — mirroring the paper's Fig. 4 quantization study.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mt {

using index_t = std::int64_t;  // dimensions, coordinates, nnz counts
using value_t = float;         // functional element values

// Element datatypes the cost models understand (paper evaluates 32- and
// 8-bit in Fig. 4 and uses 32-bit for the main evaluation).
enum class DataType : std::uint8_t { kInt8, kInt16, kBf16, kFp32 };

constexpr int bits_of(DataType dt) {
  switch (dt) {
    case DataType::kInt8: return 8;
    case DataType::kInt16: return 16;
    case DataType::kBf16: return 16;
    case DataType::kFp32: return 32;
  }
  return 32;
}

constexpr std::string_view name_of(DataType dt) {
  switch (dt) {
    case DataType::kInt8: return "int8";
    case DataType::kInt16: return "int16";
    case DataType::kBf16: return "bf16";
    case DataType::kFp32: return "fp32";
  }
  return "?";
}

// Tensor algebra kernels the accelerator runs (paper Fig. 2).
enum class Kernel : std::uint8_t { kGemm, kSpMM, kSpGEMM, kSpMV, kSpTTM, kMTTKRP };

constexpr std::string_view name_of(Kernel k) {
  switch (k) {
    case Kernel::kGemm: return "GEMM";
    case Kernel::kSpMM: return "SpMM";
    case Kernel::kSpGEMM: return "SpGEMM";
    case Kernel::kSpMV: return "SpMV";
    case Kernel::kSpTTM: return "SpTTM";
    case Kernel::kMTTKRP: return "MTTKRP";
  }
  return "?";
}

// Every kernel, in enum order — the iteration set for the execution
// engine's coverage queries, benches, and test messages.
inline constexpr std::array<Kernel, 6> kAllKernels = {
    Kernel::kGemm,  Kernel::kSpMM,  Kernel::kSpGEMM,
    Kernel::kSpMV,  Kernel::kSpTTM, Kernel::kMTTKRP};

// Kernels whose primary operand is a 3-D tensor rather than a matrix.
constexpr bool is_tensor_kernel(Kernel k) {
  return k == Kernel::kSpTTM || k == Kernel::kMTTKRP;
}

}  // namespace mt
