#include "common/threads.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mt {
namespace {

std::atomic<int> g_override{0};  // 0 = no explicit override

int env_or_default() {
  // Read-only env access; nothing in this process calls setenv/putenv, so
  // the libc race concurrency-mt-unsafe guards against cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MT_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

int hardware_threads() {
#ifdef _OPENMP
  return std::max(1, omp_get_num_procs());
#else
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
#endif
}

int num_threads() {
  const int n = g_override.load(std::memory_order_relaxed);
  return n >= 1 ? n : env_or_default();
}

void set_num_threads(int n) {
  g_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

int num_threads_override() {
  return std::max(g_override.load(std::memory_order_relaxed), 0);
}

int threads_per_worker(int pool_size) {
  if (pool_size <= 1) return num_threads();
  const int per_worker = std::max(1, hardware_threads() / pool_size);
  // Never hand a worker more threads than a solo caller would get.
  return std::min(per_worker, num_threads());
}

}  // namespace mt
