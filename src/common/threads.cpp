#include "common/threads.hpp"

#include <atomic>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mt {
namespace {

std::atomic<int> g_override{0};  // 0 = no explicit override

int env_or_default() {
  if (const char* env = std::getenv("MT_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

int num_threads() {
  const int n = g_override.load(std::memory_order_relaxed);
  return n >= 1 ? n : env_or_default();
}

void set_num_threads(int n) {
  g_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

}  // namespace mt
