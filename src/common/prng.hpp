// Deterministic pseudo-random generation for synthetic workloads.
//
// All synthetic tensors in the repository are produced from explicit seeds
// so every table/figure regenerates bit-identically. Xoshiro256** is used
// for speed; sample_distinct implements Floyd's algorithm so sampling k
// positions from an astronomically large index space (e.g. an 11k x 11k
// matrix at 1e-8 density) costs O(k) memory.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mt {

class Prng {
 public:
  explicit Prng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  value_t next_value(value_t lo = 0.5f, value_t hi = 1.5f);

  // k distinct values uniformly sampled from [0, n), returned sorted.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::uint64_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace mt
