// Clang Thread Safety Analysis layer — compile-time lock discipline.
//
// Two halves:
//
//   Attribute macros — MT_CAPABILITY / MT_GUARDED_BY / MT_REQUIRES /
//   MT_ACQUIRE / MT_RELEASE / MT_EXCLUDES and friends expand to clang's
//   thread-safety attributes under clang and to nothing elsewhere, so the
//   same source carries the lock contracts into every build while only
//   clang (-Wthread-safety -Wthread-safety-beta, -Werror on the mt
//   library) enforces them.
//
//   Annotated lock wrappers — mt::Mutex, mt::SharedMutex, mt::CondVar and
//   the scoped mt::LockGuard / mt::UniqueLock / mt::SharedLock. The
//   standard library types they wrap carry no annotations under
//   libstdc++, so std::mutex-guarded fields are invisible to the
//   analysis; every lock in src/runtime goes through these wrappers
//   instead. The wrappers are zero-cost: each method is a single
//   forwarded call and the attributes have no runtime representation.
//
// Condition variables: CondVar deliberately has no predicate-taking
// wait() overload. A predicate lambda is analyzed as a separate function
// that holds no locks, so its guarded-field reads would need blanket
// escape hatches; writing the wait loop inline keeps those reads in the
// locked caller where the analysis can prove them:
//
//   mt::UniqueLock lk(mu_);
//   while (!ready_) cv_.wait(lk);   // ready_ is MT_GUARDED_BY(mu_)
//
// Escape hatches: MT_NO_THREAD_SAFETY_ANALYSIS turns the analysis off for
// one function. Every use must carry a comment justifying why the access
// is safe (or intentionally weakly consistent) — grep for the macro to
// audit them all.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Macro arguments are capability *expressions* (`mu_`, `!mu_`, member
// references), not value expressions — parenthesizing them changes what
// the attribute names, so the usual macro-hygiene parens must be omitted.
// NOLINTBEGIN(bugprone-macro-parentheses)
#if defined(__clang__)
#define MT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MT_THREAD_ANNOTATION(x)  // gcc et al.: contracts documented only
#endif

// On a class: instances are lockable capabilities (mutexes).
#define MT_CAPABILITY(x) MT_THREAD_ANNOTATION(capability(x))
// On a class: RAII objects that hold a capability for their lifetime.
#define MT_SCOPED_CAPABILITY MT_THREAD_ANNOTATION(scoped_lockable)
// On a data member: reads need the capability held (shared suffices),
// writes need it held exclusively.
#define MT_GUARDED_BY(x) MT_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointed-to data is guarded (the pointer itself
// is not).
#define MT_PT_GUARDED_BY(x) MT_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: callers must already hold the capability.
#define MT_REQUIRES(...) \
  MT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MT_REQUIRES_SHARED(...) \
  MT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// On a function: acquires the capability (exclusively / shared).
#define MT_ACQUIRE(...) MT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MT_ACQUIRE_SHARED(...) \
  MT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
// On a function: releases the capability. The _GENERIC form releases
// whatever mode was acquired — scoped-lock destructors use it so one
// destructor serves exclusive and shared holders.
#define MT_RELEASE(...) MT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MT_RELEASE_SHARED(...) \
  MT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MT_RELEASE_GENERIC(...) \
  MT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
// On a function: acquires only when returning the given value.
#define MT_TRY_ACQUIRE(...) \
  MT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MT_TRY_ACQUIRE_SHARED(...) \
  MT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
// On a function: callers must NOT hold the capability (the function
// acquires it itself — calling with it held would self-deadlock).
#define MT_EXCLUDES(...) MT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: returns a reference to the named capability.
#define MT_RETURN_CAPABILITY(x) MT_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disable the analysis for one function. Justify every use.
#define MT_NO_THREAD_SAFETY_ANALYSIS \
  MT_THREAD_ANNOTATION(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)

namespace mt {

class CondVar;
class UniqueLock;

// std::mutex with the capability attribute the analysis tracks.
class MT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MT_ACQUIRE() { mu_.lock(); }
  void unlock() MT_RELEASE() { mu_.unlock(); }
  bool try_lock() MT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

// std::shared_mutex with exclusive and shared capability modes.
class MT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MT_ACQUIRE() { mu_.lock(); }
  void unlock() MT_RELEASE() { mu_.unlock(); }
  bool try_lock() MT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() MT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MT_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() MT_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock over Mutex or SharedMutex (std::lock_guard /
// std::unique_lock-without-early-unlock replacement). Held for the full
// scope; use UniqueLock when the lock must be dropped early or passed to
// a CondVar.
template <typename M>
class MT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& m) MT_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~LockGuard() MT_RELEASE_GENERIC() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& mu_;
};

// Scoped shared (reader) lock over SharedMutex.
class MT_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& m) MT_ACQUIRE_SHARED(m) : mu_(m) {
    mu_.lock_shared();
  }
  ~SharedLock() MT_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped exclusive lock over Mutex that supports early unlock()/relock()
// and CondVar waits (the std::unique_lock role). The analysis tracks the
// manual unlock, so the destructor's release is a no-op on already-
// unlocked paths.
class MT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) MT_ACQUIRE(m) : lk_(m.mu_) {}
  ~UniqueLock() MT_RELEASE_GENERIC() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() MT_ACQUIRE() { lk_.lock(); }
  void unlock() MT_RELEASE() { lk_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

// std::condition_variable over mt::Mutex. No predicate overload by design
// — see the file comment — so guarded wait conditions stay visible to the
// analysis in the calling scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `lk` and blocks; the lock is reacquired before
  // returning (the analysis conservatively models the lock as held
  // throughout, which matches every caller-visible state).
  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mt
