#include "common/prng.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace mt {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64 seeds the xoshiro state so nearby seeds give unrelated streams.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t n) {
  MT_REQUIRE(n > 0, "next_below needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Prng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

value_t Prng::next_value(value_t lo, value_t hi) {
  return lo + static_cast<value_t>(next_double()) * (hi - lo);
}

std::vector<std::uint64_t> Prng::sample_distinct(std::uint64_t n,
                                                 std::uint64_t k) {
  MT_REQUIRE(k <= n, "cannot sample more positions than exist");
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense samples a shuffle-free Bernoulli-style sweep would be O(n);
  // Floyd's algorithm is O(k) regardless of n, which matters at nnz=6.6k
  // out of 1.2e8 cells (m3plates) and beyond.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mt
