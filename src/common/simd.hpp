// AVX2/FMA wrapper layer for the kernels' SIMD tier.
//
// Design mirrors the thread knob in common/threads.hpp:
//
//   simd_enabled()      — what the kernels consult at dispatch time:
//                         API override > MT_SIMD env var > CPU detection.
//   set_simd_enabled()  — process-wide API override (tests, benches).
//   cpu_has_avx2()      — raw capability probe (AVX2 *and* FMA).
//
// Compilation model: nothing here requires -mavx2 globally. Every
// function that touches intrinsics carries MT_SIMD_TARGET
// (__attribute__((target("avx2,fma")))), so the binary always contains
// both tiers and dispatch is a runtime branch on simd_enabled(). On
// non-x86 targets (or -DMT_ENABLE_SIMD=OFF, which defines
// MT_SIMD_DISABLED) MT_SIMD_X86 is 0, the wrappers below vanish, and
// every kernel falls through to its scalar loop — the portable tier.
//
// Determinism contract (see README "Kernel performance"):
//   * scalar tier: bit-identical to the pre-SIMD kernels, always.
//   * SIMD tier: bit-identical run-to-run and across thread counts
//     (fixed lane order, fixed-order hadd(), OpenMP over disjoint
//     outputs) but *not* bit-identical to scalar — FMA fuses the
//     multiply-add rounding step and 8-lane accumulation reassociates
//     sums — so cross-tier checks are tolerance-based.
#pragma once

#include <cstdint>

#if !defined(MT_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__clang__) || defined(__GNUC__))
#define MT_SIMD_X86 1
#else
#define MT_SIMD_X86 0
#endif

#if MT_SIMD_X86
#include <immintrin.h>
#define MT_SIMD_TARGET __attribute__((target("avx2,fma")))
#else
#define MT_SIMD_TARGET
#endif

namespace mt {

// True when the running CPU supports AVX2 *and* FMA (both are required
// by the SIMD tier; they ship together on every AVX2 core since Haswell
// but are distinct CPUID bits). Always false on non-x86 builds.
bool cpu_has_avx2();

// The dispatch predicate: kernels take the SIMD path iff this is true.
// Precedence: set_simd_enabled() override, else the MT_SIMD env var
// ("off"/"0"/"scalar" force the scalar tier), else on when the CPU
// supports it. Never true when cpu_has_avx2() is false.
bool simd_enabled();

// Process-wide override, mirroring mt::set_num_threads: mode > 0 enables
// the SIMD tier (still subject to CPU support), mode == 0 forces the
// scalar tier, mode < 0 clears the override back to env/detection.
void set_simd_enabled(int mode);

// Raw override state (-1 none, 0 forced off, 1 forced on) so callers
// can save/restore around a scoped change.
int simd_override();

#if MT_SIMD_X86
namespace simd {

// Lanes per AVX2 vector of value_t (float).
inline constexpr int kLanes = 8;

MT_SIMD_TARGET inline __m256 zero() { return _mm256_setzero_ps(); }
MT_SIMD_TARGET inline __m256 set1(float v) { return _mm256_set1_ps(v); }
MT_SIMD_TARGET inline __m256 load(const float* p) {
  return _mm256_loadu_ps(p);
}
MT_SIMD_TARGET inline void store(float* p, __m256 v) {
  _mm256_storeu_ps(p, v);
}
MT_SIMD_TARGET inline __m256 add(__m256 a, __m256 b) {
  return _mm256_add_ps(a, b);
}
MT_SIMD_TARGET inline __m256 mul(__m256 a, __m256 b) {
  return _mm256_mul_ps(a, b);
}
// a * b + c in one rounding step.
MT_SIMD_TARGET inline __m256 fma(__m256 a, __m256 b, __m256 c) {
  return _mm256_fmadd_ps(a, b, c);
}

// Gather base[idx[0..7]] for 64-bit indices (index_t): two 4-lane
// i64 gathers glued into one 8-lane vector, preserving lane order.
MT_SIMD_TARGET inline __m256 gather(const float* base,
                                    const std::int64_t* idx) {
  const __m256i i0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  const __m256i i1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + 4));
  const __m128 lo = _mm256_i64gather_ps(base, i0, 4);
  const __m128 hi = _mm256_i64gather_ps(base, i1, 4);
  return _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
}

// Gather base[idx[l]] where idx[l] >= 0, yielding +0.0f for negative
// indices *without touching memory* (masked-off gather lanes are never
// dereferenced). This is the ELL padding contract: padding slots have
// col_id == -1 and must contribute exactly nothing — even when x holds
// infinities or NaNs, which a clamp-and-multiply-by-zero would poison.
MT_SIMD_TARGET inline __m256 gather_nonneg(const float* base,
                                           const std::int64_t* idx) {
  const __m256i i0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  const __m256i i1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + 4));
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  // All-ones 64-bit lane where idx >= 0; the gather mask reads each
  // lane's float-sized top bits, which cmpgt's all-ones pattern sets.
  const __m128 m0 = _mm_castsi128_ps(_mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_cmpgt_epi64(i0, neg1),
                                  _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0))));
  const __m128 m1 = _mm_castsi128_ps(_mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_cmpgt_epi64(i1, neg1),
                                  _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0))));
  const __m128 lo =
      _mm256_mask_i64gather_ps(_mm_setzero_ps(), base, i0, m0, 4);
  const __m128 hi =
      _mm256_mask_i64gather_ps(_mm_setzero_ps(), base, i1, m1, 4);
  return _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1);
}

// Horizontal sum with a *fixed* reduction tree — (0+4)+(2+6) etc. —
// so the result is a deterministic function of the lane values. Part
// of the SIMD tier's run-to-run bit-identity contract.
MT_SIMD_TARGET inline float hadd(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);                    // lanes l + (l+4)
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));           // + lanes (l+2)
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));       // + lane 1
  return _mm_cvtss_f32(s);
}

}  // namespace simd
#endif  // MT_SIMD_X86

}  // namespace mt
