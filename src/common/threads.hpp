// Thread-count knob for the OpenMP kernel paths.
//
// Resolution order: set_num_threads() (process-wide), then the
// MT_NUM_THREADS environment variable, then the OpenMP runtime default
// (1 when built without OpenMP). Always >= 1; 1 runs the kernels
// serially so results are reproducible run-to-run.
#pragma once

namespace mt {

// Thread count the kernels will use for their next parallel region.
int num_threads();

// Override the thread count for this process; n < 1 clears the override
// and falls back to MT_NUM_THREADS / the OpenMP default.
void set_num_threads(int n);

}  // namespace mt
