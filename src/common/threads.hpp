// Thread-count knob for the OpenMP kernel paths.
//
// Resolution order: set_num_threads() (process-wide), then the
// MT_NUM_THREADS environment variable, then the OpenMP runtime default
// (1 when built without OpenMP). Always >= 1; 1 runs the kernels
// serially so results are reproducible run-to-run.
//
// Interplay with the serving runtime's worker pool (src/runtime): each
// worker thread that calls a kernel opens its own OpenMP team, so the
// process runs up to pool_size x num_threads() compute threads at once.
// The pool therefore applies threads_per_worker() through set_num_threads()
// while it is live — kernel teams x workers stay within the hardware
// concurrency whenever the pool itself fits (each worker keeps at least
// one thread) — and restores the previous override on shutdown. The cap is
// process-wide: kernels invoked directly while a capped pool is running
// share the capped width.
//
// Thread-safety: all state here is a single relaxed atomic (threads.cpp);
// there are no mutexes, so there is nothing for the clang thread safety
// annotations (common/thread_annotations.hpp) to guard in this module.
#pragma once

namespace mt {

// Thread count the kernels will use for their next parallel region.
int num_threads();

// Override the thread count for this process; n < 1 clears the override
// and falls back to MT_NUM_THREADS / the OpenMP default.
void set_num_threads(int n);

// The raw override value (0 = no override set). Lets a scoped owner —
// the serving runtime's worker pool — save the knob and restore it
// exactly, including the "no override" state.
int num_threads_override();

// Hardware parallelism available to this process (always >= 1).
int hardware_threads();

// Hardware thread budget for one of `pool_size` concurrent kernel callers:
// always >= 1, so pool_size * threads_per_worker(pool_size) stays within
// the hardware concurrency whenever pool_size itself fits (pool_size >
// hardware_threads() degrades to one kernel thread per worker — the pool
// itself already oversubscribes). With pool_size <= 1 this is just the
// current num_threads() resolution.
int threads_per_worker(int pool_size);

}  // namespace mt
