// Error-handling helpers.
//
// The library is exception-based (C++ Core Guidelines E.2): precondition
// violations throw std::invalid_argument, internal invariant violations
// throw std::logic_error. The macros capture the failing expression so a
// test failure names the broken contract.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mt {

namespace detail {
[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensure(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace mt

// Precondition on a public API argument.
#define MT_REQUIRE(expr, msg)                                      \
  do {                                                             \
    if (!(expr)) ::mt::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Internal invariant that should hold if the implementation is correct.
#define MT_ENSURE(expr, msg)                                       \
  do {                                                             \
    if (!(expr)) ::mt::detail::throw_ensure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
