// 64-byte-aligned value storage for the SIMD kernel tier.
//
// Two pieces:
//
//   MemoryPool — the minimal recycling interface the runtime's Arena
//   (src/runtime/arena.hpp) implements. The allocator below optionally
//   carries a shared_ptr to one, so containers whose buffers should be
//   recycled across requests (the batcher's gather/scatter payloads) use
//   the same vector types as everything else. Implementations must be
//   thread-safe and must hand out kValueAlign-aligned blocks.
//
//   AlignedAllocator / AlignedVec — a std::vector allocator that
//   guarantees kValueAlign (one cache line, two AVX2 vectors) alignment
//   whether or not a pool is attached. All dense/format value arrays use
//   AlignedVec so vector loads in src/kernels start on aligned
//   addresses and never split cache lines.
//
// Propagation traits are all true: moves and swaps are O(1) pointer
// steals even between pool-backed and plain vectors, and a buffer always
// returns to the pool it came from because the allocator (and its
// shared_ptr) travels with the buffer. That shared_ptr also keeps the
// pool alive until the last buffer is released, so a response vector may
// outlive the Server whose arena allocated it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace mt {

// Alignment of every value buffer: one cache line (and 2x the 32-byte
// AVX2 vector width), so aligned loads never straddle lines.
inline constexpr std::size_t kValueAlign = 64;

inline bool is_aligned(const void* p, std::size_t align = kValueAlign) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

// Recycling upstream for AlignedAllocator. acquire() returns a block of
// at least `bytes` bytes aligned to kValueAlign; release() returns a
// block acquired with the same byte count. Thread-safe by contract.
class MemoryPool {
 public:
  virtual ~MemoryPool() = default;
  virtual void* acquire(std::size_t bytes) = 0;
  virtual void release(void* p, std::size_t bytes) noexcept = 0;
};

template <class T>
class AlignedAllocator {
  static_assert(alignof(T) <= kValueAlign, "over-aligned element type");

 public:
  using value_type = T;
  // Propagate on every container operation: buffers keep the allocator
  // (and pool) they were created with, and moves/swaps stay O(1).
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  AlignedAllocator() noexcept = default;
  explicit AlignedAllocator(std::shared_ptr<MemoryPool> pool) noexcept
      : pool_(std::move(pool)) {}
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>& other) noexcept
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = padded_bytes(n);
    if (pool_) return static_cast<T*>(pool_->acquire(bytes));
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kValueAlign}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = padded_bytes(n);
    if (pool_) {
      pool_->release(p, bytes);
      return;
    }
    ::operator delete(p, bytes, std::align_val_t{kValueAlign});
  }

  const std::shared_ptr<MemoryPool>& pool() const noexcept { return pool_; }

  // Allocators are interchangeable only when they draw from the same
  // upstream; a pool-backed buffer must not be freed by `delete`.
  friend bool operator==(const AlignedAllocator& a,
                         const AlignedAllocator& b) noexcept {
    return a.pool_ == b.pool_;
  }

 private:
  // Round requests up to whole cache lines. Pools key their free lists
  // by this padded size, so allocate/deallocate agree on the class.
  static std::size_t padded_bytes(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    return (bytes + kValueAlign - 1) / kValueAlign * kValueAlign;
  }

  std::shared_ptr<MemoryPool> pool_;
};

template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace mt
