// Bit-width arithmetic used by the storage-size model.
//
// The paper's compactness rule (§III-A): "The number of metadata bits
// required is the log of the maximum possible value." bits_for(n) returns
// the width of a field that must represent values in [0, n-1] (ids) —
// callers pass n = dimension for coordinate ids and n = nnz+1 for pointer
// fields whose maximum stored value is nnz.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mt {

// Width in bits of a field holding values in [0, n-1]; at least 1 bit.
constexpr int bits_for(std::uint64_t n) {
  if (n <= 2) return 1;
  return std::bit_width(n - 1);
}

constexpr std::int64_t bits_to_bytes(std::int64_t bits) {
  return (bits + 7) / 8;
}

// ceil(a / b) for non-negative a, positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

static_assert(bits_for(2) == 1);
static_assert(bits_for(3) == 2);
static_assert(bits_for(4) == 2);
static_assert(bits_for(5) == 3);
static_assert(bits_for(1024) == 10);
static_assert(bits_for(1025) == 11);
static_assert(ceil_div(7, 3) == 3);

}  // namespace mt
