#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mt {
namespace {

// -1 = no override (env/detection decide), 0 = forced scalar,
// 1 = forced on (still subject to CPU support).
std::atomic<int> g_simd_override{-1};

bool env_allows_simd() {
  // Read-only env access; nothing in this process calls setenv/putenv, so
  // the libc race concurrency-mt-unsafe guards against cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MT_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool cpu_has_avx2() {
#if MT_SIMD_X86
  // AVX2 and FMA are distinct CPUID bits; the SIMD tier needs both.
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

bool simd_enabled() {
  const int o = g_simd_override.load(std::memory_order_relaxed);
  if (o == 0) return false;
  if (o > 0) return cpu_has_avx2();
  // Env var is immutable for the process lifetime; cache the parse.
  static const bool env_ok = env_allows_simd();
  return env_ok && cpu_has_avx2();
}

void set_simd_enabled(int mode) {
  g_simd_override.store(mode < 0 ? -1 : (mode > 0 ? 1 : 0),
                        std::memory_order_relaxed);
}

int simd_override() {
  return g_simd_override.load(std::memory_order_relaxed);
}

}  // namespace mt
