#include "baselines/baselines.hpp"

#include "common/error.hpp"

namespace mt {

FormatSpace baseline_space(AccelType t) {
  FormatSpace s;
  switch (t) {
    case AccelType::kFixFixNone:
      // TPU: everything dense, nothing to convert.
      s.mcf_a = s.acf_a = {Format::kDense};
      s.mcf_b = s.acf_b = {Format::kDense};
      s.mcf_must_equal_acf = true;
      s.converter = ConverterKind::kNone;
      break;
    case AccelType::kFixFixNone2:
      // EIE's two published operating points are CSR(A)-Dense(B) and
      // Dense(A)-CSC(B) — always at least one compressed operand. A
      // FormatSpace is a cross product, so evaluate_baseline() handles
      // this archetype by taking the better of the two point spaces; the
      // default space here is the first point.
      s.mcf_a = s.acf_a = {Format::kCSR};
      s.mcf_b = s.acf_b = {Format::kDense};
      s.mcf_must_equal_acf = true;
      s.converter = ConverterKind::kNone;
      break;
    case AccelType::kFixFlexHw:
      // SIGMA: ZVC in memory always; the flexible NoC lets the ACF vary;
      // a hardware decoder feeds the PEs.
      s.mcf_a = {Format::kZVC};
      s.mcf_b = {Format::kZVC};
      s.acf_a = {Format::kDense, Format::kCSR, Format::kCOO};
      s.acf_b = {Format::kDense, Format::kCSC};
      s.converter = ConverterKind::kFixedHw;
      break;
    case AccelType::kFlexFlexNone:
      // ExTensor: multiple formats but compute consumes exactly what
      // memory stores — no converter on chip.
      s.mcf_a = s.acf_a = {Format::kDense, Format::kCSR};
      s.mcf_b = s.acf_b = {Format::kDense, Format::kCSC};
      s.mcf_must_equal_acf = true;
      s.converter = ConverterKind::kNone;
      break;
    case AccelType::kFlexFixHw:
      // NVDLA: ZVC or Dense in memory, dedicated ZVC->Dense decompressor,
      // compute is always dense.
      s.mcf_a = {Format::kZVC, Format::kDense};
      s.mcf_b = {Format::kZVC, Format::kDense};
      s.acf_a = {Format::kDense};
      s.acf_b = {Format::kDense};
      s.converter = ConverterKind::kFixedHw;
      break;
    case AccelType::kFlexFlexSw:
      // Full flexibility, but conversions run on the host CPU and the
      // operands pay the offload round trip.
      s = FormatSpace::full();
      s.converter = ConverterKind::kSoftwareCpu;
      break;
    case AccelType::kFlexFlexHw:
      s = FormatSpace::full();
      s.converter = ConverterKind::kMint;
      break;
  }
  return s;
}

namespace {

// EIE's second operating point: Dense(A)-CSC(B).
FormatSpace eie_second_point() {
  FormatSpace s;
  s.mcf_a = s.acf_a = {Format::kDense};
  s.mcf_b = s.acf_b = {Format::kCSC};
  s.mcf_must_equal_acf = true;
  s.converter = ConverterKind::kNone;
  return s;
}

}  // namespace

SageChoice evaluate_baseline(AccelType t, const CooMatrix& a,
                             const CooMatrix& b, const AccelConfig& cfg,
                             const EnergyParams& energy) {
  auto best = sage_select_matmul(a, b, cfg, energy, baseline_space(t));
  if (t == AccelType::kFixFixNone2) {
    const auto alt = sage_select_matmul(a, b, cfg, energy, eie_second_point());
    if (alt.edp < best.edp) best = alt;
  }
  return best;
}

SageChoice evaluate_baseline_spmm(AccelType t, const CooMatrix& a, index_t n,
                                  const AccelConfig& cfg,
                                  const EnergyParams& energy) {
  auto best = sage_select_spmm_dense_b(a, n, cfg, energy, baseline_space(t));
  if (t == AccelType::kFixFixNone2) {
    const auto alt =
        sage_select_spmm_dense_b(a, n, cfg, energy, eie_second_point());
    if (alt.edp < best.edp) best = alt;
  }
  return best;
}

SageExecution execute_baseline(AccelType t, const CooMatrix& a,
                               const CooMatrix& b, const AccelConfig& cfg,
                               const EnergyParams& energy,
                               SageChoice* choice_out) {
  const auto choice = evaluate_baseline(t, a, b, cfg, energy);
  if (choice_out != nullptr) *choice_out = choice;
  return execute_choice(choice, a, b);
}

}  // namespace mt
