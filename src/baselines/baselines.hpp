// The seven accelerator archetypes of paper Tables I/II, expressed as
// restrictions of SAGE's format search space.
//
// Every baseline runs on the same PE array and energy model — what
// distinguishes a TPU from an EIE from this work in the paper's
// evaluation is exactly which MCFs/ACFs it may pick and how (whether) it
// converts between them. That framing is the paper's: "It can be applied,
// in principle, over any of the sparse accelerators."
#pragma once

#include <string_view>
#include <vector>

#include "sage/execute.hpp"
#include "sage/sage.hpp"

namespace mt {

enum class AccelType : std::uint8_t {
  kFixFixNone,    // TPU: Dense-Dense MCF == ACF, no converter
  kFixFixNone2,   // EIE: CSR(A)-Dense(B) or Dense(A)-CSC(B), MCF == ACF
  kFixFlexHw,     // SIGMA: MCF fixed ZVC-ZVC, ACF flexible, HW converter
  kFlexFlexNone,  // ExTensor: flexible but MCF must equal ACF
  kFlexFixHw,     // NVDLA: MCF in {ZVC, Dense}, ACF fixed Dense-Dense
  kFlexFlexSw,    // CPU/GPU: flexible, conversions offloaded to software
  kFlexFlexHw,    // this work: flexible MCF and ACF, MINT converter
};

inline constexpr std::array<AccelType, 7> kAllAccelTypes = {
    AccelType::kFixFixNone, AccelType::kFixFixNone2, AccelType::kFixFlexHw,
    AccelType::kFlexFlexNone, AccelType::kFlexFixHw, AccelType::kFlexFlexSw,
    AccelType::kFlexFlexHw};

constexpr std::string_view name_of(AccelType t) {
  switch (t) {
    case AccelType::kFixFixNone: return "Fix_Fix_None";
    case AccelType::kFixFixNone2: return "Fix_Fix_None2";
    case AccelType::kFixFlexHw: return "Fix_Flex_HW";
    case AccelType::kFlexFlexNone: return "Flex_Flex_None";
    case AccelType::kFlexFixHw: return "Flex_Fix_HW";
    case AccelType::kFlexFlexSw: return "Flex_Flex_SW";
    case AccelType::kFlexFlexHw: return "Flex_Flex_HW (this work)";
  }
  return "?";
}

constexpr std::string_view exemplar_of(AccelType t) {
  switch (t) {
    case AccelType::kFixFixNone: return "TPUv1";
    case AccelType::kFixFixNone2: return "EIE";
    case AccelType::kFixFlexHw: return "SIGMA";
    case AccelType::kFlexFlexNone: return "ExTensor";
    case AccelType::kFlexFixHw: return "NVDLA";
    case AccelType::kFlexFlexSw: return "MKL/cuSPARSE";
    case AccelType::kFlexFlexHw: return "this work";
  }
  return "?";
}

// The format space this archetype is allowed to search (Table II).
FormatSpace baseline_space(AccelType t);

// Evaluates the archetype on a matmul workload: SAGE constrained to the
// archetype's space picks its best admissible combination.
SageChoice evaluate_baseline(AccelType t, const CooMatrix& a,
                             const CooMatrix& b, const AccelConfig& cfg,
                             const EnergyParams& energy);

// SpMM variant: dense K x N factor matrix (no materialization).
SageChoice evaluate_baseline_spmm(AccelType t, const CooMatrix& a, index_t n,
                                  const AccelConfig& cfg,
                                  const EnergyParams& energy);

// Evaluates the archetype, then functionally executes its winning choice
// through the execution engine (MCF materialization, MCF->ACF conversion,
// ACF kernel) and verifies it against the dense reference. `choice_out`
// receives the priced choice when non-null. Keep operand shapes modest:
// the reference is a dense GEMM.
SageExecution execute_baseline(AccelType t, const CooMatrix& a,
                               const CooMatrix& b, const AccelConfig& cfg,
                               const EnergyParams& energy,
                               SageChoice* choice_out = nullptr);

}  // namespace mt
