// Deep-learning scenario: pruned convolution via im2col on the
// accelerator (the paper's §VII-D case study at example scale).
//
// Runs a real (small) convolution three ways — direct sliding window,
// im2col + GEMM, and the cycle-level accelerator simulator — verifying
// they agree, then shows how pruning the filters changes the formats
// SAGE picks and the resulting EDP.
#include <cstdio>

#include "accel/cycle_sim.hpp"
#include "common/prng.hpp"
#include "sage/sage.hpp"
#include "workloads/im2col.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;

  // One CIFAR-scale conv layer: 16 input channels, 16x16 activations,
  // 3x3 filters, 24 output channels.
  const index_t c = 16, h = 16, wdt = 16, r = 3, s = 3, k_out = 24;
  Prng rng(7);
  DenseTensor3 input(c, h, wdt);
  for (auto& v : input.values()) {
    // ReLU-style activation sparsity: ~55% zeros.
    v = rng.next_double() < 0.45 ? rng.next_value() : 0.0f;
  }

  for (double prune : {0.0, 0.5, 0.9}) {
    DenseMatrix filters(k_out, c * r * s);
    for (auto& v : filters.values()) {
      v = rng.next_double() < (1.0 - prune) ? rng.next_value() : 0.0f;
    }

    // Functional: direct conv vs im2col+GEMM.
    const auto direct = conv2d_reference(input, filters, r, s, 1);
    const auto lowered = conv2d_im2col(input, filters, r, s, 1);
    const bool ok_sw = max_abs_diff(direct, lowered) < 1e-3;

    // Accelerator: stream the im2col activations, keep filters stationary.
    const auto col = im2col(input, r, s, 1);           // (C*R*S) x (H*W)
    // GEMM view: A = col^T (spatial x C*R*S), B = filters^T.
    DenseMatrix a(col.cols(), col.rows());
    for (index_t i = 0; i < col.rows(); ++i) {
      for (index_t j = 0; j < col.cols(); ++j) a.set(j, i, col.at(i, j));
    }
    DenseMatrix b(filters.cols(), filters.rows());
    for (index_t i = 0; i < filters.rows(); ++i) {
      for (index_t j = 0; j < filters.cols(); ++j) b.set(j, i, filters.at(i, j));
    }

    AccelConfig cfg;
    cfg.num_pes = k_out;
    cfg.pe_buffer_bytes = c * r * s * 4 * 2;  // room for CSC pairs
    const EnergyParams energy;
    const auto choice = sage_select_matmul(CooMatrix::from_dense(a),
                                           CooMatrix::from_dense(b), cfg,
                                           energy);
    const auto hw = simulate_ws_matmul(a, b, choice.acf_a, choice.acf_b, cfg);
    // hw.output(spatial, k_out) must equal the direct conv.
    double err = 0.0;
    for (index_t f = 0; f < k_out; ++f) {
      for (index_t p = 0; p < h * wdt; ++p) {
        err = std::max(err, std::abs(static_cast<double>(hw.output.at(p, f)) -
                                     direct.at(f, p / wdt, p % wdt)));
      }
    }

    std::printf(
        "prune %3.0f%% | weight nnz %5lld | sw ok %s | accel ok %s | %s | "
        "EDP %.3e\n",
        100.0 * prune, static_cast<long long>(filters.nnz()),
        ok_sw ? "yes" : "NO", err < 1e-3 ? "yes" : "NO",
        choice.describe().c_str(), choice.edp);
  }
  std::printf(
      "\nTakeaway: as pruning deepens, SAGE shifts the weight operand from\n"
      "Dense toward compressed stationary formats (the Fig. 14 effect).\n");
  return 0;
}
