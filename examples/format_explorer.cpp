// Format explorer: a small CLI over the storage model, converter, and
// execution engine.
//
//   ./format_explorer [rows cols density]
//
// Prints the exact compactness of every matrix format for a synthesized
// matrix of the requested shape (default 512x512 at 5%), the analytic
// model's prediction, the MINT pipeline each MCF->ACF conversion would
// exercise, and the engine's (kernel x format) support matrix.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "exec/exec.hpp"
#include "formats/storage.hpp"
#include "mint/pipelines.hpp"
#include "workloads/synth.hpp"

int main(int argc, char** argv) {
  using namespace mt;
  const index_t rows = argc > 1 ? std::atoll(argv[1]) : 512;
  const index_t cols = argc > 2 ? std::atoll(argv[2]) : 512;
  const double density = argc > 3 ? std::atof(argv[3]) : 0.05;

  const auto dense = synth_dense_matrix(rows, cols, density, 99);
  const auto nnz = dense.nnz();
  std::printf("matrix %lldx%lld, %lld nonzeros (%.3f%% dense)\n\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              static_cast<long long>(nnz),
              100.0 * static_cast<double>(nnz) /
                  static_cast<double>(rows * cols));

  std::printf("%-7s %14s %14s %12s\n", "format", "exact bytes", "model bytes",
              "metadata %");
  for (Format f : {Format::kDense, Format::kCOO, Format::kCSR, Format::kCSC,
                   Format::kRLC, Format::kZVC, Format::kBSR, Format::kDIA}) {
    const auto exact = storage_of(encode(dense, f), DataType::kFp32);
    const auto model = expected_matrix_storage(f, rows, cols, nnz, DataType::kFp32);
    std::printf("%-7s %14.0f %14.0f %12.1f\n", std::string(name_of(f)).c_str(),
                exact.total_bytes(), model.total_bytes(),
                100.0 * exact.metadata_ratio());
  }

  std::printf("\nMINT pipelines (MCF -> streaming ACF):\n");
  for (Format from : {Format::kRLC, Format::kZVC, Format::kCSC}) {
    for (Format to : {Format::kDense, Format::kCSR, Format::kCOO}) {
      std::printf("  %-5s -> %-6s:", std::string(name_of(from)).c_str(),
                  std::string(name_of(to)).c_str());
      for (Block b : conversion_blocks(from, to)) {
        std::printf(" %s", std::string(name_of(b)).c_str());
      }
      std::printf("\n");
    }
  }

  // The execution engine's coverage: which (kernel, format) pairs run in
  // the operand's own format, which convert through the fallback ACF, and
  // which are not applicable (matrix formats for tensor kernels etc.).
  std::printf("\nexecution engine support (kernel x format):\n%-8s", "");
  constexpr Format kAllFormats[] = {
      Format::kDense, Format::kCOO, Format::kCSR,   Format::kCSC,
      Format::kRLC,   Format::kZVC, Format::kBSR,   Format::kDIA,
      Format::kELL,   Format::kCSF, Format::kHiCOO};
  for (Format f : kAllFormats) {
    std::printf(" %-8s", std::string(name_of(f)).c_str());
  }
  std::printf("\n");
  for (Kernel k : kAllKernels) {
    std::printf("%-8s", std::string(name_of(k)).c_str());
    const auto supported = exec::supported_formats(k);
    for (Format f : kAllFormats) {
      const bool in_set =
          std::find(supported.begin(), supported.end(), f) != supported.end();
      const char* cell = !in_set             ? "-"
                         : exec::has_native(k, f) ? "native"
                                                  : "fallbk";
      std::printf(" %-8s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
