// Quickstart: the end-to-end flow of the library in ~70 lines.
//
//   1. Build a sparse matrix and encode it in several compression formats.
//   2. Ask SAGE for the best MCF/ACF combination for an SpMM.
//   3. Execute the winning choice through the format-generic execution
//      engine (MCF -> ACF conversion + ACF kernel), verify it against the
//      dense reference, and cross-check the cycle-level simulator.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "accel/cycle_sim.hpp"
#include "sage/execute.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;

  // A 64x48 matrix at 10% density and a small dense factor.
  const auto a_dense = synth_dense_matrix(64, 48, 0.10, /*seed=*/1);
  const auto b_dense = synth_dense_matrix(48, 32, 1.0, /*seed=*/2);

  // --- Formats: encode, inspect compactness, convert ---
  std::printf("storage of A (%lld nonzeros) by format:\n",
              static_cast<long long>(a_dense.nnz()));
  for (Format f : kMatrixMcfChoices) {
    const AnyMatrix m = encode(a_dense, f);
    const auto s = storage_of(m, DataType::kFp32);
    std::printf("  %-6s %6lld bytes (%4.1f%% metadata)\n",
                std::string(name_of(f)).c_str(),
                static_cast<long long>(s.total_bits() / 8),
                100.0 * s.metadata_ratio());
  }
  // Any->any conversion keeps the contents intact:
  const auto rlc = convert(encode(a_dense, Format::kCSR), Format::kRLC);
  std::printf("CSR -> RLC round trip exact: %s\n",
              max_abs_diff(decode(rlc), a_dense) == 0.0 ? "yes" : "no");

  // --- SAGE: pick formats for this workload ---
  AccelConfig cfg;
  cfg.num_pes = 32;                 // small array for the demo
  cfg.pe_buffer_bytes = 48 * 4;     // one dense column fits
  const EnergyParams energy;
  const auto a_coo = CooMatrix::from_dense(a_dense);
  const auto b_coo = CooMatrix::from_dense(b_dense);
  const auto choice = sage_select_matmul(a_coo, b_coo, cfg, energy);
  std::printf("\nSAGE selects: %s\n", choice.describe().c_str());
  std::printf("  EDP %.3e J*s  (dram %lld + convert %lld + compute %lld cycles)\n",
              choice.edp, static_cast<long long>(choice.cost.dram_cycles),
              static_cast<long long>(choice.cost.convert_cycles),
              static_cast<long long>(choice.cost.compute_cycles));

  // --- Run it: the execution engine closes the loop SAGE priced ---
  const auto run = execute_choice(choice, a_coo, b_coo);
  std::printf("\nengine executed the winning choice: %s\n",
              run.dispatch.describe().c_str());
  std::printf("  matches dense reference: %s (max err %.2e)\n",
              run.verified ? "yes" : "NO", run.max_abs_err);

  // --- Cross-check the cycle-level simulator on the same ACFs ---
  const auto hw = simulate_ws_matmul(a_dense, b_dense, choice.acf_a,
                                     choice.acf_b, cfg);
  std::printf("\naccelerator output matches the engine: %s\n",
              max_abs_diff(hw.output, run.output) < 1e-3 ? "yes" : "no");
  std::printf("  phases: load %lld, stream %lld, compute %lld, drain %lld\n",
              static_cast<long long>(hw.phases.load_cycles),
              static_cast<long long>(hw.phases.stream_cycles),
              static_cast<long long>(hw.phases.compute_cycles),
              static_cast<long long>(hw.phases.drain_cycles));
  std::printf("  PE utilization %.1f%%, bus occupancy %.1f%%\n",
              100.0 * hw.pe_utilization, 100.0 * hw.bus_occupancy);
  return 0;
}
