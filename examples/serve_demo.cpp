// Serving-runtime demo: the client/server flow in ~80 lines.
//
//   1. Start a Server (worker pool + plan cache + conversion cache).
//   2. Register sparse operands once; get stable handles back.
//   3. Submit requests from the "client" side and read Response futures.
//   4. Watch the caches work: the first request of a workload pays the
//      SAGE search and the MCF->ACF conversion, repeats pay neither.
//   5. Fire a burst of SpMVs at one operand: the batcher coalesces
//      whatever piles up at the queue head into single SpMM launches.
//   6. Scale out: a ShardedServer spreads operands over multiple Server
//      shards (consistent hashing; the handle encodes its shard), routes
//      each request to its owner, and runs cross-shard SpGEMM pairs on
//      the first operand's shard via zero-copy replication.
//   7. Watch the telemetry: each section ends with the relevant slice of
//      Server::metrics_text() (Prometheus-style exposition), the burst
//      section walks its own trace spans, and the fleet section shows
//      the router-aggregated view.
//
// Build & run:  cmake --build build && ./build/examples/serve_demo
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/router.hpp"
#include "runtime/server.hpp"
#include "workloads/synth.hpp"

namespace {

// Prints the lines of a metrics_text() exposition that contain `filter`
// (every line when filter is empty), indented under a caption.
void print_metrics(const std::string& text, const char* filter,
                   const char* caption) {
  std::printf("  [metrics] %s\n", caption);
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (*filter != '\0' && line.find(filter) == std::string::npos) continue;
    std::printf("    %s\n", line.c_str());
  }
}

}  // namespace

int main() {
  using namespace mt;
  using namespace mt::runtime;

  ServerOptions opts;
  opts.num_workers = 2;
  opts.accel.num_pes = 64;
  opts.accel.pe_buffer_bytes = 128 * 4;
  opts.obs.trace_ring_capacity = 1024;  // keep spans for the burst section
  Server server(opts);
  std::printf("server up: %d workers, queue capacity %zu\n",
              opts.num_workers, opts.queue_capacity);

  // Register a 96x96 sparse matrix stored in ZVC (a memory-compact MCF the
  // accelerator cannot consume directly — conversion is mandatory).
  const auto a_coo = synth_coo_matrix(96, 96, 370, /*seed=*/1);
  const auto a = server.register_matrix(convert(AnyMatrix(a_coo), Format::kZVC));
  std::printf("registered matrix handle %llu (ZVC, %lld nnz)\n",
              static_cast<unsigned long long>(a.id),
              static_cast<long long>(a_coo.nnz()));

  // --- SpMV twice: miss then hit ---
  Request r;
  r.kernel = Kernel::kSpMV;
  r.a = a;
  r.vec.assign(96, 1.0f);
  for (int i = 0; i < 2; ++i) {
    const auto resp = server.submit(r).get();
    const auto& y = std::get<std::vector<value_t>>(resp.result);
    std::printf("SpMV #%d: y[0]=%.3f  %s\n", i + 1, y[0],
                resp.stats.describe().c_str());
  }
  print_metrics(server.metrics_text(), "mt_serve_plan_",
                "the second request was a plan-cache hit:");

  // --- An SpMM on the same operand reuses its cached COO rep for SAGE ---
  Request mm;
  mm.kernel = Kernel::kSpMM;
  mm.a = a;
  mm.dense_b = synth_coo_matrix(96, 16, 96 * 16, /*seed=*/2).to_dense();
  const auto mresp = server.submit(mm).get();
  std::printf("SpMM:    %s\n", mresp.stats.describe().c_str());
  std::printf("         SAGE chose %s\n",
              server.plan_for(mm)->choice.describe().c_str());
  print_metrics(server.metrics_text(), "mt_exec_ns_count",
                "per-kernel/format/tier exec histograms so far:");

  // --- A burst of SpMVs: the batcher coalesces what piles up ---
  // Occupy the workers with a chunky SpGEMM, then fire same-workload
  // SpMVs; they accumulate at the queue head and the next drain coalesces
  // them into one SpMM launch (the `batch` field in the stats line).
  const auto big = synth_coo_matrix(600, 600, 14400, /*seed=*/3);
  const auto g = server.register_matrix(convert(AnyMatrix(big), Format::kCSR));
  Request slow;
  slow.kernel = Kernel::kSpGEMM;
  slow.a = g;
  slow.b = g;
  // One occupier per worker, each handed over before the next submit so a
  // single worker's drain window cannot swallow both.
  std::vector<std::future<Response>> burst;
  auto occupier1 = server.submit(slow);
  while (server.queue_depth() > 0) std::this_thread::yield();
  auto occupier2 = server.submit(slow);
  while (server.queue_depth() > 0) std::this_thread::yield();
  for (int i = 0; i < 12; ++i) burst.push_back(server.submit(r));
  (void)occupier1.get();
  (void)occupier2.get();
  std::uint64_t burst_trace = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const auto resp = burst[i].get();
    if (i == 0 || i + 1 == burst.size()) {
      std::printf("burst #%zu: %s\n", i + 1, resp.stats.describe().c_str());
    }
    if (i == 0) burst_trace = resp.stats.trace_id;
  }
  // Walk the first burst request's trace: queue wait, then its exec slice
  // inside the fused-group launch (parented spans share the group's id).
  std::printf("  [trace] spans of burst #1 (trace %llu):\n",
              static_cast<unsigned long long>(burst_trace));
  for (const auto& s : server.drain_trace()) {
    if (s.trace_id != burst_trace) continue;
    std::printf("    %-7s %8.1f us%s\n", std::string(obs::name_of(s.stage)).c_str(),
                static_cast<double>(s.duration_ns()) / 1e3,
                s.parent_span != 0 ? "  (in fused group)" : "");
  }
  print_metrics(server.metrics_text(), "mt_serve_batch",
                "coalescing counters:");

  // --- Aggregate counters ---
  const auto c = server.counters();
  std::printf(
      "\ncounters: %lld served, plan %lld/%lld hit/miss, conversion "
      "%lld/%lld hit/miss\n",
      static_cast<long long>(c.completed), static_cast<long long>(c.plan_hits),
      static_cast<long long>(c.plan_misses),
      static_cast<long long>(c.conversion_hits),
      static_cast<long long>(c.conversion_misses));
  std::printf("plan cache: %zu plans, conversion cache: %zu reps\n",
              server.plan_cache().size(), server.conversion_cache().size());
  std::printf("batching:  %lld fused launches served %lld requests "
              "(avg batch %.1f)\n",
              static_cast<long long>(c.batches),
              static_cast<long long>(c.batched_requests),
              c.avg_batch_size());
  // The full exposition: everything above plus caches, arena, queue, and
  // latency histograms, in one scrape-able dump.
  print_metrics(server.metrics_text(), "",
                "full metrics_text() exposition:");

  server.stop();
  std::printf("server stopped cleanly\n");

  // --- Sharded routing: the same API over four Server shards ---
  ShardedServerOptions sopts;
  sopts.num_shards = 4;
  sopts.shard.num_workers = 1;
  sopts.shard.accel = opts.accel;
  // Per-shard cache budgets keep every shard bounded under operand churn
  // (cost-aware LRU: hot/expensive conversions survive pressure).
  sopts.shard.caches.conversion_limits.max_entries = 64;
  sopts.shard.caches.plan_limits.max_entries = 128;
  ShardedServer fleet(sopts);
  std::printf("\nsharded: %d shards x %d worker(s)\n", fleet.num_shards(),
              sopts.shard.num_workers);

  std::vector<MatrixHandle> handles;
  for (int i = 0; i < 8; ++i) {
    const auto coo = synth_coo_matrix(96, 96, 370, /*seed=*/10 + i);
    handles.push_back(
        fleet.register_matrix(convert(AnyMatrix(coo), Format::kCSR)));
  }
  int owned[4] = {0, 0, 0, 0};
  for (const auto& h : handles) ++owned[fleet.shard_of(h)];
  std::printf("placement: %d/%d/%d/%d operands per shard\n", owned[0],
              owned[1], owned[2], owned[3]);

  std::vector<std::future<Response>> fleet_futs;
  Request fr;
  fr.kernel = Kernel::kSpMV;
  fr.vec.assign(96, 1.0f);
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& h : handles) {
      fr.a = h;
      fleet_futs.push_back(fleet.submit(fr));
    }
  }
  for (auto& f : fleet_futs) (void)f.get();

  // A cross-shard pair: executes on the first operand's shard, with the
  // second operand's representation shared over (never copied).
  Request pair;
  pair.kernel = Kernel::kSpGEMM;
  pair.a = handles[0];
  pair.b = handles[1];
  const auto presp = fleet.submit(pair).get();
  std::printf("cross-shard SpGEMM (shard %d x shard %d): %s\n",
              fleet.shard_of(handles[0]), fleet.shard_of(handles[1]),
              presp.stats.describe().c_str());

  const auto fc = fleet.counters();
  std::printf("fleet counters: %lld served, plan %lld/%lld hit/miss, "
              "queue depth %zu\n",
              static_cast<long long>(fc.completed),
              static_cast<long long>(fc.plan_hits),
              static_cast<long long>(fc.plan_misses), fleet.queue_depth());
  // Router aggregation: per-shard series merged by name (counters and
  // histogram buckets add, gauges sum into fleet totals) plus the
  // router's own mt_router_* series.
  print_metrics(fleet.metrics_text(), "_total",
                "fleet-wide counter series (all shards merged):");
  print_metrics(fleet.metrics_text(), "mt_router_",
                "router series:");
  fleet.stop();
  std::printf("fleet stopped cleanly\n");
  return 0;
}
