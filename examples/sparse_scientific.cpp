// Scientific-computing scenario: SpGEMM across the sparsity spectrum.
//
// Walks three SuiteSparse-shaped workloads from Table III (dense journal,
// mid-density cavity14, hyper-sparse m3plates), shows what formats SAGE
// picks for each, and contrasts this work against a TPU-style fixed
// Dense-Dense accelerator and an ExTensor-style MCF==ACF design — the
// Fig. 12 story as a runnable program.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "exec/exec.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams energy;

  for (const char* name : {"journal", "cavity14", "m3plates"}) {
    const auto& w = matrix_workload(name);
    const auto a = synth_coo_matrix(w, 1);
    const index_t n = factor_cols(w.m);
    const auto b_nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(w.density() * static_cast<double>(w.k) *
                                     static_cast<double>(n)));
    const auto b = synth_coo_matrix(w.k, n, b_nnz, 2);

    std::printf("\n== %s  (%lldx%lld, %lld nnz, density %.4f%%) ==\n",
                w.name.c_str(), static_cast<long long>(w.m),
                static_cast<long long>(w.k), static_cast<long long>(w.nnz),
                100.0 * w.density());

    // Functional check at workload scale: SpGEMM through the execution
    // engine (COO operands dispatch via the convert-fallback into the CSR
    // kernel — the report says which path ran).
    exec::Dispatch d;
    const auto product = exec::spgemm(AnyMatrix(a), AnyMatrix(b), &d);
    std::printf("  SpGEMM product: %lld nonzeros (density %.4f%%) [%s]\n",
                static_cast<long long>(product.nnz()),
                100.0 * static_cast<double>(product.nnz()) /
                    (static_cast<double>(w.m) * static_cast<double>(n)),
                d.describe().c_str());

    for (AccelType t : {AccelType::kFixFixNone, AccelType::kFlexFlexNone,
                        AccelType::kFlexFlexHw}) {
      const auto r = evaluate_baseline(t, a, b, cfg, energy);
      std::printf("  %-26s EDP %10.3e  (%s)\n",
                  std::string(name_of(t)).c_str(), r.edp,
                  r.describe().c_str());
    }

    // At demo scale the winning combination is also cheap to execute and
    // verify end-to-end (dense-reference GEMM bounds the workload size).
    if (w.name == "journal") {
      SageChoice choice;
      const auto run =
          execute_baseline(AccelType::kFlexFlexHw, a, b, cfg, energy, &choice);
      std::printf("  executed winning choice: %s -> %s, max err %.2e\n",
                  choice.describe().c_str(), run.dispatch.describe().c_str(),
                  run.max_abs_err);
    }
  }
  std::printf(
      "\nTakeaway: no single format choice survives the density spectrum —\n"
      "the flexible design tracks the best combination everywhere.\n");
  return 0;
}
