// Google-benchmark microbenchmarks of the software substrate: the
// reference kernels and the direct format converters. These are the
// measured-CPU numbers that back the Fig. 10 comparison and document the
// throughput of the oracle implementations.
#include <benchmark/benchmark.h>

#include "convert/convert.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;

void BM_CsrToCsc(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto csr = CsrMatrix::from_coo(synth_coo_matrix(n, n, n * n / 20, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr_to_csc(csr));
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrToCsc)->Arg(512)->Arg(2048);

void BM_RlcToCoo(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto rlc =
      RlcMatrix::from_dense(synth_coo_matrix(n, n, n * n / 20, 2).to_dense());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlc_to_coo(rlc));
  }
  state.SetItemsProcessed(state.iterations() * rlc.nnz());
}
BENCHMARK(BM_RlcToCoo)->Arg(512)->Arg(2048);

void BM_DenseToCsr(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto d = synth_coo_matrix(n, n, n * n / 10, 3).to_dense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense_to_csr(d));
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_DenseToCsr)->Arg(512)->Arg(2048);

void BM_SpmmCsrDense(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = CsrMatrix::from_coo(synth_coo_matrix(n, n, n * n / 20, 4));
  const auto b = synth_coo_matrix(n, 64, n * 64, 5).to_dense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm_csr_dense(a, b));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmCsrDense)->Arg(512)->Arg(1024);

void BM_SpgemmCsr(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = CsrMatrix::from_coo(synth_coo_matrix(n, n, n * n / 50, 6));
  const auto b = CsrMatrix::from_coo(synth_coo_matrix(n, n, n * n / 50, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm_csr(a, b));
  }
}
BENCHMARK(BM_SpgemmCsr)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
