// Google-benchmark microbenchmarks of the software substrate: the
// reference kernels (dispatched through the execution engine), the direct
// format converters, and the engine's native-vs-fallback overhead. These
// are the measured-CPU numbers that back the Fig. 10 comparison and
// document the throughput of the oracle implementations.
#include <benchmark/benchmark.h>

#include "exec/exec.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;

void BM_CsrToCsc(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto csr = CsrMatrix::from_coo(synth_coo_matrix(n, n, n * n / 20, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr_to_csc(csr));
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrToCsc)->Arg(512)->Arg(2048);

void BM_RlcToCoo(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto rlc =
      RlcMatrix::from_dense(synth_coo_matrix(n, n, n * n / 20, 2).to_dense());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rlc_to_coo(rlc));
  }
  state.SetItemsProcessed(state.iterations() * rlc.nnz());
}
BENCHMARK(BM_RlcToCoo)->Arg(512)->Arg(2048);

void BM_DenseToCsr(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto d = synth_coo_matrix(n, n, n * n / 10, 3).to_dense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense_to_csr(d));
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_DenseToCsr)->Arg(512)->Arg(2048);

void BM_SpmmCsrDense(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const AnyMatrix a =
      convert(AnyMatrix(synth_coo_matrix(n, n, n * n / 20, 4)), Format::kCSR);
  const auto b = synth_coo_matrix(n, 64, n * 64, 5).to_dense();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::spmm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * nnz_of(a) * 64);
}
BENCHMARK(BM_SpmmCsrDense)->Arg(512)->Arg(1024);

void BM_SpgemmCsr(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const AnyMatrix a =
      convert(AnyMatrix(synth_coo_matrix(n, n, n * n / 50, 6)), Format::kCSR);
  const AnyMatrix b =
      convert(AnyMatrix(synth_coo_matrix(n, n, n * n / 50, 7)), Format::kCSR);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::spgemm(a, b));
  }
}
BENCHMARK(BM_SpgemmCsr)->Arg(512)->Arg(1024);

// Native dispatch vs the conversion fallback on the same operand: the
// price of asking the engine for a format with no registered kernel.
void BM_ExecSpmvNativeEll(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const AnyMatrix a = convert(
      AnyMatrix(synth_coo_matrix(n, n, n * n / 20, 8)), Format::kELL);
  const std::vector<value_t> x(static_cast<std::size_t>(n), 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::spmv(a, x));
  }
  state.SetItemsProcessed(state.iterations() * nnz_of(a));
}
BENCHMARK(BM_ExecSpmvNativeEll)->Arg(512)->Arg(2048);

void BM_ExecSpmvFallbackDia(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const AnyMatrix a = convert(
      AnyMatrix(synth_coo_matrix(n, n, n * n / 20, 8)), Format::kDIA);
  const std::vector<value_t> x(static_cast<std::size_t>(n), 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::spmv(a, x));
  }
  state.SetItemsProcessed(state.iterations() * nnz_of(a));
}
BENCHMARK(BM_ExecSpmvFallbackDia)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
