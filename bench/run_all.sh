#!/usr/bin/env bash
# Run every bench binary and record the kernel perf baseline.
#
# Usage: bench/run_all.sh [--smoke] [--json-only] [BUILD_DIR]
#   --smoke      launch-check only: tiny operands, figure benches get a
#                timeout and count as OK if they start producing output.
#   --json-only  run just the JSON-producing benches (bench_speedup,
#                bench_serve) the CI perf-gate consumes; skips the figure
#                launch checks, which the build-test/sanitize jobs cover.
#   BUILD_DIR    cmake build tree (default: build)
#
# Output: BENCH_kernels.json (serial vs OpenMP speedup per kernel) in the
# repo root, plus each binary's stdout under BUILD_DIR/bench_logs/.
# pipefail so a crashing bench cannot hide behind a tee/grep downstream,
# and the final exit status (see bottom) is what CI gates on.
set -u -o pipefail

SMOKE=0
JSON_ONLY=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --json-only) JSON_ONLY=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$BUILD_DIR" in
  /*) BUILD_ABS="$BUILD_DIR" ;;
  *) BUILD_ABS="$ROOT/$BUILD_DIR" ;;
esac
BIN="$BUILD_ABS/bench"
LOGS="$BUILD_ABS/bench_logs"

if [ ! -d "$BIN" ]; then
  echo "error: $BIN not found — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi
mkdir -p "$LOGS"

FAILED=0
run_one() {
  local name="$1"; shift
  local log="$LOGS/$name.log"
  printf '%-18s' "$name"
  if [ "$SMOKE" -eq 1 ]; then
    # Launch check: a bench that is still computing when the timeout hits
    # (exit 124) has launched successfully.
    timeout 20 "$BIN/$name" "$@" >"$log" 2>&1
    local rc=$?
    if [ $rc -eq 0 ] || [ $rc -eq 124 ]; then echo "ok"; else
      echo "FAIL (exit $rc; see $log)"; FAILED=1
    fi
  else
    if "$BIN/$name" "$@" >"$log" 2>&1; then echo "ok"; else
      echo "FAIL (see $log)"; FAILED=1
    fi
  fi
}

# JSON-producing benches: the CI perf-gate consumes their output, so a
# smoke timeout (killed before write_json runs) must FAIL the run rather
# than count as launched-ok — otherwise the gate dies downstream on a
# missing file while this script reports success. The budget is generous;
# these binaries finish in seconds even on a loaded shared runner.
run_json_bench() {
  local name="$1"; shift
  local log="$LOGS/$name.log"
  printf '%-18s' "$name"
  local rc=0
  if [ "$SMOKE" -eq 1 ]; then
    timeout 120 "$BIN/$name" "$@" >"$log" 2>&1 || rc=$?
  else
    "$BIN/$name" "$@" >"$log" 2>&1 || rc=$?
  fi
  if [ $rc -eq 0 ]; then echo "ok"; else
    echo "FAIL (exit $rc; see $log)"; FAILED=1
  fi
}

FIG_BENCHES="bench_fig4 bench_fig5 bench_fig6 bench_fig7 bench_fig10 \
bench_fig11 bench_fig12 bench_fig13 bench_fig14 bench_table3 \
bench_ablation bench_mint_area"

if [ "$JSON_ONLY" -eq 0 ]; then
  for b in $FIG_BENCHES; do
    run_one "$b"
  done

  # Google Benchmark microbenches: in smoke mode just enumerate them.
  if [ "$SMOKE" -eq 1 ]; then
    run_one bench_kernels --benchmark_list_tests=true
  else
    run_one bench_kernels --benchmark_format=json \
      --benchmark_out="$LOGS/bench_kernels.json"
  fi
fi

# Kernel serial-vs-OpenMP baseline -> BENCH_kernels.json in the repo root.
# Smoke numbers are meaningless, so they go to the log dir instead of
# clobbering the committed baseline. Threads default to the hardware core
# count: oversubscribing (e.g. 4 threads on 1 core) records regressions
# that say nothing about the kernels.
THREADS="${MT_NUM_THREADS:-$(nproc 2>/dev/null || echo 4)}"
if [ "$SMOKE" -eq 1 ]; then
  JSON_OUT="$LOGS/BENCH_kernels.smoke.json"
else
  JSON_OUT="$ROOT/BENCH_kernels.json"
fi
SPEEDUP_ARGS=(--threads "$THREADS" --out "$JSON_OUT")
[ "$SMOKE" -eq 1 ] && SPEEDUP_ARGS+=(--smoke)
run_json_bench bench_speedup "${SPEEDUP_ARGS[@]}"
[ -f "$JSON_OUT" ] && echo "wrote $JSON_OUT"

# Serving-runtime cache speedup -> BENCH_serve.json in the repo root.
# Same smoke policy as above: smoke numbers stay in the log dir.
if [ "$SMOKE" -eq 1 ]; then
  SERVE_OUT="$LOGS/BENCH_serve.smoke.json"
else
  SERVE_OUT="$ROOT/BENCH_serve.json"
fi
SERVE_ARGS=(--out "$SERVE_OUT")
[ "$SMOKE" -eq 1 ] && SERVE_ARGS+=(--smoke)
run_json_bench bench_serve "${SERVE_ARGS[@]}"
[ -f "$SERVE_OUT" ] && echo "wrote $SERVE_OUT"

if [ "$FAILED" -ne 0 ]; then
  echo "bench: FAILURES above" >&2
  exit 1
fi
exit 0
