// Reproduces paper Fig. 13: EDP of every Table-II accelerator archetype
// normalized to this work, averaged (geomean) over the SpGEMM and SpMM
// suites of Table III, plus the conversion-energy share (§VII-C reports
// 0.023% of total system energy).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams e;

  std::map<AccelType, std::vector<double>> norm_edp;
  double conv_energy = 0.0, total_energy = 0.0;

  mt::bench::banner("Fig. 13: normalized EDP vs this work (per workload)");
  std::printf("%-12s %-8s", "workload", "kernel");
  for (AccelType t : kAllAccelTypes) {
    std::printf(" %14.14s", std::string(name_of(t)).c_str());
  }
  std::printf("\n");

  for (const auto& w : table3_matrices()) {
    const auto a = synth_coo_matrix(w, 1);
    const index_t n = factor_cols(w.m);

    // SpGEMM scenario: sparse factor at the workload's density.
    {
      const auto b_nnz = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(w.density() * static_cast<double>(w.k) *
                                       static_cast<double>(n)));
      const auto b = synth_coo_matrix(w.k, n, b_nnz, 2);
      const auto ours = evaluate_baseline(AccelType::kFlexFlexHw, a, b, cfg, e);
      conv_energy += ours.cost.convert_energy_j;
      total_energy += ours.cost.total_energy_j();
      std::printf("%-12s %-8s", w.name.c_str(), "SpGEMM");
      for (AccelType t : kAllAccelTypes) {
        const auto r = evaluate_baseline(t, a, b, cfg, e);
        norm_edp[t].push_back(r.edp / ours.edp);
        std::printf(" %14.2f", r.edp / ours.edp);
      }
      std::printf("\n");
    }
    // SpMM scenario: dense factor.
    {
      const auto ours =
          evaluate_baseline_spmm(AccelType::kFlexFlexHw, a, n, cfg, e);
      conv_energy += ours.cost.convert_energy_j;
      total_energy += ours.cost.total_energy_j();
      std::printf("%-12s %-8s", w.name.c_str(), "SpMM");
      for (AccelType t : kAllAccelTypes) {
        const auto r = evaluate_baseline_spmm(t, a, n, cfg, e);
        norm_edp[t].push_back(r.edp / ours.edp);
        std::printf(" %14.2f", r.edp / ours.edp);
      }
      std::printf("\n");
    }
  }

  mt::bench::subhead("geomean normalized EDP (1.00 = this work)");
  for (AccelType t : kAllAccelTypes) {
    const double g = mt::bench::geomean(norm_edp[t]);
    const double worst =
        *std::max_element(norm_edp[t].begin(), norm_edp[t].end());
    std::printf("%-26s geomean %8.2fx   (EDP reduction %7.0f%%)   max %10.1fx\n",
                std::string(name_of(t)).c_str(), g, 100.0 * (g - 1.0), worst);
  }
  std::printf(
      "\nconversion energy share of this work's total system energy: %.4f%%\n"
      "(paper §VII-C: 0.023%%)\n",
      100.0 * conv_energy / total_energy);
  std::printf(
      "\nExpected shape (paper): geomean reductions of 369/63/20/15/143%%\n"
      "over Fix_Fix_None / Fix_Fix_None2 / Fix_Flex_HW / Flex_Flex_None /\n"
      "Flex_Fix_HW, ~122%% on average; maxima dominated by the extreme-\n"
      "sparsity workloads.\n");
  return 0;
}
