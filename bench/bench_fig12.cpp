// Reproduces paper Fig. 12: cycles, energy and EDP breakdown of SpGEMM on
// journals, speech2 and m3plates across the Table-II accelerator
// archetypes. Part (i) of each panel is the cycle breakdown, part (ii)
// energy and EDP.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams e;

  for (const char* name : {"journal", "speech2", "m3plates"}) {
    const auto& w = matrix_workload(name);
    const auto a = synth_coo_matrix(w, 1);
    const index_t n = factor_cols(w.m);
    const auto b_nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(w.density() * static_cast<double>(w.k) *
                                     static_cast<double>(n)));
    const auto b = synth_coo_matrix(w.k, n, b_nnz, 2);

    mt::bench::banner(std::string("Fig. 12: SpGEMM breakdown — ") + name);
    std::printf("%-26s %12s %12s %12s | %12s %12s %14s | %-28s\n",
                "accelerator", "dram cyc", "conv cyc", "comp cyc",
                "energy (J)", "EDP (J*s)", "norm EDP", "chosen formats");
    double ours_edp = 0.0;
    for (AccelType t : kAllAccelTypes) {
      const auto r = evaluate_baseline(t, a, b, cfg, e);
      if (t == AccelType::kFlexFlexHw) ours_edp = r.edp;
    }
    for (AccelType t : kAllAccelTypes) {
      const auto r = evaluate_baseline(t, a, b, cfg, e);
      std::printf("%-26s %12lld %12lld %12lld | %12.3e %12.3e %14.2f | %-28s\n",
                  std::string(name_of(t)).c_str(),
                  static_cast<long long>(r.cost.dram_cycles),
                  static_cast<long long>(r.cost.convert_cycles),
                  static_cast<long long>(r.cost.compute_cycles),
                  r.cost.total_energy_j(), r.edp, r.edp / ours_edp,
                  r.describe().c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper): journals punishes compressed-only designs\n"
      "(EIE) since it is dense; speech2 rewards a compact MCF (RLC) with a\n"
      "dense ACF; m3plates makes any dense format catastrophic.\n");
  return 0;
}
