// Serial-vs-OpenMP speedup per kernel, emitted as JSON. This is the
// perf baseline bench/run_all.sh records into BENCH_kernels.json.
//
// Usage: bench_speedup [--smoke] [--threads N] [--out FILE]
//   --smoke     tiny operands, one rep (CI launch check)
//   --threads N parallel thread count (default: mt::num_threads())
//   --out FILE  write JSON there instead of stdout
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/threads.hpp"
#include "formats/csc.hpp"
#include "formats/csf.hpp"
#include "formats/csr.hpp"
#include "kernels/gemm.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/ttm.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;
using clock_t_ = std::chrono::steady_clock;

// Best-of-reps wall time of f() at the given thread count, in ms.
template <typename F>
double time_ms(F&& f, int threads, int reps) {
  set_num_threads(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock_t_::now();
    f();
    const auto t1 = clock_t_::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  set_num_threads(0);
  return best;
}

struct Row {
  std::string kernel;
  double serial_ms;
  double parallel_ms;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = num_threads();
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  const int reps = smoke ? 1 : 3;
  const index_t n = smoke ? 256 : 2048;
  const index_t tdim = smoke ? 32 : 192;
  const index_t rank = smoke ? 8 : 32;

  const auto coo = synth_coo_matrix(n, n, n * n / 50, 7);
  const auto csr = CsrMatrix::from_coo(coo);
  const auto csc = CscMatrix::from_dense(coo.to_dense());
  const auto dense_b = synth_dense_matrix(n, rank, 1.0, 8);
  const auto dense_sq_a = synth_dense_matrix(smoke ? 64 : 512, smoke ? 64 : 512, 1.0, 9);
  const auto dense_sq_b = synth_dense_matrix(smoke ? 64 : 512, smoke ? 64 : 512, 1.0, 10);
  const std::vector<value_t> xvec(static_cast<std::size_t>(n), 1.0f);
  const auto tcoo =
      synth_coo_tensor(tdim, tdim, tdim,
                       static_cast<std::int64_t>(tdim) * tdim * tdim / 50, 11);
  const auto csf = CsfTensor3::from_coo(tcoo);
  const auto fb = synth_dense_matrix(tdim, rank, 1.0, 12);
  const auto fc = synth_dense_matrix(tdim, rank, 1.0, 13);

  std::vector<Row> rows;
  const auto run = [&](const char* name, auto&& f) {
    rows.push_back({name, time_ms(f, 1, reps), time_ms(f, threads, reps)});
  };
  run("SpMV", [&] { spmv_csr(csr, xvec); });
  run("SpMM", [&] { spmm_csr_dense(csr, dense_b); });
  run("SpGEMM", [&] { spgemm_csr(csr, csr); });
  run("MTTKRP", [&] { mttkrp_csf(csf, fb, fc); });
  run("SpTTM", [&] { spttm_csf(csf, fc); });
  run("GEMM", [&] { gemm(dense_sq_a, dense_sq_b); });

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"kernels_speedup\",\n");
  std::fprintf(out, "  \"threads\": %d,\n  \"smoke\": %s,\n", threads,
               smoke ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0;
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"serial_ms\": %.4f, "
                 "\"parallel_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 r.kernel.c_str(), r.serial_ms, r.parallel_ms, speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
