// Per-kernel speedup bench, emitted as JSON. This is the perf baseline
// bench/run_all.sh records into BENCH_kernels.json.
//
// Three phases per kernel, all over the SAME RNG-seeded operands:
//   serial   — scalar tier, 1 thread   (the historical baseline axis)
//   parallel — scalar tier, N threads  (speedup = serial/parallel)
//   simd     — SIMD tier,   1 thread   (simd_over_scalar = serial/simd)
// The serial and parallel phases pin the scalar tier so their numbers
// stay comparable to baselines recorded before the SIMD layer existed;
// the SIMD phase runs single-threaded so simd_over_scalar isolates the
// vectorization win from thread scaling. On hosts without AVX2+FMA the
// simd fields are emitted as 0 and "simd_supported" is false — the
// check_bench.py gate skips them.
//
// Each phase fingerprints the kernel's operand buffers (FNV-1a) before
// timing; a mismatch across phases means an operand was re-synthesized
// or mutated and the comparison is void, so the bench aborts.
//
// Kernels run through the execution engine's format-generic dispatch (the
// path every layer above uses); operand sizes are large enough that the
// parallel-region overhead is amortized — the earlier 2048-point SpMV ran
// 66us serial, far below the fork/join cost at small thread counts.
//
// Usage: bench_speedup [--smoke] [--threads N] [--out FILE]
//   --smoke     tiny operands, one rep (CI launch check)
//   --threads N parallel thread count (default: mt::num_threads())
//   --out FILE  write JSON there instead of stdout
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/simd.hpp"
#include "common/threads.hpp"
#include "exec/exec.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;
using clock_t_ = std::chrono::steady_clock;

// Best-of-reps wall time of f() at the given thread count, in ms.
template <typename F>
double time_ms(F&& f, int threads, int reps) {
  set_num_threads(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock_t_::now();
    f();
    const auto t1 = clock_t_::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  set_num_threads(0);
  return best;
}

struct Row {
  std::string kernel;
  double serial_ms;
  double parallel_ms;
  double simd_ms;  // 0 when the host lacks AVX2+FMA
  std::uint64_t operand_fp;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = num_threads();
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  const int reps = smoke ? 1 : 3;
  const bool simd = cpu_has_avx2();
  // Uniform-random rows: static scheduling, sized so each kernel runs
  // >= O(10M) scalar ops and the parallel region dominates its overhead.
  const index_t n_spmv = smoke ? 256 : 8192;
  const index_t n = smoke ? 256 : 4096;
  const index_t rank = smoke ? 8 : 64;
  const index_t n_spgemm = smoke ? 256 : 2048;
  const index_t tdim = smoke ? 32 : 256;
  const index_t gemm_n = smoke ? 64 : 512;

  const AnyMatrix csr_spmv = convert(
      AnyMatrix(synth_coo_matrix(n_spmv, n_spmv, n_spmv * n_spmv / 50, 7)),
      Format::kCSR);
  const AnyMatrix csr =
      convert(AnyMatrix(synth_coo_matrix(n, n, n * n / 50, 7)), Format::kCSR);
  const AnyMatrix csr_gemm = convert(
      AnyMatrix(synth_coo_matrix(n_spgemm, n_spgemm,
                                 n_spgemm * n_spgemm / 50, 7)),
      Format::kCSR);
  const auto dense_b = synth_dense_matrix(n, rank, 1.0, 8);
  const AnyMatrix dense_sq_a = AnyMatrix(synth_dense_matrix(gemm_n, gemm_n, 1.0, 9));
  const AnyMatrix dense_sq_b = AnyMatrix(synth_dense_matrix(gemm_n, gemm_n, 1.0, 10));
  const std::vector<value_t> xvec(static_cast<std::size_t>(n_spmv), 1.0f);
  const auto tcoo =
      synth_coo_tensor(tdim, tdim, tdim,
                       static_cast<std::int64_t>(tdim) * tdim * tdim / 50, 11);
  const AnyTensor csf = convert(AnyTensor(tcoo), Format::kCSF);
  const auto fb = synth_dense_matrix(tdim, rank, 1.0, 12);
  const auto fc = synth_dense_matrix(tdim, rank, 1.0, 13);

  // Per-kernel operand fingerprints: chained FNV-1a over every value and
  // index buffer the kernel reads.
  const auto fp_csr = [](const AnyMatrix& m, std::uint64_t h) {
    const auto& c = std::get<CsrMatrix>(m);
    h = bench::fnv1a_vec(c.row_ptr(), h);
    h = bench::fnv1a_vec(c.col_ids(), h);
    return bench::fnv1a_vec(c.values(), h);
  };
  const auto fp_dense = [](const DenseMatrix& m, std::uint64_t h) {
    return bench::fnv1a_vec(m.values(), h);
  };
  const auto fp_csf = [&](std::uint64_t h) {
    return bench::fnv1a_vec(std::get<CsfTensor3>(csf).values(), h);
  };
  const std::uint64_t kSeed = 14695981039346656037ull;
  const std::function<std::uint64_t()> fps[] = {
      [&] { return bench::fnv1a_vec(xvec, fp_csr(csr_spmv, kSeed)); },
      [&] { return fp_dense(dense_b, fp_csr(csr, kSeed)); },
      [&] { return fp_csr(csr_gemm, kSeed); },
      [&] { return fp_dense(fc, fp_dense(fb, fp_csf(kSeed))); },
      [&] { return fp_dense(fc, fp_csf(kSeed)); },
      [&] {
        return fp_dense(std::get<DenseMatrix>(dense_sq_b),
                        fp_dense(std::get<DenseMatrix>(dense_sq_a), kSeed));
      },
  };

  std::vector<Row> rows;
  const auto run = [&](const char* name, auto&& f) {
    const auto& fp = fps[rows.size()];
    const std::uint64_t fp0 = fp();
    Row r;
    r.kernel = name;
    set_simd_enabled(0);  // scalar tier: comparable to pre-SIMD baselines
    r.serial_ms = time_ms(f, 1, reps);
    const std::uint64_t fp_serial = fp();
    r.parallel_ms = time_ms(f, threads, reps);
    const std::uint64_t fp_parallel = fp();
    r.simd_ms = 0.0;
    std::uint64_t fp_simd = fp_parallel;
    if (simd) {
      set_simd_enabled(1);
      r.simd_ms = time_ms(f, 1, reps);
      fp_simd = fp();
    }
    set_simd_enabled(-1);
    if (fp_serial != fp0 || fp_parallel != fp0 || fp_simd != fp0) {
      std::fprintf(stderr,
                   "%s: operand fingerprint drifted across phases "
                   "(pre=%016llx serial=%016llx parallel=%016llx "
                   "simd=%016llx) — phases did not time identical "
                   "operands\n",
                   name, static_cast<unsigned long long>(fp0),
                   static_cast<unsigned long long>(fp_serial),
                   static_cast<unsigned long long>(fp_parallel),
                   static_cast<unsigned long long>(fp_simd));
      std::exit(1);
    }
    r.operand_fp = fp0;
    rows.push_back(std::move(r));
  };
  run("SpMV", [&] { exec::spmv(csr_spmv, xvec); });
  run("SpMM", [&] { exec::spmm(csr, dense_b); });
  run("SpGEMM", [&] { exec::spgemm(csr_gemm, csr_gemm); });
  run("MTTKRP", [&] { exec::mttkrp(csf, fb, fc); });
  run("SpTTM", [&] { exec::ttm(csf, fc); });
  run("GEMM", [&] { exec::spmm(dense_sq_a, dense_sq_b); });

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"kernels_speedup\",\n");
  std::fprintf(out, "  \"threads\": %d,\n  \"smoke\": %s,\n", threads,
               smoke ? "true" : "false");
  std::fprintf(out, "  \"simd_supported\": %s,\n", simd ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0;
    const double simd_over_scalar =
        r.simd_ms > 0.0 ? r.serial_ms / r.simd_ms : 0.0;
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"serial_ms\": %.4f, "
                 "\"parallel_ms\": %.4f, \"simd_ms\": %.4f,\n"
                 "     \"serial_ns\": %.0f, \"parallel_ns\": %.0f, "
                 "\"simd_ns\": %.0f,\n"
                 "     \"speedup\": %.3f, \"simd_over_scalar\": %.3f, "
                 "\"operand_fp\": \"%016llx\"}%s\n",
                 r.kernel.c_str(), r.serial_ms, r.parallel_ms, r.simd_ms,
                 r.serial_ms * 1e6, r.parallel_ms * 1e6, r.simd_ms * 1e6,
                 speedup, simd_over_scalar,
                 static_cast<unsigned long long>(r.operand_fp),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
