// Serial-vs-OpenMP speedup per kernel, emitted as JSON. This is the
// perf baseline bench/run_all.sh records into BENCH_kernels.json.
//
// Kernels run through the execution engine's format-generic dispatch (the
// path every layer above uses); operand sizes are large enough that the
// parallel-region overhead is amortized — the earlier 2048-point SpMV ran
// 66us serial, far below the fork/join cost at small thread counts.
//
// Usage: bench_speedup [--smoke] [--threads N] [--out FILE]
//   --smoke     tiny operands, one rep (CI launch check)
//   --threads N parallel thread count (default: mt::num_threads())
//   --out FILE  write JSON there instead of stdout
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/threads.hpp"
#include "exec/exec.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;
using clock_t_ = std::chrono::steady_clock;

// Best-of-reps wall time of f() at the given thread count, in ms.
template <typename F>
double time_ms(F&& f, int threads, int reps) {
  set_num_threads(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock_t_::now();
    f();
    const auto t1 = clock_t_::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  set_num_threads(0);
  return best;
}

struct Row {
  std::string kernel;
  double serial_ms;
  double parallel_ms;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = num_threads();
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  const int reps = smoke ? 1 : 3;
  // Uniform-random rows: static scheduling, sized so each kernel runs
  // >= O(10M) scalar ops and the parallel region dominates its overhead.
  const index_t n_spmv = smoke ? 256 : 8192;
  const index_t n = smoke ? 256 : 4096;
  const index_t rank = smoke ? 8 : 64;
  const index_t n_spgemm = smoke ? 256 : 2048;
  const index_t tdim = smoke ? 32 : 256;
  const index_t gemm_n = smoke ? 64 : 512;

  const AnyMatrix csr_spmv = convert(
      AnyMatrix(synth_coo_matrix(n_spmv, n_spmv, n_spmv * n_spmv / 50, 7)),
      Format::kCSR);
  const AnyMatrix csr =
      convert(AnyMatrix(synth_coo_matrix(n, n, n * n / 50, 7)), Format::kCSR);
  const AnyMatrix csr_gemm = convert(
      AnyMatrix(synth_coo_matrix(n_spgemm, n_spgemm,
                                 n_spgemm * n_spgemm / 50, 7)),
      Format::kCSR);
  const auto dense_b = synth_dense_matrix(n, rank, 1.0, 8);
  const AnyMatrix dense_sq_a = AnyMatrix(synth_dense_matrix(gemm_n, gemm_n, 1.0, 9));
  const AnyMatrix dense_sq_b = AnyMatrix(synth_dense_matrix(gemm_n, gemm_n, 1.0, 10));
  const std::vector<value_t> xvec(static_cast<std::size_t>(n_spmv), 1.0f);
  const auto tcoo =
      synth_coo_tensor(tdim, tdim, tdim,
                       static_cast<std::int64_t>(tdim) * tdim * tdim / 50, 11);
  const AnyTensor csf = convert(AnyTensor(tcoo), Format::kCSF);
  const auto fb = synth_dense_matrix(tdim, rank, 1.0, 12);
  const auto fc = synth_dense_matrix(tdim, rank, 1.0, 13);

  std::vector<Row> rows;
  const auto run = [&](const char* name, auto&& f) {
    rows.push_back({name, time_ms(f, 1, reps), time_ms(f, threads, reps)});
  };
  run("SpMV", [&] { exec::spmv(csr_spmv, xvec); });
  run("SpMM", [&] { exec::spmm(csr, dense_b); });
  run("SpGEMM", [&] { exec::spgemm(csr_gemm, csr_gemm); });
  run("MTTKRP", [&] { exec::mttkrp(csf, fb, fc); });
  run("SpTTM", [&] { exec::ttm(csf, fc); });
  run("GEMM", [&] { exec::spmm(dense_sq_a, dense_sq_b); });

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"kernels_speedup\",\n");
  std::fprintf(out, "  \"threads\": %d,\n  \"smoke\": %s,\n", threads,
               smoke ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.parallel_ms > 0.0 ? r.serial_ms / r.parallel_ms : 0.0;
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"serial_ms\": %.4f, "
                 "\"parallel_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 r.kernel.c_str(), r.serial_ms, r.parallel_ms, speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
