// Reproduces paper Fig. 6: the walkthrough of three ACFs on the 4-PE
// weight-stationary array (bandwidth five elements/cycle, eight-element
// weight buffers). The headline numbers are the cycles to stream matrix
// A: 8 (Dense), 3 (CSR), 4 (COO).
#include <cstdio>

#include "accel/cycle_sim.hpp"
#include "bench_util.hpp"
#include "kernels/gemm.hpp"

namespace {

using namespace mt;

DenseMatrix fig6_a() {
  DenseMatrix a(4, 8);
  a.set(0, 0, 1.0f);
  a.set(0, 2, 2.0f);
  a.set(0, 4, 3.0f);
  a.set(3, 5, 4.0f);
  return a;
}

DenseMatrix fig6_b() {
  DenseMatrix b(8, 4);
  b.set(0, 0, 1.0f);
  b.set(0, 1, 4.0f);
  b.set(2, 0, 2.0f);
  b.set(3, 2, 6.0f);
  b.set(4, 0, 3.0f);
  b.set(5, 2, 7.0f);
  b.set(5, 3, 8.0f);
  b.set(7, 1, 5.0f);
  return b;
}

}  // namespace

int main() {
  const auto cfg = AccelConfig::walkthrough();
  const auto a = fig6_a();
  const auto b = fig6_b();
  const auto want = gemm(a, b);

  mt::bench::banner("Fig. 6: walkthrough — 4 PEs, 5-element bus, 8-element buffers");
  std::printf("%-32s %8s %8s %8s %10s %10s\n", "ACF (A-B)", "stream",
              "load", "drain", "bus occ%", "correct");
  struct Case {
    const char* label;
    Format fa, fb;
    int expect;
  };
  for (const Case& c : {Case{"Dense(A)-Dense(B)-Dense(O)", Format::kDense,
                             Format::kDense, 8},
                        Case{"CSR(A)-CSC(B)-Dense(O)", Format::kCSR,
                             Format::kCSC, 3},
                        Case{"COO(A)-Dense(B)-Dense(O)", Format::kCOO,
                             Format::kDense, 4}}) {
    const auto r = simulate_ws_matmul(a, b, c.fa, c.fb, cfg);
    const bool ok = max_abs_diff(r.output, want) == 0.0;
    std::printf("%-32s %8lld %8lld %8lld %10.1f %10s\n", c.label,
                static_cast<long long>(r.phases.stream_cycles),
                static_cast<long long>(r.phases.load_cycles),
                static_cast<long long>(r.phases.drain_cycles),
                100.0 * r.bus_occupancy, ok ? "yes" : "NO");
    if (r.phases.stream_cycles != c.expect) {
      std::printf("  !! expected %d streaming cycles (paper Fig. 6)\n", c.expect);
      return 1;
    }
  }
  std::printf(
      "\nPaper: \"Overall Fig. 6a,b,c require 8, 3, and 4 cycles to send\n"
      "matrix A respectively\" — reproduced exactly.\n");
  return 0;
}
