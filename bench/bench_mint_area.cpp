// Reproduces the paper's §VII-B MINT overhead numbers: the three design
// points (MINT_b 0.95 / MINT_m 0.41 / MINT_mr 0.23 mm^2), the divide+mod
// share of MINT_m (74% area / 65% power), the prefix-sum overlay
// overheads, and MINT_m relative to the 16384-MAC accelerator.
#include <cstdio>

#include "accel/area.hpp"
#include "bench_util.hpp"
#include "mint/mint.hpp"
#include "mint/prefix_sum.hpp"

int main() {
  using namespace mt;

  mt::bench::banner("MINT design points (paper: 0.95 / 0.41 / 0.23 mm^2)");
  std::printf("%-10s %12s %12s\n", "design", "area (mm^2)", "power (mW)");
  for (MintDesign d : {MintDesign::kBaseline, MintDesign::kMerge,
                       MintDesign::kMergeReuse}) {
    std::printf("%-10s %12.3f %12.1f\n", std::string(name_of(d)).c_str(),
                mint_area_mm2(d), mint_power_mw(d));
  }
  std::printf("\nMINT_m vs MINT_b area reduction: %.0f%%   (paper: ~57%%)\n",
              100.0 * (1.0 - mint_area_mm2(MintDesign::kMerge) /
                                 mint_area_mm2(MintDesign::kBaseline)));
  std::printf("MINT_mr vs MINT_m area reduction: %.0f%%  (paper: ~45%%)\n",
              100.0 * (1.0 - mint_area_mm2(MintDesign::kMergeReuse) /
                                 mint_area_mm2(MintDesign::kMerge)));

  mt::bench::subhead("divide + mod units within MINT_m (paper: 74% area, 65% power)");
  std::printf("area share:  %.1f%%\npower share: %.1f%%\n",
              100.0 * divmod_area_fraction(), 100.0 * divmod_power_fraction());

  mt::bench::subhead("building blocks");
  std::printf("%-18s %12s %12s %14s %8s\n", "block", "area (mm^2)",
              "power (mW)", "thru (el/cyc)", "reusable");
  for (Block b : kAllBlocks) {
    const auto& s = block_spec(b);
    std::printf("%-18s %12.3f %12.1f %14lld %8s\n",
                std::string(name_of(b)).c_str(), s.area_mm2, s.power_mw,
                static_cast<long long>(s.throughput),
                reusable_in_accelerator(b) ? "yes" : "no");
  }

  mt::bench::subhead("prefix-sum overlays on the PE array (paper Fig. 9 / §VII-B)");
  std::printf("%-18s %10s %10s %14s %12s\n", "design", "area +%", "power +%",
              "latency(32)", "adders(32)");
  for (PrefixDesign d : {PrefixDesign::kSerialChain, PrefixDesign::kWorkEfficient,
                         PrefixDesign::kHighlyParallel}) {
    const auto o = scan_overlay_overhead(d);
    std::printf("%-18s %10.0f %10.0f %14lld %12lld\n",
                std::string(name_of(d)).c_str(), 100.0 * o.area_frac,
                100.0 * o.power_frac,
                static_cast<long long>(scan_latency(32, d)),
                static_cast<long long>(scan_adder_count(32, d)));
  }

  mt::bench::subhead("MINT_m vs evaluation accelerator (paper: 0.5% area)");
  const double accel = array_area_mm2(AccelConfig::paper_default());
  std::printf("accelerator array: %.1f mm^2, MINT_m: %.3f mm^2 -> %.2f%%\n",
              accel, mint_area_mm2(MintDesign::kMerge),
              100.0 * mint_area_mm2(MintDesign::kMerge) / accel);
  return 0;
}
