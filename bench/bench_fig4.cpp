// Reproduces paper Fig. 4: relative DRAM-transfer energy of an 11k x 11k
// matrix across compression formats, density regions and datatypes
// (Fig. 4a), and the K-dimension sweep for extremely sparse matrices
// (Fig. 4b). Energy is proportional to compressed size, so the series
// are the analytic storage model priced by the DRAM energy constant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "energy/energy_model.hpp"
#include "formats/storage.hpp"

namespace {

using namespace mt;

const std::vector<Format> kFormats = {Format::kDense, Format::kCOO,
                                      Format::kCSR,   Format::kCSC,
                                      Format::kRLC,   Format::kZVC};

void sweep_density(index_t m, index_t k, DataType dt) {
  const EnergyParams e;
  std::printf("%-10s", "density");
  for (Format f : kFormats) std::printf("%12s", std::string(name_of(f)).c_str());
  std::printf("   (energy normalized to CSR)\n");
  // The paper stars 1e-6%, 10%, 50% and 100%.
  const std::vector<double> densities = {1e-8, 1e-6, 1e-4, 1e-3, 0.01,
                                         0.05, 0.10, 0.25, 0.50, 1.00};
  for (double d : densities) {
    const auto nnz = static_cast<std::int64_t>(
        d * static_cast<double>(m) * static_cast<double>(k) + 0.5);
    const double csr_j = e.dram_energy_j(
        expected_matrix_storage(Format::kCSR, m, k, nnz, dt).total_bits());
    std::printf("%-10.1e", d);
    for (Format f : kFormats) {
      const double j = e.dram_energy_j(
          expected_matrix_storage(f, m, k, nnz, dt).total_bits());
      std::printf("%12.4f", j / csr_j);
    }
    std::printf("\n");
  }
}

void sweep_k(double density) {
  const EnergyParams e;
  const index_t m = 1000;  // paper: M fixed at 1k, 16-bit datatype
  std::printf("%-10s", "K");
  for (Format f : kFormats) std::printf("%12s", std::string(name_of(f)).c_str());
  std::printf("   (energy normalized to CSR)\n");
  for (index_t k : {1'000, 4'000, 16'000, 64'000, 256'000, 1'000'000}) {
    const auto nnz = static_cast<std::int64_t>(
        density * static_cast<double>(m) * static_cast<double>(k) + 0.5);
    const double csr_j = e.dram_energy_j(
        expected_matrix_storage(Format::kCSR, m, k, nnz, DataType::kInt16)
            .total_bits());
    std::printf("%-10lld", static_cast<long long>(k));
    for (Format f : kFormats) {
      const double j = e.dram_energy_j(
          expected_matrix_storage(f, m, k, nnz, DataType::kInt16).total_bits());
      std::printf("%12.4f", j / csr_j);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  mt::bench::banner("Fig. 4a-i: 11k x 11k transfer energy, 32-bit datatype");
  sweep_density(11'000, 11'000, mt::DataType::kFp32);

  mt::bench::banner("Fig. 4a-ii: 11k x 11k transfer energy, 8-bit datatype");
  sweep_density(11'000, 11'000, mt::DataType::kInt8);

  mt::bench::banner("Fig. 4b-i: extremely sparse (density 1e-5), M=1k, 16-bit");
  sweep_k(1e-5);

  mt::bench::banner("Fig. 4b-ii: sparse (density 1e-2), M=1k, 16-bit");
  sweep_k(1e-2);

  std::printf(
      "\nExpected shape (paper): COO most compact at extreme sparsity;\n"
      "CSR wins the low-density band; RLC/ZVC win the middle; Dense wins\n"
      "at/near 100%%. Quantization (8-bit) moves every crossover left.\n");
  return 0;
}
