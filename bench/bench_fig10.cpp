// Reproduces paper Fig. 10: format-conversion wall time and energy for
// MINT vs host software. The CPU column is *measured* — our OpenMP
// reference converters (the MKL surrogate) timed on this machine; the GPU
// column and MINT come from the calibrated models. Fig. 10a is CSR->CSC,
// Fig. 10b is Dense->CSR, Fig. 10c the energy comparison.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "convert/convert.hpp"
#include "energy/energy_model.hpp"
#include "mint/pipelines.hpp"
#include "mint/sw_offload.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;

double time_s(const std::function<void()>& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const EnergyParams e;
  // Workloads small enough to materialize densely for Dense->CSR while
  // spanning three orders of magnitude in nnz.
  const std::vector<std::string> names = {"journal", "dendrimer", "cavity14",
                                          "speech2"};

  mt::bench::banner("Fig. 10a: CSR -> CSC conversion wall time");
  std::printf("%-12s %10s %14s %14s %14s\n", "workload", "nnz",
              "CPU meas (s)", "GPU model (s)", "MINT (s)");
  for (const auto& name : names) {
    const auto& w = matrix_workload(name);
    const auto csr = CsrMatrix::from_coo(synth_coo_matrix(w, 7));
    CscMatrix out;
    const double cpu_s = time_s([&] { out = csr_to_csc(csr); });
    const auto gpu = sw_conversion_cost(Format::kCSR, Format::kCSC, w.m, w.k,
                                        w.nnz, DataType::kFp32,
                                        HostPlatform::kGpu, e);
    const auto mint = mint_matrix_conversion_cost(
        Format::kCSR, Format::kCSC, w.m, w.k, w.nnz, DataType::kFp32, e);
    std::printf("%-12s %10lld %14.6f %14.6f %14.6f\n", name.c_str(),
                static_cast<long long>(w.nnz), cpu_s, gpu.total_s(),
                e.seconds(mint.cycles));
  }

  mt::bench::banner("Fig. 10b: Dense -> CSR conversion wall time");
  std::printf("%-12s %10s %14s %14s %14s\n", "workload", "nnz",
              "CPU meas (s)", "GPU model (s)", "MINT (s)");
  for (const auto& name : names) {
    const auto& w = matrix_workload(name);
    const auto dense = synth_coo_matrix(w, 7).to_dense();
    CsrMatrix out;
    const double cpu_s = time_s([&] { out = dense_to_csr(dense); });
    const auto gpu = sw_conversion_cost(Format::kDense, Format::kCSR, w.m, w.k,
                                        w.nnz, DataType::kFp32,
                                        HostPlatform::kGpu, e);
    const auto mint = mint_matrix_conversion_cost(
        Format::kDense, Format::kCSR, w.m, w.k, w.nnz, DataType::kFp32, e);
    std::printf("%-12s %10lld %14.6f %14.6f %14.6f\n", name.c_str(),
                static_cast<long long>(w.nnz), cpu_s, gpu.total_s(),
                e.seconds(mint.cycles));
  }

  mt::bench::banner("Fig. 10c: conversion energy (CSR -> CSC)");
  std::printf("%-12s %14s %14s %14s %12s\n", "workload", "CPU (J)", "GPU (J)",
              "MINT (J)", "CPU/MINT");
  for (const auto& name : names) {
    const auto& w = matrix_workload(name);
    const auto cpu = sw_conversion_cost(Format::kCSR, Format::kCSC, w.m, w.k,
                                        w.nnz, DataType::kFp32,
                                        HostPlatform::kCpu, e);
    const auto gpu = sw_conversion_cost(Format::kCSR, Format::kCSC, w.m, w.k,
                                        w.nnz, DataType::kFp32,
                                        HostPlatform::kGpu, e);
    const auto mint = mint_matrix_conversion_cost(
        Format::kCSR, Format::kCSC, w.m, w.k, w.nnz, DataType::kFp32, e);
    std::printf("%-12s %14.3e %14.3e %14.3e %12.0f\n", name.c_str(),
                cpu.energy_j, gpu.energy_j, mint.energy_j,
                cpu.energy_j / mint.energy_j);
  }
  std::printf(
      "\nExpected shape (paper): MINT faster on average than both hosts\n"
      "(it overlaps conversion with the memory stream) and roughly three\n"
      "orders of magnitude more energy-efficient.\n");
  return 0;
}
