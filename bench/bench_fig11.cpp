// Reproduces paper Fig. 11: the fraction of GPU-offloaded conversion time
// spent in host<->device transfers (H2D + D2H) rather than conversion
// compute, per workload — the paper reports up to 75% with a geomean
// around 50%, the argument for doing conversion in hardware next to the
// accelerator.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "energy/energy_model.hpp"
#include "mint/sw_offload.hpp"
#include "workloads/registry.hpp"

int main() {
  using namespace mt;
  const EnergyParams e;

  mt::bench::banner("Fig. 11: GPU offload transfer-to-total ratio (CSR -> CSC)");
  std::printf("%-12s %10s %14s %14s %12s\n", "workload", "nnz",
              "transfer (s)", "compute (s)", "transfer %");
  std::vector<double> fracs;
  for (const auto& w : table3_matrices()) {
    const auto c = sw_conversion_cost(Format::kCSR, Format::kCSC, w.m, w.k,
                                      w.nnz, DataType::kFp32,
                                      HostPlatform::kGpu, e);
    fracs.push_back(c.transfer_fraction());
    std::printf("%-12s %10lld %14.6f %14.6f %12.1f\n", w.name.c_str(),
                static_cast<long long>(w.nnz), c.transfer_s, c.compute_s,
                100.0 * c.transfer_fraction());
  }
  std::printf("\ngeomean transfer fraction: %.1f%%   (paper: ~50%%, max ~75%%)\n",
              100.0 * mt::bench::geomean(fracs));
  return 0;
}
