// Reproduces paper Fig. 5: execution time, compute utilization and
// memory(bus) utilization of four matmul ACF algorithms across density
// regions. The paper measured cuBLAS/cuSPARSE on a Titan GPU; here the
// same four algorithm choices run through the accelerator performance
// model (DESIGN.md "Substitutions") — the series to compare is the
// crossover structure, not absolute seconds.
//
// Scale note: the paper uses M=N=K=11k; we run M=N=K=2200 (1/5 linear
// scale) so the 100%-density point stays within bench memory. Crossovers
// depend on density, not the absolute dimension.
#include <cstdio>
#include <vector>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;

struct Algo {
  const char* label;
  Format acf_a;
  Format acf_b;
  bool sparse_b;  // SpGEMM-style (B compressed) vs SpMM (B dense in PE)
};

}  // namespace

int main() {
  const index_t n = 2200;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams e;

  const std::vector<Algo> algos = {
      {"Dense(A)-Dense(B)-Dense(O)   [cuBLAS GEMM]", Format::kDense, Format::kDense, false},
      {"CSR(A)-Dense(B)-Dense(O)     [cuSPARSE SpMM]", Format::kCSR, Format::kDense, false},
      {"COO(A)-Dense(B)-Dense(O)     [cuSPARSE SpMM-COO]", Format::kCOO, Format::kDense, false},
      {"CSR(A)-CSC(B)-Dense(O)       [cuSPARSE SpGEMM-like]", Format::kCSR, Format::kCSC, true},
  };
  const std::vector<double> densities = {1e-8, 1e-6, 1e-4, 1e-3,
                                         0.01, 0.1,  0.5,  1.0};

  mt::bench::banner("Fig. 5: matmul ACF comparison across density (model scale 2200^3)");
  std::printf("%-12s %-52s %14s %10s %10s\n", "density", "algorithm (ACF)",
              "exec time (s)", "PE util%", "bus util%");
  for (double d : densities) {
    const auto nnz = static_cast<std::int64_t>(
        d * static_cast<double>(n) * static_cast<double>(n) + 0.5);
    const auto a = synth_coo_matrix(n, n, std::max<std::int64_t>(nnz, 1), 42);
    double best = 1e300;
    const Algo* winner = nullptr;
    for (const Algo& al : algos) {
      PerfResult r;
      if (al.sparse_b) {
        const auto b = synth_coo_matrix(n, n, std::max<std::int64_t>(nnz, 1), 43);
        r = model_matmul(a, b, al.acf_a, al.acf_b, cfg, e);
      } else {
        r = model_matmul_dense_b(a, n, al.acf_a, al.acf_b, cfg, e);
      }
      const double secs = e.seconds(r.total_cycles());
      std::printf("%-12.1e %-52s %14.6f %10.2f %10.2f\n", d, al.label, secs,
                  100.0 * r.pe_utilization, 100.0 * r.bus_occupancy);
      if (secs < best) {
        best = secs;
        winner = &al;
      }
    }
    std::printf("%-12s -> fastest: %s\n", "", winner->label);
  }
  std::printf(
      "\nExpected shape (paper Fig. 5a): Dense-Dense wins the high-density\n"
      "band, compressed ACFs win the sparse bands, with the crossover in\n"
      "the low single-digit-percent region for this accelerator model.\n");
  return 0;
}
