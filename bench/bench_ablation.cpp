// Ablations over the design choices DESIGN.md calls out:
//   A1 — input bus width (the walkthrough's bandwidth knob)
//   A2 — PE buffer capacity (drives the K-pass count)
//   A3 — RLC run-counter width (the compactness/escape trade)
//   A4 — indexing-unit match rate (where the Dense/compressed ACF
//        crossover lands — the model's one calibrated parameter)
#include <cstdio>

#include "accel/perf_model.hpp"
#include "bench_util.hpp"
#include "formats/rlc.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;

void ablate_bus() {
  mt::bench::subhead("A1: bus width vs total cycles (speech2-shaped SpMM, CSR ACF)");
  const auto a = synth_coo_matrix(7'700, 2'600, 1'000'000, 1);
  const EnergyParams e;
  std::printf("%-12s %14s %14s %12s\n", "bus bits", "stream cyc", "total cyc",
              "bus occ%");
  for (index_t bits : {128, 256, 512, 1024, 2048}) {
    AccelConfig cfg;
    cfg.bus_bits = bits;
    const auto r = model_matmul_dense_b(a, 3'850, Format::kCSR, Format::kDense,
                                        cfg, e);
    std::printf("%-12lld %14lld %14lld %12.1f\n", static_cast<long long>(bits),
                static_cast<long long>(r.phases.stream_cycles),
                static_cast<long long>(r.total_cycles()),
                100.0 * r.bus_occupancy);
  }
}

void ablate_buffer() {
  mt::bench::subhead("A2: PE buffer vs K passes (nd3k-shaped SpMM, Dense stationary)");
  const auto a = synth_coo_matrix(9'000, 9'000, 3'300'000, 2);
  const EnergyParams e;
  std::printf("%-12s %10s %14s %14s\n", "buffer (B)", "K passes", "load cyc",
              "total cyc");
  for (index_t bytes : {128, 256, 512, 2048, 8192}) {
    AccelConfig cfg;
    cfg.pe_buffer_bytes = bytes;
    const auto r = model_matmul_dense_b(a, 4'500, Format::kCSR, Format::kDense,
                                        cfg, e);
    std::printf("%-12lld %10lld %14lld %14lld\n",
                static_cast<long long>(bytes),
                static_cast<long long>(r.k_passes),
                static_cast<long long>(r.phases.load_cycles),
                static_cast<long long>(r.total_cycles()));
  }
}

void ablate_rlc() {
  mt::bench::subhead("A3: RLC run-counter width vs realized size (1024x1024)");
  std::printf("%-10s", "density");
  for (int bits : {2, 3, 4, 6, 8}) std::printf("  %8d-bit", bits);
  std::printf("   (bytes, lower is better)\n");
  for (double d : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    const auto dm = synth_dense_matrix(1024, 1024, d, 3);
    std::printf("%-10.3f", d);
    for (int bits : {2, 3, 4, 6, 8}) {
      const auto s = RlcMatrix::from_dense(dm, bits).storage(DataType::kFp32);
      std::printf("  %12.0f", s.total_bytes());
    }
    std::printf("\n");
  }
  std::printf("(short counters explode at low density via escape chains;\n"
              " long counters waste bits at high density — 4 bits is the\n"
              " middle-band sweet spot the library defaults to)\n");
}

void ablate_match_rate() {
  mt::bench::subhead("A4: indexing-unit rate vs Dense/CSR ACF crossover density");
  const EnergyParams e;
  std::printf("%-12s %18s\n", "match rate", "crossover density");
  for (double rate : {0.125, 0.25, 0.5, 1.0, 2.0, 8.0}) {
    AccelConfig cfg;
    cfg.index_match_rate = rate;
    // Bisect the density where CSR-ACF total cycles overtakes Dense-ACF.
    double lo = 1e-5, hi = 1.0;
    for (int i = 0; i < 22; ++i) {
      const double mid = std::sqrt(lo * hi);
      const auto nnz = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(mid * 1024 * 1024));
      const auto a = synth_coo_matrix(1024, 1024, nnz, 4);
      const auto csr = model_matmul_dense_b(a, 512, Format::kCSR,
                                            Format::kDense, cfg, e);
      const auto dense = model_matmul_dense_b(a, 512, Format::kDense,
                                              Format::kDense, cfg, e);
      (csr.total_cycles() < dense.total_cycles() ? lo : hi) = mid;
    }
    std::printf("%-12.3f %17.2f%%\n", rate, 100.0 * std::sqrt(lo * hi));
  }
  std::printf("(the library default 0.25 lands the crossover in the low\n"
              " single-digit percents, matching Table III's ACF switches)\n");
}

}  // namespace

int main() {
  mt::bench::banner("Design-choice ablations");
  ablate_bus();
  ablate_buffer();
  ablate_rlc();
  ablate_match_rate();
  return 0;
}
