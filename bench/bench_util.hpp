// Shared formatting helpers for the figure/table reproduction binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace mt::bench {

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subhead(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace mt::bench
