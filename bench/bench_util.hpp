// Shared formatting helpers for the figure/table reproduction binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mt::bench {

// FNV-1a over raw bytes: the operand fingerprint the speedup bench uses
// to assert that its serial / parallel / SIMD phases all timed the very
// same RNG-seeded operands (a phase that re-synthesized or mutated an
// operand would silently compare apples to oranges).
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = 14695981039346656037ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <class T, class Alloc>
std::uint64_t fnv1a_vec(const std::vector<T, Alloc>& v,
                        std::uint64_t h = 14695981039346656037ull) {
  return fnv1a(v.data(), v.size() * sizeof(T), h);
}

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subhead(const std::string& s) {
  std::printf("\n--- %s ---\n", s.c_str());
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace mt::bench
